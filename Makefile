# Mirrors .github/workflows/ci.yml so local runs and CI are identical.

GO ?= go

.PHONY: all build lint test bench bench-full bench-artifact trace-smoke serve-smoke sched-smoke docs docs-check suite clean

all: lint build test

build:
	$(GO) build ./...

lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "files need gofmt:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...

test:
	$(GO) test -race ./...

# One iteration of every benchmark: the CI smoke that keeps the
# reproduction-record benches runnable. Use bench-full for measurements.
bench:
	$(GO) test -bench=. -benchtime=1x -run '^$$' ./...

bench-full:
	$(GO) test -bench=. -benchmem -run '^$$' ./internal/sim/ ./internal/collectives/ ./internal/scenario/ ./internal/trace/ ./internal/placement/ ./internal/facility/ .

# Collective + congested-transport + trace-replay + placement-search +
# sim hot-path benches as BENCH_<short-sha>.json, the per-commit perf
# record CI uploads as an artifact. The Saturation benches track the
# congested path's hot-loop cost (routing, link admission, queueing);
# the TraceReplay benches the one-shot replay; the EvaluatorReplay
# benches the pooled batch evaluation path side by side with it (the
# ~5x/7,500x pooling win); PlacementOptimize the optimizer end to end.
bench-artifact:
	$(GO) test -json -run '^$$' -bench 'Collective|Saturation|TraceReplay|EvaluatorReplay|PlacementOptimize|EventLoop|ProcParkUnpark|MailboxPingPong|Facility' \
		-benchmem ./internal/collectives ./internal/scenario ./internal/trace ./internal/placement ./internal/sim ./internal/facility > BENCH_$$(git rev-parse --short HEAD).json

# The rrtrace capture→replay→optimize smoke CI runs (mirrored here).
trace-smoke:
	$(GO) run ./cmd/rrtrace capture -px 4 -py 4 -k 20 -o /tmp/sweep3d.trace.jsonl
	$(GO) run ./cmd/rrtrace inspect -i /tmp/sweep3d.trace.jsonl
	$(GO) run ./cmd/rrtrace replay -i /tmp/sweep3d.trace.jsonl -placement strided -toplinks 5
	$(GO) run ./cmd/rrtrace replay -i /tmp/sweep3d.trace.jsonl -congestion=off -skip-compute
	$(GO) run ./cmd/rrtrace optimize -i /tmp/sweep3d.trace.jsonl -seed 1 \
		-greedy-rounds 2 -greedy-batch 6 -anneal-rounds 2 -anneal-batch 6 -mapping 4

# The serving-layer contract under the race detector: structured 4xx on
# malformed submissions, request coalescing, serial ≡ 64-way-concurrent
# byte identity, cache round-trip, and the thousands-deep load harness.
serve-smoke:
	$(GO) test -race -count=1 -run 'TestServe' ./internal/serve

# The rrsched facility-simulator smoke CI runs (mirrored here): a
# model-only mix, the trace-pricing path, and the full sweep.
sched-smoke:
	$(GO) run ./cmd/rrsched run -policy fcfs -alloc scattered -jobs 16 -trace=false -jsonl /tmp/rrsched-run.jsonl
	$(GO) run ./cmd/rrsched run -policy easy -alloc assisted -jobs 24 -gantt
	$(GO) run ./cmd/rrsched sweep -jsonl /tmp/rrsched-sweep.jsonl

# Regenerate the generated documentation (docs/experiments.md) and
# check it is current — CI fails when it is stale.
docs:
	$(GO) generate ./internal/experiments

docs-check:
	$(GO) run ./internal/experiments/expdocs -check docs/experiments.md
	$(GO) test -run TestEveryPackageHasDoc .

# The full evaluation through the orchestrator, all cores.
suite:
	$(GO) run ./cmd/rrexp -run all -parallel -quiet

clean:
	$(GO) clean ./...
