# Mirrors .github/workflows/ci.yml so local runs and CI are identical.

GO ?= go

.PHONY: all build lint test bench bench-full bench-artifact bench-baseline bench-compare pdes-smoke trace-smoke topo-smoke serve-smoke sched-smoke surrogate-smoke docs docs-check suite clean

all: lint build test

build:
	$(GO) build ./...

lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "files need gofmt:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...

test:
	$(GO) test -race ./...

# One iteration of every benchmark: the CI smoke that keeps the
# reproduction-record benches runnable. Use bench-full for measurements.
bench:
	$(GO) test -bench=. -benchtime=1x -run '^$$' ./...

bench-full:
	$(GO) test -bench=. -benchmem -run '^$$' ./internal/sim/ ./internal/collectives/ ./internal/scenario/ ./internal/trace/ ./internal/placement/ ./internal/surrogate/ ./internal/facility/ .

# Collective + congested-transport + trace-replay + placement-search +
# sim hot-path benches as bench/BENCH_<short-sha>.json, the per-commit
# perf record CI uploads as an artifact next to the committed
# bench/BENCH_baseline.json (the trajectory anchor; see bench/README.md).
# The Saturation benches track the congested path's hot-loop cost
# (routing, link admission, queueing); the TraceReplay benches the
# one-shot replay; the EvaluatorReplay benches the pooled batch
# evaluation path side by side with it (the ~5x/7,500x pooling win);
# PlacementOptimize the optimizer end to end; ParallelDES the windowed
# cluster at 1/2/4/8 workers against the serial engine; the Surrogate
# benches the analytic pricing model the two-tier search screens with
# (price one mapping, cold-route pricing, and model compilation).
BENCH_RE = Collective|Saturation|TraceReplay|EvaluatorReplay|PlacementOptimize|EventLoop|ProcParkUnpark|MailboxPingPong|Facility|ParallelDES|TopoCompare|TopologyRoute|Surrogate
BENCH_PKGS = ./internal/collectives ./internal/scenario ./internal/trace ./internal/placement ./internal/surrogate ./internal/sim ./internal/facility ./internal/fabric

bench-artifact:
	$(GO) test -json -run '^$$' -bench '$(BENCH_RE)' \
		-benchmem $(BENCH_PKGS) > bench/BENCH_$$(git rev-parse --short HEAD).json

# Regenerate the committed trajectory anchor (one timed iteration per
# bench: cheap, and every iteration of the DES benches is a full run).
bench-baseline:
	$(GO) test -json -run '^$$' -bench '$(BENCH_RE)' -benchtime=1x \
		-benchmem $(BENCH_PKGS) > bench/BENCH_baseline.json

# Run the bench set once and print each bench's ns/op next to the
# committed baseline's, with the head/baseline ratio. Informational:
# wall clock varies across machines, so the anchor tracks trajectory
# rather than gating CI; eyeball the ratios (or point benchstat at the
# two JSON files) when a PR intentionally moves a hot path.
bench-compare:
	$(GO) test -json -run '^$$' -bench '$(BENCH_RE)' -benchtime=1x \
		-benchmem $(BENCH_PKGS) > /tmp/bench-head.json
	@# A bench result line is flushed as several JSON output events (the
	@# name before the timing), so reassemble each package's output
	@# stream before grepping for the "name ... ns/op" result lines.
	@jq -rs '[.[] | select(.Action=="output")] | group_by(.Package) | .[] | map(.Output) | add' \
		bench/BENCH_baseline.json \
		| awk '/^Benchmark/ && / ns\/op/ {print $$1, $$3}' | sort > /tmp/bench-base.txt
	@jq -rs '[.[] | select(.Action=="output")] | group_by(.Package) | .[] | map(.Output) | add' \
		/tmp/bench-head.json \
		| awk '/^Benchmark/ && / ns\/op/ {print $$1, $$3}' | sort > /tmp/bench-head.txt
	@printf '%-52s %14s %14s %9s\n' benchmark 'base ns/op' 'head ns/op' ratio
	@join /tmp/bench-base.txt /tmp/bench-head.txt \
		| awk '{r=($$2>0)?$$3/$$2:0; printf "%-52s %14.0f %14.0f %8.2fx\n", $$1, $$2, $$3, r}'
	@join -v1 /tmp/bench-base.txt /tmp/bench-head.txt | awk '{print "baseline only: " $$1}'
	@join -v2 /tmp/bench-base.txt /tmp/bench-head.txt | awk '{print "head only:     " $$1}'

# The parallel-DES byte-identity smoke CI runs (mirrored here): the
# coll-saturation and trace-replay experiments at GOMAXPROCS 1, 2 and
# 8, with the result JSONL and every CSV artifact diffed byte-for-byte
# across worker counts (only the wall-clock elapsed_ms field is
# stripped first — it is observability output, never simulation input).
pdes-smoke:
	@for p in 1 2 8; do \
		echo "pdes-smoke: GOMAXPROCS=$$p"; \
		GOMAXPROCS=$$p $(GO) run ./cmd/rrexp -run coll-saturation,trace-replay -parallel -quiet \
			-jsonl /tmp/pdes-$$p.jsonl -csv /tmp/pdes-csv-$$p || exit 1; \
		jq -c 'del(.elapsed_ms)' /tmp/pdes-$$p.jsonl > /tmp/pdes-$$p.stripped.jsonl || exit 1; \
	done
	diff /tmp/pdes-1.stripped.jsonl /tmp/pdes-2.stripped.jsonl
	diff /tmp/pdes-1.stripped.jsonl /tmp/pdes-8.stripped.jsonl
	diff -r -x suite-summary.csv /tmp/pdes-csv-1 /tmp/pdes-csv-2
	diff -r -x suite-summary.csv /tmp/pdes-csv-1 /tmp/pdes-csv-8

# The rrtrace capture→replay→optimize smoke CI runs (mirrored here).
trace-smoke:
	$(GO) run ./cmd/rrtrace capture -px 4 -py 4 -k 20 -o /tmp/sweep3d.trace.jsonl
	$(GO) run ./cmd/rrtrace inspect -i /tmp/sweep3d.trace.jsonl
	$(GO) run ./cmd/rrtrace replay -i /tmp/sweep3d.trace.jsonl -placement strided -toplinks 5
	$(GO) run ./cmd/rrtrace replay -i /tmp/sweep3d.trace.jsonl -congestion=off -skip-compute
	$(GO) run ./cmd/rrtrace optimize -i /tmp/sweep3d.trace.jsonl -seed 1 \
		-greedy-rounds 2 -greedy-batch 6 -anneal-rounds 2 -anneal-batch 6 -mapping 4

# The per-topology CLI smoke CI runs (mirrored here): rrsim topology
# queries and a congested collective plus an rrtrace replay on every
# registered -topology value, then the byte-identity pin that
# `-topology fattree` output is identical to the flagless default
# (host-wall-clock throughput lines stripped — observability output,
# never simulation input).
topo-smoke:
	$(GO) run ./cmd/rrtrace capture -px 4 -py 4 -k 20 -o /tmp/topo.trace.jsonl
	@for t in fattree fattree-ecmp fattree-full torus; do \
		echo "topo-smoke: $$t"; \
		$(GO) run ./cmd/rrsim -topology $$t 0 2000 || exit 1; \
		$(GO) run ./cmd/rrsim -topology $$t -census -audit || exit 1; \
		$(GO) run ./cmd/rrsim -topology $$t -collective alltoall-pairwise -ranks 64 -msg 4096 || exit 1; \
		$(GO) run ./cmd/rrtrace replay -i /tmp/topo.trace.jsonl -topology $$t -placement strided || exit 1; \
	done
	$(GO) run ./cmd/rrsim -census -audit -collective alltoall-pairwise -ranks 64 -msg 4096 \
		| grep -v 'events/s host' > /tmp/topo-rrsim-default.out
	$(GO) run ./cmd/rrsim -topology fattree -census -audit -collective alltoall-pairwise -ranks 64 -msg 4096 \
		| grep -v 'events/s host' > /tmp/topo-rrsim-fattree.out
	diff /tmp/topo-rrsim-default.out /tmp/topo-rrsim-fattree.out
	$(GO) run ./cmd/rrtrace replay -i /tmp/topo.trace.jsonl -placement strided \
		| grep -v 'events/s host' > /tmp/topo-replay-default.out
	$(GO) run ./cmd/rrtrace replay -i /tmp/topo.trace.jsonl -topology fattree -placement strided \
		| grep -v 'events/s host' > /tmp/topo-replay-fattree.out
	diff /tmp/topo-replay-default.out /tmp/topo-replay-fattree.out

# The serving-layer contract under the race detector: structured 4xx on
# malformed submissions, request coalescing, serial ≡ 64-way-concurrent
# byte identity, cache round-trip, and the thousands-deep load harness.
serve-smoke:
	$(GO) test -race -count=1 -run 'TestServe' ./internal/serve

# The analytic-surrogate smoke CI runs (mirrored here): the surrogate
# and two-tier placement unit tests under the race detector, the
# cross-validation contract (holdout Spearman, top-3 agreement,
# two-tier parity, serial ≡ parallel), and an rrtrace optimize
# -surrogate CLI run end to end.
surrogate-smoke:
	$(GO) test -race -count=1 ./internal/surrogate
	$(GO) test -race -count=1 -run 'TestSurrogate|TestOptimize|TestDedupe' \
		./internal/scenario ./internal/placement
	$(GO) run ./cmd/rrtrace capture -px 4 -py 4 -k 20 -o /tmp/surrogate.trace.jsonl
	$(GO) run ./cmd/rrtrace optimize -i /tmp/surrogate.trace.jsonl -seed 1 \
		-surrogate -screen-factor 4 -anchors 12 \
		-greedy-rounds 2 -greedy-batch 6 -anneal-rounds 2 -anneal-batch 6 -mapping 4

# The rrsched facility-simulator smoke CI runs (mirrored here): a
# model-only mix, the trace-pricing path, and the full sweep.
sched-smoke:
	$(GO) run ./cmd/rrsched run -policy fcfs -alloc scattered -jobs 16 -trace=false -jsonl /tmp/rrsched-run.jsonl
	$(GO) run ./cmd/rrsched run -policy easy -alloc assisted -jobs 24 -gantt
	$(GO) run ./cmd/rrsched sweep -jsonl /tmp/rrsched-sweep.jsonl

# Regenerate the generated documentation (docs/experiments.md) and
# check it is current — CI fails when it is stale.
docs:
	$(GO) generate ./internal/experiments

docs-check:
	$(GO) run ./internal/experiments/expdocs -check docs/experiments.md
	$(GO) test -run TestEveryPackageHasDoc .

# The full evaluation through the orchestrator, all cores.
suite:
	$(GO) run ./cmd/rrexp -run all -parallel -quiet

clean:
	$(GO) clean ./...
