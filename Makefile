# Mirrors .github/workflows/ci.yml so local runs and CI are identical.

GO ?= go

.PHONY: all build lint test bench bench-full bench-artifact suite clean

all: lint build test

build:
	$(GO) build ./...

lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "files need gofmt:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...

test:
	$(GO) test -race ./...

# One iteration of every benchmark: the CI smoke that keeps the
# reproduction-record benches runnable. Use bench-full for measurements.
bench:
	$(GO) test -bench=. -benchtime=1x -run '^$$' ./...

bench-full:
	$(GO) test -bench=. -benchmem -run '^$$' ./internal/sim/ ./internal/collectives/ ./internal/scenario/ .

# Collective + congested-transport + sim hot-path benches as
# BENCH_<short-sha>.json, the per-commit perf record CI uploads as an
# artifact. The Saturation benches track the congested path's hot-loop
# cost (routing, sorted link admission, queueing) alongside the PR 2
# benches.
bench-artifact:
	$(GO) test -json -run '^$$' -bench 'Collective|Saturation|EventLoop|ProcParkUnpark|MailboxPingPong' \
		-benchmem ./internal/collectives ./internal/scenario ./internal/sim > BENCH_$$(git rev-parse --short HEAD).json

# The full evaluation through the orchestrator, all cores.
suite:
	$(GO) run ./cmd/rrexp -run all -parallel -quiet

clean:
	$(GO) clean ./...
