// Benchmarks regenerating every table and figure of the paper's
// evaluation section, one testing.B target per artifact, plus the
// ablation benches and live host kernels. Custom metrics carry the
// headline quantity of each artifact so `go test -bench` output reads as
// a reproduction record.
package roadrunner

import (
	"context"
	"runtime"
	"testing"

	"roadrunner/internal/cml"
	"roadrunner/internal/fabric"
	"roadrunner/internal/linpack"
	"roadrunner/internal/microbench"
	"roadrunner/internal/spu"
	"roadrunner/internal/sweep3d"
	"roadrunner/internal/units"
)

// runExperiment is the common driver asserting the artifact passes.
func runExperiment(b *testing.B, id string) *Artifact {
	b.Helper()
	var art *Artifact
	for i := 0; i < b.N; i++ {
		var err error
		art, err = RunExperiment(id)
		if err != nil {
			b.Fatal(err)
		}
		if !art.Checks.AllOK() {
			b.Fatalf("%s: %v", id, art.Checks.Failures())
		}
	}
	return art
}

func BenchmarkTable1HopCounts(b *testing.B) {
	art := runExperiment(b, "table1")
	b.ReportMetric(5.38, "paper-mean-hops")
	_ = art
}

func BenchmarkTable2SystemCharacteristics(b *testing.B) {
	runExperiment(b, "table2")
	b.ReportMetric(Machine().PeakDP().PF(), "peak-PF/s")
}

func BenchmarkTable3MemoryPerformance(b *testing.B) {
	runExperiment(b, "table3")
	rows := microbench.TableIII()
	b.ReportMetric(rows[2].Triad.GBps(), "SPE-triad-GB/s")
}

func BenchmarkTable4SweepImplementations(b *testing.B) {
	runExperiment(b, "table4")
	b.ReportMetric(sweep3d.TableIVOurs(spu.PowerXCell8i()).Seconds(), "ours-PXC8i-s")
}

func BenchmarkFig1Triblade(b *testing.B) { runExperiment(b, "fig1") }
func BenchmarkFig2Fabric(b *testing.B)   { runExperiment(b, "fig2") }
func BenchmarkFig3NodeBreakdown(b *testing.B) {
	runExperiment(b, "fig3")
}

func BenchmarkFig4InstructionLatency(b *testing.B) {
	runExperiment(b, "fig4")
	b.ReportMetric(float64(spu.PowerXCell8i().MeasureLatency(3)), "FPD-cycles") // isa.FPD
}

func BenchmarkFig5RepetitionDistance(b *testing.B) {
	runExperiment(b, "fig5")
	b.ReportMetric(spu.PowerXCell8i().PeakDPFlops().GF()*8, "sustained-DP-GF/s")
}

func BenchmarkFig6LatencyBreakdown(b *testing.B) {
	runExperiment(b, "fig6")
	b.ReportMetric(microbench.Fig6Total().Microseconds(), "cell-to-cell-us")
}

func BenchmarkFig7CellToCellBandwidth(b *testing.B) {
	runExperiment(b, "fig7")
	b.ReportMetric(microbench.IntranodeBidir(1*units.MB).MBps(), "intranode-bidir-MB/s")
}

func BenchmarkFig8CorePairBandwidth(b *testing.B) {
	runExperiment(b, "fig8")
}

func BenchmarkFig9DaCSvsIB(b *testing.B) {
	runExperiment(b, "fig9")
	r := float64(microbench.Fig9IB(4*units.KB)) / float64(microbench.Fig9DaCS(4*units.KB))
	b.ReportMetric(r, "IB/DaCS-at-4KB")
}

func BenchmarkFig10LatencyMap(b *testing.B) {
	runExperiment(b, "fig10")
	fab := fabric.New()
	b.ReportMetric(microbench.Fig10Latency(fab, fabric.FromGlobal(1)).Microseconds(), "min-latency-us")
}

func BenchmarkFig11WavefrontSteps(b *testing.B) { runExperiment(b, "fig11") }

func BenchmarkFig12ChipComparison(b *testing.B) {
	runExperiment(b, "fig12")
	cfg := sweep3d.PaperWeakScaling()
	r := float64(sweep3d.HostSocketTime(sweep3d.OpteronDC18, cfg)) /
		float64(sweep3d.SPESocketTime(spu.PowerXCell8i(), cfg))
	b.ReportMetric(r, "socket-speedup-vs-dualcore")
}

func BenchmarkFig13SweepAtScale(b *testing.B) {
	runExperiment(b, "fig13")
	cfg := sweep3d.PaperWeakScaling()
	b.ReportMetric(sweep3d.CellIterationTime(cfg, 3060, sweep3d.CellMeasured).Seconds(), "measured-3060-s")
}

func BenchmarkFig14Improvement(b *testing.B) {
	runExperiment(b, "fig14")
	cfg := sweep3d.PaperWeakScaling()
	b.ReportMetric(sweep3d.Improvement(cfg, 3060, sweep3d.CellMeasured), "improvement-3060")
}

func BenchmarkLinpackHeadline(b *testing.B) {
	runExperiment(b, "linpack")
	b.ReportMetric(Machine().LinpackSustained(linpack.RoadrunnerHPL().Efficiency()).PF(), "sustained-PF/s")
}

// Suite benches: the full registered evaluation through the
// orchestrator. Serial vs parallel measures the worker-pool win on
// multi-core hosts (identical artifacts either way); cached measures the
// content-addressed skip path. On the single-CPU reference box the
// parallel bench matches serial while the internal/sim optimisations
// this suite amplifies cut the serial suite itself (see
// internal/sim/bench_test.go for the before/after event-loop numbers);
// the cached run is ~40x faster than computing:
//
//	BenchmarkSuiteSerial     38.1 ms/op   (24 experiments)
//	BenchmarkSuiteParallel   39.9 ms/op   (GOMAXPROCS=1 here)
//	BenchmarkSuiteCached      1.0 ms/op
//
// These benches measure the orchestrator (scheduling, streaming, the
// cache path), so experiments flagged Expensive — the congestion sweep
// is minutes of DES on its own, with dedicated benches in
// internal/scenario — sit out.
func suiteBenchIDs() []string {
	var ids []string
	for _, e := range Experiments() {
		if !e.Expensive {
			ids = append(ids, e.ID)
		}
	}
	return ids
}

func benchmarkSuite(b *testing.B, opts SuiteOptions) {
	b.Helper()
	ids := suiteBenchIDs()
	for i := 0; i < b.N; i++ {
		results, err := RunExperiments(context.Background(), ids, opts)
		if err != nil {
			b.Fatal(err)
		}
		if failed := FailedResults(results); len(failed) > 0 {
			b.Fatalf("%d suite failures, first: %s", len(failed), failed[0].ID)
		}
	}
	b.ReportMetric(float64(len(ids)), "experiments")
}

func BenchmarkSuiteSerial(b *testing.B) {
	benchmarkSuite(b, SuiteOptions{Workers: 1})
}

func BenchmarkSuiteParallel(b *testing.B) {
	benchmarkSuite(b, SuiteOptions{Workers: runtime.GOMAXPROCS(0)})
}

func BenchmarkSuiteCached(b *testing.B) {
	cache, err := OpenArtifactCache(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	// Warm the cache once, then measure the hit path.
	if _, err := RunExperiments(context.Background(), suiteBenchIDs(), SuiteOptions{Cache: cache}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	benchmarkSuite(b, SuiteOptions{Cache: cache})
}

// Ablation benches: the design choices DESIGN.md calls out.

func BenchmarkAblationSweepModels(b *testing.B) { runExperiment(b, "ablation-sweep-models") }
func BenchmarkAblationTransports(b *testing.B)  { runExperiment(b, "ablation-transports") }
func BenchmarkAblationMKBlocking(b *testing.B)  { runExperiment(b, "ablation-mk") }
func BenchmarkAblationFabricTaper(b *testing.B) { runExperiment(b, "ablation-taper") }

// Substrate benches: raw component throughput of the simulation itself.

func BenchmarkSPUPipeline(b *testing.B) {
	m := spu.PowerXCell8i()
	prog := sweep3d.KernelProgram(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Run(prog)
	}
	b.ReportMetric(float64(len(prog)), "instructions")
}

func BenchmarkSweepSolverSerial(b *testing.B) {
	pr := sweep3d.Problem{NX: 20, NY: 20, NZ: 40, Angles: 6, SigT: 0.75, Q: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := sweep3d.SolveSerial(pr)
		if res.BalanceError() > 1e-11 {
			b.Fatal("balance")
		}
	}
	b.ReportMetric(float64(pr.NX*pr.NY*pr.NZ*pr.Angles*8), "updates/iter")
}

func BenchmarkSweepSolverParallelHost(b *testing.B) {
	cfg := sweep3d.Config{I: 10, J: 10, K: 40, MK: 10, Angles: 6}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := sweep3d.SolveParallelHost(cfg, 2, 2)
		if res.BalanceError() > 1e-11 {
			b.Fatal("balance")
		}
	}
}

func BenchmarkSweepDES(b *testing.B) {
	cfg := sweep3d.Config{I: 3, J: 3, K: 8, MK: 4, Angles: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sweep3d.RunOnDES(cfg, 8, 4, cml.CurrentSoftware()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLinpackLU(b *testing.B) {
	a := linpack.RandomSPD(128, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := a.Clone()
		if _, err := linpack.Factorize(m, 32); err != nil {
			b.Fatal(err)
		}
	}
}

// Live host kernels: real measurements on the build machine, reported
// for context (never asserted).

func BenchmarkHostTriadLive(b *testing.B) {
	var bw units.Bandwidth
	for i := 0; i < b.N; i++ {
		bw, _ = microbench.HostTriad(1 << 20)
	}
	b.ReportMetric(bw.GBps(), "host-GB/s")
}

func BenchmarkHostChaseLive(b *testing.B) {
	var ns float64
	for i := 0; i < b.N; i++ {
		ns, _ = microbench.HostChase(1<<20, 1<<20)
	}
	b.ReportMetric(ns, "host-ns/hop")
}
