// Command rrexp runs the paper-reproduction experiments through the
// orchestrator: every table and figure of the evaluation section, the
// LINPACK headline, and the ablations. The suite is embarrassingly
// parallel (one deterministic DES engine per experiment), so -parallel
// spreads it over all CPUs with byte-identical output to a serial run,
// and -cache skips experiments whose artifact for the current model
// inputs is already stored.
//
// Usage:
//
//	rrexp -list
//	rrexp -run fig13
//	rrexp -filter '^coll-' -parallel
//	rrexp -run all -parallel -cache [-csv out/] [-jsonl results.jsonl]
//	rrexp -run all -workers 4 -timeout 30s -quiet
//
// Exit status: 0 all experiments passed their paper-vs-measured checks,
// 1 some failed or errored, 2 usage or I/O error.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"time"

	"roadrunner"
	"roadrunner/internal/fabric"
	"roadrunner/internal/scenario"
)

func main() {
	os.Exit(run())
}

func run() int {
	list := flag.Bool("list", false, "list experiments (sorted by ID) and exit")
	runIDs := flag.String("run", "all", "comma-separated experiment IDs to run, or 'all'")
	filter := flag.String("filter", "", "regular expression selecting experiment IDs (applies to -run and -list)")
	parallel := flag.Bool("parallel", false, "run the suite on a GOMAXPROCS-sized worker pool")
	workers := flag.Int("workers", 0, "explicit worker-pool size (overrides -parallel; 0 = serial unless -parallel)")
	cache := flag.Bool("cache", false, "reuse/store artifacts in the content-addressed cache")
	cacheDir := flag.String("cache-dir", defaultCacheDir(), "artifact cache location")
	timeout := flag.Duration("timeout", 0, "per-experiment timeout (0 = none)")
	jsonl := flag.String("jsonl", "", "stream one JSON line per result to this file ('-' = stdout)")
	csvDir := flag.String("csv", "", "directory to write CSV artifacts into")
	quiet := flag.Bool("quiet", false, "print only the per-experiment summaries")
	pdes := flag.String("pdes", "auto",
		"parallel DES inside experiments: off (serial engine), auto (GOMAXPROCS workers) or a worker count; results are identical at any setting")
	topology := flag.String("topology", "",
		"fabric topology the scenario sweeps run on (see rrsim -topology); non-default runs are what-if sweeps, so paper-vs-measured checks may fail by design")
	flag.Parse()
	if err := scenario.ApplyPDESFlag(*pdes); err != nil {
		fmt.Fprintf(os.Stderr, "rrexp: %v\n", err)
		return 2
	}
	if err := scenario.ApplyTopologyFlag(*topology); err != nil {
		fmt.Fprintf(os.Stderr, "rrexp: %v\n", err)
		return 2
	}

	var matches func(string) bool
	if *filter != "" {
		re, err := regexp.Compile(*filter)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad -filter: %v\n", err)
			return 2
		}
		matches = re.MatchString
	}

	if *list {
		// Sorted by ID and independent of registration order, so the
		// inventory is stable across refactors and diffable in CI logs.
		// Each entry carries its registered description, so the listing
		// says what an experiment sweeps, not just what it is called.
		exps := roadrunner.Experiments()
		sort.Slice(exps, func(i, j int) bool { return exps[i].ID < exps[j].ID })
		for _, e := range exps {
			if matches != nil && !matches(e.ID) {
				continue
			}
			fmt.Printf("%-22s %-45s %s\n", e.ID, e.Title, e.PaperRef)
			fmt.Printf("%22s   %s\n", "", e.Description)
		}
		return 0
	}

	var ids []string
	if *runIDs == "all" {
		for _, e := range roadrunner.Experiments() {
			ids = append(ids, e.ID)
		}
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}
	if matches != nil {
		kept := ids[:0]
		for _, id := range ids {
			if matches(id) {
				kept = append(kept, id)
			}
		}
		ids = kept
		if len(ids) == 0 {
			fmt.Fprintf(os.Stderr, "no experiments match -filter %q\n", *filter)
			return 2
		}
	}

	opts := roadrunner.SuiteOptions{Timeout: *timeout}
	switch {
	case *workers > 0:
		opts.Workers = *workers
	case *parallel:
		opts.Workers = runtime.GOMAXPROCS(0)
	default:
		opts.Workers = 1
	}

	if *cache {
		dir := *cacheDir
		// Artifacts depend on the selected fabric; a per-topology
		// subdirectory keeps a what-if run from ever serving (or
		// poisoning) the default tree's cached artifacts.
		if name := scenario.TopologyName(); name != fabric.DefaultTopology {
			dir = filepath.Join(dir, "topo-"+name)
		}
		c, err := roadrunner.OpenArtifactCache(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		opts.Cache = c
	}

	// Human-readable per-experiment output; moved to stderr when the
	// JSONL stream owns stdout so `-jsonl - | jq .` stays parseable.
	human := os.Stdout
	var jsonlW *os.File
	if *jsonl == "-" {
		jsonlW = os.Stdout
		human = os.Stderr
	} else if *jsonl != "" {
		f, err := os.Create(*jsonl)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		defer f.Close()
		jsonlW = f
	}
	var streamer *roadrunner.SuiteStreamer
	if jsonlW != nil || *csvDir != "" {
		var w io.Writer
		if jsonlW != nil {
			w = jsonlW
		}
		streamer = roadrunner.NewSuiteStreamer(w, *csvDir)
		opts.OnResult = streamer.OnResult
	}

	// Ctrl-C cancels the remainder of the suite; completed artifacts and
	// cache entries are kept.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	start := time.Now()
	results, err := roadrunner.RunExperiments(ctx, ids, opts)
	if err != nil && results == nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	failures := 0
	for _, r := range results {
		switch {
		case r.Err != nil:
			fmt.Fprintf(os.Stderr, "[ERR ] %-22s %v\n", r.ID, r.Err)
			failures++
		case *quiet:
			status := "PASS"
			if !r.Artifact.Checks.AllOK() {
				status = "FAIL"
				failures++
			}
			tag := ""
			if r.CacheHit {
				tag = " (cached)"
			}
			fmt.Fprintf(human, "[%s] %-22s %s (%d checks, %v)%s\n",
				status, r.ID, r.Title, len(r.Artifact.Checks.Items),
				r.Elapsed.Round(time.Millisecond), tag)
		default:
			fmt.Fprintln(human, r.Artifact)
			if !r.Artifact.Checks.AllOK() {
				failures++
			}
		}
		if r.CacheErr != nil {
			fmt.Fprintf(os.Stderr, "[warn] %-22s %v\n", r.ID, r.CacheErr)
		}
	}
	if streamer != nil {
		if err := streamer.Err(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}
	if opts.Cache != nil {
		hits, misses := opts.Cache.Stats()
		fmt.Fprintf(os.Stderr, "cache: %d hit(s), %d miss(es) under %s\n",
			hits, misses, opts.Cache.Dir())
	}
	fmt.Fprintf(os.Stderr, "%d experiment(s) in %v with %d worker(s)\n",
		len(results), time.Since(start).Round(time.Millisecond), opts.Workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "suite cancelled:", err)
		return 1
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "%d experiment(s) failed\n", failures)
		return 1
	}
	return 0
}

// defaultCacheDir places the artifact cache under the user cache
// directory, falling back to a dot directory in the CWD.
func defaultCacheDir() string {
	if base, err := os.UserCacheDir(); err == nil {
		return base + "/roadrunner/artifacts"
	}
	return ".rrexp-cache"
}
