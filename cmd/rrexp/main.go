// Command rrexp runs the paper-reproduction experiments: every table and
// figure of the evaluation section, the LINPACK headline, and the
// ablations. Output is the rendered artifact plus its paper-vs-measured
// checks; -csv writes each table/figure as CSV files.
//
// Usage:
//
//	rrexp -list
//	rrexp -run fig13
//	rrexp -run all [-csv out/]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"roadrunner"
)

func main() {
	list := flag.Bool("list", false, "list experiments and exit")
	run := flag.String("run", "all", "experiment ID to run, or 'all'")
	csvDir := flag.String("csv", "", "directory to write CSV artifacts into")
	quiet := flag.Bool("quiet", false, "print only the check summaries")
	flag.Parse()

	if *list {
		for _, e := range roadrunner.Experiments() {
			fmt.Printf("%-22s %-45s %s\n", e.ID, e.Title, e.PaperRef)
		}
		return
	}

	var ids []string
	if *run == "all" {
		for _, e := range roadrunner.Experiments() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*run, ",")
	}

	failures := 0
	for _, id := range ids {
		art, err := roadrunner.RunExperiment(strings.TrimSpace(id))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if *quiet {
			status := "PASS"
			if !art.Checks.AllOK() {
				status = "FAIL"
			}
			fmt.Printf("[%s] %-22s %s (%d checks)\n", status, art.ID, art.Title, len(art.Checks.Items))
		} else {
			fmt.Println(art)
		}
		if !art.Checks.AllOK() {
			failures++
		}
		if *csvDir != "" {
			if err := writeCSVs(*csvDir, art); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "%d experiment(s) failed checks\n", failures)
		os.Exit(1)
	}
}

func writeCSVs(dir string, art *roadrunner.Artifact) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, t := range art.Tables {
		name := filepath.Join(dir, fmt.Sprintf("%s-table%d.csv", art.ID, i))
		if err := os.WriteFile(name, []byte(t.CSV()), 0o644); err != nil {
			return err
		}
	}
	for i, f := range art.Figures {
		name := filepath.Join(dir, fmt.Sprintf("%s-fig%d.csv", art.ID, i))
		if err := os.WriteFile(name, []byte(f.CSV()), 0o644); err != nil {
			return err
		}
	}
	return nil
}
