// Command rrsched drives the facility simulator: the full 3,060-node
// Roadrunner machine under a deterministic job stream, scheduled by a
// batch policy over a node allocator.
//
// A run generates a seeded LINPACK/Sweep3D/trace job mix, simulates it
// end to end, and prints the headline accounting (utilization, queue
// wait, bounded slowdown, fragmentation, makespan vs the oracle packer)
// plus occupancy/fragmentation density strips; -gantt adds the per-job
// timeline. A sweep runs the canonical mix over every policy x
// allocator combination and prints one row per point.
//
// Usage:
//
//	rrsched run                                 # canonical 48-job mix, EASY + contiguous
//	rrsched run -policy fcfs -alloc scattered
//	rrsched run -jobs 16 -seed 7 -mean-arrival 60 -trace=false
//	rrsched run -gantt -width 100
//	rrsched run -jsonl run.jsonl                # one JSON line per job + summary
//	rrsched sweep                               # 2 policies x 3 allocators, twice
//	rrsched sweep -jsonl sweep.jsonl
//
// Mixes with trace-replay jobs (-trace, the default) first capture a
// 16-rank Sweep3D communication schedule and price each trace job by
// replaying it under the granted node mapping; -trace=false drops that
// class and runs in milliseconds. Every run is a deterministic function
// of its flags.
//
// Exit status: 0 success, 1 run error, 2 usage error.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"roadrunner"
	"roadrunner/internal/facility"
	"roadrunner/internal/report"
	"roadrunner/internal/units"
)

func main() {
	os.Exit(run())
}

func run() int {
	if len(os.Args) < 2 {
		usage()
		return 2
	}
	switch os.Args[1] {
	case "run":
		return runMix(os.Args[2:])
	case "sweep":
		return runSweep(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return 0
	}
	fmt.Fprintf(os.Stderr, "rrsched: unknown subcommand %q\n\n", os.Args[1])
	usage()
	return 2
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  rrsched run [-policy fcfs|easy] [-alloc contiguous|scattered|assisted]
              [-jobs N] [-seed N] [-mean-arrival SECONDS] [-trace=BOOL]
              [-gantt] [-width N] [-jsonl FILE]
  rrsched sweep [-jsonl FILE]

run   simulates one policy/allocator pair over a seeded job mix and
      prints the summary + occupancy strips (and -gantt the timeline)
sweep runs the canonical mix over every policy x allocator combination
`)
}

func runMix(args []string) int {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	policy := fs.String("policy", "easy", "scheduling policy: fcfs or easy")
	alloc := fs.String("alloc", "contiguous", "node allocator: contiguous, scattered or assisted")
	jobs := fs.Int("jobs", 0, "job count (0 keeps the canonical mix's 48)")
	seed := fs.Int64("seed", 0, "workload seed (0 keeps the canonical mix's)")
	meanArrival := fs.Float64("mean-arrival", 0, "mean interarrival in seconds (0 keeps the canonical mix's 90)")
	withTrace := fs.Bool("trace", true, "include trace-replay jobs (capture + replay pricing)")
	gantt := fs.Bool("gantt", false, "print the per-job timeline")
	width := fs.Int("width", 72, "chart width in columns")
	jsonl := fs.String("jsonl", "", "dump one JSON line per job plus the summary to FILE")
	fs.Parse(args)
	if fs.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "rrsched run: unexpected arguments %v\n", fs.Args())
		return 2
	}

	w := roadrunner.DefaultFacilityWorkload()
	if *jobs > 0 {
		w.Jobs = *jobs
	}
	if *seed != 0 {
		w.Seed = *seed
	}
	if *meanArrival > 0 {
		w.MeanInterarrival = units.FromSeconds(*meanArrival)
	}
	if !*withTrace {
		kept := w.Classes[:0]
		for _, c := range w.Classes {
			if c.Class != roadrunner.FacilityClassTrace {
				kept = append(kept, c)
			}
		}
		w.Classes = kept
	}

	start := time.Now()
	res, err := roadrunner.RunFacility(*policy, *alloc, w)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rrsched run: %v\n", err)
		return 1
	}
	fmt.Print(facility.Summary(res))
	fmt.Print(facility.Occupancy(res, *width))
	if *gantt {
		fmt.Print(facility.Gantt(res, *width))
	}
	fmt.Printf("simulated in %v\n", time.Since(start).Round(time.Millisecond))

	if *jsonl != "" {
		if err := dumpRunJSONL(*jsonl, res); err != nil {
			fmt.Fprintf(os.Stderr, "rrsched run: %v\n", err)
			return 1
		}
		fmt.Printf("wrote %d job lines + summary to %s\n", len(res.Jobs), *jsonl)
	}
	return 0
}

// dumpRunJSONL writes one line per job outcome, then the run summary
// with the jobs and timeline stripped.
func dumpRunJSONL(path string, res *facility.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	em := report.NewJSONLEmitter(f)
	for _, j := range res.Jobs {
		if err := em.Emit(struct {
			Kind string `json:"kind"`
			facility.JobOutcome
		}{"job", j}); err != nil {
			f.Close()
			return err
		}
	}
	summary := *res
	summary.Jobs = nil
	summary.Timeline = nil
	if err := em.Emit(struct {
		Kind string `json:"kind"`
		facility.Result
	}{"summary", summary}); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func runSweep(args []string) int {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	jsonl := fs.String("jsonl", "", "dump one JSON line per sweep point to FILE")
	fs.Parse(args)
	if fs.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "rrsched sweep: unexpected arguments %v\n", fs.Args())
		return 2
	}

	start := time.Now()
	rep, err := roadrunner.FacilitySweep()
	if err != nil {
		fmt.Fprintf(os.Stderr, "rrsched sweep: %v\n", err)
		return 1
	}
	fmt.Printf("%s: %d jobs on %d nodes (trace %s, %d ranks)\n",
		rep.Workload, rep.Jobs, rep.MachineNodes, rep.TraceName, rep.TraceRanks)
	fmt.Printf("%-6s %-11s %6s %12s %12s %6s %6s %14s %8s %5s\n",
		"policy", "alloc", "util", "mean wait", "p95 wait", "slow", "frag", "makespan", "oracle", "bfill")
	for _, p := range rep.Points {
		fmt.Printf("%-6s %-11s %5.1f%% %12v %12v %6.1f %6.3f %14v %8.3f %5d\n",
			p.Policy, p.Alloc, p.UtilizationFrac*100, p.MeanWait, p.P95Wait,
			p.MeanSlowdown, p.MeanFragmentation, p.Makespan, p.OracleRatio, p.Backfilled)
	}
	fmt.Printf("deterministic=%v (two full sweeps compared) in %v\n",
		rep.Deterministic, time.Since(start).Round(time.Millisecond))

	if *jsonl != "" {
		f, err := os.Create(*jsonl)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rrsched sweep: %v\n", err)
			return 1
		}
		em := report.NewJSONLEmitter(f)
		for _, p := range rep.Points {
			if err := em.Emit(p); err != nil {
				f.Close()
				fmt.Fprintf(os.Stderr, "rrsched sweep: %v\n", err)
				return 1
			}
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "rrsched sweep: %v\n", err)
			return 1
		}
		fmt.Printf("wrote %d points to %s\n", len(rep.Points), *jsonl)
	}
	return 0
}
