// Command rrserve runs the simulation-as-a-service HTTP server: the
// replay, placement-search and collective engines behind an
// asynchronous job API.
//
//	rrserve                          # :8080, GOMAXPROCS workers, cached
//	rrserve -addr :9000 -workers 8
//	rrserve -cache-dir "" -queue 64  # no persistent cache, small queue
//
// Submit work, poll the job, stream the result:
//
//	curl -s -X POST localhost:8080/v1/replay -d @request.json
//	curl -s localhost:8080/v1/jobs/<id>
//	curl -s localhost:8080/v1/jobs/<id>/result
//
// docs/api.md is the full endpoint reference. Identical requests
// coalesce onto one job, finished artifacts persist in the
// content-addressed cache (same request + same model inputs + same
// binary = same artifact, served without simulating), and every
// artifact is byte-identical however it was scheduled
// (docs/determinism.md).
//
// Exit status: 0 on clean shutdown (SIGINT/SIGTERM), 1 on serve error,
// 2 on usage error.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"roadrunner"
	"roadrunner/internal/scenario"
	"roadrunner/internal/serve"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "request workers (0 = GOMAXPROCS; changes wall clock only, never results)")
	queue := flag.Int("queue", 0, "job queue depth (0 = 1024); submissions beyond it get 503")
	maxBody := flag.Int64("max-body", 0, "request body bound in bytes (0 = 64 MB)")
	poolTraces := flag.Int("pool-traces", 0, "warm evaluator pools to retain (0 = 8)")
	cacheDir := flag.String("cache-dir", defaultCacheDir(), "artifact cache location ('' disables the persistent cache)")
	pdes := flag.String("pdes", "auto",
		"parallel DES inside scenario jobs: off (serial engine), auto (GOMAXPROCS workers) or a worker count; results are identical at any setting")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "rrserve: unexpected arguments %v\n", flag.Args())
		flag.Usage()
		return 2
	}
	if err := scenario.ApplyPDESFlag(*pdes); err != nil {
		fmt.Fprintf(os.Stderr, "rrserve: %v\n", err)
		return 2
	}

	opts := serve.Options{
		Workers:      *workers,
		QueueDepth:   *queue,
		MaxBodyBytes: *maxBody,
		PoolTraces:   *poolTraces,
	}
	if *cacheDir != "" {
		cache, err := roadrunner.OpenArtifactCache(*cacheDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rrserve: opening cache: %v\n", err)
			return 1
		}
		opts.Cache = cache
		fmt.Printf("artifact cache at %s\n", cache.Dir())
	}

	srv := serve.New(opts)
	defer srv.Close()
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	fmt.Printf("rrserve listening on %s (model %s)\n", *addr, roadrunner.ModelFingerprint()[:12])

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "rrserve: %v\n", err)
			return 1
		}
	case s := <-sig:
		fmt.Printf("rrserve: %v, draining\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "rrserve: shutdown: %v\n", err)
			return 1
		}
	}
	return 0
}

// defaultCacheDir places the artifact cache under the user cache
// directory, falling back to a dot directory in the CWD — the same
// location rrexp uses, so a suite run and the server share entries'
// storage root (their key namespaces are disjoint).
func defaultCacheDir() string {
	if base, err := os.UserCacheDir(); err == nil {
		return filepath.Join(base, "roadrunner", "artifacts")
	}
	return ".roadrunner-artifacts"
}
