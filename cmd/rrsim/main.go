// Command rrsim explores the simulated Roadrunner machine: topology
// queries over the InfiniBand fat tree, chip microbenchmarks, and the
// communication path composition between any two SPEs.
//
// Usage:
//
//	rrsim -hops 0 2000          # crossbar hops and latency between nodes
//	rrsim -census               # Table I census from node 0
//	rrsim -audit                # fabric structural audit
//	rrsim -chip                 # SPU pipeline microbenchmarks
//	rrsim -memory               # Table III memory characterisation
//	rrsim -des                  # Sweep3D on the DES machine + engine stats
//	rrsim -collective allreduce-ring -ranks 64 -msg 1048576
//	                            # one collective on the DES + engine stats
//	rrsim -collective list      # the implemented algorithms
//	rrsim -collective alltoall-pairwise -ranks 360 -msg 65536 -toplinks 8
//	                            # congested run + the most contended links
//	rrsim -collective alltoall-pairwise -ranks 360 -congestion=off
//	                            # infinite-capacity fabric (the PR 2 model)
//	rrsim -topology torus -collective alltoall-pairwise -ranks 360
//	                            # same collective on an alternative fabric
//	rrsim -topology fattree-full -census
//	                            # hop census of the full-bisection tree
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"roadrunner"
	"roadrunner/internal/cml"
	"roadrunner/internal/fabric"
	"roadrunner/internal/ib"
	"roadrunner/internal/isa"
	"roadrunner/internal/microbench"
	"roadrunner/internal/scenario"
	"roadrunner/internal/spu"
	"roadrunner/internal/sweep3d"
	"roadrunner/internal/trace"
	"roadrunner/internal/transport"
	"roadrunner/internal/units"
)

func main() {
	census := flag.Bool("census", false, "print the Table I hop census")
	audit := flag.Bool("audit", false, "print the fabric structural audit")
	chip := flag.Bool("chip", false, "print SPU pipeline microbenchmarks")
	memory := flag.Bool("memory", false, "print the Table III memory characterisation")
	des := flag.Bool("des", false, "run Sweep3D on the discrete-event machine and print engine stats")
	ranks := flag.Int("ranks", 32, "ranks for -des (placed px x py) and -collective (one per node)")
	coll := flag.String("collective", "", "run one collective algorithm by name, or 'list'")
	msg := flag.Int64("msg", 8, "per-rank payload bytes for -collective")
	congestion := flag.String("congestion", "on",
		"link congestion for -collective: on routes messages over the cable topology with finite-capacity channels; off reproduces the infinite-capacity fabric")
	toplinks := flag.Int("toplinks", 5, "contended links to print after a congested -collective run (the census keeps the 10 hottest)")
	pdes := flag.String("pdes", "auto",
		"parallel DES for batch runs: off (serial engine), auto (GOMAXPROCS workers) or a worker count; results are identical at any setting")
	topology := flag.String("topology", "",
		"fabric topology for -hops/-census/-audit/-collective (see fabric.Topologies; default: the paper's tapered fat-tree)")
	flag.Parse()
	if err := scenario.ApplyPDESFlag(*pdes); err != nil {
		fmt.Fprintf(os.Stderr, "rrsim: %v\n", err)
		os.Exit(2)
	}
	if err := scenario.ApplyTopologyFlag(*topology); err != nil {
		fmt.Fprintf(os.Stderr, "rrsim: %v\n", err)
		os.Exit(2)
	}

	fab, err := fabric.NewTopology(scenario.TopologyName())
	if err != nil {
		fmt.Fprintf(os.Stderr, "rrsim: %v\n", err)
		os.Exit(2)
	}
	args := flag.Args()
	if len(args) == 2 {
		var a, b int
		if _, err := fmt.Sscanf(args[0]+" "+args[1], "%d %d", &a, &b); err != nil {
			fmt.Fprintln(os.Stderr, "usage: rrsim <nodeA> <nodeB>")
			os.Exit(2)
		}
		na, nb := fabric.FromGlobal(a), fabric.FromGlobal(b)
		fmt.Printf("%v -> %v (%s): %d crossbar hops, %v switch latency, %v MPI zero-byte\n",
			na, nb, fab.PairClass(na, nb), fab.HopsGlobal(a, b), fab.HopLatency(na, nb),
			microbench.Fig10Latency(fab, nb))
		return
	}

	if *census {
		c := fab.Census(fabric.NodeID{})
		fmt.Printf("self=%d sameXbar=%d sameCU=%d near(same/other xbar)=%d/%d far=%d/%d total=%d mean=%.2f\n",
			c.Self, c.SameXbar, c.SameCU, c.NearCUsSameXbar, c.NearCUsOtherXbar,
			c.FarCUsSameXbar, c.FarCUsOtherXbar, c.Total, c.MeanHops)
	}
	if *audit {
		a := fab.Audit()
		fmt.Printf("%+v\n", a)
	}
	if *chip {
		for _, m := range []*spu.Model{spu.CellBE(), spu.PowerXCell8i()} {
			fmt.Printf("%s:\n", m)
			for _, g := range isa.Groups() {
				fmt.Printf("  %-5s latency %2d cycles, repetition %d\n",
					g, m.MeasureLatency(g), m.MeasureRepetition(g))
			}
			fmt.Printf("  sustained DP %v x8 SPEs, SP %v x8\n",
				m.PeakDPFlops(), m.PeakSPFlops())
		}
	}
	if *memory {
		for _, r := range microbench.TableIII() {
			fmt.Printf("%-22s triad %8.2f GB/s   latency %6.1f ns\n",
				r.Processor, r.Triad.GBps(), r.Latency.Nanoseconds())
		}
	}
	if *des {
		px := *ranks / 4
		if px < 1 {
			px = 1
		}
		py := *ranks / px
		if py < 1 {
			py = 1
		}
		if px*py != *ranks {
			fmt.Fprintf(os.Stderr, "note: -ranks %d is not px*py factorable here; running %dx%d = %d ranks\n",
				*ranks, px, py, px*py)
		}
		cfg := sweep3d.Config{I: 5, J: 5, K: 40, MK: 10, Angles: 6}
		start := time.Now()
		res, err := sweep3d.RunOnDES(cfg, px, py, cml.CurrentSoftware())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		wall := time.Since(start)
		st := res.EngineStats
		fmt.Printf("sweep3d %dx%d ranks: iteration %v (simulated), balance err %.2e\n",
			px, py, res.IterationTime, res.BalanceError())
		fmt.Printf("engine: %d events dispatched, calendar peak %d, %.0f events/s host\n",
			st.Dispatched, st.CalendarPeak,
			float64(st.Dispatched)/wall.Seconds())
		if workers := scenario.ParallelWorkers(); workers > 1 {
			if err := desParallelStats(px, py, workers); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
		}
	}
	if *coll != "" {
		if *coll == "list" {
			for _, op := range roadrunner.CollectiveOps() {
				fmt.Println(op)
			}
			return
		}
		congested := true
		switch *congestion {
		case "on":
		case "off":
			congested = false
		default:
			fmt.Fprintf(os.Stderr, "bad -congestion %q: want on or off\n", *congestion)
			os.Exit(2)
		}
		run := roadrunner.RunCollectiveCongestedOn
		if !congested {
			run = roadrunner.RunCollectiveOn
		}
		start := time.Now()
		res, err := run(scenario.TopologyName(), roadrunner.CollectiveOp(*coll), *ranks, units.Size(*msg))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		wall := time.Since(start)
		bw := ""
		if res.WireBytes > 0 {
			bw = fmt.Sprintf(", %.4g MB/s effective", res.Bandwidth().MBps())
		}
		fmt.Printf("%s over %d ranks, %v per rank: %v (fastest rank %v%s)\n",
			res.Op, res.Ranks, res.Size, res.Time, res.MinTime, bw)
		fmt.Printf("%d messages, %v on the wire\n", res.Messages, res.WireBytes)
		if c := res.Congestion; c != nil {
			fmt.Printf("congestion: %d link channels used, %d queued flows, %v total wait\n",
				c.Links, c.Queued, c.TotalWait)
			n := *toplinks
			if n > len(c.Top) {
				n = len(c.Top)
			}
			if n > 0 {
				fmt.Printf("top %d contended links:\n", n)
				for _, u := range c.Top[:n] {
					fmt.Printf("  %s\n", u)
				}
			}
		}
		st := res.EngineStats
		fmt.Printf("engine: %d events dispatched, calendar peak %d, %.0f events/s host\n",
			st.Dispatched, st.CalendarPeak, float64(st.Dispatched)/wall.Seconds())
	}
	if !*census && !*audit && !*chip && !*memory && !*des && *coll == "" && len(args) == 0 {
		flag.Usage()
	}
}

// desParallelStats reruns the -des Sweep3D model through the parallel
// DES path: the run's wavefront schedule is captured as a trace and
// replayed under the three standard placements on the congested fabric,
// one sim.Cluster domain per placement, spread over the -pdes workers.
// The per-domain counters (events executed, windows, cross-domain
// messages) and per-worker busy/idle make the partition's lookahead
// quality observable; the replay results themselves are byte-identical
// to serial replays of the same placements.
func desParallelStats(px, py, workers int) error {
	cfg := sweep3d.Config{I: 5, J: 5, K: 40, MK: 10, Angles: 6}
	_, tr, err := sweep3d.CaptureDES(cfg, px, py, cml.CurrentSoftware())
	if err != nil {
		return err
	}
	fab, err := fabric.NewTopology(scenario.TopologyName())
	if err != nil {
		return err
	}
	placements := make([][]transport.Endpoint, len(scenario.TraceReplayPlacementNames))
	for i, name := range scenario.TraceReplayPlacementNames {
		p, err := scenario.TraceReplayPlaces(name, fab, tr.Meta.Ranks)
		if err != nil {
			return err
		}
		placements[i] = p
	}
	start := time.Now()
	results, dstats, wstats, err := trace.ReplayMany(tr, trace.ReplayConfig{
		Fabric:  fab,
		Profile: ib.OpenMPI(),
		Policy:  transport.Congested(),
	}, placements, workers)
	if err != nil {
		return err
	}
	wall := time.Since(start)
	fmt.Printf("parallel DES: %d domains (one per placement replay) on %d workers, %v wall clock\n",
		len(results), len(wstats), wall.Round(time.Millisecond))
	for i, st := range dstats {
		fmt.Printf("  domain %d %-8s %9d events, %d windows, %d cross-domain msgs, makespan %v\n",
			i, scenario.TraceReplayPlacementNames[i], st.Events, st.Windows,
			st.Sent+st.Received, results[i].Time)
	}
	for w, st := range wstats {
		fmt.Printf("  worker %d: busy %v, idle %v\n",
			w, st.Busy.Round(time.Microsecond), st.Idle.Round(time.Microsecond))
	}
	return nil
}
