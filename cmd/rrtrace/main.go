// Command rrtrace captures, inspects and replays application
// communication traces over the simulated Roadrunner interconnect.
//
// A capture runs one Sweep3D source iteration on the DES machine and
// records the KBA wavefront schedule — every boundary receive, block
// compute and boundary send — as a JSONL trace (one header line, then
// one record per line in rank-major order). A replay drives the same
// schedule through the congestion-aware transport under a chosen
// rank→node placement, reporting the makespan, per-message timing and
// the link-contention census.
//
// Usage:
//
//	rrtrace capture -o sweep.jsonl                 # 8x8 ranks, 5x5x40 grid
//	rrtrace capture -px 4 -py 4 -k 20 -o small.jsonl
//	rrtrace inspect -i sweep.jsonl
//	rrtrace replay -i sweep.jsonl                  # block placement, congested
//	rrtrace replay -i sweep.jsonl -placement strided -stride 180 -toplinks 8
//	rrtrace replay -i sweep.jsonl -placement packed -congestion=off
//	rrtrace replay -i sweep.jsonl -skip-compute -messages 5
//	rrtrace replay -i sweep.jsonl -topology torus  # same schedule, torus wiring
//	rrtrace optimize -i sweep.jsonl                # search rank placements
//	rrtrace optimize -i sweep.jsonl -seed 3 -anneal-rounds 8 -mapping 8
//	rrtrace optimize -i sweep.jsonl -surrogate     # two-tier: surrogate screens
//
// An optimize run searches rank→node mappings against the replayed
// trace (the pooled batch evaluator is the objective), seeded from the
// block/strided/packed baselines: greedy pairwise-swap refinement, then
// batched simulated annealing. Deterministic for a given seed; -workers
// only changes wall clock. With -surrogate the analytic queueing
// surrogate — calibrated against -anchors DES replays — prices a
// -screen-factor wider candidate pool each round and only the cheapest
// shortlist reaches the DES; every reported time stays a DES-replayed
// makespan.
//
// Exit status: 0 success, 1 run error, 2 usage error.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"roadrunner/internal/cml"
	"roadrunner/internal/collectives"
	"roadrunner/internal/fabric"
	"roadrunner/internal/ib"
	"roadrunner/internal/placement"
	"roadrunner/internal/scenario"
	"roadrunner/internal/sweep3d"
	"roadrunner/internal/trace"
	"roadrunner/internal/transport"
)

func main() {
	os.Exit(run())
}

func run() int {
	if len(os.Args) < 2 {
		usage()
		return 2
	}
	switch os.Args[1] {
	case "capture":
		return capture(os.Args[2:])
	case "inspect":
		return inspect(os.Args[2:])
	case "replay":
		return replay(os.Args[2:])
	case "optimize":
		return optimize(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return 0
	}
	fmt.Fprintf(os.Stderr, "rrtrace: unknown subcommand %q\n\n", os.Args[1])
	usage()
	return 2
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  rrtrace capture [-px N -py N -i/-j/-k/-mk/-angles N] -o FILE
  rrtrace inspect -i FILE | inspect -spec
  rrtrace replay -i FILE [-placement block|strided|packed|all] [-stride N]
                 [-per-node N] [-core N] [-congestion on|off] [-pdes off|auto|N]
                 [-skip-compute] [-toplinks N] [-messages N] [-topology NAME]
  rrtrace optimize -i FILE [-seed N] [-workers N] [-congestion on|off]
                 [-full-schedule] [-greedy-rounds N] [-greedy-batch N]
                 [-anneal-rounds N] [-anneal-batch N] [-stride N]
                 [-per-node N] [-toplinks N] [-mapping N] [-topology NAME]
                 [-surrogate] [-screen-factor N] [-anchors N]
`)
}

func capture(args []string) int {
	fs := flag.NewFlagSet("capture", flag.ExitOnError)
	px := fs.Int("px", 8, "rank-grid width")
	py := fs.Int("py", 8, "rank-grid height")
	i := fs.Int("i", 5, "per-rank subgrid I extent")
	j := fs.Int("j", 5, "per-rank subgrid J extent")
	k := fs.Int("k", 40, "per-rank subgrid K extent")
	mk := fs.Int("mk", 10, "K-blocking factor (must divide -k)")
	angles := fs.Int("angles", 6, "angles per octant")
	out := fs.String("o", "", "output trace file (required)")
	fs.Parse(args)
	if *out == "" {
		fmt.Fprintln(os.Stderr, "rrtrace capture: -o is required")
		return 2
	}
	cfg := sweep3d.Config{I: *i, J: *j, K: *k, MK: *mk, Angles: *angles}
	start := time.Now()
	res, tr, err := sweep3d.CaptureDES(cfg, *px, *py, cml.CurrentSoftware())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if err := trace.Save(*out, tr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	s := tr.Stats()
	fmt.Printf("captured %s: %d records (%d sends, %d recvs, %d computes), %v payload\n",
		tr.Meta.Name, s.Records, s.Sends, s.Recvs, s.Computes, s.Bytes)
	fmt.Printf("capture iteration %v simulated (CML path), %v host wall clock\n",
		res.IterationTime, time.Since(start).Round(time.Millisecond))
	fmt.Printf("wrote %s\n", *out)
	return 0
}

func inspect(args []string) int {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	in := fs.String("i", "", "trace file (required)")
	spec := fs.Bool("spec", false, "print where the normative trace-format specification lives and exit")
	fs.Parse(args)
	if *spec {
		fmt.Printf("format %s version %d\n", trace.FormatName, trace.FormatVersion)
		fmt.Println("specification: docs/trace-format.md in the roadrunner source tree")
		fmt.Println("  (JSONL: one header line, then records in rank-major order;")
		fmt.Println("   validated invariants: dense seqs, FIFO send/recv matching, acyclic deps)")
		return 0
	}
	if *in == "" {
		fmt.Fprintln(os.Stderr, "rrtrace inspect: -i is required")
		return 2
	}
	tr, err := trace.Load(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	s := tr.Stats()
	fmt.Printf("trace %s (app %s): %d ranks, %d records\n", tr.Meta.Name, tr.Meta.App, s.Ranks, s.Records)
	fmt.Printf("  sends %d, recvs %d, computes %d\n", s.Sends, s.Recvs, s.Computes)
	fmt.Printf("  payload %v on the wire, %v compute (summed over ranks), capture span %v\n",
		s.Bytes, s.ComputeTime, s.Span)
	if len(tr.Meta.Attrs) > 0 {
		fmt.Println("  attrs:")
		for _, k := range sortedKeys(tr.Meta.Attrs) {
			fmt.Printf("    %s = %s\n", k, tr.Meta.Attrs[k])
		}
	}
	return 0
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func optimize(args []string) int {
	fs := flag.NewFlagSet("optimize", flag.ExitOnError)
	in := fs.String("i", "", "trace file (required)")
	seed := fs.Int64("seed", 1, "random seed; equal seeds give identical searches")
	workers := fs.Int("workers", 0, "parallel evaluators (0 = GOMAXPROCS; result is identical either way)")
	congestion := fs.String("congestion", "on", "objective fabric: on (wormhole) or off (infinite capacity)")
	fullSchedule := fs.Bool("full-schedule", false,
		"optimize the full schedule including compute (default: communication-only, where placement shows undamped)")
	greedyRounds := fs.Int("greedy-rounds", 4, "greedy pairwise-swap rounds")
	greedyBatch := fs.Int("greedy-batch", 16, "swap candidates per greedy round")
	annealRounds := fs.Int("anneal-rounds", 4, "simulated-annealing rounds")
	annealBatch := fs.Int("anneal-batch", 16, "proposals per annealing round")
	stride := fs.Int("stride", 180, "node stride of the strided baseline")
	perNode := fs.Int("per-node", 4, "ranks per node of the packed baseline")
	toplinks := fs.Int("toplinks", 5, "contended links of the winner's census to print")
	mapping := fs.Int("mapping", 0, "print the first N rank→node assignments of the winner")
	topology := fs.String("topology", "", "fabric topology to optimize on (see rrsim; default: the tapered fat-tree)")
	useSurrogate := fs.Bool("surrogate", false,
		"two-tier search: the analytic surrogate screens a wider candidate pool, the DES replays only the shortlist")
	screenFactor := fs.Int("screen-factor", 4, "surrogate screening ratio: candidates generated per DES replay (with -surrogate)")
	anchors := fs.Int("anchors", 12, "DES-replayed calibration anchors for the surrogate (with -surrogate)")
	fs.Parse(args)
	if *in == "" {
		fmt.Fprintln(os.Stderr, "rrtrace optimize: -i is required")
		return 2
	}
	tr, err := trace.Load(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fab, err := topoFabric(*topology)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rrtrace optimize: %v\n", err)
		return 2
	}
	var pol transport.Policy
	switch *congestion {
	case "on":
		pol = transport.Congested()
	case "off":
		pol = transport.InfiniteCapacity()
	default:
		fmt.Fprintf(os.Stderr, "rrtrace optimize: -congestion must be on or off, got %q\n", *congestion)
		return 2
	}
	starts := []placement.Start{
		{Name: "block", Places: toEndpoints(collectives.BlockPlacement(fab, tr.Meta.Ranks, 1))},
		{Name: "strided", Places: toEndpoints(collectives.StridedPlacement(fab, tr.Meta.Ranks, *stride, 1))},
		{Name: "packed", Places: toEndpoints(collectives.PackedPlacement(fab, tr.Meta.Ranks, *perNode))},
	}
	cfg := placement.Config{
		Trace: tr,
		Replay: trace.ReplayConfig{
			Fabric:      fab,
			Profile:     ib.OpenMPI(),
			Policy:      pol,
			SkipCompute: !*fullSchedule,
		},
		Starts:       starts,
		Seed:         *seed,
		Workers:      *workers,
		GreedyRounds: *greedyRounds,
		GreedyBatch:  *greedyBatch,
		AnnealRounds: *annealRounds,
		AnnealBatch:  *annealBatch,
		Surrogate:    *useSurrogate,
		ScreenFactor: *screenFactor,
		Anchors:      *anchors,
	}
	start := time.Now()
	res, err := placement.Optimize(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	wall := time.Since(start)
	objective := "communication-only"
	if *fullSchedule {
		objective = "full-schedule"
	}
	fmt.Printf("optimized %d-rank placement over the %s schedule (congestion %s): %d evaluations, %v wall clock\n",
		res.Ranks, objective, *congestion, res.Evaluations, wall.Round(time.Millisecond))
	if tj := res.Trajectory; tj.SurrogateEvals > 0 {
		fmt.Printf("  trajectory: %d DES replays (%.0f/s) + %d surrogate prices (%.0f/s), %.1fx per-eval speedup, %d duplicates deduped\n",
			tj.DESEvals, tj.DESRate(), tj.SurrogateEvals, tj.SurrogateRate(), tj.Speedup(), tj.DedupHits)
	} else if tj.DedupHits > 0 {
		fmt.Printf("  trajectory: %d DES replays (%.0f/s), %d duplicates deduped\n",
			tj.DESEvals, tj.DESRate(), tj.DedupHits)
	}
	fmt.Println("  baselines:")
	for _, b := range res.Baselines {
		fmt.Printf("    %-8s %v\n", b.Name, b.Time)
	}
	fmt.Printf("  winner: %v from the %s start (%.4fx improvement)\n", res.BestTime, res.Start, res.Improvement)
	for _, r := range res.Rounds {
		fmt.Printf("    %s %d: accepted %d, current %v, best %v\n", r.Phase, r.Round, r.Accepted, r.Current, r.Best)
	}
	// The winner replayed once more, fully observed, on a fresh
	// engine: the pooled search's makespan must reproduce exactly.
	obs := cfg.Replay
	obs.Places = res.Best
	obs.Observe = trace.ObserveCensus
	final, err := trace.Replay(tr, obs)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if final.Time != res.BestTime {
		fmt.Fprintf(os.Stderr, "rrtrace optimize: pooled objective %v does not reproduce under a fresh replay (%v)\n",
			res.BestTime, final.Time)
		return 1
	}
	fmt.Printf("  winner verified: %v reproduced on a fresh replay, %v on the wire\n", final.Time, final.WireBytes)
	if c := final.Congestion; c != nil {
		fmt.Printf("  census: %d links carried flows, %d queued, %v total wait (uplink tier: %d queued, %v)\n",
			c.Links, c.Queued, c.TotalWait, c.UplinkQueued, c.UplinkWait)
		n := *toplinks
		if n > len(c.Top) {
			n = len(c.Top)
		}
		for _, u := range c.Top[:n] {
			fmt.Printf("    %v\n", u)
		}
	}
	if n := min(*mapping, len(res.Best)); n > 0 {
		fmt.Printf("  first %d assignments:\n", n)
		for rank, ep := range res.Best[:n] {
			fmt.Printf("    rank %3d -> %v core %d\n", rank, ep.Node, ep.Core)
		}
	}
	return 0
}

// topoFabric builds the full-scale fabric for a -topology flag value
// ("" = the default tapered fat-tree, identical to roadrunner.Fabric()).
func topoFabric(name string) (*fabric.System, error) {
	if name == "" {
		name = fabric.DefaultTopology
	}
	return fabric.NewTopology(name)
}

// toEndpoints converts collective placements to transport endpoints.
func toEndpoints(places []collectives.Placement) []transport.Endpoint {
	out := make([]transport.Endpoint, len(places))
	for i, p := range places {
		out[i] = transport.Endpoint{Node: p.Node, Core: p.Core}
	}
	return out
}

func replay(args []string) int {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	in := fs.String("i", "", "trace file (required)")
	placement := fs.String("placement", "block",
		"rank→node mapping: block, strided, packed — or all, replaying every mapping as parallel DES domains")
	stride := fs.Int("stride", 180, "node stride for -placement strided")
	perNode := fs.Int("per-node", 4, "ranks per node for -placement packed")
	core := fs.Int("core", 1, "issuing Opteron core for block/strided placements")
	pdes := fs.String("pdes", "auto",
		"parallel DES for -placement all: off (serial engine), auto (GOMAXPROCS workers) or a worker count; results are identical at any setting")
	congestion := fs.String("congestion", "on",
		"link congestion: on holds wormhole channels on every routed cable; off is the infinite-capacity fabric")
	skipCompute := fs.Bool("skip-compute", false, "strip compute records: replay the bare communication schedule")
	toplinks := fs.Int("toplinks", 5, "contended links to print after a congested replay")
	messages := fs.Int("messages", 0, "print per-message timing for the first N sends")
	topology := fs.String("topology", "", "fabric topology to replay on (see rrsim; default: the tapered fat-tree)")
	fs.Parse(args)
	if *in == "" {
		fmt.Fprintln(os.Stderr, "rrtrace replay: -i is required")
		return 2
	}
	tr, err := trace.Load(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fab, err := topoFabric(*topology)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rrtrace replay: %v\n", err)
		return 2
	}
	if *placement == "all" {
		if err := scenario.ApplyPDESFlag(*pdes); err != nil {
			fmt.Fprintf(os.Stderr, "rrtrace replay: %v\n", err)
			return 2
		}
		return replayAll(tr, fab, *stride, *perNode, *core, *congestion, *skipCompute)
	}
	var places []collectives.Placement
	switch *placement {
	case "block":
		places = collectives.BlockPlacement(fab, tr.Meta.Ranks, *core)
	case "strided":
		places = collectives.StridedPlacement(fab, tr.Meta.Ranks, *stride, *core)
	case "packed":
		places = collectives.PackedPlacement(fab, tr.Meta.Ranks, *perNode)
	default:
		fmt.Fprintf(os.Stderr, "rrtrace replay: unknown placement %q\n", *placement)
		return 2
	}
	endpoints := toEndpoints(places)
	cfg := trace.ReplayConfig{
		Fabric:      fab,
		Profile:     ib.OpenMPI(),
		Places:      endpoints,
		SkipCompute: *skipCompute,
		Observe:     trace.ObserveAll,
	}
	switch *congestion {
	case "on":
		cfg.Policy = transport.Congested()
	case "off":
		cfg.Policy = transport.Policy{}
	default:
		fmt.Fprintf(os.Stderr, "rrtrace replay: -congestion must be on or off, got %q\n", *congestion)
		return 2
	}
	start := time.Now()
	res, err := trace.Replay(tr, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	wall := time.Since(start)
	fmt.Printf("replayed %s under %s placement (congestion %s): %v simulated\n",
		res.Name, *placement, *congestion, res.Time)
	fmt.Printf("  %d messages, %v on the wire\n", res.Messages, res.WireBytes)
	st := res.EngineStats
	fmt.Printf("  engine: %d events, calendar peak %d, %.0f events/s host\n",
		st.Dispatched, st.CalendarPeak, float64(st.Dispatched)/wall.Seconds())
	if c := res.Congestion; c != nil {
		fmt.Printf("  census: %d links carried flows, %d queued, %v total wait (uplink tier: %d queued, %v)\n",
			c.Links, c.Queued, c.TotalWait, c.UplinkQueued, c.UplinkWait)
		n := *toplinks
		if n > len(c.Top) {
			n = len(c.Top)
		}
		for _, u := range c.Top[:n] {
			fmt.Printf("    %v\n", u)
		}
	}
	if *messages > 0 {
		n := *messages
		if n > len(res.Sends) {
			n = len(res.Sends)
		}
		fmt.Printf("  first %d sends:\n", n)
		for _, m := range res.Sends[:n] {
			fmt.Printf("    %v\n", m)
		}
	}
	return 0
}

// replayAll replays the trace under the block, strided and packed
// placements as domains of a zero-lookahead parallel-DES cluster: each
// placement is an independent simulation run to completion on its own
// domain engine, spread over the -pdes workers, with results
// byte-identical to three serial replays. The per-domain counters and
// per-worker busy/idle it prints are the cluster's own accounting.
func replayAll(tr *trace.Trace, fab *fabric.System, stride, perNode, core int,
	congestion string, skipCompute bool) int {
	names := []string{"block", "strided", "packed"}
	placements := [][]transport.Endpoint{
		toEndpoints(collectives.BlockPlacement(fab, tr.Meta.Ranks, core)),
		toEndpoints(collectives.StridedPlacement(fab, tr.Meta.Ranks, stride, core)),
		toEndpoints(collectives.PackedPlacement(fab, tr.Meta.Ranks, perNode)),
	}
	cfg := trace.ReplayConfig{
		Fabric:      fab,
		Profile:     ib.OpenMPI(),
		SkipCompute: skipCompute,
		Observe:     trace.ObserveCensus,
	}
	switch congestion {
	case "on":
		cfg.Policy = transport.Congested()
	case "off":
		cfg.Policy = transport.Policy{}
	default:
		fmt.Fprintf(os.Stderr, "rrtrace replay: -congestion must be on or off, got %q\n", congestion)
		return 2
	}
	workers := scenario.ParallelWorkers()
	start := time.Now()
	results, dstats, wstats, err := trace.ReplayMany(tr, cfg, placements, workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	wall := time.Since(start)
	fmt.Printf("replayed %s under %d placements (congestion %s) as parallel DES domains: %v wall clock\n",
		tr.Meta.Name, len(placements), congestion, wall.Round(time.Millisecond))
	for i, res := range results {
		fmt.Printf("  %-8s %v simulated, %d messages, %v on the wire\n",
			names[i], res.Time, res.Messages, res.WireBytes)
		if c := res.Congestion; c != nil {
			fmt.Printf("           census: %d links carried flows, %d queued, %v total wait\n",
				c.Links, c.Queued, c.TotalWait)
		}
	}
	fmt.Printf("  domains: %d, lookahead 0 (independent runs)\n", len(dstats))
	for i, st := range dstats {
		fmt.Printf("    domain %d %-8s %9d events, %d windows, %d cross-domain msgs\n",
			i, names[i], st.Events, st.Windows, st.Sent+st.Received)
	}
	for w, st := range wstats {
		fmt.Printf("    worker %d: busy %v, idle %v\n",
			w, st.Busy.Round(time.Microsecond), st.Idle.Round(time.Microsecond))
	}
	return 0
}
