// Command sweep3d runs the Sweep3D reproduction: the real solver
// (serial, host-parallel, or on the simulated machine) or the at-scale
// performance model.
//
// Usage:
//
//	sweep3d -mode solve -i 5 -j 5 -k 400 -mk 20 -px 4 -py 4
//	sweep3d -mode des -i 3 -j 3 -k 8 -mk 4 -px 8 -py 4
//	sweep3d -mode model -nodes 3060
package main

import (
	"flag"
	"fmt"
	"os"

	"roadrunner/internal/cml"
	"roadrunner/internal/sweep3d"
)

func main() {
	mode := flag.String("mode", "solve", "solve | des | model")
	i := flag.Int("i", 5, "per-rank I")
	j := flag.Int("j", 5, "per-rank J")
	k := flag.Int("k", 400, "per-rank K")
	mk := flag.Int("mk", 20, "K blocking factor")
	angles := flag.Int("angles", 6, "angles per octant")
	px := flag.Int("px", 2, "processor array X")
	py := flag.Int("py", 2, "processor array Y")
	nodes := flag.Int("nodes", 3060, "node count for -mode model")
	best := flag.Bool("best", false, "use the peak-PCIe transports")
	flag.Parse()

	cfg := sweep3d.Config{I: *i, J: *j, K: *k, MK: *mk, Angles: *angles}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	switch *mode {
	case "solve":
		res := sweep3d.SolveParallelHost(cfg, *px, *py)
		fmt.Printf("grid %dx%dx%d on %dx%d ranks\n", res.NX, res.NY, res.NZ, *px, *py)
		fmt.Printf("balance error   %.3e\n", res.BalanceError())
		fmt.Printf("centre flux     %.6f\n", res.PhiAt(res.NX/2, res.NY/2, res.NZ/2))
		fmt.Printf("corner flux     %.6f\n", res.PhiAt(0, 0, 0))
	case "des":
		cmlCfg := cml.CurrentSoftware()
		if *best {
			cmlCfg = cml.PeakPCIe()
		}
		res, err := sweep3d.RunOnDES(cfg, *px, *py, cmlCfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("grid %dx%dx%d on %d SPE ranks (simulated machine)\n",
			res.NX, res.NY, res.NZ, *px**py)
		fmt.Printf("simulated iteration time  %v\n", res.IterationTime)
		fmt.Printf("balance error             %.3e\n", res.BalanceError())
	case "model":
		fmt.Printf("%-10s %-16s %-16s %-16s %-10s\n",
			"nodes", "Opteron only", "Cell (measured)", "Cell (best)", "improve")
		for _, n := range sweep3d.PaperNodeCounts() {
			if n > *nodes {
				break
			}
			o := sweep3d.OpteronIterationTime(cfg, n)
			m := sweep3d.CellIterationTime(cfg, n, sweep3d.CellMeasured)
			b := sweep3d.CellIterationTime(cfg, n, sweep3d.CellBest)
			fmt.Printf("%-10d %-16v %-16v %-16v %-10.2f\n",
				n, o, m, b, sweep3d.Improvement(cfg, n, sweep3d.CellMeasured))
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}
}
