// Hybrid offload: the three Roadrunner usage models of §III, quantified.
// A host-only run, an accelerator-model run (hotspot pushed to the
// Cells), and the SPE-centric run, all over the same Sweep3D workload —
// plus the LINPACK hybrid, where Opterons and Cells compute at once.
package main

import (
	"fmt"

	"roadrunner/internal/linpack"
	"roadrunner/internal/machine"
	"roadrunner/internal/spu"
	"roadrunner/internal/sweep3d"
)

func main() {
	cfg := sweep3d.PaperWeakScaling()
	nodes := 256

	fmt.Println("== Three usage models (§III), Sweep3D at", nodes, "nodes ==")
	opt := sweep3d.OpteronIterationTime(cfg, nodes)
	fmt.Printf("1. unmodified cluster code (Opterons only): %v\n", opt)
	meas := sweep3d.CellIterationTime(cfg, nodes, sweep3d.CellMeasured)
	fmt.Printf("2. SPE-centric CML port (measured stack):   %v (%.2fx)\n",
		meas, float64(opt)/float64(meas))
	best := sweep3d.CellIterationTime(cfg, nodes, sweep3d.CellBest)
	fmt.Printf("3. same port on matured software:           %v (%.2fx)\n",
		best, float64(opt)/float64(best))

	fmt.Println("\n== The hybrid LINPACK (both processor types at once) ==")
	// Run the real kernel small, then the machine-scale model.
	n := 128
	a := linpack.RandomSPD(n, 7)
	orig := a.Clone()
	lu, err := linpack.Factorize(a, 32)
	if err != nil {
		panic(err)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	x := lu.Solve(b)
	fmt.Printf("blocked LU (n=%d): residual %.2e, %d flops\n",
		n, linpack.Residual(orig, x, b), lu.Flops)

	sys := machine.New(machine.Full())
	model := linpack.RoadrunnerHPL()
	sustained := sys.LinpackSustained(model.Efficiency())
	fmt.Printf("machine model: %v sustained of %v peak (%.1f%%), %.0f MFlops/W\n",
		sustained, sys.PeakDP(), 100*model.Efficiency(), sys.MFlopsPerWatt(sustained))

	fmt.Println("\n== Why offload pays: the chip-level gap ==")
	cbe, pxc := spu.CellBE(), spu.PowerXCell8i()
	fmt.Printf("Sweep3D socket times (10x20x400): CBE %v, PXC8i %v\n",
		sweep3d.SPESocketTime(cbe, cfg), sweep3d.SPESocketTime(pxc, cfg))
	fmt.Printf("host sockets: dual-core Opteron %v, Tigerton %v\n",
		sweep3d.HostSocketTime(sweep3d.OpteronDC18, cfg),
		sweep3d.HostSocketTime(sweep3d.TigertonQC293, cfg))
}
