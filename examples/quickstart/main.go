// Quickstart: build the machine, ask it the paper's headline questions,
// and run one experiment end to end.
package main

import (
	"fmt"

	"roadrunner"
)

func main() {
	m := roadrunner.Machine()
	fmt.Println("== Roadrunner, reconstructed ==")
	fmt.Printf("nodes          %d (%d CUs x 180 triblades)\n", m.Nodes(), m.Config.CUs)
	fmt.Printf("processors     %d PowerXCell 8i + %d Opteron cores (%d SPEs)\n",
		m.Cells(), m.OpteronCores(), m.SPEs())
	fmt.Printf("peak           %v DP / %v SP\n", m.PeakDP(), m.PeakSP())
	fmt.Printf("accelerated    %.1f%% of peak lives in the Cells\n", 100*m.AcceleratedFraction())
	fmt.Printf("power          %v under LINPACK load\n", m.Power())
	fmt.Println()

	// Reproduce Table I directly through the experiment registry.
	art, err := roadrunner.RunExperiment("table1")
	if err != nil {
		panic(err)
	}
	fmt.Println(art)

	// And ask the Sweep3D model the paper's bottom-line question.
	cfg := roadrunner.PaperSweepConfig()
	meas, _ := roadrunner.SweepIterationTime(cfg, 3060, "measured")
	opt, _ := roadrunner.SweepIterationTime(cfg, 3060, "opteron")
	fmt.Printf("Sweep3D at 3,060 nodes: %v accelerated vs %v Opteron-only (%.1fx)\n",
		meas, opt, float64(opt)/float64(meas))
}
