// SPE microbenchmarks: the paper's Fig. 4/5 assembly probes run against
// the pipeline simulator, plus the consequences the paper derives from
// them (sustained DP rates, STREAM triad, the Sweep3D kernel ratio).
package main

import (
	"fmt"

	"roadrunner/internal/cell"
	"roadrunner/internal/isa"
	"roadrunner/internal/spu"
	"roadrunner/internal/sweep3d"
)

func main() {
	cbe, pxc := spu.CellBE(), spu.PowerXCell8i()

	fmt.Println("Fig. 4/5: per-group latency and repetition distance")
	fmt.Printf("%-6s %12s %12s %14s %14s\n", "group", "CBE lat", "PXC8i lat", "CBE repeat", "PXC8i repeat")
	for _, g := range isa.Groups() {
		fmt.Printf("%-6s %12d %12d %14d %14d\n", g,
			cbe.MeasureLatency(g), pxc.MeasureLatency(g),
			cbe.MeasureRepetition(g), pxc.MeasureRepetition(g))
	}

	fmt.Println("\nConsequences:")
	fmt.Printf("  aggregate DP (8 SPEs): CBE %v, PXC8i %v (%.1fx)\n",
		cbe.PeakDPFlops()*8, pxc.PeakDPFlops()*8,
		float64(pxc.PeakDPFlops())/float64(cbe.PeakDPFlops()))
	c := cell.New(cell.PowerXCell8i)
	fmt.Printf("  SPE local-store TRIAD: %v (Table III: 29.28 GB/s)\n", c.SPETriad())
	fmt.Printf("  sweep kernel: %.1f vs %.1f cycles/cell-angle (ratio %.2f)\n",
		sweep3d.KernelCyclesPerCellAngle(cbe),
		sweep3d.KernelCyclesPerCellAngle(pxc),
		sweep3d.KernelCyclesPerCellAngle(cbe)/sweep3d.KernelCyclesPerCellAngle(pxc))
}
