// Sweep3D weak scaling: regenerate the Fig. 13/14 study over any node
// range, printing the three series and the improvement factors, then
// cross-check one point against the discrete-event simulation running
// the real solver on the simulated machine.
package main

import (
	"fmt"

	"roadrunner/internal/cml"
	"roadrunner/internal/sweep3d"
)

func main() {
	cfg := sweep3d.PaperWeakScaling()
	fmt.Println("Sweep3D weak scaling, 5x5x400 per SPE, MK=20, 6 angles")
	fmt.Printf("%8s %14s %14s %14s %8s %8s\n",
		"nodes", "Opteron", "Cell(meas)", "Cell(best)", "impr", "best")
	for _, n := range sweep3d.PaperNodeCounts() {
		o := sweep3d.OpteronIterationTime(cfg, n)
		m := sweep3d.CellIterationTime(cfg, n, sweep3d.CellMeasured)
		b := sweep3d.CellIterationTime(cfg, n, sweep3d.CellBest)
		fmt.Printf("%8d %14v %14v %14v %8.2f %8.2f\n", n, o, m, b,
			sweep3d.Improvement(cfg, n, sweep3d.CellMeasured),
			sweep3d.Improvement(cfg, n, sweep3d.CellBest))
	}

	fmt.Println("\nCross-validation: real solver on the simulated machine (1 node, 32 SPE ranks)")
	small := sweep3d.Config{I: 5, J: 5, K: 40, MK: 20, Angles: 6}
	des, err := sweep3d.RunOnDES(small, 8, 4, cml.CurrentSoftware())
	if err != nil {
		panic(err)
	}
	model := sweep3d.CellIterationTime(small, 1, sweep3d.CellMeasured)
	fmt.Printf("DES iteration   %v (balance error %.2e)\n", des.IterationTime, des.BalanceError())
	fmt.Printf("model iteration %v (ratio %.2f)\n", model,
		float64(des.IterationTime)/float64(model))
}
