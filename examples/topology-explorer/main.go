// Topology explorer: walk the InfiniBand fat tree the way §II.B-C
// describes it — hop census, per-class latencies, and the Fig. 10
// latency map's plateaus.
package main

import (
	"fmt"

	"roadrunner/internal/fabric"
	"roadrunner/internal/microbench"
)

func main() {
	fab := fabric.New()
	fmt.Printf("fabric: %d nodes in %d CUs\n\n", fab.Nodes(), 17)

	c := fab.Census(fabric.NodeID{})
	fmt.Println("Table I census from node 0:")
	fmt.Printf("  self                      %5d (0 hops)\n", c.Self)
	fmt.Printf("  same crossbar             %5d (1 hop)\n", c.SameXbar)
	fmt.Printf("  same CU                   %5d (3 hops)\n", c.SameCU)
	fmt.Printf("  CUs 2-12 same crossbar    %5d (3 hops)\n", c.NearCUsSameXbar)
	fmt.Printf("  CUs 2-12 other crossbar   %5d (5 hops)\n", c.NearCUsOtherXbar)
	fmt.Printf("  CUs 13-17 same crossbar   %5d (5 hops)\n", c.FarCUsSameXbar)
	fmt.Printf("  CUs 13-17 other crossbar  %5d (7 hops)\n", c.FarCUsOtherXbar)
	fmt.Printf("  mean hops                 %.2f\n\n", c.MeanHops)

	fmt.Println("Fig. 10 latency plateaus (zero-byte one-way from rank 0):")
	samples := []struct {
		name string
		node int
	}{
		{"same crossbar", 1},
		{"same CU", 100},
		{"CU 2, shared crossbar (dip)", 180},
		{"CU 2, different crossbar", 190},
		{"CU 17 (across the middle)", 16*180 + 100},
	}
	for _, s := range samples {
		dst := fabric.FromGlobal(s.node)
		fmt.Printf("  %-28s node %4d: %d hops, %v\n",
			s.name, s.node, fab.Hops(fabric.FromGlobal(0), dst),
			microbench.Fig10Latency(fab, dst))
	}

	fmt.Println("\nuplink wiring of node 0's crossbar (why CU-2 nodes 0-7 are 3 hops):")
	k := fabric.LineXbar(0)
	fmt.Printf("  line crossbar %d -> switches %v, landing crossbar %d in each\n",
		k, fabric.UplinkSwitches(k), fabric.SwitchLevelXbar(k))

	fmt.Println("\nscaling the machine down:")
	for _, cus := range []int{1, 4, 12, 17} {
		f := fabric.NewScaled(cus)
		cc := f.Census(fabric.NodeID{})
		fmt.Printf("  %2d CUs: %4d nodes, mean %.2f hops\n", cus, f.Nodes(), cc.MeanHops)
	}
}
