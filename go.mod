module roadrunner

go 1.24
