// Package apps models the LANL application portfolio of §IV.A: VPIC,
// SPaSM, Milagro and Sweep3D, each characterised by the instruction mix
// of its SPE hot loop. Running the mixes through the SPU pipeline model
// reproduces the paper's reported PowerXCell 8i impact: "The PowerXCell
// 8i increases the performance of both SPaSM and Milagro by a factor of
// 1.5x. VPIC doesn't show significant improvements on this new processor
// as its calculations use single precision" — and Sweep3D's ~2x.
//
// The mechanism is entirely the FPD unit redesign: an application's
// speedup follows from how much of its issue bandwidth double-precision
// work consumes.
package apps

import (
	"roadrunner/internal/isa"
	"roadrunner/internal/spu"
)

// App is one application's SPE hot-loop characterisation: instructions
// per inner-loop iteration by execution group.
type App struct {
	Name        string
	Description string
	// Mix: instruction counts per loop iteration.
	FPD, FP6, FX2, FX3, LS, SHUF, BR int
}

// Portfolio returns the four applications of §IV.A/§V with mixes chosen
// to reflect their documented character: VPIC is single-precision
// particle push (FP6-heavy, no FPD); SPaSM's DP force loops and
// Milagro's DP Monte Carlo transport carry moderate FPD; Sweep3D's
// recursion is FPD-dense.
func Portfolio() []App {
	return []App{
		{
			Name:        "VPIC",
			Description: "particle-in-cell, single precision",
			FP6:         24, FX2: 18, FX3: 4, LS: 16, SHUF: 8, BR: 1,
		},
		{
			Name:        "SPaSM",
			Description: "molecular dynamics, DP force kernels",
			FPD:         4, FP6: 4, FX2: 24, FX3: 4, LS: 14, SHUF: 7, BR: 1,
		},
		{
			Name:        "Milagro",
			Description: "implicit Monte Carlo thermal transport, DP",
			FPD:         4, FX2: 26, FX3: 5, LS: 15, SHUF: 6, BR: 1,
		},
		{
			Name:        "Sweep3D",
			Description: "discrete-ordinates transport, DP recursion",
			FPD:         8, FX2: 31, FX3: 7, LS: 18, SHUF: 11, BR: 1,
		},
	}
}

// Program builds a steady-state software-pipelined stream of n loop
// iterations of the app's mix, mirroring the construction the sweep
// kernel uses so throughput (not latency) limits both chips.
func (a App) Program(iters int) isa.Program {
	b := isa.NewBuilder()
	bank := func(p, r int) isa.Reg { return isa.Reg((p%8)*14 + r) }
	emit := func(p int, g isa.Group, count int, base int) {
		prev := p + 6
		for i := 0; i < count; i++ {
			switch g.Pipe() {
			case isa.Odd:
				b.I(g, bank(p, base+i%4), isa.Reg(112+base%4))
			default:
				b.I(g, bank(p, base+i%4), bank(prev, (base+i)%6))
			}
		}
	}
	for p := 0; p < iters; p++ {
		emit(p, isa.LS, a.LS, 0)
		emit(p, isa.FX2, a.FX2, 4)
		emit(p, isa.SHUF, a.SHUF, 8)
		emit(p, isa.FX3, a.FX3, 10)
		emit(p, isa.FP6, a.FP6, 11)
		emit(p, isa.FPD, a.FPD, 12)
		b.I(isa.BR, isa.NoReg, 120)
	}
	return b.Program()
}

// CyclesPerIteration measures the steady-state cost of one loop
// iteration on a chip.
func (a App) CyclesPerIteration(m *spu.Model) float64 {
	const iters = 96
	prog := a.Program(iters)
	res := m.Run(prog)
	per := len(prog) / iters
	lo, hi := 16*per, 80*per
	return float64(res.IssueCycles[hi]-res.IssueCycles[lo]) / float64(80-16)
}

// Speedup returns the application's PowerXCell 8i speedup over the
// Cell BE, derived purely from the two pipeline models.
func (a App) Speedup() float64 {
	cbe := a.CyclesPerIteration(spu.CellBE())
	pxc := a.CyclesPerIteration(spu.PowerXCell8i())
	return cbe / pxc
}
