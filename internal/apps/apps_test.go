package apps

import (
	"testing"

	"roadrunner/internal/spu"
)

func TestPortfolioSpeedups(t *testing.T) {
	// §IV.A: SPaSM and Milagro gain 1.5x on the PowerXCell 8i; VPIC,
	// being single precision, gains essentially nothing.
	want := map[string][2]float64{
		"VPIC":    {0.98, 1.05},
		"SPaSM":   {1.35, 1.6},
		"Milagro": {1.35, 1.6},
		"Sweep3D": {1.5, 2.1},
	}
	for _, a := range Portfolio() {
		band, ok := want[a.Name]
		if !ok {
			t.Fatalf("unexpected app %q", a.Name)
		}
		s := a.Speedup()
		if s < band[0] || s > band[1] {
			t.Errorf("%s speedup = %.2f, want in [%.2f, %.2f]", a.Name, s, band[0], band[1])
		}
	}
}

func TestSpeedupOrdering(t *testing.T) {
	// DP intensity orders the gains: VPIC < SPaSM/Milagro < Sweep3D.
	apps := map[string]float64{}
	for _, a := range Portfolio() {
		apps[a.Name] = a.Speedup()
	}
	if !(apps["VPIC"] < apps["SPaSM"] && apps["SPaSM"] < apps["Sweep3D"]+0.3) {
		t.Errorf("ordering violated: %v", apps)
	}
}

func TestMixesExecute(t *testing.T) {
	for _, a := range Portfolio() {
		for _, m := range []*spu.Model{spu.CellBE(), spu.PowerXCell8i()} {
			c := a.CyclesPerIteration(m)
			if c <= 0 || c > 1000 {
				t.Errorf("%s on %s: %.1f cycles/iter", a.Name, m.Name, c)
			}
		}
	}
}

func TestVPICIdenticalOnBothChips(t *testing.T) {
	// No FPD instructions at all: the two chips are cycle-identical.
	vpic := Portfolio()[0]
	if vpic.FPD != 0 {
		t.Fatal("VPIC should be pure single precision")
	}
	cbe := vpic.CyclesPerIteration(spu.CellBE())
	pxc := vpic.CyclesPerIteration(spu.PowerXCell8i())
	if cbe != pxc {
		t.Errorf("VPIC differs: %v vs %v", cbe, pxc)
	}
}
