// Package cell assembles the Cell processor models the paper compares:
// the original Cell Broadband Engine (as in the PlayStation 3 and QS21
// blades) and the PowerXCell 8i used in Roadrunner's QS22 blades.
//
// A chip couples one PPE, eight SPEs (via the spu pipeline model), the
// EIB, and a memory controller (Rambus XDR on the Cell BE, DDR2-800 on
// the PowerXCell 8i). Peak rates, STREAM TRIAD bandwidths and memtime
// latencies for Table III and Table II derive from these components.
package cell

import (
	"roadrunner/internal/isa"
	"roadrunner/internal/memmodel"
	"roadrunner/internal/params"
	"roadrunner/internal/spu"
	"roadrunner/internal/units"
)

// Variant selects the chip generation.
type Variant int

// The two Cell implementations the paper compares.
const (
	CellBE Variant = iota
	PowerXCell8i
)

// String names the variant.
func (v Variant) String() string {
	if v == CellBE {
		return "Cell BE"
	}
	return "PowerXCell 8i"
}

// MemoryKind is the chip's external memory technology.
type MemoryKind int

// Memory technologies.
const (
	XDR MemoryKind = iota
	DDR2_800
)

// String names the memory kind.
func (k MemoryKind) String() string {
	if k == XDR {
		return "Rambus XDR"
	}
	return "DDR2-800"
}

// Chip is one Cell processor.
type Chip struct {
	Variant  Variant
	SPU      *spu.Model
	NumSPEs  int
	Clock    units.Frequency
	Memory   MemoryKind
	MaxBlade units.Size // maximum memory per blade this controller supports
	MemBW    units.Bandwidth
}

// New builds the chip model for a variant.
func New(v Variant) *Chip {
	c := &Chip{
		Variant: v,
		NumSPEs: 8,
		Clock:   params.CellClock,
		MemBW:   params.CellMemBandwidth,
	}
	switch v {
	case CellBE:
		c.SPU = spu.CellBE()
		c.Memory = XDR
		// "only Rambus XDR memories were supported, limiting the memory
		// capacity to 2GB per blade."
		c.MaxBlade = 2 * units.GB
	case PowerXCell8i:
		c.SPU = spu.PowerXCell8i()
		c.Memory = DDR2_800
		// "This change enables the PowerXCell 8i to support up to 32GB of
		// memory in a blade."
		c.MaxBlade = 32 * units.GB
	}
	return c
}

// PPEPeakDP returns the PPE's peak double-precision rate (6.4 GF/s).
func (c *Chip) PPEPeakDP() units.Flops {
	return units.Flops(float64(c.Clock) * params.PPEDPFlopsPerCycle)
}

// SPEPeakDP returns one SPE's nominal peak DP rate.
func (c *Chip) SPEPeakDP() units.Flops {
	// The nominal (datasheet) rate; the Cell BE cannot sustain it because
	// of the FPD stall — see SPEAggregateDPSustained.
	return units.Flops(float64(c.Clock) * params.SPEDPFlopsPerCycle)
}

// SPEAggregateDPSustained returns the pipeline-model-derived sustained DP
// peak of all SPEs: 102.4 GF/s for the PowerXCell 8i, 14.6 GF/s for the
// Cell BE (the FPD unit's 7-cycle repetition).
func (c *Chip) SPEAggregateDPSustained() units.Flops {
	return c.SPU.PeakDPFlops() * units.Flops(c.NumSPEs)
}

// SPEAggregateSP returns the sustained single-precision aggregate
// (204.8 GF/s on both chips).
func (c *Chip) SPEAggregateSP() units.Flops {
	return c.SPU.PeakSPFlops() * units.Flops(c.NumSPEs)
}

// PeakDP returns the chip peak used by Table II: PPE + 8 SPEs at their
// architectural issue rates (108.8 GF/s for the PowerXCell 8i).
func (c *Chip) PeakDP() units.Flops {
	if c.Variant == CellBE {
		// Table-II-style accounting uses sustained SPE DP on the Cell BE
		// too (the paper quotes 21.0 total = 14.6 SPE + 6.4 PPE).
		return c.PPEPeakDP() + params.CellBESPEAggregateDP
	}
	return c.PPEPeakDP() + c.SPEPeakDP()*units.Flops(c.NumSPEs)
}

// PeakSP returns the chip's single-precision peak (217.6 GF/s: 204.8 SPE
// + 12.8 PPE).
func (c *Chip) PeakSP() units.Flops {
	return units.Flops(float64(c.Clock)*4) + params.CellBESPEAggregateSP
}

// LocalStorePeak returns the theoretical local-store bandwidth: one
// 128-bit load per cycle (51.2 GB/s).
func (c *Chip) LocalStorePeak() units.Bandwidth {
	return units.Bandwidth(float64(params.LocalStoreLoadBytes) * float64(c.Clock))
}

// speTriadProgram builds the STREAM TRIAD inner loop as optimized SPE
// code executes it from local store: per 16-byte vector element, two
// quadword loads, an alignment shuffle per load (the reference STREAM
// arrays are not quadword-aligned), a DP FMA, and a store; plus loop
// control every four elements. The schedule is software-pipelined — the
// shuffle, FMA and store of an element are emitted 2, 4 and 8 elements
// after its loads — so in steady state the odd (load/store/shuffle/
// branch) pipe is the bottleneck, exactly as on real silicon.
func speTriadProgram(elements int) isa.Program {
	b := isa.NewBuilder()
	addr := isa.Reg(120)
	// Register banks: element k uses bank k mod 16, six registers each.
	bank := func(k int) isa.Reg { return isa.Reg((k % 16) * 6) }
	for k := 0; k < elements; k++ {
		rb := bank(k)
		b.I(isa.LS, rb, addr)   // load b[k]
		b.I(isa.LS, rb+1, addr) // load c[k]
		if k%4 == 0 {
			// Hoisted pointer advance: by the time the next group's
			// loads issue, the new address has long cleared the FX unit
			// (real code uses d-form offsets plus one early increment).
			b.I(isa.FX2, addr, addr)
		}
		if j := k - 2; j >= 0 {
			rj := bank(j)
			b.I(isa.SHUF, rj+2, rj, rj)     // align b[j]
			b.I(isa.SHUF, rj+3, rj+1, rj+1) // align c[j]
		}
		if j := k - 4; j >= 0 {
			rj := bank(j)
			b.I(isa.FPD, rj+4, rj+2, rj+3) // a[j] = b[j] + s*c[j]
		}
		if j := k - 8; j >= 0 {
			rj := bank(j)
			b.I(isa.LS, isa.NoReg, rj+4) // store a[j]
		}
		if k%4 == 3 {
			b.I(isa.BR, isa.NoReg, addr) // loop branch
		}
	}
	return b.Program()
}

// SPETriad returns the sustained local-store TRIAD bandwidth derived by
// running the triad inner loop through the SPU pipeline model and
// measuring the steady-state issue rate (skipping the software-pipeline
// prologue and epilogue, as a long STREAM run amortises them). Matches
// Table III's 29.28 GB/s on the PowerXCell 8i.
func (c *Chip) SPETriad() units.Bandwidth {
	const elements = 512
	prog := speTriadProgram(elements)
	res := c.SPU.Run(prog)
	// Locate the first instruction of elements 64 and 448 and use the
	// issue-cycle distance between them as the steady-state window.
	instrPerElement := func(k int) int {
		// Elements emit 2 loads, +2 shuffles after 2, +1 FPD after 4,
		// +1 store after 8, +2 loop ops every 4th. Count by rebuilding.
		n := 0
		for e := 0; e < k; e++ {
			n += 2
			if e%4 == 0 {
				n++ // hoisted pointer advance
			}
			if e >= 2 {
				n += 2
			}
			if e >= 4 {
				n++
			}
			if e >= 8 {
				n++
			}
			if e%4 == 3 {
				n++ // loop branch
			}
		}
		return n
	}
	loWin, hiWin := 64, 448
	lo, hi := instrPerElement(loWin), instrPerElement(hiWin)
	cycles := res.IssueCycles[hi] - res.IssueCycles[lo]
	secs := c.SPU.Time(cycles).Seconds()
	bytes := float64(hiWin-loWin) * 48 // 3 arrays x 16B per element
	return units.Bandwidth(bytes / secs)
}

// PPETriad returns the PPE's sustained TRIAD bandwidth. The PPE is an
// in-order core with very limited memory-level parallelism; its bus
// efficiency is calibrated against Table III (0.89 GB/s of 25.6 GB/s).
func (c *Chip) PPETriad() units.Bandwidth {
	return memmodel.StreamModel{
		Peak:          c.MemBW,
		BusEfficiency: 0.0464,
		WriteAllocate: true,
	}.Triad()
}

// PPEHierarchy returns the PPE cache hierarchy for memtime.
func (c *Chip) PPEHierarchy() memmodel.Hierarchy {
	return memmodel.Hierarchy{
		Levels: []memmodel.Level{
			{Name: "L1D", Size: params.PPEL1D, Latency: units.FromNanoseconds(1.6)},
			{Name: "L2", Size: params.PPEL2, Latency: units.FromNanoseconds(8.8)},
		},
		MemLatency: params.PPEMemLatency,
	}
}

// PPEMemLatency returns the PPE's main-memory pointer-chase latency.
func (c *Chip) PPEMemLatency() units.Time {
	h := c.PPEHierarchy()
	return h.ChaseLatency(4 * units.MB)
}

// SPELocalStoreLatency returns the local-store pointer-chase latency
// (memtime run inside the local store; Table III's 9.4 ns). The chase
// hop is a dependent LS load plus the word-extract/address-formation
// sequence; the measured value is used directly as calibration since the
// extraction sequence is compiler-dependent.
func (c *Chip) SPELocalStoreLatency() units.Time {
	return params.SPELocalStoreLat
}

// MemPerChipInTriblade is the memory attached to each Cell in Roadrunner.
func (c *Chip) MemPerChipInTriblade() units.Size { return params.MemPerCell }
