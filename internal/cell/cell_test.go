package cell

import (
	"math"
	"testing"

	"roadrunner/internal/units"
)

func TestVariantConfigs(t *testing.T) {
	cbe := New(CellBE)
	if cbe.Memory != XDR || cbe.MaxBlade != 2*units.GB {
		t.Errorf("CellBE memory: %v %v", cbe.Memory, cbe.MaxBlade)
	}
	pxc := New(PowerXCell8i)
	if pxc.Memory != DDR2_800 || pxc.MaxBlade != 32*units.GB {
		t.Errorf("PXC8i memory: %v %v", pxc.Memory, pxc.MaxBlade)
	}
	if cbe.Variant.String() != "Cell BE" || pxc.Variant.String() != "PowerXCell 8i" {
		t.Errorf("names: %v %v", cbe.Variant, pxc.Variant)
	}
}

func TestPeaksMatchPaper(t *testing.T) {
	pxc := New(PowerXCell8i)
	// "the peak performance per PowerXCell 8i is 108.8 DP Gflops/s of
	// which 102.4 Gflop/s are from the eight SPEs".
	if got := pxc.PeakDP().GF(); math.Abs(got-108.8) > 0.01 {
		t.Errorf("PXC8i PeakDP = %v, want 108.8", got)
	}
	if got := pxc.PPEPeakDP().GF(); math.Abs(got-6.4) > 0.01 {
		t.Errorf("PPE peak = %v, want 6.4", got)
	}
	if got := (pxc.SPEPeakDP() * 8).GF(); math.Abs(got-102.4) > 0.01 {
		t.Errorf("SPE aggregate = %v, want 102.4", got)
	}
	cbe := New(CellBE)
	// "A single Cell BE has a peak performance of 217.6 Gflops/s ...
	// drops to 21.0 Gflops/s for double-precision".
	if got := cbe.PeakDP().GF(); math.Abs(got-21.0) > 0.05 {
		t.Errorf("CellBE PeakDP = %v, want 21.0", got)
	}
	if got := cbe.PeakSP().GF(); math.Abs(got-217.6) > 0.05 {
		t.Errorf("CellBE PeakSP = %v, want 217.6", got)
	}
}

func TestSustainedDPFromPipeline(t *testing.T) {
	// The pipeline-derived sustained rates: 14.6 vs 102.4 GF/s (the 7x
	// improvement the paper headlines).
	cbe := New(CellBE).SPEAggregateDPSustained().GF()
	pxc := New(PowerXCell8i).SPEAggregateDPSustained().GF()
	if math.Abs(cbe-14.6)/14.6 > 0.05 {
		t.Errorf("CellBE sustained = %v, want ~14.6", cbe)
	}
	if math.Abs(pxc-102.4)/102.4 > 0.02 {
		t.Errorf("PXC8i sustained = %v, want ~102.4", pxc)
	}
}

func TestSPETriadMatchesTableIII(t *testing.T) {
	pxc := New(PowerXCell8i)
	got := pxc.SPETriad().GBps()
	if math.Abs(got-29.28)/29.28 > 0.02 {
		t.Errorf("SPE triad = %v GB/s, want 29.28 +-2%%", got)
	}
	// Must stay under the 51.2 GB/s local-store peak.
	if got >= pxc.LocalStorePeak().GBps() {
		t.Errorf("triad %v exceeds local store peak %v", got, pxc.LocalStorePeak())
	}
}

func TestCellBETriadSlower(t *testing.T) {
	// The unpipelined DP unit drags the Cell BE triad far below the
	// PowerXCell 8i's.
	cbe := New(CellBE).SPETriad()
	pxc := New(PowerXCell8i).SPETriad()
	if cbe >= pxc {
		t.Errorf("CellBE triad %v >= PXC8i %v", cbe, pxc)
	}
	if ratio := float64(pxc) / float64(cbe); ratio < 1.5 {
		t.Errorf("triad ratio = %v, want >= 1.5", ratio)
	}
}

func TestPPETriadMatchesTableIII(t *testing.T) {
	got := New(PowerXCell8i).PPETriad().GBps()
	if math.Abs(got-0.89)/0.89 > 0.02 {
		t.Errorf("PPE triad = %v GB/s, want 0.89", got)
	}
}

func TestMemLatencies(t *testing.T) {
	c := New(PowerXCell8i)
	if got := c.PPEMemLatency(); got != units.FromNanoseconds(23.4) {
		t.Errorf("PPE latency = %v, want 23.4ns", got)
	}
	if got := c.SPELocalStoreLatency(); got != units.FromNanoseconds(9.4) {
		t.Errorf("SPE LS latency = %v, want 9.4ns", got)
	}
	h := c.PPEHierarchy()
	if err := h.Validate(); err != nil {
		t.Errorf("PPE hierarchy: %v", err)
	}
}

func TestLocalStorePeak(t *testing.T) {
	c := New(PowerXCell8i)
	if got := c.LocalStorePeak().GBps(); math.Abs(got-51.2) > 0.01 {
		t.Errorf("local store peak = %v, want 51.2", got)
	}
}

func TestTableIIIOrdering(t *testing.T) {
	// The paper's conclusion from Table III: SPE >> Opteron >> PPE for
	// bandwidth (the PPE "is a bottleneck and is best used for control").
	c := New(PowerXCell8i)
	spe := c.SPETriad()
	ppe := c.PPETriad()
	if spe <= ppe {
		t.Error("SPE should far exceed PPE bandwidth")
	}
	if float64(spe)/float64(ppe) < 20 {
		t.Errorf("SPE/PPE ratio = %v, want > 20x", float64(spe)/float64(ppe))
	}
}
