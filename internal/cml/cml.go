// Package cml implements the Cell Messaging Layer of §V.C: an MPI-like
// layer in which every SPE in the cluster has a unique rank and the PPEs
// and Opterons serve only as message forwarders (plus an RPC facility for
// the few services SPEs cannot perform — main-memory allocation on the
// PPE, file I/O on the Opteron).
//
// Transport selection follows the hardware path:
//
//   - same Cell socket: local-store-to-local-store DMA over the EIB
//     (0.272 us latency, ~22.4 GB/s — the measured CML fast path);
//   - same triblade, different Cell: SPE -> PPE -> DaCS/PCIe -> Opteron
//     -> DaCS/PCIe -> peer PPE -> SPE;
//   - different triblade: the full Fig. 6 path — SPE -> PPE (local,
//     0.12 us), DaCS to the Opteron (3.19 us), MPI over InfiniBand to the
//     peer Opteron (2.16 us + 220 ns/extra hop), DaCS down to the far
//     PPE, and a final local hop: 8.78 us end to end for a zero-byte
//     message between adjacent nodes.
//
// Messages execute store-and-forward on the DES, holding the DaCS pairs
// and HCAs they cross, so congestion composes naturally with everything
// else in flight.
package cml

import (
	"fmt"

	"roadrunner/internal/dacs"
	"roadrunner/internal/eib"
	"roadrunner/internal/fabric"
	"roadrunner/internal/ib"
	"roadrunner/internal/params"
	"roadrunner/internal/sim"
	"roadrunner/internal/units"
)

// SPEsPerCell is the rank slots per Cell socket.
const SPEsPerCell = 8

// CellsPerNode is the Cell sockets per triblade.
const CellsPerNode = 4

// RanksPerNode is the SPE ranks one triblade contributes.
const RanksPerNode = SPEsPerCell * CellsPerNode

// Addr locates an SPE rank on the machine.
type Addr struct {
	Node fabric.NodeID
	Cell int // 0..3 within the triblade
	SPE  int // 0..7 within the socket
}

// String renders the address.
func (a Addr) String() string {
	return fmt.Sprintf("%v/cell%d/spe%d", a.Node, a.Cell, a.SPE)
}

// Message is a CML message.
type Message struct {
	Src  int
	Dst  int
	Tag  int
	Data []float64
	Size units.Size
}

// Config selects the transport profiles for a CML world.
type Config struct {
	DaCS dacs.Profile
	IB   ib.Profile
}

// CurrentSoftware returns the measured early-stack configuration.
func CurrentSoftware() Config {
	return Config{DaCS: dacs.Current(), IB: ib.OpenMPI()}
}

// PeakPCIe returns the projected hardware-limited configuration the
// paper's "best achievable" model uses.
func PeakPCIe() Config {
	return Config{DaCS: dacs.PeakPCIe(), IB: ib.OpenMPI()}
}

type cellKey struct {
	node fabric.NodeID
	cell int
}

// World is a CML communicator: one rank per SPE.
type World struct {
	eng   *sim.Engine
	fab   *fabric.System
	cfg   Config
	ranks []*Rank
	pairs map[cellKey]*dacs.Pair
	buses map[cellKey]*eib.Bus
	mfcs  map[cellKey][]*eib.MFC
	hcas  map[fabric.NodeID]*ib.HCA
}

// NewWorld creates an empty CML world.
func NewWorld(eng *sim.Engine, fab *fabric.System, cfg Config) *World {
	return &World{
		eng:   eng,
		fab:   fab,
		cfg:   cfg,
		pairs: make(map[cellKey]*dacs.Pair),
		buses: make(map[cellKey]*eib.Bus),
		mfcs:  make(map[cellKey][]*eib.MFC),
		hcas:  make(map[fabric.NodeID]*ib.HCA),
	}
}

// AddRank places a rank at the given SPE and returns it.
func (w *World) AddRank(a Addr) *Rank {
	if a.Cell < 0 || a.Cell >= CellsPerNode || a.SPE < 0 || a.SPE >= SPEsPerCell {
		panic(fmt.Sprintf("cml: bad address %v", a))
	}
	r := &Rank{
		world: w,
		id:    len(w.ranks),
		addr:  a,
		inbox: sim.NewMailbox[*Message](w.eng, fmt.Sprintf("spe-rank%d", len(w.ranks))),
	}
	w.ranks = append(w.ranks, r)
	ck := cellKey{a.Node, a.Cell}
	if _, ok := w.pairs[ck]; !ok {
		name := fmt.Sprintf("dacs-%v-c%d", a.Node, a.Cell)
		w.pairs[ck] = dacs.NewPair(w.eng, name, w.cfg.DaCS)
		bus := eib.NewBus(w.eng, fmt.Sprintf("eib-%v-c%d", a.Node, a.Cell))
		w.buses[ck] = bus
		mfcs := make([]*eib.MFC, SPEsPerCell)
		for i := range mfcs {
			mfcs[i] = eib.NewMFC(bus, i)
		}
		w.mfcs[ck] = mfcs
	}
	if _, ok := w.hcas[a.Node]; !ok {
		w.hcas[a.Node] = ib.NewHCA(w.eng, w.cfg.IB)
	}
	return r
}

// AddNodeRanks places all 32 SPE ranks of a triblade in canonical order
// (cell-major, SPE-minor) and returns them.
func (w *World) AddNodeRanks(node fabric.NodeID) []*Rank {
	out := make([]*Rank, 0, RanksPerNode)
	for c := 0; c < CellsPerNode; c++ {
		for s := 0; s < SPEsPerCell; s++ {
			out = append(out, w.AddRank(Addr{node, c, s}))
		}
	}
	return out
}

// Size returns the rank count.
func (w *World) Size() int { return len(w.ranks) }

// Rank returns rank i.
func (w *World) Rank(i int) *Rank { return w.ranks[i] }

// Rank is one SPE-resident MPI rank.
type Rank struct {
	world *World
	id    int
	addr  Addr
	inbox *sim.Mailbox[*Message]
}

// ID returns the rank number.
func (r *Rank) ID() int { return r.id }

// Addr returns the rank's placement.
func (r *Rank) Addr() Addr { return r.addr }

// opteronCore returns the Opteron core that forwards for this rank's
// Cell (the paired core; see triblade).
func (r *Rank) opteronCore() int { return r.addr.Cell }

// Send transmits data to rank dst, blocking the caller while the message
// crosses each segment of its path (store-and-forward).
func (r *Rank) Send(p *sim.Proc, dst, tag int, data []float64) {
	w := r.world
	if dst < 0 || dst >= len(w.ranks) {
		panic(fmt.Sprintf("cml: send to %d of %d", dst, len(w.ranks)))
	}
	to := w.ranks[dst]
	size := units.Size(8 * len(data))
	msg := &Message{Src: r.id, Dst: dst, Tag: tag, Data: data, Size: size}

	src, dstA := r.addr, to.addr
	srcKey := cellKey{src.Node, src.Cell}
	dstKey := cellKey{dstA.Node, dstA.Cell}

	switch {
	case srcKey == dstKey:
		// Same socket: local-store DMA across the EIB.
		p.Sleep(params.CMLIntraSocketLatency)
		if size > 0 {
			w.mfcs[srcKey][src.SPE].PutTo(p, dstA.SPE, size)
		}
		to.inbox.Put(msg)
		return

	case src.Node == dstA.Node:
		// Same triblade, different Cell: up through DaCS, across the
		// node, back down through the peer's DaCS.
		p.Sleep(params.LocalSegment) // SPE -> PPE staging
		w.pairs[srcKey].Send(p, dacs.CellToOpteron, size)
		w.pairs[dstKey].Send(p, dacs.OpteronToCell, size)
		p.Sleep(params.LocalSegment) // PPE -> SPE delivery
		to.inbox.Put(msg)
		return
	}

	// Internode: the full Fig. 6 path.
	p.Sleep(params.LocalSegment)
	w.pairs[srcKey].Send(p, dacs.CellToOpteron, size)

	pr := w.cfg.IB
	hops := w.fab.Hops(src.Node, dstA.Node)
	fabLat := units.Time(hops) * pr.HopLatency
	pairBW := pr.PairBandwidth(r.opteronCore(), to.opteronCore())
	p.Sleep(pr.PerSideOverhead)
	if size > pr.EagerThreshold {
		p.Sleep(2 * (2*pr.PerSideOverhead + fabLat))
	}
	if size > 0 {
		w.hcas[src.Node].Stream(p, 0, size, pairBW)
	}
	p.Sleep(fabLat + pr.PerSideOverhead)

	w.pairs[dstKey].Send(p, dacs.OpteronToCell, size)
	p.Sleep(params.LocalSegment)
	to.inbox.Put(msg)
}

// Recv blocks until a message matching (src, tag) arrives. Use -1 as a
// wildcard for either.
func (r *Rank) Recv(p *sim.Proc, src, tag int) *Message {
	return r.inbox.GetMatch(p, func(m *Message) bool {
		return (src < 0 || m.Src == src) && (tag < 0 || m.Tag == tag)
	})
}

// Collective tags (high bits, clear of application tags).
const (
	tagBarrier = 1 << 28
	tagBcast   = 1 << 29
	tagReduce  = 1 << 30
)

// Barrier synchronises all ranks (binomial tree at rank 0).
func (r *Rank) Barrier(p *sim.Proc) {
	size := len(r.world.ranks)
	for dist := 1; dist < size; dist *= 2 {
		if r.id&dist != 0 {
			r.Send(p, r.id-dist, tagBarrier, nil)
			break
		} else if r.id+dist < size {
			r.Recv(p, r.id+dist, tagBarrier)
		}
	}
	start := 1
	for start*2 < size {
		start *= 2
	}
	for dist := start; dist >= 1; dist /= 2 {
		if r.id&dist != 0 {
			r.Recv(p, r.id-dist, tagBarrier+1)
			break
		}
	}
	for dist := start; dist >= 1; dist /= 2 {
		if r.id&dist == 0 && r.id+dist < size {
			r.Send(p, r.id+dist, tagBarrier+1, nil)
		}
	}
}

// Bcast broadcasts from root over a binomial tree; non-roots return the
// received payload.
func (r *Rank) Bcast(p *sim.Proc, root int, data []float64) []float64 {
	size := len(r.world.ranks)
	rel := (r.id - root + size) % size
	if rel != 0 {
		h := 1
		for h*2 <= rel {
			h *= 2
		}
		src := (rel - h + root) % size
		data = r.Recv(p, src, tagBcast).Data
	}
	h := 1
	for h <= rel {
		h *= 2
	}
	for ; rel+h < size; h *= 2 {
		r.Send(p, (rel+h+root)%size, tagBcast, data)
	}
	return data
}

// Allreduce sums each rank's vector elementwise across all ranks.
func (r *Rank) Allreduce(p *sim.Proc, vals []float64) []float64 {
	size := len(r.world.ranks)
	acc := append([]float64(nil), vals...)
	var toRoot bool
	for h := 1; h < size; h *= 2 {
		if r.id&h != 0 {
			r.Send(p, r.id-h, tagReduce, acc)
			toRoot = true
			break
		}
		if r.id+h < size {
			msg := r.Recv(p, r.id+h, tagReduce)
			for i := range acc {
				acc[i] += msg.Data[i]
			}
		}
	}
	if toRoot {
		acc = nil
	}
	return r.Bcast(p, 0, acc)
}

// RPCKind selects the remote-procedure-call target of §V.C.
type RPCKind int

// The two RPC services the paper's Sweep3D uses.
const (
	RPCMallocOnPPE RPCKind = iota // main-memory allocation
	RPCReadOnHost                 // input-file read on the Opteron
)

// RPC performs a synchronous remote call: a round trip to the PPE, or
// through DaCS to the Opteron, returning after the reply. The modelled
// reply payload adds transfer time for replySize bytes on the return leg.
func (r *Rank) RPC(p *sim.Proc, kind RPCKind, replySize units.Size) {
	w := r.world
	ck := cellKey{r.addr.Node, r.addr.Cell}
	switch kind {
	case RPCMallocOnPPE:
		// SPE <-> PPE mailbox round trip.
		p.Sleep(2 * params.LocalSegment)
	case RPCReadOnHost:
		p.Sleep(params.LocalSegment)
		w.pairs[ck].Send(p, dacs.CellToOpteron, 64) // request descriptor
		w.pairs[ck].Send(p, dacs.OpteronToCell, replySize)
		p.Sleep(params.LocalSegment)
	default:
		panic(fmt.Sprintf("cml: rpc kind %d", kind))
	}
}
