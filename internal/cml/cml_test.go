package cml

import (
	"math"
	"testing"

	"roadrunner/internal/fabric"
	"roadrunner/internal/params"
	"roadrunner/internal/sim"
	"roadrunner/internal/units"
)

func twoNodeWorld(eng *sim.Engine) *World {
	w := NewWorld(eng, fabric.New(), CurrentSoftware())
	w.AddNodeRanks(fabric.FromGlobal(0))
	w.AddNodeRanks(fabric.FromGlobal(1))
	return w
}

func oneWay(t *testing.T, w *World, eng *sim.Engine, src, dst int, n int) units.Time {
	t.Helper()
	var arrive units.Time
	data := make([]float64, n)
	eng.Spawn("recv", func(p *sim.Proc) {
		w.Rank(dst).Recv(p, src, 1)
		arrive = p.Now()
	})
	eng.Spawn("send", func(p *sim.Proc) {
		w.Rank(src).Send(p, dst, 1, data)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	return arrive
}

func TestIntraSocketLatency(t *testing.T) {
	// Ranks 0 and 1 share a socket: 0.272 us zero-byte.
	eng := sim.NewEngine()
	defer eng.Close()
	w := twoNodeWorld(eng)
	got := oneWay(t, w, eng, 0, 1, 0)
	if got != params.CMLIntraSocketLatency {
		t.Errorf("intra-socket = %v, want 272ns", got)
	}
}

func TestIntraSocketBandwidth(t *testing.T) {
	// 128 KB between socket mates: ~22.4 GB/s.
	eng := sim.NewEngine()
	defer eng.Close()
	w := twoNodeWorld(eng)
	size := 128 * units.KB
	got := oneWay(t, w, eng, 0, 1, int(size)/8)
	bw := float64(size) / got.Seconds() / 1e9
	if math.Abs(bw-22.4)/22.4 > 0.05 {
		t.Errorf("intra-socket 128KB = %.1f GB/s, want ~22.4", bw)
	}
}

func TestFig6InternodeLatency(t *testing.T) {
	// Zero-byte Cell-to-Cell across adjacent nodes: 8.78 us
	// (0.12 + 3.19 + 2.16 + 3.19 + 0.12).
	eng := sim.NewEngine()
	defer eng.Close()
	w := twoNodeWorld(eng)
	got := oneWay(t, w, eng, 0, RanksPerNode, 0)
	want := units.FromMicroseconds(8.78)
	if d := got - want; d < -units.Nanosecond || d > units.Nanosecond {
		t.Errorf("internode Cell-to-Cell = %v, want %v", got, want)
	}
}

func TestTransportOrdering(t *testing.T) {
	// Latency must rise with distance: socket < cross-cell < internode.
	eng1 := sim.NewEngine()
	w := twoNodeWorld(eng1)
	intra := oneWay(t, w, eng1, 0, 1, 0)
	eng1.Close()

	eng2 := sim.NewEngine()
	w = twoNodeWorld(eng2)
	cross := oneWay(t, w, eng2, 0, SPEsPerCell, 0) // cell 0 -> cell 1 same node
	eng2.Close()

	eng3 := sim.NewEngine()
	w = twoNodeWorld(eng3)
	inter := oneWay(t, w, eng3, 0, RanksPerNode, 0)
	eng3.Close()

	if !(intra < cross && cross < inter) {
		t.Errorf("ordering: %v %v %v", intra, cross, inter)
	}
	// Cross-cell crosses DaCS twice: > 6.4 us on the early stack.
	if cross < units.FromMicroseconds(6.4) {
		t.Errorf("cross-cell = %v, want > 6.4us", cross)
	}
}

func TestPeakPCIeFaster(t *testing.T) {
	engA := sim.NewEngine()
	wA := NewWorld(engA, fabric.New(), CurrentSoftware())
	wA.AddNodeRanks(fabric.FromGlobal(0))
	wA.AddNodeRanks(fabric.FromGlobal(1))
	cur := oneWay(t, wA, engA, 0, RanksPerNode, 0)
	engA.Close()

	engB := sim.NewEngine()
	wB := NewWorld(engB, fabric.New(), PeakPCIe())
	wB.AddNodeRanks(fabric.FromGlobal(0))
	wB.AddNodeRanks(fabric.FromGlobal(1))
	best := oneWay(t, wB, engB, 0, RanksPerNode, 0)
	engB.Close()

	if best >= cur {
		t.Errorf("peak PCIe %v >= current %v", best, cur)
	}
	// With 2 us PCIe crossings the best path is 0.12+2+2.16+2+0.12 = 6.4us.
	want := units.FromMicroseconds(6.4)
	if d := best - want; d < -units.Nanosecond || d > units.Nanosecond {
		t.Errorf("best path = %v, want %v", best, want)
	}
}

func TestPayloadIntegrityThroughFullPath(t *testing.T) {
	eng := sim.NewEngine()
	defer eng.Close()
	w := twoNodeWorld(eng)
	data := []float64{1, 2, 3, 5, 8, 13}
	var got []float64
	eng.Spawn("recv", func(p *sim.Proc) {
		got = w.Rank(RanksPerNode+5).Recv(p, -1, -1).Data
	})
	eng.Spawn("send", func(p *sim.Proc) {
		w.Rank(0).Send(p, RanksPerNode+5, 9, data)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 || got[5] != 13 {
		t.Errorf("payload = %v", got)
	}
}

func TestBarrierAcrossNodes(t *testing.T) {
	eng := sim.NewEngine()
	defer eng.Close()
	w := twoNodeWorld(eng)
	n := w.Size()
	reached := make([]units.Time, n)
	for i := 0; i < n; i++ {
		i := i
		r := w.Rank(i)
		eng.SpawnAt(units.Time(i)*units.Nanosecond, "r", func(p *sim.Proc) {
			r.Barrier(p)
			reached[i] = p.Now()
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	entry := units.Time(n-1) * units.Nanosecond
	for i, tm := range reached {
		if tm < entry {
			t.Errorf("rank %d left at %v before last entry", i, tm)
		}
	}
}

func TestAllreduceSums(t *testing.T) {
	eng := sim.NewEngine()
	defer eng.Close()
	w := NewWorld(eng, fabric.New(), CurrentSoftware())
	w.AddNodeRanks(fabric.FromGlobal(0))
	n := w.Size()
	got := make([][]float64, n)
	for i := 0; i < n; i++ {
		i := i
		r := w.Rank(i)
		eng.Spawn("r", func(p *sim.Proc) {
			got[i] = r.Allreduce(p, []float64{1, float64(i)})
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	wantSum := float64(n*(n-1)) / 2
	for i := range got {
		if got[i][0] != float64(n) || got[i][1] != wantSum {
			t.Errorf("rank %d = %v", i, got[i])
		}
	}
}

func TestBcastFromSPERank(t *testing.T) {
	eng := sim.NewEngine()
	defer eng.Close()
	w := twoNodeWorld(eng)
	n := w.Size()
	got := make([][]float64, n)
	root := 3
	for i := 0; i < n; i++ {
		i := i
		r := w.Rank(i)
		eng.Spawn("r", func(p *sim.Proc) {
			var d []float64
			if i == root {
				d = []float64{99}
			}
			got[i] = r.Bcast(p, root, d)
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if len(got[i]) != 1 || got[i][0] != 99 {
			t.Errorf("rank %d = %v", i, got[i])
		}
	}
}

func TestRPC(t *testing.T) {
	eng := sim.NewEngine()
	defer eng.Close()
	w := twoNodeWorld(eng)
	var tMalloc, tRead units.Time
	eng.Spawn("r", func(p *sim.Proc) {
		start := p.Now()
		w.Rank(0).RPC(p, RPCMallocOnPPE, 0)
		tMalloc = p.Now() - start
		start = p.Now()
		w.Rank(0).RPC(p, RPCReadOnHost, 4*units.KB)
		tRead = p.Now() - start
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if tMalloc != 2*params.LocalSegment {
		t.Errorf("malloc RPC = %v", tMalloc)
	}
	// The host read crosses DaCS twice: several microseconds minimum.
	if tRead < units.FromMicroseconds(6) {
		t.Errorf("read RPC = %v, want > 6us", tRead)
	}
}

func TestAddrValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for bad addr")
		}
	}()
	eng := sim.NewEngine()
	defer eng.Close()
	w := NewWorld(eng, fabric.New(), CurrentSoftware())
	w.AddRank(Addr{fabric.FromGlobal(0), 4, 0})
}
