package collectives

import (
	"roadrunner/internal/sim"
	"roadrunner/internal/units"
)

// semanticLen is the length of the small validated payload vector
// carried by broadcast and the full-vector allreduce algorithms. It is
// deliberately independent of the modeled wire size: correctness rides
// on a handful of exactly-representable values while the timing model
// streams the configured byte count.
const semanticLen = 16

// Tag spaces. Each comm serves exactly one collective, so tags only need
// to be unique within one algorithm: fold/unfold frame the non-power-of-
// two reduction, step/gather number rounds within a phase.
const (
	tagBcast  = 1 << 20
	tagFold   = 2 << 20
	tagUnfold = 3 << 20
	tagStep   = 4 << 20
	tagGather = 5 << 20
)

// algorithms maps each Op to its rank body. Every body is executed by
// all ranks concurrently as sim.Procs and returns the rank's final
// semantic payload.
var algorithms = map[Op]func(*comm, *sim.Proc, int, units.Size) []float64{
	BcastBinomial:              bcastBinomial,
	BarrierRecursiveDoubling:   barrierRecursiveDoubling,
	AllreduceRecursiveDoubling: allreduceRecursiveDoubling,
	AllreduceRabenseifner:      allreduceRabenseifner,
	AllreduceRing:              allreduceRing,
	AllgatherRing:              allgatherRing,
	AlltoallPairwise:           alltoallPairwise,
}

func cloneSlice(v []float64) []float64 { return append([]float64(nil), v...) }

// addInto folds b elementwise into a.
func addInto(a, b []float64) {
	for i := range b {
		a[i] += b[i]
	}
}

// floorPow2 returns the largest power of two <= n (n >= 1).
func floorPow2(n int) int {
	p := 1
	for p*2 <= n {
		p *= 2
	}
	return p
}

// realRank maps a participant index of the power-of-two phase back to
// its actual rank under the MPICH fold: participants below rem are the
// odd ranks of the fold region, the rest sit above it.
func realRank(newrank, rem int) int {
	if newrank < rem {
		return 2*newrank + 1
	}
	return newrank + rem
}

// sizeFrac returns ceil(size * num / den) bytes, the wire size of a
// message carrying num of den virtual segments.
func sizeFrac(size units.Size, num, den int) units.Size {
	if num <= 0 || size <= 0 {
		return 0
	}
	return units.Size((int64(size)*int64(num) + int64(den) - 1) / int64(den))
}

// bcastBinomial is the binomial-tree broadcast: ceil(log2 P) levels, the
// root sending to progressively closer subtree roots, each forwarding
// down its subtree. Hop-limited latency grows with the tree depth; every
// edge carries the full payload.
func bcastBinomial(c *comm, p *sim.Proc, r int, size units.Size) []float64 {
	n := len(c.cfg.Places)
	root := c.cfg.Root
	rel := (r - root + n) % n
	var data []float64
	if rel == 0 {
		data = make([]float64, semanticLen)
		for i := range data {
			data[i] = contribution(root, i)
		}
	} else {
		// The parent is rel with its highest set bit cleared.
		h := 1
		for h*2 <= rel {
			h *= 2
		}
		src := (rel - h + root) % n
		data = c.recv(p, r, src, tagBcast)
	}
	h := 1
	for h <= rel {
		h *= 2
	}
	for ; rel+h < n; h *= 2 {
		dst := (rel + h + root) % n
		c.send(p, r, dst, tagBcast, size, data)
	}
	return data
}

// barrierRecursiveDoubling is the dissemination form of the
// recursive-doubling barrier, which handles any rank count in exactly
// ceil(log2 P) rounds: in round k every rank signals (r + 2^k) mod P and
// waits for (r - 2^k) mod P. No payload moves; the cost is pure software
// overhead and hop latency per round.
func barrierRecursiveDoubling(c *comm, p *sim.Proc, r int, _ units.Size) []float64 {
	n := len(c.cfg.Places)
	for k, dist := 0, 1; dist < n; k, dist = k+1, dist*2 {
		dst := (r + dist) % n
		src := (r - dist + n) % n
		c.send(p, r, dst, tagStep+k, 0, nil)
		c.recv(p, r, src, tagStep+k)
	}
	return nil
}

// foldDown runs the MPICH pre-phase for non-power-of-two rank counts:
// even ranks below 2*rem ship their vector to the odd rank above and sit
// out; odd ranks fold it in and join the power-of-two phase. Returns the
// participant index, or -1 for ranks that sat out.
func foldDown(c *comm, p *sim.Proc, r int, size units.Size, vec []float64, rem int) int {
	switch {
	case r < 2*rem && r%2 == 0:
		c.send(p, r, r+1, tagFold, size, cloneSlice(vec))
		return -1
	case r < 2*rem:
		addInto(vec, c.recv(p, r, r-1, tagFold))
		return r / 2
	default:
		return r - rem
	}
}

// foldUp runs the post-phase: odd ranks of the fold region return the
// finished vector to the even rank that sat out.
func foldUp(c *comm, p *sim.Proc, r int, size units.Size, vec []float64, rem int) []float64 {
	if r >= 2*rem {
		return vec
	}
	if r%2 == 0 {
		return c.recv(p, r, r+1, tagUnfold)
	}
	c.send(p, r, r-1, tagUnfold, size, cloneSlice(vec))
	return vec
}

// allreduceRecursiveDoubling exchanges and folds full vectors between
// pairs at doubling distances: log2 P rounds, each moving the whole
// payload. Latency-optimal for small messages; bandwidth-poor for large
// ones (every round retransmits everything).
func allreduceRecursiveDoubling(c *comm, p *sim.Proc, r int, size units.Size) []float64 {
	n := len(c.cfg.Places)
	vec := make([]float64, semanticLen)
	for i := range vec {
		vec[i] = contribution(r, i)
	}
	pof2 := floorPow2(n)
	rem := n - pof2
	newrank := foldDown(c, p, r, size, vec, rem)
	if newrank >= 0 {
		for step, mask := 0, 1; mask < pof2; step, mask = step+1, mask*2 {
			partner := realRank(newrank^mask, rem)
			c.send(p, r, partner, tagStep+step, size, cloneSlice(vec))
			addInto(vec, c.recv(p, r, partner, tagStep+step))
		}
	}
	return foldUp(c, p, r, size, vec, rem)
}

// allreduceRabenseifner is reduce-scatter by recursive halving followed
// by allgather by recursive doubling: each halving round exchanges half
// of the remaining range, so total traffic is ~2*size*(1-1/P) per rank
// instead of recursive doubling's size*log2(P) — the large-message
// algorithm of the MPICH/Open MPI lineage.
func allreduceRabenseifner(c *comm, p *sim.Proc, r int, size units.Size) []float64 {
	n := len(c.cfg.Places)
	vec := make([]float64, semanticLen)
	for i := range vec {
		vec[i] = contribution(r, i)
	}
	pof2 := floorPow2(n)
	rem := n - pof2
	newrank := foldDown(c, p, r, size, vec, rem)
	if newrank >= 0 {
		// level records one halving so the allgather can mirror it. The
		// virtual range (vlo, vhi) over pof2 segments models the wire
		// size; the real range (lo, hi) over the semantic vector carries
		// the validated values.
		type level struct {
			lo, mid, hi    int
			vlo, vmid, vhi int
			keptLow        bool
		}
		lo, hi := 0, semanticLen
		vlo, vhi := 0, pof2
		var stack []level
		step := 0
		for mask := pof2 / 2; mask >= 1; mask /= 2 {
			partner := realRank(newrank^mask, rem)
			mid := lo + (hi-lo)/2
			vmid := vlo + (vhi-vlo)/2
			keepLow := newrank&mask == 0
			sendLo, sendHi, sendV := mid, hi, vhi-vmid
			recvLo := lo
			if !keepLow {
				sendLo, sendHi, sendV = lo, mid, vmid-vlo
				recvLo = mid
			}
			c.send(p, r, partner, tagStep+step, sizeFrac(size, sendV, pof2),
				cloneSlice(vec[sendLo:sendHi]))
			addInto(vec[recvLo:], c.recv(p, r, partner, tagStep+step))
			stack = append(stack, level{lo, mid, hi, vlo, vmid, vhi, keepLow})
			if keepLow {
				hi, vhi = mid, vmid
			} else {
				lo, vlo = mid, vmid
			}
			step++
		}
		// Allgather mirrors the halvings innermost-out: at each level the
		// pair exchanges owned ranges, doubling what both hold.
		for i := len(stack) - 1; i >= 0; i-- {
			lv := stack[i]
			mask := pof2 >> (i + 1)
			partner := realRank(newrank^mask, rem)
			ownLo, ownHi, ownV := lv.lo, lv.mid, lv.vmid-lv.vlo
			otherLo := lv.mid
			if !lv.keptLow {
				ownLo, ownHi, ownV = lv.mid, lv.hi, lv.vhi-lv.vmid
				otherLo = lv.lo
			}
			c.send(p, r, partner, tagGather+i, sizeFrac(size, ownV, pof2),
				cloneSlice(vec[ownLo:ownHi]))
			copy(vec[otherLo:], c.recv(p, r, partner, tagGather+i))
		}
	}
	return foldUp(c, p, r, size, vec, rem)
}

// allreduceRing is the bandwidth-optimal ring: a reduce-scatter pass
// then an allgather pass, each P-1 steps moving size/P bytes, so every
// rank sends ~2*size total regardless of P — at the price of 2(P-1)
// latency terms. The semantic vector has one element per segment.
func allreduceRing(c *comm, p *sim.Proc, r int, size units.Size) []float64 {
	n := len(c.cfg.Places)
	vec := make([]float64, n)
	for i := range vec {
		vec[i] = contribution(r, i)
	}
	if n == 1 {
		return vec
	}
	next, prev := (r+1)%n, (r-1+n)%n
	segSize := sizeFrac(size, 1, n)
	// Reduce-scatter: after step s every rank has folded one more
	// segment; after n-1 steps rank r fully owns segment (r+1) mod n.
	for s := 0; s < n-1; s++ {
		sendSeg := ((r-s)%n + n) % n
		recvSeg := ((r-s-1)%n + n) % n
		c.send(p, r, next, tagStep+s, segSize, []float64{vec[sendSeg]})
		vec[recvSeg] += c.recv(p, r, prev, tagStep+s)[0]
	}
	// Allgather: circulate the finished segments.
	for s := 0; s < n-1; s++ {
		sendSeg := ((r+1-s)%n + n) % n
		recvSeg := ((r-s)%n + n) % n
		c.send(p, r, next, tagGather+s, segSize, []float64{vec[sendSeg]})
		vec[recvSeg] = c.recv(p, r, prev, tagGather+s)[0]
	}
	return vec
}

// allgatherRing circulates each rank's block around the ring: P-1 steps
// of size bytes each (size is the per-rank contribution).
func allgatherRing(c *comm, p *sim.Proc, r int, size units.Size) []float64 {
	n := len(c.cfg.Places)
	vec := make([]float64, n)
	vec[r] = contribution(r, 0)
	if n == 1 {
		return vec
	}
	next, prev := (r+1)%n, (r-1+n)%n
	for s := 0; s < n-1; s++ {
		sendSeg := ((r-s)%n + n) % n
		recvSeg := ((r-s-1)%n + n) % n
		c.send(p, r, next, tagStep+s, size, []float64{vec[sendSeg]})
		vec[recvSeg] = c.recv(p, r, prev, tagStep+s)[0]
	}
	return vec
}

// alltoallPairwise exchanges personalized blocks in P-1 rounds: in round
// k rank r sends its block for (r+k) mod P and receives from (r-k) mod P
// (size is the per-destination block). Total traffic per rank grows
// linearly in P — the algorithm that most stresses the 2:1 taper.
func alltoallPairwise(c *comm, p *sim.Proc, r int, size units.Size) []float64 {
	n := len(c.cfg.Places)
	out := make([]float64, n)
	out[r] = contribution(r, r)
	for k := 1; k < n; k++ {
		dst := (r + k) % n
		src := (r - k + n) % n
		c.send(p, r, dst, tagStep+k, size, []float64{contribution(r, dst)})
		out[src] = c.recv(p, r, src, tagStep+k)[0]
	}
	return out
}
