package collectives

import (
	"testing"

	"roadrunner/internal/transport"
	"roadrunner/internal/units"
)

// The collective benches are the DES hot path the scenario sweeps
// amplify: thousands of rank procs exchanging through shared HCAs. The
// CI smoke runs them once (-benchtime=1x) to keep them from rotting;
// the bench-artifact step runs them at the default benchtime and
// archives the JSON output as BENCH_<short-sha>.json per commit (see
// .github/workflows/ci.yml and `make bench-artifact`), so the perf
// trajectory of the engine under collective load is tracked across PRs
// with properly averaged measurements.

func benchOp(b *testing.B, op Op, ranks int, size units.Size) {
	b.Helper()
	cfg := testConfig(ranks)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(cfg, op, size)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.Time.Microseconds(), "sim-us")
			b.ReportMetric(float64(res.Messages), "messages")
		}
	}
}

func BenchmarkCollectiveBarrier180(b *testing.B) {
	benchOp(b, BarrierRecursiveDoubling, 180, 0)
}

func BenchmarkCollectiveBcast180(b *testing.B) {
	benchOp(b, BcastBinomial, 180, 8*units.KB)
}

func BenchmarkCollectiveAllreduceRD180(b *testing.B) {
	benchOp(b, AllreduceRecursiveDoubling, 180, 8)
}

func BenchmarkCollectiveAllreduceRing64(b *testing.B) {
	benchOp(b, AllreduceRing, 64, 1*units.MB)
}

func BenchmarkCollectiveAlltoall32(b *testing.B) {
	benchOp(b, AlltoallPairwise, 32, 64*units.KB)
}

func BenchmarkCollectiveBarrierFullMachine(b *testing.B) {
	benchOp(b, BarrierRecursiveDoubling, 3060, 0)
}

// benchCongested measures the routed transport path: route enumeration,
// sorted link admission and congestion queueing on top of the PR 2
// model the benches above pin.
func benchCongested(b *testing.B, op Op, ranks int, size units.Size) {
	b.Helper()
	cfg := testConfig(ranks)
	cfg.Congestion = transport.Congested()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(cfg, op, size)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.Time.Microseconds(), "sim-us")
			b.ReportMetric(res.Congestion.TotalWait.Microseconds(), "wait-us")
		}
	}
}

func BenchmarkCollectiveAlltoallCongested180(b *testing.B) {
	benchCongested(b, AlltoallPairwise, 180, 64*units.KB)
}

func BenchmarkCollectiveAlltoallCongested360(b *testing.B) {
	benchCongested(b, AlltoallPairwise, 360, 64*units.KB)
}
