// Package collectives runs MPI collective algorithms as discrete-event
// processes over the Roadrunner interconnect models: every rank is a
// sim.Proc, and every message moves through internal/transport — the
// fabric model for crossbar-hop latency, the ib HCA model for payload
// streaming, and (when the congestion policy is on) link-level channel
// occupancy over the routed cable topology — so protocol overheads, the
// eager/rendezvous switch, near/far core asymmetry, HCA multi-flow
// serialization and uplink contention all shape the collective's timing
// exactly as they shape point-to-point transfers.
//
// The package implements the algorithm repertoire an Open MPI of the
// paper's era would choose from — binomial-tree broadcast, a
// recursive-doubling (dissemination) barrier, recursive-doubling,
// Rabenseifner and ring allreduce, ring allgather and pairwise-exchange
// alltoall — each carrying real (small) semantic payloads so reductions
// and gathers are validated end to end, while the modeled wire size is
// set independently so bandwidth regimes can be explored without moving
// gigabytes of host memory.
//
// A Result reports the slowest rank's completion time (the MPI
// convention for collective latency), message and wire-byte counts, and
// the engine's event statistics. Runs are deterministic: the same
// Config, Op and size always produce the same Result.
package collectives

import (
	"fmt"
	"math"
	"runtime"

	"roadrunner/internal/fabric"
	"roadrunner/internal/ib"
	"roadrunner/internal/params"
	"roadrunner/internal/sim"
	"roadrunner/internal/transport"
	"roadrunner/internal/units"
)

// Op identifies a collective algorithm.
type Op string

// The implemented algorithms.
const (
	BcastBinomial              Op = "bcast-binomial"
	BarrierRecursiveDoubling   Op = "barrier-recursive-doubling"
	AllreduceRecursiveDoubling Op = "allreduce-recursive-doubling"
	AllreduceRabenseifner      Op = "allreduce-rabenseifner"
	AllreduceRing              Op = "allreduce-ring"
	AllgatherRing              Op = "allgather-ring"
	AlltoallPairwise           Op = "alltoall-pairwise"
)

// Ops returns every implemented algorithm, in a stable order.
func Ops() []Op {
	return []Op{
		BcastBinomial,
		BarrierRecursiveDoubling,
		AllreduceRecursiveDoubling,
		AllreduceRabenseifner,
		AllreduceRing,
		AllgatherRing,
		AlltoallPairwise,
	}
}

// Placement locates one rank on the machine: the node it runs on and the
// Opteron core it issues MPI calls from (HCA proximity per Fig. 8).
type Placement struct {
	Node fabric.NodeID
	Core int
}

// BlockPlacement places ranks on consecutive nodes in global order, one
// rank per node, all on the given Opteron core. This is the natural
// MPI rank order of Fig. 10's latency map.
func BlockPlacement(fab *fabric.System, ranks, core int) []Placement {
	if ranks > fab.Nodes() {
		panic(fmt.Sprintf("collectives: %d ranks exceed %d nodes", ranks, fab.Nodes()))
	}
	out := make([]Placement, ranks)
	for i := range out {
		out[i] = Placement{Node: fabric.FromGlobal(i), Core: core}
	}
	return out
}

// StridedPlacement places rank i on global node (i*stride) mod the node
// count. HPL's process rows and columns map onto the machine this way: a
// row of a column-major P×Q grid is ranks {r, r+P, r+2P, ...}, i.e. a
// stride-P walk across nodes, which spreads one communicator over many
// CUs.
func StridedPlacement(fab *fabric.System, ranks, stride, core int) []Placement {
	if ranks > fab.Nodes() {
		panic(fmt.Sprintf("collectives: %d ranks exceed %d nodes", ranks, fab.Nodes()))
	}
	if stride < 1 {
		panic("collectives: stride < 1")
	}
	n := fab.Nodes()
	out := make([]Placement, ranks)
	seen := make(map[int]bool, ranks)
	g := 0
	for i := range out {
		for seen[g%n] {
			// Stride wrapped onto an occupied node: advance to the next
			// free one so every rank still gets its own HCA.
			g++
		}
		seen[g%n] = true
		out[i] = Placement{Node: fabric.FromGlobal(g % n), Core: core}
		g += stride
	}
	return out
}

// PackedPlacement places perNode ranks on each node, on cores
// 0..perNode-1, so a communicator mixes near (1, 3) and far (0, 2) HCA
// cores and shares each node's adapter among its local ranks.
func PackedPlacement(fab *fabric.System, ranks, perNode int) []Placement {
	if perNode < 1 || perNode > 4 {
		panic("collectives: perNode outside 1..4")
	}
	if (ranks+perNode-1)/perNode > fab.Nodes() {
		panic(fmt.Sprintf("collectives: %d ranks at %d/node exceed %d nodes",
			ranks, perNode, fab.Nodes()))
	}
	out := make([]Placement, ranks)
	for i := range out {
		out[i] = Placement{Node: fabric.FromGlobal(i / perNode), Core: i % perNode}
	}
	return out
}

// Config describes one collective run: the fabric the ranks live on, the
// MPI/IB protocol profile, the rank→node mapping, the link congestion
// policy, and the broadcast root.
type Config struct {
	Fabric  *fabric.System
	Profile ib.Profile
	Places  []Placement
	// Congestion selects the transport's link-occupancy model. The zero
	// value keeps the PR 2 infinite-capacity path;
	// transport.Congested() makes concurrent flows on one cable
	// serialize, so the 2:1 taper throttles dense exchanges.
	Congestion transport.Policy
	Root       int // broadcast root rank (0 if unset)
}

// DefaultConfig returns the canonical communicator for the given node
// count: one rank per node on a near core, the Open MPI profile, over
// the smallest fabric that holds them. The scenario sweeps and the
// rrsim/facade one-off runs share this setup so a CLI run reproduces a
// sweep point exactly.
func DefaultConfig(nodes int) (Config, error) {
	return DefaultConfigOn(fabric.DefaultTopology, nodes)
}

// DefaultConfigOn is DefaultConfig over the named fabric topology
// (fabric.Topologies lists them); "fattree" reproduces DefaultConfig
// byte for byte.
func DefaultConfigOn(topology string, nodes int) (Config, error) {
	if nodes < 1 {
		return Config{}, fmt.Errorf("collectives: need at least 1 node, got %d", nodes)
	}
	cus := (nodes + params.NodesPerCU - 1) / params.NodesPerCU
	if cus > params.NumCUs {
		return Config{}, fmt.Errorf("collectives: %d nodes exceed the %d-CU machine", nodes, params.NumCUs)
	}
	fab, err := fabric.NewTopologyScaled(topology, cus)
	if err != nil {
		return Config{}, err
	}
	return Config{
		Fabric:  fab,
		Profile: ib.OpenMPI(),
		Places:  BlockPlacement(fab, nodes, 1),
	}, nil
}

// CongestedConfig is DefaultConfig with the wormhole congestion policy:
// every message is routed over the cable topology and concurrent flows
// crossing the same link serialize.
func CongestedConfig(nodes int) (Config, error) {
	return CongestedConfigOn(fabric.DefaultTopology, nodes)
}

// CongestedConfigOn is DefaultConfigOn with the wormhole congestion
// policy.
func CongestedConfigOn(topology string, nodes int) (Config, error) {
	cfg, err := DefaultConfigOn(topology, nodes)
	if err != nil {
		return Config{}, err
	}
	cfg.Congestion = transport.Congested()
	return cfg, nil
}

// Result is the outcome of one collective operation.
type Result struct {
	Op    Op
	Ranks int
	// Size is the per-rank payload in bytes (the collective's message
	// size parameter; see each algorithm for what it denotes).
	Size units.Size
	// Time is the completion time of the slowest rank, the MPI
	// convention for collective latency.
	Time units.Time
	// MinTime is the completion time of the fastest rank.
	MinTime units.Time
	// Messages counts every point-to-point message the algorithm sent;
	// WireBytes counts the modeled payload bytes that actually crossed
	// the fabric (intra-node shared-memory messages excluded).
	Messages  int64
	WireBytes units.Size
	// Data holds each rank's final semantic payload (validated against
	// the collective's definition before Run returns).
	Data [][]float64
	// EngineStats snapshots the DES engine after the run.
	EngineStats sim.Stats
	// Congestion is the transport's link-occupancy census (nil when the
	// run used the infinite-capacity PR 2 fabric).
	Congestion *transport.Census
}

// Bandwidth returns the effective per-rank bandwidth Size/Time, the
// usual way collective microbenchmarks report large-message performance.
func (r *Result) Bandwidth() units.Bandwidth {
	if r.Time <= 0 {
		return 0
	}
	return units.Bandwidth(float64(r.Size) / r.Time.Seconds())
}

// comm is the per-run communicator state shared by all rank procs: the
// mailboxes carrying semantic payloads, and the transport net moving the
// modeled bytes.
type comm struct {
	eng    *sim.Engine
	cfg    Config
	net    *transport.Net
	inbox  []*sim.Mailbox[*message]
	finish []units.Time

	// Message recycling and match state. Messages pool through a free
	// list with their delivery closure bound once, and each rank's
	// receive predicate is bound once over per-rank match slots, so the
	// send/recv hot path — millions of messages in a full-machine
	// alltoall — allocates nothing beyond the semantic payload.
	freeMsg  *message
	matchSrc []int
	matchTag []int
	preds    []func(*message) bool
}

// message is one in-flight point-to-point transfer inside a collective.
type message struct {
	src  int
	tag  int
	size units.Size
	data []float64

	box     *sim.Mailbox[*message] // destination inbox of the current flight
	deliver func()                 // bound once: box.Put(this)
	next    *message               // free-list link
}

func newComm(eng *sim.Engine, cfg Config) *comm {
	ranks := len(cfg.Places)
	c := &comm{
		eng:      eng,
		cfg:      cfg,
		net:      transport.New(eng, cfg.Fabric, cfg.Profile, cfg.Congestion),
		inbox:    make([]*sim.Mailbox[*message], ranks),
		finish:   make([]units.Time, ranks),
		matchSrc: make([]int, ranks),
		matchTag: make([]int, ranks),
		preds:    make([]func(*message) bool, ranks),
	}
	for i := range cfg.Places {
		c.inbox[i] = sim.NewMailbox[*message](eng, fmt.Sprintf("coll-rank%d", i))
		i := i
		c.preds[i] = func(m *message) bool {
			return m.src == c.matchSrc[i] && m.tag == c.matchTag[i]
		}
	}
	return c
}

// getMsg pops a pooled message (allocating, with its delivery closure,
// on first use).
func (c *comm) getMsg() *message {
	m := c.freeMsg
	if m == nil {
		m = &message{}
		m.deliver = func() { m.box.Put(m) }
		return m
	}
	c.freeMsg = m.next
	m.next = nil
	return m
}

// putMsg returns a delivered-and-consumed message to the pool.
func (c *comm) putMsg(m *message) {
	m.data = nil
	m.box = nil
	m.next = c.freeMsg
	c.freeMsg = m
}

// send transmits a message from src to dst over the transport, blocking
// the calling proc for the sender-side costs (software overhead, the
// rendezvous round trip, link admission, the HCA stream); the payload is
// delivered to dst's mailbox after the fabric traversal and the
// receive-side overhead.
func (c *comm) send(p *sim.Proc, src, dst, tag int, size units.Size, data []float64) {
	m := c.getMsg()
	m.src, m.tag, m.size, m.data = src, tag, size, data
	m.box = c.inbox[dst]
	a, b := c.cfg.Places[src], c.cfg.Places[dst]
	c.net.Transfer(p,
		transport.Endpoint{Node: a.Node, Core: a.Core},
		transport.Endpoint{Node: b.Node, Core: b.Core},
		size, m.deliver)
}

// recv blocks until the message with the given source and tag arrives at
// rank dst, recycles the message and returns its payload. Safe because
// rank dst is the only reader of its inbox, so the match slots stay
// stable while the proc is parked inside GetMatch.
func (c *comm) recv(p *sim.Proc, dst, src, tag int) []float64 {
	c.matchSrc[dst] = src
	c.matchTag[dst] = tag
	m := c.inbox[dst].GetMatch(p, c.preds[dst])
	data := m.data
	c.putMsg(m)
	return data
}

// contribution is rank r's semantic input for element i. The values are
// integers (represented exactly in float64 up to the full machine's rank
// count), so reduction results are exact and order-independent and the
// validators can compare with ==.
func contribution(r, i int) float64 { return float64((r+1)*1000003 + i*7919) }

// reducedValue is the expected allreduce result for element i over p
// ranks: sum_r contribution(r, i).
func reducedValue(p, i int) float64 {
	return float64(1000003)*float64(p)*float64(p+1)/2 + float64(p)*float64(i*7919)
}

// pendingRun is one prepared collective: its comm and rank procs live on
// an engine the caller runs (alone, or as one domain of a sim.Cluster).
type pendingRun struct {
	c    *comm
	op   Op
	size units.Size
	out  [][]float64
}

// prepare validates the run's inputs and spawns its rank procs on eng.
// The spawned state is exactly what Run builds, so finishing a prepared
// run yields a Result byte-identical to Run's.
func prepare(eng *sim.Engine, cfg Config, op Op, size units.Size) (*pendingRun, error) {
	ranks := len(cfg.Places)
	if ranks == 0 {
		return nil, fmt.Errorf("collectives: no ranks placed")
	}
	if cfg.Root < 0 || cfg.Root >= ranks {
		return nil, fmt.Errorf("collectives: root %d outside %d ranks", cfg.Root, ranks)
	}
	if size < 0 {
		return nil, fmt.Errorf("collectives: negative size %d", size)
	}
	algo, ok := algorithms[op]
	if !ok {
		return nil, fmt.Errorf("collectives: unknown op %q (have %v)", op, Ops())
	}
	pr := &pendingRun{c: newComm(eng, cfg), op: op, size: size, out: make([][]float64, ranks)}
	for r := 0; r < ranks; r++ {
		r := r
		eng.Spawn(fmt.Sprintf("rank%d", r), func(p *sim.Proc) {
			pr.out[r] = algo(pr.c, p, r, size)
			pr.c.finish[r] = p.Now()
		})
	}
	return pr, nil
}

// finish validates the completed run's semantic payloads and assembles
// its Result.
func (pr *pendingRun) finish(st sim.Stats) (*Result, error) {
	if err := validate(pr.op, pr.c.cfg, pr.out); err != nil {
		return nil, err
	}
	return pr.c.result(pr.op, pr.size, pr.out, st), nil
}

// Run executes one collective on a fresh engine and returns its Result.
// The run is deterministic and self-validating: reductions, gathers and
// broadcasts check their semantic payloads against the collective's
// definition and fail loudly on any algorithm bug.
func Run(cfg Config, op Op, size units.Size) (*Result, error) {
	eng := sim.NewEngine()
	defer eng.Close()
	pr, err := prepare(eng, cfg, op, size)
	if err != nil {
		return nil, err
	}
	if err := eng.Run(); err != nil {
		return nil, fmt.Errorf("collectives: %s over %d ranks: %w", op, len(cfg.Places), err)
	}
	return pr.finish(eng.Stats())
}

// Request is one independent collective run, for RunMany.
type Request struct {
	Cfg  Config
	Op   Op
	Size units.Size
}

// RunMany executes independent collective runs concurrently, one
// sim.Cluster domain per request, spread over the given number of
// worker goroutines (workers < 1 uses one worker per request up to
// GOMAXPROCS). Each run is its own engine, transport and fabric
// state — the CU/communicator granularity at which the machine
// partitions cleanly, since the ib endpoint model couples a
// communicator's HCAs at instant granularity — so every Result is
// byte-identical to Run's for the same request, in request order, at
// any worker count. The serial engine path is unchanged: workers == 1
// executes the same domains on one goroutine.
func RunMany(reqs []Request, workers int) ([]*Result, error) {
	if len(reqs) == 0 {
		return nil, fmt.Errorf("collectives: no requests")
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	cl := sim.NewCluster(len(reqs), 0)
	defer cl.Close()
	prs := make([]*pendingRun, len(reqs))
	for i, rq := range reqs {
		pr, err := prepare(cl.Domain(i), rq.Cfg, rq.Op, rq.Size)
		if err != nil {
			return nil, fmt.Errorf("collectives: request %d: %w", i, err)
		}
		prs[i] = pr
	}
	if err := cl.Run(workers); err != nil {
		return nil, fmt.Errorf("collectives: parallel runs: %w", err)
	}
	results := make([]*Result, len(reqs))
	for i, pr := range prs {
		res, err := pr.finish(cl.Domain(i).Stats())
		if err != nil {
			return nil, err
		}
		results[i] = res
	}
	return results, nil
}

// censusTop is how many contended links a Result's census retains.
const censusTop = 10

// result assembles a Result from the transport's counters.
func (c *comm) result(op Op, size units.Size, out [][]float64, st sim.Stats) *Result {
	res := &Result{
		Op:          op,
		Ranks:       len(c.cfg.Places),
		Size:        size,
		Messages:    c.net.Messages(),
		WireBytes:   c.net.WireBytes(),
		Data:        out,
		EngineStats: st,
		Congestion:  c.net.Census(censusTop),
	}
	res.MinTime = units.Time(math.MaxInt64)
	for _, f := range c.finish {
		if f > res.Time {
			res.Time = f
		}
		if f < res.MinTime {
			res.MinTime = f
		}
	}
	return res
}

// Spec pairs an operation with its payload size, for RunSequence.
type Spec struct {
	Op   Op
	Size units.Size
}

// RunSequence runs several collectives back to back on ONE engine, with
// all ranks rendezvousing on a sim.Group between operations so each
// starts from a common simulated instant (the way benchmark loops
// separate iterations with a barrier that costs nothing on the wire).
// Per-operation times are measured from that common start.
func RunSequence(cfg Config, specs []Spec) ([]*Result, error) {
	ranks := len(cfg.Places)
	if ranks == 0 {
		return nil, fmt.Errorf("collectives: no ranks placed")
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("collectives: empty sequence")
	}
	algos := make([]func(*comm, *sim.Proc, int, units.Size) []float64, len(specs))
	for i, s := range specs {
		a, ok := algorithms[s.Op]
		if !ok {
			return nil, fmt.Errorf("collectives: unknown op %q (have %v)", s.Op, Ops())
		}
		algos[i] = a
	}

	eng := sim.NewEngine()
	defer eng.Close()
	group := sim.NewGroup(eng, "collective-phase", ranks)
	comms := make([]*comm, len(specs))
	for i := range specs {
		comms[i] = newComm(eng, cfg)
	}
	starts := make([]units.Time, len(specs))
	// marks[i] is the engine's dispatched-event count at operation i's
	// release instant: the maximum over ranks of the count at arrival is
	// exactly the count when the last rank arrives, before anything of
	// the operation itself has dispatched.
	marks := make([]int64, len(specs))
	outs := make([][][]float64, len(specs))
	for i := range outs {
		outs[i] = make([][]float64, ranks)
	}
	for r := 0; r < ranks; r++ {
		r := r
		eng.Spawn(fmt.Sprintf("rank%d", r), func(p *sim.Proc) {
			for i := range specs {
				if d := eng.Stats().Dispatched; d > marks[i] {
					marks[i] = d
				}
				group.Arrive(p)
				if r == 0 {
					starts[i] = p.Now()
				}
				outs[i][r] = algos[i](comms[i], p, r, specs[i].Size)
				comms[i].finish[r] = p.Now()
			}
		})
	}
	if err := eng.Run(); err != nil {
		return nil, fmt.Errorf("collectives: sequence over %d ranks: %w", ranks, err)
	}
	st := eng.Stats()
	results := make([]*Result, len(specs))
	for i, s := range specs {
		if err := validate(s.Op, cfg, outs[i]); err != nil {
			return nil, err
		}
		// Per-op stats: Dispatched is the delta between release instants
		// (rendezvous wake-ups charged to the op they start); calendar
		// peak and proc counts stay whole-run.
		opStats := st
		if i+1 < len(specs) {
			opStats.Dispatched = marks[i+1] - marks[i]
		} else {
			opStats.Dispatched = st.Dispatched - marks[i]
		}
		res := comms[i].result(s.Op, s.Size, outs[i], opStats)
		res.Time -= starts[i]
		res.MinTime -= starts[i]
		results[i] = res
	}
	return results, nil
}

// validate checks each rank's final semantic payload against the
// collective's definition.
func validate(op Op, cfg Config, out [][]float64) error {
	p := len(cfg.Places)
	fail := func(r int, msg string, args ...any) error {
		return fmt.Errorf("collectives: %s over %d ranks: rank %d: %s",
			op, p, r, fmt.Sprintf(msg, args...))
	}
	switch op {
	case BarrierRecursiveDoubling:
		return nil
	case BcastBinomial:
		for r := range out {
			if len(out[r]) != semanticLen {
				return fail(r, "payload length %d", len(out[r]))
			}
			for i, v := range out[r] {
				if want := contribution(cfg.Root, i); v != want {
					return fail(r, "element %d = %v, want %v", i, v, want)
				}
			}
		}
	case AllreduceRecursiveDoubling, AllreduceRabenseifner:
		for r := range out {
			if len(out[r]) != semanticLen {
				return fail(r, "payload length %d", len(out[r]))
			}
			for i, v := range out[r] {
				if want := reducedValue(p, i); v != want {
					return fail(r, "element %d = %v, want %v", i, v, want)
				}
			}
		}
	case AllreduceRing:
		for r := range out {
			if len(out[r]) != p {
				return fail(r, "payload length %d, want %d", len(out[r]), p)
			}
			for i, v := range out[r] {
				if want := reducedValue(p, i); v != want {
					return fail(r, "segment %d = %v, want %v", i, v, want)
				}
			}
		}
	case AllgatherRing:
		for r := range out {
			if len(out[r]) != p {
				return fail(r, "payload length %d, want %d", len(out[r]), p)
			}
			for i, v := range out[r] {
				if want := contribution(i, 0); v != want {
					return fail(r, "block %d = %v, want %v", i, v, want)
				}
			}
		}
	case AlltoallPairwise:
		for r := range out {
			if len(out[r]) != p {
				return fail(r, "payload length %d, want %d", len(out[r]), p)
			}
			for s, v := range out[r] {
				if want := contribution(s, r); v != want {
					return fail(r, "block from %d = %v, want %v", s, v, want)
				}
			}
		}
	default:
		return fmt.Errorf("collectives: no validator for %q", op)
	}
	return nil
}
