package collectives

import (
	"math"
	"testing"

	"roadrunner/internal/fabric"
	"roadrunner/internal/ib"
	"roadrunner/internal/units"
)

func testConfig(ranks int) Config {
	cus := (ranks + 179) / 180
	if cus < 1 {
		cus = 1
	}
	fab := fabric.NewScaled(cus)
	return Config{
		Fabric:  fab,
		Profile: ib.OpenMPI(),
		Places:  BlockPlacement(fab, ranks, 1),
	}
}

func TestAllOpsValidateAtAwkwardSizes(t *testing.T) {
	// Run validates semantic payloads internally; failure surfaces as an
	// error. Non-powers of two exercise the fold phases and the ring
	// wrap-around.
	for _, op := range Ops() {
		for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 13, 16, 21} {
			if _, err := Run(testConfig(n), op, 4*units.KB); err != nil {
				t.Errorf("%s n=%d: %v", op, n, err)
			}
		}
	}
}

func TestMessageCounts(t *testing.T) {
	const n = 16
	cfg := testConfig(n)
	cases := []struct {
		op   Op
		want int64
	}{
		{BarrierRecursiveDoubling, n * 4},   // ceil(log2 16) rounds
		{BcastBinomial, n - 1},              // one receive per non-root
		{AllreduceRecursiveDoubling, n * 4}, // log2(16) exchanges
		{AllreduceRing, 2 * n * (n - 1)},    // two ring passes
		{AllgatherRing, n * (n - 1)},        // one ring pass
		{AlltoallPairwise, n * (n - 1)},     // P-1 rounds of pairs
	}
	for _, tc := range cases {
		res, err := Run(cfg, tc.op, 1*units.KB)
		if err != nil {
			t.Fatalf("%s: %v", tc.op, err)
		}
		if res.Messages != tc.want {
			t.Errorf("%s: %d messages, want %d", tc.op, res.Messages, tc.want)
		}
	}
	// Rabenseifner at a power of two: log2(P) halvings + log2(P)
	// doublings per rank.
	res, err := Run(cfg, AllreduceRabenseifner, 1*units.KB)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(n * 8); res.Messages != want {
		t.Errorf("rabenseifner: %d messages, want %d", res.Messages, want)
	}
}

func TestRingWireBytesBandwidthOptimal(t *testing.T) {
	// Ring allreduce moves ~2*size per rank regardless of P; recursive
	// doubling moves size*log2(P) per rank.
	const n = 16
	cfg := testConfig(n)
	size := 64 * units.KB
	ring, err := Run(cfg, AllreduceRing, size)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := Run(cfg, AllreduceRecursiveDoubling, size)
	if err != nil {
		t.Fatal(err)
	}
	ringPerRank := float64(ring.WireBytes) / n
	rdPerRank := float64(rd.WireBytes) / n
	if want := 2 * float64(size) * float64(n-1) / n; math.Abs(ringPerRank-want)/want > 0.01 {
		t.Errorf("ring wire/rank = %.0f, want ~%.0f", ringPerRank, want)
	}
	if want := 4 * float64(size); math.Abs(rdPerRank-want)/want > 0.3 {
		t.Errorf("rd wire/rank = %.0f, want ~%.0f (log2(16)*size)", rdPerRank, want)
	}
}

func TestLogGrowthInHopLimitedRegime(t *testing.T) {
	// Within one CU the hop count is 1-3, so small-message broadcast and
	// barrier cost is dominated by rounds: doubling the rank count from 8
	// to 64 triples the rounds (3 -> 6) but must not blow past the extra
	// in-CU hop cost.
	for _, op := range []Op{BcastBinomial, BarrierRecursiveDoubling, AllreduceRecursiveDoubling} {
		t8, err := Run(testConfig(8), op, 8)
		if err != nil {
			t.Fatal(err)
		}
		t64, err := Run(testConfig(64), op, 8)
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(t64.Time) / float64(t8.Time)
		if ratio < 1.5 || ratio > 3.5 {
			t.Errorf("%s: time(64)/time(8) = %.2f, want ~2 (rounds 6/3 with in-CU hops)", op, ratio)
		}
	}
}

func TestAllreduceAlgorithmCrossover(t *testing.T) {
	// Latency regime: recursive doubling beats the ring at tiny payloads.
	// Bandwidth regime: the ring beats recursive doubling at large ones.
	cfg := testConfig(16)
	smallRD, err := Run(cfg, AllreduceRecursiveDoubling, 64)
	if err != nil {
		t.Fatal(err)
	}
	smallRing, err := Run(cfg, AllreduceRing, 64)
	if err != nil {
		t.Fatal(err)
	}
	if smallRD.Time >= smallRing.Time {
		t.Errorf("64B: rd %v !< ring %v", smallRD.Time, smallRing.Time)
	}
	bigRD, err := Run(cfg, AllreduceRecursiveDoubling, 4*units.MB)
	if err != nil {
		t.Fatal(err)
	}
	bigRing, err := Run(cfg, AllreduceRing, 4*units.MB)
	if err != nil {
		t.Fatal(err)
	}
	if bigRing.Time >= bigRD.Time {
		t.Errorf("4MB: ring %v !< rd %v", bigRing.Time, bigRD.Time)
	}
	bigRab, err := Run(cfg, AllreduceRabenseifner, 4*units.MB)
	if err != nil {
		t.Fatal(err)
	}
	if bigRab.Time >= bigRD.Time {
		t.Errorf("4MB: rabenseifner %v !< rd %v", bigRab.Time, bigRD.Time)
	}
}

func TestDeterministicReruns(t *testing.T) {
	cfg := testConfig(13)
	for _, op := range Ops() {
		a, err := Run(cfg, op, 32*units.KB)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(cfg, op, 32*units.KB)
		if err != nil {
			t.Fatal(err)
		}
		if a.Time != b.Time || a.Messages != b.Messages || a.WireBytes != b.WireBytes {
			t.Errorf("%s: rerun diverged: %v/%d vs %v/%d", op, a.Time, a.Messages, b.Time, b.Messages)
		}
	}
}

func TestSequenceMatchesIndividualRuns(t *testing.T) {
	// Rendezvousing between operations makes each start from a common
	// instant, so per-op times in a sequence equal standalone runs.
	cfg := testConfig(9)
	specs := []Spec{
		{BarrierRecursiveDoubling, 0},
		{BcastBinomial, 16 * units.KB},
		{AllreduceRing, 8 * units.KB},
	}
	seq, err := RunSequence(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range specs {
		solo, err := Run(cfg, s.Op, s.Size)
		if err != nil {
			t.Fatal(err)
		}
		// Flow-free ops match exactly; ops with concurrent HCA flows can
		// differ within a chunk (release order changes which flows
		// overlap at chunk boundaries), so allow 2%.
		diff := math.Abs(float64(seq[i].Time - solo.Time))
		if diff/float64(solo.Time) > 0.02 {
			t.Errorf("%s: sequence %v != solo %v", s.Op, seq[i].Time, solo.Time)
		}
	}
	// Dispatched events are attributed per operation and roughly match
	// the standalone runs (the sequence adds rendezvous wake-ups).
	var attributed int64
	for i, r := range seq {
		if r.EngineStats.Dispatched <= 0 {
			t.Errorf("%s: no events attributed", specs[i].Op)
		}
		attributed += r.EngineStats.Dispatched
	}
	solo0, _ := Run(cfg, specs[0].Op, specs[0].Size)
	if attributed < solo0.EngineStats.Dispatched {
		t.Errorf("attributed %d events across the sequence, less than one solo op (%d)",
			attributed, solo0.EngineStats.Dispatched)
	}
}

func TestRootedBroadcastFromNonzeroRoot(t *testing.T) {
	cfg := testConfig(11)
	cfg.Root = 7
	res, err := Run(cfg, BcastBinomial, 1*units.KB)
	if err != nil {
		t.Fatal(err)
	}
	for r, vec := range res.Data {
		if vec[0] != contribution(7, 0) {
			t.Errorf("rank %d got %v", r, vec[0])
		}
	}
}

func TestIntraNodeMessagesStayOffTheWire(t *testing.T) {
	// All 4 ranks on one node: messages take the shared-memory path, so
	// nothing is charged to the fabric.
	fab := fabric.NewScaled(1)
	cfg := Config{Fabric: fab, Profile: ib.OpenMPI(), Places: PackedPlacement(fab, 4, 4)}
	res, err := Run(cfg, AllgatherRing, 64*units.KB)
	if err != nil {
		t.Fatal(err)
	}
	if res.WireBytes != 0 {
		t.Errorf("intra-node allgather put %v on the wire", res.WireBytes)
	}
	if res.Messages != 4*3 {
		t.Errorf("messages = %d", res.Messages)
	}
}

func TestPackedPlacementSharesHCAs(t *testing.T) {
	// Four ranks per node: the node's HCA serializes concurrent flows, so
	// a packed alltoall is slower than the same ranks spread one per node.
	fab := fabric.NewScaled(1)
	packed := Config{Fabric: fab, Profile: ib.OpenMPI(), Places: PackedPlacement(fab, 16, 4)}
	spread := Config{Fabric: fab, Profile: ib.OpenMPI(), Places: BlockPlacement(fab, 16, 1)}
	rp, err := Run(packed, AlltoallPairwise, 256*units.KB)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Run(spread, AlltoallPairwise, 256*units.KB)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Time <= rs.Time {
		t.Errorf("packed %v !> spread %v", rp.Time, rs.Time)
	}
}

func TestStridedPlacementSpansCUs(t *testing.T) {
	fab := fabric.New()
	places := StridedPlacement(fab, 60, 51, 1)
	cus := map[int]bool{}
	nodes := map[fabric.NodeID]bool{}
	for _, pl := range places {
		cus[pl.Node.CU] = true
		if nodes[pl.Node] {
			t.Fatalf("node %v reused", pl.Node)
		}
		nodes[pl.Node] = true
	}
	if len(cus) < 17 {
		t.Errorf("stride-51 row spans %d CUs, want all 17", len(cus))
	}
	cfg := Config{Fabric: fab, Profile: ib.OpenMPI(), Places: places}
	if _, err := Run(cfg, BcastBinomial, 1*units.MB); err != nil {
		t.Fatal(err)
	}
}

func TestNearCorePlacementFasterThanFar(t *testing.T) {
	fab := fabric.NewScaled(1)
	near := Config{Fabric: fab, Profile: ib.OpenMPI(), Places: BlockPlacement(fab, 8, 1)}
	far := Config{Fabric: fab, Profile: ib.OpenMPI(), Places: BlockPlacement(fab, 8, 0)}
	rn, err := Run(near, BcastBinomial, 1*units.MB)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := Run(far, BcastBinomial, 1*units.MB)
	if err != nil {
		t.Fatal(err)
	}
	if rn.Time >= rf.Time {
		t.Errorf("near-core bcast %v !< far-core %v (Fig. 8 asymmetry)", rn.Time, rf.Time)
	}
}

func TestUnknownOpAndBadConfig(t *testing.T) {
	if _, err := Run(testConfig(4), Op("nope"), 0); err == nil {
		t.Error("unknown op accepted")
	}
	cfg := testConfig(4)
	cfg.Root = 9
	if _, err := Run(cfg, BcastBinomial, 0); err == nil {
		t.Error("out-of-range root accepted")
	}
	if _, err := Run(Config{}, BcastBinomial, 0); err == nil {
		t.Error("empty placement accepted")
	}
}

func TestBandwidthReporting(t *testing.T) {
	res, err := Run(testConfig(8), BcastBinomial, 1*units.MB)
	if err != nil {
		t.Fatal(err)
	}
	bw := res.Bandwidth()
	if bw <= 0 || bw > ib.OpenMPI().NearBandwidth {
		t.Errorf("bcast effective bandwidth %v outside (0, near]", bw)
	}
}
