package collectives

import (
	"testing"

	"roadrunner/internal/fabric"
	"roadrunner/internal/ib"
	"roadrunner/internal/transport"
	"roadrunner/internal/units"
)

// TestInfiniteCapacityReproducesLegacyModel is the transport invariant at
// the collective level: with every link capacity set to infinity the
// congested (routed) path reproduces the PR 2 latency model exactly —
// same completion times, message counts and event counts — for every
// algorithm, across placements that mix intra-node, intra-CU and
// cross-CU traffic.
func TestInfiniteCapacityReproducesLegacyModel(t *testing.T) {
	fab := fabric.NewScaled(3)
	placements := map[string][]Placement{
		"block":   BlockPlacement(fab, 48, 1),
		"strided": StridedPlacement(fab, 40, 23, 0),
		"packed":  PackedPlacement(fab, 32, 4),
	}
	for name, places := range placements {
		for _, op := range Ops() {
			for _, size := range []units.Size{0, 8, 4 * units.KB, 64 * units.KB} {
				legacy := Config{Fabric: fab, Profile: ib.OpenMPI(), Places: places}
				routed := legacy
				routed.Congestion = transport.InfiniteCapacity()
				a, err := Run(legacy, op, size)
				if err != nil {
					t.Fatalf("%s %s %v legacy: %v", name, op, size, err)
				}
				b, err := Run(routed, op, size)
				if err != nil {
					t.Fatalf("%s %s %v routed: %v", name, op, size, err)
				}
				if a.Time != b.Time || a.MinTime != b.MinTime {
					t.Errorf("%s %s %v: times diverged: %v/%v vs %v/%v",
						name, op, size, a.Time, a.MinTime, b.Time, b.MinTime)
				}
				if a.Messages != b.Messages || a.WireBytes != b.WireBytes {
					t.Errorf("%s %s %v: traffic diverged: %d/%v vs %d/%v",
						name, op, size, a.Messages, a.WireBytes, b.Messages, b.WireBytes)
				}
				if a.EngineStats.Dispatched != b.EngineStats.Dispatched {
					t.Errorf("%s %s %v: event counts diverged: %d vs %d",
						name, op, size, a.EngineStats.Dispatched, b.EngineStats.Dispatched)
				}
				if b.Congestion == nil || b.Congestion.TotalWait != 0 {
					t.Errorf("%s %s %v: infinite-capacity census %+v",
						name, op, size, b.Congestion)
				}
				if a.Congestion != nil {
					t.Errorf("%s %s %v: legacy run produced a census", name, op, size)
				}
			}
		}
	}
}

// TestCongestedAlltoallThrottledByTaper checks the headline mechanism: a
// cross-CU alltoall is measurably slower on the congested fabric, while
// the same exchange inside one crossbar (no shared cables between
// distinct node pairs beyond the crossbar itself) stays at the legacy
// timing, and validation still passes either way.
func TestCongestedAlltoallThrottledByTaper(t *testing.T) {
	const size = 64 * units.KB
	run := func(nodes int, congested bool) *Result {
		cfg, err := DefaultConfig(nodes)
		if err != nil {
			t.Fatal(err)
		}
		if congested {
			cfg.Congestion = transport.Congested()
		}
		res, err := Run(cfg, AlltoallPairwise, size)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	// Two CUs: every round after the first 180 pushes a full CU's flows
	// across 96 uplink cables.
	base, cong := run(360, false), run(360, true)
	slowdown := float64(cong.Time) / float64(base.Time)
	if slowdown <= 1.05 {
		t.Errorf("cross-CU alltoall slowdown = %.3f, want > 1.05 (taper must throttle)", slowdown)
	}
	if cong.Congestion == nil || cong.Congestion.TotalWait <= 0 {
		t.Fatalf("congested run reports no queueing: %+v", cong.Congestion)
	}
	hot := cong.Congestion.Top[0]
	if hot.Link.Kind != fabric.LinkUplink {
		t.Errorf("hottest link %v, want an uplink cable", hot.Link)
	}
	// A single crossbar has no tapered tier in play.
	base8, cong8 := run(8, false), run(8, true)
	if r := float64(cong8.Time) / float64(base8.Time); r < 0.999 || r > 1.01 {
		t.Errorf("single-crossbar alltoall slowdown = %.4f, want ~1", r)
	}
}

// TestCongestedRunsDeterministic pins byte-identical reruns under the
// wormhole policy, queueing included.
func TestCongestedRunsDeterministic(t *testing.T) {
	cfg, err := CongestedConfig(360)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(cfg, AlltoallPairwise, 32*units.KB)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, AlltoallPairwise, 32*units.KB)
	if err != nil {
		t.Fatal(err)
	}
	if a.Time != b.Time || a.Messages != b.Messages ||
		a.EngineStats.Dispatched != b.EngineStats.Dispatched {
		t.Fatalf("congested rerun diverged: %v/%d/%d vs %v/%d/%d",
			a.Time, a.Messages, a.EngineStats.Dispatched,
			b.Time, b.Messages, b.EngineStats.Dispatched)
	}
	ca, cb := a.Congestion, b.Congestion
	if ca.TotalWait != cb.TotalWait || ca.Queued != cb.Queued || ca.Links != cb.Links {
		t.Fatalf("census diverged: %+v vs %+v", ca, cb)
	}
	for i := range ca.Top {
		if ca.Top[i] != cb.Top[i] {
			t.Errorf("top link %d diverged: %v vs %v", i, ca.Top[i], cb.Top[i])
		}
	}
}
