// Package dacs models IBM's Data Communication and Synchronization
// library as measured on pre-production Roadrunner: the Cell<->Opteron
// transport over the PCIe x8 links through the HT2100 bridges.
//
// The early DaCS stack is the paper's central software-maturity finding:
// a 3.19 us one-way zero-byte latency (vs 2 us raw PCIe), a rendezvous
// pin/copy overhead on non-tiny messages, and a sustained stream rate of
// ~1.0 GB/s against the 1.6 GB/s the raw PCIe microbenchmark achieves.
// The per-pair driver serialization limits a bidirectional exchange to
// ~1.3 GB/s aggregate — 64% of twice the unidirectional rate (Fig. 7).
//
// Both an analytic model (OneWay/BandwidthAt, used by figures and the
// wavefront model) and a DES transport (Pair.Send, used by CML) are
// provided; they agree by construction.
package dacs

import (
	"fmt"

	"roadrunner/internal/params"
	"roadrunner/internal/sim"
	"roadrunner/internal/units"
)

// Profile holds the DaCS performance parameters. Two profiles matter:
// the measured early stack (Current) and the hardware-limited stack the
// paper projects ("if the peak PCIe performance were to be realized").
type Profile struct {
	Name string
	// Latency is the one-way zero-byte message latency.
	Latency units.Time
	// EagerThreshold: messages at or below this bypass the rendezvous.
	EagerThreshold units.Size
	// RendezvousOverhead is the fixed pin/copy/handshake cost a message
	// above EagerThreshold pays.
	RendezvousOverhead units.Time
	// StreamBandwidth is the sustained unidirectional rate.
	StreamBandwidth units.Bandwidth
	// PairAggregate caps the two directions' combined rate (driver
	// serialization at the HT2100 bridge path).
	PairAggregate units.Bandwidth
}

// Current returns the measured early-software DaCS profile.
func Current() Profile {
	return Profile{
		Name:               "DaCS (early stack)",
		Latency:            params.DaCSLatency,
		EagerThreshold:     512 * units.Byte,
		RendezvousOverhead: units.FromMicroseconds(12),
		StreamBandwidth:    1.01 * units.GBPerSec,
		PairAggregate:      1.295 * units.GBPerSec,
	}
}

// PeakPCIe returns the hardware-limited profile the paper uses for its
// "best achievable" projections: 2 us latency and 1.6 GB/s streams
// (§VI.A), with the same 64% duplex efficiency.
func PeakPCIe() Profile {
	return Profile{
		Name:               "peak PCIe",
		Latency:            params.PCIeMinLatency,
		EagerThreshold:     512 * units.Byte,
		RendezvousOverhead: units.FromMicroseconds(1),
		StreamBandwidth:    params.PCIeAchievableBandwidth,
		PairAggregate:      units.Bandwidth(float64(params.PCIeAchievableBandwidth) * 2 * 0.64),
	}
}

// OneWay returns the no-contention one-way time for a message of the
// given size.
func (pr Profile) OneWay(size units.Size) units.Time {
	t := pr.Latency
	if size > pr.EagerThreshold {
		t += pr.RendezvousOverhead
	}
	t += pr.StreamBandwidth.TransferTime(size)
	return t
}

// BandwidthAt returns the effective unidirectional bandwidth for a
// message of the given size (ping-pong convention: size over one-way
// time).
func (pr Profile) BandwidthAt(size units.Size) units.Bandwidth {
	if size <= 0 {
		return 0
	}
	return units.Bandwidth(float64(size) / pr.OneWay(size).Seconds())
}

// Dir is a transfer direction across a Cell<->Opteron pair.
type Dir int

// Transfer directions.
const (
	CellToOpteron Dir = iota
	OpteronToCell
)

// String names the direction.
func (d Dir) String() string {
	if d == CellToOpteron {
		return "Cell->Opteron"
	}
	return "Opteron->Cell"
}

// chunkSize is the granularity at which the DES transport re-evaluates
// contention between the two directions.
const chunkSize = 64 * units.KB

// Pair is the DES transport between one Cell's PPE and its Opteron core.
type Pair struct {
	Profile Profile
	eng     *sim.Engine
	name    string
	wire    [2]*sim.Resource // per-direction FIFO
	active  [2]int           // senders currently streaming per direction
}

// NewPair creates a DaCS endpoint pair on the engine.
func NewPair(eng *sim.Engine, name string, pr Profile) *Pair {
	p := &Pair{Profile: pr, eng: eng, name: name}
	p.wire[0] = sim.NewResource(eng, name+"/c2o", 1)
	p.wire[1] = sim.NewResource(eng, name+"/o2c", 1)
	return p
}

// Send blocks the calling proc for the duration of a message transfer in
// the given direction, modelling per-direction FIFO ordering and duplex
// driver contention. It returns when the message has fully arrived at
// the far side.
func (pa *Pair) Send(p *sim.Proc, d Dir, size units.Size) {
	if d != CellToOpteron && d != OpteronToCell {
		panic(fmt.Sprintf("dacs: bad direction %d", d))
	}
	pr := pa.Profile
	pa.wire[d].Acquire(p, 1)
	p.Sleep(pr.Latency)
	if size > pr.EagerThreshold {
		p.Sleep(pr.RendezvousOverhead)
	}
	pa.active[d]++
	remaining := size
	for remaining > 0 {
		chunk := remaining
		if chunk > chunkSize {
			chunk = chunkSize
		}
		rate := pr.StreamBandwidth
		if pa.active[1-d] > 0 {
			// Duplex: both directions share the driver path.
			rate = pr.PairAggregate / 2
		}
		p.Sleep(rate.TransferTime(chunk))
		remaining -= chunk
	}
	pa.active[d]--
	pa.wire[d].Release(1)
}
