package dacs

import (
	"math"
	"testing"
	"testing/quick"

	"roadrunner/internal/sim"
	"roadrunner/internal/units"
)

func TestZeroByteLatencyIsFig6Segment(t *testing.T) {
	pr := Current()
	if got := pr.OneWay(0); got != units.FromMicroseconds(3.19) {
		t.Errorf("zero-byte one-way = %v, want 3.19us", got)
	}
}

func TestEagerVsRendezvous(t *testing.T) {
	pr := Current()
	small := pr.OneWay(512)
	big := pr.OneWay(2 * units.KB)
	// The rendezvous overhead creates a jump at the threshold.
	if big-small < pr.RendezvousOverhead/2 {
		t.Errorf("no rendezvous jump: %v -> %v", small, big)
	}
}

func TestOneWayMonotoneProperty(t *testing.T) {
	pr := Current()
	f := func(a, b uint32) bool {
		x, y := units.Size(a), units.Size(b)
		if x > y {
			x, y = y, x
		}
		return pr.OneWay(x) <= pr.OneWay(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLargeMessageBandwidth(t *testing.T) {
	pr := Current()
	// 1 MB messages approach the stream rate (~1.0 GB/s), consistent
	// with Fig. 7's intranode unidirectional curve.
	got := pr.BandwidthAt(1 * units.MB).MBps()
	if got < 950 || got > 1050 {
		t.Errorf("1MB bandwidth = %v MB/s, want ~1000", got)
	}
}

func TestPeakPCIeProfileFaster(t *testing.T) {
	cur, peak := Current(), PeakPCIe()
	if peak.OneWay(0) >= cur.OneWay(0) {
		t.Error("peak PCIe latency should beat DaCS")
	}
	if peak.OneWay(0) != units.FromMicroseconds(2) {
		t.Errorf("peak latency = %v, want 2us", peak.OneWay(0))
	}
	// 1.6 GB/s streams: at 1 MB the advantage is ~1.6x.
	r := float64(peak.BandwidthAt(1*units.MB)) / float64(cur.BandwidthAt(1*units.MB))
	if r < 1.4 || r > 1.8 {
		t.Errorf("peak/current large-message ratio = %v", r)
	}
}

func TestDESMatchesAnalytic(t *testing.T) {
	// A single uncontended Send takes exactly OneWay(size).
	pr := Current()
	for _, size := range []units.Size{0, 256, 4 * units.KB, 128 * units.KB, 1 * units.MB} {
		eng := sim.NewEngine()
		pair := NewPair(eng, "p", pr)
		var got units.Time
		eng.Spawn("s", func(p *sim.Proc) {
			start := p.Now()
			pair.Send(p, CellToOpteron, size)
			got = p.Now() - start
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		want := pr.OneWay(size)
		if d := got - want; d < -units.Nanosecond || d > units.Nanosecond {
			t.Errorf("size %v: DES %v vs analytic %v", size, got, want)
		}
		eng.Close()
	}
}

func TestBidirectionalEfficiency(t *testing.T) {
	// Two simultaneous 4 MB streams, one per direction: the aggregate
	// rate must land at the Fig. 7 intranode ratio — ~64% of twice the
	// unidirectional rate.
	pr := Current()
	size := 4 * units.MB

	uniTime := pr.OneWay(size)
	uniBW := float64(size) / uniTime.Seconds()

	eng := sim.NewEngine()
	defer eng.Close()
	pair := NewPair(eng, "p", pr)
	var end units.Time
	for d := 0; d < 2; d++ {
		d := Dir(d)
		eng.Spawn("s", func(p *sim.Proc) {
			pair.Send(p, d, size)
			if p.Now() > end {
				end = p.Now()
			}
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	aggBW := 2 * float64(size) / end.Seconds()
	ratio := aggBW / (2 * uniBW)
	if math.Abs(ratio-0.64)/0.64 > 0.05 {
		t.Errorf("bidirectional efficiency = %.3f, want ~0.64", ratio)
	}
}

func TestFIFOPerDirection(t *testing.T) {
	// Messages in one direction arrive in send order.
	pr := Current()
	eng := sim.NewEngine()
	defer eng.Close()
	pair := NewPair(eng, "p", pr)
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		eng.SpawnAt(units.Time(i)*units.Nanosecond, "s", func(p *sim.Proc) {
			pair.Send(p, CellToOpteron, 32*units.KB)
			order = append(order, i)
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestDirString(t *testing.T) {
	if CellToOpteron.String() != "Cell->Opteron" || OpteronToCell.String() != "Opteron->Cell" {
		t.Error("direction names")
	}
}
