// Package eib models the Cell chip's on-chip data transport: the Element
// Interconnect Bus (EIB) that links the eight SPEs, the PPE and the memory
// interface controller (MIC), and the per-SPE Memory Flow Controllers
// (MFCs) that issue DMA transfers across it.
//
// The EIB moves 96 bytes per cycle in aggregate (paper §IV.B); each
// element's port sustains 25.6 GB/s; the MIC bounds main-memory traffic to
// 25.6 GB/s; and an MFC splits DMA commands into 16 KB maximum-size
// transfers, each paying an issue overhead. These four mechanisms produce
// the paper's observed intra-chip rates (22.4 GB/s large-message CML
// bandwidth, 25.6 GB/s aggregate STREAM limit) without encoding them
// directly.
package eib

import (
	"fmt"

	"roadrunner/internal/params"
	"roadrunner/internal/sim"
	"roadrunner/internal/units"
)

// MaxDMASize is the architectural maximum for one DMA transfer.
const MaxDMASize = 16 * units.KB

// DMAQueueDepth is the MFC command queue depth.
const DMAQueueDepth = 16

// PerDMASetup is the MFC issue + completion cost per DMA command,
// calibrated so that a 128 KB local-store-to-local-store message sustains
// the paper's measured 22.4 GB/s over a 25.6 GB/s port (8 chunks of 16 KB,
// each adding ~91 ns of issue overhead).
var PerDMASetup = units.FromNanoseconds(91)

// Bus is the EIB plus MIC of one Cell chip.
type Bus struct {
	eng *sim.Engine
	// ring is the aggregate EIB bandwidth resource. With 96 B/cycle at
	// 3.2 GHz the ring sustains 307.2 GB/s, far above any single port;
	// it matters only when many elements transfer at once.
	ring units.Bandwidth
	// ports serialize each element's 25.6 GB/s connection to the ring.
	ports map[Element]*sim.Resource
	// mic serializes main-memory access at 25.6 GB/s.
	mic *sim.Resource

	ringBusy *sim.Resource // unit-capacity token per concurrent ring slot
}

// Element identifies an EIB client on one chip.
type Element struct {
	Kind ElementKind
	ID   int // SPE number for SPEs, 0 otherwise
}

// ElementKind enumerates EIB clients.
type ElementKind int

// EIB client kinds.
const (
	SPE ElementKind = iota
	PPE
	MICPort // the memory controller
	IOIF    // the I/O interface (FlexIO toward the PCIe bridge)
)

// String renders an element name.
func (e Element) String() string {
	switch e.Kind {
	case SPE:
		return fmt.Sprintf("SPE%d", e.ID)
	case PPE:
		return "PPE"
	case MICPort:
		return "MIC"
	default:
		return "IOIF"
	}
}

// NewBus constructs the EIB for one chip on the given engine.
func NewBus(eng *sim.Engine, chipName string) *Bus {
	b := &Bus{
		eng:   eng,
		ring:  units.Bandwidth(float64(params.EIBBytesPerCycle) * float64(params.CellClock)),
		ports: make(map[Element]*sim.Resource),
		mic:   sim.NewResource(eng, chipName+"/MIC", 1),
	}
	for i := 0; i < 8; i++ {
		e := Element{SPE, i}
		b.ports[e] = sim.NewResource(eng, fmt.Sprintf("%s/%v.port", chipName, e), 1)
	}
	b.ports[Element{PPE, 0}] = sim.NewResource(eng, chipName+"/PPE.port", 1)
	b.ports[Element{MICPort, 0}] = sim.NewResource(eng, chipName+"/MIC.port", 1)
	b.ports[Element{IOIF, 0}] = sim.NewResource(eng, chipName+"/IOIF.port", 1)
	// The ring carries up to 96/16 = 6 concurrent 25.6 GB/s transfers
	// before aggregate bandwidth saturates. Model as 12 half-rate slots
	// to keep granularity fine; in practice port limits dominate.
	b.ringBusy = sim.NewResource(eng, chipName+"/EIB.ring", 12)
	return b
}

// PortBandwidth is each element's connection rate to the ring.
const PortBandwidth = params.CellMemBandwidth // 25.6 GB/s

// Transfer moves size bytes from one element to another, blocking the
// calling proc for the transfer duration. Both endpoint ports are held;
// main-memory endpoints additionally hold the MIC.
func (b *Bus) Transfer(p *sim.Proc, from, to Element, size units.Size) {
	if size <= 0 {
		return
	}
	dur := PortBandwidth.TransferTime(size)
	b.acquirePath(p, from, to)
	b.ringBusy.Acquire(p, 1)
	p.Sleep(dur)
	b.ringBusy.Release(1)
	b.releasePath(from, to)
}

func (b *Bus) acquirePath(p *sim.Proc, from, to Element) {
	// Deterministic lock order: MIC first, then ports by name, avoiding
	// deadlock between opposing transfers.
	if from.Kind == MICPort || to.Kind == MICPort {
		b.mic.Acquire(p, 1)
	}
	a, c := b.ports[from], b.ports[to]
	if a == c {
		a.Acquire(p, 1)
		return
	}
	first, second := a, c
	if from.String() > to.String() {
		first, second = c, a
	}
	first.Acquire(p, 1)
	second.Acquire(p, 1)
}

func (b *Bus) releasePath(from, to Element) {
	a, c := b.ports[from], b.ports[to]
	if a == c {
		a.Release(1)
	} else {
		a.Release(1)
		c.Release(1)
	}
	if from.Kind == MICPort || to.Kind == MICPort {
		b.mic.Release(1)
	}
}

// MFC is one SPE's Memory Flow Controller: it turns DMA commands into
// chunked EIB transfers with per-command overheads and a bounded queue.
type MFC struct {
	bus   *Bus
	spe   Element
	queue *sim.Resource
}

// NewMFC creates the MFC for SPE id on bus b.
func NewMFC(b *Bus, id int) *MFC {
	return &MFC{
		bus:   b,
		spe:   Element{SPE, id},
		queue: sim.NewResource(b.eng, fmt.Sprintf("MFC%d.queue", id), DMAQueueDepth),
	}
}

// dma moves size bytes between the SPE's local store and the peer element,
// splitting into MaxDMASize chunks, each paying PerDMASetup.
func (m *MFC) dma(p *sim.Proc, peer Element, size units.Size) {
	m.queue.Acquire(p, 1)
	defer m.queue.Release(1)
	for size > 0 {
		chunk := size
		if chunk > MaxDMASize {
			chunk = MaxDMASize
		}
		p.Sleep(PerDMASetup)
		m.bus.Transfer(p, m.spe, peer, chunk)
		size -= chunk
	}
}

// Get DMAs size bytes from main memory into the local store.
func (m *MFC) Get(p *sim.Proc, size units.Size) {
	m.dma(p, Element{MICPort, 0}, size)
}

// Put DMAs size bytes from the local store to main memory.
func (m *MFC) Put(p *sim.Proc, size units.Size) {
	m.dma(p, Element{MICPort, 0}, size)
}

// PutTo DMAs size bytes from this SPE's local store directly into another
// SPE's local store across the ring (the CML fast path).
func (m *MFC) PutTo(p *sim.Proc, peer int, size units.Size) {
	m.dma(p, Element{SPE, peer}, size)
}

// PutToPPE DMAs size bytes to the PPE's memory region (used when the PPE
// must forward a message off-chip).
func (m *MFC) PutToPPE(p *sim.Proc, size units.Size) {
	m.dma(p, Element{PPE, 0}, size)
}

// TransferTime returns the no-contention duration of a DMA of the given
// size, for analytic callers (the wavefront model).
func TransferTime(size units.Size) units.Time {
	if size <= 0 {
		return 0
	}
	var t units.Time
	for size > 0 {
		chunk := size
		if chunk > MaxDMASize {
			chunk = MaxDMASize
		}
		t += PerDMASetup + PortBandwidth.TransferTime(chunk)
		size -= chunk
	}
	return t
}
