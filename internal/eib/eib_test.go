package eib

import (
	"math"
	"testing"

	"roadrunner/internal/sim"
	"roadrunner/internal/units"
)

func TestSingleDMABandwidth(t *testing.T) {
	// A 16 KB DMA moves at the 25.6 GB/s port rate plus one setup.
	eng := sim.NewEngine()
	defer eng.Close()
	bus := NewBus(eng, "cell0")
	mfc := NewMFC(bus, 0)
	var elapsed units.Time
	eng.Spawn("dma", func(p *sim.Proc) {
		start := p.Now()
		mfc.Get(p, 16*units.KB)
		elapsed = p.Now() - start
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	want := PerDMASetup + PortBandwidth.TransferTime(16*units.KB)
	if elapsed != want {
		t.Errorf("elapsed = %v, want %v", elapsed, want)
	}
}

func TestLargeTransferChunking(t *testing.T) {
	// 128 KB = 8 chunks; sustained rate must land near the measured CML
	// 22.4 GB/s (the PerDMASetup calibration).
	got := TransferTime(128 * units.KB)
	bw := float64(128*units.KB) / got.Seconds() / 1e9
	if math.Abs(bw-22.4)/22.4 > 0.03 {
		t.Errorf("128KB sustained = %.2f GB/s, want ~22.4", bw)
	}
}

func TestTransferTimeAdditive(t *testing.T) {
	// Chunking: transfer time of 32 KB equals twice that of 16 KB.
	if TransferTime(32*units.KB) != 2*TransferTime(16*units.KB) {
		t.Error("chunking not additive")
	}
	if TransferTime(0) != 0 {
		t.Error("zero-size transfer should be free")
	}
}

func TestMICSerializesMemoryDMAs(t *testing.T) {
	// Two SPEs DMA-ing from memory at once share the 25.6 GB/s MIC:
	// total time for two 16 KB gets is twice one (serialized), whereas
	// two SPE-to-SPE transfers overlap.
	run := func(toMemory bool) units.Time {
		eng := sim.NewEngine()
		defer eng.Close()
		bus := NewBus(eng, "c")
		var end units.Time
		for i := 0; i < 2; i++ {
			mfc := NewMFC(bus, i)
			peer := 4 + i
			eng.Spawn("dma", func(p *sim.Proc) {
				if toMemory {
					mfc.Get(p, 16*units.KB)
				} else {
					mfc.PutTo(p, peer, 16*units.KB)
				}
				if p.Now() > end {
					end = p.Now()
				}
			})
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return end
	}
	mem := run(true)
	ls := run(false)
	if mem <= ls {
		t.Errorf("memory DMAs (%v) should serialize vs LS-to-LS (%v)", mem, ls)
	}
	one := PerDMASetup + PortBandwidth.TransferTime(16*units.KB)
	// LS-to-LS pairs use disjoint ports: both finish in ~one transfer.
	if ls > one+PerDMASetup {
		t.Errorf("parallel LS transfers took %v, want ~%v", ls, one)
	}
	if mem < 2*PortBandwidth.TransferTime(16*units.KB) {
		t.Errorf("memory transfers took %v, want >= 2 wire times", mem)
	}
}

func TestQueueDepthLimits(t *testing.T) {
	// More concurrent DMAs than queue entries on a single MFC: the
	// 17th waits for a slot. We just verify all complete and ordering
	// holds (no deadlock, FIFO queue).
	eng := sim.NewEngine()
	defer eng.Close()
	bus := NewBus(eng, "c")
	mfc := NewMFC(bus, 0)
	done := 0
	for i := 0; i < DMAQueueDepth+4; i++ {
		eng.Spawn("dma", func(p *sim.Proc) {
			mfc.PutTo(p, 3, 1*units.KB)
			done++
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if done != DMAQueueDepth+4 {
		t.Errorf("completed = %d", done)
	}
}

func TestElementNames(t *testing.T) {
	if (Element{SPE, 3}).String() != "SPE3" {
		t.Error("SPE name")
	}
	if (Element{PPE, 0}).String() != "PPE" {
		t.Error("PPE name")
	}
	if (Element{MICPort, 0}).String() != "MIC" {
		t.Error("MIC name")
	}
}

func TestOppositeTransfersNoDeadlock(t *testing.T) {
	// SPE0 -> SPE1 and SPE1 -> SPE0 simultaneously: the deterministic
	// port lock order must prevent deadlock.
	eng := sim.NewEngine()
	defer eng.Close()
	bus := NewBus(eng, "c")
	m0, m1 := NewMFC(bus, 0), NewMFC(bus, 1)
	done := 0
	eng.Spawn("a", func(p *sim.Proc) { m0.PutTo(p, 1, 64*units.KB); done++ })
	eng.Spawn("b", func(p *sim.Proc) { m1.PutTo(p, 0, 64*units.KB); done++ })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 2 {
		t.Errorf("done = %d", done)
	}
}
