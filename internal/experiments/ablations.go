package experiments

import (
	"roadrunner/internal/fabric"
	"roadrunner/internal/report"
	"roadrunner/internal/spu"
	"roadrunner/internal/sweep3d"
	"roadrunner/internal/units"
	"roadrunner/internal/wavefront"
)

// Ablations: design-choice benches the paper's text motivates but does
// not tabulate. Each quantifies one decision DESIGN.md calls out.

func init() {
	register("ablation-sweep-models", "SPE-centric vs master/worker Sweep3D", "§V.B / [20]",
		"Compares the SPE-centric sweep against the prior PPE-dispatched design it replaced",
		runAblationSweepModels)
	register("ablation-transports", "Transport stacks under the sweep", "§VI.A",
		"Swaps DaCS/PCIe, pipelined and ideal transports under the sweep's surface exchanges",
		runAblationTransports)
	register("ablation-mk", "MK blocking factor sweep", "§V.A",
		"Sweeps the K-blocking factor to locate the compute/communication overlap optimum",
		runAblationMK)
	register("ablation-taper", "Fat-tree taper and hop census", "§II.C",
		"Varies the CU count and checks how the taper and mean hop distance respond",
		runAblationTaper)
}

func runAblationSweepModels() *Artifact {
	a := newArtifact("ablation-sweep-models", "SPE-centric vs master/worker Sweep3D", "§V.B / [20]")
	cbe := spu.CellBE()
	prev := sweep3d.TableIVPrevious(cbe).Seconds()
	ours := sweep3d.TableIVOurs(cbe).Seconds()
	t := newTableHelper("Programming-model ablation (CBE, 50x50x50)", "model", "iteration (s)", "mechanism")
	t.AddRow("master/worker (volumes)", prev, "per-pencil PPE dispatch + volume DMA")
	t.AddRow("SPE-centric (surfaces)", ours, "static ranks, surface exchange on EIB")
	a.Tables = append(a.Tables, t)
	a.Checks.RatioInBand("surface model speedup", prev, ours, 3.0, 4.2)
	return a
}

func runAblationTransports() *Artifact {
	a := newArtifact("ablation-transports", "Transport stacks under the sweep", "§VI.A")
	cfg := sweep3d.PaperWeakScaling()
	t := newTableHelper("Transport ablation (3060 nodes)", "stack", "iteration (s)")
	cur := sweep3d.CellIterationTime(cfg, 3060, sweep3d.CellMeasured).Seconds()
	best := sweep3d.CellIterationTime(cfg, 3060, sweep3d.CellBest).Seconds()
	t.AddRow("DaCS early stack (measured)", cur)
	t.AddRow("peak PCIe (projected)", best)
	a.Tables = append(a.Tables, t)
	a.Checks.True("software maturity matters at scale", cur/best > 1.25,
		"the paper's central projection")
	return a
}

func runAblationMK() *Artifact {
	a := newArtifact("ablation-mk", "MK blocking factor sweep", "§V.A")
	fig := report.NewFigure("MK ablation (measured stack)", "MK", "iteration (s)")
	s16 := fig.NewSeries("16 nodes")
	s3060 := fig.NewSeries("3060 nodes")
	base := sweep3d.PaperWeakScaling()
	bestMK, bestT := 0, units.Time(1<<62)
	mks := []int{4, 8, 10, 20, 40, 80, 200, 400}
	for _, mk := range mks {
		if base.K%mk != 0 {
			continue
		}
		cfg := base
		cfg.MK = mk
		t16 := sweep3d.CellIterationTime(cfg, 16, sweep3d.CellMeasured)
		s16.Add(float64(mk), t16.Seconds())
		s3060.Add(float64(mk), sweep3d.CellIterationTime(cfg, 3060, sweep3d.CellMeasured).Seconds())
		if t16 < bestT {
			bestMK, bestT = mk, t16
		}
	}
	fig.AddNote("paper uses MK=20: 'Blocking is used to achieve high parallel efficiency'")
	fig.AddNote("at 3060 nodes pipeline fill dominates, pushing the optimum toward small MK")
	a.Figures = append(a.Figures, fig)
	// At moderate scale the optimum balances per-step message cost
	// (small MK pays more latencies) against pipeline fill (large MK
	// stretches it): interior, near the paper's MK=20.
	a.Checks.True("interior optimum at 16 nodes", bestMK > mks[0] && bestMK < 400, "")
	a.Checks.RatioInBand("optimum near paper's MK=20", float64(bestMK), 20, 0.35, 4.1)
	// Large MK is always worse than the paper's choice at full scale.
	cfgBig := base
	cfgBig.MK = 400
	a.Checks.True("MK=400 worse at 3060 nodes",
		sweep3d.CellIterationTime(cfgBig, 3060, sweep3d.CellMeasured) >
			sweep3d.CellIterationTime(base, 3060, sweep3d.CellMeasured),
		"unblocked sweep kills pipelining")
	return a
}

func runAblationTaper() *Artifact {
	a := newArtifact("ablation-taper", "Fat-tree taper and hop census", "§II.C")
	t := newTableHelper("Hop census vs machine size", "CUs", "nodes", "mean hops", "max hops")
	for _, cus := range []int{1, 4, 12, 17, 24} {
		fab := fabric.NewScaled(cus)
		c := fab.Census(fabric.NodeID{})
		maxH := 0
		for h := range c.HopCounts {
			if h > maxH {
				maxH = h
			}
		}
		t.AddRow(cus, fab.Nodes(), c.MeanHops, maxH)
	}
	a.Tables = append(a.Tables, t)
	full := fabric.New().Census(fabric.NodeID{})
	half := fabric.NewScaled(12).Census(fabric.NodeID{})
	a.Checks.True("two-sided switch adds hops", full.MeanHops > half.MeanHops,
		"CUs 13-17 cost an extra middle stage")
	a.Checks.Within("full-machine mean hops", full.MeanHops, 5.38, 0.002)

	// Pipeline-fill context: the wavefront model quantifies why average
	// distance matters little for Sweep3D (fill dominates).
	p := wavefront.Params{Nx: 51, Ny: 60, Octants: 8, KBlocks: 20,
		TBlock: 250 * units.Microsecond, TComm: 100 * units.Microsecond}
	a.Checks.True("pipeline fill dominates at scale", p.PipelineEfficiency() < 0.5,
		"steady-state fraction at 3060 nodes")
	return a
}
