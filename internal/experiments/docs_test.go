package experiments

import (
	"os"
	"strings"
	"testing"
)

// TestDocsMarkdownCurrent is the staleness gate for docs/experiments.md:
// the committed page must match what the registry renders today.
// Failing here means an experiment was added or edited without running
// `go generate ./internal/experiments`.
func TestDocsMarkdownCurrent(t *testing.T) {
	got, err := os.ReadFile("../../docs/experiments.md")
	if err != nil {
		t.Fatalf("reading committed page: %v", err)
	}
	want := DocsMarkdown()
	if string(got) != want {
		t.Fatal("docs/experiments.md is stale; regenerate with `go generate ./internal/experiments`")
	}
	// The renderer itself must be deterministic, or generate would churn.
	if DocsMarkdown() != want {
		t.Fatal("DocsMarkdown is not deterministic across calls")
	}
	for _, e := range All() {
		if !strings.Contains(want, "`"+e.ID+"`") {
			t.Errorf("experiment %s missing from the generated page", e.ID)
		}
	}
}
