package experiments

import (
	"roadrunner/internal/apps"
	"roadrunner/internal/spu"
	"roadrunner/internal/sweep3d"
)

func init() {
	register("apps-portfolio", "PowerXCell 8i impact on the application portfolio", "§IV.A",
		"Scores the application portfolio's acceleration potential against the paper's survey",
		runApps)
}

func runApps() *Artifact {
	a := newArtifact("apps-portfolio", "PowerXCell 8i impact on the application portfolio", "§IV.A")
	t := newTableHelper("Application speedups (Cell BE -> PowerXCell 8i)",
		"application", "character", "model speedup", "paper")
	paper := map[string]string{
		"VPIC": "~1.0 (single precision)", "SPaSM": "1.5x", "Milagro": "1.5x",
		"Sweep3D": "~1.9x (Table IV)",
	}
	var vpic, spasm float64
	for _, app := range apps.Portfolio() {
		s := app.Speedup()
		if app.Name == "Sweep3D" {
			// Use the dedicated sweep kernel (richer dependence structure).
			s = sweep3d.KernelCyclesPerCellAngle(spu.CellBE()) /
				sweep3d.KernelCyclesPerCellAngle(spu.PowerXCell8i())
		}
		t.AddRow(app.Name, app.Description, s, paper[app.Name])
		switch app.Name {
		case "VPIC":
			vpic = s
		case "SPaSM":
			spasm = s
		}
	}
	a.Tables = append(a.Tables, t)

	a.Checks.Within("VPIC unchanged", vpic, 1.0, 0.05)
	a.Checks.Within("SPaSM gains ~1.5x", spasm, 1.5, 0.1)
	sweepRatio := sweep3d.KernelCyclesPerCellAngle(spu.CellBE()) /
		sweep3d.KernelCyclesPerCellAngle(spu.PowerXCell8i())
	a.Checks.RatioInBand("Sweep3D gains ~2x", sweepRatio, 1, 1.6, 2.2)
	a.Checks.True("DP intensity orders the portfolio", vpic < spasm && spasm < sweepRatio, "")
	return a
}
