package experiments

import (
	"fmt"

	"roadrunner/internal/fabric"
	"roadrunner/internal/machine"
	"roadrunner/internal/params"
	"roadrunner/internal/triblade"
)

func init() {
	register("fig1", "Triblade structure", "Fig. 1",
		"Audits the triblade inventory (Cells, Opterons, links) against the paper's node diagram",
		runFig1)
	register("fig2", "System interconnect structure", "Fig. 2",
		"Audits CU counts, uplinks per switch and the 2:1 taper of the reduced fat tree",
		runFig2)
	register("table1", "Crossbar-hop census from node 0", "Table I",
		"Routes node 0 to all 3,060 nodes and checks the hop-count census class by class",
		runTable1)
	register("table2", "Roadrunner performance characteristics", "Table II",
		"Recomputes peak flop/s, memory and power from the component models",
		runTable2)
	register("fig3", "Node processing and memory breakdown", "Fig. 3",
		"Splits node peak performance and memory across Cells and Opterons",
		runFig3)
}

func runFig1() *Artifact {
	a := newArtifact("fig1", "Triblade structure", "Fig. 1")
	n := triblade.New()

	inv := newTableHelper("Triblade inventory", "component", "count", "detail")
	inv.AddRow("LS21 Opteron blade", 1, n.Opteron.Name)
	inv.AddRow("QS22 Cell blades", 2, n.Cell.Variant.String())
	inv.AddRow("Opteron cores", triblade.NumOpteronCores, fmt.Sprintf("%v each", n.Opteron.PeakDPPerCore()))
	inv.AddRow("PowerXCell 8i chips", triblade.NumCells, fmt.Sprintf("%v each (DP)", n.Cell.PeakDP()))
	inv.AddRow("SPEs", triblade.NumCells*8, "256KB local store each")
	a.Tables = append(a.Tables, inv)

	links := newTableHelper("Internal links", "link", "from", "to", "bandwidth/dir")
	for _, l := range n.Links() {
		links.AddRow(l.Name, l.From, l.To, l.Bandwidth.String())
	}
	a.Tables = append(a.Tables, links)

	a.Checks.Exact("opteron cores", float64(triblade.NumOpteronCores), 4)
	a.Checks.Exact("cell chips", float64(triblade.NumCells), 4)
	a.Checks.Exact("pcie links", 4, 4)
	a.Checks.Within("PCIe per direction (GB/s)", float64(params.PCIeBandwidthPeak)/1e9, 2.0, 0)
	a.Checks.Within("HT per direction (GB/s)", float64(params.HTBandwidth)/1e9, 6.4, 0)
	a.Checks.True("core i paired with cell i", n.PairedCell(2) == 2, "identity pairing")
	a.Checks.True("HCA near cores 1,3", n.HCANearCore(1) && n.HCANearCore(3) && !n.HCANearCore(0), "Fig. 8 asymmetry")
	return a
}

func runFig2() *Artifact {
	a := newArtifact("fig2", "System interconnect structure", "Fig. 2")
	fab := fabric.New()
	au := fab.Audit()
	t := newTableHelper("Fabric audit", "quantity", "value")
	t.AddRow("CUs", au.CUs)
	t.AddRow("nodes per CU", au.NodesPerCU)
	t.AddRow("I/O nodes per CU", au.IONodesPerCU)
	t.AddRow("line crossbars per CU switch", au.LineXbarsPerCU)
	t.AddRow("spine crossbars per CU switch", au.SpineXbarsPerCU)
	t.AddRow("external ports in use per CU", au.ExternalPortsPerCU)
	t.AddRow("uplinks per CU", au.UplinksPerCU)
	t.AddRow("inter-CU switches", au.InterCUSwitches)
	t.AddRow("uplinks per CU per switch", au.UplinksPerCUPerSw)
	t.AddRow("taper (node links : uplinks)", fmt.Sprintf("%.3f : 1", au.TaperRatio))
	t.AddRow("max CUs supported", au.MaxCUsSupported)
	a.Tables = append(a.Tables, t)

	a.Checks.Exact("192 used ports per CU", float64(au.ExternalPortsPerCU), 192)
	a.Checks.Exact("96 uplinks per CU", float64(au.UplinksPerCU), 96)
	a.Checks.Exact("8 inter-CU switches", float64(au.InterCUSwitches), 8)
	a.Checks.Within("~2:1 reduced fat tree", au.TaperRatio, 1.875, 0.001)
	a.Checks.Exact("design allows 24 CUs", float64(au.MaxCUsSupported), 24)
	return a
}

func runTable1() *Artifact {
	a := newArtifact("table1", "Crossbar-hop census from node 0", "Table I")
	fab := fabric.New()
	c := fab.Census(fabric.NodeID{CU: 0, Node: 0})

	t := newTableHelper("Table I", "destination", "count", "hops", "paper count")
	t.AddRow("Self", c.Self, 0, 1)
	t.AddRow("Within same crossbar", c.SameXbar, 1, 7)
	t.AddRow("Within same CU", c.SameCU, 3, 172)
	t.AddRow("In CUs 2-12, same crossbar", c.NearCUsSameXbar, 3, 88)
	t.AddRow("In CUs 2-12, different crossbar", c.NearCUsOtherXbar, 5, 1892)
	t.AddRow("In CUs 13-17, same crossbar", c.FarCUsSameXbar, 5, 40)
	t.AddRow("In CUs 13-17, different crossbar", c.FarCUsOtherXbar, 7, 860)
	t.AddRow("Total", c.Total, fmt.Sprintf("%.2f (average)", c.MeanHops), 3060)
	a.Tables = append(a.Tables, t)

	a.Checks.Exact("same crossbar", float64(c.SameXbar), 7)
	a.Checks.Exact("same CU", float64(c.SameCU), 172)
	a.Checks.Exact("CUs 2-12 same crossbar", float64(c.NearCUsSameXbar), 88)
	a.Checks.Exact("CUs 2-12 different crossbar", float64(c.NearCUsOtherXbar), 1892)
	a.Checks.Exact("CUs 13-17 same crossbar", float64(c.FarCUsSameXbar), 40)
	a.Checks.Exact("CUs 13-17 different crossbar", float64(c.FarCUsOtherXbar), 860)
	a.Checks.Exact("total", float64(c.Total), 3060)
	a.Checks.Within("average hops", c.MeanHops, 5.38, 0.002)
	return a
}

func runTable2() *Artifact {
	a := newArtifact("table2", "Roadrunner performance characteristics", "Table II")
	s := machine.New(machine.Full())
	n := s.Node

	t := newTableHelper("Table II", "quantity", "model", "paper")
	t.AddRow("CU count", s.Config.CUs, 17)
	t.AddRow("Node count", s.Nodes(), 3060)
	t.AddRow("Peak DP", s.PeakDP().String(), "1.38 PF/s")
	t.AddRow("Peak SP", s.PeakSP().String(), "2.91 PF/s")
	t.AddRow("CU peak DP", s.CUPeakDP().String(), "80.9 TF/s")
	t.AddRow("Node Opteron DP", n.OpteronPeakDP().String(), "14.4 GF/s")
	t.AddRow("Node Cell DP", n.CellPeakDP().String(), "435.2 GF/s")
	t.AddRow("Memory per node", (n.OpteronMemory() + n.CellMemory()).String(), "32GB")
	t.AddRow("SPEs", s.SPEs(), 97920)
	a.Tables = append(a.Tables, t)

	a.Checks.Within("system DP (PF/s)", s.PeakDP().PF(), 1.38, 0.005)
	a.Checks.Within("CU DP (TF/s)", s.CUPeakDP().TF(), 80.9, 0.005)
	a.Checks.Within("node Opteron DP (GF/s)", n.OpteronPeakDP().GF(), 14.4, 1e-9)
	a.Checks.Within("node Cell DP (GF/s)", n.CellPeakDP().GF(), 435.2, 1e-4)
	a.Checks.Exact("SPE count", float64(s.SPEs()), 97920)
	a.Checks.Within("accelerated fraction", s.AcceleratedFraction(), 0.95, 0.025)
	return a
}

func runFig3() *Artifact {
	a := newArtifact("fig3", "Node processing and memory breakdown", "Fig. 3")
	n := triblade.New()
	t := newTableHelper("Fig. 3a: peak DP rate", "component", "GF/s", "share")
	spe, ppe, opt := n.SPEPeakDP(), n.PPEPeakDP(), n.OpteronPeakDP()
	total := n.PeakDP()
	shr := func(f float64) string { return fmt.Sprintf("%.1f%%", 100*f/float64(total)) }
	t.AddRow("SPEs (32)", spe.GF(), shr(float64(spe)))
	t.AddRow("PPUs (4)", ppe.GF(), shr(float64(ppe)))
	t.AddRow("Opterons (4 cores)", opt.GF(), shr(float64(opt)))
	a.Tables = append(a.Tables, t)

	m := newTableHelper("Fig. 3b: memory capacity", "component", "capacity")
	m.AddRow("Cell off-chip", n.CellMemory().String())
	m.AddRow("Opteron off-chip", n.OpteronMemory().String())
	m.AddRow("Cell on-chip", n.CellOnChip().String())
	m.AddRow("Opteron on-chip", n.OpteronOnChip().String())
	a.Tables = append(a.Tables, m)

	a.Checks.Within("SPE slice (GF/s)", spe.GF(), 409.6, 1e-6)
	a.Checks.Within("PPU slice (GF/s)", ppe.GF(), 25.6, 1e-6)
	a.Checks.Within("Opteron slice (GF/s)", opt.GF(), 14.4, 1e-9)
	a.Checks.Exact("Cell off-chip (GB)", n.CellMemory().GBytes(), 16)
	a.Checks.Exact("Opteron off-chip (GB)", n.OpteronMemory().GBytes(), 16)
	a.Checks.Within("Cell on-chip (MB)", n.CellOnChip().MBytes(), 10.25, 1e-9)
	a.Checks.Within("Opteron on-chip (MB)", n.OpteronOnChip().MBytes(), 8.5, 1e-9)
	return a
}
