package experiments

import (
	"roadrunner/internal/isa"
	"roadrunner/internal/microbench"
	"roadrunner/internal/report"
	"roadrunner/internal/spu"
)

func init() {
	register("fig4", "SPU instruction latency by execution group", "Fig. 4",
		"Measures per-group instruction latency on the SPU pipeline model",
		runFig4)
	register("fig5", "SPU repetition distance by execution group", "Fig. 5",
		"Measures per-group issue repetition distance on the SPU pipeline model",
		runFig5)
	register("table3", "Measured memory performance", "Table III",
		"Runs STREAM TRIAD and memtime through the memory-hierarchy models",
		runTable3)
}

func runFig4() *Artifact {
	a := newArtifact("fig4", "SPU instruction latency by execution group", "Fig. 4")
	cbe, pxc := spu.CellBE(), spu.PowerXCell8i()
	fig := report.NewFigure("Fig. 4: latency (cycles)", "group", "cycles")
	sc := fig.NewSeries("Cell BE")
	sp := fig.NewSeries("PowerXCell 8i")
	tbl := newTableHelper("Instruction latency", "group", "Cell BE", "PowerXCell 8i")
	for gi, g := range isa.Groups() {
		lc, lp := cbe.MeasureLatency(g), pxc.MeasureLatency(g)
		sc.Add(float64(gi), float64(lc))
		sp.Add(float64(gi), float64(lp))
		tbl.AddRow(g.String(), lc, lp)
	}
	a.Figures = append(a.Figures, fig)
	a.Tables = append(a.Tables, tbl)

	a.Checks.Exact("CBE FPD latency", float64(cbe.MeasureLatency(isa.FPD)), 13)
	a.Checks.Exact("PXC8i FPD latency", float64(pxc.MeasureLatency(isa.FPD)), 9)
	same := true
	for _, g := range isa.Groups() {
		if g != isa.FPD && cbe.MeasureLatency(g) != pxc.MeasureLatency(g) {
			same = false
		}
	}
	a.Checks.True("only FPD differs", same, "all other groups identical")
	a.Checks.Exact("FP6 latency", float64(pxc.MeasureLatency(isa.FP6)), 6)
	a.Checks.Exact("LS latency", float64(pxc.MeasureLatency(isa.LS)), 6)
	return a
}

func runFig5() *Artifact {
	a := newArtifact("fig5", "SPU repetition distance by execution group", "Fig. 5")
	cbe, pxc := spu.CellBE(), spu.PowerXCell8i()
	fig := report.NewFigure("Fig. 5: repetition distance (cycles)", "group", "cycles")
	sc := fig.NewSeries("Cell BE")
	sp := fig.NewSeries("PowerXCell 8i")
	tbl := newTableHelper("Repetition distance", "group", "Cell BE", "PowerXCell 8i")
	for gi, g := range isa.Groups() {
		rc, rp := cbe.MeasureRepetition(g), pxc.MeasureRepetition(g)
		sc.Add(float64(gi), float64(rc))
		sp.Add(float64(gi), float64(rp))
		tbl.AddRow(g.String(), rc, rp)
	}
	a.Figures = append(a.Figures, fig)
	a.Tables = append(a.Tables, tbl)

	a.Checks.Exact("CBE FPD repetition", float64(cbe.MeasureRepetition(isa.FPD)), 7)
	a.Checks.Exact("PXC8i FPD repetition", float64(pxc.MeasureRepetition(isa.FPD)), 1)
	allOne := true
	for _, g := range isa.Groups() {
		if pxc.MeasureRepetition(g) != 1 {
			allOne = false
		}
	}
	a.Checks.True("PXC8i fully pipelined", allOne, "every unit repetition 1")
	// The consequence the paper stresses: sustained aggregate DP.
	a.Checks.Within("CBE aggregate DP (GF/s)", spu.CellBE().PeakDPFlops().GF()*8, 14.6, 0.05)
	a.Checks.Within("PXC8i aggregate DP (GF/s)", pxc.PeakDPFlops().GF()*8, 102.4, 0.02)
	return a
}

func runTable3() *Artifact {
	a := newArtifact("table3", "Measured memory performance", "Table III")
	rows := microbench.TableIII()
	t := newTableHelper("Table III", "processor", "Stream Triad (GB/s)", "Latency (ns)")
	for _, r := range rows {
		t.AddRow(r.Processor, r.Triad.GBps(), r.Latency.Nanoseconds())
	}
	a.Tables = append(a.Tables, t)

	a.Checks.Within("Opteron triad", rows[0].Triad.GBps(), 5.41, 0.01)
	a.Checks.Within("PPE triad", rows[1].Triad.GBps(), 0.89, 0.02)
	a.Checks.Within("SPE triad", rows[2].Triad.GBps(), 29.28, 0.02)
	a.Checks.Within("Opteron latency (ns)", rows[0].Latency.Nanoseconds(), 30.5, 0.001)
	a.Checks.Within("PPE latency (ns)", rows[1].Latency.Nanoseconds(), 23.4, 0.001)
	a.Checks.Within("SPE latency (ns)", rows[2].Latency.Nanoseconds(), 9.4, 0.001)
	a.Checks.True("SPE >> Opteron >> PPE bandwidth",
		rows[2].Triad > rows[0].Triad && rows[0].Triad > rows[1].Triad,
		"the PPE is the bottleneck, best used for control")
	return a
}
