package experiments

import (
	"fmt"

	"roadrunner/internal/collectives"
	"roadrunner/internal/fabric"
	"roadrunner/internal/linpack"
	"roadrunner/internal/report"
	"roadrunner/internal/scenario"
	"roadrunner/internal/units"
)

// The collective-scenario experiments go beyond the paper's figures:
// they compose the calibrated point-to-point models (Figs. 6-10) into
// the collective operations that gate LINPACK and Sweep3D at scale, and
// sweep them across communicator sizes and algorithms. Checks pin the
// structural laws (O(log2 P) growth in hop-limited regimes, linear
// growth for dense exchanges, algorithm crossovers) and the consistency
// of the panel-broadcast phase cost with the calibrated hybrid-HPL
// overlap budget.
func init() {
	register("coll-scaling", "Collective latency scaling to 3,060 nodes", "§II.B-C scenario",
		"Sweeps barrier, broadcast and allreduce at 8 B from one crossbar to the full machine",
		runCollScaling)
	register("coll-crossover", "Allreduce algorithm crossover", "§IV.C scenario",
		"Races three allreduce algorithms across message sizes to locate the selector crossover",
		runCollCrossover)
	register("coll-cu-exchange", "Dense exchanges within a CU", "§II.B scenario",
		"Scales ring allgather and pairwise alltoall to a full CU at 4 KB blocks",
		runCollCUExchange)
	register("coll-linpack-panel", "LINPACK panel-broadcast phase cost", "§I / [10] scenario",
		"Measures HPL's per-panel broadcast on the DES and scales it against the overlap budget",
		runCollLinpackPanel)
	registerExpensive("coll-saturation", "Fat-tree saturation under congestion", "§II.C scenario",
		"Reruns alltoall/allgather at 8-3,060 nodes on the congested vs infinite-capacity fabric and locates where the 2:1 taper saturates",
		runCollSaturation)
}

// seriesByOp collects one figure series per collective op over a sweep.
func seriesByOp(fig *report.Figure, points []scenario.Point, x func(scenario.Point) float64) map[collectives.Op]*report.Series {
	series := map[collectives.Op]*report.Series{}
	for _, p := range points {
		s, ok := series[p.Op]
		if !ok {
			s = fig.NewSeries(string(p.Op))
			series[p.Op] = s
		}
		s.Add(x(p), p.Time.Microseconds())
	}
	return series
}

// log2Ceil returns ceil(log2 n) for n >= 1.
func log2Ceil(n int) int {
	r := 0
	for p := 1; p < n; p *= 2 {
		r++
	}
	return r
}

func runCollScaling() *Artifact {
	a := newArtifact("coll-scaling", "Collective latency scaling to 3,060 nodes", "§II.B-C scenario")
	points, err := scenario.LatencyScaling()
	if err != nil {
		a.Checks.True("sweep runs", false, err.Error())
		return a
	}
	fig := report.NewFigure("Collective latency vs communicator size (8 B)", "nodes", "us")
	fig.XLog = true
	series := seriesByOp(fig, points, func(p scenario.Point) float64 { return float64(p.Nodes) })
	fig.AddNote("one rank per node, near-core placement; rounds stretch with the hop profile")
	a.Figures = append(a.Figures, fig)

	for _, op := range scenario.ScalingOps {
		s := series[op]
		ys := report.SeriesYs(s)
		a.Checks.True(fmt.Sprintf("%s monotone in P", op), report.NonDecreasing(ys, 0.001),
			"latency never drops as the communicator grows")
		first := s.Y(float64(scenario.ScalingNodeCounts[0]))
		last := s.Y(float64(scenario.ScalingNodeCounts[len(scenario.ScalingNodeCounts)-1]))
		// Hop-limited O(log2 P): rounds grow 3 -> 12 from one crossbar to
		// the full machine, stretched by deeper routes (1 -> 7 hops).
		a.Checks.RatioInBand(fmt.Sprintf("%s scale 8->3060", op), last, first, 3.0, 7.0)
		minNorm, maxNorm := 0.0, 0.0
		for _, n := range scenario.ScalingNodeCounts {
			norm := s.Y(float64(n)) / float64(log2Ceil(n))
			if minNorm == 0 || norm < minNorm {
				minNorm = norm
			}
			if norm > maxNorm {
				maxNorm = norm
			}
		}
		a.Checks.RatioInBand(fmt.Sprintf("%s per-round cost spread", op), maxNorm, minNorm, 1.0, 1.8)
	}
	barrier := series[collectives.BarrierRecursiveDoubling]
	a.Checks.Within("barrier on one crossbar (us)", barrier.Y(8), 6.48, 0.05)
	a.Checks.Within("barrier full machine (us)", barrier.Y(3060), 34.7, 0.05)
	return a
}

func runCollCrossover() *Artifact {
	a := newArtifact("coll-crossover", "Allreduce algorithm crossover", "§IV.C scenario")
	points, err := scenario.AllreduceCrossover()
	if err != nil {
		a.Checks.True("sweep runs", false, err.Error())
		return a
	}
	fig := report.NewFigure(
		fmt.Sprintf("Allreduce time vs message size (%d ranks)", scenario.CrossoverRanks),
		"message size (B)", "us")
	fig.XLog = true
	series := seriesByOp(fig, points, func(p scenario.Point) float64 { return float64(p.Size) })
	a.Figures = append(a.Figures, fig)

	rd := series[collectives.AllreduceRecursiveDoubling]
	rab := series[collectives.AllreduceRabenseifner]
	ring := series[collectives.AllreduceRing]
	small := float64(scenario.CrossoverSizes[0])
	big := float64(scenario.CrossoverSizes[len(scenario.CrossoverSizes)-1])
	a.Checks.True("recursive doubling wins the latency regime",
		rd.Y(small) < rab.Y(small) && rd.Y(small) < ring.Y(small),
		"fewest rounds at 64 B")
	a.Checks.True("ring wins over rd in the bandwidth regime",
		ring.Y(big) < 0.5*rd.Y(big),
		"2(P-1) small steps move 2*size vs log2(P)*size")
	a.Checks.True("rabenseifner wins over rd in the bandwidth regime",
		rab.Y(big) < 0.5*rd.Y(big),
		"reduce-scatter + allgather halves the traffic per round")
	ringX := scenario.CrossoverSize(points, collectives.AllreduceRecursiveDoubling, collectives.AllreduceRing)
	rabX := scenario.CrossoverSize(points, collectives.AllreduceRecursiveDoubling, collectives.AllreduceRabenseifner)
	fig.AddNote("ring overtakes recursive doubling at %v, rabenseifner at %v", ringX, rabX)
	a.Checks.True("ring crossover in the KB-to-MB window",
		ringX >= 8*units.KB && ringX <= 512*units.KB,
		fmt.Sprintf("measured %v", ringX))
	a.Checks.True("rabenseifner crossover below the ring's",
		rabX > 0 && rabX <= ringX,
		fmt.Sprintf("measured %v", rabX))
	return a
}

func runCollCUExchange() *Artifact {
	a := newArtifact("coll-cu-exchange", "Dense exchanges within a CU", "§II.B scenario")
	points, err := scenario.CUExchange()
	if err != nil {
		a.Checks.True("sweep runs", false, err.Error())
		return a
	}
	fig := report.NewFigure("Allgather and alltoall within one CU (4 KB blocks)", "ranks", "us")
	series := seriesByOp(fig, points, func(p scenario.Point) float64 { return float64(p.Ranks) })
	a.Figures = append(a.Figures, fig)

	first := float64(scenario.ExchangeRankCounts[0])
	last := float64(scenario.ExchangeRankCounts[len(scenario.ExchangeRankCounts)-1])
	for _, op := range []collectives.Op{collectives.AllgatherRing, collectives.AlltoallPairwise} {
		s := series[op]
		a.Checks.True(fmt.Sprintf("%s monotone in P", op),
			report.NonDecreasing(report.SeriesYs(s), 0.001), "")
		// Dense exchange: P-1 rounds of fixed-size blocks, so time grows
		// linearly in the rank count (180/8 = 22.5x rounds).
		a.Checks.RatioInBand(fmt.Sprintf("%s linear growth 8->180", op),
			s.Y(last), s.Y(first), 20, 40)
		a.Checks.RatioInBand(fmt.Sprintf("%s doubling 32->64", op),
			s.Y(64), s.Y(32), 1.8, 2.4)
	}
	return a
}

func runCollSaturation() *Artifact {
	a := newArtifact("coll-saturation", "Fat-tree saturation under congestion", "§II.C scenario")
	points, err := scenario.Saturation()
	if err != nil {
		a.Checks.True("sweep runs", false, err.Error())
		return a
	}
	byKey := map[string]scenario.SaturationPoint{}
	for _, p := range points {
		byKey[fmt.Sprintf("%s/%d", p.Op, p.Nodes)] = p
	}
	at := func(op collectives.Op, nodes int) scenario.SaturationPoint {
		return byKey[fmt.Sprintf("%s/%d", op, nodes)]
	}
	full := scenario.SaturationNodeCounts[len(scenario.SaturationNodeCounts)-1]

	fig := report.NewFigure(
		fmt.Sprintf("Congested vs infinite-capacity fabric (%v blocks)", scenario.SaturationSize),
		"nodes", "slowdown (x)")
	fig.XLog = true
	series := map[collectives.Op]*report.Series{}
	for _, p := range points {
		s, ok := series[p.Op]
		if !ok {
			s = fig.NewSeries(string(p.Op))
			series[p.Op] = s
		}
		s.Add(float64(p.Nodes), p.Slowdown)
	}
	fullAll := at(collectives.AlltoallPairwise, full)
	fig.AddNote("wormhole link channels; alltoall pushes 180 node flows over 96 uplink cables per CU")
	fig.AddNote("full-machine alltoall: %.2fx slower congested, %v total queueing delay (%v on the uplink tier)",
		fullAll.Slowdown, fullAll.TotalWait, fullAll.UplinkWait)
	a.Figures = append(a.Figures, fig)

	t := newTableHelper(fmt.Sprintf("Hottest links, alltoall over %d nodes (congested)", full),
		"link", "msgs", "wait", "peak held", "utilization")
	for _, u := range fullAll.Top {
		t.AddRow(u.Link.String(), u.Messages, u.Wait.String(), u.PeakHeld,
			fmt.Sprintf("%.1f%%", 100*u.Utilization))
	}
	t.AddNote("under destination-hashed static routing the switch middle stage saturates first — the classic fat-tree bisection collapse")
	a.Tables = append(a.Tables, t)

	tu := newTableHelper(fmt.Sprintf("Hottest uplink cables, alltoall over %d nodes (congested)", full),
		"uplink", "msgs", "wait", "utilization")
	for _, u := range fullAll.TopUplinks {
		tu.AddRow(u.Link.String(), u.Messages, u.Wait.String(),
			fmt.Sprintf("%.1f%%", 100*u.Utilization))
	}
	tu.AddNote("the 2:1 taper: 180 node flows per CU over 96 uplink cables")
	a.Tables = append(a.Tables, tu)

	// The taper is invisible inside one crossbar and within one CU (180
	// divides the 12-way destination hash evenly, so intra-CU rounds
	// spread cleanly over the spines)...
	for _, nodes := range []int{8, 180} {
		p := at(collectives.AlltoallPairwise, nodes)
		a.Checks.RatioInBand(fmt.Sprintf("alltoall unthrottled at %d nodes", nodes),
			float64(p.Congested), float64(p.Baseline), 0.999, 1.05)
	}
	// ...while 64 ranks wrap mid-residue (64 mod 12 != 0): the ring-wrap
	// rounds fold two same-crossbar flows onto one spine cable — a mild,
	// bounded static-routing hotspot, not taper pressure.
	a.Checks.RatioInBand("alltoall spine wrap-hotspot at 64 nodes",
		float64(at(collectives.AlltoallPairwise, 64).Congested),
		float64(at(collectives.AlltoallPairwise, 64).Baseline), 1.0, 1.6)
	// The taper throttles as soon as the communicator spans CUs, and
	// hardest at the full machine.
	a.Checks.RatioInBand("alltoall throttled at 360 nodes",
		float64(at(collectives.AlltoallPairwise, 360).Congested),
		float64(at(collectives.AlltoallPairwise, 360).Baseline), 1.5, 20)
	a.Checks.RatioInBand(fmt.Sprintf("alltoall throttled at %d nodes", full),
		float64(fullAll.Congested), float64(fullAll.Baseline), 2, 50)
	slowdowns := []float64{}
	for _, n := range scenario.SaturationNodeCounts {
		if n >= 180 {
			slowdowns = append(slowdowns, at(collectives.AlltoallPairwise, n).Slowdown)
		}
	}
	a.Checks.True("alltoall slowdown grows with machine span",
		report.NonDecreasing(slowdowns, 0.01), "taper pressure rises as more CUs exchange")
	// The ring allgather only ever talks to a neighbor: the tapered
	// uplink cables never queue for it at any scale. Its full-machine
	// slowdown comes from the switch middle stage, where the 17 CU
	// boundary edges hash onto a handful of shared cables.
	for _, n := range scenario.SaturationNodeCounts {
		p := at(collectives.AllgatherRing, n)
		hi := 1.1
		if n == full {
			hi = 3.5
		}
		a.Checks.RatioInBand(fmt.Sprintf("allgather off the taper at %d nodes", n),
			float64(p.Congested), float64(p.Baseline), 0.999, hi)
		a.Checks.True(fmt.Sprintf("allgather leaves the uplinks unqueued at %d nodes", n),
			p.UplinkQueued == 0,
			"neighbor traffic crosses each uplink cable one flow at a time")
	}
	a.Checks.True("full-machine alltoall queues on the uplink tier",
		fullAll.UplinkQueued > 0 && fullAll.UplinkWait > 0,
		fmt.Sprintf("%d queued flows, %v waiting on uplink cables", fullAll.UplinkQueued, fullAll.UplinkWait))
	hotCrossTier := len(fullAll.Top) > 0 &&
		(fullAll.Top[0].Link.Kind == fabric.LinkUplink || fullAll.Top[0].Link.Kind == fabric.LinkSwitchInternal)
	a.Checks.True("hottest link sits in the inter-CU switching tier", hotCrossTier,
		"full-machine alltoall contention concentrates beyond the CU spines")
	hotUplinkBusy := len(fullAll.TopUplinks) > 0 && fullAll.TopUplinks[0].Utilization > 0.3 &&
		fullAll.TopUplinks[0].Wait > 0
	a.Checks.True("hottest uplink cable saturates", hotUplinkBusy,
		"180 node flows per CU contend for 96 tapered cables")
	p8 := at(collectives.AlltoallPairwise, 8)
	a.Checks.True("single-crossbar alltoall never queues", p8.QueuedFlows == 0,
		"no shared interior cables inside one crossbar")
	return a
}

func runCollLinpackPanel() *Artifact {
	a := newArtifact("coll-linpack-panel", "LINPACK panel-broadcast phase cost", "§I / [10] scenario")
	res, err := scenario.PanelBroadcast()
	if err != nil {
		a.Checks.True("scenario runs", false, err.Error())
		return a
	}
	t := newTableHelper("HPL panel broadcast on the full machine", "quantity", "value")
	t.AddRow("problem order N", res.Spec.N)
	t.AddRow("panel width NB", res.Spec.NB)
	t.AddRow("process grid", fmt.Sprintf("%dx%d", res.Spec.GridRows, res.Spec.GridCols))
	t.AddRow("row communicator (ranks)", res.RowRanks)
	t.AddRow("mid-run panel size", res.PanelBytes.String())
	t.AddRow("panel broadcasts", res.Spec.Panels())
	t.AddRow("binomial bcast per panel (DES)", res.BinomialPerPanel.String())
	t.AddRow("pipelined bound per panel", res.PipelinedPerPanel.String())
	t.AddRow("binomial fraction of runtime", fmt.Sprintf("%.3f", res.BinomialFraction))
	t.AddRow("pipelined fraction of runtime", fmt.Sprintf("%.3f", res.PipelinedFraction))
	t.AddRow("hybrid model overlap loss", linpack.RoadrunnerHPL().OverlapLoss)
	a.Tables = append(a.Tables, t)

	loss := linpack.RoadrunnerHPL().OverlapLoss
	a.Checks.Within("mid-run panel (MB)", res.PanelBytes.MBytes(), 22.0, 0.05)
	a.Checks.Within("binomial per panel (ms)", res.BinomialPerPanel.Milliseconds(), 93.8, 0.05)
	a.Checks.Within("pipelined bound per panel (ms)", res.PipelinedPerPanel.Milliseconds(), 15.6, 0.05)
	a.Checks.Within("binomial runtime fraction", res.BinomialFraction, 0.213, 0.05)
	a.Checks.True("overlap budget covers a pipelined broadcast",
		res.PipelinedFraction < loss,
		fmt.Sprintf("%.3f < %.3f", res.PipelinedFraction, loss))
	a.Checks.True("overlap budget cannot cover the binomial tree",
		res.BinomialFraction > loss,
		"why HPL pipelines its long broadcasts")
	a.Checks.True("tree bcast above the pipelined bound",
		res.BinomialPerPanel > res.PipelinedPerPanel, "")
	return a
}
