package experiments

import (
	"roadrunner/internal/fabric"
	"roadrunner/internal/ib"
	"roadrunner/internal/microbench"
	"roadrunner/internal/report"
	"roadrunner/internal/units"
)

func init() {
	register("fig6", "Zero-byte Cell-to-Cell latency breakdown", "Fig. 6",
		"Composes DaCS, MPI/IB and local segments into the measured end-to-end latency path",
		runFig6)
	register("fig7", "Intra- and internode Cell-to-Cell bandwidth", "Fig. 7",
		"Streams uni- and bidirectional transfers through the shared-engine endpoint model",
		runFig7)
	register("fig8", "Internode bandwidth by Opteron core pair", "Fig. 8",
		"Checks the near/far HCA core asymmetry (1,478 vs 1,087 MB/s) across all core pairs",
		runFig8)
	register("fig9", "InfiniBand vs DaCS PCIe performance", "Fig. 9",
		"Sweeps message sizes over both stacks and pins the DaCS half-bandwidth crossover",
		runFig9)
	register("fig10", "Zero-byte latency map from node 0", "Fig. 10",
		"Maps MPI zero-byte latency to every node and checks the hop-profile plateaus",
		runFig10)
}

func runFig6() *Artifact {
	a := newArtifact("fig6", "Zero-byte Cell-to-Cell latency breakdown", "Fig. 6")
	segs := microbench.Fig6Breakdown()
	t := newTableHelper("Fig. 6 segments", "segment", "time (us)")
	for _, s := range segs {
		t.AddRow(s.Name, s.Time.Microseconds())
	}
	t.AddRow("Total", microbench.Fig6Total().Microseconds())
	a.Tables = append(a.Tables, t)

	want := []float64{0.12, 3.19, 2.16, 3.19, 0.12}
	for i, s := range segs {
		a.Checks.Within("segment "+s.Name, s.Time.Microseconds(), want[i], 0.001)
	}
	a.Checks.Within("total (us)", microbench.Fig6Total().Microseconds(), 8.78, 0.001)
	a.Checks.True("DaCS dominates", segs[1].Time > segs[2].Time,
		"the major cost is Cell-Opteron, not the network")
	return a
}

func runFig7() *Artifact {
	a := newArtifact("fig7", "Intra- and internode Cell-to-Cell bandwidth", "Fig. 7")
	fig := report.NewFigure("Fig. 7: Cell-to-Cell bandwidth", "message size (B)", "MB/s")
	fig.XLog = true
	ib2 := fig.NewSeries("Intranode, bidirectional")
	iu2 := fig.NewSeries("Intranode, unidirectional x2")
	nb2 := fig.NewSeries("Internode, bidirectional")
	nu2 := fig.NewSeries("Internode, unidirectional x2")
	for _, s := range microbench.PingPongSizes() {
		x := float64(s)
		ib2.Add(x, microbench.IntranodeBidir(s).MBps())
		iu2.Add(x, 2*microbench.IntranodeUni(s).MBps())
		nb2.Add(x, microbench.InternodeBidir(s).MBps())
		nu2.Add(x, 2*microbench.InternodeUni(s).MBps())
	}
	a.Figures = append(a.Figures, fig)

	big := 1 * units.MB
	intraUni2 := 2 * microbench.IntranodeUni(big).MBps()
	intraBi := microbench.IntranodeBidir(big).MBps()
	interUni2 := 2 * microbench.InternodeUni(big).MBps()
	interBi := microbench.InternodeBidir(big).MBps()
	a.Checks.Within("intranode uni x2 (MB/s)", intraUni2, 2017, 0.05)
	a.Checks.Within("intranode bidir (MB/s)", intraBi, 1295, 0.05)
	a.Checks.Within("intranode duplex ratio", intraBi/intraUni2, 0.64, 0.06)
	a.Checks.Within("internode uni x2 (MB/s)", interUni2, 536, 0.06)
	a.Checks.Within("internode bidir (MB/s)", interBi, 375, 0.06)
	a.Checks.Within("internode duplex ratio", interBi/interUni2, 0.70, 0.06)
	return a
}

func runFig8() *Artifact {
	a := newArtifact("fig8", "Internode bandwidth by Opteron core pair", "Fig. 8")
	pr := ib.OpenMPI()
	fig := report.NewFigure("Fig. 8: internode unidirectional bandwidth", "message size (B)", "MB/s")
	fig.XLog = true
	near := fig.NewSeries("Cores 1 or 3")
	far := fig.NewSeries("Cores 0 or 2")
	mixed := fig.NewSeries("Core 0 to Core 1")
	for s := units.Size(1); s <= 10*units.MB; s *= 10 {
		x := float64(s)
		near.Add(x, pr.BandwidthAt(s, 1, 1, 3).MBps())
		far.Add(x, pr.BandwidthAt(s, 1, 0, 2).MBps())
		mixed.Add(x, pr.BandwidthAt(s, 1, 0, 1).MBps())
	}
	a.Figures = append(a.Figures, fig)

	big := 8 * units.MB
	n := pr.BandwidthAt(big, 1, 1, 3).MBps()
	f := pr.BandwidthAt(big, 1, 0, 2).MBps()
	m := pr.BandwidthAt(big, 1, 0, 1).MBps()
	a.Checks.Within("cores 1/3 plateau (MB/s)", n, 1478, 0.02)
	a.Checks.Within("cores 0/2 plateau (MB/s)", f, 1087, 0.02)
	a.Checks.True("mixed pair between", m > f && m < n, "core 0 to core 1")
	return a
}

func runFig9() *Artifact {
	a := newArtifact("fig9", "InfiniBand vs DaCS PCIe performance", "Fig. 9")
	fig := report.NewFigure("Fig. 9: same PCIe wire, two stacks", "message size (B)", "MB/s")
	fig.XLog = true
	dc := fig.NewSeries("Intra-node (Cell-Opteron, DaCS)")
	ic := fig.NewSeries("Inter-node (Opteron-Opteron, MPI/IB)")
	ratio := fig.NewSeries("Relative (inter vs intra)")
	for s := units.Size(1); s <= 1*units.MB; s *= 4 {
		x := float64(s)
		d := microbench.Fig9DaCS(s).MBps()
		i := microbench.Fig9IB(s).MBps()
		dc.Add(x, d)
		ic.Add(x, i)
		if d > 0 {
			ratio.Add(x, i/d)
		}
	}
	a.Figures = append(a.Figures, fig)

	r4 := float64(microbench.Fig9IB(4*units.KB)) / float64(microbench.Fig9DaCS(4*units.KB))
	r1m := float64(microbench.Fig9IB(1*units.MB)) / float64(microbench.Fig9DaCS(1*units.MB))
	a.Checks.True("IB > 2x DaCS below 20KB", r4 > 2, "small-message gap")
	a.Checks.RatioInBand("ratio approaches 1 at 1MB", r1m, 1, 0.85, 1.45)
	a.Checks.True("IB wins at every small size",
		microbench.Fig9IB(1*units.KB) > microbench.Fig9DaCS(1*units.KB),
		"despite crossing the network and two PCIe wires")
	return a
}

func runFig10() *Artifact {
	a := newArtifact("fig10", "Zero-byte latency map from node 0", "Fig. 10")
	fab := fabric.New()
	m := microbench.Fig10Map(fab)
	fig := report.NewFigure("Fig. 10: latency from rank 0", "node", "us")
	s := fig.NewSeries("latency")
	// Sample the full map at every node; the rendered figure keeps a
	// decimated series to stay readable, checks use the full map.
	for g := 0; g < len(m); g += 30 {
		s.Add(float64(g), m[g].Microseconds())
	}
	a.Figures = append(a.Figures, fig)

	us := func(i int) float64 { return m[i].Microseconds() }
	a.Checks.Within("same-crossbar minimum (us)", us(1), 2.5, 0.02)
	a.Checks.Within("same-CU plateau (us)", us(100), 3.0, 0.03)
	a.Checks.Within("5-hop plateau (us)", us(190), 3.5, 0.04)
	a.Checks.True("last 5 CUs just under 4us", us(16*180+100) > 3.7 && us(16*180+100) < 4.0,
		"7-hop plateau")
	// Periodic dips: remote CUs' same-index-crossbar nodes route in 3
	// hops. Count them in CUs 2-12.
	dips := 0
	for cu := 1; cu < 12; cu++ {
		if us(cu*180) < us(cu*180+10) {
			dips++
		}
	}
	a.Checks.Exact("periodic dips in CUs 2-12", float64(dips), 11)
	return a
}
