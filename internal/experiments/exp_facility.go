package experiments

import (
	"fmt"

	"roadrunner/internal/scenario"
)

// The facility-stream experiment runs the machine-level job-stream
// simulator: the whole 3,060-node machine under the canonical 48-job
// LINPACK/Sweep3D/trace mix, swept over FCFS and EASY-backfill x the
// contiguous, scattered and placement-assisted allocators. Its checks
// assert the operational deltas rather than printing them: backfill
// cuts mean queue wait under both allocators without delaying any
// queue head, CU packing keeps external fragmentation below striping
// under both policies, no run beats the oracle packer bound, and the
// admission-time placement search never prices a trace job worse than
// the linear walk of the same grant.
func init() {
	register("facility-stream", "Machine-level job-stream scheduling over the facility simulator", "§I / §V operated-facility framing",
		"Runs the 48-job LINPACK/Sweep3D/trace mix over FCFS and EASY-backfill x contiguous/scattered/assisted allocators and asserts the backfill, fragmentation and placement-assist deltas",
		runFacilityStream)
}

func runFacilityStream() *Artifact {
	a := newArtifact("facility-stream", "Machine-level job-stream scheduling over the facility simulator", "§I / §V operated-facility framing")
	rep, err := scenario.FacilityStream()
	if err != nil {
		a.Checks.True("facility stream runs", false, err.Error())
		return a
	}

	t := newTableHelper("Policy x allocator sweep over the canonical mix",
		"policy", "allocator", "utilization", "mean wait", "p95 wait", "slowdown", "frag", "makespan", "vs oracle", "backfilled")
	for _, p := range rep.Points {
		t.AddRow(p.Policy, p.Alloc,
			fmt.Sprintf("%.1f%%", p.UtilizationFrac*100),
			p.MeanWait.String(), p.P95Wait.String(),
			fmt.Sprintf("%.1f", p.MeanSlowdown),
			fmt.Sprintf("%.3f", p.MeanFragmentation),
			p.Makespan.String(),
			fmt.Sprintf("%.3f", p.OracleRatio),
			p.Backfilled)
	}
	t.AddNote("%s: %d jobs on %d nodes; trace jobs replay %s (%d ranks, %v reference iteration) under the granted mapping",
		rep.Workload, rep.Jobs, rep.MachineNodes, rep.TraceName, rep.TraceRanks, rep.TraceReference)
	a.Tables = append(a.Tables, t)

	a.Checks.True("all policy x allocator points ran",
		len(rep.Points) == len(scenario.FacilityPolicyNames)*len(scenario.FacilityAllocNames),
		fmt.Sprintf("%d points", len(rep.Points)))
	a.Checks.True("two identical sweeps byte-identical", rep.Deterministic,
		"capture + workload + 12 runs, twice")

	for _, p := range rep.Points {
		a.Checks.True(fmt.Sprintf("%s/%s utilization in (0,1]", p.Policy, p.Alloc),
			p.UtilizationFrac > 0 && p.UtilizationFrac <= 1,
			fmt.Sprintf("%.3f", p.UtilizationFrac))
		a.Checks.True(fmt.Sprintf("%s/%s respects the oracle packer bound", p.Policy, p.Alloc),
			p.OracleRatio >= 1,
			fmt.Sprintf("makespan %v vs oracle %v", p.Makespan, p.OracleMakespan))
	}

	point := func(policy, alloc string) scenario.FacilityPoint {
		p, perr := rep.FacilityPointFor(policy, alloc)
		if perr != nil {
			a.Checks.True("sweep point "+policy+"/"+alloc+" present", false, perr.Error())
		}
		return p
	}
	// The backfill delta, asserted per allocator.
	for _, alloc := range []string{"contiguous", "scattered"} {
		fcfs, easy := point("fcfs", alloc), point("easy", alloc)
		a.Checks.True(fmt.Sprintf("EASY cuts mean wait under %s", alloc),
			easy.MeanWait < fcfs.MeanWait,
			fmt.Sprintf("easy %v vs fcfs %v", easy.MeanWait, fcfs.MeanWait))
		a.Checks.True(fmt.Sprintf("EASY backfills under %s, FCFS never", alloc),
			easy.Backfilled > 0 && fcfs.Backfilled == 0,
			fmt.Sprintf("easy %d, fcfs %d", easy.Backfilled, fcfs.Backfilled))
	}
	// The fragmentation delta, asserted per policy.
	for _, policy := range scenario.FacilityPolicyNames {
		cont, scat := point(policy, "contiguous"), point(policy, "scattered")
		a.Checks.True(fmt.Sprintf("CU packing keeps fragmentation below striping under %s", policy),
			cont.MeanFragmentation < scat.MeanFragmentation,
			fmt.Sprintf("contiguous %.3f vs scattered %.3f", cont.MeanFragmentation, scat.MeanFragmentation))
		a.Checks.True(fmt.Sprintf("no single-CU job spans CUs under %s/contiguous", policy),
			cont.MaxCUsSpannedSmall == 1,
			fmt.Sprintf("max CUs spanned %d", cont.MaxCUsSpannedSmall))
		// The first trace job's grant is identical across allocators
		// (everything before it is), so the assisted-vs-linear pricing
		// comparison is exact.
		assisted := point(policy, "assisted")
		a.Checks.True(fmt.Sprintf("assisted mapping never worse than linear under %s", policy),
			assisted.FirstTraceRuntime <= cont.FirstTraceRuntime,
			fmt.Sprintf("assisted %v vs linear %v", assisted.FirstTraceRuntime, cont.FirstTraceRuntime))
	}
	return a
}
