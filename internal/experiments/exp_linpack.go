package experiments

import (
	"roadrunner/internal/linpack"
	"roadrunner/internal/machine"
	"roadrunner/internal/report"
)

func init() {
	register("linpack", "LINPACK headline and Green500 point", "§I, §II",
		"Recomputes the 1.026 Pflop/s sustained rate and 437 Mflops/W from the machine model",
		runLinpack)
}

func runLinpack() *Artifact {
	a := newArtifact("linpack", "LINPACK headline and Green500 point", "§I, §II")

	// Real math first: factor and solve an actual system with the blocked
	// LU, validating the kernel the model is about.
	n := 96
	mat := linpack.RandomSPD(n, 42)
	orig := mat.Clone()
	lu, err := linpack.Factorize(mat, 16)
	if err != nil {
		a.Checks.True("factorisation", false, err.Error())
		return a
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i%7) - 3
	}
	x := lu.Solve(b)
	resid := linpack.Residual(orig, x, b)

	sys := machine.New(machine.Full())
	model := linpack.RoadrunnerHPL()
	eff := model.Efficiency()
	sustained := sys.LinpackSustained(eff)
	mfw := sys.MFlopsPerWatt(sustained)

	t := newTableHelper("LINPACK reproduction", "quantity", "model", "paper")
	t.AddRow("peak DP", sys.PeakDP().String(), "1.38 PF/s")
	t.AddRow("hybrid efficiency", eff, 0.744)
	t.AddRow("sustained", sustained.String(), "1.026 PF/s")
	t.AddRow("system power", sys.Power().String(), "~2.35 MW")
	t.AddRow("Green500", mfw, "437 MF/W")
	t.AddRow("LU residual (n=96)", resid, "< 1e-12")
	t.AddRow("LU flops (2/3 n^3)", lu.Flops, "~589824")
	a.Tables = append(a.Tables, t)

	a.Checks.True("LU solves correctly", resid < 1e-12, "HPL acceptance metric")
	a.Checks.Within("sustained (PF/s)", sustained.PF(), 1.026, 0.015)
	a.Checks.Within("Green500 (MF/W)", mfw, 437, 0.05)
	a.Checks.Within("efficiency", eff, 0.744, 0.01)
	a.Checks.True("Opteron-only machine mid-Top500",
		sys.OpteronOnlyPeakDP().TF() > 40 && sys.OpteronOnlyPeakDP().TF() < 50,
		"'approximately position 50' without accelerators")
	_ = report.Check{}
	return a
}
