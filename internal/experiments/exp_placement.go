package experiments

import (
	"fmt"

	"roadrunner/internal/scenario"
	"roadrunner/internal/units"
)

// The place-optimize experiment runs the rank-placement optimizer over
// the captured Sweep3D communication schedule: greedy pairwise-swap
// refinement plus batched simulated annealing, with the pooled batch
// replay evaluator as the objective function, seeded from the
// block/strided/packed baselines. Its checks pin the contracts the
// optimizer rests on — the winner is never worse than any baseline, a
// serial search returns a byte-identical result to the parallel one,
// and the pooled evaluator's makespan for the winning mapping
// reproduces exactly under a fresh fully-observed replay — plus the
// placement law that motivates searching at all: the hop metric orders
// the baselines one way (packed fewest) while the replayed schedule
// orders them the other (packed slowest).
func init() {
	register("place-optimize", "Rank-placement optimizer over the Sweep3D trace", "§II.C / §V.A scenario",
		"Anneals rank→node mappings against the replayed Sweep3D communication schedule (pooled evaluator objective) and checks the winner against block/strided/packed",
		runPlaceOptimize)
}

func runPlaceOptimize() *Artifact {
	a := newArtifact("place-optimize", "Rank-placement optimizer over the Sweep3D trace", "§II.C / §V.A scenario")
	rep, err := scenario.PlaceOptimize()
	if err != nil {
		a.Checks.True("optimizer runs", false, err.Error())
		return a
	}

	t := newTableHelper("Placement search over the communication-only congested schedule",
		"mapping", "hops/msg", "comm makespan", "vs best baseline")
	baseline := map[string]float64{}
	var bestBase string
	bestBaseTime := units.Time(0)
	for _, b := range rep.Baselines {
		baseline[b.Name] = float64(b.Time)
		if bestBase == "" || b.Time < bestBaseTime {
			bestBase, bestBaseTime = b.Name, b.Time
		}
	}
	for _, b := range rep.Baselines {
		t.AddRow(b.Name, fmt.Sprintf("%.2f", rep.BaselineHops[b.Name]), b.Time.String(),
			fmt.Sprintf("%.4f", float64(b.Time)/baseline[bestBase]))
	}
	t.AddRow("optimized", fmt.Sprintf("%.2f", rep.WinnerHops), rep.BestTime.String(),
		fmt.Sprintf("%.4f", float64(rep.BestTime)/baseline[bestBase]))
	t.AddNote("objective: %s; %d replay evaluations from seed %d",
		rep.Objective, rep.Evaluations, scenario.PlaceOptimizeSeed)
	a.Tables = append(a.Tables, t)

	tr := newTableHelper("Search trajectory", "phase", "round", "temperature", "accepted", "current", "best")
	for _, r := range rep.Rounds {
		tr.AddRow(r.Phase, r.Round, r.Temp.String(), r.Accepted, r.Current.String(), r.Best.String())
	}
	tr.AddNote("greedy keeps the best improving swap per round; annealing Metropolis-accepts in candidate order")
	a.Tables = append(a.Tables, tr)

	a.Checks.True("all three baselines evaluated", len(rep.Baselines) == 3,
		fmt.Sprintf("%d baselines", len(rep.Baselines)))
	a.Checks.True("winner no worse than every baseline",
		rep.BestTime <= bestBaseTime,
		fmt.Sprintf("optimized %v vs best baseline %s %v", rep.BestTime, bestBase, bestBaseTime))
	a.Checks.True("improvement factor is sane", rep.Improvement >= 1,
		fmt.Sprintf("%.4fx over the %s start", rep.Improvement, rep.Start))
	a.Checks.True("serial and parallel searches byte-identical", rep.Deterministic,
		"placement.Optimize with Workers 1 vs GOMAXPROCS")
	a.Checks.True("pooled objective reproduces under a fresh observed replay",
		rep.Reevaluated == rep.BestTime,
		fmt.Sprintf("pooled %v, fresh %v", rep.BestTime, rep.Reevaluated))
	a.Checks.True("winner census observed", rep.WinnerCensus != nil,
		"final replay runs with ObserveCensus")

	// The placement law that makes this a search problem: the hop
	// metric and the replayed schedule order the baselines differently
	// (HCA sharing dominates hops).
	a.Checks.True("hop metric orders packed < block < strided",
		rep.BaselineHops["packed"] < rep.BaselineHops["block"] &&
			rep.BaselineHops["block"] < rep.BaselineHops["strided"],
		fmt.Sprintf("%.2f / %.2f / %.2f hops per message",
			rep.BaselineHops["packed"], rep.BaselineHops["block"], rep.BaselineHops["strided"]))
	a.Checks.True("replayed schedule orders block < strided < packed",
		baseline["block"] < baseline["strided"] && baseline["strided"] < baseline["packed"],
		"hop counts mispredict the comm schedule; the replay is the objective")

	// Search effort: both phases ran on top of the three baselines.
	a.Checks.True("search evaluated beyond the baselines", rep.Evaluations > 3 && len(rep.Rounds) >= 2,
		fmt.Sprintf("%d evaluations over %d rounds", rep.Evaluations, len(rep.Rounds)))
	return a
}
