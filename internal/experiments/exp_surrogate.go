package experiments

import (
	"fmt"

	"roadrunner/internal/scenario"
	"roadrunner/internal/surrogate"
)

// The surrogate-xval experiment cross-validates the analytic queueing
// surrogate — the microsecond placement-pricing model the two-tier
// search screens with — against the DES on every registered fabric
// topology: calibrate on a dozen DES-replayed anchors, then rank a
// held-out placement set with both models. Spearman rank correlation is
// the figure of merit (a screening tier needs the ordering, not the
// times), asserted >= 0.9 per topology. The same artifact runs the
// two-tier search head-to-head against the pure-DES search at the same
// per-round DES budget and checks the DES-confirmed winner is never
// worse, and that the surrogate prices candidates at least
// SurrogateSpeedFloor times faster than the DES replays them (the
// wall-clock measurement itself never enters the artifact: archived
// output must be byte-identical across machines and worker counts).
func init() {
	register("surrogate-xval", "Analytic surrogate cross-validation vs the DES", "§II.C / §V.A model",
		"Calibrates the analytic placement-pricing surrogate on DES anchors per topology, asserts holdout Spearman >= 0.9 and the screening speed floor, and races the two-tier search against pure DES",
		runSurrogateXVal)
}

func runSurrogateXVal() *Artifact {
	a := newArtifact("surrogate-xval", "Analytic surrogate cross-validation vs the DES", "§II.C / §V.A model")
	rep, err := scenario.SurrogateXVal()
	if err != nil {
		a.Checks.True("cross-validation runs", false, err.Error())
		return a
	}

	t := newTableHelper("Holdout rank correlation per topology (calibrated surrogate vs DES)",
		"topology", "anchors", "holdout", "Spearman", "DES-best in surrogate top-3")
	minRho, allAgree := 1.0, true
	for _, p := range rep.Points {
		t.AddRow(p.Topology, p.Anchors, p.Holdout, fmt.Sprintf("%.4f", p.Spearman),
			fmt.Sprintf("%v", p.BestAgrees))
		if p.Spearman < minRho {
			minRho = p.Spearman
		}
		allAgree = allAgree && p.BestAgrees
	}
	t.AddNote("objective: %s; anchors are the baselines plus seeded swaps from seed %d",
		rep.Objective, scenario.SurrogateXValSeed)
	a.Tables = append(a.Tables, t)

	tw := newTableHelper("Calibrated term weights", append([]string{"topology"}, surrogate.FeatureNames[:]...)...)
	for _, p := range rep.Points {
		row := make([]any, 0, 1+len(p.Weights))
		row = append(row, p.Topology)
		for _, w := range p.Weights {
			row = append(row, fmt.Sprintf("%.4g", w))
		}
		tw.AddRow(row...)
	}
	tw.AddNote("ridge fit toward the physical prior (schedule weight 1, corrections 0); a near-1 schedule weight means the walk itself carries the model")
	a.Tables = append(a.Tables, tw)

	tt := rep.TwoTier
	t2 := newTableHelper("Two-tier vs pure-DES search (same seed, same per-round DES budget)",
		"search", "DES-confirmed best", "DES replays", "surrogate prices")
	t2.AddRow("pure DES", tt.PureBest.String(), tt.PureDESEvals, 0)
	t2.AddRow(fmt.Sprintf("two-tier (screen %dx)", tt.ScreenFactor),
		tt.TwoTierBest.String(), tt.TwoTierDESEvals, tt.TwoTierSurrogateEvals)
	t2.AddNote("start %s at %v; the two-tier search pays a one-time %d-anchor calibration and %d duplicate candidates were priced once",
		tt.Start, tt.StartTime, tt.Anchors, tt.TwoTierDedupHits)
	a.Tables = append(a.Tables, t2)

	topoCount := len(rep.Points)
	a.Checks.True("every registered topology cross-validated", topoCount >= 4,
		fmt.Sprintf("%d topologies", topoCount))
	a.Checks.True("holdout Spearman >= 0.9 on every topology", minRho >= 0.9,
		fmt.Sprintf("minimum %.4f over %d topologies", minRho, topoCount))
	a.Checks.True("surrogate never loses the DES-best placement from its top-3", allAgree,
		"the decision a screening tier must not miss")
	a.Checks.True("two-tier winner equal-or-better than pure DES at matched round budget",
		tt.TwoTierBest <= tt.PureBest,
		fmt.Sprintf("two-tier %v vs pure %v", tt.TwoTierBest, tt.PureBest))
	a.Checks.True("two-tier DES spend bounded by pure spend plus calibration",
		tt.TwoTierDESEvals <= tt.PureDESEvals+tt.Anchors,
		fmt.Sprintf("%d vs %d + %d anchors", tt.TwoTierDESEvals, tt.PureDESEvals, tt.Anchors))
	a.Checks.True("two-tier search deterministic (serial byte-identical to parallel)",
		tt.Deterministic, "placement.Optimize with Workers 1 vs GOMAXPROCS, wall-clock stripped")
	a.Checks.True("surrogate screened a wider pool than the DES replayed",
		tt.TwoTierSurrogateEvals > tt.TwoTierDESEvals,
		fmt.Sprintf("%d priced vs %d replayed", tt.TwoTierSurrogateEvals, tt.TwoTierDESEvals))

	// The speed floor: measured at run time, asserted as a boolean only —
	// wall-clock numbers must never enter the archived artifact.
	tr, _, err := scenario.CaptureSweep3DTrace()
	if err != nil {
		a.Checks.True("speed measurement runs", false, err.Error())
		return a
	}
	sp, err := scenario.MeasureSurrogateSpeed(tr)
	if err != nil {
		a.Checks.True("speed measurement runs", false, err.Error())
		return a
	}
	a.Checks.True(
		fmt.Sprintf("surrogate prices >= %.0fx faster than the pooled DES evaluates", scenario.SurrogateSpeedFloor),
		sp.Speedup >= scenario.SurrogateSpeedFloor,
		"wall-clock measured at run time, not archived; see the Surrogate* benches and docs/surrogate.md for numbers")
	return a
}
