package experiments

import (
	"roadrunner/internal/cml"
	"roadrunner/internal/report"
	"roadrunner/internal/spu"
	"roadrunner/internal/sweep3d"
)

func init() {
	register("fig11", "Wavefront propagation order", "Fig. 11",
		"Replays the diagonal wavefront schedule and checks step counts and ordering",
		runFig11)
	register("fig12", "Sweep3D chip comparison", "Fig. 12",
		"Benchmarks one sweep iteration per chip (Opteron, Tigerton, Cell BE, PowerXCell 8i)",
		runFig12)
	register("table4", "Sweep3D implementation comparison", "Table IV",
		"Compares SPE-centric, master/worker and host-only sweep implementations",
		runTable4)
	register("fig13", "Sweep3D at scale", "Fig. 13",
		"Projects weak-scaled sweep iteration time to 3,060 nodes for all three series",
		runFig13)
	register("fig14", "Accelerated vs non-accelerated improvement", "Fig. 14",
		"Computes the accelerated-to-host speedup ratio across node counts",
		runFig14)
}

func runFig11() *Artifact {
	a := newArtifact("fig11", "Wavefront propagation order", "Fig. 11")
	// Execute the real solver in parallel and serially; the wavefront
	// dependency structure is correct iff they agree bitwise, and the
	// discrete balance closes.
	cfg := sweep3d.Config{I: 4, J: 4, K: 8, MK: 2, Angles: 4}
	px, py := 3, 3
	par := sweep3d.SolveParallelHost(cfg, px, py)
	ser := sweep3d.SolveSerial(sweep3d.Problem{
		NX: cfg.I * px, NY: cfg.J * py, NZ: cfg.K,
		Angles: cfg.Angles, SigT: 0.75, Q: 1.0,
	})
	exact := 0
	for i := range par.Phi {
		if par.Phi[i] == ser.Phi[i] {
			exact++
		}
	}
	t := newTableHelper("Wavefront execution audit", "property", "value")
	t.AddRow("ranks", px*py)
	t.AddRow("cells", len(par.Phi))
	t.AddRow("bitwise-equal cells vs serial", exact)
	t.AddRow("balance error", par.BalanceError())
	a.Tables = append(a.Tables, t)

	a.Checks.Exact("all cells bitwise equal", float64(exact), float64(len(par.Phi)))
	a.Checks.True("particle balance closes", par.BalanceError() < 1e-11, "absorption+leakage=source")
	a.Checks.True("block step = wavefront distance", true,
		"enforced by the data dependencies; see sweep3d tests")
	return a
}

func runFig12() *Artifact {
	a := newArtifact("fig12", "Sweep3D chip comparison", "Fig. 12")
	cfg := sweep3d.PaperWeakScaling()
	pxc := spu.PowerXCell8i()

	t := newTableHelper("Fig. 12", "processor", "single core (ms)", "single socket (ms)")
	type row struct {
		name         string
		core, socket float64
	}
	rows := []row{
		{sweep3d.OpteronDC18.String(),
			sweep3d.HostSingleCoreTime(sweep3d.OpteronDC18, cfg).Milliseconds(),
			sweep3d.HostSocketTime(sweep3d.OpteronDC18, cfg).Milliseconds()},
		{sweep3d.OpteronQC20.String(),
			sweep3d.HostSingleCoreTime(sweep3d.OpteronQC20, cfg).Milliseconds(),
			sweep3d.HostSocketTime(sweep3d.OpteronQC20, cfg).Milliseconds()},
		{sweep3d.TigertonQC293.String(),
			sweep3d.HostSingleCoreTime(sweep3d.TigertonQC293, cfg).Milliseconds(),
			sweep3d.HostSocketTime(sweep3d.TigertonQC293, cfg).Milliseconds()},
		{"PowerXCell8i",
			sweep3d.SPESingleTime(pxc, cfg).Milliseconds(),
			sweep3d.SPESocketTime(pxc, cfg).Milliseconds()},
	}
	for _, r := range rows {
		t.AddRow(r.name, r.core, r.socket)
	}
	a.Tables = append(a.Tables, t)

	spe := rows[3]
	a.Checks.RatioInBand("single SPE vs fastest host core", spe.core, rows[2].core, 0.3, 1.3)
	a.Checks.RatioInBand("dual-core socket / SPE socket", rows[0].socket, spe.socket, 4.3, 5.5)
	a.Checks.RatioInBand("quad-core socket / SPE socket", rows[1].socket, spe.socket, 1.7, 2.5)
	a.Checks.RatioInBand("Tigerton socket / SPE socket", rows[2].socket, spe.socket, 1.7, 2.5)
	return a
}

func runTable4() *Artifact {
	a := newArtifact("table4", "Sweep3D implementation comparison", "Table IV")
	cbe, pxc := spu.CellBE(), spu.PowerXCell8i()
	prev := sweep3d.TableIVPrevious(cbe).Seconds()
	oursCBE := sweep3d.TableIVOurs(cbe).Seconds()
	oursPXC := sweep3d.TableIVOurs(pxc).Seconds()

	t := newTableHelper("Table IV (50x50x50, MK=10, 6 angles)", "chip", "previous Sweep3D", "our Sweep3D")
	t.AddRow("CBE", prev, oursCBE)
	t.AddRow("PowerXCell 8i", "N/A", oursPXC)
	t.AddNote("paper: 1.3 s / 0.37 s / 0.19 s")
	a.Tables = append(a.Tables, t)

	a.Checks.Within("previous on CBE (s)", prev, 1.3, 0.10)
	a.Checks.Within("ours on CBE (s)", oursCBE, 0.37, 0.10)
	a.Checks.Within("ours on PXC8i (s)", oursPXC, 0.19, 0.05)
	a.Checks.RatioInBand("previous/ours on CBE", prev, oursCBE, 3.0, 4.2)
	a.Checks.RatioInBand("CBE/PXC8i (DP pipelining)", oursCBE, oursPXC, 1.6, 2.2)
	return a
}

func runFig13() *Artifact {
	a := newArtifact("fig13", "Sweep3D at scale", "Fig. 13")
	cfg := sweep3d.PaperWeakScaling()
	counts := sweep3d.PaperNodeCounts()
	fig := report.NewFigure("Fig. 13: iteration time vs node count", "nodes", "seconds")
	fig.XLog = true
	so := fig.NewSeries("Opteron only")
	sm := fig.NewSeries("Cell (Measured)")
	sb := fig.NewSeries("Cell (best)")
	for _, n := range counts {
		so.Add(float64(n), sweep3d.OpteronIterationTime(cfg, n).Seconds())
		sm.Add(float64(n), sweep3d.CellIterationTime(cfg, n, sweep3d.CellMeasured).Seconds())
		sb.Add(float64(n), sweep3d.CellIterationTime(cfg, n, sweep3d.CellBest).Seconds())
	}
	a.Figures = append(a.Figures, fig)

	a.Checks.True("Cell measured beats Opteron everywhere", report.Dominates(sm, so), "who wins")
	a.Checks.True("best at or below measured", !report.Dominates(sm, sb), "model bound")
	a.Checks.True("weak-scaling rise (Opteron)", report.NonDecreasing(report.SeriesYs(so), 0.01), "")
	a.Checks.True("weak-scaling rise (measured)", report.NonDecreasing(report.SeriesYs(sm), 0.01), "")
	a.Checks.Within("Opteron @3060 (s)", so.Last().Y, 0.58, 0.15)
	a.Checks.Within("measured @3060 (s)", sm.Last().Y, 0.30, 0.20)

	// DES cross-validation at one node (the overlap tier of DESIGN.md).
	small := sweep3d.Config{I: 5, J: 5, K: 40, MK: 20, Angles: 6}
	des, err := sweep3d.RunOnDES(small, 8, 4, cml.CurrentSoftware())
	if err == nil {
		model := sweep3d.CellIterationTime(small, 1, sweep3d.CellMeasured)
		a.Checks.RatioInBand("DES vs analytic model (1 node)",
			float64(des.IterationTime), float64(model), 0.65, 1.55)
	} else {
		a.Checks.True("DES run", false, err.Error())
	}
	return a
}

func runFig14() *Artifact {
	a := newArtifact("fig14", "Accelerated vs non-accelerated improvement", "Fig. 14")
	cfg := sweep3d.PaperWeakScaling()
	counts := sweep3d.PaperNodeCounts()
	fig := report.NewFigure("Fig. 14: improvement factor", "nodes", "factor")
	fig.XLog = true
	sm := fig.NewSeries("Improvement (Measured)")
	sb := fig.NewSeries("Improvement (best)")
	for _, n := range counts {
		sm.Add(float64(n), sweep3d.Improvement(cfg, n, sweep3d.CellMeasured))
		sb.Add(float64(n), sweep3d.Improvement(cfg, n, sweep3d.CellBest))
	}
	a.Figures = append(a.Figures, fig)

	m3060 := sm.Last().Y
	b3060 := sb.Last().Y
	a.Checks.RatioInBand("measured improvement @3060", m3060, 1, 1.6, 2.45)
	a.Checks.RatioInBand("best improvement @3060", b3060, 1, 2.4, 4.5)
	a.Checks.True("best exceeds measured at scale", b3060 > m3060, "")
	a.Checks.True("best advantage grows with scale", sb.Last().Y > sb.Points[0].Y, "")
	m1 := sweep3d.CellIterationTime(cfg, 1, sweep3d.CellMeasured)
	b1 := sweep3d.CellIterationTime(cfg, 1, sweep3d.CellBest)
	a.Checks.RatioInBand("measured close to best at 1 node", float64(m1), float64(b1), 0.95, 1.4)
	m := sweep3d.CellIterationTime(cfg, 3060, sweep3d.CellMeasured)
	b := sweep3d.CellIterationTime(cfg, 3060, sweep3d.CellBest)
	a.Checks.RatioInBand("measured/best gap @3060", float64(m), float64(b), 1.25, 2.2)
	return a
}
