package experiments

import (
	"fmt"

	"roadrunner/internal/collectives"
	"roadrunner/internal/scenario"
	"roadrunner/internal/units"
)

// The topo-compare experiment is the what-if counterpart of the
// reproduction suite: the saturation collectives and the captured
// Sweep3D replay run side by side on every registered fabric — the
// paper's 2:1-tapered fat-tree, the same tree with ECMP-style hash
// spreading, a full-bisection (1:1) tree, and a 3D torus. The checks
// pin the cross-fabric laws: the fat-tree column equals a direct run of
// the legacy configuration (the topology interface reproduces the
// default fabric exactly), the tree family shares one uncongested
// baseline (same hop structure), the full-bisection tree removes
// alltoall queueing entirely while the tapered trees throttle and the
// torus throttles hardest, neighbor exchanges ride every fabric
// untouched, and only the tree family ever charges the uplink tier.
func init() {
	register("topo-compare", "Collectives and Sweep3D replay across fabric topologies", "§II.C what-if",
		"Runs the saturation collectives and the captured Sweep3D replay on the tapered/ECMP/full-bisection fat-trees and the 3D torus, comparing congestion behavior per fabric",
		runTopoCompare)
}

func runTopoCompare() *Artifact {
	a := newArtifact("topo-compare", "Collectives and Sweep3D replay across fabric topologies", "§II.C what-if")
	rep, err := scenario.TopoCompare()
	if err != nil {
		a.Checks.True("sweep runs", false, err.Error())
		return a
	}

	t := newTableHelper(fmt.Sprintf("Collectives across fabrics (%d nodes, %v blocks)",
		scenario.TopoCompareNodes, units.Size(scenario.TopoCompareSize)),
		"topology", "op", "baseline", "congested", "x", "queued", "total wait", "uplink wait")
	type key struct {
		topo string
		op   collectives.Op
	}
	coll := map[key]scenario.TopoCompareCollectivePoint{}
	for _, p := range rep.Collectives {
		coll[key{p.Topology, p.Op}] = p
		t.AddRow(p.Topology, string(p.Op), p.Baseline.String(), p.Congested.String(),
			fmt.Sprintf("%.3f", p.Slowdown), p.QueuedFlows, p.TotalWait.String(), p.UplinkWait.String())
	}
	t.AddNote("every point is an independent simulation; the torus has no uplink tier, so its uplink column is structurally zero")
	a.Tables = append(a.Tables, t)

	tr := newTableHelper(fmt.Sprintf("Sweep3D replay across fabrics (%d ranks, %d sends)", rep.TraceRanks, rep.TraceSends),
		"topology", "placement", "hops/msg", "baseline", "congested", "x", "queued", "total wait")
	type rkey struct{ topo, place string }
	rply := map[rkey]scenario.TopoCompareReplayPoint{}
	for _, p := range rep.Replays {
		rply[rkey{p.Topology, p.Placement}] = p
		tr.AddRow(p.Topology, p.Placement, fmt.Sprintf("%.2f", p.MeanHops),
			p.Baseline.String(), p.Congested.String(), fmt.Sprintf("%.4f", p.Slowdown),
			p.QueuedFlows, p.TotalWait.String())
	}
	tr.AddNote("same captured wavefront schedule on every fabric; only the wiring under it changes")
	a.Tables = append(a.Tables, tr)

	a2a, ring := scenario.TopoCompareOps[0], scenario.TopoCompareOps[1]
	tap := coll[key{"fattree", a2a}]
	ecmp := coll[key{"fattree-ecmp", a2a}]
	full := coll[key{"fattree-full", a2a}]
	tor := coll[key{"torus", a2a}]
	a.Checks.True("all fabrics measured", len(rep.Collectives) == 2*len(rep.Topologies) &&
		len(rep.Replays) == 2*len(rep.Topologies),
		fmt.Sprintf("%d collective + %d replay points over %v", len(rep.Collectives), len(rep.Replays), rep.Topologies))

	// The fat-tree column must equal a direct run of the legacy (pre
	// topology interface) configuration — the pin that the interface
	// reproduces the default fabric event-for-event.
	legBaseCfg, errB := collectives.DefaultConfig(scenario.TopoCompareNodes)
	legCongCfg, errC := collectives.CongestedConfig(scenario.TopoCompareNodes)
	if errB != nil || errC != nil {
		a.Checks.True("legacy-config reference runs", false, fmt.Sprint(errB, errC))
		return a
	}
	legBase, errB := collectives.Run(legBaseCfg, a2a, scenario.TopoCompareSize)
	legCong, errC := collectives.Run(legCongCfg, a2a, scenario.TopoCompareSize)
	if errB != nil || errC != nil {
		a.Checks.True("legacy-config reference runs", false, fmt.Sprint(errB, errC))
		return a
	}
	a.Checks.True("fat-tree column equals the legacy default-fabric run",
		tap.Baseline == legBase.Time && tap.Congested == legCong.Time &&
			tap.QueuedFlows == legCong.Congestion.Queued && tap.TotalWait == legCong.Congestion.TotalWait,
		fmt.Sprintf("%v / %v, %d queued", tap.Congested, tap.Baseline, tap.QueuedFlows))

	// On the infinite-capacity fabric only hop latencies matter, and all
	// three tree variants route every pair in the same number of hops.
	a.Checks.True("tree family shares one uncongested baseline",
		tap.Baseline == ecmp.Baseline && tap.Baseline == full.Baseline,
		fmt.Sprintf("alltoall baseline %v on all three trees", tap.Baseline))

	// The 2:1 taper is the whole story of the tapered alltoall: both
	// hashed variants throttle, the 1:1 tree does not queue a single
	// flow, and its congested run is indistinguishable from baseline.
	a.Checks.RatioInBand("tapered fat-tree alltoall throttles at the taper",
		float64(tap.Congested), float64(tap.Baseline), 1.5, 2.5)
	a.Checks.True("tapered trees queue on the uplink tier",
		tap.UplinkQueued > 0 && ecmp.UplinkQueued > 0,
		fmt.Sprintf("%d and %d uplink-queued flows", tap.UplinkQueued, ecmp.UplinkQueued))
	a.Checks.True("full-bisection tree removes alltoall queueing entirely",
		full.QueuedFlows == 0 && full.Congested == full.Baseline,
		fmt.Sprintf("congested %v == baseline, 0 queued flows", full.Congested))

	// Dimension-ordered torus routing concentrates the dense exchange on
	// few ring cables: the worst fabric for alltoall, and structurally
	// without an uplink tier to charge.
	a.Checks.True("torus throttles alltoall hardest",
		tor.Slowdown > tap.Slowdown && tor.Slowdown > ecmp.Slowdown,
		fmt.Sprintf("torus %.2fx vs trees %.2fx / %.2fx", tor.Slowdown, tap.Slowdown, ecmp.Slowdown))
	a.Checks.True("torus census never touches an uplink tier",
		tor.QueuedFlows > 0 && tor.UplinkQueued == 0 && tor.UplinkWait == 0,
		fmt.Sprintf("%d queued flows, all on torus cables", tor.QueuedFlows))

	// Ring allgather only ever talks to a neighbor: it rides every
	// fabric — including the torus — completely unthrottled.
	for _, topo := range rep.Topologies {
		p := coll[key{topo, ring}]
		a.Checks.True(fmt.Sprintf("allgather rides %s untouched", topo),
			p.QueuedFlows == 0 && p.Congested == p.Baseline,
			fmt.Sprintf("congested %v == baseline", p.Congested))
	}

	// Replay: the wavefront's boundary exchanges are sparse, so the
	// compute-interleaved iteration moves by at most a fraction of a
	// percent on any fabric; the torus pays more hops than any tree
	// under both placements.
	for _, p := range rep.Replays {
		a.Checks.RatioInBand(fmt.Sprintf("%s/%s replay rides the fabric", p.Topology, p.Placement),
			float64(p.Congested), float64(p.Baseline), 0.95, 1.05)
	}
	for _, place := range scenario.TopoComparePlacementNames {
		a.Checks.True(fmt.Sprintf("torus pays the deepest %s routes", place),
			rply[rkey{"torus", place}].MeanHops > rply[rkey{"fattree", place}].MeanHops,
			fmt.Sprintf("%.2f vs %.2f hops/msg", rply[rkey{"torus", place}].MeanHops,
				rply[rkey{"fattree", place}].MeanHops))
	}
	// The three tree variants replay the block placement identically:
	// an 8-rank-per-crossbar block never leaves its CU, and below the
	// uplink tier the variants are the same wiring.
	a.Checks.True("tree variants identical below the uplink tier",
		rply[rkey{"fattree", "block"}].Congested == rply[rkey{"fattree-full", "block"}].Congested &&
			rply[rkey{"fattree", "block"}].Congested == rply[rkey{"fattree-ecmp", "block"}].Congested,
		fmt.Sprintf("block replay %v on all three trees", rply[rkey{"fattree", "block"}].Congested))
	return a
}
