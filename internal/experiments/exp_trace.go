package experiments

import (
	"fmt"

	"roadrunner/internal/scenario"
)

// The trace-replay experiment runs the first real application phase over
// the congested transport: a captured Sweep3D source iteration (the KBA
// wavefront schedule of an 8x8 rank grid) replayed under block, strided
// and packed rank→node placements, each on the wormhole and the
// infinite-capacity fabric, full-schedule and communication-only. The
// checks pin the placement laws the replay exposes: hop profiles order
// as block < strided while HCA sharing makes packed the slowest bare
// schedule despite the fewest hops, only the strided mapping queues on
// the 2:1-tapered uplink tier, and the compute-dominated iteration
// itself rides the taper essentially unthrottled — the property the
// Roadrunner designers sized the reduced tree around.
func init() {
	register("trace-replay", "Sweep3D trace replay vs rank placement", "§V.A / §II.C scenario",
		"Captures one Sweep3D iteration as a point-to-point trace and replays it over the congested transport under block/strided/packed placements",
		runTraceReplay)
}

func runTraceReplay() *Artifact {
	a := newArtifact("trace-replay", "Sweep3D trace replay vs rank placement", "§V.A / §II.C scenario")
	rep, err := scenario.TraceReplay()
	if err != nil {
		a.Checks.True("sweep runs", false, err.Error())
		return a
	}

	tc := newTableHelper("Captured trace", "quantity", "value")
	tc.AddRow("trace", rep.TraceName)
	tc.AddRow("ranks", rep.Ranks)
	tc.AddRow("records", rep.Records)
	tc.AddRow("sends", rep.Sends)
	tc.AddRow("payload total", rep.TraceBytes.String())
	tc.AddRow("capture iteration (CML path)", rep.CaptureIteration.String())
	tc.AddNote("one source iteration of Sweep3D %dx%d on the %v grid, captured from the DES run",
		scenario.TraceReplayPx, scenario.TraceReplayPy, scenario.TraceReplayGrid)
	a.Tables = append(a.Tables, tc)

	t := newTableHelper("Replay vs placement (congested wormhole fabric vs infinite capacity)",
		"placement", "hops/msg", "wire bytes", "baseline", "congested", "x", "comm base", "comm cong", "x", "uplink wait")
	byName := map[string]scenario.TraceReplayPoint{}
	for _, p := range rep.Points {
		byName[p.Placement] = p
		t.AddRow(p.Placement, fmt.Sprintf("%.2f", p.MeanHops), p.WireBytes.String(),
			p.Baseline.String(), p.Congested.String(), fmt.Sprintf("%.3f", p.Slowdown),
			p.CommBaseline.String(), p.CommCongested.String(), fmt.Sprintf("%.3f", p.CommSlowdown),
			p.UplinkWait.String())
	}
	t.AddNote("comm columns replay the schedule with compute records stripped")
	a.Tables = append(a.Tables, t)

	block, okB := byName["block"]
	strided, okS := byName["strided"]
	packed, okP := byName["packed"]
	a.Checks.True("all three placements replayed", okB && okS && okP,
		fmt.Sprintf("%d points", len(rep.Points)))
	if !okB || !okS || !okP {
		return a
	}

	th := newTableHelper(fmt.Sprintf("Hottest links, strided placement (stride %d, congested)", scenario.TraceReplayStride),
		"link", "msgs", "wait", "utilization")
	for _, u := range strided.Top {
		th.AddRow(u.Link.String(), u.Messages, u.Wait.String(), fmt.Sprintf("%.1f%%", 100*u.Utilization))
	}
	th.AddNote("consecutive ranks in consecutive CUs: every boundary exchange crosses the uplink tier")
	a.Tables = append(a.Tables, th)

	// The schedule is identical under every placement; only the fabric
	// path changes.
	a.Checks.True("message count is placement-invariant",
		block.Messages == strided.Messages && block.Messages == packed.Messages &&
			int(block.Messages) == rep.Sends,
		fmt.Sprintf("%d messages = %d trace sends", block.Messages, rep.Sends))
	a.Checks.True("packed placement keeps boundary exchanges on-node",
		packed.WireBytes < block.WireBytes && block.WireBytes == strided.WireBytes,
		"intra-node messages never reach the wire")
	a.Checks.True("hop profile orders packed < block < strided",
		packed.MeanHops < block.MeanHops && block.MeanHops < strided.MeanHops,
		fmt.Sprintf("%.2f / %.2f / %.2f hops per message", packed.MeanHops, block.MeanHops, strided.MeanHops))

	// Full-schedule replays: Sweep3D interleaves its exchanges with
	// block compute, so the congested fabric moves the iteration by at
	// most a few percent under every mapping — the wavefront rides the
	// 2:1 taper the way the designers intended.
	for _, p := range []scenario.TraceReplayPoint{block, strided, packed} {
		a.Checks.RatioInBand(fmt.Sprintf("%s iteration rides the taper", p.Placement),
			float64(p.Congested), float64(p.Baseline), 0.95, 1.05)
	}

	// Bare communication schedule: the strided mapping pays for its
	// deep routes, and packed pays even more for four ranks sharing each
	// node's HCA — placement sensitivity the hop census alone
	// mispredicts (packed has the fewest hops and the slowest schedule).
	a.Checks.True("strided comm schedule slower than block",
		strided.CommBaseline > block.CommBaseline,
		fmt.Sprintf("%v vs %v", strided.CommBaseline, block.CommBaseline))
	a.Checks.True("HCA sharing beats hop count: packed comm slowest despite fewest hops",
		packed.CommBaseline > strided.CommBaseline && packed.MeanHops < strided.MeanHops,
		fmt.Sprintf("packed %v at %.2f hops vs strided %v at %.2f hops",
			packed.CommBaseline, packed.MeanHops, strided.CommBaseline, strided.MeanHops))
	a.Checks.RatioInBand("comm schedule placement spread (slowest/fastest)",
		float64(packed.CommBaseline), float64(block.CommBaseline), 1.2, 2.5)

	// Congestion census: only the strided mapping touches the tapered
	// uplinks; block and packed stay inside one CU's crossbars.
	a.Checks.True("strided queues on the uplink tier",
		strided.UplinkQueued > 0 && strided.UplinkWait > 0,
		fmt.Sprintf("%d queued flows, %v waiting", strided.UplinkQueued, strided.UplinkWait))
	a.Checks.True("block and packed leave the uplinks untouched",
		block.UplinkQueued == 0 && packed.UplinkQueued == 0,
		"both mappings fit inside CU 1")
	a.Checks.True("block placement never queues at all", block.QueuedFlows == 0,
		"neighbor exchanges spread cleanly over the CU spines")

	// The replay crosses the host-MPI path; the capture ran over the
	// CML path (SPE->PPE->DaCS->IB). The replayed iteration must come
	// out faster than the capture's, by the Fig. 6 path-cost gap.
	a.Checks.RatioInBand("host-path replay faster than Cell-path capture",
		float64(block.Baseline), float64(rep.CaptureIteration), 0.80, 1.0)
	return a
}
