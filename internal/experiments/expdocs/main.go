// Command expdocs renders the experiment registry to markdown
// (docs/experiments.md). It is the `go generate` target of
// internal/experiments and CI's staleness gate:
//
//	expdocs -o docs/experiments.md        # (re)write the page
//	expdocs -check docs/experiments.md    # exit 1 if the page is stale
//
// Exit status: 0 success / current, 1 stale or write error, 2 usage.
package main

import (
	"flag"
	"fmt"
	"os"

	"roadrunner/internal/experiments"
)

func main() {
	os.Exit(run())
}

func run() int {
	out := flag.String("o", "", "write the generated page to this path")
	check := flag.String("check", "", "compare the generated page against this path; fail if they differ")
	flag.Parse()
	if (*out == "") == (*check == "") {
		fmt.Fprintln(os.Stderr, "expdocs: exactly one of -o or -check is required")
		flag.Usage()
		return 2
	}
	want := experiments.DocsMarkdown()
	if *out != "" {
		if err := os.WriteFile(*out, []byte(want), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "expdocs: %v\n", err)
			return 1
		}
		fmt.Printf("wrote %s (%d experiments)\n", *out, len(experiments.All()))
		return 0
	}
	got, err := os.ReadFile(*check)
	if err != nil {
		fmt.Fprintf(os.Stderr, "expdocs: %v\n", err)
		return 1
	}
	if string(got) != want {
		fmt.Fprintf(os.Stderr, "expdocs: %s is stale; regenerate with `go generate ./internal/experiments`\n", *check)
		return 1
	}
	fmt.Printf("%s is current\n", *check)
	return 0
}
