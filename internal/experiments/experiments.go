// Package experiments maps every table and figure of the paper's
// evaluation (plus the headline LINPACK/Green500 numbers and a set of
// design-choice ablations) to a runnable experiment that regenerates it
// from the models and checks the result against the paper.
package experiments

import (
	"fmt"
	"sort"

	"roadrunner/internal/report"
)

// Artifact is one experiment's output: rendered tables and figures plus
// the paper-vs-measured checks.
type Artifact struct {
	ID       string
	Title    string
	PaperRef string
	Tables   []*report.Table
	Figures  []*report.Figure
	Checks   report.Checks
}

// String renders the artifact for terminal output.
func (a *Artifact) String() string {
	s := fmt.Sprintf("### %s — %s (%s)\n\n", a.ID, a.Title, a.PaperRef)
	for _, t := range a.Tables {
		s += t.String() + "\n"
	}
	for _, f := range a.Figures {
		s += f.String() + "\n"
	}
	s += a.Checks.String()
	return s
}

// Experiment is a registered, runnable reproduction of one artifact.
type Experiment struct {
	ID       string
	Title    string
	PaperRef string
	// Description says what the experiment sweeps and what its checks
	// pin, in one sentence; rrexp -list prints it under each entry.
	Description string
	// Expensive marks experiments whose single run dominates the whole
	// suite (the congestion sweep today; its full-machine alltoall is
	// minutes of serial event loop, seconds under parallel DES). The
	// -short test skip and the experiment docs consult this one flag
	// instead of keeping their own ID lists.
	Expensive bool
	Run       func() *Artifact
}

var registry []Experiment

func register(id, title, ref, desc string, run func() *Artifact) {
	if desc == "" {
		panic("experiments: " + id + " registered without a description")
	}
	registry = append(registry, Experiment{ID: id, Title: title, PaperRef: ref, Description: desc, Run: run})
}

// registerExpensive registers an experiment whose single run dominates
// the whole rest of the suite.
func registerExpensive(id, title, ref, desc string, run func() *Artifact) {
	register(id, title, ref, desc, run)
	registry[len(registry)-1].Expensive = true
}

// newArtifact starts an artifact for a registered experiment.
func newArtifact(id, title, ref string) *Artifact {
	return &Artifact{ID: id, Title: title, PaperRef: ref}
}

// All returns every experiment in registration (paper) order.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// IDs returns the sorted experiment identifiers.
func IDs() []string {
	ids := make([]string, len(registry))
	for i, e := range registry {
		ids[i] = e.ID
	}
	sort.Strings(ids)
	return ids
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
