package experiments

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	// Every table and figure of the paper's evaluation must be present.
	want := []string{
		"table1", "table2", "table3", "table4",
		"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
		"fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
		"linpack",
		// Collective-scenario experiments (beyond the paper's figures).
		"coll-scaling", "coll-crossover", "coll-cu-exchange", "coll-linpack-panel",
		"coll-saturation",
		// Trace replay: a real application phase over the congested
		// transport.
		"trace-replay",
		// Machine-level job-stream scheduling over the facility
		// simulator.
		"facility-stream",
	}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %q missing", id)
		}
	}
	for _, e := range All() {
		if e.Description == "" {
			t.Errorf("experiment %q has no description for rrexp -list", e.ID)
		}
	}
	if len(All()) < len(want)+3 {
		t.Errorf("expected ablations beyond the paper set; total %d", len(All()))
	}
}

func TestAllExperimentsPass(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			if testing.Short() && e.Expensive {
				t.Skip("expensive experiment skipped under -short")
			}
			a := e.Run()
			if a.ID != e.ID {
				t.Errorf("artifact ID %q != %q", a.ID, e.ID)
			}
			if len(a.Checks.Items) == 0 {
				t.Fatalf("%s: no checks", e.ID)
			}
			for _, f := range a.Checks.Failures() {
				t.Errorf("%s: %s", e.ID, f.String())
			}
			if len(a.Tables) == 0 && len(a.Figures) == 0 {
				t.Errorf("%s: no output artifact", e.ID)
			}
		})
	}
}

func TestArtifactRendering(t *testing.T) {
	e, _ := ByID("table1")
	s := e.Run().String()
	for _, want := range []string{"table1", "Table I", "1892", "PASS"} {
		if !strings.Contains(s, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestByIDUnknown(t *testing.T) {
	if _, ok := ByID("nope"); ok {
		t.Error("found nonexistent experiment")
	}
}

func TestIDsSorted(t *testing.T) {
	ids := IDs()
	for i := 1; i < len(ids); i++ {
		if ids[i] < ids[i-1] {
			t.Fatalf("IDs not sorted: %v", ids)
		}
	}
}

func TestDeterministicReruns(t *testing.T) {
	// Running an experiment twice yields identical rendered output.
	for _, id := range []string{"fig6", "fig13", "table3"} {
		e, _ := ByID(id)
		a := e.Run().String()
		b := e.Run().String()
		if a != b {
			t.Errorf("%s: nondeterministic output", id)
		}
	}
}
