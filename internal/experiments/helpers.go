package experiments

import "roadrunner/internal/report"

// newTableHelper creates a report table (thin wrapper keeping experiment
// files terse).
func newTableHelper(title string, cols ...string) *report.Table {
	return report.NewTable(title, cols...)
}
