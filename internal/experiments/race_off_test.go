//go:build !race

package experiments

// raceDetectorEnabled reports whether the race detector instruments this
// test binary; see race_on_test.go.
const raceDetectorEnabled = false
