//go:build race

package experiments

// raceDetectorEnabled lets the test suite skip the one experiment whose
// full-machine alltoall (two ~9.4M-message DES runs) is out of a race-
// instrumented binary's time budget. The non-instrumented suite and the
// CI rrexp job still run it end to end, and the congestion machinery
// itself is race-tested through the transport, collectives and scenario
// packages.
const raceDetectorEnabled = true
