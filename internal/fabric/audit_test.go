package fabric

import (
	"testing"

	"roadrunner/internal/params"
)

// TestExhaustiveHopAuditFullScale audits every one of the 3,060 x 3,060
// node pairs of the full machine against Table I: each pair is
// classified (same crossbar, same CU, same/cross switch side, same/other
// crossbar index) and its hop count checked against the class, and every
// source's census is checked against the closed-form class populations.
// Table I itself is the node-0 row of this audit.
func TestExhaustiveHopAuditFullScale(t *testing.T) {
	s := New()
	nodes := s.Nodes()

	// computeNodesOnXbar: crossbars 0..21 carry 8 compute nodes, crossbar
	// 22 carries the last 4 (plus I/O ports the census does not count).
	computeNodesOnXbar := func(k int) int {
		if k < 22 {
			return 8
		}
		return 4
	}

	classCount := map[string]int{}
	for a := 0; a < nodes; a++ {
		na := FromGlobal(a)
		for b := 0; b < nodes; b++ {
			nb := FromGlobal(b)
			class := s.PairClass(na, nb)
			h := s.Hops(na, nb)
			if want := ClassHops[class]; h != want {
				t.Fatalf("%v -> %v: class %s has %d hops, want %d", na, nb, class, h, want)
			}
			if hBack := s.Hops(nb, na); hBack != h {
				t.Fatalf("%v <-> %v asymmetric: %d vs %d", na, nb, h, hBack)
			}
			classCount[class]++
		}
	}

	// Closed-form populations summed over all sources. A source on a
	// crossbar with m compute nodes sees m-1 same-crossbar peers, m
	// same-index peers per other CU of its side, and so on; its side has
	// sameSide CUs and the other side 17 - sameSide.
	want := map[string]int{}
	for cu := 0; cu < params.NumCUs; cu++ {
		sameSide := params.FirstSideCUs
		if cu >= params.FirstSideCUs {
			sameSide = params.LastSideCUs
		}
		otherSide := params.NumCUs - sameSide
		for n := 0; n < params.NodesPerCU; n++ {
			m := computeNodesOnXbar(LineXbar(n))
			want["self"]++
			want["same-xbar"] += m - 1
			want["same-cu"] += params.NodesPerCU - m
			want["same-side-same-xbar"] += (sameSide - 1) * m
			want["same-side-other-xbar"] += (sameSide - 1) * (params.NodesPerCU - m)
			want["cross-side-same-xbar"] += otherSide * m
			want["cross-side-other-xbar"] += otherSide * (params.NodesPerCU - m)
		}
	}
	for class, n := range want {
		if classCount[class] != n {
			t.Errorf("class %s: %d pairs, want %d", class, classCount[class], n)
		}
	}
	total := 0
	for _, n := range classCount {
		total += n
	}
	if total != nodes*nodes {
		t.Errorf("classified %d pairs, want %d", total, nodes*nodes)
	}

	// Node 0's row of the audit is Table I verbatim.
	c := s.Census(NodeID{0, 0})
	tableI := []struct {
		name string
		got  int
		want int
	}{
		{"self", c.Self, 1},
		{"same crossbar", c.SameXbar, 7},
		{"same CU", c.SameCU, 172},
		{"CUs 2-12 same crossbar", c.NearCUsSameXbar, 88},
		{"CUs 2-12 other crossbar", c.NearCUsOtherXbar, 1892},
		{"CUs 13-17 same crossbar", c.FarCUsSameXbar, 40},
		{"CUs 13-17 other crossbar", c.FarCUsOtherXbar, 860},
	}
	for _, row := range tableI {
		if row.got != row.want {
			t.Errorf("Table I %s: %d, want %d", row.name, row.got, row.want)
		}
	}
}

// TestHopsGlobalMatchesHops cross-checks the global-index route query
// used by rank->node mappings.
func TestHopsGlobalMatchesHops(t *testing.T) {
	s := New()
	for _, pair := range [][2]int{{0, 0}, {0, 1}, {0, 179}, {0, 180}, {5, 2345}, {2000, 3059}} {
		a, b := FromGlobal(pair[0]), FromGlobal(pair[1])
		if s.HopsGlobal(pair[0], pair[1]) != s.Hops(a, b) {
			t.Errorf("HopsGlobal(%d, %d) != Hops(%v, %v)", pair[0], pair[1], a, b)
		}
	}
}

// TestPairClassValues pins one example of each class.
func TestPairClassValues(t *testing.T) {
	s := New()
	cases := []struct {
		a, b  NodeID
		class string
	}{
		{NodeID{0, 0}, NodeID{0, 0}, "self"},
		{NodeID{0, 0}, NodeID{0, 7}, "same-xbar"},
		{NodeID{0, 0}, NodeID{0, 100}, "same-cu"},
		{NodeID{0, 0}, NodeID{5, 3}, "same-side-same-xbar"},
		{NodeID{0, 0}, NodeID{5, 100}, "same-side-other-xbar"},
		{NodeID{0, 0}, NodeID{14, 3}, "cross-side-same-xbar"},
		{NodeID{0, 0}, NodeID{14, 100}, "cross-side-other-xbar"},
	}
	for _, tc := range cases {
		if got := s.PairClass(tc.a, tc.b); got != tc.class {
			t.Errorf("PairClass(%v, %v) = %s, want %s", tc.a, tc.b, got, tc.class)
		}
	}
}
