// Package fabric models Roadrunner's InfiniBand plant at the crossbar
// level: the Voltaire ISR 9288 switch inside each Compute Unit (CU), the
// eight inter-CU switches forming the 2:1 reduced fat tree, and the exact
// wiring the paper describes in §II.B-C. Hop counts (Table I), the
// latency map of Fig. 10 and the structural audit of Fig. 2 all derive
// from routing over this graph.
//
// Structure, following the paper:
//
//   - Each CU's ISR 9288 contains 36 24-port crossbars: 24 "line"
//     crossbars carrying external ports and 12 "spine" crossbars forming
//     the second level. Line crossbar k carries 8 external node/IO ports,
//     4 external uplink ports and 12 links to the spines (one per spine).
//     22 line crossbars carry 8 compute nodes; one carries 4 compute
//     nodes + 4 I/O nodes; one carries 8 I/O nodes.
//   - 96 uplinks per CU spread over the 8 inter-CU switches, 12 per
//     switch. Line crossbar k's four uplinks go to the four switches of
//     parity k mod 2 (switches k%2, k%2+2, k%2+4, k%2+6), landing on
//     crossbar k/2 of the switch's CU-facing level.
//   - Each inter-CU switch has three levels of 12 crossbars: the first
//     level serves CUs 1-12 (one port per CU per crossbar), the last
//     level serves CUs 13-17, and the middle level connects the two.
//
// With this wiring a message from node 0 reaches: its 7 crossbar
// neighbours in 1 hop; the rest of its CU in 3; the same-index crossbar
// of CUs 2-12 in 3 (sharing a first-level switch crossbar); other nodes
// of CUs 2-12 in 5; the same-index crossbar of CUs 13-17 in 5; and the
// rest of CUs 13-17 in 7 — exactly Table I.
package fabric

import (
	"fmt"

	"roadrunner/internal/params"
	"roadrunner/internal/units"
)

// NodeID identifies a compute node: CU index (0-based) and node index
// within the CU (0..179).
type NodeID struct {
	CU   int
	Node int
}

// GlobalID returns the node's system-wide index (0..3059), numbering
// nodes CU-major as Fig. 10 does.
func (n NodeID) GlobalID() int { return n.CU*params.NodesPerCU + n.Node }

// FromGlobal converts a system-wide index back to a NodeID.
func FromGlobal(g int) NodeID {
	return NodeID{CU: g / params.NodesPerCU, Node: g % params.NodesPerCU}
}

// String renders the node as CUx/ny.
func (n NodeID) String() string { return fmt.Sprintf("CU%d/n%d", n.CU+1, n.Node) }

// PairKey packs a directed node pair into one comparable word: the
// canonical key for per-pair caches (the transport's route/hop cache
// keys every (src, dst) it has routed with this). Global IDs are far
// below 2^32, so the packing is collision-free.
func PairKey(a, b NodeID) uint64 {
	return uint64(a.GlobalID())<<32 | uint64(b.GlobalID())
}

// System is the full interconnect model: a Topology implementation
// (the default fat-tree, a torus, ...) plus the system-wide accessors
// the paper's metrics derive from. Construct with New, NewScaled or
// NewTopology; the zero value has no topology and panics on use.
type System struct {
	CUs  int // number of CUs (17 in Roadrunner; smaller for tests)
	topo Topology
}

// New returns the full 17-CU Roadrunner fabric (the default fat-tree).
func New() *System { return NewScaled(params.NumCUs) }

// NewScaled returns a default-fat-tree fabric with the given CU count
// (1..24), for experiments below full scale.
func NewScaled(cus int) *System {
	return &System{CUs: cus, topo: newTree(cus, DefaultTopology, 1, false)}
}

// Nodes returns the total compute-node count.
func (s *System) Nodes() int { return s.CUs * params.NodesPerCU }

// nodesPerLineXbar is how many compute nodes share one line crossbar.
const nodesPerLineXbar = 8

// LineXbar returns the index (0..23) of the CU line crossbar a node is
// attached to. Nodes fill crossbars 0..21 with 8 each; crossbar 22 takes
// the last 4 compute nodes (plus 4 I/O nodes); crossbar 23 is all I/O.
func LineXbar(node int) int { return node / nodesPerLineXbar }

// LineXbarsPerCU is the number of line crossbars carrying compute nodes
// in one CU (the 24th crossbar is I/O-only and never a route endpoint).
const LineXbarsPerCU = (params.NodesPerCU-1)/nodesPerLineXbar + 1

// XbarID returns the system-wide index of the node's line crossbar,
// numbering compute-node crossbars CU-major. Routes leaving a crossbar
// depend only on this index and the destination (every node of one
// crossbar shares the spine/uplink choice and the hop count to any
// other node), which is what makes a crossbar-granular route cache
// exact; see transport.Net.
func (n NodeID) XbarID() int { return n.CU*LineXbarsPerCU + LineXbar(n.Node) }

// UplinkSwitches returns the four inter-CU switches line crossbar k
// connects to (parity wiring: crossbar k uses the switches of parity
// k mod 2).
func UplinkSwitches(k int) [4]int {
	p := k % 2
	return [4]int{p, p + 2, p + 4, p + 6}
}

// SwitchLevelXbar returns the CU-facing crossbar index (0..11) that line
// crossbar k's uplink lands on inside an inter-CU switch. Two line
// crossbars of the same index in different CUs share this crossbar —
// the mechanism behind Table I's 3-hop shortcuts and Fig. 10's dips.
func SwitchLevelXbar(k int) int { return k / 2 }

// firstSide reports whether a CU (0-based) is on the first (CUs 1-12)
// side of the inter-CU switches.
func firstSide(cu int) bool { return cu < params.FirstSideCUs }

// Hops returns the number of crossbars (routers) a minimal route
// between two compute nodes traverses (the paper's Table I metric on
// the fat-tree; ring distance + 1 on the torus).
func (s *System) Hops(a, b NodeID) int { return s.topo.Hops(a, b) }

// HopsGlobal returns Hops between two system-wide node indices, for
// callers that address nodes globally (rrsim's hop query, placement
// tools) rather than by (CU, node).
func (s *System) HopsGlobal(a, b int) int {
	return s.Hops(FromGlobal(a), FromGlobal(b))
}

// PairClass names the destination class of the route from a to b. On
// the fat-tree family these are the Table I classes: "self",
// "same-xbar", "same-cu", "same-side-same-xbar", "same-side-other-xbar",
// "cross-side-same-xbar" or "cross-side-other-xbar"; the class
// determines the hop count, and the audit tests cross-check against
// ClassHops. Other topologies name classes their own way (the torus by
// ring distance).
func (s *System) PairClass(a, b NodeID) string { return s.topo.PairClass(a, b) }

// ClassHops maps each PairClass name to its crossbar hop count (the
// Table I metric). The audit tests cross-check Hops against this table
// for every node pair.
var ClassHops = map[string]int{
	"self":                  0,
	"same-xbar":             1,
	"same-cu":               3,
	"same-side-same-xbar":   3,
	"same-side-other-xbar":  5,
	"cross-side-same-xbar":  5,
	"cross-side-other-xbar": 7,
}

// HopLatency returns the switching latency of a route: 220 ns per
// crossbar hop.
func (s *System) HopLatency(a, b NodeID) units.Time {
	return units.Time(s.Hops(a, b)) * params.SwitchHopLatency
}

// HopCensus tallies destinations from a source node by hop count and
// destination class, reproducing Table I.
type HopCensus struct {
	Self             int
	SameXbar         int
	SameCU           int
	NearCUsSameXbar  int // CUs 2-12, same crossbar index: 3 hops
	NearCUsOtherXbar int // CUs 2-12, different crossbar: 5 hops
	FarCUsSameXbar   int // CUs 13-17, same crossbar: 5 hops
	FarCUsOtherXbar  int // CUs 13-17, different crossbar: 7 hops
	Total            int
	TotalHops        int
	MeanHops         float64
	HopCounts        map[int]int
}

// Census computes the hop census from a source node over all compute
// nodes (including the source itself). The Table I class fields are
// fat-tree terms; on other topologies they stay zero (except Self) and
// the hop-count tally carries the census.
func (s *System) Census(src NodeID) HopCensus {
	c := HopCensus{HopCounts: map[int]int{}}
	_, isTree := s.topo.(*tree)
	for cu := 0; cu < s.CUs; cu++ {
		for n := 0; n < params.NodesPerCU; n++ {
			dst := NodeID{cu, n}
			h := s.Hops(src, dst)
			c.Total++
			c.TotalHops += h
			c.HopCounts[h]++
			switch {
			case dst == src:
				c.Self++
			case !isTree:
				// Non-fat-tree: no crossbar/side classes to tally.
			case cu == src.CU && LineXbar(n) == LineXbar(src.Node):
				c.SameXbar++
			case cu == src.CU:
				c.SameCU++
			case firstSide(cu) == firstSide(src.CU) && LineXbar(n) == LineXbar(src.Node):
				c.NearCUsSameXbar++
			case firstSide(cu) == firstSide(src.CU):
				c.NearCUsOtherXbar++
			case LineXbar(n) == LineXbar(src.Node):
				c.FarCUsSameXbar++
			default:
				c.FarCUsOtherXbar++
			}
		}
	}
	c.MeanHops = float64(c.TotalHops) / float64(c.Total)
	return c
}

// Audit summarises the structural invariants of the fabric (the Fig. 2
// quantities): port counts, uplinks, and taper.
type Audit struct {
	CUs                int
	NodesPerCU         int
	IONodesPerCU       int
	LineXbarsPerCU     int
	SpineXbarsPerCU    int
	ExternalPortsPerCU int // node + I/O ports in use
	UplinksPerCU       int
	InterCUSwitches    int
	UplinksPerCUPerSw  int
	DownLinksTotal     int
	UpLinksTotal       int
	TaperRatio         float64 // down:up bandwidth ratio (2:1 in Roadrunner)
	MaxCUsSupported    int
}

// Audit returns the structural audit of the system. The quantities are
// fat-tree terms; on the full-bisection variant the uplink counts
// double and the taper falls below 1 (more uplink than node bandwidth),
// and on the torus the audit reports the tapered-tree reference plant
// (use Topology/TopologyName to tell fabrics apart).
func (s *System) Audit() Audit {
	planes := 1
	if tr, ok := s.topo.(*tree); ok {
		planes = tr.planes
	}
	down := s.CUs * (params.NodesPerCU + params.IONodesPerCU)
	up := planes * s.CUs * params.UplinksPerCUSwitch * params.InterCUSwitches
	a := Audit{
		CUs:                s.CUs,
		NodesPerCU:         params.NodesPerCU,
		IONodesPerCU:       params.IONodesPerCU,
		LineXbarsPerCU:     params.SwitchLowerXbars,
		SpineXbarsPerCU:    params.SwitchUpperXbars,
		ExternalPortsPerCU: params.NodesPerCU + params.IONodesPerCU,
		UplinksPerCU:       planes * params.UplinksPerCUSwitch * params.InterCUSwitches,
		InterCUSwitches:    params.InterCUSwitches,
		UplinksPerCUPerSw:  planes * params.UplinksPerCUSwitch,
		DownLinksTotal:     down,
		UpLinksTotal:       up,
		TaperRatio:         float64(params.NodesPerCU) / float64(planes*params.UplinksPerCUSwitch*params.InterCUSwitches),
		MaxCUsSupported:    params.MaxCUs,
	}
	return a
}
