package fabric

import (
	"math"
	"testing"
	"testing/quick"

	"roadrunner/internal/params"
	"roadrunner/internal/units"
)

func TestTableIExactCensus(t *testing.T) {
	s := New()
	c := s.Census(NodeID{0, 0})
	// Table I, row by row.
	if c.Self != 1 {
		t.Errorf("self = %d", c.Self)
	}
	if c.SameXbar != 7 {
		t.Errorf("same crossbar = %d, want 7", c.SameXbar)
	}
	if c.SameCU != 172 {
		t.Errorf("same CU = %d, want 172", c.SameCU)
	}
	if c.NearCUsSameXbar != 88 {
		t.Errorf("CUs 2-12 same crossbar = %d, want 88", c.NearCUsSameXbar)
	}
	if c.NearCUsOtherXbar != 1892 {
		t.Errorf("CUs 2-12 different crossbar = %d, want 1892", c.NearCUsOtherXbar)
	}
	if c.FarCUsSameXbar != 40 {
		t.Errorf("CUs 13-17 same crossbar = %d, want 40", c.FarCUsSameXbar)
	}
	if c.FarCUsOtherXbar != 860 {
		t.Errorf("CUs 13-17 different crossbar = %d, want 860", c.FarCUsOtherXbar)
	}
	if c.Total != 3060 {
		t.Errorf("total = %d, want 3060", c.Total)
	}
	// Mean 5.38 hops (paper's average over all 3060 destinations).
	if math.Abs(c.MeanHops-5.38) > 0.01 {
		t.Errorf("mean hops = %.3f, want 5.38", c.MeanHops)
	}
}

func TestHopClassesMatchCounts(t *testing.T) {
	s := New()
	c := s.Census(NodeID{0, 0})
	want := map[int]int{0: 1, 1: 7, 3: 172 + 88, 5: 1892 + 40, 7: 860}
	for h, n := range want {
		if c.HopCounts[h] != n {
			t.Errorf("hop %d count = %d, want %d", h, c.HopCounts[h], n)
		}
	}
	for h := range c.HopCounts {
		if _, ok := want[h]; !ok {
			t.Errorf("unexpected hop count %d", h)
		}
	}
}

func TestHopsSymmetricProperty(t *testing.T) {
	s := New()
	f := func(a, b uint16) bool {
		na := FromGlobal(int(a) % s.Nodes())
		nb := FromGlobal(int(b) % s.Nodes())
		return s.Hops(na, nb) == s.Hops(nb, na)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestHopsValuesProperty(t *testing.T) {
	s := New()
	valid := map[int]bool{0: true, 1: true, 3: true, 5: true, 7: true}
	f := func(a, b uint16) bool {
		na := FromGlobal(int(a) % s.Nodes())
		nb := FromGlobal(int(b) % s.Nodes())
		h := s.Hops(na, nb)
		if !valid[h] {
			return false
		}
		// Zero hops iff identical node.
		return (h == 0) == (na == nb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCensusFromOtherSources(t *testing.T) {
	// The census shape holds from any source on a full crossbar —
	// Table I is written from node 0 but the topology is symmetric for
	// nodes on 8-node crossbars within the same side.
	s := New()
	for _, src := range []NodeID{{0, 5}, {3, 17}, {11, 100}} {
		c := s.Census(src)
		if c.SameXbar != 7 || c.SameCU != 172 {
			t.Errorf("src %v: sameXbar=%d sameCU=%d", src, c.SameXbar, c.SameCU)
		}
		if c.NearCUsSameXbar != 88 {
			t.Errorf("src %v: nearSame=%d", src, c.NearCUsSameXbar)
		}
	}
	// From a far-side CU the near/far split inverts: 4 same-side CUs
	// (13-17 minus self) and 12 far-side.
	c := s.Census(NodeID{14, 0})
	if c.NearCUsSameXbar != 4*8 {
		t.Errorf("far-side src: same-side same-xbar = %d, want 32", c.NearCUsSameXbar)
	}
	if c.FarCUsSameXbar != 12*8 {
		t.Errorf("far-side src: cross-side same-xbar = %d, want 96", c.FarCUsSameXbar)
	}
	if c.Total != 3060 {
		t.Errorf("total = %d", c.Total)
	}
}

func TestHopLatency(t *testing.T) {
	s := New()
	// Same crossbar: 1 hop = 220 ns.
	if got := s.HopLatency(NodeID{0, 0}, NodeID{0, 1}); got != params.SwitchHopLatency {
		t.Errorf("1-hop latency = %v", got)
	}
	// Cross-side different crossbar: 7 hops.
	if got := s.HopLatency(NodeID{0, 0}, NodeID{16, 100}); got != 7*params.SwitchHopLatency {
		t.Errorf("7-hop latency = %v", got)
	}
	if params.SwitchHopLatency != units.FromNanoseconds(220) {
		t.Errorf("hop latency param = %v", params.SwitchHopLatency)
	}
}

func TestScaledSystems(t *testing.T) {
	// A single-CU system has no inter-CU paths.
	s1 := NewScaled(1)
	c := s1.Census(NodeID{0, 0})
	if c.Total != 180 || c.NearCUsSameXbar+c.FarCUsSameXbar != 0 {
		t.Errorf("1-CU census: %+v", c)
	}
	// 12 CUs: all on the first side, no 7-hop routes.
	s12 := NewScaled(12)
	c = s12.Census(NodeID{0, 0})
	if c.HopCounts[7] != 0 {
		t.Errorf("12-CU system has 7-hop routes: %v", c.HopCounts)
	}
	if c.Total != 2160 {
		t.Errorf("12-CU total = %d", c.Total)
	}
}

func TestScaledBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for 0 CUs")
		}
	}()
	NewScaled(0)
}

func TestGlobalIDRoundTrip(t *testing.T) {
	f := func(g uint16) bool {
		id := int(g) % 3060
		n := FromGlobal(id)
		return n.GlobalID() == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAudit(t *testing.T) {
	a := New().Audit()
	if a.UplinksPerCU != 96 {
		t.Errorf("uplinks per CU = %d, want 96", a.UplinksPerCU)
	}
	if a.ExternalPortsPerCU != 192 {
		t.Errorf("external ports = %d, want 192", a.ExternalPortsPerCU)
	}
	// 2:1 reduced fat tree: 180 node links over 96 uplinks.
	if math.Abs(a.TaperRatio-1.875) > 1e-9 {
		t.Errorf("taper = %v, want 1.875 (~2:1)", a.TaperRatio)
	}
	if a.MaxCUsSupported != 24 {
		t.Errorf("max CUs = %d", a.MaxCUsSupported)
	}
	if a.LineXbarsPerCU != 24 || a.SpineXbarsPerCU != 12 {
		t.Errorf("ISR9288 structure: %d/%d", a.LineXbarsPerCU, a.SpineXbarsPerCU)
	}
}

func TestLineXbarLayout(t *testing.T) {
	// Nodes 0-7 on crossbar 0, 176-179 on crossbar 22.
	if LineXbar(0) != 0 || LineXbar(7) != 0 || LineXbar(8) != 1 {
		t.Error("crossbar layout broken")
	}
	if LineXbar(176) != 22 || LineXbar(179) != 22 {
		t.Errorf("last nodes on crossbar %d", LineXbar(179))
	}
}
