package fabric

import (
	"fmt"

	"roadrunner/internal/params"
)

// This file grows the fabric from a hop-count model into an explicit
// link-level topology: Route enumerates the physical cable segments a
// minimal route traverses, one Link per directed channel, consistent with
// Hops (a route between distinct nodes crosses len(Route)-1 crossbars).
//
// The cable inventory follows Fig. 2 exactly:
//
//   - one node-port cable per compute node into its line crossbar
//     (180 per CU);
//   - one spine cable from each line crossbar to each of the 12 spine
//     crossbars inside the CU's ISR 9288 (24x12 per CU);
//   - one uplink cable per (inter-CU switch, CU, slot) with slot 0..11 —
//     12 per switch per CU, 96 per CU in total. 180 node cables over 96
//     uplink cables is the 2:1 taper the congestion model exercises;
//   - the internal segments of an inter-CU switch between its CU-facing
//     level crossbars and the middle stage.
//
// Every cable is full duplex: the Up flag selects the directed channel
// (toward the spine/switch, or back down), and the two directions never
// contend with each other.
//
// Routing is destination-deterministic, the way InfiniBand's static
// linear forwarding tables worked on Roadrunner: the spine crossbar, the
// uplink switch and the middle-stage crossbars are all chosen by hashing
// the destination, so repeated runs take identical paths.
//
// One deliberate abstraction: the parity wiring means a switch of parity
// p is cabled to line crossbars 2s+p only. A route whose destination line
// crossbar has the other parity still exits through the destination
// slot's cable on the source-side switch (the slot-mate crossbar's
// cable). This keeps the per-CU cable inventory exact (12 per switch)
// and the hop counts equal to Table I without modelling the extra
// in-switch pass the paper's counts also fold away.

// LinkKind classifies a fabric cable.
type LinkKind uint8

// The cable classes of the plant.
const (
	// LinkNodePort connects a compute node to its line crossbar.
	LinkNodePort LinkKind = iota
	// LinkSpine connects a line crossbar to a spine crossbar inside the
	// CU's ISR 9288.
	LinkSpine
	// LinkUplink connects a CU line crossbar to an inter-CU switch: the
	// 2:1-tapered cables (12 per switch per CU).
	LinkUplink
	// LinkSwitchInternal is a segment between crossbar stages inside an
	// inter-CU switch.
	LinkSwitchInternal
	// LinkTorus is a neighbor cable of the 3D-torus topology: Sw is the
	// dimension (0 x, 1 y, 2 z), A the lower-coordinate router along it
	// (the wrap cable is size-1), B the flattened perpendicular row,
	// and Up the + direction channel.
	LinkTorus
)

// String names the kind.
func (k LinkKind) String() string {
	switch k {
	case LinkNodePort:
		return "node-port"
	case LinkSpine:
		return "spine"
	case LinkUplink:
		return "uplink"
	case LinkSwitchInternal:
		return "switch-internal"
	case LinkTorus:
		return "torus"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Stage codes for the crossbar levels inside an inter-CU switch, used in
// LinkSwitchInternal endpoints (code = stage*12 + crossbar index).
const (
	stageFirst  = 0 // CU-facing level serving CUs 1-12
	stageMiddle = 1 // middle level
	stageLast   = 2 // CU-facing level serving CUs 13-17
)

// Link identifies one directed channel of one physical cable. Links are
// comparable and totally ordered by Key, so they can key maps and be
// acquired in a deadlock-free global order.
type Link struct {
	Kind LinkKind
	// Up is the traversal direction: toward the spine/switch level on
	// true, back down toward the node on false. The two directions of a
	// full-duplex cable are independent channels.
	Up bool
	// CU owns node-port, spine and uplink cables (-1 for switch-internal).
	CU int
	// Sw is the inter-CU switch for uplink and internal links (-1 else).
	Sw int
	// A, B are kind-specific endpoints:
	//   node-port:       A = node index, B = line crossbar
	//   spine:           A = line crossbar, B = spine crossbar
	//   uplink:          A = slot (switch level crossbar, 0..11), B = 0
	//   switch-internal: A = from stage code, B = to stage code
	A, B int
}

// Key packs the link into an order-preserving uint64 for map keys and the
// global acquisition order: Kind, Up, CU+1 (9 bits), Sw+1 (8 bits) and
// 12 bits each for A and B. A topology whose endpoint indices overflow
// a lane would silently collide keys — merging distinct links' channel
// state and corrupting the global acquisition order — so Key panics on
// overflow instead; the exhaustive per-topology key-uniqueness test
// keeps registered topologies inside the lanes.
func (l Link) Key() uint64 {
	if uint(l.A) > 0xfff || uint(l.B) > 0xfff || uint(l.CU+1) > 0x1ff || uint(l.Sw+1) > 0xff {
		panic(fmt.Sprintf("fabric: link %+v overflows its Key bit lanes", l))
	}
	return uint64(l.Kind)<<42 | boolBit(l.Up)<<41 |
		uint64(l.CU+1)<<32 | uint64(l.Sw+1)<<24 | uint64(l.A)<<12 | uint64(l.B)
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// String renders the link the way the contention reports print it.
func (l Link) String() string {
	switch l.Kind {
	case LinkNodePort:
		if l.Up {
			return fmt.Sprintf("CU%d/n%d->xbar%d", l.CU+1, l.A, l.B)
		}
		return fmt.Sprintf("CU%d/xbar%d->n%d", l.CU+1, l.B, l.A)
	case LinkSpine:
		if l.Up {
			return fmt.Sprintf("CU%d/xbar%d->spine%d", l.CU+1, l.A, l.B)
		}
		return fmt.Sprintf("CU%d/spine%d->xbar%d", l.CU+1, l.B, l.A)
	case LinkUplink:
		plane := ""
		if l.B > 0 { // second cable plane of the full-bisection tree
			plane = ".b"
		}
		if l.Up {
			return fmt.Sprintf("uplink CU%d/slot%d%s->sw%d", l.CU+1, l.A, plane, l.Sw)
		}
		return fmt.Sprintf("uplink sw%d->CU%d/slot%d%s", l.Sw, l.CU+1, l.A, plane)
	case LinkSwitchInternal:
		return fmt.Sprintf("sw%d/%s->%s", l.Sw, stageName(l.A), stageName(l.B))
	case LinkTorus:
		dir := byte('+')
		if !l.Up {
			dir = '-'
		}
		return fmt.Sprintf("torus %c%c/cable%d/row%d", "xyz"[l.Sw], dir, l.A, l.B)
	}
	return fmt.Sprintf("link%+v", struct {
		K    LinkKind
		Up   bool
		CU   int
		Sw   int
		A, B int
	}{l.Kind, l.Up, l.CU, l.Sw, l.A, l.B})
}

// stageName renders a switch-internal stage code (plane-1 codes of the
// full-bisection tree carry a "b:" prefix).
func stageName(code int) string {
	prefix := ""
	if code >= planeStageOffset {
		prefix = "b:"
		code -= planeStageOffset
	}
	idx := code % params.InterCULevelsXbars
	switch code / params.InterCULevelsXbars {
	case stageFirst:
		return prefix + fmt.Sprintf("first%d", idx)
	case stageMiddle:
		return prefix + fmt.Sprintf("mid%d", idx)
	default:
		return prefix + fmt.Sprintf("last%d", idx)
	}
}

// RouteMax is the longest fat-tree route length (cross-side, different
// crossbar index: node + uplink + 4 internal + downlink + node). Other
// topologies bound their routes with Topology.MaxRouteLen; size route
// buffers with System.MaxRouteLen when the topology is not fixed.
const RouteMax = 8

// Route returns the directed link sequence of the minimal route from a to
// b: empty for a == b, otherwise len(Route) == Hops(a,b) + 1 (a route
// over h crossbars has a cable into the first, between each pair, and out
// of the last).
func (s *System) Route(a, b NodeID) []Link {
	return s.RouteInto(nil, a, b)
}

// RouteInto appends the route to buf (use a MaxRouteLen-backed slice to
// route without allocating) and returns the extended slice.
func (s *System) RouteInto(buf []Link, a, b NodeID) []Link {
	return s.topo.RouteInto(buf, a, b)
}

// midHash picks the middle-stage crossbar for a routing hash. Mixing the
// high bits in (rather than dst mod 12 alone) spreads destinations that
// are whole CU-multiples apart over different middle crossbars, the way
// a balanced linear forwarding table would — a bare modulus sends e.g.
// global nodes 0 and 180 through the same middle cable and manufactures
// a hotspot the real subnet manager's routing avoided.
func midHash(dst int) int {
	return (dst + dst/params.InterCULevelsXbars) % params.InterCULevelsXbars
}

// sideStage returns the CU-facing stage code base for a CU's side of the
// inter-CU switches.
func sideStage(cu int) int {
	if firstSide(cu) {
		return stageFirst
	}
	return stageLast
}
