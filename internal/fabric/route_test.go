package fabric

import (
	"testing"

	"roadrunner/internal/params"
)

// TestRouteConsistentWithHops checks the tentpole invariant on every pair
// of a 2-CU fabric and a cross-side sample of the full machine: a route
// between distinct nodes enters one crossbar, crosses one cable between
// each consecutive pair, and exits the last — len(Route) == Hops + 1.
func TestRouteConsistentWithHops(t *testing.T) {
	check := func(s *System, a, b NodeID) {
		t.Helper()
		r := s.Route(a, b)
		if a == b {
			if len(r) != 0 {
				t.Fatalf("self route %v non-empty: %v", a, r)
			}
			return
		}
		if want := s.Hops(a, b) + 1; len(r) != want {
			t.Fatalf("%v->%v (%s): %d links, want %d: %v",
				a, b, s.PairClass(a, b), len(r), want, r)
		}
		first, last := r[0], r[len(r)-1]
		if first.Kind != LinkNodePort || !first.Up || first.CU != a.CU || first.A != a.Node {
			t.Fatalf("%v->%v: first link %v not the source node port", a, b, first)
		}
		if last.Kind != LinkNodePort || last.Up || last.CU != b.CU || last.A != b.Node {
			t.Fatalf("%v->%v: last link %v not the destination node port", a, b, last)
		}
		seen := map[uint64]bool{}
		for _, l := range r {
			if seen[l.Key()] {
				t.Fatalf("%v->%v: duplicate link %v in route", a, b, l)
			}
			seen[l.Key()] = true
			if l.Kind == LinkUplink {
				if l.Sw < 0 || l.Sw >= params.InterCUSwitches || l.A < 0 || l.A >= params.UplinksPerCUSwitch {
					t.Fatalf("%v->%v: uplink %v out of range", a, b, l)
				}
			}
		}
	}

	small := NewScaled(2)
	for ga := 0; ga < small.Nodes(); ga += 7 {
		for gb := 0; gb < small.Nodes(); gb++ {
			check(small, FromGlobal(ga), FromGlobal(gb))
		}
	}
	full := New()
	// Sample sources across crossbars and sides; destinations densely.
	for _, ga := range []int{0, 5, 13, 177, 180 * 11, 180*12 + 3, 180*16 + 179} {
		for gb := 0; gb < full.Nodes(); gb += 13 {
			check(full, FromGlobal(ga), FromGlobal(gb))
		}
	}
}

// TestRouteUplinkWiring checks that cross-CU routes climb out through one
// of the source line crossbar's four parity switches, land on the source
// slot, and come down on the destination slot — and that routing all of
// CU0's nodes at all of CU1's exercises the full uplink-cable inventory
// of the 2:1 taper: all 92 egress cables of the 23 compute-carrying line
// crossbars (crossbar 23 is all I/O) and all 96 ingress cables.
func TestRouteUplinkWiring(t *testing.T) {
	s := NewScaled(2)
	upCables := map[uint64]Link{}
	downCables := map[uint64]Link{}
	for na := 0; na < params.NodesPerCU; na++ {
		for nb := 0; nb < params.NodesPerCU; nb++ {
			a, b := NodeID{0, na}, NodeID{1, nb}
			var up, down *Link
			for _, l := range s.Route(a, b) {
				l := l
				if l.Kind != LinkUplink {
					continue
				}
				if l.Up {
					up = &l
				} else {
					down = &l
				}
			}
			if up == nil || down == nil {
				t.Fatalf("%v->%v: route missing uplink cables", a, b)
			}
			ka, kb := LineXbar(na), LineXbar(nb)
			okSw := false
			for _, sw := range UplinkSwitches(ka) {
				if up.Sw == sw {
					okSw = true
				}
			}
			if !okSw {
				t.Fatalf("%v->%v: uplink via sw%d outside parity set %v", a, b, up.Sw, UplinkSwitches(ka))
			}
			if up.A != SwitchLevelXbar(ka) || down.A != SwitchLevelXbar(kb) {
				t.Fatalf("%v->%v: slots %d/%d, want %d/%d", a, b, up.A, down.A,
					SwitchLevelXbar(ka), SwitchLevelXbar(kb))
			}
			if down.Sw != up.Sw || up.CU != 0 || down.CU != 1 {
				t.Fatalf("%v->%v: cable ownership wrong: up %v down %v", a, b, up, down)
			}
			upCables[up.Key()] = *up
			downCables[down.Key()] = *down
		}
	}
	cables := params.InterCUSwitches * params.UplinksPerCUSwitch // 96 per CU
	// Egress is pinned to the source crossbar's 4 cables: 23 compute line
	// crossbars x 4 = 92 of the 96 (crossbar 23's cables serve I/O).
	if want := 4 * 23; len(upCables) != want {
		t.Errorf("CU0 egress used %d distinct uplink cables, want %d", len(upCables), want)
	}
	if len(downCables) != cables {
		t.Errorf("CU1 ingress used %d distinct uplink cables, want %d", len(downCables), cables)
	}
}

// TestRouteDeterministicAndZeroAlloc pins destination-deterministic
// routing and the RouteInto fast path.
func TestRouteDeterministicAndZeroAlloc(t *testing.T) {
	s := New()
	a, b := NodeID{0, 3}, NodeID{16, 177}
	r1, r2 := s.Route(a, b), s.Route(a, b)
	if len(r1) != len(r2) {
		t.Fatalf("route lengths differ: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("route diverged at %d: %v vs %v", i, r1[i], r2[i])
		}
	}
	var buf [RouteMax]Link
	allocs := testing.AllocsPerRun(100, func() {
		_ = s.RouteInto(buf[:0], a, b)
	})
	if allocs != 0 {
		t.Errorf("RouteInto allocates %.1f times per route", allocs)
	}
	if got := s.RouteInto(buf[:0], a, b); len(got) != len(r1) {
		t.Errorf("RouteInto length %d != Route length %d", len(got), len(r1))
	}
}

// TestLinkKeysAndStrings checks key uniqueness over the whole cable
// inventory of a small fabric and that strings name the cable class.
func TestLinkKeysAndStrings(t *testing.T) {
	s := NewScaled(14) // spans both switch sides
	keys := map[uint64]Link{}
	for ga := 0; ga < s.Nodes(); ga += 11 {
		for gb := 0; gb < s.Nodes(); gb += 7 {
			for _, l := range s.Route(FromGlobal(ga), FromGlobal(gb)) {
				if prev, ok := keys[l.Key()]; ok && prev != l {
					t.Fatalf("key collision: %v vs %v", prev, l)
				}
				keys[l.Key()] = l
				if l.String() == "" {
					t.Fatalf("empty string for %v", l)
				}
			}
		}
	}
	up := Link{Kind: LinkUplink, Up: true, CU: 2, Sw: 5, A: 7}
	if got := up.String(); got != "uplink CU3/slot7->sw5" {
		t.Errorf("uplink string = %q", got)
	}
	if LinkSpine.String() != "spine" || LinkNodePort.String() != "node-port" {
		t.Errorf("kind strings: %v %v", LinkSpine, LinkNodePort)
	}
}
