package fabric

import (
	"fmt"
	"sort"

	"roadrunner/internal/params"
)

// Topology is the pluggable fabric model behind a System: the routing
// and inventory contract every interconnect implementation satisfies.
// The 2008-era papers argued tapered fat-trees against 3D tori and
// static destination-hashed routing against adaptive spreading; this
// interface is what lets those fabrics swap under the same transport,
// collectives and replay layers.
//
// Contract (pinned per topology by the invariant suite in
// topology_test.go):
//
//   - Routing is minimal and consistent with Hops: for a != b,
//     len(RouteInto(nil, a, b)) == Hops(a, b) + 1, with a node-port
//     cable first and last; for a == b the route is empty and Hops 0.
//   - Routing is static and deterministic: the same (a, b) always
//     yields the same link sequence, the way InfiniBand's linear
//     forwarding tables behaved on the real machines.
//   - Every Link a route emits appears in Links(), and every link of
//     Links() has a distinct Key() — the global acquisition order the
//     transport's deadlock-freedom rests on.
//   - CacheKey is exact: two sources with equal CacheKey produce, for
//     every destination, routes with identical fabric-interior links
//     and identical hop counts. CacheRows bounds CacheKey + 1.
//   - MinCrossDomainRoute is a lower bound on Hops(a, b) over all pairs
//     with a.CU != b.CU — the crossbar floor conservative-PDES windows
//     are derived from (transport.CrossDomainLookahead). Understating
//     it costs parallelism; overstating it would corrupt results.
type Topology interface {
	// Name returns the registry name ("fattree", "torus", ...).
	Name() string
	// CUs returns the CU count; nodes stay CU-major NodeIDs on every
	// topology so placements and traces carry across fabrics.
	CUs() int
	// Hops counts the crossbars (routers) a minimal route traverses.
	Hops(a, b NodeID) int
	// RouteInto appends the directed link sequence of the route to buf.
	RouteInto(buf []Link, a, b NodeID) []Link
	// MaxRouteLen bounds len(RouteInto(nil, a, b)) over all pairs.
	MaxRouteLen() int
	// CacheKey returns the route-cache row of a source node: all
	// sources sharing a key share every route interior (see contract).
	CacheKey(src NodeID) int
	// CacheRows returns the cache row count (CacheKey < CacheRows).
	CacheRows() int
	// MinCrossDomainRoute returns the minimum cross-CU hop count.
	MinCrossDomainRoute() int
	// PairClass names the destination class of the (a, b) route.
	PairClass(a, b NodeID) string
	// Links enumerates every directed link channel of the plant.
	Links() []Link
}

// DefaultTopology is the fabric every legacy constructor builds: the
// paper's 2:1-tapered fat-tree with static destination-hashed routing.
const DefaultTopology = "fattree"

// topologyBuilders registers every selectable fabric, in the order
// Topologies reports them.
var topologyBuilders = []struct {
	name  string
	desc  string
	build func(cus int) Topology
}{
	{"fattree", "2:1-tapered fat-tree, static destination-hashed routing (Roadrunner §II.B-C)",
		func(cus int) Topology { return newTree(cus, "fattree", 1, false) }},
	{"fattree-ecmp", "tapered fat-tree with ECMP-style spreading: routing hashes mix the source crossbar",
		func(cus int) Topology { return newTree(cus, "fattree-ecmp", 1, true) }},
	{"fattree-full", "full-bisection (1:1) fat-tree: doubled uplink cable planes per inter-CU switch",
		func(cus int) Topology { return newTree(cus, "fattree-full", 2, false) }},
	{"torus", "3D torus (BlueGene/L-class), dimension-ordered shortest-wrap routing",
		func(cus int) Topology { return newTorus(cus) }},
}

// Topologies returns the registered topology names, default first.
func Topologies() []string {
	names := make([]string, len(topologyBuilders))
	for i, b := range topologyBuilders {
		names[i] = b.name
	}
	return names
}

// TopologyDescription returns the one-line description of a registered
// topology ("" for unknown names).
func TopologyDescription(name string) string {
	for _, b := range topologyBuilders {
		if b.name == name {
			return b.desc
		}
	}
	return ""
}

// NewTopology returns the full-scale (17-CU) system on the named
// topology. The "fattree" system is identical to New() — same routes,
// same link keys, same event sequences.
func NewTopology(name string) (*System, error) {
	return NewTopologyScaled(name, params.NumCUs)
}

// NewTopologyScaled is NewTopology with the given CU count (1..24).
func NewTopologyScaled(name string, cus int) (*System, error) {
	if cus < 1 || cus > params.MaxCUs {
		return nil, fmt.Errorf("fabric: %d CUs outside 1..%d", cus, params.MaxCUs)
	}
	for _, b := range topologyBuilders {
		if b.name == name {
			return &System{CUs: cus, topo: b.build(cus)}, nil
		}
	}
	return nil, fmt.Errorf("fabric: unknown topology %q (have %v)", name, Topologies())
}

// Topology returns the system's topology implementation.
func (s *System) Topology() Topology { return s.topo }

// TopologyName returns the registry name of the system's topology.
func (s *System) TopologyName() string { return s.topo.Name() }

// MaxRouteLen bounds the link count of any route on this system; size
// RouteInto buffers with it to route without allocating.
func (s *System) MaxRouteLen() int { return s.topo.MaxRouteLen() }

// CacheKey returns the route-cache row of a source node (see the
// Topology contract); transport.Net keys its dense route cache with it.
func (s *System) CacheKey(src NodeID) int { return s.topo.CacheKey(src) }

// CacheRows returns the route-cache row count.
func (s *System) CacheRows() int { return s.topo.CacheRows() }

// MinCrossDomainRoute returns the minimum cross-CU hop count: the
// crossbar floor PDES lookahead windows are derived from.
func (s *System) MinCrossDomainRoute() int { return s.topo.MinCrossDomainRoute() }

// Links enumerates every directed link channel of the plant, sorted by
// Key. The key-uniqueness and inventory tests run over it.
func (s *System) Links() []Link {
	links := s.topo.Links()
	sort.Slice(links, func(i, j int) bool { return links[i].Key() < links[j].Key() })
	return links
}
