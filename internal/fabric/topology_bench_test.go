package fabric

import "testing"

// The route benches track each topology's routing cost over the same
// deterministic pair set — the inner loop the transport's cache misses
// pay. CI's bench-artifact step archives them per commit next to the
// collective and saturation benches.

func benchTopologyRoute(b *testing.B, name string) {
	b.Helper()
	sys, err := NewTopology(name)
	if err != nil {
		b.Fatal(err)
	}
	nodes := sys.CUs * 180
	buf := make([]Link, 0, sys.MaxRouteLen())
	b.ResetTimer()
	var links int
	for i := 0; i < b.N; i++ {
		// A fixed stride walk: sources sweep the machine, destinations
		// land in other CUs, so every class of route appears.
		src := FromGlobal((i * 7919) % nodes)
		dst := FromGlobal((i*104729 + 1021) % nodes)
		buf = sys.RouteInto(buf[:0], src, dst)
		links += len(buf)
	}
	if links == 0 {
		b.Fatal("no links routed")
	}
}

func BenchmarkTopologyRouteFattree(b *testing.B)     { benchTopologyRoute(b, "fattree") }
func BenchmarkTopologyRouteFattreeECMP(b *testing.B) { benchTopologyRoute(b, "fattree-ecmp") }
func BenchmarkTopologyRouteFattreeFull(b *testing.B) { benchTopologyRoute(b, "fattree-full") }
func BenchmarkTopologyRouteTorus(b *testing.B)       { benchTopologyRoute(b, "torus") }
