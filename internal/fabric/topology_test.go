package fabric

import (
	"reflect"
	"testing"

	"roadrunner/internal/params"
)

// sampleNodes picks a cross-section of nodes — crossbar boundaries,
// CU boundaries, both switch sides — bounded by the system size.
func sampleNodes(s *System) []NodeID {
	cus := []int{0}
	if s.CUs > 1 {
		cus = append(cus, 1, s.CUs-1)
	}
	if s.CUs > params.FirstSideCUs {
		cus = append(cus, params.FirstSideCUs-1, params.FirstSideCUs)
	}
	var nodes []NodeID
	for _, cu := range cus {
		for _, n := range []int{0, 1, 7, 8, 95, 176, params.NodesPerCU - 1} {
			nodes = append(nodes, NodeID{cu, n})
		}
	}
	return nodes
}

// testSystems returns the scales the invariant suite runs per topology:
// exhaustive at 1 CU, cross-CU at 2, both switch sides at 13.
func testSystems(t *testing.T, name string) []*System {
	t.Helper()
	var systems []*System
	for _, cus := range []int{1, 2, 13} {
		s, err := NewTopologyScaled(name, cus)
		if err != nil {
			t.Fatalf("NewTopologyScaled(%q, %d): %v", name, cus, err)
		}
		systems = append(systems, s)
	}
	return systems
}

// checkPair asserts the routing contract for one ordered pair.
func checkPair(t *testing.T, s *System, a, b NodeID) {
	t.Helper()
	name := s.TopologyName()
	h := s.Hops(a, b)
	r := s.Route(a, b)
	if a == b {
		if h != 0 || len(r) != 0 {
			t.Fatalf("%s: self pair %v: hops=%d route=%v", name, a, h, r)
		}
		return
	}
	if len(r) != h+1 {
		t.Fatalf("%s: %v->%v: len(route)=%d, hops=%d", name, a, b, len(r), h)
	}
	if len(r) > s.MaxRouteLen() {
		t.Fatalf("%s: %v->%v: route %d links > MaxRouteLen %d", name, a, b, len(r), s.MaxRouteLen())
	}
	first, last := r[0], r[len(r)-1]
	if first.Kind != LinkNodePort || !first.Up || first.CU != a.CU || first.A != a.Node {
		t.Fatalf("%s: %v->%v: first link %v is not a's node port", name, a, b, first)
	}
	if last.Kind != LinkNodePort || last.Up || last.CU != b.CU || last.A != b.Node {
		t.Fatalf("%s: %v->%v: last link %v is not b's node port", name, a, b, last)
	}
	// Deterministic static routing: a second derivation is identical.
	if r2 := s.Route(a, b); !reflect.DeepEqual(r, r2) {
		t.Fatalf("%s: %v->%v: route not deterministic:\n%v\n%v", name, a, b, r2, r)
	}
	seen := make(map[uint64]bool, len(r))
	for _, l := range r {
		k := l.Key()
		if seen[k] {
			t.Fatalf("%s: %v->%v: duplicate link %v in route", name, a, b, l)
		}
		seen[k] = true
		// Duplex non-contention: the opposite channel of the same cable
		// is a distinct resource (different Key), so the two directions
		// can never queue behind each other.
		rev := l
		switch l.Kind {
		case LinkSwitchInternal:
			rev.A, rev.B = l.B, l.A
		default:
			rev.Up = !l.Up
		}
		if rev.Key() == k {
			t.Fatalf("%s: %v->%v: link %v equals its reverse channel", name, a, b, l)
		}
	}
}

// TestTopologyInvariants is the per-topology routing invariant suite:
// route/hops consistency (len(Route)==Hops+1), deterministic static
// routing, node-port endpoints, no duplicate links, duplex
// non-contention and cache-key exactness — exhaustively within one CU,
// and over a cross-CU/cross-side node sample at larger scale, for every
// registered topology.
func TestTopologyInvariants(t *testing.T) {
	for _, name := range Topologies() {
		t.Run(name, func(t *testing.T) {
			for _, s := range testSystems(t, name) {
				nodes := sampleNodes(s)
				if s.CUs == 1 {
					// Exhaustive at one CU.
					nodes = nodes[:0]
					for n := 0; n < params.NodesPerCU; n++ {
						nodes = append(nodes, NodeID{0, n})
					}
				}
				for _, a := range nodes {
					for _, b := range nodes {
						checkPair(t, s, a, b)
					}
				}
			}
		})
	}
}

// TestCacheKeyContract pins the route-cache exactness contract: two
// sources with equal CacheKey produce identical fabric-interior routes
// and hop counts for every sampled destination, and keys stay inside
// [0, CacheRows).
func TestCacheKeyContract(t *testing.T) {
	interior := func(s *System, a, b NodeID) []Link {
		var r []Link
		for _, l := range s.Route(a, b) {
			if l.Kind != LinkNodePort {
				r = append(r, l)
			}
		}
		return r
	}
	for _, name := range Topologies() {
		t.Run(name, func(t *testing.T) {
			s, err := NewTopologyScaled(name, 13)
			if err != nil {
				t.Fatal(err)
			}
			byKey := map[int]NodeID{}
			nodes := sampleNodes(s)
			// Same-crossbar neighbors exercise shared keys on the trees.
			nodes = append(nodes, NodeID{0, 2}, NodeID{0, 3}, NodeID{1, 9})
			for _, n := range nodes {
				key := s.CacheKey(n)
				if key < 0 || key >= s.CacheRows() {
					t.Fatalf("%s: CacheKey(%v)=%d outside [0,%d)", name, n, key, s.CacheRows())
				}
				prev, ok := byKey[key]
				if !ok {
					byKey[key] = n
					continue
				}
				for _, dst := range nodes {
					if dst == n || dst == prev {
						continue
					}
					if s.Hops(prev, dst) != s.Hops(n, dst) {
						t.Fatalf("%s: sources %v,%v share key %d but differ in hops to %v",
							name, prev, n, key, dst)
					}
					if !reflect.DeepEqual(interior(s, prev, dst), interior(s, n, dst)) {
						t.Fatalf("%s: sources %v,%v share key %d but differ in route interior to %v",
							name, prev, n, key, dst)
					}
				}
			}
		})
	}
}

// TestLinkKeysUniquePerTopology walks the full link inventory of every
// registered topology and asserts Key is collision-free — the property
// the transport's global acquisition order (and therefore its deadlock
// freedom) rests on — and that every link a route emits is in the
// inventory.
func TestLinkKeysUniquePerTopology(t *testing.T) {
	for _, name := range Topologies() {
		t.Run(name, func(t *testing.T) {
			s, err := NewTopologyScaled(name, 13)
			if err != nil {
				t.Fatal(err)
			}
			inv := s.Links()
			keys := make(map[uint64]Link, len(inv))
			for _, l := range inv {
				k := l.Key()
				if prev, dup := keys[k]; dup {
					t.Fatalf("%s: key collision %#x: %v vs %v", name, k, prev, l)
				}
				keys[k] = l
				if l.String() == "" {
					t.Fatalf("%s: link %v renders empty", name, l)
				}
			}
			for _, a := range sampleNodes(s) {
				for _, b := range sampleNodes(s) {
					for _, l := range s.Route(a, b) {
						if inInv, ok := keys[l.Key()]; !ok || inInv != l {
							t.Fatalf("%s: route %v->%v uses link %v missing from inventory",
								name, a, b, l)
						}
					}
				}
			}
		})
	}
}

// TestLinkKeyOverflowPanics pins the Key bit-lane guard: endpoint
// indices past a 12-bit lane (or CU/Sw past theirs) must panic rather
// than silently collide with another cable's key.
func TestLinkKeyOverflowPanics(t *testing.T) {
	overflowing := []Link{
		{Kind: LinkTorus, Sw: 0, A: 4096, B: 0},
		{Kind: LinkTorus, Sw: 0, A: 0, B: 4096},
		{Kind: LinkUplink, CU: 511, Sw: 0, A: 0, B: 0},
		{Kind: LinkUplink, CU: 0, Sw: 255, A: 0, B: 0},
	}
	for _, l := range overflowing {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for overflowing link %+v", l)
				}
			}()
			l.Key()
		}()
	}
	// The guard admits the full legal lanes.
	ok := Link{Kind: LinkTorus, Sw: 2, A: 4095, B: 4095}
	if ok.Key() == 0 {
		t.Error("legal link keyed to zero")
	}
}

// TestMinCrossDomainRoutePerTopology verifies the derived PDES floor:
// no cross-CU pair routes in fewer hops than MinCrossDomainRoute claims
// (exhaustively at 2 CUs, sampled at 13), and the floor is attained by
// some pair — it is the minimum, not just a bound — on the trees and
// the torus.
func TestMinCrossDomainRoutePerTopology(t *testing.T) {
	for _, name := range Topologies() {
		t.Run(name, func(t *testing.T) {
			s, err := NewTopologyScaled(name, 2)
			if err != nil {
				t.Fatal(err)
			}
			floor := s.MinCrossDomainRoute()
			if floor < 1 {
				t.Fatalf("%s: floor %d", name, floor)
			}
			min := -1
			for i := 0; i < params.NodesPerCU; i++ {
				for j := 0; j < params.NodesPerCU; j++ {
					h := s.Hops(NodeID{0, i}, NodeID{1, j})
					if h < floor {
						t.Fatalf("%s: cross-CU pair %v->%v routes in %d hops, below floor %d",
							name, NodeID{0, i}, NodeID{1, j}, h, floor)
					}
					if min < 0 || h < min {
						min = h
					}
				}
			}
			if min != floor {
				t.Errorf("%s: min cross-CU hops %d, floor claims %d", name, min, floor)
			}
			s13, err := NewTopologyScaled(name, 13)
			if err != nil {
				t.Fatal(err)
			}
			floor13 := s13.MinCrossDomainRoute()
			for _, a := range sampleNodes(s13) {
				for _, b := range sampleNodes(s13) {
					if a.CU == b.CU {
						continue
					}
					if h := s13.Hops(a, b); h < floor13 {
						t.Fatalf("%s/13CU: %v->%v %d hops below floor %d", name, a, b, h, floor13)
					}
				}
			}
		})
	}
}

// TestFatTreeViaInterfaceByteIdentical pins the tentpole's conservation
// law: the "fattree" topology built through the registry produces, for
// every sampled pair, exactly the routes and hop counts of the legacy
// New() constructor.
func TestFatTreeViaInterfaceByteIdentical(t *testing.T) {
	legacy := New()
	viaRegistry, err := NewTopology(DefaultTopology)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range sampleNodes(legacy) {
		for _, b := range sampleNodes(legacy) {
			if got, want := viaRegistry.Hops(a, b), legacy.Hops(a, b); got != want {
				t.Fatalf("hops %v->%v: %d vs legacy %d", a, b, got, want)
			}
			if got, want := viaRegistry.Route(a, b), legacy.Route(a, b); !reflect.DeepEqual(got, want) {
				t.Fatalf("route %v->%v:\n%v\nlegacy:\n%v", a, b, got, want)
			}
		}
	}
	if viaRegistry.TopologyName() != legacy.TopologyName() {
		t.Errorf("names differ: %q vs %q", viaRegistry.TopologyName(), legacy.TopologyName())
	}
}

// TestTreeVariantHopsMatchTaperedTree pins that the ECMP and
// full-bisection variants change cables, never hop counts: Table I
// holds on all three trees.
func TestTreeVariantHopsMatchTaperedTree(t *testing.T) {
	base, _ := NewTopologyScaled("fattree", 13)
	for _, name := range []string{"fattree-ecmp", "fattree-full"} {
		v, err := NewTopologyScaled(name, 13)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range sampleNodes(base) {
			for _, b := range sampleNodes(base) {
				if got, want := v.Hops(a, b), base.Hops(a, b); got != want {
					t.Errorf("%s: hops %v->%v = %d, tapered tree %d", name, a, b, got, want)
				}
			}
		}
	}
}

// TestECMPSpreadsSources pins what the ECMP variant is for: two sources
// on different line crossbars sending to one destination take different
// uplink cables at least somewhere, while the static tree routes purely
// by destination (identical interiors from same-slot crossbars on the
// same switch parity would still differ in slot).
func TestECMPSpreadsSources(t *testing.T) {
	ecmp, _ := NewTopologyScaled("fattree-ecmp", 13)
	dst := NodeID{12, 5}
	// Same switch parity, different crossbars: nodes on crossbars 0 and 2.
	a, b := NodeID{0, 0}, NodeID{0, 16}
	uplinkOf := func(s *System, src NodeID) Link {
		for _, l := range s.Route(src, dst) {
			if l.Kind == LinkUplink && l.Up {
				return l
			}
		}
		t.Fatalf("no uplink in %v->%v", src, dst)
		return Link{}
	}
	ua, ub := uplinkOf(ecmp, a), uplinkOf(ecmp, b)
	if ua.Sw == ub.Sw {
		t.Errorf("ecmp: crossbar-0 and crossbar-2 sources share switch %d toward %v", ua.Sw, dst)
	}
}

// TestFullBisectionUsesBothPlanes pins that the 1:1 tree actually
// spreads routes over both uplink cable planes.
func TestFullBisectionUsesBothPlanes(t *testing.T) {
	full, _ := NewTopologyScaled("fattree-full", 13)
	planes := map[int]bool{}
	src := NodeID{0, 0}
	for n := 0; n < params.NodesPerCU; n++ {
		for _, l := range full.Route(src, NodeID{12, n}) {
			if l.Kind == LinkUplink {
				planes[l.B] = true
			}
		}
	}
	if !planes[0] || !planes[1] {
		t.Errorf("full-bisection tree uses planes %v, want both", planes)
	}
	// And the audit reports the doubled uplink tier.
	a := full.Audit()
	if a.UplinksPerCU != 192 {
		t.Errorf("uplinks per CU = %d, want 192", a.UplinksPerCU)
	}
	if a.TaperRatio >= 1 {
		t.Errorf("taper = %v, want < 1 (full bisection)", a.TaperRatio)
	}
}

// TestTorusDims pins the factorizations the torus builds on.
func TestTorusDims(t *testing.T) {
	cases := []struct{ n, x, y, z int }{
		{3060, 12, 15, 17}, // full machine
		{180, 5, 6, 6},     // one CU
		{360, 6, 6, 10},
		{7, 1, 1, 7},
	}
	for _, c := range cases {
		x, y, z := TorusDims(c.n)
		if x != c.x || y != c.y || z != c.z {
			t.Errorf("TorusDims(%d) = %dx%dx%d, want %dx%dx%d", c.n, x, y, z, c.x, c.y, c.z)
		}
		if x*y*z != c.n {
			t.Errorf("TorusDims(%d) does not factor: %dx%dx%d", c.n, x, y, z)
		}
	}
}

// TestTorusHopsExhaustiveSmall cross-checks torus Hops against a
// breadth-first count of its ring distances on one CU.
func TestTorusHopsExhaustiveSmall(t *testing.T) {
	s, err := NewTopologyScaled("torus", 1)
	if err != nil {
		t.Fatal(err)
	}
	nx, ny, nz := TorusDims(params.NodesPerCU)
	ringDist := func(a, b, size int) int {
		d := ((b-a)%size + size) % size
		if size-d < d {
			return size - d
		}
		return d
	}
	for a := 0; a < params.NodesPerCU; a++ {
		for b := 0; b < params.NodesPerCU; b++ {
			ax, ay, az := a%nx, (a/nx)%ny, a/(nx*ny)
			bx, by, bz := b%nx, (b/nx)%ny, b/(nx*ny)
			want := ringDist(ax, bx, nx) + ringDist(ay, by, ny) + ringDist(az, bz, nz)
			if a != b {
				want++
			}
			if got := s.HopsGlobal(a, b); got != want {
				t.Fatalf("torus hops %d->%d = %d, want %d", a, b, got, want)
			}
		}
	}
}
