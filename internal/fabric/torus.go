package fabric

import (
	"fmt"

	"roadrunner/internal/params"
)

// torus is a 3D torus in the BlueGene/L mold the Teraflops-scale
// survey in PAPERS.md contrasts with Roadrunner's fat-tree: one router
// per compute node, six neighbor cables per router (±x, ±y, ±z with
// wraparound), and static dimension-ordered routing — x first, then y,
// then z, each dimension walked in its shortest wrap direction (ties
// broken toward +). Node numbering stays CU-major (NodeID/GlobalID),
// so placements and traces carry over unchanged; the torus coordinates
// are derived from the global index, x-fastest.
//
// Hops counts routers: a route of Manhattan ring distance d crosses
// d+1 routers (the source's router, then one per cable crossed), so
// len(Route) == Hops+1 holds with the node-port cable on each end —
// the same invariant the fat-tree maintains.
type torus struct {
	cus        int
	nx, ny, nz int
}

// newTorus builds a torus over cus*NodesPerCU nodes with the most
// cubic dimension factorization.
func newTorus(cus int) *torus {
	if cus < 1 || cus > params.MaxCUs {
		panic(fmt.Sprintf("fabric: %d CUs outside 1..%d", cus, params.MaxCUs))
	}
	nx, ny, nz := TorusDims(cus * params.NodesPerCU)
	return &torus{cus: cus, nx: nx, ny: ny, nz: nz}
}

// TorusDims factors n into the most cubic x <= y <= z with x*y*z == n:
// among all ordered factorizations it maximizes x, then y. The full
// 3,060-node machine becomes 12 x 15 x 17; one CU's 180 nodes 5 x 6 x 6.
func TorusDims(n int) (x, y, z int) {
	x, y, z = 1, 1, n
	for a := 1; a*a*a <= n; a++ {
		if n%a != 0 {
			continue
		}
		m := n / a
		for b := a; b*b <= m; b++ {
			if m%b != 0 {
				continue
			}
			if a > x || (a == x && b > y) {
				x, y, z = a, b, m/b
			}
		}
	}
	return x, y, z
}

func (t *torus) Name() string { return "torus" }
func (t *torus) CUs() int     { return t.cus }

func (t *torus) validate(n NodeID) {
	if n.CU < 0 || n.CU >= t.cus || n.Node < 0 || n.Node >= params.NodesPerCU {
		panic(fmt.Sprintf("fabric: node %v outside %d-CU system", n, t.cus))
	}
}

// coords returns the torus coordinates of a global node id, x-fastest.
func (t *torus) coords(g int) (x, y, z int) {
	return g % t.nx, (g / t.nx) % t.ny, g / (t.nx * t.ny)
}

// ringDist returns the shortest ring distance and its direction (+1 or
// -1; ties toward +) from coordinate a to b on a ring of the given size.
func ringDist(a, b, size int) (dist, dir int) {
	fwd := ((b-a)%size + size) % size
	if fwd == 0 {
		return 0, 1
	}
	if back := size - fwd; back < fwd {
		return back, -1
	}
	return fwd, 1
}

// Hops returns the router count of the dimension-ordered route:
// Manhattan ring distance + 1 for distinct nodes (the source router
// plus one per cable crossed).
func (t *torus) Hops(a, b NodeID) int {
	t.validate(a)
	t.validate(b)
	if a == b {
		return 0
	}
	ax, ay, az := t.coords(a.GlobalID())
	bx, by, bz := t.coords(b.GlobalID())
	dx, _ := ringDist(ax, bx, t.nx)
	dy, _ := ringDist(ay, by, t.ny)
	dz, _ := ringDist(az, bz, t.nz)
	return dx + dy + dz + 1
}

func (t *torus) MaxRouteLen() int { return t.nx/2 + t.ny/2 + t.nz/2 + 2 }

// CacheKey is the source node itself: a torus router is per-node, so
// no two sources share route interiors and the cache is per-node dense.
func (t *torus) CacheKey(src NodeID) int { return src.GlobalID() }
func (t *torus) CacheRows() int          { return t.cus * params.NodesPerCU }

// MinCrossDomainRoute scans every router's positive neighbors for a
// cross-CU adjacency: CU-major numbering over an x-fastest torus always
// yields neighboring nodes in different CUs, making the floor 2 hops
// (two routers) — one crossbar fewer than the fat-tree's 3, which is
// exactly why a hard-coded 3-crossbar lookahead would be unsafe here.
// If no adjacency crossed a CU the true minimum would be larger; 2 is
// then still a safe (conservative) floor.
func (t *torus) MinCrossDomainRoute() int {
	if t.cus == 1 {
		return 2 // no cross-CU pairs; any positive floor is safe
	}
	n := t.cus * params.NodesPerCU
	strides := [3]int{1, t.nx, t.nx * t.ny}
	sizes := [3]int{t.nx, t.ny, t.nz}
	for g := 0; g < n; g++ {
		cu := g / params.NodesPerCU
		x, y, z := t.coords(g)
		coord := [3]int{x, y, z}
		for d := 0; d < 3; d++ {
			if sizes[d] == 1 {
				continue
			}
			next := g + strides[d]
			if coord[d] == sizes[d]-1 { // wrap
				next = g - (sizes[d]-1)*strides[d]
			}
			if next/params.NodesPerCU != cu {
				return 2
			}
		}
	}
	return 2
}

// PairClass names torus routes by their ring distance.
func (t *torus) PairClass(a, b NodeID) string {
	t.validate(a)
	t.validate(b)
	if a == b {
		return "self"
	}
	return fmt.Sprintf("torus-dist-%d", t.Hops(a, b)-1)
}

// RouteInto appends the dimension-ordered route: node port up, one
// LinkTorus per cable crossed (x, then y, then z), node port down.
func (t *torus) RouteInto(buf []Link, a, b NodeID) []Link {
	t.validate(a)
	t.validate(b)
	if a == b {
		return buf
	}
	buf = append(buf, Link{Kind: LinkNodePort, Up: true, CU: a.CU, Sw: -1, A: a.Node, B: 0})
	ax, ay, az := t.coords(a.GlobalID())
	bx, by, bz := t.coords(b.GlobalID())
	cur := [3]int{ax, ay, az}
	to := [3]int{bx, by, bz}
	sizes := [3]int{t.nx, t.ny, t.nz}
	for d := 0; d < 3; d++ {
		size := sizes[d]
		dist, dir := ringDist(cur[d], to[d], size)
		for step := 0; step < dist; step++ {
			next := ((cur[d]+dir)%size + size) % size
			// A cable is identified by its lower-coordinate router (the
			// wrap cable by size-1); Up selects the + direction channel.
			lower, up := cur[d], true
			if dir < 0 {
				lower, up = next, false
			}
			buf = append(buf, Link{Kind: LinkTorus, Up: up, CU: -1, Sw: d, A: lower, B: t.perp(d, cur)})
			cur[d] = next
		}
	}
	return append(buf, Link{Kind: LinkNodePort, Up: false, CU: b.CU, Sw: -1, A: b.Node, B: 0})
}

// perp flattens the two coordinates perpendicular to dimension d into
// the cable's row index (Link.B).
func (t *torus) perp(d int, c [3]int) int {
	switch d {
	case 0:
		return c[1] + c[2]*t.ny
	case 1:
		return c[0] + c[2]*t.nx
	default:
		return c[0] + c[1]*t.nx
	}
}

// Links enumerates the inventory: two node-port channels per node and,
// per dimension, one + cable per router in both directions.
func (t *torus) Links() []Link {
	var links []Link
	for cu := 0; cu < t.cus; cu++ {
		for n := 0; n < params.NodesPerCU; n++ {
			links = append(links,
				Link{Kind: LinkNodePort, Up: true, CU: cu, Sw: -1, A: n, B: 0},
				Link{Kind: LinkNodePort, Up: false, CU: cu, Sw: -1, A: n, B: 0})
		}
	}
	sizes := [3]int{t.nx, t.ny, t.nz}
	total := t.cus * params.NodesPerCU
	for d := 0; d < 3; d++ {
		if sizes[d] == 1 {
			continue // a 1-wide dimension has no cables
		}
		rows := total / sizes[d]
		for c := 0; c < sizes[d]; c++ {
			for row := 0; row < rows; row++ {
				links = append(links,
					Link{Kind: LinkTorus, Up: true, CU: -1, Sw: d, A: c, B: row},
					Link{Kind: LinkTorus, Up: false, CU: -1, Sw: d, A: c, B: row})
			}
		}
	}
	return links
}
