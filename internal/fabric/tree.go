package fabric

import (
	"fmt"

	"roadrunner/internal/params"
)

// tree is the fat-tree family: the paper's 2:1-tapered Roadrunner plant
// ("fattree", the default), the same wiring with ECMP-style hash
// spreading ("fattree-ecmp"), and a full-bisection variant with doubled
// uplink cable planes ("fattree-full"). The default configuration is
// pinned byte-identical to the pre-interface fabric: same hop counts,
// same link identities, same destination-hashed route choices.
type tree struct {
	cus  int
	name string
	// planes is the number of parallel uplink cable planes per inter-CU
	// switch: 1 is the paper's 2:1 taper (96 uplinks vs 180 node ports
	// per CU), 2 doubles every uplink cable and middle-stage plane for
	// a full-bisection (192 vs 180, ~1:1) tree. Link.B carries the
	// plane on uplink cables; switch-internal stage codes of plane 1
	// are offset by planeStageOffset.
	planes int
	// ecmp mixes the source line crossbar into the spine/switch/middle
	// hashes, spreading flows that share a destination but enter from
	// different crossbars over different cables — the static
	// approximation of adaptive/ECMP routing. Routes stay deterministic
	// per (source crossbar, destination), so the crossbar-granular
	// route cache remains exact.
	ecmp bool
}

func newTree(cus int, name string, planes int, ecmp bool) *tree {
	if cus < 1 || cus > params.MaxCUs {
		panic(fmt.Sprintf("fabric: %d CUs outside 1..%d", cus, params.MaxCUs))
	}
	return &tree{cus: cus, name: name, planes: planes, ecmp: ecmp}
}

func (t *tree) Name() string { return t.name }
func (t *tree) CUs() int     { return t.cus }

func (t *tree) validate(n NodeID) {
	if n.CU < 0 || n.CU >= t.cus || n.Node < 0 || n.Node >= params.NodesPerCU {
		panic(fmt.Sprintf("fabric: node %v outside %d-CU system", n, t.cus))
	}
}

// Hops returns the number of crossbars a minimal route between two
// compute nodes traverses (the paper's Table I metric). Identical for
// every tree variant: planes and hash spreading change which cables a
// route takes, never how many crossbars it crosses.
func (t *tree) Hops(a, b NodeID) int {
	t.validate(a)
	t.validate(b)
	if a == b {
		return 0
	}
	ka, kb := LineXbar(a.Node), LineXbar(b.Node)
	if a.CU == b.CU {
		if ka == kb {
			return 1 // same line crossbar
		}
		return 3 // line -> spine -> line inside the CU switch
	}
	// Different CU: the route climbs out of a's line crossbar into an
	// inter-CU switch. If both line crossbars have the same index, their
	// uplinks meet on the same switch-level crossbar: one middle hop.
	sameLevelXbar := ka == kb
	if firstSide(a.CU) == firstSide(b.CU) {
		if sameLevelXbar {
			// line -> switch level xbar -> line.
			return 3
		}
		// line -> level xbar -> middle -> level xbar -> line.
		return 5
	}
	// Opposite sides of the inter-CU switch: the route additionally
	// crosses the middle level.
	if sameLevelXbar {
		// line -> first-level -> middle -> last-level -> line.
		return 5
	}
	// line -> first-level -> middle -> middle -> last-level -> line
	// (two middle-stage crossbars to change level index).
	return 7
}

// PairClass names the Table I destination class of the route from a to
// b; see System.PairClass.
func (t *tree) PairClass(a, b NodeID) string {
	t.validate(a)
	t.validate(b)
	ka, kb := LineXbar(a.Node), LineXbar(b.Node)
	switch {
	case a == b:
		return "self"
	case a.CU == b.CU && ka == kb:
		return "same-xbar"
	case a.CU == b.CU:
		return "same-cu"
	case firstSide(a.CU) == firstSide(b.CU) && ka == kb:
		return "same-side-same-xbar"
	case firstSide(a.CU) == firstSide(b.CU):
		return "same-side-other-xbar"
	case ka == kb:
		return "cross-side-same-xbar"
	default:
		return "cross-side-other-xbar"
	}
}

func (t *tree) MaxRouteLen() int { return RouteMax }

// CacheKey is the source line crossbar: the route interior and hop
// count depend only on it and the destination — also under ECMP
// spreading, whose hashes mix in nothing finer than the crossbar.
func (t *tree) CacheKey(src NodeID) int { return src.XbarID() }
func (t *tree) CacheRows() int          { return t.cus * LineXbarsPerCU }

// MinCrossDomainRoute: the shortest cross-CU route crosses three
// crossbars (Table I's same-index-crossbar shortcut), on every variant.
func (t *tree) MinCrossDomainRoute() int { return 3 }

// hash is the routing hash the destination-addressed choices (spine,
// uplink switch, middle crossbars) derive from. The default tree hashes
// the destination alone — InfiniBand's static linear forwarding tables
// — reproducing the pre-interface routes bit for bit; the ECMP variant
// mixes in the source line crossbar so flows entering the plant at
// different crossbars spread over different cables.
func (t *tree) hash(dst, ka int) int {
	if t.ecmp {
		return dst + 13*ka
	}
	return dst
}

// plane picks the uplink cable plane of a route (always 0 on the
// tapered trees; alternating by hash on the full-bisection tree).
func (t *tree) plane(h int) int {
	if t.planes <= 1 {
		return 0
	}
	// h/4 rather than h: the switch choice already consumes h%4, and
	// dividing first decorrelates the plane from it.
	return (h / 4) % t.planes
}

// planeStageOffset shifts switch-internal stage codes of uplink plane 1
// past plane 0's three stages of 12 crossbars.
const planeStageOffset = 3 * params.InterCULevelsXbars

// RouteInto appends the route from a to b; see System.RouteInto.
func (t *tree) RouteInto(buf []Link, a, b NodeID) []Link {
	t.validate(a)
	t.validate(b)
	if a == b {
		return buf
	}
	ka, kb := LineXbar(a.Node), LineXbar(b.Node)
	buf = append(buf, Link{Kind: LinkNodePort, Up: true, CU: a.CU, Sw: -1, A: a.Node, B: ka})
	dst := b.GlobalID()
	switch {
	case a.CU == b.CU && ka == kb:
		// One crossbar: straight through the shared line crossbar.
	case a.CU == b.CU:
		// Line -> spine -> line inside the CU switch, spine chosen by
		// destination hash.
		sp := t.hash(dst, ka) % params.SwitchUpperXbars
		buf = append(buf,
			Link{Kind: LinkSpine, Up: true, CU: a.CU, Sw: -1, A: ka, B: sp},
			Link{Kind: LinkSpine, Up: false, CU: a.CU, Sw: -1, A: kb, B: sp})
	default:
		// Out of the CU: one of the source line crossbar's four uplink
		// switches, chosen by destination hash.
		h := t.hash(dst, ka)
		sw := UplinkSwitches(ka)[h%4]
		pl := t.plane(h)
		sa, sb := SwitchLevelXbar(ka), SwitchLevelXbar(kb)
		buf = append(buf, Link{Kind: LinkUplink, Up: true, CU: a.CU, Sw: sw, A: sa, B: pl})
		buf = t.appendSwitchInternal(buf, sw, a.CU, b.CU, ka, kb, h, pl)
		buf = append(buf, Link{Kind: LinkUplink, Up: false, CU: b.CU, Sw: sw, A: sb, B: pl})
	}
	return append(buf, Link{Kind: LinkNodePort, Up: false, CU: b.CU, Sw: -1, A: b.Node, B: kb})
}

// appendSwitchInternal emits the segments between the CU-facing crossbar
// the uplink lands on and the one the downlink leaves from, mirroring the
// crossbar counts Hops charges inside the inter-CU switch. h is the
// routing hash; pl the uplink plane (plane 1's stage codes are offset).
func (t *tree) appendSwitchInternal(buf []Link, sw, cuA, cuB, ka, kb, h, pl int) []Link {
	off := pl * planeStageOffset
	sa, sb := SwitchLevelXbar(ka), SwitchLevelXbar(kb)
	from := off + sideStage(cuA)*params.InterCULevelsXbars + sa
	to := off + sideStage(cuB)*params.InterCULevelsXbars + sb
	internal := func(f, t int) Link {
		return Link{Kind: LinkSwitchInternal, CU: -1, Sw: sw, A: f, B: t}
	}
	mid := func(i int) int { return off + stageMiddle*params.InterCULevelsXbars + i }
	sameSide := firstSide(cuA) == firstSide(cuB)
	switch {
	case sameSide && ka == kb:
		// Both uplinks land on the same CU-facing crossbar: no internal
		// segment (Table I's 3-hop shortcut).
		return buf
	case sameSide || ka == kb:
		// One middle crossbar: level -> middle -> level (5 hops total).
		m := mid(midHash(h))
		return append(buf, internal(from, m), internal(m, to))
	default:
		// Opposite sides and different crossbar index: the route crosses
		// the middle stage three times to change both level index and
		// side, matching Table I's 7-hop count.
		m1, m3 := sa, sb
		m2 := midHash(h)
		for m2 == m1 || m2 == m3 {
			m2 = (m2 + 1) % params.InterCULevelsXbars
		}
		return append(buf,
			internal(from, mid(m1)), internal(mid(m1), mid(m2)),
			internal(mid(m2), mid(m3)), internal(mid(m3), to))
	}
}

// Links enumerates the cable inventory: node ports, spines, uplinks
// (every plane) and the switch-internal segments routes can traverse,
// each in both directions.
func (t *tree) Links() []Link {
	var links []Link
	for cu := 0; cu < t.cus; cu++ {
		for n := 0; n < params.NodesPerCU; n++ {
			k := LineXbar(n)
			links = append(links,
				Link{Kind: LinkNodePort, Up: true, CU: cu, Sw: -1, A: n, B: k},
				Link{Kind: LinkNodePort, Up: false, CU: cu, Sw: -1, A: n, B: k})
		}
		for k := 0; k < LineXbarsPerCU; k++ {
			for sp := 0; sp < params.SwitchUpperXbars; sp++ {
				links = append(links,
					Link{Kind: LinkSpine, Up: true, CU: cu, Sw: -1, A: k, B: sp},
					Link{Kind: LinkSpine, Up: false, CU: cu, Sw: -1, A: k, B: sp})
			}
		}
		for sw := 0; sw < params.InterCUSwitches; sw++ {
			for slot := 0; slot < params.UplinksPerCUSwitch; slot++ {
				for pl := 0; pl < t.planes; pl++ {
					links = append(links,
						Link{Kind: LinkUplink, Up: true, CU: cu, Sw: sw, A: slot, B: pl},
						Link{Kind: LinkUplink, Up: false, CU: cu, Sw: sw, A: slot, B: pl})
				}
			}
		}
	}
	// Switch-internal segments: every side<->middle and middle<->middle
	// ordered pair, per switch, per plane.
	for sw := 0; sw < params.InterCUSwitches; sw++ {
		for pl := 0; pl < t.planes; pl++ {
			off := pl * planeStageOffset
			code := func(stage, i int) int { return off + stage*params.InterCULevelsXbars + i }
			for i := 0; i < params.InterCULevelsXbars; i++ {
				for j := 0; j < params.InterCULevelsXbars; j++ {
					m := code(stageMiddle, j)
					for _, side := range [2]int{stageFirst, stageLast} {
						s := code(side, i)
						links = append(links,
							Link{Kind: LinkSwitchInternal, CU: -1, Sw: sw, A: s, B: m},
							Link{Kind: LinkSwitchInternal, CU: -1, Sw: sw, A: m, B: s})
					}
					if i != j {
						links = append(links,
							Link{Kind: LinkSwitchInternal, CU: -1, Sw: sw, A: code(stageMiddle, i), B: m})
					}
				}
			}
		}
	}
	return links
}
