package facility

import (
	"fmt"
	"sort"

	"roadrunner/internal/fabric"
	"roadrunner/internal/placement"
	"roadrunner/internal/transport"
	"roadrunner/internal/units"
)

// Allocator picks the nodes a job runs on. Alloc either grants exactly
// n nodes (marking them busy on the map) or declines and leaves the map
// untouched — a declined job waits in the scheduler's queue. Allocators
// are stateless between calls; all state lives in the NodeMap, so one
// allocator value is safely shared across runs.
type Allocator interface {
	Name() string
	Alloc(m *NodeMap, n int) ([]fabric.NodeID, bool)
}

// Contiguous is the CU-packed allocator. A request that fits inside one
// Connected Unit is granted only from a single CU — the best-fitting
// one (smallest sufficient free count, ties to the lowest index) — and
// waits when fragmentation leaves no CU with room, rather than
// shredding the job across CUs. Requests wider than a CU take whole
// CUs emptiest-first, so large jobs consolidate instead of scattering.
// The payoff is locality (a CU-packed job's traffic stays under one
// crossbar complex) and low external fragmentation; the cost is
// fragmentation-induced waiting the scattered allocator never pays.
type Contiguous struct{}

// Name identifies the allocator in reports.
func (Contiguous) Name() string { return "contiguous" }

// Alloc grants n nodes CU-packed, or declines.
func (Contiguous) Alloc(m *NodeMap, n int) ([]fabric.NodeID, bool) {
	if n <= 0 || n > m.Free() {
		return nil, false
	}
	if n <= m.perCU {
		best := -1
		for cu := 0; cu < m.cus; cu++ {
			f := m.freeCU[cu]
			if f >= n && (best == -1 || f < m.freeCU[best]) {
				best = cu
			}
		}
		if best == -1 {
			return nil, false // fragmented: wait for a CU to open up
		}
		return takeInCU(m, best, n), true
	}
	// Wider than a CU: drain the freest CUs first (ties to the lowest
	// index) so the grant spans as few CUs as possible.
	order := make([]int, m.cus)
	for cu := range order {
		order[cu] = cu
	}
	sort.SliceStable(order, func(a, b int) bool {
		return m.freeCU[order[a]] > m.freeCU[order[b]]
	})
	var grant []fabric.NodeID
	left := n
	for _, cu := range order {
		if left == 0 {
			break
		}
		take := m.freeCU[cu]
		if take > left {
			take = left
		}
		if take == 0 {
			continue
		}
		grant = append(grant, takeInCU(m, cu, take)...)
		left -= take
	}
	return grant, true
}

// takeInCU marks the cu's k lowest-indexed free nodes busy and returns
// them. The caller has checked k <= FreeInCU(cu).
func takeInCU(m *NodeMap, cu, k int) []fabric.NodeID {
	out := make([]fabric.NodeID, 0, k)
	base := cu * m.perCU
	for i := 0; i < m.perCU && len(out) < k; i++ {
		if !m.used[base+i] {
			m.take(base + i)
			out = append(out, m.nodeID(base+i))
		}
	}
	return out
}

// Scattered is the striping allocator: a grant walks the CUs round-
// robin, one free node from each in turn, so every job spreads across
// the whole machine. It never waits while free capacity exists and it
// balances load over the CU switches, but it shreds free space — each
// grant leaves every CU partially occupied, so external fragmentation
// climbs and no whole CU stays free for a CU-packed competitor.
type Scattered struct{}

// Name identifies the allocator in reports.
func (Scattered) Name() string { return "scattered" }

// Alloc stripes n free nodes across the CUs, or declines when fewer are
// free.
func (Scattered) Alloc(m *NodeMap, n int) ([]fabric.NodeID, bool) {
	if n <= 0 || n > m.Free() {
		return nil, false
	}
	out := make([]fabric.NodeID, 0, n)
	next := make([]int, m.cus) // per-CU scan cursor
	for len(out) < n {
		for cu := 0; cu < m.cus && len(out) < n; cu++ {
			base := cu * m.perCU
			i := next[cu]
			for i < m.perCU && m.used[base+i] {
				i++
			}
			next[cu] = i
			if i == m.perCU {
				continue // this CU is drained
			}
			next[cu] = i + 1
			m.take(base + i)
			out = append(out, m.nodeID(base+i))
		}
	}
	return out, true
}

// Assisted is the placement-optimizer-assisted allocator: node
// selection is delegated to Under (contiguous when nil), and the
// rank→node mapping of trace-driven jobs is then searched with
// internal/placement over exactly the granted nodes — the optimizer's
// relocation pool is the grant, so the improved mapping can never
// drift onto nodes the scheduler gave to another job. Fixed-model jobs
// are unaffected; the assist prices placements with the same pooled
// replay objective the place-optimize experiment uses.
type Assisted struct {
	// Under selects the nodes (nil means Contiguous{}).
	Under Allocator
	// Seed drives the per-job search stream; job IDs are mixed in so
	// every job searches a distinct but reproducible stream.
	Seed int64
	// GreedyRounds/GreedyBatch/AnnealRounds/AnnealBatch bound the
	// per-job search (zero takes small facility defaults: 2/8/2/8 —
	// a job admission should cost milliseconds, not a full search).
	GreedyRounds int
	GreedyBatch  int
	AnnealRounds int
	AnnealBatch  int
}

// Name identifies the allocator in reports.
func (a *Assisted) Name() string { return "assisted" }

// Alloc grants via the underlying allocator.
func (a *Assisted) Alloc(m *NodeMap, n int) ([]fabric.NodeID, bool) {
	return a.under().Alloc(m, n)
}

func (a *Assisted) under() Allocator {
	if a.Under == nil {
		return Contiguous{}
	}
	return a.Under
}

// MapRanks searches rank→node mappings of the trace over the granted
// nodes and returns the winning placement with its per-iteration
// makespan. The linear walk of the grant (rank i on grant node i) and
// its reverse seed the search; the optimizer can only improve on them.
func (a *Assisted) MapRanks(rt *TraceRuntime, jobID int, nodes []fabric.NodeID) ([]transport.Endpoint, units.Time, error) {
	linear := linearMapping(nodes)
	reversed := make([]transport.Endpoint, len(linear))
	for i := range linear {
		reversed[i] = linear[len(linear)-1-i]
	}
	cfg := placement.Config{
		Trace:  rt.Trace,
		Replay: rt.Replay,
		Starts: []placement.Start{
			{Name: "linear", Places: linear},
			{Name: "reversed", Places: reversed},
		},
		Seed:    a.Seed + int64(jobID)*1_000_003,
		Workers: 1, // one job admission, one worker: deterministic and cheap
		Pool:    nodes,

		GreedyRounds: defaultBudget(a.GreedyRounds, 2),
		GreedyBatch:  defaultBudget(a.GreedyBatch, 8),
		AnnealRounds: defaultBudget(a.AnnealRounds, 2),
		AnnealBatch:  defaultBudget(a.AnnealBatch, 8),
	}
	res, err := placement.Optimize(cfg)
	if err != nil {
		return nil, 0, fmt.Errorf("facility: assisted mapping for job %d: %w", jobID, err)
	}
	return res.Best, res.BestTime, nil
}

func defaultBudget(v, def int) int {
	if v <= 0 {
		return def
	}
	return v
}

// linearMapping places rank i on grant node i, core 0 — the default
// mapping every allocator without a search uses for trace-driven jobs.
func linearMapping(nodes []fabric.NodeID) []transport.Endpoint {
	out := make([]transport.Endpoint, len(nodes))
	for i, n := range nodes {
		out[i] = transport.Endpoint{Node: n, Core: 0}
	}
	return out
}

// NewAllocator resolves an allocator by name ("contiguous", "scattered"
// or "assisted"), the CLI and scenario entry point.
func NewAllocator(name string, seed int64) (Allocator, error) {
	switch name {
	case "contiguous":
		return Contiguous{}, nil
	case "scattered":
		return Scattered{}, nil
	case "assisted":
		return &Assisted{Seed: seed}, nil
	}
	return nil, fmt.Errorf("facility: unknown allocator %q (want contiguous, scattered or assisted)", name)
}
