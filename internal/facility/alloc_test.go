package facility

import (
	"testing"
)

// occupancyFromMask sets up a NodeMap whose busy nodes are the mask's
// set bits (bit g = global node g).
func occupancyFromMask(cus, perCU int, mask uint) *NodeMap {
	m := NewNodeMap(cus, perCU)
	for g := 0; g < cus*perCU; g++ {
		if mask&(1<<g) != 0 {
			m.take(g)
		}
	}
	return m
}

// snapshot captures the map's full state for exact-restore checks.
func snapshot(m *NodeMap) []bool {
	out := make([]bool, m.Nodes())
	for g := range out {
		out[g] = m.Used(g)
	}
	return out
}

// TestContiguousExhaustive enumerates every occupancy state of small
// machines and every request size, and checks the contiguous
// allocator's two invariants directly:
//
//   - a single-CU-sized request is granted if and only if some CU can
//     hold it whole, and the grant never spans CUs — contiguous
//     allocation never fragments a CU while a fitting CU exists;
//   - releasing the grant restores the exact prior state — no leaked
//     nodes, no double frees.
func TestContiguousExhaustive(t *testing.T) {
	shapes := []struct{ cus, perCU int }{{1, 4}, {2, 3}, {2, 4}, {3, 3}, {4, 2}}
	for _, sh := range shapes {
		nodes := sh.cus * sh.perCU
		for mask := uint(0); mask < 1<<nodes; mask++ {
			for n := 1; n <= nodes; n++ {
				m := occupancyFromMask(sh.cus, sh.perCU, mask)
				before := snapshot(m)
				freeBefore := m.Free()

				fitsOneCU := false
				for cu := 0; cu < sh.cus; cu++ {
					if m.FreeInCU(cu) >= n {
						fitsOneCU = true
						break
					}
				}

				grant, ok := Contiguous{}.Alloc(m, n)
				if n <= sh.perCU {
					if ok != fitsOneCU {
						t.Fatalf("%dx%d mask %b n=%d: granted=%v, fitting CU exists=%v",
							sh.cus, sh.perCU, mask, n, ok, fitsOneCU)
					}
					if ok {
						cu := grant[0].CU
						for _, g := range grant {
							if g.CU != cu {
								t.Fatalf("%dx%d mask %b n=%d: single-CU grant spans CUs: %v",
									sh.cus, sh.perCU, mask, n, grant)
							}
						}
					}
				} else if ok != (n <= freeBefore) {
					t.Fatalf("%dx%d mask %b n=%d: multi-CU granted=%v with %d free",
						sh.cus, sh.perCU, mask, n, ok, freeBefore)
				}

				if !ok {
					// A declined request must leave the map untouched.
					for g, u := range snapshot(m) {
						if u != before[g] {
							t.Fatalf("%dx%d mask %b n=%d: declined alloc mutated node %d",
								sh.cus, sh.perCU, mask, n, g)
						}
					}
					continue
				}

				// The grant is exact: n distinct, previously free nodes.
				if len(grant) != n {
					t.Fatalf("%dx%d mask %b n=%d: grant size %d", sh.cus, sh.perCU, mask, n, len(grant))
				}
				seen := make(map[int]bool, n)
				for _, g := range grant {
					gid := g.CU*sh.perCU + g.Node
					if seen[gid] {
						t.Fatalf("%dx%d mask %b n=%d: duplicate node %v in grant", sh.cus, sh.perCU, mask, n, g)
					}
					seen[gid] = true
					if before[gid] {
						t.Fatalf("%dx%d mask %b n=%d: granted busy node %v", sh.cus, sh.perCU, mask, n, g)
					}
				}
				if m.Free() != freeBefore-n {
					t.Fatalf("%dx%d mask %b n=%d: free count %d after granting %d of %d",
						sh.cus, sh.perCU, mask, n, m.Free(), n, freeBefore)
				}

				// Freeing is exact: the precise prior state comes back,
				// and freeing again fails.
				if err := m.Release(grant); err != nil {
					t.Fatalf("%dx%d mask %b n=%d: release: %v", sh.cus, sh.perCU, mask, n, err)
				}
				for g, u := range snapshot(m) {
					if u != before[g] {
						t.Fatalf("%dx%d mask %b n=%d: release did not restore node %d",
							sh.cus, sh.perCU, mask, n, g)
					}
				}
				if m.Free() != freeBefore {
					t.Fatalf("%dx%d mask %b n=%d: free count %d after release, want %d",
						sh.cus, sh.perCU, mask, n, m.Free(), freeBefore)
				}
				if err := m.Release(grant); err == nil {
					t.Fatalf("%dx%d mask %b n=%d: double free undetected", sh.cus, sh.perCU, mask, n)
				}
			}
		}
	}
}

// scatteredOrder emulates the striping walk: CUs round-robin, each
// yielding its lowest free node in turn.
func scatteredOrder(cus, perCU int, mask uint, n int) []int {
	next := make([]int, cus)
	var out []int
	for len(out) < n {
		for cu := 0; cu < cus && len(out) < n; cu++ {
			i := next[cu]
			for i < perCU && mask&(1<<(cu*perCU+i)) != 0 {
				i++
			}
			next[cu] = i
			if i == perCU {
				continue
			}
			next[cu] = i + 1
			mask |= 1 << (cu*perCU + i)
			out = append(out, cu*perCU+i)
		}
	}
	return out
}

// TestScatteredExhaustive pins the scattered allocator on the same state
// space: it grants exactly when enough nodes are free anywhere, stripes
// the grant across the CUs round-robin, and frees exactly.
func TestScatteredExhaustive(t *testing.T) {
	const cus, perCU = 2, 4
	nodes := cus * perCU
	for mask := uint(0); mask < 1<<nodes; mask++ {
		for n := 1; n <= nodes; n++ {
			m := occupancyFromMask(cus, perCU, mask)
			freeBefore := m.Free()
			grant, ok := Scattered{}.Alloc(m, n)
			if ok != (n <= freeBefore) {
				t.Fatalf("mask %b n=%d: granted=%v with %d free", mask, n, ok, freeBefore)
			}
			if !ok {
				continue
			}
			want := scatteredOrder(cus, perCU, mask, n)
			for i, g := range grant {
				if gid := g.CU*perCU + g.Node; gid != want[i] {
					t.Fatalf("mask %b n=%d: grant[%d] = node %d, want stripe order %v",
						mask, n, i, gid, want)
				}
			}
			if err := m.Release(grant); err != nil {
				t.Fatalf("mask %b n=%d: release: %v", mask, n, err)
			}
			if m.Free() != freeBefore {
				t.Fatalf("mask %b n=%d: free %d after release, want %d", mask, n, m.Free(), freeBefore)
			}
		}
	}
}
