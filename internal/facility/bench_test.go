package facility

import (
	"testing"

	"roadrunner/internal/params"
	"roadrunner/internal/units"
)

// BenchmarkFacilityAllocContiguous measures one full-machine CU-packed
// grant/release cycle on a half-loaded map.
func BenchmarkFacilityAllocContiguous(b *testing.B) {
	m := NewNodeMap(FullMachineCUs, params.NodesPerCU)
	for g := 0; g < m.Nodes(); g += 2 {
		m.take(g)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		grant, ok := Contiguous{}.Alloc(m, 64)
		if !ok {
			b.Fatal("alloc declined")
		}
		if err := m.Release(grant); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFacilityAllocScattered measures the first-fit equivalent.
func BenchmarkFacilityAllocScattered(b *testing.B) {
	m := NewNodeMap(FullMachineCUs, params.NodesPerCU)
	for g := 0; g < m.Nodes(); g += 2 {
		m.take(g)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		grant, ok := Scattered{}.Alloc(m, 64)
		if !ok {
			b.Fatal("alloc declined")
		}
		if err := m.Release(grant); err != nil {
			b.Fatal(err)
		}
	}
}

// benchJobs is a 200-job model-only stream on the full machine.
func benchJobs(b *testing.B) []Job {
	w := Workload{
		Name: "bench", Seed: 1, Jobs: 200,
		MeanInterarrival: 120 * units.Second,
		Classes: []ClassSpec{
			{Class: ClassSweep3D, Weight: 3, Nodes: []int{64, 128, 256, 512}, MinIters: 100, MaxIters: 400},
			{Class: ClassLinpack, Weight: 1, Nodes: []int{256, 1020, 1530}},
		},
	}
	jobs, err := w.Generate(nil)
	if err != nil {
		b.Fatal(err)
	}
	return jobs
}

// BenchmarkFacilityRunFCFS measures a whole 200-job facility run on the
// full 3,060-node machine under FCFS + contiguous.
func BenchmarkFacilityRunFCFS(b *testing.B) {
	jobs := benchJobs(b)
	cfg := Config{Policy: FCFS{}, Alloc: Contiguous{}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg, jobs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFacilityRunEASY measures the same stream under EASY-backfill,
// whose reservation scan is the scheduler's hot step.
func BenchmarkFacilityRunEASY(b *testing.B) {
	jobs := benchJobs(b)
	cfg := Config{Policy: EASY{}, Alloc: Scattered{}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg, jobs); err != nil {
			b.Fatal(err)
		}
	}
}
