// Package facility scales the simulator up one level: from one job on
// an empty fabric to the whole machine under a stream of jobs — the
// operated-facility framing of the paper (17 Connected Units sharing a
// job mix of LINPACK, Sweep3D and hybrid workloads over time), in the
// spirit of facility digital twins such as ExaDigiT/RAPS.
//
// The package composes four layers:
//
//   - a workload model (workload.go): a deterministic seeded arrival
//     process over a declarative job-mix spec, with each job's runtime
//     drawn from the repository's calibrated application models
//     (Sweep3D's at-scale wavefront model, the hybrid HPL model) or
//     from a trace.Evaluator replay of a captured schedule under the
//     node allocation the job was actually granted;
//   - a node-allocation layer (alloc.go): pluggable allocators over a
//     per-CU occupancy map — contiguous CU-packed, scattered
//     first-fit, and a placement-optimizer-assisted allocator that
//     runs internal/placement over the granted nodes;
//   - a batch scheduler (sched.go): a discrete-event loop over job
//     arrivals and completions with pluggable policies (FCFS and
//     EASY-backfill);
//   - accounting over time: utilization, queue wait, bounded slowdown,
//     external fragmentation integrated over the run, and the makespan
//     against an oracle packer lower bound.
//
// Everything is a pure, deterministic function of (workload spec,
// policy, allocator, machine size): no wall clock, no unseeded
// randomness, no map iteration in any result path. The facility-stream
// experiment runs inside the orchestrator's serial-vs-parallel
// byte-identity contract like every other experiment.
package facility

import (
	"fmt"

	"roadrunner/internal/fabric"
	"roadrunner/internal/params"
)

// NodeMap tracks which compute nodes are busy, CU by CU. It is the
// state every allocator operates on: a global free/used bit per node
// plus per-CU free counts, so single-CU fit questions are O(CUs) and
// fragmentation is O(CUs) to measure.
type NodeMap struct {
	cus    int
	perCU  int
	used   []bool // indexed by global node id
	free   int
	freeCU []int
}

// NewNodeMap returns an all-free occupancy map for cus Connected Units
// of perCU nodes each.
func NewNodeMap(cus, perCU int) *NodeMap {
	if cus < 1 || perCU < 1 {
		panic(fmt.Sprintf("facility: %d CUs x %d nodes", cus, perCU))
	}
	m := &NodeMap{
		cus:    cus,
		perCU:  perCU,
		used:   make([]bool, cus*perCU),
		free:   cus * perCU,
		freeCU: make([]int, cus),
	}
	for cu := range m.freeCU {
		m.freeCU[cu] = perCU
	}
	return m
}

// Nodes returns the machine size.
func (m *NodeMap) Nodes() int { return m.cus * m.perCU }

// CUs returns the Connected Unit count.
func (m *NodeMap) CUs() int { return m.cus }

// PerCU returns the nodes per Connected Unit.
func (m *NodeMap) PerCU() int { return m.perCU }

// Free returns the machine-wide free node count.
func (m *NodeMap) Free() int { return m.free }

// FreeInCU returns one CU's free node count.
func (m *NodeMap) FreeInCU(cu int) int { return m.freeCU[cu] }

// Used reports whether a global node index is allocated.
func (m *NodeMap) Used(g int) bool { return m.used[g] }

// take marks one node busy. It is the only mutation allocators use, so
// the free counters can never drift from the bitmap.
func (m *NodeMap) take(g int) {
	if m.used[g] {
		panic(fmt.Sprintf("facility: double allocation of node %d", g))
	}
	m.used[g] = true
	m.free--
	m.freeCU[g/m.perCU]--
}

// Release frees an exact grant. Freeing a node that is not allocated —
// a double free, or a free of nodes never granted — is an accounting
// corruption and returns an error rather than silently leaking.
func (m *NodeMap) Release(nodes []fabric.NodeID) error {
	for _, n := range nodes {
		g := n.CU*m.perCU + n.Node
		if g < 0 || g >= len(m.used) || n.Node < 0 || n.Node >= m.perCU {
			return fmt.Errorf("facility: releasing %v outside the %d-node machine", n, m.Nodes())
		}
		if !m.used[g] {
			return fmt.Errorf("facility: double free of node %v", n)
		}
		m.used[g] = false
		m.free++
		m.freeCU[n.CU]++
	}
	return nil
}

// Fragmentation returns the external-fragmentation metric of the
// current occupancy: 1 - (largest single-CU free block / total free
// nodes). Zero means all free capacity is usable by the largest
// single-CU request that fits anywhere (one CU holds it all, or the
// machine is full); values toward 1 mean the free nodes are shredded
// across CUs where no CU-packed job can use them.
func (m *NodeMap) Fragmentation() float64 {
	if m.free == 0 {
		return 0
	}
	maxCU := 0
	for _, f := range m.freeCU {
		if f > maxCU {
			maxCU = f
		}
	}
	return 1 - float64(maxCU)/float64(m.free)
}

// nodeID converts a global index to the fabric's node identifier,
// honouring the map's own CU width (scaled machines have the standard
// 180-node CUs, so this matches fabric.FromGlobal whenever perCU is
// params.NodesPerCU).
func (m *NodeMap) nodeID(g int) fabric.NodeID {
	return fabric.NodeID{CU: g / m.perCU, Node: g % m.perCU}
}

// FullMachineCUs is the as-built Connected Unit count, the default
// machine the facility simulator drives.
const FullMachineCUs = params.NumCUs
