package facility

import (
	"reflect"
	"testing"

	"roadrunner/internal/fabric"
	"roadrunner/internal/ib"
	"roadrunner/internal/trace"
	"roadrunner/internal/transport"
	"roadrunner/internal/units"
)

func TestNodeMapReleaseErrors(t *testing.T) {
	m := NewNodeMap(2, 4)
	grant, ok := Contiguous{}.Alloc(m, 3)
	if !ok || len(grant) != 3 {
		t.Fatalf("alloc 3: ok=%v grant=%v", ok, grant)
	}
	if err := m.Release(grant); err != nil {
		t.Fatalf("release: %v", err)
	}
	if err := m.Release(grant); err == nil {
		t.Error("double free not detected")
	}
	if err := m.Release([]fabric.NodeID{{CU: 5, Node: 0}}); err == nil {
		t.Error("out-of-range CU free not detected")
	}
	if err := m.Release([]fabric.NodeID{{CU: 0, Node: 9}}); err == nil {
		t.Error("out-of-range node free not detected")
	}
	if m.Free() != m.Nodes() {
		t.Errorf("free = %d after failed releases, want %d", m.Free(), m.Nodes())
	}
}

func TestFragmentationMetric(t *testing.T) {
	if f := NewNodeMap(1, 4).Fragmentation(); f != 0 {
		t.Errorf("single-CU empty machine fragmentation = %v", f)
	}
	m := NewNodeMap(2, 4)
	// Fill CU 0: all free capacity is one whole CU -> frag 0.
	for g := 0; g < 4; g++ {
		m.take(g)
	}
	if f := m.Fragmentation(); f != 0 {
		t.Errorf("one-full-CU fragmentation = %v, want 0", f)
	}
	// Shift to 2 busy nodes in each CU: 4 free, max CU block 2 -> 0.5.
	if err := m.Release([]fabric.NodeID{{CU: 0, Node: 0}, {CU: 0, Node: 1}}); err != nil {
		t.Fatal(err)
	}
	m.take(4)
	m.take(5)
	if f := m.Fragmentation(); f != 0.5 {
		t.Errorf("split occupancy fragmentation = %v, want 0.5", f)
	}
	for g := 0; g < 8; g++ {
		if !m.Used(g) {
			m.take(g)
		}
	}
	if f := m.Fragmentation(); f != 0 {
		t.Errorf("full machine fragmentation = %v, want 0", f)
	}
}

// testWorkload is a small model-only mix (no trace jobs).
func testWorkload(seed int64, jobs int) Workload {
	return Workload{
		Name: "test", Seed: seed, Jobs: jobs,
		MeanInterarrival: 30 * units.Second,
		Classes: []ClassSpec{
			{Class: ClassSweep3D, Weight: 2, Nodes: []int{2, 4, 6}, MinIters: 50, MaxIters: 200},
			{Class: ClassLinpack, Weight: 1, Nodes: []int{4, 8}},
		},
	}
}

func TestWorkloadDeterministic(t *testing.T) {
	w := testWorkload(7, 40)
	a, err := w.Generate(nil)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	b, err := w.Generate(nil)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same spec generated different job lists")
	}
	last := units.Time(0)
	for _, j := range a {
		if j.Arrival < last {
			t.Errorf("job %d arrives at %v before predecessor at %v", j.ID, j.Arrival, last)
		}
		last = j.Arrival
		if j.Runtime <= 0 {
			t.Errorf("job %d runtime %v", j.ID, j.Runtime)
		}
	}
}

func TestRuntimeModels(t *testing.T) {
	// Weak-scaling Sweep3D: more nodes, longer iteration (wider
	// wavefront), and iterations multiply.
	if a, b := Sweep3DRuntime(64, 1), Sweep3DRuntime(1024, 1); a >= b {
		t.Errorf("sweep3d runtime not growing with scale: %v at 64 vs %v at 1024", a, b)
	}
	if a, b := Sweep3DRuntime(64, 1), Sweep3DRuntime(64, 10); b != 10*a {
		t.Errorf("sweep3d iterations not linear: %v vs %v", a, b)
	}
	// Memory-proportional HPL: runtime grows like sqrt(nodes), and the
	// full-machine run lands in the record run's few-hours regime.
	if a, b := LinpackRuntime(256), LinpackRuntime(1024); b <= a {
		t.Errorf("linpack runtime shrank with scale: %v at 256 vs %v at 1024", a, b)
	}
	full := LinpackRuntime(3060).Seconds()
	if full < 3600 || full > 6*3600 {
		t.Errorf("full-machine linpack = %.0fs, want a few hours", full)
	}
}

// backfillJobs is the canonical EASY-vs-FCFS scenario on an 8-node
// machine: a long 6-node job holds the machine, an 8-node job blocks the
// queue, and a short 2-node job can only start early by backfilling.
func backfillJobs() []Job {
	return []Job{
		{ID: 0, Class: ClassSweep3D, Nodes: 6, Arrival: 0, Iters: 1, Runtime: 100 * units.Second},
		{ID: 1, Class: ClassSweep3D, Nodes: 8, Arrival: 1 * units.Second, Iters: 1, Runtime: 10 * units.Second},
		{ID: 2, Class: ClassSweep3D, Nodes: 2, Arrival: 2 * units.Second, Iters: 1, Runtime: 50 * units.Second},
	}
}

func TestEASYBackfillsFCFSDoesNot(t *testing.T) {
	run := func(p Policy) *Result {
		res, err := Run(Config{CUs: 2, PerCU: 4, Policy: p, Alloc: Scattered{}}, backfillJobs())
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		return res
	}
	fcfs := run(FCFS{})
	easy := run(EASY{})

	// FCFS: job 2 waits behind the blocked 8-node job.
	if got := fcfs.Jobs[2].Start; got != 110*units.Second {
		t.Errorf("fcfs job 2 start = %v, want 110s", got)
	}
	if fcfs.Backfilled != 0 {
		t.Errorf("fcfs backfilled %d jobs", fcfs.Backfilled)
	}
	// EASY: job 2 starts immediately (finishes at 52s, before the head's
	// 100s shadow) and is flagged as backfilled.
	if got := easy.Jobs[2].Start; got != 2*units.Second {
		t.Errorf("easy job 2 start = %v, want 2s", got)
	}
	if !easy.Jobs[2].Backfilled || easy.Backfilled != 1 {
		t.Errorf("easy backfill flags: job2=%v total=%d", easy.Jobs[2].Backfilled, easy.Backfilled)
	}
	// The head is not delayed by the backfill: job 1 starts when job 0
	// completes under both policies.
	if fcfs.Jobs[1].Start != easy.Jobs[1].Start {
		t.Errorf("backfill delayed the head: fcfs %v vs easy %v", fcfs.Jobs[1].Start, easy.Jobs[1].Start)
	}
	if easy.MeanWait >= fcfs.MeanWait {
		t.Errorf("easy mean wait %v not below fcfs %v", easy.MeanWait, fcfs.MeanWait)
	}
	if easy.Makespan > fcfs.Makespan {
		t.Errorf("easy makespan %v exceeds fcfs %v", easy.Makespan, fcfs.Makespan)
	}
}

func TestRunAccountingSanity(t *testing.T) {
	w := testWorkload(11, 60)
	jobs, err := w.Generate(nil)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	for _, p := range []Policy{FCFS{}, EASY{}} {
		for _, al := range []Allocator{Contiguous{}, Scattered{}} {
			res, err := Run(Config{CUs: 2, PerCU: 6, Policy: p, Alloc: al}, jobs)
			if err != nil {
				t.Fatalf("%s/%s: %v", p.Name(), al.Name(), err)
			}
			if len(res.Jobs) != len(jobs) {
				t.Fatalf("%s/%s: %d outcomes for %d jobs", p.Name(), al.Name(), len(res.Jobs), len(jobs))
			}
			if res.Utilization <= 0 || res.Utilization > 1 {
				t.Errorf("%s/%s: utilization %v", p.Name(), al.Name(), res.Utilization)
			}
			if res.Makespan < res.OracleMakespan {
				t.Errorf("%s/%s: makespan %v beats the oracle bound %v",
					p.Name(), al.Name(), res.Makespan, res.OracleMakespan)
			}
			if res.OracleRatio < 1 {
				t.Errorf("%s/%s: oracle ratio %v < 1", p.Name(), al.Name(), res.OracleRatio)
			}
			if res.MeanSlowdown < 1 {
				t.Errorf("%s/%s: mean bounded slowdown %v < 1", p.Name(), al.Name(), res.MeanSlowdown)
			}
			for _, j := range res.Jobs {
				if j.Start < j.Arrival || j.Finish != j.Start+j.Runtime {
					t.Errorf("%s/%s: job %d lifecycle %v/%v/%v inconsistent",
						p.Name(), al.Name(), j.ID, j.Arrival, j.Start, j.Finish)
				}
				if al.Name() == "contiguous" && j.Nodes <= res.PerCU && j.CUsSpanned != 1 {
					t.Errorf("contiguous: single-CU job %d spans %d CUs", j.ID, j.CUsSpanned)
				}
			}
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	w := testWorkload(23, 40)
	jobs, err := w.Generate(nil)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	cfg := Config{CUs: 2, PerCU: 6, Policy: EASY{}, Alloc: Contiguous{}}
	a, err := Run(cfg, jobs)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	b, err := Run(cfg, jobs)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("repeated runs differ")
	}
}

// facilityMeshTrace builds a small all-pairs synthetic trace, the cheap
// stand-in for a captured application schedule.
func facilityMeshTrace(t *testing.T, ranks int) *trace.Trace {
	t.Helper()
	rec := trace.NewRecorder("facility-mesh", "test", ranks)
	for r := 0; r < ranks; r++ {
		rec.Compute(r, units.Time(r+1)*units.Microsecond, 0)
		for dst := r + 1; dst < ranks; dst++ {
			rec.Send(r, dst, r*ranks+dst, 64*units.KB, 0)
		}
		for src := 0; src < r; src++ {
			rec.Recv(r, src, src*ranks+r, 64*units.KB, 0)
		}
	}
	tr, err := rec.Trace()
	if err != nil {
		t.Fatalf("recorder: %v", err)
	}
	return tr
}

func TestTraceJobsAndAssistedAllocator(t *testing.T) {
	tr := facilityMeshTrace(t, 8)
	rt, err := NewTraceRuntime(tr, trace.ReplayConfig{
		Fabric: fabric.NewScaled(1), Profile: ib.OpenMPI(), Policy: transport.Congested(),
	})
	if err != nil {
		t.Fatalf("trace runtime: %v", err)
	}
	defer rt.Close()
	if rt.Reference() <= 0 {
		t.Fatalf("reference makespan %v", rt.Reference())
	}

	jobs := []Job{
		{ID: 0, Class: ClassSweep3D, Nodes: 32, Arrival: 0, Iters: 1, Runtime: 20 * units.Second},
		{ID: 1, Class: ClassTrace, Nodes: 8, Arrival: units.Second, Iters: 3, Runtime: rt.Reference() * 3},
		{ID: 2, Class: ClassTrace, Nodes: 8, Arrival: 2 * units.Second, Iters: 3, Runtime: rt.Reference() * 3},
	}
	run := func(al Allocator) *Result {
		res, err := Run(Config{CUs: 1, PerCU: 180, Policy: EASY{}, Alloc: al, Trace: rt}, jobs)
		if err != nil {
			t.Fatalf("%s: %v", al.Name(), err)
		}
		return res
	}
	plain := run(Contiguous{})
	assisted := run(&Assisted{Seed: 42})

	// The assisted search starts from the linear walk of the same grant,
	// so its trace runtimes can only match or beat the plain allocator's.
	for i := 1; i <= 2; i++ {
		if assisted.Jobs[i].Runtime > plain.Jobs[i].Runtime {
			t.Errorf("assisted trace job %d runtime %v exceeds linear %v",
				i, assisted.Jobs[i].Runtime, plain.Jobs[i].Runtime)
		}
	}

	// Trace runs are as deterministic as everything else.
	again := run(&Assisted{Seed: 42})
	if !reflect.DeepEqual(assisted, again) {
		t.Error("repeated assisted runs differ")
	}
}

func TestRunValidation(t *testing.T) {
	cfg := Config{CUs: 1, PerCU: 4, Policy: FCFS{}, Alloc: Scattered{}}
	if _, err := Run(cfg, []Job{{ID: 0, Nodes: 9, Runtime: units.Second}}); err == nil {
		t.Error("oversized job accepted")
	}
	if _, err := Run(cfg, []Job{{ID: 0, Nodes: 2, Runtime: 0}}); err == nil {
		t.Error("zero-runtime job accepted")
	}
	if _, err := Run(cfg, []Job{{ID: 0, Class: ClassTrace, Nodes: 2, Runtime: units.Second}}); err == nil {
		t.Error("trace job without trace runtime accepted")
	}
	if _, err := Run(Config{Policy: FCFS{}}, nil); err == nil {
		t.Error("nil allocator accepted")
	}
}

func TestRenderSmoke(t *testing.T) {
	jobs := backfillJobs()
	res, err := Run(Config{CUs: 2, PerCU: 4, Policy: EASY{}, Alloc: Contiguous{}}, jobs)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if g := Gantt(res, 40); len(g) == 0 {
		t.Error("empty gantt")
	}
	if o := Occupancy(res, 40); len(o) == 0 {
		t.Error("empty occupancy")
	}
	if s := Summary(res); len(s) == 0 {
		t.Error("empty summary")
	}
}
