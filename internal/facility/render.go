package facility

import (
	"fmt"
	"strings"

	"roadrunner/internal/units"
)

// Gantt renders the run as a fixed-width text chart, one row per job:
// dots for queue wait, hashes for execution, over a [0, makespan] axis.
func Gantt(res *Result, width int) string {
	if width < 20 {
		width = 20
	}
	if res.Makespan <= 0 || len(res.Jobs) == 0 {
		return "(empty run)\n"
	}
	col := func(t units.Time) int {
		c := int(float64(t) / float64(res.Makespan) * float64(width))
		if c > width {
			c = width
		}
		return c
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %-8s %6s  %-*s  %s\n", "job", "class", "nodes", width, "timeline", "wait/run")
	for _, j := range res.Jobs {
		row := make([]byte, width)
		for i := range row {
			row[i] = ' '
		}
		a, s, f := col(j.Arrival), col(j.Start), col(j.Finish)
		for i := a; i < s && i < width; i++ {
			row[i] = '.'
		}
		for i := s; i < f && i < width; i++ {
			row[i] = '#'
		}
		if s < width && s >= 0 && row[s] == ' ' {
			row[s] = '#' // sub-column jobs still show up
		}
		mark := ""
		if j.Backfilled {
			mark = " <backfill"
		}
		fmt.Fprintf(&b, "%-4d %-8s %6d  [%s]  %v/%v%s\n",
			j.ID, j.Class, j.Nodes, row, j.Wait, j.Runtime, mark)
	}
	return b.String()
}

// occupancyLevels maps a bucket's mean occupancy fraction to a glyph.
const occupancyLevels = " .:-=+*#%@"

// Occupancy renders the node-occupancy timeline as a one-line density
// strip plus the fragmentation strip underneath, bucketed to width.
func Occupancy(res *Result, width int) string {
	if width < 20 {
		width = 20
	}
	if res.Makespan <= 0 || len(res.Timeline) == 0 {
		return "(empty run)\n"
	}
	nodes := float64(res.CUs * res.PerCU)
	occ := make([]float64, width)
	frag := make([]float64, width)
	wsum := make([]float64, width)
	// Integrate each piecewise-constant segment into its buckets.
	for i, s := range res.Timeline {
		t0 := s.Time
		t1 := res.Makespan
		if i+1 < len(res.Timeline) {
			t1 = res.Timeline[i+1].Time
		}
		if t1 <= t0 {
			continue
		}
		b0 := int(float64(t0) / float64(res.Makespan) * float64(width))
		b1 := int(float64(t1) / float64(res.Makespan) * float64(width))
		for b := b0; b <= b1 && b < width; b++ {
			lo, hi := t0, t1
			if bs := units.Time(float64(res.Makespan) * float64(b) / float64(width)); bs > lo {
				lo = bs
			}
			if be := units.Time(float64(res.Makespan) * float64(b+1) / float64(width)); be < hi {
				hi = be
			}
			if hi <= lo {
				continue
			}
			w := float64(hi - lo)
			occ[b] += float64(s.Used) / nodes * w
			frag[b] += s.Frag * w
			wsum[b] += w
		}
	}
	glyph := func(v float64) byte {
		i := int(v * float64(len(occupancyLevels)))
		if i >= len(occupancyLevels) {
			i = len(occupancyLevels) - 1
		}
		if i < 0 {
			i = 0
		}
		return occupancyLevels[i]
	}
	occRow := make([]byte, width)
	fragRow := make([]byte, width)
	for b := 0; b < width; b++ {
		o, f := 0.0, 0.0
		if wsum[b] > 0 {
			o, f = occ[b]/wsum[b], frag[b]/wsum[b]
		}
		occRow[b] = glyph(o)
		fragRow[b] = glyph(f)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "occupancy [%s] 0..%v\n", occRow, res.Makespan)
	fmt.Fprintf(&b, "frag      [%s] (scale %q)\n", fragRow, occupancyLevels)
	return b.String()
}

// Summary renders the run's headline metrics.
func Summary(res *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "policy=%s alloc=%s machine=%dx%d (%d nodes) jobs=%d\n",
		res.Policy, res.Alloc, res.CUs, res.PerCU, res.CUs*res.PerCU, len(res.Jobs))
	fmt.Fprintf(&b, "makespan        %v (oracle %v, ratio %.3f)\n",
		res.Makespan, res.OracleMakespan, res.OracleRatio)
	fmt.Fprintf(&b, "utilization     %.1f%%\n", res.Utilization*100)
	fmt.Fprintf(&b, "queue wait      mean %v, p95 %v\n", res.MeanWait, res.P95Wait)
	fmt.Fprintf(&b, "bounded slowdown %.2f (tau %v)\n", res.MeanSlowdown, units.Time(BoundedSlowdownTau))
	fmt.Fprintf(&b, "fragmentation   %.3f mean over makespan\n", res.MeanFragmentation)
	fmt.Fprintf(&b, "backfilled      %d jobs\n", res.Backfilled)
	return b.String()
}
