package facility

import (
	"fmt"
	"math"
	"sort"

	"roadrunner/internal/fabric"
	"roadrunner/internal/params"
	"roadrunner/internal/units"
)

// Config drives one facility run: the machine shape, the scheduling
// policy, the node allocator, and the trace runtime backing ClassTrace
// jobs (nil when the mix has none).
type Config struct {
	// CUs and PerCU size the machine; zero values take the as-built
	// 17 x 180.
	CUs    int
	PerCU  int
	Policy Policy
	Alloc  Allocator
	Trace  *TraceRuntime
}

// QueuedJob is a policy's view of one waiting job.
type QueuedJob struct {
	ID      int
	Nodes   int
	Runtime units.Time // the scheduler's estimate
}

// RunningJob is a policy's view of one started job.
type RunningJob struct {
	Nodes  int
	Finish units.Time // estimated finish (start + estimate)
}

// Policy decides which queued jobs start at each scheduling point. A
// policy may only start jobs through Sched.TryStart, so it can never
// bypass the allocator or the queue's bookkeeping.
type Policy interface {
	Name() string
	Schedule(s *Sched)
}

// Sched is the scheduling context a Policy operates on: a snapshot view
// of the queue and the running set, plus the one mutating call.
type Sched struct {
	sim *simulator
}

// Now returns the current simulation time.
func (s *Sched) Now() units.Time { return s.sim.now }

// FreeNodes returns the machine-wide free node count.
func (s *Sched) FreeNodes() int { return s.sim.m.Free() }

// Queue returns the waiting jobs in arrival order. The slice is rebuilt
// per call: a TryStart invalidates previously returned slices.
func (s *Sched) Queue() []QueuedJob {
	out := make([]QueuedJob, len(s.sim.queue))
	for i, j := range s.sim.queue {
		out[i] = QueuedJob{ID: j.Job.ID, Nodes: j.Job.Nodes, Runtime: j.Job.Runtime}
	}
	return out
}

// Running returns the running jobs with their estimated finish times,
// in start order.
func (s *Sched) Running() []RunningJob {
	out := make([]RunningJob, len(s.sim.running))
	for i, j := range s.sim.running {
		out[i] = RunningJob{Nodes: j.Job.Nodes, Finish: j.start + j.Job.Runtime}
	}
	return out
}

// TryStart attempts to start the i-th queued job now. It returns false
// when the allocator declines (not enough nodes, or fragmentation the
// allocator refuses to absorb); on success the job leaves the queue and
// its completion is scheduled.
func (s *Sched) TryStart(i int) bool {
	return s.sim.tryStart(i)
}

// FCFS is strict first-come-first-served: the queue head starts as soon
// as the allocator grants it; nothing overtakes.
type FCFS struct{}

// Name identifies the policy in reports.
func (FCFS) Name() string { return "fcfs" }

// Schedule starts head jobs while they fit.
func (FCFS) Schedule(s *Sched) {
	for len(s.sim.queue) > 0 && s.TryStart(0) {
	}
}

// EASY is EASY-backfill: FCFS with a reservation for the blocked head —
// later jobs may overtake only when they cannot delay it, either by
// finishing before the head's shadow time or by fitting in the extra
// nodes the reservation leaves unused. Estimates are exact in this
// simulator for the model classes, so the reservation is never violated
// by them; trace jobs can run past their estimate when the granted
// mapping is worse than the reference, the same hazard real EASY
// accepts from user estimates.
type EASY struct{}

// Name identifies the policy in reports.
func (EASY) Name() string { return "easy" }

// Schedule runs the FCFS pass, then backfills behind the blocked head.
func (EASY) Schedule(s *Sched) {
	for len(s.sim.queue) > 0 && s.TryStart(0) {
	}
	q := s.Queue()
	if len(q) == 0 {
		return
	}
	shadow, extra := reservation(s, q[0].Nodes)
	for i := 1; i < len(q); {
		j := q[i]
		if j.Nodes <= s.FreeNodes() &&
			(s.Now()+j.Runtime <= shadow || j.Nodes <= extra) &&
			s.TryStart(i) {
			q = s.Queue()
			shadow, extra = reservation(s, q[0].Nodes)
			continue // the next candidate shifted into slot i
		}
		i++
	}
}

// reservation computes the head's shadow time (when enough nodes will
// have drained for it to start, by node count) and the extra nodes that
// start leaves free. When the head is blocked by fragmentation rather
// than capacity, the shadow is now and only the extra-nodes rule
// admits backfill — conservative, since a node-count reservation cannot
// see CU shapes.
func reservation(s *Sched, headNodes int) (shadow units.Time, extra int) {
	free := s.FreeNodes()
	if free >= headNodes {
		return s.Now(), free - headNodes
	}
	running := s.Running()
	sort.Slice(running, func(a, b int) bool { return running[a].Finish < running[b].Finish })
	for _, r := range running {
		free += r.Nodes
		if free >= headNodes {
			return r.Finish, free - headNodes
		}
	}
	// Unreachable for validated jobs (every job fits the empty machine),
	// but never admit unlimited backfill on a bookkeeping surprise.
	return units.Time(math.MaxInt64), 0
}

// NewPolicy resolves a policy by name ("fcfs" or "easy"), the CLI and
// scenario entry point.
func NewPolicy(name string) (Policy, error) {
	switch name {
	case "fcfs":
		return FCFS{}, nil
	case "easy":
		return EASY{}, nil
	}
	return nil, fmt.Errorf("facility: unknown policy %q (want fcfs or easy)", name)
}

// ---------------------------------------------------------------------------
// The discrete-event loop.
// ---------------------------------------------------------------------------

// Event kinds, completion first: nodes freed at time t are available to
// a job arriving at t.
const (
	evComplete = iota
	evArrive
)

type event struct {
	at   units.Time
	kind int
	seq  int // tie-break: schedule order
	job  *runJob
}

func eventLess(a, b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	return a.seq < b.seq
}

// eventHeap is a plain binary min-heap; the facility's calendar is far
// too small to need internal/sim's slab calendar.
type eventHeap []event

func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !eventLess((*h)[i], (*h)[p]) {
			break
		}
		(*h)[i], (*h)[p] = (*h)[p], (*h)[i]
		i = p
	}
}

func (h *eventHeap) pop() event {
	top := (*h)[0]
	last := len(*h) - 1
	(*h)[0] = (*h)[last]
	*h = (*h)[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < last && eventLess((*h)[l], (*h)[m]) {
			m = l
		}
		if r < last && eventLess((*h)[r], (*h)[m]) {
			m = r
		}
		if m == i {
			break
		}
		(*h)[i], (*h)[m] = (*h)[m], (*h)[i]
		i = m
	}
	return top
}

// runJob is a job's full lifecycle state.
type runJob struct {
	Job        Job
	start      units.Time
	finish     units.Time
	actual     units.Time // actual runtime (differs from estimate for trace jobs)
	grant      []fabric.NodeID
	backfilled bool
	started    bool
	done       bool
}

type simulator struct {
	cfg     Config
	m       *NodeMap
	now     units.Time
	queue   []*runJob // arrival order
	running []*runJob // start order
	seq     int
	heap    eventHeap
	err     error // first start-time failure (trace evaluation)

	// Accounting integrals, float64 node-seconds / seconds: 3,060 nodes
	// times a multi-hour horizon overflows int64 picosecond products.
	lastT     units.Time
	busyInt   float64 // ∫ used(t) dt, node-seconds
	fragInt   float64 // ∫ frag(t) dt, seconds
	timeline  []OccupancySample
	completed []*runJob
}

// OccupancySample is one point of the occupancy/fragmentation timeline,
// recorded after every state change.
type OccupancySample struct {
	Time units.Time
	Used int
	Frag float64
}

// JobOutcome is one job's accounted lifecycle.
type JobOutcome struct {
	ID         int
	Class      string
	Nodes      int
	CUsSpanned int
	Arrival    units.Time
	Start      units.Time
	Finish     units.Time
	Wait       units.Time
	Runtime    units.Time // actual
	Estimate   units.Time
	Slowdown   float64 // bounded slowdown, tau = 10s
	Backfilled bool
}

// Result is one facility run's accounting.
type Result struct {
	Policy string
	Alloc  string
	CUs    int
	PerCU  int
	Jobs   []JobOutcome
	// Makespan is the last completion time.
	Makespan units.Time
	// Utilization is delivered node-time over machine node-time across
	// the makespan.
	Utilization float64
	MeanWait    units.Time
	P95Wait     units.Time
	// MeanSlowdown is the mean bounded slowdown (tau = 10s).
	MeanSlowdown float64
	// MeanFragmentation is the external-fragmentation metric integrated
	// over the makespan.
	MeanFragmentation float64
	// OracleMakespan is the packer lower bound: no schedule can beat
	// max(total work / machine, latest arrival+runtime).
	OracleMakespan units.Time
	// OracleRatio is Makespan over OracleMakespan (>= 1).
	OracleRatio float64
	// Backfilled counts jobs that overtook the queue head.
	Backfilled int
	Timeline   []OccupancySample
}

// BoundedSlowdownTau is the runtime floor of the bounded-slowdown
// metric: below it, slowdown measures wait against tau, not against a
// vanishing runtime.
const BoundedSlowdownTau = 10 * units.Second

// Run drives the machine through the job stream and returns the
// accounting. It is a pure function of its arguments: same jobs, same
// config, same Result.
func Run(cfg Config, jobs []Job) (*Result, error) {
	if cfg.CUs == 0 {
		cfg.CUs = FullMachineCUs
	}
	if cfg.PerCU == 0 {
		cfg.PerCU = params.NodesPerCU
	}
	if cfg.Policy == nil || cfg.Alloc == nil {
		return nil, fmt.Errorf("facility: nil policy or allocator")
	}
	s := &simulator{cfg: cfg, m: NewNodeMap(cfg.CUs, cfg.PerCU)}
	for i := range jobs {
		j := &jobs[i]
		if j.Nodes < 1 || j.Nodes > s.m.Nodes() {
			return nil, fmt.Errorf("facility: job %d requests %d nodes on a %d-node machine",
				j.ID, j.Nodes, s.m.Nodes())
		}
		if j.Runtime <= 0 {
			return nil, fmt.Errorf("facility: job %d has runtime %v", j.ID, j.Runtime)
		}
		if j.Class == ClassTrace {
			if cfg.Trace == nil {
				return nil, fmt.Errorf("facility: job %d is a trace job but no trace runtime is configured", j.ID)
			}
			if j.Nodes != cfg.Trace.Ranks() {
				return nil, fmt.Errorf("facility: trace job %d requests %d nodes for a %d-rank trace",
					j.ID, j.Nodes, cfg.Trace.Ranks())
			}
		}
		s.heap.push(event{at: j.Arrival, kind: evArrive, seq: s.seq, job: &runJob{Job: *j}})
		s.seq++
	}

	sched := &Sched{sim: s}
	for len(s.heap) > 0 {
		e := s.heap.pop()
		s.advance(e.at)
		switch e.kind {
		case evArrive:
			s.queue = append(s.queue, e.job)
		case evComplete:
			s.complete(e.job)
		}
		cfg.Policy.Schedule(sched)
		if s.err != nil {
			return nil, s.err
		}
		s.timeline = append(s.timeline, OccupancySample{
			Time: s.now, Used: s.m.Nodes() - s.m.Free(), Frag: s.m.Fragmentation(),
		})
	}
	if len(s.queue) != 0 {
		return nil, fmt.Errorf("facility: %d jobs still queued at end of stream", len(s.queue))
	}
	if s.m.Free() != s.m.Nodes() {
		return nil, fmt.Errorf("facility: %d nodes still allocated after all jobs completed",
			s.m.Nodes()-s.m.Free())
	}
	return s.result(jobs)
}

// advance integrates the occupancy and fragmentation up to t.
func (s *simulator) advance(t units.Time) {
	if t < s.now {
		panic(fmt.Sprintf("facility: time going backwards: %v -> %v", s.now, t))
	}
	dt := (t - s.lastT).Seconds()
	used := float64(s.m.Nodes() - s.m.Free())
	s.busyInt += used * dt
	s.fragInt += s.m.Fragmentation() * dt
	s.lastT = t
	s.now = t
}

// tryStart allocates and starts the i-th queued job; see Sched.TryStart.
func (s *simulator) tryStart(i int) bool {
	if s.err != nil {
		return false
	}
	j := s.queue[i]
	grant, ok := s.cfg.Alloc.Alloc(s.m, j.Job.Nodes)
	if !ok {
		return false
	}
	actual, err := s.actualRuntime(j, grant)
	if err != nil {
		// Roll back so the run fails cleanly instead of leaking nodes.
		if rerr := s.m.Release(grant); rerr != nil {
			err = fmt.Errorf("%w (and release failed: %v)", err, rerr)
		}
		s.err = err
		return false
	}
	j.started = true
	j.start = s.now
	j.actual = actual
	j.finish = s.now + actual
	j.grant = grant
	j.backfilled = i > 0
	s.queue = append(s.queue[:i], s.queue[i+1:]...)
	s.running = append(s.running, j)
	s.heap.push(event{at: j.finish, kind: evComplete, seq: s.seq, job: j})
	s.seq++
	return true
}

// actualRuntime prices a started job: model classes run exactly their
// estimate; trace jobs replay under the granted mapping — assisted
// allocators search it, everyone else walks the grant linearly.
func (s *simulator) actualRuntime(j *runJob, grant []fabric.NodeID) (units.Time, error) {
	if j.Job.Class != ClassTrace {
		return j.Job.Runtime, nil
	}
	rt := s.cfg.Trace
	if a, ok := s.cfg.Alloc.(*Assisted); ok {
		_, perIter, err := a.MapRanks(rt, j.Job.ID, grant)
		if err != nil {
			return 0, err
		}
		return perIter * units.Time(j.Job.Iters), nil
	}
	perIter, err := rt.Evaluate(linearMapping(grant))
	if err != nil {
		return 0, fmt.Errorf("facility: trace job %d: %w", j.Job.ID, err)
	}
	return perIter * units.Time(j.Job.Iters), nil
}

// complete frees a finished job's nodes.
func (s *simulator) complete(j *runJob) {
	if err := s.m.Release(j.grant); err != nil {
		panic(err) // grants are exact by construction; this is a code bug
	}
	j.done = true
	for i, r := range s.running {
		if r == j {
			s.running = append(s.running[:i], s.running[i+1:]...)
			break
		}
	}
	s.completed = append(s.completed, j)
}

// result assembles the accounting.
func (s *simulator) result(jobs []Job) (*Result, error) {
	res := &Result{
		Policy: s.cfg.Policy.Name(),
		Alloc:  s.cfg.Alloc.Name(),
		CUs:    s.m.CUs(),
		PerCU:  s.m.PerCU(),
		Jobs:   make([]JobOutcome, 0, len(s.completed)),
	}
	waits := make([]units.Time, 0, len(s.completed))
	var slow, work float64
	var latestOracle units.Time
	for _, j := range s.completed {
		wait := j.start - j.Job.Arrival
		denom := j.actual
		if denom < BoundedSlowdownTau {
			denom = BoundedSlowdownTau
		}
		sd := float64(wait+j.actual) / float64(denom)
		if sd < 1 {
			sd = 1
		}
		cus := cusSpanned(j.grant)
		res.Jobs = append(res.Jobs, JobOutcome{
			ID: j.Job.ID, Class: j.Job.Class.String(), Nodes: j.Job.Nodes,
			CUsSpanned: cus,
			Arrival:    j.Job.Arrival, Start: j.start, Finish: j.finish,
			Wait: wait, Runtime: j.actual, Estimate: j.Job.Runtime,
			Slowdown: sd, Backfilled: j.backfilled,
		})
		if j.finish > res.Makespan {
			res.Makespan = j.finish
		}
		waits = append(waits, wait)
		slow += sd
		work += float64(j.Job.Nodes) * (j.actual).Seconds()
		if j.backfilled {
			res.Backfilled++
		}
		if end := j.Job.Arrival + j.actual; end > latestOracle {
			latestOracle = end
		}
	}
	// Completion events pop in (time, seq) order, so Jobs is sorted by
	// finish; re-sort by ID for a stable, human-scannable table.
	sort.Slice(res.Jobs, func(a, b int) bool { return res.Jobs[a].ID < res.Jobs[b].ID })
	n := len(waits)
	if n == 0 {
		return nil, fmt.Errorf("facility: no jobs completed")
	}
	var sum units.Time
	for _, w := range waits {
		sum += w
	}
	res.MeanWait = sum / units.Time(n)
	sort.Slice(waits, func(a, b int) bool { return waits[a] < waits[b] })
	idx := int(math.Ceil(0.95*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	res.P95Wait = waits[idx]
	res.MeanSlowdown = slow / float64(n)
	if res.Makespan > 0 {
		span := res.Makespan.Seconds()
		res.Utilization = s.busyInt / (float64(s.m.Nodes()) * span)
		res.MeanFragmentation = s.fragInt / span
	}
	packed := units.FromSeconds(work / float64(s.m.Nodes()))
	res.OracleMakespan = packed
	if latestOracle > res.OracleMakespan {
		res.OracleMakespan = latestOracle
	}
	if res.OracleMakespan > 0 {
		res.OracleRatio = float64(res.Makespan) / float64(res.OracleMakespan)
	}
	res.Timeline = s.timeline
	return res, nil
}

// cusSpanned counts the distinct CUs of a grant.
func cusSpanned(grant []fabric.NodeID) int {
	seen := make([]bool, params.MaxCUs+1)
	n := 0
	for _, g := range grant {
		if g.CU < len(seen) && !seen[g.CU] {
			seen[g.CU] = true
			n++
		}
	}
	return n
}
