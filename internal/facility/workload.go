package facility

import (
	"fmt"
	"math"
	"math/rand"

	"roadrunner/internal/fabric"
	"roadrunner/internal/linpack"
	"roadrunner/internal/params"
	"roadrunner/internal/sweep3d"
	"roadrunner/internal/trace"
	"roadrunner/internal/transport"
	"roadrunner/internal/triblade"
	"roadrunner/internal/units"
)

// JobClass names the applications in the facility's mix — the three the
// paper reports sharing the machine.
type JobClass int

// The job classes.
const (
	// ClassSweep3D jobs run the at-scale Cell (measured) wavefront
	// model: runtime = CellIterationTime(PaperWeakScaling) x iterations
	// at the job's node count.
	ClassSweep3D JobClass = iota
	// ClassLinpack jobs run the memory-proportional hybrid HPL model:
	// the problem order grows with sqrt(nodes) (constant memory per
	// node, the way real HPL runs are sized), the rate is the node
	// count at the calibrated 74.4% sustained efficiency.
	ClassLinpack
	// ClassTrace jobs replay a captured schedule through a
	// trace.Evaluator under the node allocation actually granted, so
	// their runtime depends on what the allocator did — the
	// production-shaped objective the placement-assisted allocator
	// optimizes.
	ClassTrace
)

// String names the class for reports.
func (c JobClass) String() string {
	switch c {
	case ClassSweep3D:
		return "sweep3d"
	case ClassLinpack:
		return "linpack"
	case ClassTrace:
		return "trace"
	}
	return fmt.Sprintf("JobClass(%d)", int(c))
}

// ClassSpec is one line of the declarative job-mix: a class, its draw
// weight, the node counts it submits at, and its iteration-count range.
type ClassSpec struct {
	Class  JobClass
	Weight int
	// Nodes are the candidate request sizes; each job draws one
	// uniformly. ClassTrace ignores this — a trace job's size is the
	// trace's rank count.
	Nodes []int
	// MinIters..MaxIters bounds the per-job iteration draw (both
	// default to 1; ClassLinpack always runs one factorisation).
	MinIters int
	MaxIters int
}

// Workload is the declarative arrival-process spec: a seeded Poisson
// stream of Jobs jobs drawn from the weighted class mix. The same spec
// always generates the same job list.
type Workload struct {
	Name string
	Seed int64
	Jobs int
	// MeanInterarrival is the exponential interarrival mean.
	MeanInterarrival units.Time
	Classes          []ClassSpec
}

// Job is one generated submission. Runtime is the scheduler's estimate:
// exact for the model classes, the reference-mapping replay for
// ClassTrace (the granted mapping can only be priced at start time).
type Job struct {
	ID      int
	Class   JobClass
	Nodes   int
	Arrival units.Time
	Iters   int
	Runtime units.Time
}

// Generate expands the spec into its deterministic job list. rt backs
// ClassTrace runtime estimates and may be nil when the mix has no trace
// jobs.
func (w Workload) Generate(rt *TraceRuntime) ([]Job, error) {
	if w.Jobs < 1 {
		return nil, fmt.Errorf("facility: workload %q: %d jobs", w.Name, w.Jobs)
	}
	if w.MeanInterarrival <= 0 {
		return nil, fmt.Errorf("facility: workload %q: mean interarrival %v", w.Name, w.MeanInterarrival)
	}
	total := 0
	for i, c := range w.Classes {
		if c.Weight < 0 {
			return nil, fmt.Errorf("facility: workload %q: class %d weight %d", w.Name, i, c.Weight)
		}
		if c.Class == ClassTrace && rt == nil {
			return nil, fmt.Errorf("facility: workload %q: trace class without a trace runtime", w.Name)
		}
		if c.Class != ClassTrace && len(c.Nodes) == 0 {
			return nil, fmt.Errorf("facility: workload %q: class %d (%v) has no node counts", w.Name, i, c.Class)
		}
		total += c.Weight
	}
	if total == 0 {
		return nil, fmt.Errorf("facility: workload %q: no positive class weights", w.Name)
	}

	rng := rand.New(rand.NewSource(w.Seed))
	jobs := make([]Job, 0, w.Jobs)
	now := units.Time(0)
	for id := 0; id < w.Jobs; id++ {
		// Fixed draw order per job — class, size, iters, gap — so the
		// stream is stable under spec edits that do not touch it.
		pick := rng.Intn(total)
		var spec ClassSpec
		for _, c := range w.Classes {
			if pick < c.Weight {
				spec = c
				break
			}
			pick -= c.Weight
		}
		j := Job{ID: id, Class: spec.Class, Arrival: now, Iters: 1}
		if spec.Class == ClassTrace {
			j.Nodes = rt.Ranks()
		} else {
			j.Nodes = spec.Nodes[rng.Intn(len(spec.Nodes))]
		}
		lo, hi := spec.MinIters, spec.MaxIters
		if lo < 1 {
			lo = 1
		}
		if hi < lo {
			hi = lo
		}
		j.Iters = lo + rng.Intn(hi-lo+1)
		switch spec.Class {
		case ClassSweep3D:
			j.Runtime = Sweep3DRuntime(j.Nodes, j.Iters)
		case ClassLinpack:
			j.Iters = 1
			j.Runtime = LinpackRuntime(j.Nodes)
		case ClassTrace:
			j.Runtime = rt.Reference() * units.Time(j.Iters)
		default:
			return nil, fmt.Errorf("facility: workload %q: unknown class %v", w.Name, spec.Class)
		}
		if j.Runtime <= 0 {
			return nil, fmt.Errorf("facility: workload %q: job %d (%v, %d nodes) has runtime %v",
				w.Name, id, j.Class, j.Nodes, j.Runtime)
		}
		jobs = append(jobs, j)
		now += units.Time(math.Round(rng.ExpFloat64() * float64(w.MeanInterarrival)))
	}
	return jobs, nil
}

// Sweep3DRuntime returns the modelled wall-clock of iters weak-scaling
// Sweep3D iterations at a node count — the Fig. 13 Cell (measured)
// series times the iteration count.
func Sweep3DRuntime(nodes, iters int) units.Time {
	return sweep3d.CellIterationTime(sweep3d.PaperWeakScaling(), nodes, sweep3d.CellMeasured) *
		units.Time(iters)
}

// linpackFullMachineN is the record run's problem order on all 3,060
// nodes; smaller partitions scale it by sqrt(nodes/3060), holding the
// per-node memory footprint (N²/nodes) constant.
const linpackFullMachineN = 2_300_000

// LinpackRuntime returns the modelled wall-clock of one hybrid-HPL
// factorisation on a node count: 2/3·N³ flops at the partition's peak
// times the calibrated 74.4% sustained efficiency.
func LinpackRuntime(nodes int) units.Time {
	n := linpackFullMachineN * math.Sqrt(float64(nodes)/float64(FullMachineCUs*params.NodesPerCU))
	flops := 2.0 / 3.0 * n * n * n
	sustained := float64(triblade.New().PeakDP()) * float64(nodes) * linpack.RoadrunnerHPL().Efficiency()
	return units.FromSeconds(flops / sustained)
}

// TraceRuntime prices ClassTrace jobs: one pooled trace.Evaluator, the
// reference (linear lowest-nodes) per-iteration makespan for estimates,
// and Evaluate for the granted mapping at job start. The replay fabric
// must cover every node the facility's allocators can grant.
type TraceRuntime struct {
	Trace  *trace.Trace
	Replay trace.ReplayConfig

	eval *trace.Evaluator
	ref  units.Time
}

// NewTraceRuntime validates the trace once and computes the reference
// per-iteration makespan: rank i on global node i, core 0 — the mapping
// a fresh machine's contiguous allocator would grant the first job.
func NewTraceRuntime(t *trace.Trace, cfg trace.ReplayConfig) (*TraceRuntime, error) {
	ev, err := trace.NewEvaluator(t, cfg)
	if err != nil {
		return nil, err
	}
	places := make([]transport.Endpoint, t.Meta.Ranks)
	for i := range places {
		places[i] = transport.Endpoint{Node: fabric.FromGlobal(i)}
	}
	res, err := ev.Evaluate(places)
	if err != nil {
		ev.Close()
		return nil, err
	}
	return &TraceRuntime{Trace: t, Replay: cfg, eval: ev, ref: res.Time}, nil
}

// Ranks returns the trace's rank count — the node request size of every
// ClassTrace job (one rank per node, core 0).
func (rt *TraceRuntime) Ranks() int { return rt.Trace.Meta.Ranks }

// Reference returns the per-iteration makespan under the reference
// mapping.
func (rt *TraceRuntime) Reference() units.Time { return rt.ref }

// Evaluate prices one iteration under a granted mapping.
func (rt *TraceRuntime) Evaluate(places []transport.Endpoint) (units.Time, error) {
	res, err := rt.eval.Evaluate(places)
	if err != nil {
		return 0, err
	}
	return res.Time, nil
}

// Close releases the pooled evaluator.
func (rt *TraceRuntime) Close() {
	if rt.eval != nil {
		rt.eval.Close()
	}
}
