// Package hostcpu models the conventional multicore processors the paper
// measures: the Roadrunner triblade's dual-core AMD Opteron 2210 HE and
// the two comparison chips of Fig. 12 (a quad-core 2.0 GHz Opteron and a
// quad-core 2.93 GHz Intel Tigerton).
package hostcpu

import (
	"roadrunner/internal/memmodel"
	"roadrunner/internal/params"
	"roadrunner/internal/units"
)

// CPU is a conventional cache-based multicore processor model.
type CPU struct {
	Name           string
	Clock          units.Frequency
	Cores          int
	DPFlopsPerCyc  int // per core
	SPFlopsPerCyc  int // per core
	MemBandwidth   units.Bandwidth
	StreamBusEff   float64 // calibrated against Table III (see params)
	Hierarchy      memmodel.Hierarchy
	SocketStreamEf float64 // parallel STREAM efficiency when all cores run
}

// Opteron2210HE returns the triblade's LS21 processor: dual-core 1.8 GHz,
// 64 KB L1D, 2 MB L2, DDR2-667 at 10.7 GB/s.
func Opteron2210HE() *CPU {
	return &CPU{
		Name:          "Opteron 2210 HE (dual-core 1.8GHz)",
		Clock:         params.OpteronClock,
		Cores:         2,
		DPFlopsPerCyc: params.OpteronDPFlopsPerCycle,
		SPFlopsPerCyc: params.OpteronSPFlopsPerCycle,
		MemBandwidth:  params.OpteronMemBandwidth,
		// 5.41 GB/s TRIAD over 10.7 GB/s peak with write-allocate traffic:
		// bus efficiency 0.674 (see memmodel.StreamModel).
		StreamBusEff: 0.674,
		Hierarchy: memmodel.Hierarchy{
			Levels: []memmodel.Level{
				{Name: "L1D", Size: params.OpteronL1D, Latency: units.FromNanoseconds(1.7)},
				{Name: "L2", Size: params.OpteronL2, Latency: units.FromNanoseconds(6.7)},
			},
			MemLatency: params.OpteronMemLatency,
		},
		SocketStreamEf: params.HostSocketEfficiencyDual,
	}
}

// OpteronQuad20 returns the Fig. 12 comparison chip: quad-core 2.0 GHz
// Opteron (Barcelona-class).
func OpteronQuad20() *CPU {
	return &CPU{
		Name:          "Opteron (quad-core 2.0GHz)",
		Clock:         2.0 * units.GHz,
		Cores:         4,
		DPFlopsPerCyc: 2,
		SPFlopsPerCyc: 4,
		MemBandwidth:  10.7 * units.GBPerSec,
		StreamBusEff:  0.674,
		Hierarchy: memmodel.Hierarchy{
			Levels: []memmodel.Level{
				{Name: "L1D", Size: 64 * units.KB, Latency: units.FromNanoseconds(1.5)},
				{Name: "L2", Size: 512 * units.KB, Latency: units.FromNanoseconds(6.0)},
				{Name: "L3", Size: 2 * units.MB, Latency: units.FromNanoseconds(19)},
			},
			MemLatency: units.FromNanoseconds(55),
		},
		SocketStreamEf: params.HostSocketEfficiencyQuad,
	}
}

// TigertonQuad293 returns the Fig. 12 comparison chip: quad-core 2.93 GHz
// Intel Xeon X7350 (Tigerton), FSB-attached memory.
func TigertonQuad293() *CPU {
	return &CPU{
		Name:          "Tigerton (quad-core 2.93GHz)",
		Clock:         2.93 * units.GHz,
		Cores:         4,
		DPFlopsPerCyc: 4, // 128-bit SSE2 mul+add per cycle
		SPFlopsPerCyc: 8,
		MemBandwidth:  8.5 * units.GBPerSec, // 1066 MT/s FSB
		StreamBusEff:  0.62,
		Hierarchy: memmodel.Hierarchy{
			Levels: []memmodel.Level{
				{Name: "L1D", Size: 32 * units.KB, Latency: units.FromNanoseconds(1.0)},
				{Name: "L2", Size: 4 * units.MB, Latency: units.FromNanoseconds(4.9)},
			},
			MemLatency: units.FromNanoseconds(105),
		},
		SocketStreamEf: params.HostSocketEfficiencyQuad,
	}
}

// PeakDPPerCore returns one core's peak double-precision rate.
func (c *CPU) PeakDPPerCore() units.Flops {
	return units.Flops(float64(c.Clock) * float64(c.DPFlopsPerCyc))
}

// PeakDP returns the chip's peak double-precision rate.
func (c *CPU) PeakDP() units.Flops {
	return c.PeakDPPerCore() * units.Flops(c.Cores)
}

// PeakSP returns the chip's peak single-precision rate.
func (c *CPU) PeakSP() units.Flops {
	return units.Flops(float64(c.Clock)*float64(c.SPFlopsPerCyc)) * units.Flops(c.Cores)
}

// StreamTriad returns the single-core sustained TRIAD bandwidth.
func (c *CPU) StreamTriad() units.Bandwidth {
	return memmodel.StreamModel{
		Peak:          c.MemBandwidth,
		BusEfficiency: c.StreamBusEff,
		WriteAllocate: true,
	}.Triad()
}

// MemLatency returns the main-memory pointer-chase latency (memtime with a
// working set beyond the last cache level).
func (c *CPU) MemLatency() units.Time {
	return c.Hierarchy.ChaseLatency(c.Hierarchy.Levels[len(c.Hierarchy.Levels)-1].Size * 4)
}
