package hostcpu

import (
	"math"
	"testing"

	"roadrunner/internal/units"
)

func TestOpteronPeaks(t *testing.T) {
	c := Opteron2210HE()
	// Table II: 14.4 GF/s DP per LS21 blade = 7.2 GF/s per chip.
	if got := c.PeakDP().GF(); math.Abs(got-7.2) > 1e-9 {
		t.Errorf("PeakDP = %v GF/s, want 7.2", got)
	}
	if got := c.PeakSP().GF(); math.Abs(got-14.4) > 1e-9 {
		t.Errorf("PeakSP = %v GF/s, want 14.4", got)
	}
	if got := c.PeakDPPerCore().GF(); math.Abs(got-3.6) > 1e-9 {
		t.Errorf("per-core DP = %v", got)
	}
}

func TestOpteronTableIII(t *testing.T) {
	c := Opteron2210HE()
	// Table III: 5.41 GB/s TRIAD, 30.5 ns latency.
	if got := c.StreamTriad().GBps(); math.Abs(got-5.41)/5.41 > 0.01 {
		t.Errorf("triad = %v GB/s, want 5.41", got)
	}
	if got := c.MemLatency(); got != units.FromNanoseconds(30.5) {
		t.Errorf("latency = %v, want 30.5ns", got)
	}
}

func TestHierarchiesValid(t *testing.T) {
	for _, c := range []*CPU{Opteron2210HE(), OpteronQuad20(), TigertonQuad293()} {
		if err := c.Hierarchy.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}

func TestComparisonChips(t *testing.T) {
	q := OpteronQuad20()
	if q.Cores != 4 || q.Clock != 2.0*units.GHz {
		t.Errorf("quad opteron config: %+v", q)
	}
	tg := TigertonQuad293()
	if tg.Cores != 4 {
		t.Errorf("tigerton cores = %d", tg.Cores)
	}
	// Tigerton has the highest per-core peak of the three hosts.
	if tg.PeakDPPerCore() <= q.PeakDPPerCore() {
		t.Error("Tigerton per-core peak should exceed Opteron's")
	}
}

func TestCacheLatencyOrdering(t *testing.T) {
	c := Opteron2210HE()
	l1 := c.Hierarchy.ChaseLatency(16 * units.KB)
	l2 := c.Hierarchy.ChaseLatency(1 * units.MB)
	mem := c.Hierarchy.ChaseLatency(64 * units.MB)
	if !(l1 < l2 && l2 < mem) {
		t.Errorf("latency ordering violated: %v %v %v", l1, l2, mem)
	}
}
