// Package ib models Open MPI over Roadrunner's 4x DDR InfiniBand: the
// per-message software overheads, the eager/rendezvous protocol switch,
// the 220 ns-per-crossbar-hop fabric traversal, and the node-level HCA
// sharing effects of Figs. 7, 8 and 10.
//
// Core-pair asymmetry (Fig. 8): the Mellanox HCA hangs off one HT2100
// bridge, closer to Opteron cores 1 and 3; flows from cores 1/3 sustain
// 1,478 MB/s while flows from cores 0/2 cross an extra HyperTransport
// segment and sustain 1,087 MB/s. When several flows share the HCA the
// chipset serializes them at the far-path rate, and a full-duplex
// exchange is capped by the HCA's ~1.5 GB/s combined limit — these two
// mechanisms produce Fig. 7's internode curves.
package ib

import (
	"roadrunner/internal/params"
	"roadrunner/internal/sim"
	"roadrunner/internal/units"
)

// Profile holds the Open MPI + InfiniBand protocol constants.
type Profile struct {
	Name string
	// PerSideOverhead is the MPI send/recv software cost on each side;
	// two sides plus one crossbar hop compose the 2.16 us same-crossbar
	// one-way latency of Fig. 6.
	PerSideOverhead units.Time
	// HopLatency is per crossbar traversal (220 ns).
	HopLatency units.Time
	// EagerThreshold: larger messages pay a rendezvous round trip.
	EagerThreshold units.Size
	// NearBandwidth / FarBandwidth: single-flow stream rate by core
	// proximity to the HCA.
	NearBandwidth units.Bandwidth
	FarBandwidth  units.Bandwidth
	// MultiFlowBandwidth: per-direction HCA capacity once several flows
	// share it (chipset-serialized).
	MultiFlowBandwidth units.Bandwidth
	// DuplexAggregate caps combined two-direction HCA throughput.
	DuplexAggregate units.Bandwidth
	// PinnedBandwidth is the large-message rate with registered buffers.
	PinnedBandwidth units.Bandwidth
}

// OpenMPI returns the measured Open MPI/IB profile.
func OpenMPI() Profile {
	return Profile{
		Name:               "Open MPI / IB 4x DDR",
		PerSideOverhead:    params.MPISoftwareOverhead,
		HopLatency:         params.SwitchHopLatency,
		EagerThreshold:     params.IBEagerThreshold,
		NearBandwidth:      params.IBNearCoreBandwidth,
		FarBandwidth:       params.IBFarCoreBandwidth,
		MultiFlowBandwidth: params.IBFarCoreBandwidth,
		DuplexAggregate:    1.5 * units.GBPerSec,
		PinnedBandwidth:    params.IBPinnedBandwidth,
	}
}

// NearCore reports whether an Opteron core index is on the HCA-adjacent
// bridge (cores 1 and 3).
func NearCore(core int) bool { return core%2 == 1 }

// PairBandwidth returns the single-flow stream rate between two cores on
// different nodes, per Fig. 8: both near -> 1,478 MB/s; both far ->
// 1,087 MB/s; mixed -> limited by the far end's extra HT crossing but
// helped by the near end, modelled as the harmonic mean.
func (pr Profile) PairBandwidth(coreA, coreB int) units.Bandwidth {
	a, b := NearCore(coreA), NearCore(coreB)
	switch {
	case a && b:
		return pr.NearBandwidth
	case !a && !b:
		return pr.FarBandwidth
	default:
		n, f := float64(pr.NearBandwidth), float64(pr.FarBandwidth)
		return units.Bandwidth(2 * n * f / (n + f))
	}
}

// OneWay returns the no-contention one-way message time between two
// nodes separated by the given crossbar hop count, from the given core
// pairing.
func (pr Profile) OneWay(size units.Size, hops int, coreA, coreB int) units.Time {
	t := 2*pr.PerSideOverhead + units.Time(hops)*pr.HopLatency
	if size > pr.EagerThreshold {
		// Rendezvous: request + clear-to-send round trip at zero payload.
		t += 2 * (2*pr.PerSideOverhead + units.Time(hops)*pr.HopLatency)
	}
	t += pr.PairBandwidth(coreA, coreB).TransferTime(size)
	return t
}

// BandwidthAt returns size over one-way time, the ping-pong convention.
func (pr Profile) BandwidthAt(size units.Size, hops int, coreA, coreB int) units.Bandwidth {
	if size <= 0 {
		return 0
	}
	return units.Bandwidth(float64(size) / pr.OneWay(size, hops, coreA, coreB).Seconds())
}

// ZeroByteLatency returns the one-way zero-byte latency over the given
// hop count — the quantity Fig. 10 maps across all 3,060 nodes.
func (pr Profile) ZeroByteLatency(hops int) units.Time {
	return 2*pr.PerSideOverhead + units.Time(hops)*pr.HopLatency
}

// chunkSize is the contention re-evaluation granularity of the DES HCA.
const chunkSize = 64 * units.KB

// HCA is the DES model of one node's InfiniBand adapter: it tracks the
// flows currently streaming in each direction and serves each chunk at
// the rate the sharing rules dictate.
type HCA struct {
	Profile Profile
	eng     *sim.Engine
	active  [2]int // flows per direction (0 = egress, 1 = ingress)

	// Endpoint flow accounting, composable with the transport layer's
	// link occupancy census: cumulative flows and bytes per direction,
	// and the sharing high-water mark.
	flows [2]int64
	bytes [2]units.Size
	peak  [2]int
}

// HCAStats snapshots one adapter's cumulative flow accounting.
type HCAStats struct {
	Flows [2]int64      // flows started per direction (0 egress, 1 ingress)
	Bytes [2]units.Size // bytes streamed per direction
	Peak  [2]int        // peak concurrent flows per direction
}

// Stats returns the adapter's cumulative flow accounting.
func (h *HCA) Stats() HCAStats {
	return HCAStats{Flows: h.flows, Bytes: h.bytes, Peak: h.peak}
}

// addFlow registers one flow in the given direction and updates the
// accounting.
func (h *HCA) addFlow(dir int, size units.Size) {
	h.active[dir]++
	h.flows[dir]++
	h.bytes[dir] += size
	if h.active[dir] > h.peak[dir] {
		h.peak[dir] = h.active[dir]
	}
}

// ResetStats zeroes the cumulative flow accounting so a pooled adapter
// starts the next run fresh. The adapter must be idle — resetting with
// flows still streaming would desynchronize the sharing state from the
// counters, so it panics instead.
func (h *HCA) ResetStats() {
	if h.active[0] != 0 || h.active[1] != 0 {
		panic("ib: HCA stats reset with active flows")
	}
	h.flows = [2]int64{}
	h.bytes = [2]units.Size{}
	h.peak = [2]int{}
}

// NewHCA creates an HCA on the engine.
func NewHCA(eng *sim.Engine, pr Profile) *HCA {
	return &HCA{Profile: pr, eng: eng}
}

// FlowRate returns the per-flow rate given the current sharing state and
// the flow's core pairing.
func (h *HCA) flowRate(dir int, pairBW units.Bandwidth) units.Bandwidth {
	pr := h.Profile
	rate := pairBW
	if n := h.active[dir]; n > 1 {
		shared := pr.MultiFlowBandwidth / units.Bandwidth(n)
		if shared < rate {
			rate = shared
		}
	}
	if h.active[0] > 0 && h.active[1] > 0 {
		total := h.active[0] + h.active[1]
		duplex := pr.DuplexAggregate / units.Bandwidth(total)
		if duplex < rate {
			rate = duplex
		}
	}
	return rate
}

// Stream blocks the calling proc while size bytes flow through the HCA
// in the given direction (0 egress, 1 ingress), sharing capacity with
// concurrent flows chunk by chunk. Latency terms are the caller's
// responsibility (they depend on hops and protocol).
func (h *HCA) Stream(p *sim.Proc, dir int, size units.Size, pairBW units.Bandwidth) {
	if size <= 0 {
		return
	}
	h.addFlow(dir, size)
	remaining := size
	for remaining > 0 {
		chunk := remaining
		if chunk > chunkSize {
			chunk = chunkSize
		}
		p.Sleep(h.flowRate(dir, pairBW).TransferTime(chunk))
		remaining -= chunk
	}
	h.active[dir]--
}

// ActiveFlows reports the number of flows currently streaming in the
// given direction (0 egress, 1 ingress).
func (h *HCA) ActiveFlows(dir int) int { return h.active[dir] }

// StreamBetween blocks p while size bytes flow from the src HCA (egress
// side) to the dst HCA (ingress side), re-evaluating the rate chunk by
// chunk against the sharing state of BOTH adapters: the sender's egress
// flows serialize at the chipset rate, the receiver's ingress flows do
// the same, and a node that is simultaneously sending and receiving hits
// its duplex aggregate cap. This is the wire model for collective stages,
// where ring and recursive-doubling exchanges keep every HCA busy in both
// directions at once.
func StreamBetween(p *sim.Proc, src, dst *HCA, size units.Size, pairBW units.Bandwidth) {
	if size <= 0 {
		return
	}
	BeginBetween(src, dst, size)
	remaining := size
	for remaining > 0 {
		chunk, t := StepBetween(src, dst, remaining, pairBW)
		p.Sleep(t)
		remaining -= chunk
	}
	EndBetween(src, dst)
}

// BeginBetween registers a src→dst flow on both adapters (one egress
// flow on loopback pairings). With StepBetween and EndBetween it is the
// event-chain decomposition of StreamBetween: callers that cannot block
// a proc per chunk (the transport's chained transfers) schedule one
// event per StepBetween interval instead, producing the exact event
// sequence the blocking form produces.
func BeginBetween(src, dst *HCA, size units.Size) {
	src.addFlow(0, size)
	if src != dst {
		dst.addFlow(1, size)
	}
}

// StepBetween returns the next chunk's size and its transfer time at
// the adapters' current sharing state (the rate both endpoints can
// sustain this instant).
func StepBetween(src, dst *HCA, remaining units.Size, pairBW units.Bandwidth) (units.Size, units.Time) {
	chunk := remaining
	if chunk > chunkSize {
		chunk = chunkSize
	}
	rate := src.flowRate(0, pairBW)
	if src != dst {
		if r := dst.flowRate(1, pairBW); r < rate {
			rate = r
		}
	}
	return chunk, rate.TransferTime(chunk)
}

// EndBetween deregisters a flow started by BeginBetween.
func EndBetween(src, dst *HCA) {
	src.active[0]--
	if src != dst {
		dst.active[1]--
	}
}
