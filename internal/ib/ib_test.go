package ib

import (
	"math"
	"testing"
	"testing/quick"

	"roadrunner/internal/sim"
	"roadrunner/internal/units"
)

func TestZeroByteMatchesFig6(t *testing.T) {
	pr := OpenMPI()
	// Fig. 6: the Opteron-to-Opteron MPI/IB segment is 2.16 us for
	// adjacent nodes (one crossbar hop).
	if got := pr.ZeroByteLatency(1); got != units.FromMicroseconds(2.16) {
		t.Errorf("1-hop zero-byte = %v, want 2.16us", got)
	}
}

func TestHopLatencySteps(t *testing.T) {
	pr := OpenMPI()
	// Each extra crossbar adds 220 ns.
	d := pr.ZeroByteLatency(5) - pr.ZeroByteLatency(3)
	if d != 440*units.Nanosecond {
		t.Errorf("2-hop delta = %v, want 440ns", d)
	}
}

func TestPairBandwidthMatchesFig8(t *testing.T) {
	pr := OpenMPI()
	if got := pr.PairBandwidth(1, 3).MBps(); math.Abs(got-1478) > 1 {
		t.Errorf("near pair = %v, want 1478", got)
	}
	if got := pr.PairBandwidth(0, 2).MBps(); math.Abs(got-1087) > 1 {
		t.Errorf("far pair = %v, want 1087", got)
	}
	// Mixed pair sits between the two (Fig. 8's "Core 0 to Core 1").
	mixed := pr.PairBandwidth(0, 1).MBps()
	if mixed <= 1087 || mixed >= 1478 {
		t.Errorf("mixed pair = %v, want between 1087 and 1478", mixed)
	}
}

func TestEagerRendezvousJump(t *testing.T) {
	pr := OpenMPI()
	below := pr.OneWay(pr.EagerThreshold, 1, 1, 1)
	above := pr.OneWay(pr.EagerThreshold+1*units.KB, 1, 1, 1)
	// The rendezvous round trip is visible as a discontinuity.
	if above-below < pr.ZeroByteLatency(1) {
		t.Errorf("no rendezvous jump: %v -> %v", below, above)
	}
}

func TestOneWayMonotoneInHops(t *testing.T) {
	pr := OpenMPI()
	f := func(sz uint16, h uint8) bool {
		size := units.Size(sz)
		hops := int(h%7) + 1
		return pr.OneWay(size, hops, 1, 3) <= pr.OneWay(size, hops+2, 1, 3)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBandwidthAtLargeMessage(t *testing.T) {
	pr := OpenMPI()
	// 1 MB near-core flow approaches 1,478 MB/s.
	got := pr.BandwidthAt(1*units.MB, 3, 1, 3).MBps()
	if got < 1350 || got > 1478 {
		t.Errorf("1MB near = %v MB/s", got)
	}
}

func TestHCASingleFlowFullRate(t *testing.T) {
	eng := sim.NewEngine()
	defer eng.Close()
	h := NewHCA(eng, OpenMPI())
	size := 1 * units.MB
	var dur units.Time
	eng.Spawn("f", func(p *sim.Proc) {
		start := p.Now()
		h.Stream(p, 0, size, h.Profile.NearBandwidth)
		dur = p.Now() - start
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	want := h.Profile.NearBandwidth.TransferTime(size)
	if d := dur - want; d < -units.Nanosecond || d > units.Nanosecond {
		t.Errorf("single flow = %v, want %v", dur, want)
	}
}

func TestHCAFourFlowSharing(t *testing.T) {
	// Fig. 7 internode unidirectional: four Cell-Opteron pairs share the
	// HCA; the worst pair's rate is MultiFlow/4 ~ 272 MB/s.
	eng := sim.NewEngine()
	defer eng.Close()
	h := NewHCA(eng, OpenMPI())
	size := 1 * units.MB
	var slowest units.Time
	for i := 0; i < 4; i++ {
		eng.Spawn("f", func(p *sim.Proc) {
			start := p.Now()
			h.Stream(p, 0, size, h.Profile.PairBandwidth(1, 3))
			if d := p.Now() - start; d > slowest {
				slowest = d
			}
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	bw := float64(size) / slowest.Seconds() / 1e6
	if math.Abs(bw-272)/272 > 0.05 {
		t.Errorf("worst of 4 flows = %.0f MB/s, want ~272", bw)
	}
}

func TestHCADuplexCap(t *testing.T) {
	// Eight flows, four per direction: per-flow 1.5 GB/s / 8 = 187.5
	// MB/s; a pair's two directions total ~375 MB/s (Fig. 7 internode
	// bidirectional).
	eng := sim.NewEngine()
	defer eng.Close()
	h := NewHCA(eng, OpenMPI())
	size := 1 * units.MB
	var slowest units.Time
	for i := 0; i < 8; i++ {
		dir := i % 2
		eng.Spawn("f", func(p *sim.Proc) {
			start := p.Now()
			h.Stream(p, dir, size, h.Profile.PairBandwidth(1, 3))
			if d := p.Now() - start; d > slowest {
				slowest = d
			}
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	perFlow := float64(size) / slowest.Seconds() / 1e6
	pairAggregate := perFlow * 2
	if math.Abs(pairAggregate-375)/375 > 0.05 {
		t.Errorf("duplex pair aggregate = %.0f MB/s, want ~375", pairAggregate)
	}
}

func TestNearCore(t *testing.T) {
	if !NearCore(1) || !NearCore(3) || NearCore(0) || NearCore(2) {
		t.Error("core proximity map")
	}
}

func TestStreamBetweenSingleFlowFullRate(t *testing.T) {
	// With idle adapters on both ends, a pair stream runs at the pair
	// bandwidth, identical to a single-ended Stream.
	eng := sim.NewEngine()
	defer eng.Close()
	pr := OpenMPI()
	src, dst := NewHCA(eng, pr), NewHCA(eng, pr)
	size := 1 * units.MB
	var dur units.Time
	eng.Spawn("f", func(p *sim.Proc) {
		start := p.Now()
		StreamBetween(p, src, dst, size, pr.NearBandwidth)
		dur = p.Now() - start
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	want := pr.NearBandwidth.TransferTime(size)
	if d := dur - want; d < -units.Nanosecond || d > units.Nanosecond {
		t.Errorf("pair stream = %v, want %v", dur, want)
	}
	if src.ActiveFlows(0) != 0 || dst.ActiveFlows(1) != 0 {
		t.Error("flow accounting leaked")
	}
	// Cumulative endpoint accounting: one egress flow on src, one
	// ingress flow on dst, all bytes attributed, peak concurrency 1.
	ss, ds := src.Stats(), dst.Stats()
	if ss.Flows != [2]int64{1, 0} || ds.Flows != [2]int64{0, 1} {
		t.Errorf("flow counts: src %v dst %v", ss.Flows, ds.Flows)
	}
	if ss.Bytes[0] != size || ds.Bytes[1] != size {
		t.Errorf("byte counts: src %v dst %v", ss.Bytes, ds.Bytes)
	}
	if ss.Peak != [2]int{1, 0} || ds.Peak != [2]int{0, 1} {
		t.Errorf("peaks: src %v dst %v", ss.Peak, ds.Peak)
	}
}

func TestStreamBetweenDuplexExchange(t *testing.T) {
	// A symmetric exchange (each node sends to and receives from the
	// other, as every ring/recursive-doubling collective stage does) puts
	// one flow in each direction on both HCAs: the duplex aggregate cap
	// bounds each direction at 1.5 GB/s / 2 = 750 MB/s.
	eng := sim.NewEngine()
	defer eng.Close()
	pr := OpenMPI()
	a, b := NewHCA(eng, pr), NewHCA(eng, pr)
	size := 1 * units.MB
	var slowest units.Time
	run := func(src, dst *HCA) {
		eng.Spawn("f", func(p *sim.Proc) {
			start := p.Now()
			StreamBetween(p, src, dst, size, pr.PairBandwidth(1, 3))
			if d := p.Now() - start; d > slowest {
				slowest = d
			}
		})
	}
	run(a, b)
	run(b, a)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	bw := float64(size) / slowest.Seconds() / 1e6
	if math.Abs(bw-750)/750 > 0.05 {
		t.Errorf("duplex exchange per-direction = %.0f MB/s, want ~750", bw)
	}
}

func TestStreamBetweenIngressSerialization(t *testing.T) {
	// Two senders into one receiver: the receiver's ingress side
	// serializes the flows at the chipset rate, so each sees ~MultiFlow/2
	// even though both egress adapters are otherwise idle.
	eng := sim.NewEngine()
	defer eng.Close()
	pr := OpenMPI()
	dst := NewHCA(eng, pr)
	size := 1 * units.MB
	var slowest units.Time
	for i := 0; i < 2; i++ {
		src := NewHCA(eng, pr)
		eng.Spawn("f", func(p *sim.Proc) {
			start := p.Now()
			StreamBetween(p, src, dst, size, pr.PairBandwidth(1, 3))
			if d := p.Now() - start; d > slowest {
				slowest = d
			}
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	want := float64(pr.MultiFlowBandwidth) / 2 / 1e6
	bw := float64(size) / slowest.Seconds() / 1e6
	if math.Abs(bw-want)/want > 0.05 {
		t.Errorf("2-into-1 per-flow = %.0f MB/s, want ~%.0f", bw, want)
	}
}

func TestStreamBetweenSameHCALoopback(t *testing.T) {
	eng := sim.NewEngine()
	defer eng.Close()
	pr := OpenMPI()
	h := NewHCA(eng, pr)
	var dur units.Time
	eng.Spawn("f", func(p *sim.Proc) {
		start := p.Now()
		StreamBetween(p, h, h, 64*units.KB, pr.NearBandwidth)
		dur = p.Now() - start
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if want := pr.NearBandwidth.TransferTime(64 * units.KB); dur != want {
		t.Errorf("loopback = %v, want %v", dur, want)
	}
}
