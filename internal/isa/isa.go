// Package isa defines the subset of the SPU instruction set architecture
// needed by the pipeline simulator: the nine execution groups the paper's
// microbenchmarks probe (Fig. 4/5), register operands, and program
// construction helpers.
//
// The grouping follows the SPU ISA's execution classes. Group names match
// the paper's figures: FP6/FP7 are the 6- and 7-cycle floating-point
// classes (single-precision arithmetic and FP-unit integer ops), FPD is
// double-precision, FX2/FX3 the 2- and 3-cycle fixed-point classes, FXB
// the byte-granule operations, LS loads/stores, SHUF the shuffle/permute
// class and BR branches.
package isa

import "fmt"

// Group identifies an SPU execution group.
type Group int

// The nine execution groups of the paper's Figs. 4 and 5.
const (
	BR   Group = iota // branch
	FP6               // single-precision floating point (6-cycle class)
	FP7               // FP-unit integer/convert (7-cycle class)
	FPD               // double-precision floating point
	FX2               // simple fixed point (2-cycle class)
	FX3               // fixed point multiply-class (3-cycle)
	FXB               // byte operations
	LS                // local store load/store
	SHUF              // shuffle/permute
	numGroups
)

var groupNames = [numGroups]string{"BR", "FP6", "FP7", "FPD", "FX2", "FX3", "FXB", "LS", "SHUF"}

// String returns the group's mnemonic.
func (g Group) String() string {
	if g < 0 || g >= numGroups {
		return fmt.Sprintf("Group(%d)", int(g))
	}
	return groupNames[g]
}

// Groups returns all execution groups in figure order.
func Groups() []Group {
	gs := make([]Group, numGroups)
	for i := range gs {
		gs[i] = Group(i)
	}
	return gs
}

// NumGroups is the number of execution groups.
const NumGroups = int(numGroups)

// Pipe identifies one of the SPU's two issue pipes.
type Pipe int

// The SPU issues arithmetic on the even pipe and loads/stores, shuffles
// and branches on the odd pipe; a dual issue pairs one of each.
const (
	Even Pipe = iota
	Odd
)

// String names the pipe.
func (p Pipe) String() string {
	if p == Even {
		return "even"
	}
	return "odd"
}

// Pipe returns the issue pipe an execution group dispatches to.
func (g Group) Pipe() Pipe {
	switch g {
	case BR, LS, SHUF:
		return Odd
	default:
		return Even
	}
}

// FlopsDP returns the double-precision flops one instruction of this group
// retires, assuming fused multiply-add forms: the SPE's 2-wide DP SIMD FMA
// does 4 flops, the PPE-style scalar classes none.
func (g Group) FlopsDP() int {
	if g == FPD {
		return 4
	}
	return 0
}

// FlopsSP returns the single-precision flops for one instruction of this
// group (4-wide SP SIMD FMA = 8 flops).
func (g Group) FlopsSP() int {
	if g == FP6 {
		return 8
	}
	return 0
}

// Reg is an SPU register number (0..127). NoReg marks an absent operand.
type Reg int16

// NoReg marks an unused operand slot.
const NoReg Reg = -1

// NumRegs is the SPU register file size.
const NumRegs = 128

// Instr is one instruction: an execution group with register operands.
type Instr struct {
	Op   Group
	Dst  Reg
	Srcs [3]Reg
}

// String renders the instruction for debugging.
func (in Instr) String() string {
	s := in.Op.String()
	if in.Dst != NoReg {
		s += fmt.Sprintf(" r%d <-", in.Dst)
	}
	for _, r := range in.Srcs {
		if r != NoReg {
			s += fmt.Sprintf(" r%d", r)
		}
	}
	return s
}

// Program is an instruction sequence.
type Program []Instr

// Builder assembles programs with a fluent interface.
type Builder struct {
	prog Program
}

// NewBuilder returns an empty program builder.
func NewBuilder() *Builder { return &Builder{} }

// I appends an instruction with up to three source registers.
func (b *Builder) I(op Group, dst Reg, srcs ...Reg) *Builder {
	in := Instr{Op: op, Dst: dst, Srcs: [3]Reg{NoReg, NoReg, NoReg}}
	if len(srcs) > 3 {
		panic("isa: more than 3 sources")
	}
	for i, s := range srcs {
		in.Srcs[i] = s
	}
	b.prog = append(b.prog, in)
	return b
}

// Repeat appends n copies of an instruction pattern produced by gen(i).
func (b *Builder) Repeat(n int, gen func(i int, b *Builder)) *Builder {
	for i := 0; i < n; i++ {
		gen(i, b)
	}
	return b
}

// Program returns the assembled program.
func (b *Builder) Program() Program { return b.prog }

// DependentChain builds n instructions of group g where each consumes the
// previous one's result: the latency microbenchmark of the paper ("from
// entering to exiting the instruction pipeline").
func DependentChain(g Group, n int) Program {
	b := NewBuilder()
	for i := 0; i < n; i++ {
		dst := Reg(1 + i%(NumRegs-2))
		src := Reg(1 + (i+NumRegs-3)%(NumRegs-2))
		if i == 0 {
			src = 0
		}
		b.I(g, dst, src)
	}
	return b.Program()
}

// IndependentStream builds n instructions of group g with no dependences:
// the repetition-distance microbenchmark ("the minimum number of cycles
// that must elapse between two issues to the same execution unit").
func IndependentStream(g Group, n int) Program {
	b := NewBuilder()
	for i := 0; i < n; i++ {
		// Round-robin over disjoint registers so no chains form.
		dst := Reg(1 + i%63)
		src := Reg(64 + i%63)
		b.I(g, dst, src)
	}
	return b.Program()
}

// Mix summarises a program's instruction counts by group.
func (p Program) Mix() map[Group]int {
	m := make(map[Group]int)
	for _, in := range p {
		m[in.Op]++
	}
	return m
}
