package isa

import (
	"testing"
	"testing/quick"
)

func TestGroupNamesAndOrder(t *testing.T) {
	want := []string{"BR", "FP6", "FP7", "FPD", "FX2", "FX3", "FXB", "LS", "SHUF"}
	gs := Groups()
	if len(gs) != len(want) {
		t.Fatalf("groups = %v", gs)
	}
	for i, g := range gs {
		if g.String() != want[i] {
			t.Errorf("group %d = %s, want %s", i, g, want[i])
		}
	}
}

func TestPipeAssignment(t *testing.T) {
	odd := map[Group]bool{BR: true, LS: true, SHUF: true}
	for _, g := range Groups() {
		wantOdd := odd[g]
		if (g.Pipe() == Odd) != wantOdd {
			t.Errorf("%s pipe = %v", g, g.Pipe())
		}
	}
}

func TestFlops(t *testing.T) {
	if FPD.FlopsDP() != 4 || FPD.FlopsSP() != 0 {
		t.Errorf("FPD flops = %d/%d", FPD.FlopsDP(), FPD.FlopsSP())
	}
	if FP6.FlopsSP() != 8 || FP6.FlopsDP() != 0 {
		t.Errorf("FP6 flops")
	}
	if LS.FlopsDP() != 0 || LS.FlopsSP() != 0 {
		t.Errorf("LS should have no flops")
	}
}

func TestBuilder(t *testing.T) {
	p := NewBuilder().
		I(LS, 1, 0).
		I(FPD, 2, 1, 1).
		I(LS, NoReg, 2).
		Program()
	if len(p) != 3 {
		t.Fatalf("len = %d", len(p))
	}
	if p[1].Op != FPD || p[1].Dst != 2 || p[1].Srcs[0] != 1 || p[1].Srcs[2] != NoReg {
		t.Errorf("instr = %+v", p[1])
	}
	mix := p.Mix()
	if mix[LS] != 2 || mix[FPD] != 1 {
		t.Errorf("mix = %v", mix)
	}
}

func TestDependentChainIsChained(t *testing.T) {
	p := DependentChain(FPD, 20)
	if len(p) != 20 {
		t.Fatalf("len = %d", len(p))
	}
	for i := 1; i < len(p); i++ {
		if p[i].Srcs[0] != p[i-1].Dst {
			t.Fatalf("instr %d does not consume %d's result: %v <- %v",
				i, i-1, p[i], p[i-1])
		}
	}
}

func TestIndependentStreamHasNoChains(t *testing.T) {
	p := IndependentStream(FPD, 40)
	// No instruction reads a register any other instruction writes.
	written := map[Reg]bool{}
	for _, in := range p {
		written[in.Dst] = true
	}
	for _, in := range p {
		for _, s := range in.Srcs {
			if s != NoReg && written[s] {
				t.Fatalf("instruction %v reads written register", in)
			}
		}
	}
}

func TestChainPropertyAnyGroup(t *testing.T) {
	f := func(gi uint8, n uint8) bool {
		g := Group(int(gi) % NumGroups)
		ln := int(n%60) + 2
		p := DependentChain(g, ln)
		for i := 1; i < len(p); i++ {
			if p[i].Srcs[0] != p[i-1].Dst {
				return false
			}
			if p[i].Op != g {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInstrString(t *testing.T) {
	in := Instr{Op: FPD, Dst: 3, Srcs: [3]Reg{1, 2, NoReg}}
	if got := in.String(); got != "FPD r3 <- r1 r2" {
		t.Errorf("String = %q", got)
	}
}
