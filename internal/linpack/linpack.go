// Package linpack provides a real blocked LU factorisation with partial
// pivoting (the computational core of the LINPACK benchmark) and the
// hybrid-offload performance model that reproduces Roadrunner's headline
// numbers: 1.026 Pflop/s sustained (74.4% of the 1.38 Pflop/s peak) and
// the Green500 437 MFlops/W point.
//
// The factorisation is genuine dense linear algebra — panel factorise,
// triangular solve, trailing DGEMM update — validated by solving random
// systems. The performance model mirrors IBM's hybrid HPL design the
// paper cites: DGEMM offloaded to the Cells while the Opterons factor
// panels and the fabric swaps panels, with efficiency composed from the
// update fraction, SPE DGEMM efficiency and overlap losses.
package linpack

import (
	"errors"
	"fmt"
	"math"

	"roadrunner/internal/units"
)

// Matrix is a dense row-major square matrix.
type Matrix struct {
	N    int
	Data []float64
}

// NewMatrix allocates an N x N matrix.
func NewMatrix(n int) *Matrix {
	return &Matrix{N: n, Data: make([]float64, n*n)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.N+j] }

// Set writes element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.N+j] = v }

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.N)
	copy(c.Data, m.Data)
	return c
}

// RandomSPD fills a well-conditioned random matrix using a deterministic
// LCG (diagonally dominant, so pivoting stays tame but is still
// exercised off-diagonal).
func RandomSPD(n int, seed int64) *Matrix {
	m := NewMatrix(n)
	s := uint64(seed)*6364136223846793005 + 1442695040888963407
	next := func() float64 {
		s = s*6364136223846793005 + 1442695040888963407
		return float64(s>>11) / float64(1<<53)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, next()-0.5)
		}
		m.Set(i, i, m.At(i, i)+float64(n))
	}
	return m
}

// LU holds a factorisation: in-place L\U and the pivot permutation.
type LU struct {
	M     *Matrix
	Pivot []int
	Swaps int
	Flops int64
}

// Factorize performs blocked right-looking LU with partial pivoting,
// block size nb. The trailing update is a tiled DGEMM — the kernel the
// hybrid HPL offloads to the Cells.
func Factorize(a *Matrix, nb int) (*LU, error) {
	if nb < 1 {
		return nil, errors.New("linpack: block size < 1")
	}
	n := a.N
	lu := &LU{M: a, Pivot: make([]int, n)}
	for i := range lu.Pivot {
		lu.Pivot[i] = i
	}
	for k0 := 0; k0 < n; k0 += nb {
		kb := nb
		if k0+kb > n {
			kb = n - k0
		}
		// Panel factorisation with partial pivoting.
		for k := k0; k < k0+kb; k++ {
			p := k
			maxv := math.Abs(a.At(k, k))
			for i := k + 1; i < n; i++ {
				if v := math.Abs(a.At(i, k)); v > maxv {
					maxv, p = v, i
				}
			}
			if maxv == 0 {
				return nil, fmt.Errorf("linpack: singular at column %d", k)
			}
			if p != k {
				swapRows(a, p, k)
				lu.Pivot[p], lu.Pivot[k] = lu.Pivot[k], lu.Pivot[p]
				lu.Swaps++
			}
			piv := a.At(k, k)
			for i := k + 1; i < n; i++ {
				l := a.At(i, k) / piv
				a.Set(i, k, l)
				// Update the remainder of the panel only.
				for j := k + 1; j < k0+kb; j++ {
					a.Set(i, j, a.At(i, j)-l*a.At(k, j))
				}
				lu.Flops += int64(2*(k0+kb-k-1)) + 1
			}
		}
		if k0+kb >= n {
			break
		}
		// Triangular solve: U12 = L11^-1 * A12.
		for k := k0; k < k0+kb; k++ {
			for i := k + 1; i < k0+kb; i++ {
				l := a.At(i, k)
				for j := k0 + kb; j < n; j++ {
					a.Set(i, j, a.At(i, j)-l*a.At(k, j))
					lu.Flops += 2
				}
			}
		}
		// Trailing update: A22 -= L21 * U12 (tiled DGEMM).
		dgemmUpdate(a, k0, kb, &lu.Flops)
	}
	return lu, nil
}

// dgemmTile is the DGEMM blocking factor (cache/local-store tile).
const dgemmTile = 32

// dgemmUpdate computes A22 -= L21*U12 in tiles.
func dgemmUpdate(a *Matrix, k0, kb int, flops *int64) {
	n := a.N
	lo := k0 + kb
	for it := lo; it < n; it += dgemmTile {
		ih := min(it+dgemmTile, n)
		for jt := lo; jt < n; jt += dgemmTile {
			jh := min(jt+dgemmTile, n)
			for i := it; i < ih; i++ {
				for k := k0; k < k0+kb; k++ {
					l := a.At(i, k)
					if l == 0 {
						continue
					}
					row := a.Data[i*n : i*n+n]
					urow := a.Data[k*n : k*n+n]
					for j := jt; j < jh; j++ {
						row[j] -= l * urow[j]
					}
					*flops += int64(2 * (jh - jt))
				}
			}
		}
	}
}

func swapRows(a *Matrix, i, j int) {
	n := a.N
	ri := a.Data[i*n : i*n+n]
	rj := a.Data[j*n : j*n+n]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// Solve uses the factorisation to solve Ax = b (b is permuted internally).
func (lu *LU) Solve(b []float64) []float64 {
	n := lu.M.N
	x := make([]float64, n)
	// Apply permutation: pivot[i] is the original row now at position i.
	for i := 0; i < n; i++ {
		x[i] = b[lu.Pivot[i]]
	}
	// Forward substitution (unit lower).
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			x[i] -= lu.M.At(i, j) * x[j]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		for j := i + 1; j < n; j++ {
			x[i] -= lu.M.At(i, j) * x[j]
		}
		x[i] /= lu.M.At(i, i)
	}
	return x
}

// Residual returns max_i |A*x - b| / (n * max|A| * max|x|), the HPL
// acceptance metric's core.
func Residual(a *Matrix, x, b []float64) float64 {
	n := a.N
	maxA, maxX, maxR := 0.0, 0.0, 0.0
	for i := 0; i < n; i++ {
		r := -b[i]
		for j := 0; j < n; j++ {
			v := a.At(i, j)
			r += v * x[j]
			if math.Abs(v) > maxA {
				maxA = math.Abs(v)
			}
		}
		if math.Abs(r) > maxR {
			maxR = math.Abs(r)
		}
		if math.Abs(x[i]) > maxX {
			maxX = math.Abs(x[i])
		}
	}
	if maxA == 0 || maxX == 0 {
		return maxR
	}
	return maxR / (float64(n) * maxA * maxX)
}

// ---------------------------------------------------------------------------
// Hybrid offload efficiency model.
// ---------------------------------------------------------------------------

// HybridModel composes the sustained LINPACK efficiency of the hybrid
// HPL the paper cites ([10], IBM's Roadrunner version): the trailing
// DGEMM runs on the Cells near their sustainable efficiency while panel
// work and communication cost the rest.
type HybridModel struct {
	// DGEMMFraction of total flops in the trailing updates for the run's
	// problem size (→1 as N grows; ~0.98 for Roadrunner's N).
	DGEMMFraction float64
	// SPEDGEMMEff is DGEMM efficiency on the SPEs (local-store blocked
	// DGEMM runs near peak).
	SPEDGEMMEff float64
	// OverlapLoss is the fraction lost to panel broadcast, PCIe staging
	// and pipeline drain that the overlap cannot hide.
	OverlapLoss float64
}

// RoadrunnerHPL returns the calibrated hybrid model: the composition
// yields the measured 74.4% system efficiency (1.026 of 1.38 Pflop/s).
func RoadrunnerHPL() HybridModel {
	return HybridModel{DGEMMFraction: 0.982, SPEDGEMMEff: 0.86, OverlapLoss: 0.119}
}

// Efficiency returns sustained/peak for the whole machine.
func (h HybridModel) Efficiency() float64 {
	return h.DGEMMFraction * h.SPEDGEMMEff * (1 - h.OverlapLoss)
}

// ---------------------------------------------------------------------------
// Panel-broadcast phase model.
// ---------------------------------------------------------------------------

// PanelBroadcast describes HPL's panel-broadcast phase on a P×Q process
// grid (column-major rank order, the HPL default): after each panel of
// NB columns is factorised by one process column, it is broadcast along
// every process row before the trailing update — the communication phase
// whose cost the hybrid model's OverlapLoss must absorb. The collective
// scenario layer measures one such broadcast on the DES and this model
// scales it to the whole factorisation.
type PanelBroadcast struct {
	N        int // global problem order
	NB       int // panel width (columns per broadcast)
	GridRows int // process-grid rows (P)
	GridCols int // process-grid columns (Q) — the broadcast communicator size
}

// RoadrunnerPanelBroadcast returns a representative configuration for
// the full machine: one rank per triblade on a 51×60 grid (51·60 =
// 3,060), NB=128, and N sized to fill the Opteron memory the way the
// record run did.
func RoadrunnerPanelBroadcast() PanelBroadcast {
	return PanelBroadcast{N: 2_300_000, NB: 128, GridRows: 51, GridCols: 60}
}

// Panels returns the number of panel broadcasts in the factorisation.
func (pb PanelBroadcast) Panels() int { return (pb.N + pb.NB - 1) / pb.NB }

// PanelBytes returns the local panel size one broadcast moves at the
// factorisation's midpoint: N/2 remaining rows spread over GridRows
// processes, NB columns, 8 bytes per element.
func (pb PanelBroadcast) PanelBytes() units.Size {
	rows := pb.N / 2 / pb.GridRows
	return units.Size(rows) * units.Size(pb.NB) * 8
}

// RowStride is the rank distance between neighbours of one process row
// under column-major grid ordering — the stride at which a row's ranks
// walk across the machine's nodes.
func (pb PanelBroadcast) RowStride() int { return pb.GridRows }

// TotalFlops returns the factorisation's operation count, 2/3·N³.
func (pb PanelBroadcast) TotalFlops() float64 {
	n := float64(pb.N)
	return 2.0 / 3.0 * n * n * n
}

// RunTime returns the wall-clock of the factorisation at the given
// sustained rate.
func (pb PanelBroadcast) RunTime(sustained units.Flops) units.Time {
	if sustained <= 0 {
		return 0
	}
	return units.FromSeconds(pb.TotalFlops() / float64(sustained))
}

// BroadcastFraction returns the share of the run an unoverlapped
// broadcast costing perPanel would consume: Panels()·perPanel over
// RunTime. A fraction exceeding the hybrid model's OverlapLoss means
// that broadcast algorithm could not hide inside the measured overlap
// budget.
func (pb PanelBroadcast) BroadcastFraction(perPanel units.Time, sustained units.Flops) float64 {
	rt := pb.RunTime(sustained)
	if rt <= 0 {
		return 0
	}
	return float64(pb.Panels()) * float64(perPanel) / float64(rt)
}

// PipelinedPerPanel returns the per-panel lower bound for a pipelined
// (ring/segmented) broadcast: the panel streams through each link once,
// so the cost approaches PanelBytes at the link bandwidth independent of
// the row size — the reason HPL's long broadcasts are rings, not trees.
func (pb PanelBroadcast) PipelinedPerPanel(bw units.Bandwidth) units.Time {
	return bw.TransferTime(pb.PanelBytes())
}
