package linpack

import (
	"math"
	"testing"
	"testing/quick"

	"roadrunner/internal/machine"
	"roadrunner/internal/params"
	"roadrunner/internal/units"
)

func TestFactorizeAndSolve(t *testing.T) {
	for _, n := range []int{1, 2, 7, 16, 33, 64, 100} {
		a := RandomSPD(n, int64(n))
		orig := a.Clone()
		lu, err := Factorize(a, 8)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = float64(i%5) - 2
		}
		x := lu.Solve(b)
		if r := Residual(orig, x, b); r > 1e-12 {
			t.Errorf("n=%d: residual %e", n, r)
		}
	}
}

func TestBlockSizeInvariance(t *testing.T) {
	// The factorisation result (as a solver) is block-size independent.
	n := 48
	b := make([]float64, n)
	for i := range b {
		b[i] = math.Sin(float64(i))
	}
	var ref []float64
	for _, nb := range []int{1, 4, 16, 48, 64} {
		a := RandomSPD(n, 7)
		orig := a.Clone()
		lu, err := Factorize(a, nb)
		if err != nil {
			t.Fatal(err)
		}
		x := lu.Solve(b)
		if r := Residual(orig, x, b); r > 1e-12 {
			t.Errorf("nb=%d: residual %e", nb, r)
		}
		if ref == nil {
			ref = x
			continue
		}
		for i := range x {
			if math.Abs(x[i]-ref[i]) > 1e-9*math.Abs(ref[i]) {
				t.Errorf("nb=%d: x[%d] = %v vs %v", nb, i, x[i], ref[i])
			}
		}
	}
}

func TestFlopCount(t *testing.T) {
	// LU flops ~ (2/3)n^3 for large n.
	n := 96
	a := RandomSPD(n, 3)
	lu, err := Factorize(a, 16)
	if err != nil {
		t.Fatal(err)
	}
	want := 2.0 / 3.0 * float64(n) * float64(n) * float64(n)
	if got := float64(lu.Flops); math.Abs(got-want)/want > 0.10 {
		t.Errorf("flops = %g, want ~%g", got, want)
	}
}

func TestPivotingActuallyPivots(t *testing.T) {
	// A matrix needing pivoting: zero on the first diagonal element.
	a := NewMatrix(3)
	a.Set(0, 0, 0)
	a.Set(0, 1, 2)
	a.Set(0, 2, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 1)
	a.Set(1, 2, 1)
	a.Set(2, 0, 4)
	a.Set(2, 1, 0)
	a.Set(2, 2, 3)
	orig := a.Clone()
	lu, err := Factorize(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	if lu.Swaps == 0 {
		t.Error("expected pivoting")
	}
	x := lu.Solve([]float64{3, 3, 7})
	if r := Residual(orig, x, []float64{3, 3, 7}); r > 1e-12 {
		t.Errorf("residual %e", r)
	}
}

func TestSingularDetected(t *testing.T) {
	a := NewMatrix(3) // all zeros
	if _, err := Factorize(a, 2); err == nil {
		t.Error("singular matrix accepted")
	}
}

func TestSolveProperty(t *testing.T) {
	// For random diagonally dominant systems, the solver inverts
	// correctly at any size/block combination.
	f := func(seed int64, nRaw, nbRaw uint8) bool {
		n := int(nRaw%40) + 2
		nb := int(nbRaw%16) + 1
		a := RandomSPD(n, seed)
		orig := a.Clone()
		lu, err := Factorize(a, nb)
		if err != nil {
			return false
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = float64((seed+int64(i))%7) - 3
		}
		x := lu.Solve(b)
		return Residual(orig, x, b) < 1e-11
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestHeadlineNumbers(t *testing.T) {
	// The hybrid model's efficiency must reproduce the paper's headline:
	// 1.026 Pflop/s on the 1.38 Pflop/s machine.
	eff := RoadrunnerHPL().Efficiency()
	if math.Abs(eff-params.LinpackEfficiency)/params.LinpackEfficiency > 0.01 {
		t.Errorf("efficiency = %.3f, want %.3f", eff, params.LinpackEfficiency)
	}
	sys := machine.New(machine.Full())
	sustained := sys.LinpackSustained(eff)
	if got := sustained.PF(); math.Abs(got-1.026)/1.026 > 0.015 {
		t.Errorf("sustained = %.4f PF/s, want 1.026", got)
	}
	mfw := sys.MFlopsPerWatt(sustained)
	if math.Abs(mfw-437)/437 > 0.05 {
		t.Errorf("Green500 = %.0f MF/W, want ~437", mfw)
	}
}

func TestPanelBroadcastModel(t *testing.T) {
	pb := RoadrunnerPanelBroadcast()
	if pb.GridRows*pb.GridCols != 3060 {
		t.Errorf("grid %dx%d != 3060 nodes", pb.GridRows, pb.GridCols)
	}
	if got := pb.Panels(); got != (pb.N+pb.NB-1)/pb.NB {
		t.Errorf("panels = %d", got)
	}
	// Mid-run panel: N/2/51 rows x 128 cols x 8 B ~ 22 MB.
	if mb := pb.PanelBytes().MBytes(); mb < 20 || mb > 26 {
		t.Errorf("panel = %.1f MB", mb)
	}
	if pb.RowStride() != pb.GridRows {
		t.Error("row stride != grid rows under column-major ordering")
	}
	sys := machine.New(machine.Full())
	sustained := sys.LinpackSustained(RoadrunnerHPL().Efficiency())
	// 2/3 N^3 at ~1.026 PF/s is a couple of hours.
	rt := pb.RunTime(sustained)
	if h := rt.Seconds() / 3600; h < 1 || h > 4 {
		t.Errorf("run time = %.2f h", h)
	}
	// A broadcast costing 1% of runtime per-panel-share reports 0.01.
	perPanel := units.Time(float64(rt) / float64(pb.Panels()) * 0.01)
	if frac := pb.BroadcastFraction(perPanel, sustained); math.Abs(frac-0.01) > 0.0005 {
		t.Errorf("fraction = %.4f, want 0.01", frac)
	}
	// Pipelined bound is bytes at bandwidth.
	if got := pb.PipelinedPerPanel(1 * units.GBPerSec); got != (1 * units.GBPerSec).TransferTime(pb.PanelBytes()) {
		t.Errorf("pipelined bound = %v", got)
	}
	if pb.BroadcastFraction(0, 0) != 0 || pb.RunTime(0) != 0 {
		t.Error("zero sustained rate must not divide by zero")
	}
}
