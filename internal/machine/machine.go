// Package machine assembles the full Roadrunner system: 17 Connected
// Units of 180 triblades plus I/O and service nodes, the InfiniBand
// plant, the Table II characteristics, and the power model behind the
// machine's Green500 placement (437 MFlops/W on LINPACK).
package machine

import (
	"fmt"

	"roadrunner/internal/fabric"
	"roadrunner/internal/params"
	"roadrunner/internal/triblade"
	"roadrunner/internal/units"
)

// Config sizes a Roadrunner-class system.
type Config struct {
	CUs        int
	NodesPerCU int
}

// Full returns the as-built Roadrunner configuration.
func Full() Config {
	return Config{CUs: params.NumCUs, NodesPerCU: params.NodesPerCU}
}

// System is the machine model.
type System struct {
	Config Config
	Node   *triblade.Node
	Fabric *fabric.System
}

// New builds the machine for a configuration.
func New(cfg Config) *System {
	if cfg.CUs < 1 || cfg.CUs > params.MaxCUs {
		panic(fmt.Sprintf("machine: %d CUs", cfg.CUs))
	}
	return &System{
		Config: cfg,
		Node:   triblade.New(),
		Fabric: fabric.NewScaled(cfg.CUs),
	}
}

// Nodes returns the compute-node count (3,060 at full scale).
func (s *System) Nodes() int { return s.Config.CUs * s.Config.NodesPerCU }

// SPEs returns the total SPE count (97,920 at full scale).
func (s *System) SPEs() int { return s.Nodes() * triblade.NumCells * 8 }

// OpteronCores returns the total Opteron core count (12,240).
func (s *System) OpteronCores() int { return s.Nodes() * triblade.NumOpteronCores }

// Cells returns the total PowerXCell 8i count (12,240).
func (s *System) Cells() int { return s.Nodes() * triblade.NumCells }

// PeakDP returns the system double-precision peak (1.38 PF/s full scale).
func (s *System) PeakDP() units.Flops {
	return s.Node.PeakDP() * units.Flops(s.Nodes())
}

// PeakSP returns the single-precision peak (2.91 PF/s full scale).
func (s *System) PeakSP() units.Flops {
	return s.Node.PeakSP() * units.Flops(s.Nodes())
}

// CUPeakDP returns one CU's DP peak (80.9 TF/s).
func (s *System) CUPeakDP() units.Flops {
	return s.Node.PeakDP() * units.Flops(s.Config.NodesPerCU)
}

// CUPeakSP returns one CU's SP peak (171.1 TF/s).
func (s *System) CUPeakSP() units.Flops {
	return s.Node.PeakSP() * units.Flops(s.Config.NodesPerCU)
}

// Memory returns total node memory (32 GB per node).
func (s *System) Memory() units.Size {
	return (s.Node.OpteronMemory() + s.Node.CellMemory()) * units.Size(s.Nodes())
}

// AcceleratedFraction returns the share of peak DP delivered by the Cell
// processors ("Approximately 95% of the peak performance of Roadrunner
// results from the PowerXCell 8i processors").
func (s *System) AcceleratedFraction() float64 {
	return float64(s.Node.CellPeakDP()) / float64(s.Node.PeakDP())
}

// Power returns the system draw under LINPACK-class load: compute nodes,
// I/O nodes and the switch plant.
func (s *System) Power() units.Power {
	nodes := s.Node.Power() * units.Power(s.Nodes())
	ioNodes := params.PowerIONode * units.Power(s.Config.CUs*params.IONodesPerCU)
	// One CU switch per CU plus the 8 inter-CU switches.
	switches := params.PowerPerSwitch * units.Power(s.Config.CUs+params.InterCUSwitches)
	return nodes + ioNodes + switches
}

// LinpackSustained returns the modelled LINPACK rate: peak times the
// hybrid DGEMM offload efficiency (the linpack package derives the
// efficiency; machine exposes the headline composition).
func (s *System) LinpackSustained(efficiency float64) units.Flops {
	return units.Flops(float64(s.PeakDP()) * efficiency)
}

// MFlopsPerWatt returns the Green500 metric for a sustained rate.
func (s *System) MFlopsPerWatt(sustained units.Flops) float64 {
	return sustained.MF() / float64(s.Power())
}

// OpteronOnlyPeakDP returns the system peak with accelerators ignored
// (the paper: "Without accelerators, Roadrunner would appear at
// approximately position 50 on the June 2008 Top 500 list" — 44.1 TF/s).
func (s *System) OpteronOnlyPeakDP() units.Flops {
	return s.Node.OpteronPeakDP() * units.Flops(s.Nodes())
}

// Racks returns the physical rack count: 16 compute racks per CU plus 4
// for the inter-CU switches (§II.C).
func (s *System) Racks() int { return s.Config.CUs*16 + 4 }
