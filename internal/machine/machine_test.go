package machine

import (
	"math"
	"testing"

	"roadrunner/internal/params"
	"roadrunner/internal/units"
)

func TestTableIISystem(t *testing.T) {
	s := New(Full())
	if s.Nodes() != 3060 {
		t.Errorf("nodes = %d", s.Nodes())
	}
	if s.Config.CUs != 17 {
		t.Errorf("CUs = %d", s.Config.CUs)
	}
	// 1.38 Pflop/s DP peak.
	if got := s.PeakDP().PF(); math.Abs(got-1.38)/1.38 > 0.005 {
		t.Errorf("system DP = %v PF/s, want 1.38", got)
	}
	// CU: 80.9 TF/s DP.
	if got := s.CUPeakDP().TF(); math.Abs(got-80.9)/80.9 > 0.005 {
		t.Errorf("CU DP = %v TF/s, want 80.9", got)
	}
}

func TestProcessorCounts(t *testing.T) {
	s := New(Full())
	// "12,240 IBM PowerXCell 8i processors and 12,240 AMD Opteron cores"
	// (the abstract counts cores; §I says each core has an accelerator).
	if s.Cells() != 12240 {
		t.Errorf("cells = %d", s.Cells())
	}
	if s.OpteronCores() != 12240 {
		t.Errorf("cores = %d", s.OpteronCores())
	}
	// "all 97,920 SPEs".
	if s.SPEs() != 97920 {
		t.Errorf("SPEs = %d", s.SPEs())
	}
}

func TestAcceleratedFraction(t *testing.T) {
	s := New(Full())
	// "Approximately 95% of the peak performance ... from the
	// PowerXCell 8i processors" (435.2/449.6 = 96.8%).
	if f := s.AcceleratedFraction(); f < 0.94 || f > 0.98 {
		t.Errorf("accelerated fraction = %v", f)
	}
}

func TestLinpackHeadline(t *testing.T) {
	s := New(Full())
	sustained := s.LinpackSustained(params.LinpackEfficiency)
	// 1.026 Pflop/s within 1%.
	if got := sustained.PF(); math.Abs(got-1.026)/1.026 > 0.01 {
		t.Errorf("LINPACK = %v PF/s, want 1.026", got)
	}
}

func TestGreen500(t *testing.T) {
	s := New(Full())
	sustained := s.LinpackSustained(params.LinpackEfficiency)
	mfw := s.MFlopsPerWatt(sustained)
	// 437 MFlops/W within 5%.
	if math.Abs(mfw-437)/437 > 0.05 {
		t.Errorf("Green500 = %v MF/W, want ~437", mfw)
	}
}

func TestOpteronOnlySystem(t *testing.T) {
	s := New(Full())
	// 3,060 x 14.4 GF/s = 44.1 TF/s: mid-pack Top500 June 2008 (the
	// paper: "approximately position 50").
	if got := s.OpteronOnlyPeakDP().TF(); math.Abs(got-44.06)/44.06 > 0.01 {
		t.Errorf("Opteron-only peak = %v TF/s", got)
	}
	// Accelerators multiply peak by ~31x.
	r := float64(s.PeakDP()) / float64(s.OpteronOnlyPeakDP())
	if r < 30 || r > 33 {
		t.Errorf("acceleration factor = %v", r)
	}
}

func TestMemoryAndRacks(t *testing.T) {
	s := New(Full())
	// 32 GB per node.
	if got := s.Memory() / units.Size(s.Nodes()); got != 32*units.GB {
		t.Errorf("per-node memory = %v", got)
	}
	if s.Racks() != 17*16+4 {
		t.Errorf("racks = %d", s.Racks())
	}
}

func TestScaledSystems(t *testing.T) {
	s := New(Config{CUs: 2, NodesPerCU: params.NodesPerCU})
	if s.Nodes() != 360 {
		t.Errorf("nodes = %d", s.Nodes())
	}
	if s.Fabric.Nodes() != 360 {
		t.Errorf("fabric nodes = %d", s.Fabric.Nodes())
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	New(Config{CUs: 0})
}
