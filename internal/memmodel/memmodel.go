// Package memmodel provides the memory-hierarchy models behind the
// paper's Table III: pointer-chase latency through a cache hierarchy
// (the "memtime" microbenchmark) and STREAM TRIAD bandwidth models for
// cache-based processors and for the SPE local store.
package memmodel

import (
	"fmt"

	"roadrunner/internal/units"
)

// Level is one level of a cache hierarchy.
type Level struct {
	Name    string
	Size    units.Size
	Latency units.Time // load-to-use latency when the working set fits here
}

// Hierarchy models a processor's data-cache hierarchy plus main memory.
type Hierarchy struct {
	Levels     []Level    // ordered smallest to largest
	MemLatency units.Time // latency once the working set spills to DRAM
}

// Validate checks that levels are ordered by size and latency.
func (h *Hierarchy) Validate() error {
	for i := 1; i < len(h.Levels); i++ {
		if h.Levels[i].Size <= h.Levels[i-1].Size {
			return fmt.Errorf("memmodel: level %s (%v) not larger than %s (%v)",
				h.Levels[i].Name, h.Levels[i].Size, h.Levels[i-1].Name, h.Levels[i-1].Size)
		}
		if h.Levels[i].Latency < h.Levels[i-1].Latency {
			return fmt.Errorf("memmodel: level %s faster than %s",
				h.Levels[i].Name, h.Levels[i-1].Name)
		}
	}
	if len(h.Levels) > 0 && h.MemLatency < h.Levels[len(h.Levels)-1].Latency {
		return fmt.Errorf("memmodel: memory faster than last cache level")
	}
	return nil
}

// ChaseLatency returns the per-load latency a pointer-chase (one word per
// cache line, each load's address depending on the previous load) observes
// for the given working-set size: the latency of the smallest level that
// holds the working set, or main memory.
func (h *Hierarchy) ChaseLatency(workingSet units.Size) units.Time {
	for _, l := range h.Levels {
		if workingSet <= l.Size {
			return l.Latency
		}
	}
	return h.MemLatency
}

// ChaseCurve samples ChaseLatency at power-of-two working sets from lo to
// hi, the way memtime sweeps its buffer size.
func (h *Hierarchy) ChaseCurve(lo, hi units.Size) []struct {
	WorkingSet units.Size
	Latency    units.Time
} {
	var out []struct {
		WorkingSet units.Size
		Latency    units.Time
	}
	for ws := lo; ws <= hi; ws *= 2 {
		out = append(out, struct {
			WorkingSet units.Size
			Latency    units.Time
		}{ws, h.ChaseLatency(ws)})
	}
	return out
}

// StreamModel computes sustained STREAM TRIAD bandwidth for a cache-based
// processor from its memory controller peak and the triad's traffic
// pattern. TRIAD (a[i] = b[i] + s*c[i]) reads two streams and writes one;
// with write-allocate caches the written line is first read, so the bus
// moves 4 bytes for every 3 the kernel touches. BusEfficiency captures
// DRAM page/turnaround losses and limited outstanding misses; it is
// calibrated per processor against the paper's Table III and quarantined
// in params.
type StreamModel struct {
	Peak          units.Bandwidth
	BusEfficiency float64
	WriteAllocate bool
}

// Triad returns the sustained TRIAD bandwidth (bytes touched by the
// kernel per second, the STREAM reporting convention).
func (m StreamModel) Triad() units.Bandwidth {
	bw := units.Bandwidth(float64(m.Peak) * m.BusEfficiency)
	if m.WriteAllocate {
		// Bus moves 4/3 of the kernel-visible bytes.
		bw = bw * 3 / 4
	}
	return bw
}
