package memmodel

import (
	"testing"
	"testing/quick"

	"roadrunner/internal/units"
)

func testHierarchy() Hierarchy {
	return Hierarchy{
		Levels: []Level{
			{Name: "L1", Size: 64 * units.KB, Latency: units.FromNanoseconds(1.7)},
			{Name: "L2", Size: 2 * units.MB, Latency: units.FromNanoseconds(6.7)},
		},
		MemLatency: units.FromNanoseconds(30.5),
	}
}

func TestChaseLatencyLevels(t *testing.T) {
	h := testHierarchy()
	if got := h.ChaseLatency(16 * units.KB); got != units.FromNanoseconds(1.7) {
		t.Errorf("16KB = %v", got)
	}
	if got := h.ChaseLatency(64 * units.KB); got != units.FromNanoseconds(1.7) {
		t.Errorf("64KB boundary = %v", got)
	}
	if got := h.ChaseLatency(65 * units.KB); got != units.FromNanoseconds(6.7) {
		t.Errorf("65KB = %v", got)
	}
	if got := h.ChaseLatency(16 * units.MB); got != units.FromNanoseconds(30.5) {
		t.Errorf("16MB = %v", got)
	}
}

func TestChaseMonotoneProperty(t *testing.T) {
	h := testHierarchy()
	f := func(a, b uint32) bool {
		x, y := units.Size(a)+1, units.Size(b)+1
		if x > y {
			x, y = y, x
		}
		return h.ChaseLatency(x) <= h.ChaseLatency(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChaseCurveShape(t *testing.T) {
	h := testHierarchy()
	curve := h.ChaseCurve(4*units.KB, 16*units.MB)
	if len(curve) != 13 {
		t.Fatalf("curve length = %d", len(curve))
	}
	// Distinct plateaus: first point L1, last point memory.
	if curve[0].Latency != units.FromNanoseconds(1.7) {
		t.Errorf("first = %v", curve[0].Latency)
	}
	if curve[len(curve)-1].Latency != units.FromNanoseconds(30.5) {
		t.Errorf("last = %v", curve[len(curve)-1].Latency)
	}
}

func TestValidate(t *testing.T) {
	h := testHierarchy()
	if err := h.Validate(); err != nil {
		t.Errorf("valid hierarchy rejected: %v", err)
	}
	bad := Hierarchy{
		Levels: []Level{
			{Name: "L1", Size: 2 * units.MB, Latency: units.FromNanoseconds(5)},
			{Name: "L2", Size: 64 * units.KB, Latency: units.FromNanoseconds(9)},
		},
		MemLatency: units.FromNanoseconds(100),
	}
	if err := bad.Validate(); err == nil {
		t.Error("shrinking hierarchy accepted")
	}
	inverted := testHierarchy()
	inverted.MemLatency = units.FromNanoseconds(1)
	if err := inverted.Validate(); err == nil {
		t.Error("memory faster than cache accepted")
	}
}

func TestStreamModelTriad(t *testing.T) {
	// The Opteron calibration: 10.7 GB/s peak, 0.674 bus efficiency,
	// write-allocate -> 5.41 GB/s.
	m := StreamModel{Peak: 10.7 * units.GBPerSec, BusEfficiency: 0.674, WriteAllocate: true}
	got := m.Triad().GBps()
	if got < 5.35 || got > 5.47 {
		t.Errorf("Opteron triad = %v GB/s, want ~5.41", got)
	}
	// Without write-allocate the rate is a third higher.
	m2 := m
	m2.WriteAllocate = false
	if m2.Triad() <= m.Triad() {
		t.Error("write-allocate should cost bandwidth")
	}
	ratio := float64(m2.Triad()) / float64(m.Triad())
	if ratio < 1.32 || ratio > 1.35 {
		t.Errorf("write-allocate penalty ratio = %v, want 4/3", ratio)
	}
}
