package microbench

import "time"

// nowNanos returns a monotonic wall-clock sample in nanoseconds for the
// real host kernels. Isolated here so everything else in the repository
// stays on simulated time.
func nowNanos() float64 {
	return float64(time.Now().UnixNano())
}
