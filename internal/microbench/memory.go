package microbench

import (
	"roadrunner/internal/cell"
	"roadrunner/internal/hostcpu"
	"roadrunner/internal/units"
)

// TableIIIRow is one processor's memory characterisation.
type TableIIIRow struct {
	Processor string
	Triad     units.Bandwidth
	Latency   units.Time
}

// TableIII computes the paper's Table III from the processor models.
func TableIII() []TableIIIRow {
	opteron := hostcpu.Opteron2210HE()
	pxc := cell.New(cell.PowerXCell8i)
	return []TableIIIRow{
		{"Opteron", opteron.StreamTriad(), opteron.MemLatency()},
		{"PowerXCell 8i (PPE)", pxc.PPETriad(), pxc.PPEMemLatency()},
		{"PowerXCell 8i (SPE)", pxc.SPETriad(), pxc.SPELocalStoreLatency()},
	}
}

// ---------------------------------------------------------------------------
// Real host kernels: a living STREAM TRIAD and pointer chase executed on
// whatever machine runs the benchmark harness, so model outputs sit next
// to genuinely measured numbers.
// ---------------------------------------------------------------------------

// HostTriad runs a real TRIAD over n-element float64 arrays and returns
// the STREAM-convention bandwidth. The work is real; the result depends
// on the host machine (it is reported, never asserted against).
func HostTriad(n int) (units.Bandwidth, float64) {
	a := make([]float64, n)
	b := make([]float64, n)
	c := make([]float64, n)
	for i := range b {
		b[i] = float64(i)
		c[i] = float64(n - i)
	}
	const s = 3.0
	start := nowNanos()
	const reps = 5
	for r := 0; r < reps; r++ {
		for i := range a {
			a[i] = b[i] + s*c[i]
		}
	}
	elapsed := nowNanos() - start
	bytes := float64(3 * 8 * n * reps)
	checksum := a[0] + a[n/2] + a[n-1]
	return units.Bandwidth(bytes / (elapsed * 1e-9)), checksum
}

// HostChase runs a real dependent pointer chase over a working set of n
// words and returns nanoseconds per hop.
func HostChase(n, hops int) (float64, int) {
	next := make([]int, n)
	// Sattolo shuffle for a single cycle, deterministic.
	s := uint64(12345)
	rnd := func(m int) int {
		s = s*6364136223846793005 + 1442695040888963407
		return int((s >> 33) % uint64(m))
	}
	for i := range next {
		next[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := rnd(i)
		next[i], next[j] = next[j], next[i]
	}
	p := 0
	start := nowNanos()
	for h := 0; h < hops; h++ {
		p = next[p]
	}
	elapsed := nowNanos() - start
	return elapsed / float64(hops), p
}
