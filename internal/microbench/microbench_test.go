package microbench

import (
	"math"
	"testing"

	"roadrunner/internal/fabric"
	"roadrunner/internal/units"
)

func TestFig6BreakdownMatchesPaper(t *testing.T) {
	segs := Fig6Breakdown()
	if len(segs) != 5 {
		t.Fatalf("segments = %d", len(segs))
	}
	want := []float64{0.12, 3.19, 2.16, 3.19, 0.12}
	for i, s := range segs {
		if got := s.Time.Microseconds(); math.Abs(got-want[i]) > 0.001 {
			t.Errorf("segment %q = %v us, want %v", s.Name, got, want[i])
		}
	}
	if got := Fig6Total().Microseconds(); math.Abs(got-8.78) > 0.001 {
		t.Errorf("total = %v us, want 8.78", got)
	}
	// DaCS dominates: the paper's point about the immature stack.
	if segs[1].Time <= segs[2].Time {
		t.Error("DaCS should cost more than MPI/IB")
	}
}

func TestFig7Endpoints(t *testing.T) {
	size := 1 * units.MB
	uni := IntranodeUni(size).MBps()
	bidir := IntranodeBidir(size).MBps()
	// Paper: 1,295 MB/s bidirectional vs 2,017 MB/s double-unidirectional
	// (64%).
	if math.Abs(2*uni-2017)/2017 > 0.05 {
		t.Errorf("intranode 2x uni = %.0f, want ~2017", 2*uni)
	}
	if math.Abs(bidir-1295)/1295 > 0.05 {
		t.Errorf("intranode bidir = %.0f, want ~1295", bidir)
	}
	if r := bidir / (2 * uni); math.Abs(r-0.64) > 0.04 {
		t.Errorf("intranode duplex ratio = %.3f, want 0.64", r)
	}

	iuni := InternodeUni(size).MBps()
	ibid := InternodeBidir(size).MBps()
	// Paper: 375 MB/s vs 536 MB/s (70%).
	if math.Abs(2*iuni-536)/536 > 0.06 {
		t.Errorf("internode 2x uni = %.0f, want ~536", 2*iuni)
	}
	if math.Abs(ibid-375)/375 > 0.06 {
		t.Errorf("internode bidir = %.0f, want ~375", ibid)
	}
	if r := ibid / (2 * iuni); math.Abs(r-0.70) > 0.04 {
		t.Errorf("internode duplex ratio = %.3f, want 0.70", r)
	}
}

func TestFig7CurvesMonotone(t *testing.T) {
	// Monotone rise with size, allowing the small dip at the
	// eager-to-rendezvous protocol switch.
	var prev units.Bandwidth
	for _, s := range PingPongSizes() {
		cur := IntranodeUni(s)
		if float64(cur) < float64(prev)*0.40 {
			t.Fatalf("intranode uni collapses at %v: %v after %v", s, cur, prev)
		}
		if cur > prev {
			prev = cur
		}
	}
	// Intranode beats internode at every size (fewer hops, no sharing).
	for _, s := range PingPongSizes() {
		if IntranodeUni(s) < InternodeUni(s) {
			t.Errorf("internode faster at %v", s)
		}
	}
}

func TestFig9Shape(t *testing.T) {
	// Below 20 KB DaCS achieves less than half of IB (at 16 KB our
	// modelled IB rendezvous switch softens the gap slightly); the
	// ratio approaches 1 for large messages.
	for _, s := range []units.Size{1 * units.KB, 4 * units.KB, 8 * units.KB} {
		r := float64(Fig9DaCS(s)) / float64(Fig9IB(s))
		if r >= 0.5 {
			t.Errorf("DaCS/IB at %v = %.2f, want < 0.5", s, r)
		}
	}
	if r := float64(Fig9DaCS(16*units.KB)) / float64(Fig9IB(16*units.KB)); r >= 0.8 {
		t.Errorf("DaCS/IB at 16KB = %.2f, want well under 1", r)
	}
	r := float64(Fig9DaCS(1*units.MB)) / float64(Fig9IB(1*units.MB))
	if r < 0.65 {
		t.Errorf("DaCS/IB at 1MB = %.2f, want approaching 1", r)
	}
}

func TestFig10Plateaus(t *testing.T) {
	fab := fabric.New()
	m := Fig10Map(fab)
	if len(m) != 3060 {
		t.Fatalf("map size = %d", len(m))
	}
	us := func(i int) float64 { return m[i].Microseconds() }
	// Minimum 2.5 us on node 0's own crossbar.
	if math.Abs(us(1)-2.5) > 0.05 {
		t.Errorf("same-crossbar latency = %v, want ~2.5", us(1))
	}
	// ~3.0 us within the CU.
	if math.Abs(us(100)-3.0) > 0.1 {
		t.Errorf("same-CU latency = %v, want ~3.0", us(100))
	}
	// ~3.4-3.5 us to CUs 2-12 (different crossbar). 220 ns/hop cannot
	// yield exactly 2.5 at 1 hop and 3.5 at 5 simultaneously; we land at
	// the hop model's value.
	if math.Abs(us(190)-3.5) > 0.15 {
		t.Errorf("5-hop latency = %v, want ~3.5", us(190))
	}
	// Just under 4 us to the last five CUs.
	far := us(16*180 + 100)
	if far < 3.7 || far > 4.0 {
		t.Errorf("7-hop latency = %v, want just under 4", far)
	}
	// Periodic dips in the 5-hop region: the same-crossbar nodes of
	// remote CUs come back down to ~3.06 us.
	dip := us(180) // CU2's crossbar-0 nodes share a switch crossbar
	if dip >= us(190) {
		t.Errorf("no dip at remote same-crossbar node: %v vs %v", dip, us(190))
	}
}

func TestTableIIIAssembly(t *testing.T) {
	rows := TableIII()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	want := []struct {
		bw  float64
		lat float64
	}{{5.41, 30.5}, {0.89, 23.4}, {29.28, 9.4}}
	for i, r := range rows {
		if math.Abs(r.Triad.GBps()-want[i].bw)/want[i].bw > 0.02 {
			t.Errorf("%s triad = %v, want %v", r.Processor, r.Triad.GBps(), want[i].bw)
		}
		if math.Abs(r.Latency.Nanoseconds()-want[i].lat) > 0.1 {
			t.Errorf("%s latency = %v, want %v", r.Processor, r.Latency.Nanoseconds(), want[i].lat)
		}
	}
}

func TestHostKernelsRun(t *testing.T) {
	// The live kernels do real work and return sane values; their
	// magnitudes are host-dependent, so only sanity is asserted.
	bw, sum := HostTriad(1 << 16)
	if bw <= 0 || sum == 0 {
		t.Errorf("triad bw=%v sum=%v", bw, sum)
	}
	ns, p := HostChase(1<<14, 1<<16)
	if ns <= 0 || p < 0 {
		t.Errorf("chase ns=%v p=%v", ns, p)
	}
}
