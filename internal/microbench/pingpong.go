// Package microbench assembles the paper's communication and memory
// microbenchmarks from the transport and memory models: the Fig. 6
// latency decomposition, the Fig. 7 Cell-to-Cell bandwidth curves, the
// Fig. 8 core-pairing curves, the Fig. 9 DaCS-vs-InfiniBand comparison,
// the Fig. 10 full-machine latency map, and the Table III STREAM and
// memtime values. It also contains real host-machine STREAM/pointer-chase
// kernels used by the benchmark harness as a living reference.
package microbench

import (
	"roadrunner/internal/dacs"
	"roadrunner/internal/fabric"
	"roadrunner/internal/ib"
	"roadrunner/internal/params"
	"roadrunner/internal/units"
)

// Segment is one leg of the Fig. 6 zero-byte Cell-to-Cell path.
type Segment struct {
	Name string
	Time units.Time
}

// Fig6Breakdown returns the five segments of a zero-byte message from a
// Cell to a Cell in an adjacent node, exactly as Fig. 6 decomposes it.
func Fig6Breakdown() []Segment {
	d := dacs.Current()
	i := ib.OpenMPI()
	return []Segment{
		{"Local (SPE->PPE)", params.LocalSegment},
		{"Cell to Opteron (DaCS over PCIe)", d.OneWay(0)},
		{"Opteron to Opteron (MPI over InfiniBand)", i.ZeroByteLatency(1)},
		{"Opteron to Cell (DaCS over PCIe)", d.OneWay(0)},
		{"Local (PPE->SPE)", params.LocalSegment},
	}
}

// Fig6Total sums the breakdown (the paper's 8.78 us).
func Fig6Total() units.Time {
	var t units.Time
	for _, s := range Fig6Breakdown() {
		t += s.Time
	}
	return t
}

// PingPongSizes returns the message sizes the bandwidth figures sweep.
func PingPongSizes() []units.Size {
	var out []units.Size
	for s := units.Size(1); s <= 1*units.MB; s *= 4 {
		out = append(out, s)
	}
	out = append(out, 1*units.MB)
	return out
}

// IntranodeUni returns the Fig. 7 intranode (PPE-Opteron over DaCS)
// unidirectional bandwidth at a message size.
func IntranodeUni(size units.Size) units.Bandwidth {
	return dacs.Current().BandwidthAt(size)
}

// IntranodeBidir returns the aggregate bandwidth of a simultaneous
// exchange in both directions: each direction streams at half the DaCS
// pair's duplex capacity.
func IntranodeBidir(size units.Size) units.Bandwidth {
	pr := dacs.Current()
	half := pr.PairAggregate / 2
	t := pr.Latency
	if size > pr.EagerThreshold {
		t += pr.RendezvousOverhead
	}
	t += half.TransferTime(size)
	if size <= 0 {
		return 0
	}
	return units.Bandwidth(2 * float64(size) / t.Seconds())
}

// internodeFlows is Fig. 7's load: all four Cell-Opteron pairs in use.
const internodeFlows = 4

// InternodeUni returns the Fig. 7 internode Cell-to-Cell unidirectional
// bandwidth for the worst pair with all four pairs active: the path is
// DaCS, then the HCA shared four ways, then DaCS, with segments
// pipelined at the bottleneck stage.
func InternodeUni(size units.Size) units.Bandwidth {
	d := dacs.Current()
	i := ib.OpenMPI()
	lat := 2*d.OneWay(0) + i.ZeroByteLatency(1) + 2*params.LocalSegment
	if size > d.EagerThreshold {
		lat += 2 * d.RendezvousOverhead // both DaCS legs handshake
	}
	share := i.MultiFlowBandwidth / internodeFlows
	bottleneck := d.StreamBandwidth
	if share < bottleneck {
		bottleneck = share
	}
	t := lat + bottleneck.TransferTime(size)
	if size <= 0 {
		return 0
	}
	return units.Bandwidth(float64(size) / t.Seconds())
}

// InternodeBidir returns the aggregate two-direction bandwidth of the
// worst pair with all pairs exchanging both ways: eight flows share the
// HCA duplex capacity.
func InternodeBidir(size units.Size) units.Bandwidth {
	d := dacs.Current()
	i := ib.OpenMPI()
	lat := 2*d.OneWay(0) + i.ZeroByteLatency(1) + 2*params.LocalSegment
	if size > d.EagerThreshold {
		lat += 2 * d.RendezvousOverhead
	}
	perFlow := i.DuplexAggregate / (2 * internodeFlows)
	bottleneck := d.PairAggregate / 2
	if perFlow < bottleneck {
		bottleneck = perFlow
	}
	t := lat + bottleneck.TransferTime(size)
	if size <= 0 {
		return 0
	}
	return units.Bandwidth(2 * float64(size) / t.Seconds())
}

// Fig9DaCS returns the intra-node DaCS bandwidth at a size (Fig. 9's
// lower curve).
func Fig9DaCS(size units.Size) units.Bandwidth {
	return dacs.Current().BandwidthAt(size)
}

// Fig9IB returns the inter-node MPI/InfiniBand bandwidth at a size
// (Fig. 9's upper curve; the default far-core pairing of the test rig,
// one crossbar).
func Fig9IB(size units.Size) units.Bandwidth {
	return ib.OpenMPI().BandwidthAt(size, 1, 0, 2)
}

// Fig10Latency returns the Fig. 10 zero-byte one-way latency from node 0
// to a destination node, including the map harness's fixed overhead.
func Fig10Latency(fab *fabric.System, dst fabric.NodeID) units.Time {
	hops := fab.Hops(fabric.FromGlobal(0), dst)
	return ib.OpenMPI().ZeroByteLatency(hops) + params.Fig10HarnessOverhead
}

// Fig10Map computes the full latency map over every node.
func Fig10Map(fab *fabric.System) []units.Time {
	out := make([]units.Time, fab.Nodes())
	for g := 0; g < fab.Nodes(); g++ {
		out[g] = Fig10Latency(fab, fabric.FromGlobal(g))
	}
	return out
}
