// Package mpi implements the blocking subset of MPI the paper's codes use
// (point-to-point send/recv with tag/source matching, sendrecv, barrier,
// broadcast, reduce, allreduce) for host (Opteron) ranks running as
// processes on the discrete-event engine, with message timing from the
// Open MPI / InfiniBand model and routes from the fabric model.
//
// Messages carry real payloads: the solver code that runs on these ranks
// exchanges actual boundary data, so correctness is testable end to end.
package mpi

import (
	"fmt"

	"roadrunner/internal/fabric"
	"roadrunner/internal/ib"
	"roadrunner/internal/sim"
	"roadrunner/internal/units"
)

// AnyTag matches any message tag in Recv.
const AnyTag = -1

// AnySource matches any source rank in Recv.
const AnySource = -1

// Message is an in-flight or delivered MPI message.
type Message struct {
	Src  int
	Dst  int
	Tag  int
	Data []float64 // payload (may be nil for control messages)
	Size units.Size
}

// Placement locates a rank on the machine.
type Placement struct {
	Node fabric.NodeID
	Core int // Opteron core 0..3 (HCA proximity per Fig. 8)
}

// World is a communicator spanning a set of placed ranks.
type World struct {
	eng     *sim.Engine
	fab     *fabric.System
	profile ib.Profile
	ranks   []*Rank
	hcas    map[fabric.NodeID]*ib.HCA
}

// NewWorld creates a communicator on the engine over the given fabric.
func NewWorld(eng *sim.Engine, fab *fabric.System, profile ib.Profile) *World {
	return &World{
		eng:     eng,
		fab:     fab,
		profile: profile,
		hcas:    make(map[fabric.NodeID]*ib.HCA),
	}
}

// AddRank places a new rank and returns it. Ranks are numbered in the
// order added.
func (w *World) AddRank(p Placement) *Rank {
	r := &Rank{
		world: w,
		id:    len(w.ranks),
		place: p,
		inbox: sim.NewMailbox[*Message](w.eng, fmt.Sprintf("rank%d", len(w.ranks))),
	}
	w.ranks = append(w.ranks, r)
	if _, ok := w.hcas[p.Node]; !ok {
		w.hcas[p.Node] = ib.NewHCA(w.eng, w.profile)
	}
	return r
}

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.ranks) }

// Rank returns rank i.
func (w *World) Rank(i int) *Rank { return w.ranks[i] }

// Rank is one MPI process.
type Rank struct {
	world *World
	id    int
	place Placement
	inbox *sim.Mailbox[*Message]
}

// ID returns the rank number.
func (r *Rank) ID() int { return r.id }

// Placement returns where the rank lives.
func (r *Rank) Placement() Placement { return r.place }

// payloadSize returns the wire size of a float64 payload.
func payloadSize(data []float64) units.Size { return units.Size(8 * len(data)) }

// Send transmits data to rank dst with the given tag, blocking the
// calling proc for the send-side cost. Delivery is scheduled after the
// network traversal; eager sends return once the payload has left the
// sender, rendezvous sends additionally wait for the handshake.
func (r *Rank) Send(p *sim.Proc, dst, tag int, data []float64) {
	w := r.world
	if dst < 0 || dst >= len(w.ranks) {
		panic(fmt.Sprintf("mpi: send to rank %d of %d", dst, len(w.ranks)))
	}
	to := w.ranks[dst]
	size := payloadSize(data)
	msg := &Message{Src: r.id, Dst: dst, Tag: tag, Data: data, Size: size}

	pr := w.profile
	if r.place.Node == to.place.Node {
		// Intra-node: shared-memory path, one software overhead each side.
		p.Sleep(pr.PerSideOverhead)
		w.eng.Schedule(pr.PerSideOverhead, func() { to.inbox.Put(msg) })
		return
	}
	hops := w.fab.Hops(r.place.Node, to.place.Node)
	fabLat := units.Time(hops) * pr.HopLatency
	pairBW := pr.PairBandwidth(r.place.Core, to.place.Core)

	p.Sleep(pr.PerSideOverhead) // send-side software
	if size > pr.EagerThreshold {
		// Rendezvous round trip before the payload moves.
		p.Sleep(2 * (2*pr.PerSideOverhead + fabLat))
	}
	if size > 0 {
		w.hcas[r.place.Node].Stream(p, 0, size, pairBW)
	}
	// Wire + receive side happen after the sender's part.
	w.eng.Schedule(fabLat+pr.PerSideOverhead, func() { to.inbox.Put(msg) })
}

// Recv blocks until a message matching (src, tag) arrives and returns it.
// Use AnySource/AnyTag as wildcards.
func (r *Rank) Recv(p *sim.Proc, src, tag int) *Message {
	return r.inbox.GetMatch(p, func(m *Message) bool {
		return (src == AnySource || m.Src == src) && (tag == AnyTag || m.Tag == tag)
	})
}

// Sendrecv exchanges messages with two peers (possibly the same): sends
// to dst and receives from src, overlapping the two as MPI_Sendrecv does.
func (r *Rank) Sendrecv(p *sim.Proc, dst, sendTag int, data []float64, src, recvTag int) *Message {
	r.Send(p, dst, sendTag, data)
	return r.Recv(p, src, recvTag)
}

// collective tags use a high bit to stay clear of application tags.
const (
	tagBarrier = 1 << 28
	tagBcast   = 1 << 29
	tagReduce  = 1 << 30
)

// Barrier synchronises all ranks with a binomial gather-up /
// broadcast-down tree rooted at rank 0.
func (r *Rank) Barrier(p *sim.Proc) {
	size := len(r.world.ranks)
	// Gather up.
	for dist := 1; dist < size; dist *= 2 {
		if r.id&dist != 0 {
			r.Send(p, r.id-dist, tagBarrier, nil)
			break
		} else if r.id+dist < size {
			r.Recv(p, r.id+dist, tagBarrier)
		}
	}
	// Release down (reverse order).
	start := 1
	for start*2 < size {
		start *= 2
	}
	for dist := start; dist >= 1; dist /= 2 {
		if r.id&dist != 0 {
			r.Recv(p, r.id-dist, tagBarrier+1)
			break
		}
	}
	for dist := start; dist >= 1; dist /= 2 {
		if r.id&dist == 0 && r.id+dist < size {
			r.Send(p, r.id+dist, tagBarrier+1, nil)
		}
	}
}

// Bcast broadcasts data from root using a binomial tree and returns the
// received slice on non-roots (the root returns data unchanged).
func (r *Rank) Bcast(p *sim.Proc, root int, data []float64) []float64 {
	size := len(r.world.ranks)
	rel := (r.id - root + size) % size
	if rel != 0 {
		// Find the sender: clear the highest set bit of rel.
		h := 1
		for h*2 <= rel {
			h *= 2
		}
		src := (rel - h + root) % size
		msg := r.Recv(p, src, tagBcast)
		data = msg.Data
	}
	// Forward to children.
	h := 1
	for h <= rel {
		h *= 2
	}
	for ; rel+h < size; h *= 2 {
		dst := (rel + h + root) % size
		r.Send(p, dst, tagBcast, data)
	}
	return data
}

// ReduceOp combines two values in a reduction.
type ReduceOp func(a, b float64) float64

// Sum is the addition reduction.
func Sum(a, b float64) float64 { return a + b }

// Max is the maximum reduction.
func Max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Reduce combines each rank's vals elementwise at root with op. Non-root
// ranks return nil; root returns the combined vector.
func (r *Rank) Reduce(p *sim.Proc, root int, vals []float64, op ReduceOp) []float64 {
	size := len(r.world.ranks)
	rel := (r.id - root + size) % size
	acc := append([]float64(nil), vals...)
	// Binomial gather: receive from children (rel + h), send to parent.
	for h := 1; h < size; h *= 2 {
		if rel&h != 0 {
			parent := (rel - h + root) % size
			r.Send(p, parent, tagReduce, acc)
			return nil
		}
		if rel+h < size {
			child := (rel + h + root) % size
			msg := r.Recv(p, child, tagReduce)
			for i := range acc {
				acc[i] = op(acc[i], msg.Data[i])
			}
		}
	}
	return acc
}

// Allreduce is Reduce to rank 0 followed by Bcast.
func (r *Rank) Allreduce(p *sim.Proc, vals []float64, op ReduceOp) []float64 {
	acc := r.Reduce(p, 0, vals, op)
	return r.Bcast(p, 0, acc)
}
