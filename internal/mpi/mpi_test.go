package mpi

import (
	"math"
	"testing"

	"roadrunner/internal/fabric"
	"roadrunner/internal/ib"
	"roadrunner/internal/sim"
	"roadrunner/internal/units"
)

// testWorld builds a world with one rank per node on the first n nodes.
func testWorld(eng *sim.Engine, n int) *World {
	fab := fabric.New()
	w := NewWorld(eng, fab, ib.OpenMPI())
	for i := 0; i < n; i++ {
		w.AddRank(Placement{Node: fabric.FromGlobal(i), Core: 1})
	}
	return w
}

func TestZeroByteOneWayLatency(t *testing.T) {
	// Adjacent nodes (same crossbar, 1 hop): 2.16 us one way.
	eng := sim.NewEngine()
	defer eng.Close()
	w := testWorld(eng, 2)
	var arrive units.Time
	eng.Spawn("r1", func(p *sim.Proc) {
		w.Rank(1).Recv(p, 0, 7)
		arrive = p.Now()
	})
	eng.Spawn("r0", func(p *sim.Proc) {
		w.Rank(0).Send(p, 1, 7, nil)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	want := units.FromMicroseconds(2.16)
	if d := arrive - want; d < -units.Nanosecond || d > units.Nanosecond {
		t.Errorf("one-way = %v, want %v", arrive, want)
	}
}

func TestPayloadIntegrity(t *testing.T) {
	eng := sim.NewEngine()
	defer eng.Close()
	w := testWorld(eng, 2)
	data := []float64{3.14, 2.71, 1.41}
	var got []float64
	eng.Spawn("r1", func(p *sim.Proc) {
		got = w.Rank(1).Recv(p, AnySource, AnyTag).Data
	})
	eng.Spawn("r0", func(p *sim.Proc) {
		w.Rank(0).Send(p, 1, 0, data)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 3.14 || got[2] != 1.41 {
		t.Errorf("payload = %v", got)
	}
}

func TestTagAndSourceMatching(t *testing.T) {
	eng := sim.NewEngine()
	defer eng.Close()
	w := testWorld(eng, 3)
	var order []int
	eng.Spawn("r2", func(p *sim.Proc) {
		// Wait specifically for rank 1's message first, then rank 0's.
		m := w.Rank(2).Recv(p, 1, AnyTag)
		order = append(order, m.Src)
		m = w.Rank(2).Recv(p, 0, AnyTag)
		order = append(order, m.Src)
	})
	eng.Spawn("r0", func(p *sim.Proc) {
		w.Rank(0).Send(p, 2, 1, []float64{0})
	})
	eng.SpawnAt(10*units.Microsecond, "r1", func(p *sim.Proc) {
		w.Rank(1).Send(p, 2, 2, []float64{1})
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != 1 || order[1] != 0 {
		t.Errorf("order = %v", order)
	}
}

func TestRendezvousSlowerThanEager(t *testing.T) {
	eng := sim.NewEngine()
	defer eng.Close()
	w := testWorld(eng, 2)
	pr := ib.OpenMPI()
	small := make([]float64, int(pr.EagerThreshold)/8)
	big := make([]float64, int(pr.EagerThreshold)/8+512)
	var tSmall, tBig units.Time
	eng.Spawn("recv", func(p *sim.Proc) {
		w.Rank(1).Recv(p, 0, 1)
		tSmall = p.Now()
		w.Rank(1).Recv(p, 0, 2)
		tBig = p.Now() - tSmall
	})
	eng.Spawn("send", func(p *sim.Proc) {
		w.Rank(0).Send(p, 1, 1, small)
		w.Rank(0).Send(p, 1, 2, big)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// The rendezvous handshake adds at least a zero-byte round trip.
	if tBig-tSmall < units.FromMicroseconds(2) {
		t.Errorf("eager %v, rendezvous delta %v", tSmall, tBig)
	}
}

func TestBarrierSynchronises(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8} {
		eng := sim.NewEngine()
		w := testWorld(eng, n)
		reached := make([]units.Time, n)
		for i := 0; i < n; i++ {
			i := i
			r := w.Rank(i)
			eng.SpawnAt(units.Time(i)*units.Microsecond, "r", func(p *sim.Proc) {
				r.Barrier(p)
				reached[i] = p.Now()
			})
		}
		if err := eng.Run(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// No rank may leave the barrier before the last one entered
		// (the last entry is at (n-1) us).
		entry := units.Time(n-1) * units.Microsecond
		for i, tm := range reached {
			if tm < entry {
				t.Errorf("n=%d: rank %d left barrier at %v before %v", n, i, tm, entry)
			}
		}
		eng.Close()
	}
}

func TestBcastDeliversToAll(t *testing.T) {
	for _, n := range []int{2, 4, 7} {
		for _, root := range []int{0, n - 1} {
			eng := sim.NewEngine()
			w := testWorld(eng, n)
			got := make([][]float64, n)
			for i := 0; i < n; i++ {
				i := i
				r := w.Rank(i)
				eng.Spawn("r", func(p *sim.Proc) {
					var data []float64
					if i == root {
						data = []float64{42, 7}
					}
					got[i] = r.Bcast(p, root, data)
				})
			}
			if err := eng.Run(); err != nil {
				t.Fatalf("n=%d root=%d: %v", n, root, err)
			}
			for i := range got {
				if len(got[i]) != 2 || got[i][0] != 42 || got[i][1] != 7 {
					t.Errorf("n=%d root=%d rank=%d got %v", n, root, i, got[i])
				}
			}
			eng.Close()
		}
	}
}

func TestReduceAndAllreduce(t *testing.T) {
	n := 6
	eng := sim.NewEngine()
	defer eng.Close()
	w := testWorld(eng, n)
	sums := make([][]float64, n)
	for i := 0; i < n; i++ {
		i := i
		r := w.Rank(i)
		eng.Spawn("r", func(p *sim.Proc) {
			sums[i] = r.Allreduce(p, []float64{float64(i), 1}, Sum)
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	want0 := float64(0 + 1 + 2 + 3 + 4 + 5)
	for i := range sums {
		if len(sums[i]) != 2 || math.Abs(sums[i][0]-want0) > 1e-12 || sums[i][1] != float64(n) {
			t.Errorf("rank %d allreduce = %v", i, sums[i])
		}
	}
}

func TestReduceMax(t *testing.T) {
	n := 5
	eng := sim.NewEngine()
	defer eng.Close()
	w := testWorld(eng, n)
	var got []float64
	for i := 0; i < n; i++ {
		i := i
		r := w.Rank(i)
		eng.Spawn("r", func(p *sim.Proc) {
			res := r.Reduce(p, 0, []float64{float64(i * i)}, Max)
			if i == 0 {
				got = res
			} else if res != nil {
				t.Errorf("non-root rank %d got %v", i, res)
			}
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 16 {
		t.Errorf("max = %v", got)
	}
}

func TestIntraNodeFasterThanInterNode(t *testing.T) {
	eng := sim.NewEngine()
	defer eng.Close()
	fab := fabric.New()
	w := NewWorld(eng, fab, ib.OpenMPI())
	w.AddRank(Placement{Node: fabric.FromGlobal(0), Core: 0}) // rank 0
	w.AddRank(Placement{Node: fabric.FromGlobal(0), Core: 1}) // rank 1: same node
	w.AddRank(Placement{Node: fabric.FromGlobal(1), Core: 1}) // rank 2: other node
	var tIntra, tInter units.Time
	eng.Spawn("r1", func(p *sim.Proc) {
		w.Rank(1).Recv(p, 0, 1)
		tIntra = p.Now()
	})
	eng.Spawn("r2", func(p *sim.Proc) {
		w.Rank(2).Recv(p, 0, 2)
		tInter = p.Now()
	})
	eng.Spawn("r0", func(p *sim.Proc) {
		w.Rank(0).Send(p, 1, 1, nil)
		w.Rank(0).Send(p, 2, 2, nil)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if tIntra >= tInter {
		t.Errorf("intra %v >= inter %v", tIntra, tInter)
	}
}

func TestSendrecvNoDeadlock(t *testing.T) {
	// Pairwise exchange with Sendrecv must not deadlock.
	eng := sim.NewEngine()
	defer eng.Close()
	w := testWorld(eng, 2)
	done := 0
	for i := 0; i < 2; i++ {
		i := i
		r := w.Rank(i)
		eng.Spawn("r", func(p *sim.Proc) {
			peer := 1 - i
			m := r.Sendrecv(p, peer, 5, []float64{float64(i)}, peer, 5)
			if m.Data[0] != float64(peer) {
				t.Errorf("rank %d got %v", i, m.Data)
			}
			done++
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 2 {
		t.Errorf("done = %d", done)
	}
}

func TestFig10LatencyPlateaus(t *testing.T) {
	// One-way zero-byte latency by destination class, with the hop
	// structure of the fabric: ~2.16 us at 1 hop rising ~220 ns per
	// extra crossbar pair.
	pr := ib.OpenMPI()
	fab := fabric.New()
	n0 := fabric.FromGlobal(0)
	lat := func(g int) float64 {
		return pr.ZeroByteLatency(fab.Hops(n0, fabric.FromGlobal(g))).Microseconds()
	}
	sameXbar := lat(1)
	sameCU := lat(100)
	nearCU := lat(200) // CU2, different crossbar: 5 hops
	farCU := lat(16*180 + 100)
	if !(sameXbar < sameCU && sameCU < nearCU && nearCU < farCU) {
		t.Errorf("plateaus not ordered: %v %v %v %v", sameXbar, sameCU, nearCU, farCU)
	}
	if math.Abs(farCU-sameXbar-6*0.22) > 0.001 {
		t.Errorf("7-hop vs 1-hop delta = %v, want 1.32us", farCU-sameXbar)
	}
}
