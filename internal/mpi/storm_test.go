package mpi

import (
	"math/rand"
	"testing"
	"testing/quick"

	"roadrunner/internal/sim"
	"roadrunner/internal/units"
)

func TestMessageStormExactlyOnce(t *testing.T) {
	// A randomized all-to-all storm: every sent message is received
	// exactly once with intact payload, and per-(src,dst,tag) order is
	// preserved.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		eng := sim.NewEngine()
		defer eng.Close()
		w := testWorld(eng, 4)
		n := w.Size()
		const perSender = 12

		type sent struct{ src, seq int }
		received := make([][]sent, n)
		for dst := 0; dst < n; dst++ {
			dst := dst
			r := w.Rank(dst)
			expect := perSender * (n - 1)
			eng.Spawn("recv", func(p *sim.Proc) {
				for i := 0; i < expect; i++ {
					m := r.Recv(p, AnySource, AnyTag)
					received[dst] = append(received[dst],
						sent{m.Src, int(m.Data[0])})
				}
			})
		}
		for src := 0; src < n; src++ {
			src := src
			r := w.Rank(src)
			delay := units.Time(rng.Intn(100)) * units.Nanosecond
			eng.SpawnAt(delay, "send", func(p *sim.Proc) {
				for seq := 0; seq < perSender; seq++ {
					for d := 0; d < n; d++ {
						if d == src {
							continue
						}
						r.Send(p, d, 5, []float64{float64(seq)})
					}
				}
			})
		}
		if err := eng.Run(); err != nil {
			return false
		}
		for dst := 0; dst < n; dst++ {
			if len(received[dst]) != perSender*(n-1) {
				return false
			}
			// FIFO per source.
			last := map[int]int{}
			for _, m := range received[dst] {
				if prev, ok := last[m.src]; ok && m.seq != prev+1 {
					return false
				}
				last[m.src] = m.seq
			}
			for _, fin := range last {
				if fin != perSender-1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

func TestCollectivesAtManySizes(t *testing.T) {
	// Barrier + allreduce at awkward rank counts (non-powers of two).
	for _, n := range []int{1, 2, 3, 6, 9, 13, 17} {
		eng := sim.NewEngine()
		w := testWorld(eng, n)
		ok := 0
		for i := 0; i < n; i++ {
			i := i
			r := w.Rank(i)
			eng.Spawn("r", func(p *sim.Proc) {
				r.Barrier(p)
				got := r.Allreduce(p, []float64{1}, Sum)
				if len(got) == 1 && got[0] == float64(n) {
					ok++
				}
				r.Barrier(p)
			})
		}
		if err := eng.Run(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if ok != n {
			t.Errorf("n=%d: %d ranks saw the right sum", n, ok)
		}
		eng.Close()
	}
}
