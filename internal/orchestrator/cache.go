package orchestrator

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"roadrunner/internal/experiments"
	"roadrunner/internal/params"
	"roadrunner/internal/report"
)

// Cache is a content-addressed artifact store on the filesystem. The key
// for an experiment is a digest over its ID, the fingerprint of every
// calibrated model input (params.Fingerprint), and a digest of the
// running executable — so editing a paper constant or rebuilding with
// changed model code invalidates stored artifacts, while re-runs and
// sweeps with an unchanged model skip straight to the stored artifact.
//
// Artifacts are stored as JSON under dir/<k0k1>/<key>.json, written via
// temp file + rename so concurrent workers and interrupted runs never
// leave a torn entry. A corrupt or unreadable entry is treated as a miss
// and overwritten by the recompute.
type Cache struct {
	dir          string
	hits, misses atomic.Int64
}

// OpenCache opens (creating if needed) a cache rooted at dir.
func OpenCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache root.
func (c *Cache) Dir() string { return c.dir }

// Key returns the content address for an experiment's artifact under the
// current model inputs and code. Artifacts are functions of the params
// fingerprint AND the model code, so the key also folds in a digest of
// the running executable: rebuilding after any code change invalidates
// the persistent cache, while re-runs of the same binary hit.
func (c *Cache) Key(experimentID string) string {
	h := sha256.New()
	h.Write([]byte("roadrunner-artifact-v1\n"))
	h.Write([]byte(experimentID))
	h.Write([]byte{'\n'})
	h.Write([]byte(params.Fingerprint()))
	h.Write([]byte{'\n'})
	h.Write([]byte(buildDigest()))
	return hex.EncodeToString(h.Sum(nil))
}

var (
	buildDigestOnce sync.Once
	buildDigestHex  string
)

// buildDigest hashes the running executable once per process. If the
// binary cannot be read (unusual: deleted after exec, exotic platform),
// it degrades to the PID-independent constant "unknown" — correctness
// still holds within one build because the params fingerprint and IDs
// still key the entry, but staleness across rebuilds is then possible;
// callers who need a guarantee can simply not reuse the cache dir.
func buildDigest() string {
	buildDigestOnce.Do(func() {
		buildDigestHex = "unknown"
		exe, err := os.Executable()
		if err != nil {
			return
		}
		f, err := os.Open(exe)
		if err != nil {
			return
		}
		defer f.Close()
		h := sha256.New()
		if _, err := io.Copy(h, f); err != nil {
			return
		}
		buildDigestHex = hex.EncodeToString(h.Sum(nil))
	})
	return buildDigestHex
}

// RawKey returns the content address for an arbitrary service payload
// under the current model inputs and code: a digest over the caller's
// namespace, the payload bytes, params.Fingerprint and the build
// digest. The serving layer keys its job artifacts this way — same
// request bytes, same calibrated inputs, same binary, same artifact —
// so a cache entry can never outlive the model it was computed from.
func (c *Cache) RawKey(namespace string, payload []byte) string {
	h := sha256.New()
	h.Write([]byte("roadrunner-raw-v1\n"))
	h.Write([]byte(namespace))
	h.Write([]byte{'\n'})
	h.Write(payload)
	h.Write([]byte{'\n'})
	h.Write([]byte(params.Fingerprint()))
	h.Write([]byte{'\n'})
	h.Write([]byte(buildDigest()))
	return hex.EncodeToString(h.Sum(nil))
}

// path maps a key to its file, fanned out over 256 subdirectories.
func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key[:2], key+".json")
}

// rawPath maps a raw-entry key to its file. Raw entries use a distinct
// extension so they can never collide with experiment artifacts.
func (c *Cache) rawPath(key string) string {
	return filepath.Join(c.dir, key[:2], key+".raw")
}

// GetRaw loads the bytes stored under key, reporting whether the entry
// was present.
func (c *Cache) GetRaw(key string) ([]byte, bool) {
	data, err := os.ReadFile(c.rawPath(key))
	if err != nil {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return data, true
}

// PutRaw stores data under key atomically.
func (c *Cache) PutRaw(key string, data []byte) error {
	final := c.rawPath(key)
	if err := os.MkdirAll(filepath.Dir(final), 0o755); err != nil {
		return err
	}
	if err := report.WriteFileAtomic(final, data); err != nil {
		return fmt.Errorf("orchestrator: cache put raw %s: %w", key[:12], err)
	}
	return nil
}

// Get loads the artifact stored under key, reporting whether it was
// present and intact.
func (c *Cache) Get(key string) (*experiments.Artifact, bool) {
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		c.misses.Add(1)
		return nil, false
	}
	var art experiments.Artifact
	if err := json.Unmarshal(data, &art); err != nil {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return &art, true
}

// Put stores art under key atomically.
func (c *Cache) Put(key string, art *experiments.Artifact) error {
	data, err := json.Marshal(art)
	if err != nil {
		return err
	}
	final := c.path(key)
	if err := os.MkdirAll(filepath.Dir(final), 0o755); err != nil {
		return err
	}
	if err := report.WriteFileAtomic(final, data); err != nil {
		return fmt.Errorf("orchestrator: cache put %s: %w", key[:12], err)
	}
	return nil
}

// Stats reports cache probe counters for this process.
func (c *Cache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}
