// Package orchestrator runs the registered experiment suite as a parallel
// sweep: a GOMAXPROCS-sized worker pool executes experiments concurrently,
// one deterministic DES engine per experiment, with context cancellation,
// per-experiment timeouts, a content-addressed artifact cache keyed by the
// model-input fingerprint, and streaming structured results.
//
// The paper's evaluation is a set of independent tables and figures, so
// the suite is embarrassingly parallel; every experiment builds its own
// models and engine, shares no mutable state, and produces an artifact
// that is a pure function of the calibrated inputs in internal/params.
// That purity is what makes both the parallelism and the cache sound: a
// parallel run is byte-identical to a serial run, and a cache hit is
// byte-identical to a recompute.
package orchestrator

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"roadrunner/internal/experiments"
)

// Options configures a suite run. The zero value runs every worker the
// machine has, with no timeout, no cache and no streaming.
type Options struct {
	// Workers is the pool size; <= 0 means GOMAXPROCS.
	Workers int
	// Timeout bounds each experiment's execution; 0 means none. A timed
	// out experiment's goroutine is abandoned (the DES engine offers no
	// preemption point) and its result carries the timeout error.
	Timeout time.Duration
	// Cache, when non-nil, short-circuits experiments whose artifact for
	// the current model-input fingerprint is already stored, and stores
	// freshly computed artifacts.
	Cache *Cache
	// OnResult, when non-nil, is invoked once per experiment as results
	// complete (completion order, not suite order). Calls are serialized;
	// the callback must not block for long or it stalls the pool.
	OnResult func(*Result)
}

// Result is the outcome of one experiment in a suite run.
type Result struct {
	ID       string
	Title    string
	PaperRef string
	// Artifact is the experiment's output; nil if Err is set.
	Artifact *experiments.Artifact
	// Err is set when the experiment did not produce an artifact: it
	// panicked, timed out, or the run was cancelled before it started.
	// Check failures are not errors here; see Artifact.Checks.
	Err error
	// CacheHit reports that Artifact was loaded rather than computed.
	CacheHit bool
	// CacheErr reports a failure to store the freshly computed Artifact
	// (full disk, permissions). The artifact itself is good; this is an
	// infrastructure warning, never a suite failure.
	CacheErr error
	// Elapsed is the wall-clock cost of producing (or loading) Artifact.
	Elapsed time.Duration
}

// Run executes the given experiments through the worker pool and returns
// their results in input order — the deterministic order every consumer
// (CLI, tests, CI) sees regardless of scheduling. The returned error is
// non-nil only when ctx was cancelled; per-experiment failures are
// reported on the individual results.
func Run(ctx context.Context, exps []experiments.Experiment, opts Options) ([]*Result, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(exps) && len(exps) > 0 {
		workers = len(exps)
	}

	results := make([]*Result, len(exps))
	jobs := make(chan int)
	var emit sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				r := runOne(ctx, exps[i], opts)
				results[i] = r
				if opts.OnResult != nil {
					emit.Lock()
					opts.OnResult(r)
					emit.Unlock()
				}
			}
		}()
	}
	for i := range exps {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results, ctx.Err()
}

// RunAll runs the full registered suite.
func RunAll(ctx context.Context, opts Options) ([]*Result, error) {
	return Run(ctx, experiments.All(), opts)
}

// runOne produces the result for a single experiment: cancellation check,
// cache probe, bounded execution, cache fill.
func runOne(ctx context.Context, e experiments.Experiment, opts Options) *Result {
	r := &Result{ID: e.ID, Title: e.Title, PaperRef: e.PaperRef}
	start := time.Now()
	defer func() { r.Elapsed = time.Since(start) }()

	if err := ctx.Err(); err != nil {
		r.Err = err
		return r
	}
	var key string
	if opts.Cache != nil {
		key = opts.Cache.Key(e.ID)
		if art, ok := opts.Cache.Get(key); ok {
			r.Artifact, r.CacheHit = art, true
			return r
		}
	}
	art, err := execute(ctx, e, opts.Timeout)
	if err != nil {
		r.Err = err
		return r
	}
	r.Artifact = art
	if opts.Cache != nil {
		// A failed store must not fail the run; the artifact itself is
		// good. Surface the problem as a warning on the result.
		r.CacheErr = opts.Cache.Put(key, art)
	}
	return r
}

// execute runs e.Run in its own goroutine so the caller can enforce the
// timeout and cancellation. Experiments cannot be preempted mid-run (the
// DES engine runs to completion), so on timeout or cancel the goroutine
// is abandoned; it finishes into a buffered channel and is collected.
func execute(ctx context.Context, e experiments.Experiment, timeout time.Duration) (*experiments.Artifact, error) {
	type outcome struct {
		art *experiments.Artifact
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		defer func() {
			if rec := recover(); rec != nil {
				done <- outcome{err: fmt.Errorf("orchestrator: experiment %s panicked: %v", e.ID, rec)}
			}
		}()
		done <- outcome{art: e.Run()}
	}()

	var expired <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		expired = t.C
	}
	select {
	case o := <-done:
		return o.art, o.err
	case <-expired:
		return nil, fmt.Errorf("orchestrator: experiment %s exceeded %v", e.ID, timeout)
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Failed returns the results that did not produce a passing artifact:
// run errors and check failures both count.
func Failed(results []*Result) []*Result {
	var out []*Result
	for _, r := range results {
		if r.Err != nil || r.Artifact == nil || !r.Artifact.Checks.AllOK() {
			out = append(out, r)
		}
	}
	return out
}
