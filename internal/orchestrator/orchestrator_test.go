package orchestrator

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"roadrunner/internal/experiments"
	"roadrunner/internal/params"
	"roadrunner/internal/report"
)

// renderAll renders every artifact in suite order; byte-identical output
// is the determinism contract between serial and parallel runs.
func renderAll(t *testing.T, results []*Result) string {
	t.Helper()
	var b strings.Builder
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.ID, r.Err)
		}
		b.WriteString(r.Artifact.String())
		b.WriteByte('\n')
	}
	return b.String()
}

func TestParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite")
	}
	// The whole registry, Expensive experiments included: the parallel
	// DES path spreads the congestion sweep's independent runs across
	// cores, so the double run is affordable everywhere (-pdes=off on
	// the CLIs, or SetParallel(1), still forces the serial engine).
	exps := experiments.All()
	ctx := context.Background()
	serial, err := Run(ctx, exps, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(ctx, exps, Options{Workers: runtime.GOMAXPROCS(0)})
	if err != nil {
		t.Fatal(err)
	}
	a, b := renderAll(t, serial), renderAll(t, parallel)
	if a != b {
		t.Fatal("parallel suite output differs from serial")
	}
	if len(serial) != len(exps) {
		t.Fatalf("got %d results, want %d", len(serial), len(exps))
	}
}

func TestResultsInSuiteOrder(t *testing.T) {
	exps := experiments.All()[:4]
	results, err := Run(context.Background(), exps, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.ID != exps[i].ID {
			t.Errorf("result %d = %s, want %s", i, r.ID, exps[i].ID)
		}
	}
}

func TestCacheHitSkipsRecomputeAndMatches(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	exps := experiments.All()[:3]
	ctx := context.Background()

	cold, err := Run(ctx, exps, Options{Workers: 2, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range cold {
		if r.CacheHit {
			t.Errorf("%s: unexpected cache hit on cold run", r.ID)
		}
	}
	hits, misses := cache.Stats()
	if hits != 0 || misses != int64(len(exps)) {
		t.Errorf("cold stats = %d hits / %d misses", hits, misses)
	}

	warm, err := Run(ctx, exps, Options{Workers: 2, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range warm {
		if !r.CacheHit {
			t.Errorf("%s: expected cache hit on warm run", r.ID)
		}
	}
	if renderAll(t, cold) != renderAll(t, warm) {
		t.Fatal("cached artifacts render differently from computed ones")
	}
}

func TestCacheCorruptEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	e := experiments.All()[0]
	key := cache.Key(e.ID)
	if err := cache.Put(key, e.Run()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key[:2], key+".json")
	if err := os.WriteFile(path, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := cache.Get(key); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	results, err := Run(context.Background(), experiments.All()[:1],
		Options{Workers: 1, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil || results[0].CacheHit {
		t.Fatalf("recompute after corruption: err=%v hit=%v", results[0].Err, results[0].CacheHit)
	}
}

func TestCacheStoreFailureIsWarningNotError(t *testing.T) {
	dir := t.TempDir()
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	e := experiments.All()[0]
	// Occupy the shard directory path with a plain file so Put's MkdirAll
	// fails even when running as root (permission bits would not).
	key := cache.Key(e.ID)
	if err := os.WriteFile(filepath.Join(dir, key[:2]), []byte("in the way"), 0o644); err != nil {
		t.Fatal(err)
	}
	results, err := Run(context.Background(), []experiments.Experiment{e},
		Options{Workers: 1, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	r := results[0]
	if r.Err != nil {
		t.Fatalf("store failure escalated to Err: %v", r.Err)
	}
	if r.Artifact == nil || !r.Artifact.Checks.AllOK() {
		t.Fatal("artifact lost on store failure")
	}
	if r.CacheErr == nil {
		t.Fatal("store failure not surfaced as CacheErr")
	}
	if len(Failed(results)) != 0 {
		t.Error("cache warning counted as suite failure")
	}
	if rec := RecordFor(r); rec.Status != "ok" || rec.CacheError == "" {
		t.Errorf("stream record = %+v", rec)
	}
}

func TestKeyIncludesBuildDigest(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if buildDigest() == "unknown" {
		t.Skip("executable not hashable here")
	}
	// The key must differ from a params-only digest: rebuilding changed
	// model code yields a different executable and must miss.
	h := sha256.New()
	h.Write([]byte("roadrunner-artifact-v1\ntable1\n"))
	h.Write([]byte(params.Fingerprint()))
	if cache.Key("table1") == hex.EncodeToString(h.Sum(nil)) {
		t.Fatal("cache key ignores the build digest")
	}
}

func TestKeyDependsOnExperimentID(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if cache.Key("table1") == cache.Key("table2") {
		t.Fatal("distinct experiments share a cache key")
	}
	if cache.Key("table1") != cache.Key("table1") {
		t.Fatal("cache key is not stable")
	}
}

func TestCancellationMidSuite(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	exps := experiments.All()
	var completed int
	results, err := Run(ctx, exps, Options{
		Workers: 1,
		OnResult: func(r *Result) {
			completed++
			if completed == 2 {
				cancel() // cancel while the suite is mid-flight
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	var ok, cancelled int
	for _, r := range results {
		switch {
		case r.Err == nil:
			ok++
		case errors.Is(r.Err, context.Canceled):
			cancelled++
		default:
			t.Errorf("%s: unexpected error %v", r.ID, r.Err)
		}
	}
	if ok == 0 || cancelled == 0 {
		t.Fatalf("ok=%d cancelled=%d: want some of both", ok, cancelled)
	}
	if ok+cancelled != len(exps) {
		t.Fatalf("accounted for %d of %d experiments", ok+cancelled, len(exps))
	}
}

func TestPerExperimentTimeout(t *testing.T) {
	slow := experiments.Experiment{
		ID: "slow", Title: "never finishes", PaperRef: "test",
		Run: func() *experiments.Artifact {
			time.Sleep(5 * time.Second)
			return &experiments.Artifact{ID: "slow"}
		},
	}
	results, err := Run(context.Background(), []experiments.Experiment{slow},
		Options{Workers: 1, Timeout: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err == nil || !strings.Contains(results[0].Err.Error(), "exceeded") {
		t.Fatalf("err = %v, want timeout", results[0].Err)
	}
}

func TestPanickingExperimentIsIsolated(t *testing.T) {
	bad := experiments.Experiment{
		ID: "bad", Title: "panics", PaperRef: "test",
		Run: func() *experiments.Artifact { panic("boom") },
	}
	good := experiments.All()[0]
	results, err := Run(context.Background(),
		[]experiments.Experiment{bad, good}, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err == nil || !strings.Contains(results[0].Err.Error(), "panicked") {
		t.Fatalf("bad: err = %v, want panic error", results[0].Err)
	}
	if results[1].Err != nil {
		t.Fatalf("good experiment poisoned by neighbour: %v", results[1].Err)
	}
	if len(Failed(results)) != 1 {
		t.Errorf("Failed = %v", Failed(results))
	}
}

func TestStreamerEmitsJSONLAndCSV(t *testing.T) {
	var buf bytes.Buffer
	csvDir := t.TempDir()
	s := NewStreamer(&buf, csvDir)
	exps := experiments.All()[:2]
	results, err := Run(context.Background(), exps,
		Options{Workers: 2, OnResult: s.OnResult})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(exps) {
		t.Fatalf("%d JSONL lines, want %d", len(lines), len(exps))
	}
	seen := map[string]bool{}
	for _, line := range lines {
		var rec StreamRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		if rec.Status != "ok" {
			t.Errorf("%s: status %s (%s)", rec.ID, rec.Status, rec.Error)
		}
		seen[rec.ID] = true
	}
	nCSV := 0
	entries, err := os.ReadDir(csvDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		if strings.HasSuffix(ent.Name(), ".csv") {
			nCSV++
		}
	}
	wantCSV := 1 // suite-summary.csv
	for _, r := range results {
		if !seen[r.ID] {
			t.Errorf("no JSONL record for %s", r.ID)
		}
		wantCSV += len(r.Artifact.Tables) + len(r.Artifact.Figures)
	}
	if nCSV != wantCSV {
		t.Errorf("%d CSV files, want %d", nCSV, wantCSV)
	}

	// The summary carries one row per experiment with the wall-clock
	// duration and cache-hit flag, sorted by ID.
	sum, err := os.ReadFile(filepath.Join(csvDir, "suite-summary.csv"))
	if err != nil {
		t.Fatal(err)
	}
	sumLines := strings.Split(strings.TrimSpace(string(sum)), "\n")
	if len(sumLines) != len(exps)+1 {
		t.Fatalf("summary rows = %d, want %d + header:\n%s", len(sumLines)-1, len(exps), sum)
	}
	if !strings.Contains(sumLines[0], "elapsed_ms") || !strings.Contains(sumLines[0], "cache_hit") {
		t.Errorf("summary header missing duration/cache columns: %s", sumLines[0])
	}
	wantIDs := []string{exps[0].ID, exps[1].ID}
	sort.Strings(wantIDs)
	for i, id := range wantIDs {
		fields := strings.Split(sumLines[i+1], ",")
		if fields[0] != id {
			t.Errorf("summary row %d = %s, want %s (sorted)", i, fields[0], id)
		}
		if fields[2] != "false" {
			t.Errorf("%s: cache_hit = %q, want false", id, fields[2])
		}
		if ms, err := strconv.ParseFloat(fields[3], 64); err != nil || ms < 0 {
			t.Errorf("%s: elapsed_ms = %q", id, fields[3])
		}
	}
}

func TestStreamerSummaryRecordsCacheHits(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	exps := experiments.All()[:1]
	if _, err := Run(context.Background(), exps, Options{Workers: 1, Cache: cache}); err != nil {
		t.Fatal(err)
	}
	csvDir := t.TempDir()
	s := NewStreamer(nil, csvDir)
	if _, err := Run(context.Background(), exps,
		Options{Workers: 1, Cache: cache, OnResult: s.OnResult}); err != nil {
		t.Fatal(err)
	}
	sum, err := os.ReadFile(filepath.Join(csvDir, "suite-summary.csv"))
	if err != nil {
		t.Fatal(err)
	}
	rows := strings.Split(strings.TrimSpace(string(sum)), "\n")
	if len(rows) != 2 {
		t.Fatalf("summary:\n%s", sum)
	}
	if fields := strings.Split(rows[1], ","); fields[2] != "true" {
		t.Errorf("cache_hit = %q, want true", fields[2])
	}
}

func TestJSONLEmitterConcurrentLinesIntact(t *testing.T) {
	var buf bytes.Buffer
	em := report.NewJSONLEmitter(&buf)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				if err := em.Emit(map[string]int{"g": g, "i": i}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 400 {
		t.Fatalf("%d lines, want 400", len(lines))
	}
	for _, line := range lines {
		var m map[string]int
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("interleaved line %q", line)
		}
	}
}
