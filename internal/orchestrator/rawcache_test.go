package orchestrator

import (
	"bytes"
	"testing"
)

// TestRawCacheRoundTrip covers the raw-bytes cache surface the serving
// layer rides on: PutRaw/GetRaw round-trip, namespace and payload both
// fold into RawKey, and raw entries never collide with JSON artifacts.
func TestRawCacheRoundTrip(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	payload := []byte(`{"trace":"..."}`)
	key := c.RawKey("serve/replay", payload)

	if _, ok := c.GetRaw(key); ok {
		t.Fatal("empty cache reports a hit")
	}
	want := []byte("line1\nline2\n")
	if err := c.PutRaw(key, want); err != nil {
		t.Fatalf("put: %v", err)
	}
	got, ok := c.GetRaw(key)
	if !ok || !bytes.Equal(got, want) {
		t.Fatalf("round-trip: ok=%v got %q want %q", ok, got, want)
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats hits=%d misses=%d, want 1/1", hits, misses)
	}

	if k2 := c.RawKey("serve/optimize", payload); k2 == key {
		t.Error("namespace does not change the raw key")
	}
	if k3 := c.RawKey("serve/replay", []byte("other")); k3 == key {
		t.Error("payload does not change the raw key")
	}
	// A raw entry and an experiment artifact with a textually identical
	// key live in different files.
	if _, ok := c.Get(key); ok {
		t.Error("raw entry is visible through the artifact Get path")
	}
}
