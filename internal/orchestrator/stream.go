package orchestrator

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"roadrunner/internal/report"
)

// StreamRecord is the JSON-lines schema emitted per completed experiment.
type StreamRecord struct {
	ID           string   `json:"id"`
	Title        string   `json:"title"`
	PaperRef     string   `json:"paper_ref,omitempty"`
	Status       string   `json:"status"` // "ok", "check-fail" or "error"
	Error        string   `json:"error,omitempty"`
	CacheHit     bool     `json:"cache_hit"`
	CacheError   string   `json:"cache_error,omitempty"` // store failed; artifact still good
	ElapsedMS    float64  `json:"elapsed_ms"`
	Checks       int      `json:"checks,omitempty"`
	FailedChecks []string `json:"failed_checks,omitempty"`
	Tables       int      `json:"tables,omitempty"`
	Figures      int      `json:"figures,omitempty"`
}

// RecordFor flattens a result into its stream form.
func RecordFor(r *Result) StreamRecord {
	rec := StreamRecord{
		ID:        r.ID,
		Title:     r.Title,
		PaperRef:  r.PaperRef,
		CacheHit:  r.CacheHit,
		ElapsedMS: float64(r.Elapsed.Microseconds()) / 1000,
	}
	if r.CacheErr != nil {
		rec.CacheError = r.CacheErr.Error()
	}
	switch {
	case r.Err != nil:
		rec.Status = "error"
		rec.Error = r.Err.Error()
	case r.Artifact == nil:
		rec.Status = "error"
		rec.Error = "no artifact"
	default:
		rec.Status = "ok"
		if !r.Artifact.Checks.AllOK() {
			rec.Status = "check-fail"
			for _, c := range r.Artifact.Checks.Failures() {
				rec.FailedChecks = append(rec.FailedChecks, c.Name)
			}
		}
		rec.Checks = len(r.Artifact.Checks.Items)
		rec.Tables = len(r.Artifact.Tables)
		rec.Figures = len(r.Artifact.Figures)
	}
	return rec
}

// Streamer adapts the report emitters into an Options.OnResult callback:
// each completed experiment becomes one JSONL record and, when a CSV
// directory is configured, one CSV file per table and figure plus a
// running suite-summary.csv with one row per experiment (status, cache
// hit, wall-clock duration). Emit errors are collected rather than
// interrupting the pool; read them with Err after the run.
type Streamer struct {
	jsonl *report.JSONLEmitter
	csv   *report.CSVDir

	mu      sync.Mutex
	errs    []error
	summary []StreamRecord
}

// NewStreamer builds a streamer. Either destination may be nil/empty:
// jsonlW == nil disables the JSONL stream, csvDir == "" disables CSV.
func NewStreamer(jsonlW io.Writer, csvDir string) *Streamer {
	s := &Streamer{}
	if jsonlW != nil {
		s.jsonl = report.NewJSONLEmitter(jsonlW)
	}
	if csvDir != "" {
		s.csv = report.NewCSVDir(csvDir)
	}
	return s
}

// OnResult is the Options.OnResult hook.
func (s *Streamer) OnResult(r *Result) {
	rec := RecordFor(r)
	if s.jsonl != nil {
		if err := s.jsonl.Emit(rec); err != nil {
			s.record(fmt.Errorf("jsonl %s: %w", r.ID, err))
		}
	}
	if s.csv == nil {
		return
	}
	if r.Artifact != nil {
		for i, t := range r.Artifact.Tables {
			if err := s.csv.WriteTable(fmt.Sprintf("%s-table%d", r.ID, i), t); err != nil {
				s.record(err)
			}
		}
		for i, f := range r.Artifact.Figures {
			if err := s.csv.WriteFigure(fmt.Sprintf("%s-fig%d", r.ID, i), f); err != nil {
				s.record(err)
			}
		}
	}
	// The summary is rewritten atomically after every result (the suite
	// is small), so a cancelled run still leaves a complete file covering
	// everything that finished. The lock is held across the write: every
	// call targets the same file name, so unsynchronized writers could
	// otherwise land a stale snapshot last and lose rows.
	s.mu.Lock()
	defer s.mu.Unlock()
	s.summary = append(s.summary, rec)
	rows := make([]StreamRecord, len(s.summary))
	copy(rows, s.summary)
	sort.Slice(rows, func(i, j int) bool { return rows[i].ID < rows[j].ID })
	t := report.NewTable("", "id", "status", "cache_hit", "elapsed_ms",
		"checks", "failed_checks", "error")
	for _, row := range rows {
		t.AddRow(row.ID, row.Status, fmt.Sprintf("%t", row.CacheHit),
			fmt.Sprintf("%.3f", row.ElapsedMS), row.Checks,
			strings.Join(row.FailedChecks, ";"), row.Error)
	}
	if err := s.csv.WriteTable("suite-summary", t); err != nil {
		s.errs = append(s.errs, err)
	}
}

func (s *Streamer) record(err error) {
	s.mu.Lock()
	s.errs = append(s.errs, err)
	s.mu.Unlock()
}

// Err returns the first emit error, or nil.
func (s *Streamer) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.errs) == 0 {
		return nil
	}
	return fmt.Errorf("orchestrator: %d emit error(s), first: %w", len(s.errs), s.errs[0])
}
