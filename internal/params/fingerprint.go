package params

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"
)

// Fingerprint returns a stable hex digest over every calibrated input in
// this package. Experiment artifacts are pure functions of these inputs
// plus code structure, so the digest is the content-address component the
// orchestrator's artifact cache keys on: change any paper constant and
// every cached artifact is invalidated automatically.
func Fingerprint() string {
	fingerprintOnce.Do(func() {
		var b strings.Builder
		for _, kv := range inventory() {
			fmt.Fprintf(&b, "%s=%v\n", kv.name, kv.value)
		}
		sum := sha256.Sum256([]byte(b.String()))
		fingerprint = hex.EncodeToString(sum[:])
	})
	return fingerprint
}

var (
	fingerprintOnce sync.Once
	fingerprint     string
)

type namedValue struct {
	name  string
	value any
}

// inventory lists every constant and variable above, in declaration
// order. Constants cannot be enumerated by reflection, so the list is
// explicit; TestFingerprintInventoryComplete cross-checks it against the
// package's declarations so additions cannot be silently dropped.
func inventory() []namedValue {
	return []namedValue{
		{"OpteronClock", float64(OpteronClock)},
		{"CellClock", float64(CellClock)},
		{"OpteronDPFlopsPerCycle", OpteronDPFlopsPerCycle},
		{"OpteronSPFlopsPerCycle", OpteronSPFlopsPerCycle},
		{"PPEDPFlopsPerCycle", PPEDPFlopsPerCycle},
		{"SPEDPFlopsPerCycle", SPEDPFlopsPerCycle},
		{"SPESPFlopsPerCycle", SPESPFlopsPerCycle},
		{"CellBESPEAggregateSP", float64(CellBESPEAggregateSP)},
		{"CellBESPEAggregateDP", float64(CellBESPEAggregateDP)},
		{"LocalStoreSize", int64(LocalStoreSize)},
		{"LocalStoreLoadBytes", LocalStoreLoadBytes},
		{"LocalStoreLoadLatencyCycles", LocalStoreLoadLatencyCycles},
		{"CellMemBandwidth", float64(CellMemBandwidth)},
		{"OpteronMemBandwidth", float64(OpteronMemBandwidth)},
		{"EIBBytesPerCycle", EIBBytesPerCycle},
		{"MemPerOpteronCore", int64(MemPerOpteronCore)},
		{"MemPerCell", int64(MemPerCell)},
		{"OpteronL1D", int64(OpteronL1D)},
		{"OpteronL1I", int64(OpteronL1I)},
		{"OpteronL2", int64(OpteronL2)},
		{"PPEL1D", int64(PPEL1D)},
		{"PPEL1I", int64(PPEL1I)},
		{"PPEL2", int64(PPEL2)},
		{"OpteronStreamTriad", float64(OpteronStreamTriad)},
		{"PPEStreamTriad", float64(PPEStreamTriad)},
		{"SPEStreamTriad", float64(SPEStreamTriad)},
		{"OpteronMemLatency", int64(OpteronMemLatency)},
		{"PPEMemLatency", int64(PPEMemLatency)},
		{"SPELocalStoreLat", int64(SPELocalStoreLat)},
		{"PCIeBandwidthPeak", float64(PCIeBandwidthPeak)},
		{"PCIeAchievableBandwidth", float64(PCIeAchievableBandwidth)},
		{"HTBandwidth", float64(HTBandwidth)},
		{"IBLinkBandwidth", float64(IBLinkBandwidth)},
		{"PCIeMinLatency", int64(PCIeMinLatency)},
		{"DaCSLatency", int64(DaCSLatency)},
		{"MPIIBLatency", int64(MPIIBLatency)},
		{"LocalSegment", int64(LocalSegment)},
		{"CMLIntraSocketLatency", int64(CMLIntraSocketLatency)},
		{"CMLIntraSocketBandwidth", float64(CMLIntraSocketBandwidth)},
		{"DaCSLargeMessageBandwidth", float64(DaCSLargeMessageBandwidth)},
		{"DaCSChunkSize", int64(DaCSChunkSize)},
		{"DaCSPerChunkOverhead", int64(DaCSPerChunkOverhead)},
		{"MPISoftwareOverhead", int64(MPISoftwareOverhead)},
		{"SwitchHopLatency", int64(SwitchHopLatency)},
		{"Fig10HarnessOverhead", int64(Fig10HarnessOverhead)},
		{"IBNearCoreBandwidth", float64(IBNearCoreBandwidth)},
		{"IBFarCoreBandwidth", float64(IBFarCoreBandwidth)},
		{"IBDefaultScatterBandwidth", float64(IBDefaultScatterBandwidth)},
		{"IBPinnedBandwidth", float64(IBPinnedBandwidth)},
		{"IBEagerThreshold", int64(IBEagerThreshold)},
		{"DaCSEndpointShareFraction", DaCSEndpointShareFraction},
		{"IBEndpointShareFraction", IBEndpointShareFraction},
		{"NumCUs", NumCUs},
		{"NodesPerCU", NodesPerCU},
		{"IONodesPerCU", IONodesPerCU},
		{"CrossbarPorts", CrossbarPorts},
		{"SwitchLowerXbars", SwitchLowerXbars},
		{"SwitchUpperXbars", SwitchUpperXbars},
		{"InterCUSwitches", InterCUSwitches},
		{"InterCULevelsXbars", InterCULevelsXbars},
		{"UplinksPerCUSwitch", UplinksPerCUSwitch},
		{"FirstSideCUs", FirstSideCUs},
		{"LastSideCUs", LastSideCUs},
		{"MaxCUs", MaxCUs},
		{"SweepFlopsPerCellAngle", SweepFlopsPerCellAngle},
		{"SweepOpteronDCUpdate", int64(SweepOpteronDCUpdate)},
		{"SweepOpteronQCUpdate", int64(SweepOpteronQCUpdate)},
		{"SweepTigertonUpdate", int64(SweepTigertonUpdate)},
		{"HostSocketEfficiencyDual", HostSocketEfficiencyDual},
		{"HostSocketEfficiencyQuad", HostSocketEfficiencyQuad},
		{"SweepSPEMemFactor", SweepSPEMemFactor},
		{"SweepSPESocketEff", SweepSPESocketEff},
		{"SweepSPEScaleEff", SweepSPEScaleEff},
		{"SweepSpillFactor", SweepSpillFactor},
		{"SweepResidentBytesPerCell", SweepResidentBytesPerCell},
		{"SweepLocalStoreBudget", int64(SweepLocalStoreBudget)},
		{"PencilDispatchOverhead", PencilDispatchOverhead},
		{"SweepCMLOverlap", SweepCMLOverlap},
		{"PowerPerCell", float64(PowerPerCell)},
		{"PowerPerOpteronChip", float64(PowerPerOpteronChip)},
		{"PowerPerNodeOther", float64(PowerPerNodeOther)},
		{"PowerPerSwitch", float64(PowerPerSwitch)},
		{"PowerIONode", float64(PowerIONode)},
		{"LinpackEfficiency", LinpackEfficiency},
	}
}
