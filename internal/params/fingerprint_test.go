package params

import (
	"go/ast"
	"go/parser"
	"go/token"
	"regexp"
	"testing"
)

func TestFingerprintStable(t *testing.T) {
	a, b := Fingerprint(), Fingerprint()
	if a != b {
		t.Fatalf("fingerprint not stable: %s vs %s", a, b)
	}
	if !regexp.MustCompile(`^[0-9a-f]{64}$`).MatchString(a) {
		t.Fatalf("fingerprint %q is not a sha256 hex digest", a)
	}
}

// TestFingerprintInventoryComplete parses params.go and asserts every
// exported const and var it declares appears in the fingerprint
// inventory, so a new calibration constant cannot silently escape the
// cache key.
func TestFingerprintInventoryComplete(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "params.go", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	inInventory := map[string]bool{}
	for _, kv := range inventory() {
		if inInventory[kv.name] {
			t.Errorf("inventory lists %s twice", kv.name)
		}
		inInventory[kv.name] = true
	}
	declared := 0
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || (gd.Tok != token.CONST && gd.Tok != token.VAR) {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, name := range vs.Names {
				if !name.IsExported() {
					continue
				}
				declared++
				if !inInventory[name.Name] {
					t.Errorf("params.%s is not in the fingerprint inventory", name.Name)
				}
			}
		}
	}
	if declared == 0 {
		t.Fatal("parsed no declarations from params.go")
	}
	if declared != len(inventory()) {
		t.Errorf("inventory has %d entries, params.go declares %d", len(inventory()), declared)
	}
}
