// Package params collects every measured or vendor-datasheet constant the
// Roadrunner models consume, each annotated with the sentence of the paper
// (Barker et al., SC'08) it came from. Everything else in this repository
// is derived from these inputs plus structure; experiments check the
// derived quantities, not these inputs, so the assumed/reproduced boundary
// stays auditable.
package params

import "roadrunner/internal/units"

// ---------------------------------------------------------------------------
// Clocks and peak rates (paper §II.A, Table II).
// ---------------------------------------------------------------------------

const (
	// OpteronClock: "The Opteron processors are clocked at 1.8 GHz".
	OpteronClock = 1.8 * units.GHz
	// CellClock: "The PowerXCell 8i processors are clocked at 3.2 GHz"
	// (the Cell BE comparison chip runs at the same rate).
	CellClock = 3.2 * units.GHz

	// OpteronDPFlopsPerCycle: "each core able to issue two DP
	// floating-point operations per cycle".
	OpteronDPFlopsPerCycle = 2
	// OpteronSPFlopsPerCycle: Table II lists SP peak at exactly twice DP.
	OpteronSPFlopsPerCycle = 4

	// PPEDPFlopsPerCycle: "It [the PPE] can issue two DP floating-point
	// operations per cycle" -> 6.4 GF/s at 3.2 GHz.
	PPEDPFlopsPerCycle = 2
	// SPEDPFlopsPerCycle: "Each SPE contains a SIMD processing unit that
	// can issue a total of 4 DP floating-point ... operations per cycle".
	SPEDPFlopsPerCycle = 4
	// SPESPFlopsPerCycle: "... or 8 SP floating-point operations per cycle".
	SPESPFlopsPerCycle = 8

	// CellBESPEAggregateSP: "the aggregate SPE peak performance on the
	// Cell BE is 204.8 Gflops/s SP".
	CellBESPEAggregateSP = 204.8 * units.GFlops
	// CellBESPEAggregateDP: "... but only 14.6 Gflops/s DP".
	CellBESPEAggregateDP = 14.6 * units.GFlops
)

// ---------------------------------------------------------------------------
// Memory system (paper §II.A, §IV.B, Table III).
// ---------------------------------------------------------------------------

const (
	// LocalStoreSize: "it [the SPE] can directly address only 256 KB".
	LocalStoreSize = 256 * units.KB
	// LocalStoreLoadBytes and LocalStoreLoadLatencyCycles: "Each SPE
	// dispatches one 128-bit load with a load latency of 6 cycles;
	// pipelined, this gives a maximum bandwidth of 51.2 GB/s."
	LocalStoreLoadBytes         = 16
	LocalStoreLoadLatencyCycles = 6

	// CellMemBandwidth: "providing 25.6GB/s memory bandwidth to each
	// Cell" (both XDR on Cell BE and DDR2-800 on PowerXCell 8i).
	CellMemBandwidth = 25.6 * units.GBPerSec
	// OpteronMemBandwidth: "The Opteron has a maximum bandwidth of
	// 10.7 GB/s per socket to main memory."
	OpteronMemBandwidth = 10.7 * units.GBPerSec

	// EIBBytesPerCycle: "the EIB which runs at 96 bytes/cycle".
	EIBBytesPerCycle = 96

	// Per-processor memory: "Each Opteron core and PowerXCell 8i within
	// the triblade has 4 GB of DDR2 memory."
	MemPerOpteronCore = 4 * units.GB
	MemPerCell        = 4 * units.GB

	// Cache sizes (§II.A).
	OpteronL1D = 64 * units.KB
	OpteronL1I = 64 * units.KB
	OpteronL2  = 2 * units.MB
	PPEL1D     = 32 * units.KB
	PPEL1I     = 32 * units.KB
	PPEL2      = 512 * units.KB
)

// Measured STREAM TRIAD and memtime values (Table III). These calibrate
// the efficiency factors of the memory models; the experiments then verify
// the models emit them back through the full hierarchy computation.
const (
	OpteronStreamTriad = 5.41 * units.GBPerSec
	PPEStreamTriad     = 0.89 * units.GBPerSec
	SPEStreamTriad     = 29.28 * units.GBPerSec
)

var (
	OpteronMemLatency = units.FromNanoseconds(30.5)
	PPEMemLatency     = units.FromNanoseconds(23.4)
	SPELocalStoreLat  = units.FromNanoseconds(9.4)
)

// ---------------------------------------------------------------------------
// Intra-node links (paper §II.A, Fig. 1, §VI.A).
// ---------------------------------------------------------------------------

const (
	// PCIeBandwidthPeak: "The peak bandwidth between each PowerXCell 8i
	// processor and its associated Opteron core is 2GB/s in each
	// direction" (PCIe x8).
	PCIeBandwidthPeak = 2 * units.GBPerSec
	// PCIeAchievableBandwidth: "the achievable peak bandwidth is 1.6GB/s
	// (unidirectional)" measured with a small microbenchmark (§VI.A).
	PCIeAchievableBandwidth = 1.6 * units.GBPerSec
	// HTBandwidth: HyperTransport x16, "HT x16 6.4GB/s" (Fig. 1).
	HTBandwidth = 6.4 * units.GBPerSec
	// IBLinkBandwidth: 4x DDR InfiniBand, "a peak bandwidth of 2GB/s per
	// direction, per port" (§II.B).
	IBLinkBandwidth = 2 * units.GBPerSec
)

var (
	// PCIeMinLatency: "with a minimum latency of 2us" (§VI.A).
	PCIeMinLatency = units.FromMicroseconds(2)
)

// ---------------------------------------------------------------------------
// Software stacks (paper §IV.C, Fig. 6, Fig. 9, §V.C).
// ---------------------------------------------------------------------------

var (
	// DaCSLatency: Fig. 6 — each Cell<->Opteron DaCS/PCIe crossing of a
	// zero-byte message costs 3.19 us with the early software stack.
	DaCSLatency = units.FromMicroseconds(3.19)
	// MPIIBLatency: Fig. 6 — Opteron<->Opteron via MPI over InfiniBand,
	// 2.16 us for a zero-byte ping (one switch crossbar hop included).
	MPIIBLatency = units.FromMicroseconds(2.16)
	// LocalSegment: Fig. 6 — the "Local" handling at each Cell endpoint,
	// 0.12 us.
	LocalSegment = units.FromMicroseconds(0.12)

	// CMLIntraSocketLatency: "Within a socket, CML peak performance has
	// been measured as 0.272us latency for a zero-byte message".
	CMLIntraSocketLatency = units.FromNanoseconds(272)
)

const (
	// CMLIntraSocketBandwidth: "and 22.4GB/s for a large (128KB) message".
	CMLIntraSocketBandwidth = 22.4 * units.GBPerSec

	// DaCSLargeMessageBandwidth: Fig. 9 converges toward IB bandwidth at
	// large sizes; DaCS sustains roughly 0.95 GB/s on the early stack
	// (read from Fig. 9's large-message plateau, consistent with Fig. 7's
	// internode composite rates).
	DaCSLargeMessageBandwidth = 0.95 * units.GBPerSec
	// DaCSSmallMessagePenalty: "at smaller messages in the range 0 to
	// 20KB, DaCS achieves less than half the bandwidth of InfiniBand";
	// modelled as an extra per-chunk software overhead below.
	DaCSChunkSize = 16 * units.KB
)

var (
	// DaCSPerChunkOverhead: software cost per 16 KB pipeline chunk on the
	// early DaCS stack; calibrated so the DaCS curve crosses 50 % of the
	// IB curve near 20 KB as in Fig. 9.
	DaCSPerChunkOverhead = units.FromMicroseconds(12.0)
)

// ---------------------------------------------------------------------------
// Host MPI / InfiniBand protocol (paper §IV.C, Figs. 8 and 10).
// ---------------------------------------------------------------------------

var (
	// MPISoftwareOverhead: per-side Open MPI send/recv processing. Two
	// sides + one crossbar hop (220 ns) + wire must total 2.16 us for the
	// same-crossbar ping of Fig. 6/Fig. 10's first plateau... see ib
	// package for the exact composition.
	MPISoftwareOverhead = units.FromNanoseconds(970)
	// SwitchHopLatency: "Each switch-hop imposes approximately 220ns
	// latency."
	SwitchHopLatency = units.FromNanoseconds(220)

	// Fig10HarnessOverhead is the extra per-ping cost of the Fig. 10
	// latency-map harness relative to the decomposed ping-pong of
	// Fig. 6 (the map's minimum is 2.5 us where the Fig. 6 segment is
	// 2.16 us).
	Fig10HarnessOverhead = units.FromNanoseconds(350)
)

const (
	// IBNearCoreBandwidth: Fig. 8 — "Significantly better bandwidth is
	// obtained when cores 1 and 3 communicate (1,478 MB/s)".
	IBNearCoreBandwidth = 1478 * units.MBPerSec
	// IBFarCoreBandwidth: "... than when cores 0 and 2 communicate
	// (1,087 MB/s)".
	IBFarCoreBandwidth = 1087 * units.MBPerSec
	// IBDefaultScatterBandwidth: "an average bandwidth to the nodes of
	// 980 MB/s under default OpenMPI parameters" (1 MB messages).
	IBDefaultScatterBandwidth = 980 * units.MBPerSec
	// IBPinnedBandwidth: "and 1.6GB/s when memory buffers are pinned".
	IBPinnedBandwidth = 1.6 * units.GBPerSec

	// IBEagerThreshold: Open MPI's default eager/rendezvous switch for
	// openib at the time (12 KB). Messages above this pay a rendezvous
	// round trip.
	IBEagerThreshold = 12 * units.KB
)

// Endpoint-contention model for bidirectional transfers (Fig. 7): the two
// directions share DMA/protocol engines at each endpoint, so bidirectional
// aggregate is measured at 64 % (intranode) and 70 % (internode) of twice
// the unidirectional rate. The shared-engine occupancy fractions below
// yield those ratios through the link model rather than asserting them.
const (
	DaCSEndpointShareFraction = 0.56
	IBEndpointShareFraction   = 0.43
)

// ---------------------------------------------------------------------------
// Fabric structure (paper §II.B-C, Table I, Fig. 2).
// ---------------------------------------------------------------------------

const (
	NumCUs             = 17
	NodesPerCU         = 180
	IONodesPerCU       = 12
	CrossbarPorts      = 24
	SwitchLowerXbars   = 24 // Voltaire ISR 9288: two-level tree inside
	SwitchUpperXbars   = 12
	InterCUSwitches    = 8
	InterCULevelsXbars = 12 // "three levels of 12 crossbars"
	UplinksPerCUSwitch = 12 // "each CU has 12 connections to each of the inter-CU switches"
	FirstSideCUs       = 12 // "Each crossbar on the first level interconnects the first 12 CUs"
	LastSideCUs        = 5  // "and the last level interconnects the last 5 CUs"
	MaxCUs             = 24 // "The overall design allows for up to 24 CUs"
)

// ---------------------------------------------------------------------------
// Sweep3D kernel calibration (paper §V-VI, Table IV, Figs. 12-14).
// ---------------------------------------------------------------------------

// The Sweep3D inner loop performs, per cell and angle, the upwind recursion
// plus flux fixups. The instruction mix below (expressed in SPU execution
// groups) represents one cell-angle update of the SIMD-ized inner loop as
// described in §V.B: angle loop innermost, two angles per SIMD word, six
// angles unrolled. Running this mix through the spu pipeline model yields
// cycles/cell-angle for each chip; host processors use the measured
// per-cell times below (they are inputs — the paper measured them on real
// Opteron/Tigerton silicon we do not model at cycle level).
const (
	// SweepFlopsPerCellAngle: nominal DP flop count of one cell-angle
	// update including fixups; used for rate reporting only.
	SweepFlopsPerCellAngle = 58
)

var (
	// Host per-cell-angle update times, calibrated from the paper's
	// measurements: the 1.8 GHz dual-core Opteron sweeps one cell-angle
	// in ~167 ns (347 MF/s at ~58 flops/update, 9.6% of core peak —
	// Sweep3D's well-documented low single-core efficiency, [19]); the
	// 2.0 GHz quad-core and the 2.93 GHz Tigerton scale with clock and
	// core generation per the Fig. 12 bar ratios.
	SweepOpteronDCUpdate = units.FromNanoseconds(167)
	SweepOpteronQCUpdate = units.FromNanoseconds(135)
	SweepTigertonUpdate  = units.FromNanoseconds(130)
)

const (
	// Host parallel efficiency when all cores of a socket share the
	// memory system (wavefront sweeps are bandwidth-bound).
	HostSocketEfficiencyDual = 0.92
	HostSocketEfficiencyQuad = 0.85

	// SweepSPEMemFactor scales the SPU pipeline-model issue cycles of the
	// sweep inner loop up to the measured per-update wall time of a lone
	// SPE: DMA waits, fixup branches and control flow the issue model
	// does not carry. Calibrated once so a single PowerXCell 8i SPE
	// updates one cell-angle in ~67 ns; the Cell BE inherits the factor,
	// so the CBE/PXC8i ratio (~1.9x, Table IV) comes from the pipeline
	// model alone.
	SweepSPEMemFactor = 7.76

	// SweepSPESocketEff is the per-SPE efficiency when all eight SPEs of
	// a socket sweep concurrently (MIC and EIB contention): Fig. 12's
	// socket bars.
	SweepSPESocketEff = 0.45

	// SweepSPEScaleEff is the milder contention of the at-scale runs
	// (MK=20 blocks overlap DMA better than the socket benchmark's
	// strong-scaled grid): Fig. 13's Cell curves.
	SweepSPEScaleEff = 0.85

	// SweepSpillFactor multiplies SPE update cost when a K block's
	// working set exceeds the local store (Table IV's 50x50 planes
	// stream through main memory; the weak-scaling 5x5 subgrids stay
	// resident).
	SweepSpillFactor = 1.71

	// SweepResidentBytesPerCell is the local-store footprint per cell of
	// a resident block (flux, source, three face arrays and cross
	// sections, double precision).
	SweepResidentBytesPerCell = 96

	// SweepLocalStoreBudget is the local store available for block data
	// after code and buffers.
	SweepLocalStoreBudget = 192 * units.KB

	// PencilDispatchOverhead is the master/worker coordination cost per
	// pencil work unit in the *previous* Cell implementation of [20]
	// (PPE-mediated dispatch and volume DMA setup) — the mechanism
	// behind Table IV's 1.3 s.
	PencilDispatchOverhead = 15.5 // microseconds per pencil dispatch

	// SweepCMLOverlap is the fraction of surface-communication time the
	// measured SPE-centric implementation hides behind block compute
	// (§V.B: the approach "allows balancing and overlapping of the
	// computation of a block ... with the communication of the
	// surfaces"); the remainder is exposed by the early stack's flow
	// control. The best-achievable model hides transfers by pipelining
	// the path segments instead.
	SweepCMLOverlap = 0.25
)

// ---------------------------------------------------------------------------
// Power model (paper §II: "437 Mflops/W on LINPACK", green500 June 2008).
// ---------------------------------------------------------------------------

const (
	// Component power draws (typical board-level, derived from the
	// machine's 2.35 MW LINPACK draw split across the inventory in the
	// proportions of IBM's published blade specs).
	PowerPerCell        = 92 * units.Watt  // QS22 socket share
	PowerPerOpteronChip = 68 * units.Watt  // LS21 socket share (2210 HE, 68W ACP)
	PowerPerNodeOther   = 204 * units.Watt // chassis, HT2100s, HCA, memory, fans
	PowerPerSwitch      = 4.4 * units.Kilowatt
	PowerIONode         = 350 * units.Watt
)

// LinpackEfficiency: 1.026 Pflop/s sustained over 1.3784 Pflop/s peak
// (§I: "achieving 1.026 Pflops/s in May 2008"; Table II: 1.38 Pflop/s).
const LinpackEfficiency = 0.744
