package placement_test

import (
	"sync"
	"testing"

	"roadrunner/internal/cml"
	"roadrunner/internal/fabric"
	"roadrunner/internal/ib"
	"roadrunner/internal/placement"
	"roadrunner/internal/sweep3d"
	"roadrunner/internal/trace"
	"roadrunner/internal/transport"
)

// BenchmarkPlacementOptimize tracks the optimizer's end-to-end cost on
// the captured Sweep3D trace at a small fixed search budget (2x8 greedy
// + 2x8 annealing + 2 baselines = 34 pooled comm-only replays per op),
// as part of the bench-artifact record CI uploads per commit.

var benchOnce = sync.OnceValues(func() (*trace.Trace, error) {
	cfg := sweep3d.Config{I: 5, J: 5, K: 40, MK: 10, Angles: 6}
	_, tr, err := sweep3d.CaptureDES(cfg, 8, 8, cml.CurrentSoftware())
	return tr, err
})

func BenchmarkPlacementOptimize(b *testing.B) {
	tr, err := benchOnce()
	if err != nil {
		b.Fatal(err)
	}
	fab := fabric.New()
	block := make([]transport.Endpoint, tr.Meta.Ranks)
	strided := make([]transport.Endpoint, tr.Meta.Ranks)
	for i := range block {
		block[i] = transport.Endpoint{Node: fabric.FromGlobal(i), Core: 1}
		strided[i] = transport.Endpoint{Node: fabric.FromGlobal(i * 180 % fab.Nodes()), Core: 1}
	}
	cfg := placement.Config{
		Trace: tr,
		Replay: trace.ReplayConfig{
			Fabric:      fab,
			Profile:     ib.OpenMPI(),
			Policy:      transport.Congested(),
			SkipCompute: true,
		},
		Starts: []placement.Start{
			{Name: "block", Places: block},
			{Name: "strided", Places: strided},
		},
		Seed:         1,
		GreedyRounds: 2,
		GreedyBatch:  8,
		AnnealRounds: 2,
		AnnealBatch:  8,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := placement.Optimize(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
