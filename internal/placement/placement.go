// Package placement searches rank→node mappings against replayed
// traces: the batch replay evaluator (trace.Evaluator) is the objective
// function, and the optimizer drives it with greedy pairwise-swap
// refinement followed by batched simulated annealing.
//
// PR 4's trace-replay sweep showed why this is a search problem and not
// a formula: hop counts mispredict placement cost on a real Sweep3D
// schedule (the packed mapping has the fewest hops and the slowest bare
// communication schedule — HCA sharing dominates), and wormhole link
// admission can even beat infinite capacity by keeping flows off a
// shared adapter. The only trustworthy objective is the replayed
// makespan itself, which the pooled evaluator prices at well under the
// cost of a one-shot replay.
//
// The search is deterministic and parallel at once: every candidate
// mapping is generated on the coordinator from a seeded generator
// (each annealing round proposes single moves of the round-start
// incumbent), evaluated by a pool of per-worker evaluators (replay
// results are a pure function of the mapping, so worker scheduling
// cannot leak into the outcome), and Metropolis-accepted serially in
// candidate order against the continuously updated incumbent.
// A run with Workers: 1 returns byte-identical results to a run with
// Workers: N — pinned by TestOptimizeSerialMatchesParallel and by the
// place-optimize experiment inside the orchestrator's own
// serial-vs-parallel contract.
//
// Config.Surrogate arms a second tier: the analytic queueing surrogate
// (internal/surrogate), calibrated against a handful of DES-replayed
// anchors, prices a ScreenFactor-wider candidate pool each round and
// only the cheapest batch-sized shortlist reaches the DES. The round's
// DES budget — and so its wall-clock — matches the pure-DES search
// while the proposal pool widens; every number a Result reports is
// still a DES-replayed makespan. Duplicate mappings inside any batch
// are fingerprinted and priced once, in both tiers.
package placement

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"roadrunner/internal/fabric"
	"roadrunner/internal/surrogate"
	"roadrunner/internal/trace"
	"roadrunner/internal/transport"
	"roadrunner/internal/units"
)

// Start is one named seed mapping; the optimizer begins from the best
// of the starts it is given (typically block/strided/packed).
type Start struct {
	Name   string
	Places []transport.Endpoint
}

// Config parameterizes one optimization run.
type Config struct {
	// Trace is the schedule being placed; Replay carries the fabric,
	// protocol profile, congestion policy and compute handling the
	// objective replays under. Replay.Places is ignored and the
	// observers are forced off in the search loop — the inner loop
	// pays only for the makespan.
	Trace  *trace.Trace
	Replay trace.ReplayConfig
	// Starts are the candidate seed mappings (at least one, each
	// covering every rank). The best of them seeds the search, so the
	// result can never be worse than the best start.
	Starts []Start
	// Seed drives every random choice; equal seeds give equal results.
	Seed int64
	// Workers sizes the evaluator pool (<= 0 means GOMAXPROCS). It has
	// no effect on the result, only on wall-clock.
	Workers int

	// GreedyRounds bounds the pairwise-swap refinement: each round
	// evaluates GreedyBatch random swaps of the incumbent and keeps the
	// best if it improves; GreedyPatience consecutive non-improving
	// rounds end the phase early. Zero values take defaults (6 rounds,
	// 24 swaps, patience 2).
	GreedyRounds   int
	GreedyBatch    int
	GreedyPatience int
	// AnnealRounds and AnnealBatch shape the annealing phase (defaults
	// 6 and 24): each round proposes AnnealBatch single moves (swap or
	// relocation) of the round-start state and Metropolis-accepts them
	// in candidate order — each acceptance updates the incumbent the
	// remaining candidates are judged against — at the round's
	// temperature.
	AnnealRounds int
	AnnealBatch  int
	// InitTempFrac is the initial temperature as a fraction of the
	// seed mapping's makespan (default 0.005); CoolRate the per-round
	// geometric decay (default 0.6).
	InitTempFrac float64
	CoolRate     float64
	// PoolNodes bounds relocation moves: a relocated rank lands on a
	// global node index below PoolNodes (default 4x ranks, clamped to
	// the fabric; swaps are unaffected). Zero takes the default.
	//
	// Moves preserve node capacity: a relocation never leaves more
	// than four ranks (one per Opteron core) on a node, so every
	// mapping the search visits is physically placeable — provided the
	// start mappings are.
	PoolNodes int
	// Pool, when non-empty, replaces the PoolNodes prefix as the
	// relocation candidate set: a relocated rank lands only on one of
	// these nodes. The facility simulator's placement-assisted
	// allocator uses this to keep the search inside the node set a job
	// was actually granted — a mapping must never drift onto nodes the
	// batch scheduler gave to someone else.
	Pool []fabric.NodeID

	// Surrogate turns on the two-tier search: each round generates
	// ScreenFactor times its batch of candidates, prices them all with
	// the analytic queueing surrogate (calibrated up front against
	// DES-replayed anchor mappings), and sends only the cheapest
	// batch-sized shortlist to the DES. The DES replays per round —
	// and with them the round wall-clock — match the pure-DES search;
	// the surrogate's microseconds buy a ScreenFactor-wider proposal
	// pool. Every reported time (baselines, round stats, BestTime)
	// stays a DES-replayed makespan: surrogate prices only choose who
	// gets replayed, never enter a Result.
	Surrogate bool
	// ScreenFactor is the surrogate tier's candidate overgeneration
	// ratio (default 4); Anchors the calibration budget — the starts
	// plus seeded perturbations of them, DES-replayed once before the
	// search (default 12, raised to the surrogate's feature count when
	// set lower). Both are ignored unless Surrogate is set.
	ScreenFactor int
	Anchors      int
}

// BaselinePoint is one start mapping's objective value.
type BaselinePoint struct {
	Name string
	Time units.Time
}

// RoundStat traces one optimizer round for reports.
type RoundStat struct {
	Phase       string // "greedy" or "anneal"
	Round       int
	Temp        units.Time // annealing temperature (0 in greedy rounds)
	Accepted    int        // moves accepted this round
	Current     units.Time // state the next round proposes from
	Best        units.Time // best-so-far after the round
	Evaluations int        // cumulative replay evaluations
}

// Trajectory splits a search's objective work by tier. The counters
// are deterministic (equal configs give equal counts, serial or
// parallel); the wall-clock totals are the only nondeterministic state
// in a Result, and WallFree strips them wherever results are compared
// or archived.
type Trajectory struct {
	// DESEvals counts unique candidate mappings replayed by the pooled
	// DES evaluator; SurrogateEvals counts unique mappings priced by
	// the analytic surrogate. Duplicates inside a batch are collapsed
	// before either tier runs — DedupHits counts the objective calls
	// that dedup skipped.
	DESEvals       int
	SurrogateEvals int
	DedupHits      int
	// DESWall and SurrogateWall accumulate the wall-clock each tier's
	// batch calls spent (all workers' throughput combined, so the
	// per-eval rates below are comparable across Workers settings only
	// in serial runs).
	DESWall       time.Duration
	SurrogateWall time.Duration
}

// DESRate and SurrogateRate return each tier's observed evaluations
// per second (0 before any timed call).
func (t Trajectory) DESRate() float64 {
	if t.DESWall <= 0 {
		return 0
	}
	return float64(t.DESEvals) / t.DESWall.Seconds()
}

func (t Trajectory) SurrogateRate() float64 {
	if t.SurrogateWall <= 0 {
		return 0
	}
	return float64(t.SurrogateEvals) / t.SurrogateWall.Seconds()
}

// Speedup is the surrogate's per-eval rate over the DES's (0 when
// either tier has no timed work).
func (t Trajectory) Speedup() float64 {
	d := t.DESRate()
	if d <= 0 {
		return 0
	}
	return t.SurrogateRate() / d
}

// WallFree returns a copy with the wall-clock fields zeroed: the
// deterministic view that serial≡parallel comparisons and archived
// artifacts use.
func (t Trajectory) WallFree() Trajectory {
	t.DESWall, t.SurrogateWall = 0, 0
	return t
}

// Result is one optimization run's outcome.
type Result struct {
	// Ranks and Baselines record the problem; Start names the seed
	// mapping the search grew from (the best baseline).
	Ranks     int
	Baselines []BaselinePoint
	Start     string
	StartTime units.Time
	// Best is the winning mapping and BestTime its replayed makespan;
	// Improvement is StartTime/BestTime (>= 1).
	Best        []transport.Endpoint
	BestTime    units.Time
	Improvement float64
	// Evaluations counts unique DES objective replays (batch
	// duplicates are priced once); Rounds traces the search;
	// Trajectory splits the objective work by tier.
	Evaluations int
	Rounds      []RoundStat
	Trajectory  Trajectory
}

// anchorSeedSalt derives the calibration generator's seed from the
// search seed, so anchor perturbations are reproducible but distinct
// from the proposal stream.
const anchorSeedSalt = 0x5ca1ab1e

// defaults fills zero config fields.
func (c *Config) defaults(ranks, fabricNodes int) Config {
	d := *c
	if d.Workers <= 0 {
		d.Workers = runtime.GOMAXPROCS(0)
	}
	if d.GreedyRounds == 0 {
		d.GreedyRounds = 6
	}
	if d.GreedyBatch == 0 {
		d.GreedyBatch = 24
	}
	if d.GreedyPatience == 0 {
		d.GreedyPatience = 2
	}
	if d.AnnealRounds == 0 {
		d.AnnealRounds = 6
	}
	if d.AnnealBatch == 0 {
		d.AnnealBatch = 24
	}
	if d.InitTempFrac == 0 {
		d.InitTempFrac = 0.005
	}
	if d.CoolRate == 0 {
		d.CoolRate = 0.6
	}
	if d.PoolNodes == 0 {
		d.PoolNodes = 4 * ranks
		if d.PoolNodes < 256 {
			d.PoolNodes = 256
		}
	}
	if d.PoolNodes > fabricNodes {
		d.PoolNodes = fabricNodes
	}
	if d.ScreenFactor == 0 {
		d.ScreenFactor = 4
	}
	if d.Anchors < surrogate.NumFeatures {
		d.Anchors = 12 // zero or too few to fit the model: the default
	}
	return d
}

// Optimize searches rank→node mappings for the trace and returns the
// best found. The result is a deterministic function of (trace, replay
// config, starts, seed, search shape) — Workers only changes wall
// clock.
func Optimize(cfg Config) (*Result, error) {
	if cfg.Trace == nil {
		return nil, fmt.Errorf("placement: nil trace")
	}
	if cfg.Replay.Fabric == nil {
		return nil, fmt.Errorf("placement: nil fabric")
	}
	if len(cfg.Starts) == 0 {
		return nil, fmt.Errorf("placement: no start mappings")
	}
	if cfg.GreedyRounds < 0 || cfg.GreedyBatch < 0 || cfg.GreedyPatience < 0 ||
		cfg.AnnealRounds < 0 || cfg.AnnealBatch < 0 || cfg.PoolNodes < 0 ||
		cfg.InitTempFrac < 0 || cfg.CoolRate < 0 ||
		cfg.ScreenFactor < 0 || cfg.Anchors < 0 {
		return nil, fmt.Errorf("placement: negative search parameter in %+v", cfg)
	}
	ranks := cfg.Trace.Meta.Ranks
	for _, s := range cfg.Starts {
		if len(s.Places) != ranks {
			return nil, fmt.Errorf("placement: start %q places %d of %d ranks",
				s.Name, len(s.Places), ranks)
		}
	}
	for _, n := range cfg.Pool {
		if g := n.GlobalID(); g < 0 || g >= cfg.Replay.Fabric.Nodes() {
			return nil, fmt.Errorf("placement: pool node %v outside the %d-node fabric",
				n, cfg.Replay.Fabric.Nodes())
		}
	}
	c := cfg.defaults(ranks, cfg.Replay.Fabric.Nodes())

	// The search loop reads only the makespan.
	rcfg := c.Replay
	rcfg.Places = nil
	rcfg.Observe = 0
	pool, err := newEvalPool(c.Trace, rcfg, c.Workers)
	if err != nil {
		return nil, err
	}
	defer pool.Close()
	ev := &tiered{pool: pool}
	defer ev.Close()

	res := &Result{Ranks: ranks}

	// Baselines: every start evaluated, best (ties to the first) seeds
	// the search.
	starts := make([][]transport.Endpoint, len(c.Starts))
	for i, s := range c.Starts {
		starts[i] = s.Places
	}
	times, err := ev.evalDES(starts)
	if err != nil {
		return nil, err
	}
	best := 0
	for i, s := range c.Starts {
		res.Baselines = append(res.Baselines, BaselinePoint{Name: s.Name, Time: times[i]})
		if times[i] < times[best] {
			best = i
		}
	}
	res.Start = c.Starts[best].Name
	res.StartTime = times[best]

	if c.Surrogate {
		// Calibration: anchor mappings are the starts plus
		// capacity-preserving perturbations of them, drawn from a
		// dedicated generator so the calibration budget never shifts
		// the search's random stream. The starts' replays above are
		// reused; only the perturbations cost extra DES time.
		model, err := surrogate.NewReplay(c.Trace, rcfg)
		if err != nil {
			return nil, err
		}
		arng := rand.New(rand.NewSource(c.Seed ^ anchorSeedSalt))
		anchors := append([][]transport.Endpoint(nil), starts...)
		for len(anchors) < c.Anchors {
			m := append([]transport.Endpoint(nil), starts[len(anchors)%len(starts)]...)
			for s := 0; s < 3; s++ {
				swapMove(arng, m)
			}
			anchors = append(anchors, m)
		}
		atimes := append([]units.Time(nil), times...)
		if len(anchors) > len(starts) {
			ptimes, err := ev.evalDES(anchors[len(starts):])
			if err != nil {
				model.Close()
				return nil, err
			}
			atimes = append(atimes, ptimes...)
		}
		if err := model.Calibrate(anchors, atimes); err != nil {
			model.Close()
			return nil, err
		}
		// Clones share the calibrated weights and the trace precompute;
		// each worker prices on its own buffers.
		ev.sur = append(ev.sur, model)
		for w := 1; w < c.Workers; w++ {
			ev.sur = append(ev.sur, model.Clone())
		}
	}

	cur := append([]transport.Endpoint(nil), c.Starts[best].Places...)
	curTime := times[best]
	bestPlaces := append([]transport.Endpoint(nil), cur...)
	bestTime := curTime
	rng := rand.New(rand.NewSource(c.Seed))

	// Phase 1: greedy pairwise-swap refinement. Each round proposes a
	// batch of random swaps of the incumbent, evaluates them in
	// parallel and keeps the best if it improves.
	dry := 0
	for round := 0; round < c.GreedyRounds && dry < c.GreedyPatience; round++ {
		cands := make([][]transport.Endpoint, c.GreedyBatch*ev.factor(c.ScreenFactor))
		for i := range cands {
			m := append([]transport.Endpoint(nil), cur...)
			swapMove(rng, m)
			cands[i] = m
		}
		cands = ev.screen(cands, c.GreedyBatch)
		times, err := ev.evalDES(cands)
		if err != nil {
			return nil, err
		}
		win := 0
		for i := 1; i < len(times); i++ {
			if times[i] < times[win] {
				win = i
			}
		}
		accepted := 0
		if times[win] < curTime {
			cur, curTime = cands[win], times[win]
			accepted = 1
			dry = 0
		} else {
			dry++
		}
		if curTime < bestTime {
			bestPlaces = append(bestPlaces[:0], cur...)
			bestTime = curTime
		}
		res.Rounds = append(res.Rounds, RoundStat{
			Phase: "greedy", Round: round, Accepted: accepted,
			Current: curTime, Best: bestTime, Evaluations: ev.traj.DESEvals,
		})
	}

	// Phase 2: batched simulated annealing. Proposals mix swaps and
	// relocations, all derived from the round-start incumbent;
	// acceptance is Metropolis in candidate order against the
	// continuously updated incumbent (accepted moves replace it but do
	// not re-seed the round's remaining proposals), so an occasional
	// uphill move can walk the search off the greedy phase's local
	// minimum.
	temp := units.Time(float64(res.StartTime) * c.InitTempFrac)
	for round := 0; round < c.AnnealRounds && temp > 0; round++ {
		cands := make([][]transport.Endpoint, c.AnnealBatch*ev.factor(c.ScreenFactor))
		for i := range cands {
			m := append([]transport.Endpoint(nil), cur...)
			if rng.Intn(2) == 0 {
				swapMove(rng, m)
			} else {
				relocateMove(rng, m, c.PoolNodes, c.Pool)
			}
			cands[i] = m
		}
		cands = ev.screen(cands, c.AnnealBatch)
		times, err := ev.evalDES(cands)
		if err != nil {
			return nil, err
		}
		accepted := 0
		for i, t := range times {
			d := float64(t - curTime)
			if d <= 0 || rng.Float64() < math.Exp(-d/float64(temp)) {
				cur, curTime = cands[i], t
				accepted++
				if curTime < bestTime {
					bestPlaces = append(bestPlaces[:0], cur...)
					bestTime = curTime
				}
			}
		}
		res.Rounds = append(res.Rounds, RoundStat{
			Phase: "anneal", Round: round, Temp: temp, Accepted: accepted,
			Current: curTime, Best: bestTime, Evaluations: ev.traj.DESEvals,
		})
		temp = units.Time(float64(temp) * c.CoolRate)
	}

	res.Best = bestPlaces
	res.BestTime = bestTime
	res.Improvement = float64(res.StartTime) / float64(res.BestTime)
	res.Evaluations = ev.traj.DESEvals
	res.Trajectory = ev.traj
	return res, nil
}

// swapMove exchanges two distinct ranks' endpoints.
func swapMove(rng *rand.Rand, m []transport.Endpoint) {
	if len(m) < 2 {
		return
	}
	i := rng.Intn(len(m))
	j := rng.Intn(len(m) - 1)
	if j >= i {
		j++
	}
	m[i], m[j] = m[j], m[i]
}

// relocateMove sends one rank to a random node of the relocation pool —
// an explicit node set when given, the global index prefix [0,
// poolNodes) otherwise — keeping its core when free and taking the
// node's first free core otherwise. Nodes already hosting four other
// ranks are infeasible (a node has four Opteron cores); after a few
// infeasible draws the move degenerates to a no-op, which just
// re-proposes the incumbent.
func relocateMove(rng *rand.Rand, m []transport.Endpoint, poolNodes int, pool []fabric.NodeID) {
	i := rng.Intn(len(m))
	for try := 0; try < 8; try++ {
		var node fabric.NodeID
		if len(pool) > 0 {
			node = pool[rng.Intn(len(pool))]
		} else {
			node = fabric.FromGlobal(rng.Intn(poolNodes))
		}
		var used [4]bool
		occupants := 0
		for j := range m {
			if j != i && m[j].Node == node {
				used[m[j].Core] = true
				occupants++
			}
		}
		if occupants >= 4 {
			continue
		}
		core := m[i].Core
		if used[core] {
			for c := range used {
				if !used[c] {
					core = c
					break
				}
			}
		}
		m[i] = transport.Endpoint{Node: node, Core: core}
		return
	}
}

// evalPool evaluates candidate batches across per-worker evaluators.
type evalPool struct {
	evs []*trace.Evaluator
}

// newEvalPool builds workers evaluators over the same trace and config.
func newEvalPool(t *trace.Trace, cfg trace.ReplayConfig, workers int) (*evalPool, error) {
	p := &evalPool{}
	for w := 0; w < workers; w++ {
		ev, err := trace.NewEvaluator(t, cfg)
		if err != nil {
			p.Close()
			return nil, err
		}
		p.evs = append(p.evs, ev)
	}
	return p, nil
}

// evalAll replays every candidate and returns its makespan, index
// aligned. Replay results are pure functions of the mapping, so the
// work distribution cannot affect the values.
func (p *evalPool) evalAll(cands [][]transport.Endpoint) ([]units.Time, error) {
	times := make([]units.Time, len(cands))
	errs := make([]error, len(cands))
	var next atomic.Int64
	var wg sync.WaitGroup
	workers := len(p.evs)
	if workers > len(cands) {
		workers = len(cands)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(ev *trace.Evaluator) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cands) {
					return
				}
				r, err := ev.Evaluate(cands[i])
				if err != nil {
					errs[i] = err
					continue
				}
				times[i] = r.Time
			}
		}(p.evs[w])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("placement: candidate replay: %w", err)
		}
	}
	return times, nil
}

// Close releases every worker evaluator.
func (p *evalPool) Close() {
	for _, ev := range p.evs {
		ev.Close()
	}
}

// tiered fronts the DES pool — and, in two-tier runs, the surrogate
// worker clones — behind batch calls that collapse duplicate mappings
// and account the trajectory. All ordering decisions happen on the
// coordinator, so worker scheduling cannot leak into results.
type tiered struct {
	pool *evalPool
	sur  []*surrogate.Model // nil when the surrogate tier is off
	traj Trajectory
}

// factor is the candidate overgeneration ratio: screenFactor with the
// surrogate tier armed, 1 without (pure-DES rounds generate exactly
// their batch).
func (e *tiered) factor(screenFactor int) int {
	if len(e.sur) == 0 {
		return 1
	}
	return screenFactor
}

// evalDES replays every candidate on the DES pool, deduping identical
// mappings first; times are index-aligned with cands.
func (e *tiered) evalDES(cands [][]transport.Endpoint) ([]units.Time, error) {
	uniq, ref, dups := dedupe(cands)
	begin := time.Now()
	ut, err := e.pool.evalAll(uniq)
	e.traj.DESWall += time.Since(begin)
	if err != nil {
		return nil, err
	}
	e.traj.DESEvals += len(uniq)
	e.traj.DedupHits += dups
	times := make([]units.Time, len(cands))
	for i, u := range ref {
		times[i] = ut[u]
	}
	return times, nil
}

// screen prices every candidate on the surrogate tier and keeps the
// `keep` cheapest by (price, generation order) — a total order, so the
// shortlist is deterministic — returned in generation order to
// preserve Metropolis semantics downstream. A no-op when the tier is
// off or the batch already fits.
func (e *tiered) screen(cands [][]transport.Endpoint, keep int) [][]transport.Endpoint {
	if len(e.sur) == 0 || keep >= len(cands) {
		return cands
	}
	uniq, ref, dups := dedupe(cands)
	begin := time.Now()
	up := e.priceAll(uniq)
	e.traj.SurrogateWall += time.Since(begin)
	e.traj.SurrogateEvals += len(uniq)
	e.traj.DedupHits += dups
	idx := make([]int, len(cands))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		pa, pb := up[ref[idx[a]]], up[ref[idx[b]]]
		if pa != pb {
			return pa < pb
		}
		return idx[a] < idx[b]
	})
	kept := append([]int(nil), idx[:keep]...)
	sort.Ints(kept)
	out := make([][]transport.Endpoint, keep)
	for i, j := range kept {
		out[i] = cands[j]
	}
	return out
}

// priceAll prices candidates across the surrogate clones with the same
// work-stealing loop as evalAll. Prices are pure functions of the
// mapping, so distribution cannot affect them.
func (e *tiered) priceAll(cands [][]transport.Endpoint) []units.Time {
	prices := make([]units.Time, len(cands))
	var next atomic.Int64
	var wg sync.WaitGroup
	workers := len(e.sur)
	if workers > len(cands) {
		workers = len(cands)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(m *surrogate.Model) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cands) {
					return
				}
				prices[i] = m.Price(cands[i])
			}
		}(e.sur[w])
	}
	wg.Wait()
	return prices
}

// Close releases the surrogate clones (the DES pool closes itself).
func (e *tiered) Close() {
	for _, m := range e.sur {
		m.Close()
	}
}

// fingerprint packs a mapping into a comparable key — global node id
// and core per rank — for batch-level dedup.
func fingerprint(m []transport.Endpoint) string {
	buf := make([]byte, 5*len(m))
	for i, ep := range m {
		binary.LittleEndian.PutUint32(buf[5*i:], uint32(ep.Node.GlobalID()))
		buf[5*i+4] = byte(ep.Core)
	}
	return string(buf)
}

// dedupe collapses identical mappings: uniq keeps the first occurrence
// of each distinct mapping in input order, ref maps every input index
// to its uniq index, dups counts the collapsed copies. Random swaps of
// a small incumbent collide often — two proposals that undo each other
// or hit the same pair replay identically, and replaying one of them
// twice is milliseconds of pure waste.
func dedupe(cands [][]transport.Endpoint) (uniq [][]transport.Endpoint, ref []int, dups int) {
	seen := make(map[string]int, len(cands))
	ref = make([]int, len(cands))
	for i, c := range cands {
		k := fingerprint(c)
		if j, ok := seen[k]; ok {
			ref[i] = j
			dups++
			continue
		}
		seen[k] = len(uniq)
		ref[i] = len(uniq)
		uniq = append(uniq, c)
	}
	return uniq, ref, dups
}
