package placement

import (
	"reflect"
	"testing"

	"roadrunner/internal/fabric"
	"roadrunner/internal/ib"
	"roadrunner/internal/trace"
	"roadrunner/internal/transport"
	"roadrunner/internal/units"
)

// pipelineTrace builds a placement-sensitive schedule: rounds of a
// rank-chain pipeline (each rank receives from its predecessor and
// forwards to its successor), with payloads big enough that routes and
// HCA sharing matter.
func pipelineTrace(t *testing.T, ranks, rounds int, size units.Size) *trace.Trace {
	t.Helper()
	rec := trace.NewRecorder("pipeline", "test", ranks)
	for round := 0; round < rounds; round++ {
		for r := 0; r < ranks; r++ {
			if r > 0 {
				rec.Recv(r, r-1, round, size, 0)
			}
			if r < ranks-1 {
				rec.Send(r, r+1, round, size, 0)
			}
		}
	}
	tr, err := rec.Trace()
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// spread places rank i on global node i*step, core 1.
func spread(ranks, step int) []transport.Endpoint {
	out := make([]transport.Endpoint, ranks)
	for i := range out {
		out[i] = transport.Endpoint{Node: fabric.FromGlobal(i * step), Core: 1}
	}
	return out
}

func testConfig(t *testing.T, tr *trace.Trace, starts []Start) Config {
	t.Helper()
	return Config{
		Trace: tr,
		Replay: trace.ReplayConfig{
			Fabric:  fabric.New(),
			Profile: ib.OpenMPI(),
			Policy:  transport.Congested(),
		},
		Starts:       starts,
		Seed:         7,
		GreedyRounds: 3,
		GreedyBatch:  8,
		AnnealRounds: 3,
		AnnealBatch:  8,
	}
}

// TestOptimizeSerialMatchesParallel pins the determinism contract: the
// worker count changes wall clock only — a serial run and a saturated
// parallel run return byte-identical results once the trajectory's
// wall-clock fields (the one legitimately nondeterministic part of a
// Result) are stripped with WallFree.
func TestOptimizeSerialMatchesParallel(t *testing.T) {
	tr := pipelineTrace(t, 8, 3, 256*units.KB)
	starts := []Start{
		{Name: "block", Places: spread(8, 1)},
		{Name: "strided", Places: spread(8, 180)},
	}
	for _, surrogate := range []bool{false, true} {
		cfg := testConfig(t, tr, starts)
		cfg.Surrogate = surrogate
		cfg.Workers = 1
		serial, err := Optimize(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Workers = 8
		parallel, err := Optimize(cfg)
		if err != nil {
			t.Fatal(err)
		}
		serial.Trajectory = serial.Trajectory.WallFree()
		parallel.Trajectory = parallel.Trajectory.WallFree()
		if !reflect.DeepEqual(serial, parallel) {
			t.Errorf("surrogate=%v: serial and parallel optimizer runs diverged:\n serial   %+v\n parallel %+v",
				surrogate, serial, parallel)
		}
	}
}

// TestOptimizeNoWorseThanStarts: the search grows from the best start,
// so the winner can never lose to any baseline.
func TestOptimizeNoWorseThanStarts(t *testing.T) {
	tr := pipelineTrace(t, 8, 3, 64*units.KB)
	starts := []Start{
		{Name: "block", Places: spread(8, 1)},
		{Name: "strided", Places: spread(8, 180)},
	}
	res, err := Optimize(testConfig(t, tr, starts))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Baselines) != 2 {
		t.Fatalf("baselines %+v", res.Baselines)
	}
	for _, b := range res.Baselines {
		if res.BestTime > b.Time {
			t.Errorf("best %v worse than baseline %s %v", res.BestTime, b.Name, b.Time)
		}
	}
	if res.Improvement < 1 {
		t.Errorf("improvement %.3f < 1", res.Improvement)
	}
	if res.Evaluations < len(starts) {
		t.Errorf("evaluations %d", res.Evaluations)
	}
	if len(res.Best) != tr.Meta.Ranks {
		t.Fatalf("best mapping covers %d of %d ranks", len(res.Best), tr.Meta.Ranks)
	}
	// The reported best must reproduce: re-evaluating the winner yields
	// BestTime exactly.
	ev, err := trace.NewEvaluator(tr, trace.ReplayConfig{
		Fabric: fabric.New(), Profile: ib.OpenMPI(), Policy: transport.Congested(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ev.Close()
	r, err := ev.Evaluate(res.Best)
	if err != nil {
		t.Fatal(err)
	}
	if r.Time != res.BestTime {
		t.Errorf("winner re-evaluates to %v, result says %v", r.Time, res.BestTime)
	}
}

// TestOptimizeEscapesBadStart: a two-rank schedule whose only start
// strands the chatty pair across the machine (7-hop routes, rendezvous
// round trips at full fabric latency). Relocation moves must find a
// strictly better mapping.
func TestOptimizeEscapesBadStart(t *testing.T) {
	tr := pipelineTrace(t, 2, 24, 256*units.KB)
	bad := []transport.Endpoint{
		{Node: fabric.FromGlobal(0), Core: 1},
		{Node: fabric.FromGlobal(2700), Core: 1}, // cross-side CU, different crossbar
	}
	cfg := testConfig(t, tr, []Start{{Name: "stranded", Places: bad}})
	cfg.AnnealRounds = 4
	res, err := Optimize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestTime >= res.StartTime {
		t.Errorf("optimizer failed to improve the stranded pair: best %v vs start %v",
			res.BestTime, res.StartTime)
	}
	// The winner must have pulled the pair closer together.
	far := cfg.Replay.Fabric.Hops(bad[0].Node, bad[1].Node)
	near := cfg.Replay.Fabric.Hops(res.Best[0].Node, res.Best[1].Node)
	if near >= far {
		t.Errorf("winner still %d hops apart (start %d)", near, far)
	}
}

// TestOptimizeRespectsNodeCapacity: starting from a packed mapping
// (every node full), a relocation-heavy search must never visit — or
// return — a mapping with more than four ranks on a node or two ranks
// on one core. Stacking ranks on one node would otherwise be the
// degenerate optimum, since intra-node sends cost software overhead
// only.
func TestOptimizeRespectsNodeCapacity(t *testing.T) {
	tr := pipelineTrace(t, 8, 2, 32*units.KB)
	packed := make([]transport.Endpoint, 8)
	for i := range packed {
		packed[i] = transport.Endpoint{Node: fabric.FromGlobal(i / 4), Core: i % 4}
	}
	cfg := testConfig(t, tr, []Start{{Name: "packed", Places: packed}})
	cfg.GreedyRounds = 1
	cfg.AnnealRounds = 6
	cfg.AnnealBatch = 16
	cfg.PoolNodes = 4 // a tiny pool forces relocation pressure onto full nodes
	res, err := Optimize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	perNode := map[fabric.NodeID]map[int]bool{}
	for rank, ep := range res.Best {
		cores := perNode[ep.Node]
		if cores == nil {
			cores = map[int]bool{}
			perNode[ep.Node] = cores
		}
		if cores[ep.Core] {
			t.Errorf("rank %d shares node %v core %d", rank, ep.Node, ep.Core)
		}
		cores[ep.Core] = true
		if len(cores) > 4 {
			t.Errorf("node %v hosts %d ranks", ep.Node, len(cores))
		}
	}
}

// TestDedupeCollapsesIdenticalMappings pins the batch fingerprint:
// identical mappings share one unique slot, distinct ones (even
// differing only in a core) do not, and the backrefs realign results.
func TestDedupeCollapsesIdenticalMappings(t *testing.T) {
	a := spread(4, 1)
	b := spread(4, 2)
	aCopy := append([]transport.Endpoint(nil), a...)
	aCore := append([]transport.Endpoint(nil), a...)
	aCore[2].Core = 3
	uniq, ref, dups := dedupe([][]transport.Endpoint{a, b, aCopy, aCore, b})
	if len(uniq) != 3 || dups != 2 {
		t.Fatalf("got %d unique, %d dups; want 3, 2", len(uniq), dups)
	}
	if want := []int{0, 1, 0, 2, 1}; !reflect.DeepEqual(ref, want) {
		t.Errorf("backrefs %v, want %v", ref, want)
	}
}

// TestOptimizeCountsUniqueEvaluations is the dedup regression test: on
// a two-rank trace every greedy swap proposes the same single mapping,
// so a greedy round costs one DES replay no matter the batch size —
// Evaluations counts unique replays, not proposals.
func TestOptimizeCountsUniqueEvaluations(t *testing.T) {
	tr := pipelineTrace(t, 2, 2, 64*units.KB)
	cfg := testConfig(t, tr, []Start{{Name: "block", Places: spread(2, 1)}})
	cfg.GreedyRounds = 3
	cfg.GreedyBatch = 8
	cfg.GreedyPatience = 3
	cfg.AnnealRounds = 3
	cfg.AnnealBatch = 8
	res, err := Optimize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	proposals := 1 + 3*8 + 3*8 // start + greedy + anneal, without dedup
	if res.Evaluations >= proposals {
		t.Errorf("evaluations %d did not collapse duplicate proposals (%d proposed)",
			res.Evaluations, proposals)
	}
	if res.Trajectory.DedupHits == 0 {
		t.Error("no dedup hits on a two-rank search whose swaps all collide")
	}
	if res.Trajectory.DESEvals != res.Evaluations {
		t.Errorf("trajectory DES evals %d != result evaluations %d",
			res.Trajectory.DESEvals, res.Evaluations)
	}
	// Greedy rounds propose only the one possible swap of two ranks:
	// one unique replay per round at most.
	for _, r := range res.Rounds {
		if r.Phase == "greedy" && r.Round == 0 && r.Evaluations > 1+1 {
			t.Errorf("first greedy round spent %d evaluations on 1 unique swap", r.Evaluations-1)
		}
	}
}

// TestOptimizeSurrogateScreening exercises the two-tier path: the
// surrogate prices a ScreenFactor-wider pool, the DES replays only the
// shortlist, every reported number stays DES-confirmed, and the
// trajectory accounts both tiers.
func TestOptimizeSurrogateScreening(t *testing.T) {
	tr := pipelineTrace(t, 8, 3, 256*units.KB)
	starts := []Start{
		{Name: "block", Places: spread(8, 1)},
		{Name: "strided", Places: spread(8, 180)},
	}
	cfg := testConfig(t, tr, starts)
	cfg.Surrogate = true
	cfg.ScreenFactor = 4
	res, err := Optimize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestTime > res.StartTime {
		t.Errorf("two-tier best %v worse than start %v", res.BestTime, res.StartTime)
	}
	if res.Trajectory.SurrogateEvals == 0 {
		t.Fatal("surrogate tier armed but never priced a candidate")
	}
	if res.Trajectory.SurrogateEvals <= res.Trajectory.DESEvals {
		t.Errorf("surrogate priced %d candidates, DES replayed %d — screening should price the wider pool",
			res.Trajectory.SurrogateEvals, res.Trajectory.DESEvals)
	}
	if res.Trajectory.SurrogateWall <= 0 || res.Trajectory.DESWall <= 0 {
		t.Errorf("trajectory wall clocks not recorded: %+v", res.Trajectory)
	}
	if free := res.Trajectory.WallFree(); free.DESWall != 0 || free.SurrogateWall != 0 ||
		free.DESEvals != res.Trajectory.DESEvals {
		t.Errorf("WallFree mangled the trajectory: %+v", free)
	}
	// DES-confirmed: the winner re-evaluates to BestTime exactly.
	ev, err := trace.NewEvaluator(tr, cfg.Replay)
	if err != nil {
		t.Fatal(err)
	}
	defer ev.Close()
	r, err := ev.Evaluate(res.Best)
	if err != nil {
		t.Fatal(err)
	}
	if r.Time != res.BestTime {
		t.Errorf("winner re-evaluates to %v, result says %v", r.Time, res.BestTime)
	}
}

func TestOptimizeConfigErrors(t *testing.T) {
	tr := pipelineTrace(t, 2, 1, units.KB)
	fab := fabric.New()
	cases := []struct {
		name string
		cfg  Config
	}{
		{"nil trace", Config{Replay: trace.ReplayConfig{Fabric: fab}}},
		{"nil fabric", Config{Trace: tr}},
		{"no starts", Config{Trace: tr, Replay: trace.ReplayConfig{Fabric: fab}}},
		{"short start", Config{Trace: tr, Replay: trace.ReplayConfig{Fabric: fab},
			Starts: []Start{{Name: "x", Places: spread(1, 1)}}}},
		{"negative batch", Config{Trace: tr, Replay: trace.ReplayConfig{Fabric: fab},
			Starts: []Start{{Name: "x", Places: spread(2, 1)}}, GreedyBatch: -1}},
		{"negative pool", Config{Trace: tr, Replay: trace.ReplayConfig{Fabric: fab},
			Starts: []Start{{Name: "x", Places: spread(2, 1)}}, PoolNodes: -4}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Optimize(tc.cfg); err == nil {
				t.Fatal("bad config accepted")
			}
		})
	}
}
