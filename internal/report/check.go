package report

import (
	"fmt"
	"math"
)

// Check is one paper-vs-measured comparison outcome.
type Check struct {
	Name     string
	Expected float64
	Measured float64
	Detail   string
	OK       bool
}

// String renders the check result on one line.
func (c Check) String() string {
	mark := "PASS"
	if !c.OK {
		mark = "FAIL"
	}
	if c.Detail != "" {
		return fmt.Sprintf("[%s] %s: measured %.4g vs paper %.4g (%s)",
			mark, c.Name, c.Measured, c.Expected, c.Detail)
	}
	return fmt.Sprintf("[%s] %s: measured %.4g vs paper %.4g",
		mark, c.Name, c.Measured, c.Expected)
}

// Checks accumulates comparison results for an experiment.
type Checks struct {
	Items []Check
}

// Within asserts |measured-expected| <= relTol*|expected|.
func (cs *Checks) Within(name string, measured, expected, relTol float64) {
	ok := false
	if expected == 0 {
		ok = measured == 0
	} else {
		ok = math.Abs(measured-expected) <= relTol*math.Abs(expected)
	}
	cs.Items = append(cs.Items, Check{
		Name: name, Expected: expected, Measured: measured,
		Detail: fmt.Sprintf("tol ±%.3g%%", relTol*100), OK: ok,
	})
}

// Exact asserts measured == expected.
func (cs *Checks) Exact(name string, measured, expected float64) {
	cs.Items = append(cs.Items, Check{
		Name: name, Expected: expected, Measured: measured,
		Detail: "exact", OK: measured == expected,
	})
}

// RatioInBand asserts lo <= num/den <= hi.
func (cs *Checks) RatioInBand(name string, num, den, lo, hi float64) {
	r := math.NaN()
	if den != 0 {
		r = num / den
	}
	cs.Items = append(cs.Items, Check{
		Name: name, Expected: (lo + hi) / 2, Measured: r,
		Detail: fmt.Sprintf("ratio in [%.3g, %.3g]", lo, hi),
		OK:     !math.IsNaN(r) && r >= lo && r <= hi,
	})
}

// True records a named boolean condition.
func (cs *Checks) True(name string, cond bool, detail string) {
	v := 0.0
	if cond {
		v = 1
	}
	cs.Items = append(cs.Items, Check{
		Name: name, Expected: 1, Measured: v, Detail: detail, OK: cond,
	})
}

// AllOK reports whether every check passed.
func (cs *Checks) AllOK() bool {
	for _, c := range cs.Items {
		if !c.OK {
			return false
		}
	}
	return true
}

// Failures returns the failing checks.
func (cs *Checks) Failures() []Check {
	var out []Check
	for _, c := range cs.Items {
		if !c.OK {
			out = append(out, c)
		}
	}
	return out
}

// String renders one line per check.
func (cs *Checks) String() string {
	s := ""
	for _, c := range cs.Items {
		s += c.String() + "\n"
	}
	return s
}

// NonIncreasing reports whether ys never rises by more than slack
// (relative): ys[i+1] <= ys[i]*(1+slack).
func NonIncreasing(ys []float64, slack float64) bool {
	for i := 1; i < len(ys); i++ {
		if ys[i] > ys[i-1]*(1+slack) {
			return false
		}
	}
	return true
}

// NonDecreasing reports whether ys never falls by more than slack
// (relative).
func NonDecreasing(ys []float64, slack float64) bool {
	for i := 1; i < len(ys); i++ {
		if ys[i] < ys[i-1]*(1-slack) {
			return false
		}
	}
	return true
}

// SeriesYs extracts the y values of a series in x order.
func SeriesYs(s *Series) []float64 {
	ys := make([]float64, len(s.Points))
	for i, p := range s.Points {
		ys[i] = p.Y
	}
	return ys
}

// Dominates reports whether series a is strictly below series b at every
// shared x (a "wins" when lower-is-better).
func Dominates(a, b *Series) bool {
	shared := 0
	for _, p := range a.Points {
		y := b.Y(p.X)
		if math.IsNaN(y) {
			continue
		}
		shared++
		if p.Y >= y {
			return false
		}
	}
	return shared > 0
}

// PlateauMean returns the mean y of points whose x lies in [lo, hi].
func PlateauMean(s *Series, lo, hi float64) float64 {
	sum, n := 0.0, 0
	for _, p := range s.Points {
		if p.X >= lo && p.X <= hi {
			sum += p.Y
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}
