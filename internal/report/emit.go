package report

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// JSONLEmitter streams records as JSON lines (one object per line) to an
// underlying writer. It is safe for concurrent use: the orchestrator's
// workers emit results as they complete, and lines are never interleaved.
type JSONLEmitter struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewJSONLEmitter wraps w in a line-oriented JSON emitter.
func NewJSONLEmitter(w io.Writer) *JSONLEmitter {
	return &JSONLEmitter{enc: json.NewEncoder(w)}
}

// Emit writes v as one JSON line.
func (e *JSONLEmitter) Emit(v any) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.enc.Encode(v)
}

// CSVDir writes tables and figures as CSV files under one directory,
// creating it on first use. Writes go through a temp file and rename so a
// cancelled run never leaves a torn artifact. It is safe for concurrent
// use as long as file names are distinct (the orchestrator derives them
// from experiment IDs, which are unique).
type CSVDir struct {
	Dir string

	mkdir sync.Once
	err   error
}

// NewCSVDir returns a CSV writer rooted at dir.
func NewCSVDir(dir string) *CSVDir { return &CSVDir{Dir: dir} }

// WriteTable writes t as <name>.csv.
func (d *CSVDir) WriteTable(name string, t *Table) error {
	return d.write(name, t.CSV())
}

// WriteFigure writes f's merged series grid as <name>.csv.
func (d *CSVDir) WriteFigure(name string, f *Figure) error {
	return d.write(name, f.CSV())
}

func (d *CSVDir) write(name, content string) error {
	d.mkdir.Do(func() { d.err = os.MkdirAll(d.Dir, 0o755) })
	if d.err != nil {
		return d.err
	}
	final := filepath.Join(d.Dir, name+".csv")
	if err := WriteFileAtomic(final, []byte(content)); err != nil {
		return fmt.Errorf("report: write %s: %w", final, err)
	}
	return nil
}

// WriteFileAtomic writes data to path via a temp file in the same
// directory plus rename, so readers never observe a torn file and a
// failure leaves no partial artifact behind. The file ends up
// world-readable (0644, umask permitting) like a plain create would.
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(err)
	}
	// CreateTemp makes 0600 files; artifacts should be readable like any
	// normally created file.
	if err := tmp.Chmod(0o644); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
