package report

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Point is one (x, y) sample of a series.
type Point struct {
	X float64
	Y float64
}

// Series is a named sequence of points, in x order.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{x, y}) }

// Y returns the y value at the given x (exact match), or NaN.
func (s *Series) Y(x float64) float64 {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y
		}
	}
	return math.NaN()
}

// MinY and MaxY return the extreme y values (NaN if empty).
func (s *Series) MinY() float64 {
	m := math.Inf(1)
	for _, p := range s.Points {
		m = math.Min(m, p.Y)
	}
	if math.IsInf(m, 1) {
		return math.NaN()
	}
	return m
}

// MaxY returns the largest y value in the series.
func (s *Series) MaxY() float64 {
	m := math.Inf(-1)
	for _, p := range s.Points {
		m = math.Max(m, p.Y)
	}
	if math.IsInf(m, -1) {
		return math.NaN()
	}
	return m
}

// Last returns the final point of the series.
func (s *Series) Last() Point {
	if len(s.Points) == 0 {
		return Point{math.NaN(), math.NaN()}
	}
	return s.Points[len(s.Points)-1]
}

// Figure is a titled collection of series sharing axes.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	XLog   bool
	Series []*Series
	Notes  []string
}

// NewFigure creates an empty figure.
func NewFigure(title, xlabel, ylabel string) *Figure {
	return &Figure{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// NewSeries adds and returns a fresh series.
func (f *Figure) NewSeries(name string) *Series {
	s := &Series{Name: name}
	f.Series = append(f.Series, s)
	return s
}

// AddNote attaches a footnote.
func (f *Figure) AddNote(format string, args ...any) {
	f.Notes = append(f.Notes, fmt.Sprintf(format, args...))
}

// Get returns the series with the given name, or nil.
func (f *Figure) Get(name string) *Series {
	for _, s := range f.Series {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// String renders the figure as an aligned value table (x in the first
// column, one column per series) — the faithful textual form of a plot.
func (f *Figure) String() string {
	xs := map[float64]struct{}{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			xs[p.X] = struct{}{}
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)

	tbl := NewTable("", append([]string{f.XLabel}, seriesNames(f.Series)...)...)
	for _, x := range sorted {
		row := make([]any, 0, len(f.Series)+1)
		row = append(row, formatFloat(x))
		for _, s := range f.Series {
			y := s.Y(x)
			if math.IsNaN(y) {
				row = append(row, "-")
			} else {
				row = append(row, y)
			}
		}
		tbl.AddRow(row...)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", f.Title)
	if f.YLabel != "" {
		fmt.Fprintf(&b, "(y: %s)\n", f.YLabel)
	}
	b.WriteString(tbl.String())
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the figure's merged series grid as CSV.
func (f *Figure) CSV() string {
	xs := map[float64]struct{}{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			xs[p.X] = struct{}{}
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)
	tbl := NewTable("", append([]string{f.XLabel}, seriesNames(f.Series)...)...)
	for _, x := range sorted {
		row := make([]any, 0, len(f.Series)+1)
		row = append(row, fmt.Sprintf("%g", x))
		for _, s := range f.Series {
			y := s.Y(x)
			if math.IsNaN(y) {
				row = append(row, "")
			} else {
				row = append(row, fmt.Sprintf("%g", y))
			}
		}
		tbl.AddRow(row...)
	}
	return tbl.CSV()
}

func seriesNames(ss []*Series) []string {
	names := make([]string, len(ss))
	for i, s := range ss {
		names[i] = s.Name
	}
	return names
}
