package report

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestTableRender(t *testing.T) {
	tbl := NewTable("Demo", "name", "value")
	tbl.AddRow("alpha", 1.5)
	tbl.AddRow("beta", 42)
	tbl.AddNote("calibrated")
	s := tbl.String()
	for _, want := range []string{"Demo", "alpha", "1.5", "beta", "42", "note: calibrated"} {
		if !strings.Contains(s, want) {
			t.Errorf("render missing %q:\n%s", want, s)
		}
	}
}

func TestTableCSVQuoting(t *testing.T) {
	tbl := NewTable("", "a", "b")
	tbl.AddRow(`has "quote"`, "x,y")
	csv := tbl.CSV()
	if !strings.Contains(csv, `"has ""quote"""`) {
		t.Errorf("quote escaping wrong: %s", csv)
	}
	if !strings.Contains(csv, `"x,y"`) {
		t.Errorf("comma quoting wrong: %s", csv)
	}
}

func TestSeriesLookup(t *testing.T) {
	f := NewFigure("f", "x", "y")
	s := f.NewSeries("s1")
	s.Add(1, 10)
	s.Add(2, 20)
	s.Add(4, 40)
	if got := s.Y(2); got != 20 {
		t.Errorf("Y(2) = %v", got)
	}
	if !math.IsNaN(s.Y(3)) {
		t.Errorf("Y(3) should be NaN")
	}
	if s.MinY() != 10 || s.MaxY() != 40 {
		t.Errorf("min/max = %v/%v", s.MinY(), s.MaxY())
	}
	if s.Last().X != 4 {
		t.Errorf("last = %v", s.Last())
	}
	if f.Get("s1") != s || f.Get("nope") != nil {
		t.Errorf("Get lookup broken")
	}
}

func TestFigureRenderMergesXs(t *testing.T) {
	f := NewFigure("fig", "n", "t")
	a := f.NewSeries("a")
	a.Add(1, 1)
	a.Add(2, 2)
	b := f.NewSeries("b")
	b.Add(2, 4)
	b.Add(3, 9)
	s := f.String()
	// x=1 row has "-" for series b; x=3 row has "-" for a.
	if !strings.Contains(s, "a") || !strings.Contains(s, "b") {
		t.Fatalf("missing series: %s", s)
	}
	if !strings.Contains(s, "-") {
		t.Errorf("missing hole marker: %s", s)
	}
	csv := f.CSV()
	if !strings.HasPrefix(csv, "n,a,b\n") {
		t.Errorf("csv header: %s", csv)
	}
}

func TestChecks(t *testing.T) {
	var cs Checks
	cs.Within("close", 101, 100, 0.02)
	cs.Within("far", 120, 100, 0.02)
	cs.Exact("same", 5, 5)
	cs.RatioInBand("ratio", 200, 100, 1.8, 2.2)
	cs.RatioInBand("ratio-out", 300, 100, 1.8, 2.2)
	cs.True("cond", true, "ok")
	if cs.AllOK() {
		t.Errorf("expected failures")
	}
	fails := cs.Failures()
	if len(fails) != 2 {
		t.Errorf("failures = %v", fails)
	}
	if fails[0].Name != "far" || fails[1].Name != "ratio-out" {
		t.Errorf("wrong failures: %v", fails)
	}
	if !strings.Contains(cs.String(), "[FAIL] far") {
		t.Errorf("render: %s", cs.String())
	}
}

func TestWithinZeroExpected(t *testing.T) {
	var cs Checks
	cs.Within("zero-ok", 0, 0, 0.1)
	cs.Within("zero-bad", 0.1, 0, 0.1)
	if !cs.Items[0].OK || cs.Items[1].OK {
		t.Errorf("zero handling: %v", cs.Items)
	}
}

func TestMonotoneHelpers(t *testing.T) {
	if !NonIncreasing([]float64{5, 4, 4, 3}, 0) {
		t.Error("NonIncreasing false negative")
	}
	if NonIncreasing([]float64{5, 6}, 0) {
		t.Error("NonIncreasing false positive")
	}
	if !NonIncreasing([]float64{5, 5.2}, 0.05) {
		t.Error("slack not applied")
	}
	if !NonDecreasing([]float64{1, 2, 2, 3}, 0) {
		t.Error("NonDecreasing false negative")
	}
}

func TestDominates(t *testing.T) {
	f := NewFigure("", "x", "y")
	lo := f.NewSeries("lo")
	hi := f.NewSeries("hi")
	for x := 1.0; x <= 4; x++ {
		lo.Add(x, x)
		hi.Add(x, x*2)
	}
	if !Dominates(lo, hi) {
		t.Error("lo should dominate hi")
	}
	if Dominates(hi, lo) {
		t.Error("hi should not dominate lo")
	}
}

func TestPlateauMean(t *testing.T) {
	s := &Series{Name: "s"}
	s.Add(0, 2.4)
	s.Add(1, 2.5)
	s.Add(2, 2.6)
	s.Add(100, 4.0)
	got := PlateauMean(s, 0, 2)
	if math.Abs(got-2.5) > 1e-12 {
		t.Errorf("plateau mean = %v", got)
	}
	if !math.IsNaN(PlateauMean(s, 50, 60)) {
		t.Error("empty window should be NaN")
	}
}

func TestWithinProperty(t *testing.T) {
	// Within is symmetric in sign of the deviation and honors tolerance.
	f := func(base uint16, devPct uint8) bool {
		expected := float64(base) + 1
		dev := float64(devPct%50) / 100
		var cs Checks
		cs.Within("p", expected*(1+dev), expected, 0.5)
		cs.Within("m", expected*(1-dev), expected, 0.5)
		return cs.AllOK()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
