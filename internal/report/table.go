// Package report renders experiment results as ASCII tables and figure
// series, writes CSV, and provides the paper-vs-measured comparison
// helpers (tolerance and shape checks) used by the experiment registry.
package report

import (
	"fmt"
	"strings"
)

// Table is a titled grid of cells with a header row.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote attaches a footnote rendered under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// formatFloat renders floats compactly but stably.
func formatFloat(v float64) string {
	s := fmt.Sprintf("%.4g", v)
	return s
}

// String renders the table in aligned ASCII.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (quoting cells that need it).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				cell = `"` + strings.ReplaceAll(cell, `"`, `""`) + `"`
			}
			b.WriteString(cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
