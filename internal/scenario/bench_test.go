package scenario

import (
	"testing"

	"roadrunner/internal/collectives"
	"roadrunner/internal/transport"
)

// The saturation benches track the congested transport's hot-loop cost —
// route enumeration, sorted link admission, queueing — next to the PR 2
// benches in internal/collectives. CI's bench-artifact step archives
// them in BENCH_<short-sha>.json per commit (see .github/workflows/ci.yml
// and `make bench-artifact`).

func benchSaturationOp(b *testing.B, op collectives.Op, nodes int, pol transport.Policy) {
	b.Helper()
	cfg, err := collectives.DefaultConfig(nodes)
	if err != nil {
		b.Fatal(err)
	}
	cfg.Congestion = pol
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := collectives.Run(cfg, op, SaturationSize)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.Time.Microseconds(), "sim-us")
			b.ReportMetric(float64(res.EngineStats.Dispatched), "events")
			if c := res.Congestion; c != nil {
				b.ReportMetric(c.TotalWait.Microseconds(), "wait-us")
			}
		}
	}
}

func BenchmarkSaturationAlltoallCongested360(b *testing.B) {
	benchSaturationOp(b, collectives.AlltoallPairwise, 360, transport.Congested())
}

func BenchmarkSaturationAlltoallInfinite360(b *testing.B) {
	benchSaturationOp(b, collectives.AlltoallPairwise, 360, transport.InfiniteCapacity())
}

func BenchmarkSaturationAllgatherCongested360(b *testing.B) {
	benchSaturationOp(b, collectives.AllgatherRing, 360, transport.Congested())
}

// The topo-compare benches run the saturation alltoall on the
// alternative fabrics, so a routing or admission regression on any
// registered topology shows in the per-commit record, not only on the
// default tree.
func benchTopoOp(b *testing.B, topology string, op collectives.Op, nodes int, pol transport.Policy) {
	b.Helper()
	cfg, err := collectives.DefaultConfigOn(topology, nodes)
	if err != nil {
		b.Fatal(err)
	}
	cfg.Congestion = pol
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := collectives.Run(cfg, op, SaturationSize)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.Time.Microseconds(), "sim-us")
			b.ReportMetric(float64(res.EngineStats.Dispatched), "events")
		}
	}
}

func BenchmarkTopoCompareTorusAlltoallCongested360(b *testing.B) {
	benchTopoOp(b, "torus", collectives.AlltoallPairwise, 360, transport.Congested())
}

func BenchmarkTopoCompareFullBisectionAlltoallCongested360(b *testing.B) {
	benchTopoOp(b, "fattree-full", collectives.AlltoallPairwise, 360, transport.Congested())
}
