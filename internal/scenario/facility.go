package scenario

import (
	"fmt"
	"reflect"

	"roadrunner/internal/cml"
	"roadrunner/internal/facility"
	"roadrunner/internal/ib"
	"roadrunner/internal/params"
	"roadrunner/internal/sweep3d"
	"roadrunner/internal/trace"
	"roadrunner/internal/transport"
	"roadrunner/internal/units"
)

// The facility-stream scenario scales the simulator from one job on an
// empty fabric to the operated machine the paper reports: all 17 CUs
// under a deterministic stream of LINPACK, Sweep3D and trace-replay
// jobs, scheduled by FCFS and EASY-backfill over the contiguous,
// scattered and placement-assisted allocators. The sweep quantifies the
// operational trade-offs the single-job layers cannot see — backfill
// against queue wait, CU packing against external fragmentation, and
// the placement optimizer run at admission time against the mapping a
// plain allocator would hand a trace job.

// FacilitySeed fixes the workload's arrival stream and the assisted
// allocator's search streams.
const FacilitySeed = 2008

// FacilityTracePx and FacilityTracePy size the captured schedule behind
// the mix's trace-replay jobs: a 4x4 rank grid, small enough that
// pricing a job admission costs milliseconds.
const (
	FacilityTracePx = 4
	FacilityTracePy = 4
)

// FacilityTraceGrid is the captured per-rank problem for the facility's
// trace jobs (a short-K variant of the trace-replay grid).
var FacilityTraceGrid = sweep3d.Config{I: 5, J: 5, K: 20, MK: 10, Angles: 6}

// FacilityPolicyNames and FacilityAllocNames fix the sweep's axes, in
// sweep order.
var (
	FacilityPolicyNames = []string{"fcfs", "easy"}
	FacilityAllocNames  = []string{"contiguous", "scattered", "assisted"}
)

// FacilityWorkload returns the canonical mix: 48 jobs, LINPACK
// partitions from a sixth of the machine to half of it, weak-scaling
// Sweep3D runs, and 16-rank trace-replay jobs, arriving every ~90
// seconds on average.
func FacilityWorkload() facility.Workload {
	return facility.Workload{
		Name: "roadrunner-mix", Seed: FacilitySeed, Jobs: 48,
		MeanInterarrival: 90 * units.Second,
		Classes: []facility.ClassSpec{
			{Class: facility.ClassLinpack, Weight: 1, Nodes: []int{256, 512, 1020, 1530}},
			{Class: facility.ClassSweep3D, Weight: 2, Nodes: []int{64, 128, 256, 512},
				MinIters: 200, MaxIters: 800},
			{Class: facility.ClassTrace, Weight: 1, MinIters: 500, MaxIters: 2000},
		},
	}
}

// FacilityPoint is one (policy, allocator) run's headline accounting.
type FacilityPoint struct {
	Policy string
	Alloc  string

	Utilization       units.Time // delivered node-time per machine node (makespan * utilization)
	UtilizationFrac   float64
	MeanWait          units.Time
	P95Wait           units.Time
	MeanSlowdown      float64
	MeanFragmentation float64
	Makespan          units.Time
	OracleMakespan    units.Time
	OracleRatio       float64
	Backfilled        int
	// MaxCUsSpannedSmall is the worst CU spread of any job that fits in
	// one CU — 1 under contiguous packing by construction.
	MaxCUsSpannedSmall int
	// TraceRuntimeTotal sums the actual runtimes of the trace-replay
	// jobs; FirstTraceRuntime is the earliest trace job's alone (the
	// one job whose grant is identical across allocators, so the
	// assisted-vs-linear comparison is exact).
	TraceRuntimeTotal units.Time
	FirstTraceRuntime units.Time
}

// FacilityStreamReport is the whole sweep.
type FacilityStreamReport struct {
	Workload     string
	Jobs         int
	MachineNodes int
	TraceName    string
	TraceRanks   int
	// TraceReference is the per-iteration makespan under the reference
	// mapping (the trace jobs' estimate basis).
	TraceReference units.Time
	Points         []FacilityPoint
	// Deterministic reports that a second full sweep (fresh capture,
	// fresh evaluator, fresh runs) was byte-identical.
	Deterministic bool
}

// CaptureFacilityTrace captures the schedule behind the mix's trace
// jobs.
func CaptureFacilityTrace() (*trace.Trace, error) {
	_, tr, err := sweep3d.CaptureDES(FacilityTraceGrid, FacilityTracePx, FacilityTracePy, cml.CurrentSoftware())
	if err != nil {
		return nil, fmt.Errorf("scenario facility-stream: capture: %w", err)
	}
	return tr, nil
}

// FacilityRun simulates one (policy, allocator) combination over the
// given workload on the full machine — the facade's and rrsched's entry
// point. The canonical Sweep3D trace is captured only when the mix
// includes trace-replay jobs.
func FacilityRun(policy, alloc string, w facility.Workload) (*facility.Result, error) {
	pol, err := facility.NewPolicy(policy)
	if err != nil {
		return nil, err
	}
	al, err := facility.NewAllocator(alloc, w.Seed)
	if err != nil {
		return nil, err
	}
	var rt *facility.TraceRuntime
	for _, c := range w.Classes {
		if c.Class != facility.ClassTrace || c.Weight <= 0 {
			continue
		}
		tr, err := CaptureFacilityTrace()
		if err != nil {
			return nil, err
		}
		rt, err = facility.NewTraceRuntime(tr, trace.ReplayConfig{
			Fabric:  newFabric(),
			Profile: ib.OpenMPI(),
			Policy:  transport.Congested(),
		})
		if err != nil {
			return nil, fmt.Errorf("scenario facility-run: trace runtime: %w", err)
		}
		defer rt.Close()
		break
	}
	jobs, err := w.Generate(rt)
	if err != nil {
		return nil, fmt.Errorf("scenario facility-run: %w", err)
	}
	return facility.Run(facility.Config{Policy: pol, Alloc: al, Trace: rt}, jobs)
}

// FacilityStream runs the policy x allocator sweep twice and reports
// the first pass plus whether the second reproduced it byte-identically.
func FacilityStream() (*FacilityStreamReport, error) {
	rep, err := facilityStreamOnce()
	if err != nil {
		return nil, err
	}
	again, err := facilityStreamOnce()
	if err != nil {
		return nil, err
	}
	rep.Deterministic = reflect.DeepEqual(rep.Points, again.Points)
	return rep, nil
}

// facilityStreamOnce captures the trace, generates the mix and runs
// every (policy, allocator) combination.
func facilityStreamOnce() (*FacilityStreamReport, error) {
	tr, err := CaptureFacilityTrace()
	if err != nil {
		return nil, err
	}
	rt, err := facility.NewTraceRuntime(tr, trace.ReplayConfig{
		Fabric:  newFabric(),
		Profile: ib.OpenMPI(),
		Policy:  transport.Congested(),
	})
	if err != nil {
		return nil, fmt.Errorf("scenario facility-stream: trace runtime: %w", err)
	}
	defer rt.Close()

	w := FacilityWorkload()
	jobs, err := w.Generate(rt)
	if err != nil {
		return nil, fmt.Errorf("scenario facility-stream: %w", err)
	}
	rep := &FacilityStreamReport{
		Workload:       w.Name,
		Jobs:           len(jobs),
		MachineNodes:   facility.FullMachineCUs * params.NodesPerCU,
		TraceName:      tr.Meta.Name,
		TraceRanks:     rt.Ranks(),
		TraceReference: rt.Reference(),
	}
	for _, pname := range FacilityPolicyNames {
		pol, err := facility.NewPolicy(pname)
		if err != nil {
			return nil, err
		}
		for _, aname := range FacilityAllocNames {
			al, err := facility.NewAllocator(aname, FacilitySeed)
			if err != nil {
				return nil, err
			}
			res, err := facility.Run(facility.Config{Policy: pol, Alloc: al, Trace: rt}, jobs)
			if err != nil {
				return nil, fmt.Errorf("scenario facility-stream: %s/%s: %w", pname, aname, err)
			}
			rep.Points = append(rep.Points, summarizeFacility(res))
		}
	}
	return rep, nil
}

// summarizeFacility flattens one run into its sweep point.
func summarizeFacility(res *facility.Result) FacilityPoint {
	p := FacilityPoint{
		Policy:            res.Policy,
		Alloc:             res.Alloc,
		UtilizationFrac:   res.Utilization,
		Utilization:       units.Time(float64(res.Makespan) * res.Utilization),
		MeanWait:          res.MeanWait,
		P95Wait:           res.P95Wait,
		MeanSlowdown:      res.MeanSlowdown,
		MeanFragmentation: res.MeanFragmentation,
		Makespan:          res.Makespan,
		OracleMakespan:    res.OracleMakespan,
		OracleRatio:       res.OracleRatio,
		Backfilled:        res.Backfilled,
	}
	firstID := -1
	for _, j := range res.Jobs {
		if j.Nodes <= res.PerCU && j.CUsSpanned > p.MaxCUsSpannedSmall {
			p.MaxCUsSpannedSmall = j.CUsSpanned
		}
		if j.Class == facility.ClassTrace.String() {
			p.TraceRuntimeTotal += j.Runtime
			if firstID == -1 || j.ID < firstID {
				firstID = j.ID
				p.FirstTraceRuntime = j.Runtime
			}
		}
	}
	return p
}

// FacilityPointFor returns the sweep point of one (policy, allocator)
// combination.
func (r *FacilityStreamReport) FacilityPointFor(policy, alloc string) (FacilityPoint, error) {
	for _, p := range r.Points {
		if p.Policy == policy && p.Alloc == alloc {
			return p, nil
		}
	}
	return FacilityPoint{}, fmt.Errorf("scenario facility-stream: no point for %s/%s", policy, alloc)
}
