package scenario

import (
	"testing"
)

// TestFacilityStream runs the full sweep once and pins the operational
// laws the experiment asserts: backfill cuts queue wait without losing
// the makespan race, CU packing keeps fragmentation below scattering,
// and the assisted allocator never prices a trace job worse than the
// linear walk of the same grant.
func TestFacilityStream(t *testing.T) {
	if testing.Short() {
		t.Skip("captures a Sweep3D trace and runs 12 facility simulations")
	}
	rep, err := FacilityStream()
	if err != nil {
		t.Fatalf("facility stream: %v", err)
	}
	if !rep.Deterministic {
		t.Error("second sweep not byte-identical")
	}
	if len(rep.Points) != len(FacilityPolicyNames)*len(FacilityAllocNames) {
		t.Fatalf("%d points, want %d", len(rep.Points), len(FacilityPolicyNames)*len(FacilityAllocNames))
	}
	for _, p := range rep.Points {
		if p.UtilizationFrac <= 0 || p.UtilizationFrac > 1 {
			t.Errorf("%s/%s: utilization %v", p.Policy, p.Alloc, p.UtilizationFrac)
		}
		if p.OracleRatio < 1 {
			t.Errorf("%s/%s: makespan %v beats the oracle %v", p.Policy, p.Alloc, p.Makespan, p.OracleMakespan)
		}
	}
	for _, alloc := range []string{"contiguous", "scattered"} {
		fcfs, err := rep.FacilityPointFor("fcfs", alloc)
		if err != nil {
			t.Fatal(err)
		}
		easy, err := rep.FacilityPointFor("easy", alloc)
		if err != nil {
			t.Fatal(err)
		}
		if easy.MeanWait >= fcfs.MeanWait {
			t.Errorf("%s: easy mean wait %v not below fcfs %v", alloc, easy.MeanWait, fcfs.MeanWait)
		}
		if easy.Backfilled == 0 {
			t.Errorf("%s: easy backfilled nothing", alloc)
		}
		if fcfs.Backfilled != 0 {
			t.Errorf("%s: fcfs backfilled %d jobs", alloc, fcfs.Backfilled)
		}
	}
	for _, policy := range FacilityPolicyNames {
		cont, err := rep.FacilityPointFor(policy, "contiguous")
		if err != nil {
			t.Fatal(err)
		}
		scat, err := rep.FacilityPointFor(policy, "scattered")
		if err != nil {
			t.Fatal(err)
		}
		if cont.MeanFragmentation >= scat.MeanFragmentation {
			t.Errorf("%s: contiguous fragmentation %v not below scattered %v",
				policy, cont.MeanFragmentation, scat.MeanFragmentation)
		}
		if cont.MaxCUsSpannedSmall != 1 {
			t.Errorf("%s: contiguous single-CU job spans %d CUs", policy, cont.MaxCUsSpannedSmall)
		}
		assisted, err := rep.FacilityPointFor(policy, "assisted")
		if err != nil {
			t.Fatal(err)
		}
		if assisted.FirstTraceRuntime > cont.FirstTraceRuntime {
			t.Errorf("%s: assisted first trace job %v slower than linear %v",
				policy, assisted.FirstTraceRuntime, cont.FirstTraceRuntime)
		}
	}
}
