package scenario

import (
	"fmt"
	"runtime"
	"strconv"
	"sync/atomic"
)

// The scenario sweeps run their independent simulations — separate
// (op, communicator, fabric-policy) points, replay placements — as
// domains of a sim.Cluster, spread across cores. Results are
// byte-identical at any worker count (pinned by the orchestrator's
// serial ≡ parallel suite and the pdes-smoke CI job); the knob exists so
// the CLIs' -pdes=off flag can force the plain serial engine path.
var pdesWorkers atomic.Int32 // 0 = auto (NumCPU); 1 = serial escape hatch

// SetParallel sets how many workers the sweeps' parallel-DES runs use:
// 0 restores auto (one per CPU), 1 forces the serial engine path
// (the -pdes=off escape hatch), higher values pin a worker count.
func SetParallel(workers int) {
	if workers < 0 {
		workers = 0
	}
	pdesWorkers.Store(int32(workers))
}

// ParallelWorkers returns the effective worker count for parallel-DES
// sweeps. Auto follows GOMAXPROCS, not the raw CPU count, so
// GOMAXPROCS=1 environments (the pdes-smoke CI job's serial leg) get
// the serial path without touching the flag.
func ParallelWorkers() int {
	if w := pdesWorkers.Load(); w > 0 {
		return int(w)
	}
	return runtime.GOMAXPROCS(0)
}

// ApplyPDESFlag parses the CLIs' shared -pdes value: "off" forces the
// serial engine path (the escape hatch), "auto" (or "") sizes the
// worker pool to GOMAXPROCS, and a positive integer pins the worker
// count. Any setting changes wall clock only, never results.
func ApplyPDESFlag(v string) error {
	switch v {
	case "off":
		SetParallel(1)
	case "auto", "":
		SetParallel(0)
	default:
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			return fmt.Errorf("bad -pdes value %q: want off, auto or a positive worker count", v)
		}
		SetParallel(n)
	}
	return nil
}
