package scenario

import (
	"reflect"
	"testing"
)

// TestSweepsParallelMatchSerial pins the scenario layer's parallel-DES
// contract end to end: the saturation and trace-replay sweeps produce
// byte-identical reports under the serial escape hatch (SetParallel(1),
// the CLIs' -pdes=off) and under an explicit multi-worker pool — the
// same equivalence the pdes-smoke CI job checks on the full artifacts.
func TestSweepsParallelMatchSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("four full sweeps")
	}
	defer SetParallel(0)

	SetParallel(1)
	satSerial, err := SaturationSubset([]int{64})
	if err != nil {
		t.Fatalf("serial saturation: %v", err)
	}
	trSerial, err := TraceReplay()
	if err != nil {
		t.Fatalf("serial trace-replay: %v", err)
	}

	SetParallel(4)
	satParallel, err := SaturationSubset([]int{64})
	if err != nil {
		t.Fatalf("parallel saturation: %v", err)
	}
	trParallel, err := TraceReplay()
	if err != nil {
		t.Fatalf("parallel trace-replay: %v", err)
	}

	if !reflect.DeepEqual(satSerial, satParallel) {
		t.Errorf("saturation sweep differs between serial and 4 workers\nserial:   %+v\nparallel: %+v",
			satSerial, satParallel)
	}
	if !reflect.DeepEqual(trSerial, trParallel) {
		t.Errorf("trace-replay sweep differs between serial and 4 workers\nserial:   %+v\nparallel: %+v",
			trSerial, trParallel)
	}
}
