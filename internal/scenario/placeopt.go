package scenario

import (
	"fmt"
	"reflect"

	"roadrunner/internal/ib"
	"roadrunner/internal/placement"
	"roadrunner/internal/trace"
	"roadrunner/internal/transport"
	"roadrunner/internal/units"
)

// The place-optimize scenario turns PR 4's placement observation into a
// search: the captured Sweep3D iteration's communication-only schedule
// (compute records stripped, congested wormhole fabric) is the
// objective — the configuration where placement effects show undamped,
// and where hop counts famously mispredict (packed has the fewest hops
// and the slowest schedule) — and the optimizer anneals rank→node
// mappings against it, seeded with the block/strided/packed baselines.
// The batch evaluator makes the search affordable: hundreds of replays
// at a few milliseconds each instead of one-shot replays at ~5x the
// cost.

// PlaceOptimizeSeed fixes the optimizer's random stream; the scenario
// is deterministic end to end.
const PlaceOptimizeSeed = 42

// placeOptimizeBudget is the scenario's search shape: modest enough for
// the orchestrator suite (including the race-instrumented run), big
// enough that both phases do real work.
var placeOptimizeBudget = placement.Config{
	GreedyRounds: 4,
	GreedyBatch:  16,
	AnnealRounds: 4,
	AnnealBatch:  16,
}

// PlaceOptimizeReport is the scenario's outcome.
type PlaceOptimizeReport struct {
	TraceName string
	Ranks     int
	Sends     int
	Objective string
	// Baselines are the seed mappings' objective values (comm-only
	// congested makespans), with their mean send hop counts.
	Baselines    []placement.BaselinePoint
	BaselineHops map[string]float64
	// Start is the baseline the search grew from; Best the winner.
	Start       string
	StartTime   units.Time
	BestTime    units.Time
	Improvement float64
	WinnerHops  float64
	Evaluations int
	Rounds      []placement.RoundStat
	// Deterministic reports that a serial (Workers: 1) run returned a
	// byte-identical result to the parallel run the report carries.
	Deterministic bool
	// The winner replayed once more with full observers under the
	// objective configuration: Reevaluated pins that the pooled search
	// and a fresh observed replay agree exactly, and the census shows
	// what the winning mapping does to the fabric.
	Reevaluated  units.Time
	WinnerCensus *transport.Census
	WinnerWire   units.Size
	// Winner is the optimized rank→node mapping itself.
	Winner []transport.Endpoint
}

// PlaceOptimize captures the canonical Sweep3D trace and searches
// placements for its communication schedule.
func PlaceOptimize() (*PlaceOptimizeReport, error) {
	tr, _, err := CaptureSweep3DTrace()
	if err != nil {
		return nil, err
	}
	return PlaceOptimizeTrace(tr)
}

// PlaceOptimizeTrace runs the placement search over an already captured
// (or loaded) trace.
func PlaceOptimizeTrace(tr *trace.Trace) (*PlaceOptimizeReport, error) {
	fab := newFabric()
	starts := make([]placement.Start, 0, len(TraceReplayPlacementNames))
	for _, name := range TraceReplayPlacementNames {
		places, err := traceReplayPlaces(name, fab, tr.Meta.Ranks)
		if err != nil {
			return nil, err
		}
		starts = append(starts, placement.Start{Name: name, Places: places})
	}
	cfg := placeOptimizeBudget
	cfg.Trace = tr
	cfg.Replay = trace.ReplayConfig{
		Fabric:      fab,
		Profile:     ib.OpenMPI(),
		Policy:      transport.Congested(),
		SkipCompute: true,
	}
	cfg.Starts = starts
	cfg.Seed = PlaceOptimizeSeed

	res, err := placement.Optimize(cfg)
	if err != nil {
		return nil, fmt.Errorf("scenario place-optimize: %w", err)
	}
	// The same search serially: the determinism contract the optimizer
	// documents, checked on the real workload inside the suite.
	serialCfg := cfg
	serialCfg.Workers = 1
	serial, err := placement.Optimize(serialCfg)
	if err != nil {
		return nil, fmt.Errorf("scenario place-optimize: serial run: %w", err)
	}
	// Wall-clock is the one legitimately nondeterministic part of a
	// result; strip it before the byte-identity comparison.
	res.Trajectory = res.Trajectory.WallFree()
	serial.Trajectory = serial.Trajectory.WallFree()

	s := tr.Stats()
	rep := &PlaceOptimizeReport{
		TraceName:     tr.Meta.Name,
		Ranks:         tr.Meta.Ranks,
		Sends:         s.Sends,
		Objective:     "communication-only makespan, congested wormhole fabric",
		Baselines:     res.Baselines,
		BaselineHops:  make(map[string]float64, len(starts)),
		Start:         res.Start,
		StartTime:     res.StartTime,
		BestTime:      res.BestTime,
		Improvement:   res.Improvement,
		WinnerHops:    meanSendHops(tr, fab, res.Best),
		Evaluations:   res.Evaluations,
		Rounds:        res.Rounds,
		Deterministic: reflect.DeepEqual(res, serial),
		Winner:        res.Best,
	}
	for _, st := range starts {
		rep.BaselineHops[st.Name] = meanSendHops(tr, fab, st.Places)
	}

	// Replay the winner once more with the observers on: the pooled
	// search's makespan must reproduce exactly, and the census shows
	// where the winning mapping leaves the fabric.
	obs := cfg.Replay
	obs.Places = res.Best
	obs.Observe = trace.ObserveCensus
	final, err := trace.Replay(tr, obs)
	if err != nil {
		return nil, fmt.Errorf("scenario place-optimize: winner replay: %w", err)
	}
	rep.Reevaluated = final.Time
	rep.WinnerCensus = final.Congestion
	rep.WinnerWire = final.WireBytes
	return rep, nil
}
