package scenario

import (
	"sync"
	"testing"
)

var placeOptimizeOnce = sync.OnceValues(func() (*PlaceOptimizeReport, error) {
	return PlaceOptimize()
})

func TestPlaceOptimizeContract(t *testing.T) {
	rep, err := placeOptimizeOnce()
	if err != nil {
		t.Fatalf("PlaceOptimize: %v", err)
	}
	if rep.Ranks != TraceReplayPx*TraceReplayPy || rep.Sends == 0 {
		t.Fatalf("trace shape %+v", rep)
	}
	if len(rep.Baselines) != len(TraceReplayPlacementNames) {
		t.Fatalf("%d baselines for %d placements", len(rep.Baselines), len(TraceReplayPlacementNames))
	}
	for _, b := range rep.Baselines {
		if b.Time <= 0 {
			t.Errorf("baseline %s empty: %v", b.Name, b.Time)
		}
		if rep.BestTime > b.Time {
			t.Errorf("winner %v worse than baseline %s %v", rep.BestTime, b.Name, b.Time)
		}
		if _, ok := rep.BaselineHops[b.Name]; !ok {
			t.Errorf("baseline %s has no hop count", b.Name)
		}
	}
	if !rep.Deterministic {
		t.Error("serial and parallel optimizer runs diverged")
	}
	if rep.Reevaluated != rep.BestTime {
		t.Errorf("pooled objective %v, fresh observed replay %v", rep.BestTime, rep.Reevaluated)
	}
	if rep.WinnerCensus == nil {
		t.Error("winner census missing")
	}
	if len(rep.Winner) != rep.Ranks {
		t.Errorf("winner covers %d of %d ranks", len(rep.Winner), rep.Ranks)
	}
	if rep.Improvement < 1 {
		t.Errorf("improvement %.4f < 1", rep.Improvement)
	}
	if rep.Evaluations <= len(rep.Baselines) || len(rep.Rounds) < 2 {
		t.Errorf("search did no work: %d evaluations, %d rounds", rep.Evaluations, len(rep.Rounds))
	}
}
