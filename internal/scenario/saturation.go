package scenario

import (
	"fmt"

	"roadrunner/internal/collectives"
	"roadrunner/internal/transport"
	"roadrunner/internal/units"
)

// The saturation sweep is the congestion counterpart of the PR 2 sweeps:
// the dense exchanges run twice per communicator size — once on the
// congested fabric (wormhole channels, concurrent flows on one cable
// serialize) and once on the infinite-capacity fabric of the legacy
// latency model — and the ratio locates where the reduced fat tree's 2:1
// taper saturates. Pairwise alltoall pushes every CU's 180 node flows
// over its 96 uplink cables and throttles hard once the communicator
// spans CUs; ring allgather moves the same bytes but only ever to a
// neighbor, so it rides the taper untouched — the contrast the
// Roadrunner designers engineered the reduced tree around.

// SaturationPoint is one (operation, communicator) measurement of the
// congestion sweep.
type SaturationPoint struct {
	Op    collectives.Op
	Nodes int
	Size  units.Size
	// Congested is the completion time on the wormhole fabric, Baseline
	// on the infinite-capacity fabric (the PR 2 model), and Slowdown
	// their ratio.
	Congested units.Time
	Baseline  units.Time
	Slowdown  float64
	// Queueing totals from the congested run's link census, with the
	// 2:1-tapered uplink tier broken out so taper pressure is
	// distinguishable from middle-stage switch contention.
	QueuedFlows  int64
	TotalWait    units.Time
	UplinkQueued int64
	UplinkWait   units.Time
	// Top holds the congested run's most contended links, hottest
	// first; TopUplinks the hottest uplink cables specifically.
	Top        []transport.LinkUsage
	TopUplinks []transport.LinkUsage
	// Messages and Events describe the congested run's cost.
	Messages int64
	Events   int64
}

// String renders the point on one line.
func (p SaturationPoint) String() string {
	return fmt.Sprintf("coll-saturation %s nodes=%d: congested %v vs %v (%.2fx, wait %v)",
		p.Op, p.Nodes, p.Congested, p.Baseline, p.Slowdown, p.TotalWait)
}

// SaturationNodeCounts are the communicator sizes of the congestion
// sweep: one crossbar, one CU, then CU multiples to the full machine.
var SaturationNodeCounts = []int{8, 64, 180, 360, 720, 3060}

// SaturationOps are the dense exchanges the sweep stresses the taper
// with.
var SaturationOps = []collectives.Op{
	collectives.AlltoallPairwise,
	collectives.AllgatherRing,
}

// SaturationSize is the per-block payload: one HCA chunk, large enough
// that streaming (and therefore cable occupancy) dominates the software
// overheads.
const SaturationSize = 64 * units.KB

// assemblePoint folds one point's base and congested Results into its
// SaturationPoint.
func assemblePoint(op collectives.Op, nodes int, base, cong *collectives.Result) SaturationPoint {
	p := SaturationPoint{
		Op:        op,
		Nodes:     nodes,
		Size:      SaturationSize,
		Congested: cong.Time,
		Baseline:  base.Time,
		Slowdown:  float64(cong.Time) / float64(base.Time),
		Messages:  cong.Messages,
		Events:    cong.EngineStats.Dispatched,
	}
	if c := cong.Congestion; c != nil {
		p.QueuedFlows = c.Queued
		p.TotalWait = c.TotalWait
		p.UplinkQueued = c.UplinkQueued
		p.UplinkWait = c.UplinkWait
		p.Top = c.Top
		p.TopUplinks = c.TopUplinks
	}
	return p
}

// Saturation runs the congestion sweep: every saturation op at every
// communicator size, congested vs infinite-capacity fabric. This is the
// most expensive sweep in the repository — the full-machine alltoall
// alone is ~9.4M messages per fabric — so callers that only need the
// shape of the curve should use SaturationSubset.
func Saturation() ([]SaturationPoint, error) {
	return saturationSweep(SaturationNodeCounts)
}

// SaturationSubset runs the sweep over the given communicator sizes
// only, in the given order.
func SaturationSubset(nodeCounts []int) ([]SaturationPoint, error) {
	return saturationSweep(nodeCounts)
}

// saturationSweep measures every (op, communicator) point on both
// fabrics. Each of the sweep's runs is an independent simulation, so
// they execute as domains of a sim.Cluster across ParallelWorkers()
// cores — the full-machine congested alltoall overlaps the other 23
// runs instead of following them — with results byte-identical to the
// serial loop, which SetParallel(1) (the CLIs' -pdes=off) still takes
// verbatim.
func saturationSweep(nodeCounts []int) ([]SaturationPoint, error) {
	var reqs []collectives.Request
	for _, op := range SaturationOps {
		for _, n := range nodeCounts {
			baseCfg, err := collectives.DefaultConfigOn(TopologyName(), n)
			if err != nil {
				return nil, fmt.Errorf("scenario coll-saturation: %w", err)
			}
			congCfg, err := collectives.CongestedConfigOn(TopologyName(), n)
			if err != nil {
				return nil, fmt.Errorf("scenario coll-saturation: %w", err)
			}
			reqs = append(reqs,
				collectives.Request{Cfg: baseCfg, Op: op, Size: SaturationSize},
				collectives.Request{Cfg: congCfg, Op: op, Size: SaturationSize})
		}
	}
	results := make([]*collectives.Result, len(reqs))
	if workers := ParallelWorkers(); workers > 1 {
		rs, err := collectives.RunMany(reqs, workers)
		if err != nil {
			return nil, fmt.Errorf("scenario coll-saturation: %w", err)
		}
		copy(results, rs)
	} else {
		// Serial escape hatch: the plain single-engine loop.
		for i, rq := range reqs {
			r, err := collectives.Run(rq.Cfg, rq.Op, rq.Size)
			if err != nil {
				return nil, fmt.Errorf("scenario coll-saturation: %w", err)
			}
			results[i] = r
		}
	}
	var out []SaturationPoint
	i := 0
	for _, op := range SaturationOps {
		for _, n := range nodeCounts {
			out = append(out, assemblePoint(op, n, results[i], results[i+1]))
			i += 2
		}
	}
	return out, nil
}
