package scenario

import (
	"fmt"
	"testing"

	"roadrunner/internal/fabric"
)

// TestSaturationSubsetShape pins the sweep's shape on a cheap subset:
// the taper is invisible inside one crossbar, throttles the cross-CU
// alltoall, and never touches the neighbor-only allgather ring.
func TestSaturationSubsetShape(t *testing.T) {
	points, err := SaturationSubset([]int{8, 360})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("got %d points", len(points))
	}
	byKey := map[string]SaturationPoint{}
	for _, p := range points {
		byKey[fmt.Sprintf("%s/%d", p.Op, p.Nodes)] = p
	}
	a8 := byKey["alltoall-pairwise/8"]
	if a8.Slowdown < 0.999 || a8.Slowdown > 1.01 || a8.QueuedFlows != 0 {
		t.Errorf("single-crossbar alltoall: %+v, want slowdown ~1 with no queueing", a8)
	}
	a360 := byKey["alltoall-pairwise/360"]
	if a360.Slowdown < 1.5 {
		t.Errorf("cross-CU alltoall slowdown = %.2f, want > 1.5", a360.Slowdown)
	}
	if len(a360.Top) == 0 || a360.Top[0].Link.Kind != fabric.LinkUplink {
		t.Errorf("cross-CU alltoall hottest link = %+v, want an uplink", a360.Top)
	}
	for _, n := range []string{"8", "360"} {
		g := byKey["allgather-ring/"+n]
		if g.Slowdown < 0.999 || g.Slowdown > 1.1 {
			t.Errorf("allgather at %s nodes: slowdown %.3f, want ~1 (neighbor traffic)", n, g.Slowdown)
		}
	}
}

// TestSaturationDeterministic pins byte-identical reruns of a congested
// sweep point.
func TestSaturationDeterministic(t *testing.T) {
	pa, err := SaturationSubset([]int{360})
	if err != nil {
		t.Fatal(err)
	}
	pb, err := SaturationSubset([]int{360})
	if err != nil {
		t.Fatal(err)
	}
	a, b := pa[0], pb[0]
	if a.Congested != b.Congested || a.Baseline != b.Baseline ||
		a.TotalWait != b.TotalWait || a.QueuedFlows != b.QueuedFlows {
		t.Fatalf("rerun diverged: %+v vs %+v", a, b)
	}
	for i := range a.Top {
		if a.Top[i] != b.Top[i] {
			t.Errorf("top link %d diverged: %v vs %v", i, a.Top[i], b.Top[i])
		}
	}
}
