// Package scenario composes the collective engine into machine-scaling
// sweeps: the same collective run across communicator sizes from one
// crossbar (8 nodes) to the full 17-CU machine, across the algorithm
// repertoire, and across message-size regimes. Each sweep is a pure
// function of the calibrated models — deterministic, cacheable, and
// registered as experiments by internal/experiments — turning the repo
// from single-pair microbenchmarks into a scenario engine for the whole
// fabric.
package scenario

import (
	"fmt"

	"roadrunner/internal/collectives"
	"roadrunner/internal/ib"
	"roadrunner/internal/linpack"
	"roadrunner/internal/machine"
	"roadrunner/internal/units"
)

// Point is one collective measurement inside a sweep.
type Point struct {
	Scenario  string
	Op        collectives.Op
	Nodes     int // nodes the communicator spans
	Ranks     int
	Size      units.Size
	Time      units.Time
	Bandwidth units.Bandwidth
	Messages  int64
	WireBytes units.Size
	Events    int64 // DES events dispatched producing this point
}

// String renders the point on one line.
func (p Point) String() string {
	return fmt.Sprintf("%s %s ranks=%d size=%v: %v (%d msgs)",
		p.Scenario, p.Op, p.Ranks, p.Size, p.Time, p.Messages)
}

// runPoint executes one collective over the canonical communicator for
// the rank count (collectives.DefaultConfig: one rank per node on a
// near core, smallest fabric that holds them).
func runPoint(name string, op collectives.Op, ranks int, size units.Size) (Point, error) {
	cfg, err := collectives.DefaultConfigOn(TopologyName(), ranks)
	if err != nil {
		return Point{}, fmt.Errorf("scenario %s: %w", name, err)
	}
	res, err := collectives.Run(cfg, op, size)
	if err != nil {
		return Point{}, fmt.Errorf("scenario %s: %w", name, err)
	}
	return Point{
		Scenario:  name,
		Op:        op,
		Nodes:     ranks,
		Ranks:     ranks,
		Size:      size,
		Time:      res.Time,
		Bandwidth: res.Bandwidth(),
		Messages:  res.Messages,
		WireBytes: res.WireBytes,
		Events:    res.EngineStats.Dispatched,
	}, nil
}

// ScalingNodeCounts are the communicator sizes of the latency-scaling
// sweep: one crossbar, one CU, multiples of CUs, the full machine.
var ScalingNodeCounts = []int{8, 16, 32, 64, 128, 180, 360, 720, 1530, 3060}

// ScalingOps are the latency-bound collectives swept across the machine.
var ScalingOps = []collectives.Op{
	collectives.BarrierRecursiveDoubling,
	collectives.BcastBinomial,
	collectives.AllreduceRecursiveDoubling,
}

// scalingSize keeps the scaling sweep in the hop-limited regime: an
// 8-byte payload, the classic latency microbenchmark point.
const scalingSize = 8 * units.Byte

// LatencyScaling sweeps the latency-bound collectives from one crossbar
// to all 3,060 nodes at an 8-byte payload. In this regime every
// algorithm is rounds × (software overhead + hop latency), so time
// grows as ceil(log2 P) stretched by the hop profile of the fat tree.
func LatencyScaling() ([]Point, error) {
	var out []Point
	for _, op := range ScalingOps {
		for _, n := range ScalingNodeCounts {
			p, err := runPoint("latency-scaling", op, n, scalingSize)
			if err != nil {
				return nil, err
			}
			out = append(out, p)
		}
	}
	return out, nil
}

// CrossoverRanks is the communicator size of the algorithm-crossover
// sweep (one rank per node, inside one CU).
const CrossoverRanks = 64

// CrossoverSizes spans the latency-to-bandwidth transition.
var CrossoverSizes = []units.Size{
	64 * units.Byte, 1 * units.KB, 8 * units.KB,
	64 * units.KB, 512 * units.KB, 4 * units.MB,
}

// CrossoverOps are the allreduce algorithms compared size by size.
var CrossoverOps = []collectives.Op{
	collectives.AllreduceRecursiveDoubling,
	collectives.AllreduceRabenseifner,
	collectives.AllreduceRing,
}

// AllreduceCrossover sweeps the three allreduce algorithms across
// message sizes at a fixed communicator: recursive doubling wins the
// latency regime, the ring wins the bandwidth regime, Rabenseifner sits
// between — the crossover an MPI's algorithm selector keys on.
func AllreduceCrossover() ([]Point, error) {
	var out []Point
	for _, op := range CrossoverOps {
		for _, s := range CrossoverSizes {
			p, err := runPoint("allreduce-crossover", op, CrossoverRanks, s)
			if err != nil {
				return nil, err
			}
			out = append(out, p)
		}
	}
	return out, nil
}

// CrossoverSize returns the smallest swept size at which candidate beats
// baseline, or 0 if it never does.
func CrossoverSize(points []Point, baseline, candidate collectives.Op) units.Size {
	byKey := map[string]units.Time{}
	for _, p := range points {
		byKey[fmt.Sprintf("%s/%d", p.Op, p.Size)] = p.Time
	}
	for _, s := range CrossoverSizes {
		b, okB := byKey[fmt.Sprintf("%s/%d", baseline, s)]
		c, okC := byKey[fmt.Sprintf("%s/%d", candidate, s)]
		if okB && okC && c < b {
			return s
		}
	}
	return 0
}

// ExchangeRankCounts are the communicator sizes of the dense-exchange
// sweep, from one crossbar to a whole CU.
var ExchangeRankCounts = []int{8, 16, 32, 64, 128, 180}

// exchangeSize is the per-block payload of the dense-exchange sweep.
const exchangeSize = 4 * units.KB

// CUExchange sweeps the dense collectives (ring allgather and pairwise
// alltoall) within a single CU: total traffic grows linearly in P per
// rank, so these are the operations that stress crossbar ports rather
// than tree depth.
func CUExchange() ([]Point, error) {
	var out []Point
	for _, op := range []collectives.Op{collectives.AllgatherRing, collectives.AlltoallPairwise} {
		for _, n := range ExchangeRankCounts {
			p, err := runPoint("cu-exchange", op, n, exchangeSize)
			if err != nil {
				return nil, err
			}
			out = append(out, p)
		}
	}
	return out, nil
}

// PanelBroadcastResult is the LINPACK panel-broadcast scenario: one DES
// measurement of the broadcast HPL issues per panel, scaled to the whole
// factorisation by the linpack phase model.
type PanelBroadcastResult struct {
	Spec       linpack.PanelBroadcast
	RowRanks   int        // broadcast communicator size (grid columns)
	PanelBytes units.Size // payload of one mid-factorisation panel
	// BinomialPerPanel is the DES-measured binomial-tree broadcast of
	// one panel across a process row spread over the machine.
	BinomialPerPanel units.Time
	// PipelinedPerPanel is the analytic ring/segmented lower bound.
	PipelinedPerPanel units.Time
	// Fractions of the factorisation's runtime each variant would cost
	// unoverlapped, against the measured sustained rate.
	BinomialFraction  float64
	PipelinedFraction float64
	Sustained         units.Flops
	Events            int64
}

// PanelBroadcast runs the LINPACK panel-broadcast scenario on the full
// machine: a process row of the 51×60 grid is a stride-51 walk across
// the nodes, and the mid-factorisation panel is broadcast over it with
// the binomial tree. Comparing the resulting runtime fraction with the
// hybrid model's OverlapLoss shows why HPL pipelines its long
// broadcasts instead of using the latency-optimal tree.
func PanelBroadcast() (*PanelBroadcastResult, error) {
	spec := linpack.RoadrunnerPanelBroadcast()
	fab := newFabric()
	prof := ib.OpenMPI()
	cfg := collectives.Config{
		Fabric:  fab,
		Profile: prof,
		Places:  collectives.StridedPlacement(fab, spec.GridCols, spec.RowStride(), 1),
	}
	res, err := collectives.Run(cfg, collectives.BcastBinomial, spec.PanelBytes())
	if err != nil {
		return nil, fmt.Errorf("scenario panel-broadcast: %w", err)
	}
	sys := machine.New(machine.Full())
	sustained := sys.LinpackSustained(linpack.RoadrunnerHPL().Efficiency())
	pipelined := spec.PipelinedPerPanel(prof.NearBandwidth)
	return &PanelBroadcastResult{
		Spec:              spec,
		RowRanks:          spec.GridCols,
		PanelBytes:        spec.PanelBytes(),
		BinomialPerPanel:  res.Time,
		PipelinedPerPanel: pipelined,
		BinomialFraction:  spec.BroadcastFraction(res.Time, sustained),
		PipelinedFraction: spec.BroadcastFraction(pipelined, sustained),
		Sustained:         sustained,
		Events:            res.EngineStats.Dispatched,
	}, nil
}
