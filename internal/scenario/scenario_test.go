package scenario

import (
	"testing"

	"roadrunner/internal/collectives"
	"roadrunner/internal/linpack"
	"roadrunner/internal/units"
)

func TestRunPointDeterministic(t *testing.T) {
	a, err := runPoint("t", collectives.BcastBinomial, 32, 1*units.KB)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runPoint("t", collectives.BcastBinomial, 32, 1*units.KB)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("rerun diverged: %v vs %v", a, b)
	}
	if a.Time <= 0 || a.Messages != 31 || a.Events <= 0 {
		t.Errorf("implausible point: %+v", a)
	}
}

func TestCrossoverDetection(t *testing.T) {
	// Synthetic points: candidate overtakes baseline at 64KB.
	mk := func(op collectives.Op, size units.Size, us float64) Point {
		return Point{Op: op, Size: size, Time: units.FromMicroseconds(us)}
	}
	rd, ring := collectives.AllreduceRecursiveDoubling, collectives.AllreduceRing
	points := []Point{
		mk(rd, 64*units.Byte, 10), mk(ring, 64*units.Byte, 50),
		mk(rd, 64*units.KB, 100), mk(ring, 64*units.KB, 60),
	}
	if got := CrossoverSize(points, rd, ring); got != 64*units.KB {
		t.Errorf("crossover = %v, want 64KB", got)
	}
	if got := CrossoverSize(points[:2], rd, ring); got != 0 {
		t.Errorf("no-crossover = %v, want 0", got)
	}
}

func TestCUExchangeScalesLinearly(t *testing.T) {
	// A reduced version of the sweep: pairwise alltoall traffic grows
	// linearly in P per rank, so 4x the ranks is >3x the time.
	p8, err := runPoint("t", collectives.AlltoallPairwise, 8, exchangeSize)
	if err != nil {
		t.Fatal(err)
	}
	p32, err := runPoint("t", collectives.AlltoallPairwise, 32, exchangeSize)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(p32.Time) / float64(p8.Time); ratio < 3 || ratio > 10 {
		t.Errorf("alltoall time(32)/time(8) = %.2f, want ~31/7", ratio)
	}
}

func TestPanelBroadcastScenario(t *testing.T) {
	res, err := PanelBroadcast()
	if err != nil {
		t.Fatal(err)
	}
	if res.RowRanks != 60 {
		t.Errorf("row ranks = %d", res.RowRanks)
	}
	// ~23 MB panels: N/2/51 rows × 128 cols × 8 B.
	if mb := res.PanelBytes.MBytes(); mb < 20 || mb > 26 {
		t.Errorf("panel = %.1f MB", mb)
	}
	if res.BinomialPerPanel <= res.PipelinedPerPanel {
		t.Error("binomial tree cannot beat the pipelined lower bound")
	}
	// The overlap budget of the calibrated hybrid model covers a
	// pipelined broadcast but not the binomial tree.
	loss := linpack.RoadrunnerHPL().OverlapLoss
	if res.PipelinedFraction >= loss {
		t.Errorf("pipelined fraction %.3f >= overlap loss %.3f", res.PipelinedFraction, loss)
	}
	if res.BinomialFraction <= loss {
		t.Errorf("binomial fraction %.3f <= overlap loss %.3f", res.BinomialFraction, loss)
	}
}

func TestLatencyScalingSmallSubset(t *testing.T) {
	// The full sweep runs as an experiment; here spot-check the growth
	// law on a cheap subset: barrier rounds scale ceil(log2 P).
	p8, err := runPoint("t", collectives.BarrierRecursiveDoubling, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	p128, err := runPoint("t", collectives.BarrierRecursiveDoubling, 128, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(p128.Time) / float64(p8.Time); ratio < 1.8 || ratio > 3.5 {
		t.Errorf("barrier time(128)/time(8) = %.2f, want ~7/3 rounds", ratio)
	}
}
