package scenario

import (
	"fmt"
	"math/rand"
	"reflect"
	"time"

	"roadrunner/internal/fabric"
	"roadrunner/internal/ib"
	"roadrunner/internal/placement"
	"roadrunner/internal/surrogate"
	"roadrunner/internal/trace"
	"roadrunner/internal/transport"
	"roadrunner/internal/units"
)

// The surrogate-xval scenario cross-validates the analytic queueing
// surrogate against the DES it screens for, on every registered fabric
// topology: calibrate the surrogate's term weights on a dozen
// DES-replayed anchor placements, then rank a held-out placement set
// with both models and report the Spearman rank correlation. A
// screening tier only needs the ordering right — the absolute times
// stay the DES's job — so rank correlation is the figure of merit.
// The same scenario runs the two-tier search head-to-head against the
// pure-DES search at the same per-round DES budget.

// SurrogateXValSeed drives the anchor and holdout perturbations and the
// two-tier search; the scenario is deterministic end to end.
const SurrogateXValSeed = 20080616

// surrogateAnchorCount and surrogateHoldoutPerturbs shape the
// cross-validation set: anchors are the three baseline mappings plus
// seeded perturbations (the calibration budget a real search would
// spend), the holdout is the baselines plus a fresh, disjointly seeded
// set of perturbations at varied strengths.
const (
	surrogateAnchorCount     = 12
	surrogateHoldoutPerturbs = 18
)

// SurrogateXValPoint is one topology's cross-validation outcome.
type SurrogateXValPoint struct {
	Topology string
	Anchors  int
	Holdout  int
	// Spearman is the rank correlation between the DES's and the
	// calibrated surrogate's ordering of the holdout set.
	Spearman float64
	// Weights are the calibrated term weights (surrogate.FeatureNames
	// order).
	Weights []float64
	// BestAgrees reports that the surrogate puts the DES's best holdout
	// placement in its top three — the decision a screening tier must
	// not miss.
	BestAgrees bool
}

// SurrogateTwoTier is the head-to-head search outcome on the default
// topology: the two-tier (surrogate-screened) optimizer against the
// pure-DES optimizer, same seed, same round shape, same per-round DES
// budget.
type SurrogateTwoTier struct {
	Start        string
	StartTime    units.Time
	PureBest     units.Time
	TwoTierBest  units.Time
	ScreenFactor int
	Anchors      int
	// The DES replays each search spent (unique mappings; the two-tier
	// search pays a one-time calibration budget on top of its rounds)
	// and the candidates the surrogate priced to earn its shortlists.
	PureDESEvals          int
	TwoTierDESEvals       int
	TwoTierSurrogateEvals int
	TwoTierDedupHits      int
	// Deterministic reports that a serial two-tier run returned a
	// byte-identical result (wall-clock stripped) to the parallel one.
	Deterministic bool
}

// SurrogateXValReport is the whole scenario.
type SurrogateXValReport struct {
	TraceName string
	Ranks     int
	Sends     int
	Objective string
	Points    []SurrogateXValPoint
	TwoTier   SurrogateTwoTier
}

// surrogatePerturb applies seeded capacity-preserving rank swaps — the
// optimizer's own move — to a copy of base.
func surrogatePerturb(base []transport.Endpoint, seed int64, swaps int) []transport.Endpoint {
	rng := rand.New(rand.NewSource(seed))
	out := append([]transport.Endpoint(nil), base...)
	for i := 0; i < swaps; i++ {
		a, b := rng.Intn(len(out)), rng.Intn(len(out))
		out[a], out[b] = out[b], out[a]
	}
	return out
}

// surrogateXValConfig is the objective both models price: the captured
// schedule's communication on the congested wormhole fabric, compute
// stripped — the placement optimizer's own objective, where placement
// and congestion effects show undamped. (With compute included the
// holdout set collapses toward ties: Sweep3D's compute dominates the
// makespan and placement moves it by fractions of a percent, so rank
// correlation measures tie-noise instead of screening power.)
func surrogateXValConfig(fab *fabric.System) trace.ReplayConfig {
	return trace.ReplayConfig{
		Fabric: fab, Profile: ib.OpenMPI(), Policy: transport.Congested(), SkipCompute: true,
	}
}

// SurrogateXVal captures the canonical Sweep3D trace and
// cross-validates the surrogate on every registered topology.
func SurrogateXVal() (*SurrogateXValReport, error) {
	tr, _, err := CaptureSweep3DTrace()
	if err != nil {
		return nil, err
	}
	return SurrogateXValTrace(tr)
}

// SurrogateXValTrace runs the cross-validation over an already captured
// (or loaded) trace. Like topo-compare, it ignores the -topology knob:
// the sweep always covers every registered fabric.
func SurrogateXValTrace(tr *trace.Trace) (*SurrogateXValReport, error) {
	s := tr.Stats()
	rep := &SurrogateXValReport{
		TraceName: tr.Meta.Name,
		Ranks:     tr.Meta.Ranks,
		Sends:     s.Sends,
		Objective: "communication-only makespan, congested wormhole fabric",
	}
	for _, name := range fabric.Topologies() {
		fab, err := fabric.NewTopology(name)
		if err != nil {
			return nil, fmt.Errorf("scenario surrogate-xval: %w", err)
		}
		pt, err := surrogateXValOn(tr, fab)
		if err != nil {
			return nil, fmt.Errorf("scenario surrogate-xval: %s: %w", name, err)
		}
		rep.Points = append(rep.Points, *pt)
	}
	tt, err := surrogateTwoTier(tr)
	if err != nil {
		return nil, err
	}
	rep.TwoTier = *tt
	return rep, nil
}

// surrogateXValOn calibrates and cross-validates on one fabric.
func surrogateXValOn(tr *trace.Trace, fab *fabric.System) (*SurrogateXValPoint, error) {
	bases := make([][]transport.Endpoint, 0, len(TraceReplayPlacementNames))
	for _, name := range TraceReplayPlacementNames {
		places, err := traceReplayPlaces(name, fab, tr.Meta.Ranks)
		if err != nil {
			return nil, err
		}
		bases = append(bases, places)
	}

	// Anchors: the baselines plus seeded perturbations round-robin over
	// them. The holdout reuses the baselines but draws its perturbations
	// from a disjoint seed range at varied strengths, so no perturbed
	// anchor reappears.
	anchors := append([][]transport.Endpoint(nil), bases...)
	for s := int64(1); len(anchors) < surrogateAnchorCount; s++ {
		anchors = append(anchors, surrogatePerturb(bases[s%3], SurrogateXValSeed+s, 4))
	}
	holdout := append([][]transport.Endpoint(nil), bases...)
	for s := int64(0); s < surrogateHoldoutPerturbs; s++ {
		holdout = append(holdout, surrogatePerturb(bases[s%3], SurrogateXValSeed+1000+s, 2+int(s%7)))
	}

	cfg := surrogateXValConfig(fab)
	pool, err := trace.NewEvaluatorPool(tr, cfg, ParallelWorkers())
	if err != nil {
		return nil, err
	}
	defer pool.Close()
	all := append(append([][]transport.Endpoint(nil), anchors...), holdout...)
	res, err := pool.EvaluateMany(all, ParallelWorkers())
	if err != nil {
		return nil, err
	}
	atimes := make([]units.Time, len(anchors))
	for i := range anchors {
		atimes[i] = res[i].Time
	}
	dtimes := make([]units.Time, len(holdout))
	for i := range holdout {
		dtimes[i] = res[len(anchors)+i].Time
	}

	m, err := surrogate.NewReplay(tr, cfg)
	if err != nil {
		return nil, err
	}
	defer m.Close()
	if err := m.Calibrate(anchors, atimes); err != nil {
		return nil, err
	}
	stimes := make([]units.Time, len(holdout))
	for i, h := range holdout {
		stimes[i] = m.Price(h)
	}

	desBest, surBestRank := 0, 0
	for i := range holdout {
		if dtimes[i] < dtimes[desBest] {
			desBest = i
		}
	}
	for i := range holdout {
		if stimes[i] < stimes[desBest] {
			surBestRank++
		}
	}
	return &SurrogateXValPoint{
		Topology:   fab.TopologyName(),
		Anchors:    len(anchors),
		Holdout:    len(holdout),
		Spearman:   surrogate.Spearman(dtimes, stimes),
		Weights:    m.Weights(),
		BestAgrees: surBestRank < 3,
	}, nil
}

// surrogateTwoTierBudget is the head-to-head search shape — the
// place-optimize budget, so the comparison mirrors the experiment the
// optimizer already runs.
var surrogateTwoTierBudget = placement.Config{
	GreedyRounds: 4,
	GreedyBatch:  16,
	AnnealRounds: 4,
	AnnealBatch:  16,
	ScreenFactor: 4,
}

// surrogateTwoTier runs the pure-DES and the surrogate-screened search
// over the comm-only schedule on the default fabric and compares the
// DES-confirmed winners. Both searches propose from the same seed; the
// two-tier run replays the same number of candidates per round, so at
// matched DES throughput its rounds cost the same wall-clock, plus the
// one-time anchor calibration.
func surrogateTwoTier(tr *trace.Trace) (*SurrogateTwoTier, error) {
	fab, err := fabric.NewTopology(fabric.DefaultTopology)
	if err != nil {
		return nil, err
	}
	starts := make([]placement.Start, 0, len(TraceReplayPlacementNames))
	for _, name := range TraceReplayPlacementNames {
		places, err := traceReplayPlaces(name, fab, tr.Meta.Ranks)
		if err != nil {
			return nil, err
		}
		starts = append(starts, placement.Start{Name: name, Places: places})
	}
	cfg := surrogateTwoTierBudget
	cfg.Trace = tr
	cfg.Replay = trace.ReplayConfig{
		Fabric:      fab,
		Profile:     ib.OpenMPI(),
		Policy:      transport.Congested(),
		SkipCompute: true,
	}
	cfg.Starts = starts
	// The place-optimize experiment's seed, so the pure-DES leg is the
	// search that experiment already runs.
	cfg.Seed = PlaceOptimizeSeed

	pure, err := placement.Optimize(cfg)
	if err != nil {
		return nil, fmt.Errorf("scenario surrogate-xval: pure search: %w", err)
	}
	cfg.Surrogate = true
	two, err := placement.Optimize(cfg)
	if err != nil {
		return nil, fmt.Errorf("scenario surrogate-xval: two-tier search: %w", err)
	}
	serialCfg := cfg
	serialCfg.Workers = 1
	serial, err := placement.Optimize(serialCfg)
	if err != nil {
		return nil, fmt.Errorf("scenario surrogate-xval: serial two-tier search: %w", err)
	}
	two.Trajectory = two.Trajectory.WallFree()
	serial.Trajectory = serial.Trajectory.WallFree()
	return &SurrogateTwoTier{
		Start:                 two.Start,
		StartTime:             two.StartTime,
		PureBest:              pure.BestTime,
		TwoTierBest:           two.BestTime,
		ScreenFactor:          cfg.ScreenFactor,
		Anchors:               12,
		PureDESEvals:          pure.Trajectory.DESEvals,
		TwoTierDESEvals:       two.Trajectory.DESEvals,
		TwoTierSurrogateEvals: two.Trajectory.SurrogateEvals,
		TwoTierDedupHits:      two.Trajectory.DedupHits,
		Deterministic:         reflect.DeepEqual(two, serial),
	}, nil
}

// SurrogateSpeed is the measured per-evaluation cost of both tiers on
// the canonical trace and default fabric. The numbers are wall-clock —
// legitimately machine- and load-dependent — so they are measured on
// demand and never enter archived artifacts; the experiment asserts
// only the floor.
type SurrogateSpeed struct {
	DESPerEval       time.Duration
	SurrogatePerEval time.Duration
	Speedup          float64
}

// SurrogateSpeedFloor is the screening speedup the surrogate-xval
// experiment asserts: the surrogate must price candidates at least
// this many times faster than the pooled DES replays them. The
// measured ratio on an unloaded machine is well above the floor (see
// docs/surrogate.md and the Surrogate* benches); the floor keeps the
// check robust on loaded CI runners.
const SurrogateSpeedFloor = 3.0

// MeasureSurrogateSpeed times both tiers on the same congested
// placement after a warm-up evaluation each.
func MeasureSurrogateSpeed(tr *trace.Trace) (*SurrogateSpeed, error) {
	fab, err := fabric.NewTopology(fabric.DefaultTopology)
	if err != nil {
		return nil, err
	}
	cfg := surrogateXValConfig(fab)
	places, err := traceReplayPlaces("strided", fab, tr.Meta.Ranks)
	if err != nil {
		return nil, err
	}
	ev, err := trace.NewEvaluator(tr, cfg)
	if err != nil {
		return nil, err
	}
	defer ev.Close()
	m, err := surrogate.NewReplay(tr, cfg)
	if err != nil {
		return nil, err
	}
	defer m.Close()

	if _, err := ev.Evaluate(places); err != nil {
		return nil, err
	}
	m.Price(places)

	const desReps, surReps = 10, 100
	begin := time.Now()
	for i := 0; i < desReps; i++ {
		if _, err := ev.Evaluate(places); err != nil {
			return nil, err
		}
	}
	desPer := time.Since(begin) / desReps
	begin = time.Now()
	for i := 0; i < surReps; i++ {
		m.Price(places)
	}
	surPer := time.Since(begin) / surReps
	sp := &SurrogateSpeed{DESPerEval: desPer, SurrogatePerEval: surPer}
	if surPer > 0 {
		sp.Speedup = float64(desPer) / float64(surPer)
	}
	return sp, nil
}
