package scenario

import (
	"sync"
	"testing"

	"roadrunner/internal/fabric"
	"roadrunner/internal/surrogate"
)

var surrogateXValOnce = sync.OnceValues(func() (*SurrogateXValReport, error) {
	return SurrogateXVal()
})

func TestSurrogateXValContract(t *testing.T) {
	rep, err := surrogateXValOnce()
	if err != nil {
		t.Fatalf("SurrogateXVal: %v", err)
	}
	if rep.Ranks != TraceReplayPx*TraceReplayPy || rep.Sends == 0 {
		t.Fatalf("trace shape %+v", rep)
	}
	topos := fabric.Topologies()
	if len(rep.Points) != len(topos) {
		t.Fatalf("%d points for %d registered topologies", len(rep.Points), len(topos))
	}
	for i, p := range rep.Points {
		if p.Topology != topos[i] {
			t.Errorf("point %d is %s, want %s", i, p.Topology, topos[i])
		}
		if p.Spearman < 0.9 {
			t.Errorf("%s: holdout Spearman %.4f < 0.9", p.Topology, p.Spearman)
		}
		if !p.BestAgrees {
			t.Errorf("%s: surrogate dropped the DES-best holdout placement from its top-3", p.Topology)
		}
		if p.Anchors < surrogate.NumFeatures || p.Holdout <= p.Anchors/2 {
			t.Errorf("%s: degenerate cross-validation set: %d anchors, %d holdout",
				p.Topology, p.Anchors, p.Holdout)
		}
		if len(p.Weights) != surrogate.NumFeatures {
			t.Errorf("%s: %d weights for %d features", p.Topology, len(p.Weights), surrogate.NumFeatures)
		}
	}
}

func TestSurrogateXValTwoTier(t *testing.T) {
	rep, err := surrogateXValOnce()
	if err != nil {
		t.Fatalf("SurrogateXVal: %v", err)
	}
	tt := rep.TwoTier
	if tt.TwoTierBest > tt.PureBest {
		t.Errorf("two-tier best %v worse than pure DES %v at matched round budget",
			tt.TwoTierBest, tt.PureBest)
	}
	if !tt.Deterministic {
		t.Error("serial and parallel two-tier runs diverged")
	}
	if tt.TwoTierSurrogateEvals <= tt.TwoTierDESEvals {
		t.Errorf("surrogate priced %d candidates, DES replayed %d: the screen did not widen the pool",
			tt.TwoTierSurrogateEvals, tt.TwoTierDESEvals)
	}
	if tt.TwoTierDESEvals > tt.PureDESEvals+tt.Anchors {
		t.Errorf("two-tier DES spend %d exceeds pure %d plus %d anchors",
			tt.TwoTierDESEvals, tt.PureDESEvals, tt.Anchors)
	}
}

// TestSurrogateSpeedFloor measures the per-eval cost of both tiers at
// run time; the floor keeps the assertion robust on loaded machines
// (the measured ratio is well above it — see the Surrogate* benches).
func TestSurrogateSpeedFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock measurement")
	}
	tr, _, err := CaptureSweep3DTrace()
	if err != nil {
		t.Fatal(err)
	}
	sp, err := MeasureSurrogateSpeed(tr)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Speedup < SurrogateSpeedFloor {
		t.Errorf("surrogate speedup %.2fx (DES %v, surrogate %v) below the %.0fx floor",
			sp.Speedup, sp.DESPerEval, sp.SurrogatePerEval, SurrogateSpeedFloor)
	}
}
