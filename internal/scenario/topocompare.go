package scenario

import (
	"fmt"
	"sync"

	"roadrunner/internal/collectives"
	"roadrunner/internal/fabric"
	"roadrunner/internal/ib"
	"roadrunner/internal/trace"
	"roadrunner/internal/transport"
	"roadrunner/internal/units"
)

// The topo-compare sweep answers the cross-fabric question the 2008-era
// papers argued over: which interconnect wins for which communication
// pattern, at which taper. The saturation collectives (pairwise
// alltoall, ring allgather) and the captured Sweep3D iteration replay
// run on every registered topology — the paper's 2:1-tapered fat-tree,
// the same tree with ECMP-style hash spreading, a full-bisection (1:1)
// tree, and a 3D torus — congested vs infinite capacity, with the
// per-topology congestion census alongside. The sweep always runs all
// fabrics side by side regardless of the -topology knob; its fat-tree
// column doubles as a pin that the topology interface reproduces the
// legacy fabric exactly.

// TopoCompareNodes is the communicator size of the collective leg: two
// CUs, the smallest scale where the inter-CU tier (and the torus's CU
// boundary) carries every pattern.
const TopoCompareNodes = 360

// TopoCompareSize is the per-block payload (the saturation sweep's).
const TopoCompareSize = SaturationSize

// TopoCompareOps are the patterns compared: the taper-hostile dense
// exchange and the taper-immune neighbor exchange.
var TopoCompareOps = []collectives.Op{
	collectives.AlltoallPairwise,
	collectives.AllgatherRing,
}

// TopoComparePlacementNames are the replay leg's rank→node mappings.
var TopoComparePlacementNames = []string{"block", "strided"}

// TopoCompareCollectivePoint is one (topology, op) measurement.
type TopoCompareCollectivePoint struct {
	Topology string
	Op       collectives.Op
	Nodes    int
	Size     units.Size
	// Congested is the completion time on the wormhole fabric, Baseline
	// on the infinite-capacity fabric, Slowdown their ratio.
	Congested units.Time
	Baseline  units.Time
	Slowdown  float64
	// The congested run's census totals (uplink tier nonzero only on
	// the tree family) and hottest links.
	QueuedFlows  int64
	TotalWait    units.Time
	UplinkQueued int64
	UplinkWait   units.Time
	Top          []transport.LinkUsage
	Messages     int64
	Events       int64
}

// String renders the point on one line.
func (p TopoCompareCollectivePoint) String() string {
	return fmt.Sprintf("topo-compare %s %s nodes=%d: congested %v vs %v (%.2fx, wait %v)",
		p.Topology, p.Op, p.Nodes, p.Congested, p.Baseline, p.Slowdown, p.TotalWait)
}

// TopoCompareReplayPoint is one (topology, placement) replay of the
// captured Sweep3D iteration.
type TopoCompareReplayPoint struct {
	Topology  string
	Placement string
	// MeanHops is the placement's average routed hop count per send on
	// this topology.
	MeanHops  float64
	Congested units.Time
	Baseline  units.Time
	Slowdown  float64
	// Census totals of the congested replay.
	QueuedFlows int64
	TotalWait   units.Time
	Top         []transport.LinkUsage
	Messages    int64
	WireBytes   units.Size
	Events      int64
}

// String renders the point on one line.
func (p TopoCompareReplayPoint) String() string {
	return fmt.Sprintf("topo-compare %s replay/%s: congested %v vs %v (%.3fx, %.2f hops/msg)",
		p.Topology, p.Placement, p.Congested, p.Baseline, p.Slowdown, p.MeanHops)
}

// TopoCompareReport is the whole cross-fabric sweep.
type TopoCompareReport struct {
	Topologies  []string
	Collectives []TopoCompareCollectivePoint
	// Replays holds the Sweep3D replay points; the captured trace is
	// shared across topologies (same schedule, different wiring).
	Replays    []TopoCompareReplayPoint
	TraceRanks int
	TraceSends int
}

// TopoCompare runs the collective and replay legs on every registered
// topology. Every run is an independent simulation, spread over
// ParallelWorkers() with results byte-identical to the serial loop
// (SetParallel(1), the CLIs' -pdes=off, still takes the serial path
// verbatim).
func TopoCompare() (*TopoCompareReport, error) {
	rep := &TopoCompareReport{Topologies: fabric.Topologies()}

	// Collective leg: (topology x op) congested + baseline requests,
	// batched through the same RunMany cluster the saturation sweep
	// uses.
	var reqs []collectives.Request
	for _, topo := range rep.Topologies {
		for _, op := range TopoCompareOps {
			baseCfg, err := collectives.DefaultConfigOn(topo, TopoCompareNodes)
			if err != nil {
				return nil, fmt.Errorf("scenario topo-compare: %w", err)
			}
			congCfg, err := collectives.CongestedConfigOn(topo, TopoCompareNodes)
			if err != nil {
				return nil, fmt.Errorf("scenario topo-compare: %w", err)
			}
			reqs = append(reqs,
				collectives.Request{Cfg: baseCfg, Op: op, Size: TopoCompareSize},
				collectives.Request{Cfg: congCfg, Op: op, Size: TopoCompareSize})
		}
	}
	results := make([]*collectives.Result, len(reqs))
	if workers := ParallelWorkers(); workers > 1 {
		rs, err := collectives.RunMany(reqs, workers)
		if err != nil {
			return nil, fmt.Errorf("scenario topo-compare: %w", err)
		}
		copy(results, rs)
	} else {
		for i, rq := range reqs {
			r, err := collectives.Run(rq.Cfg, rq.Op, rq.Size)
			if err != nil {
				return nil, fmt.Errorf("scenario topo-compare: %w", err)
			}
			results[i] = r
		}
	}
	i := 0
	for _, topo := range rep.Topologies {
		for _, op := range TopoCompareOps {
			base, cong := results[i], results[i+1]
			i += 2
			p := TopoCompareCollectivePoint{
				Topology:  topo,
				Op:        op,
				Nodes:     TopoCompareNodes,
				Size:      TopoCompareSize,
				Congested: cong.Time,
				Baseline:  base.Time,
				Slowdown:  float64(cong.Time) / float64(base.Time),
				Messages:  cong.Messages,
				Events:    cong.EngineStats.Dispatched,
			}
			if c := cong.Congestion; c != nil {
				p.QueuedFlows = c.Queued
				p.TotalWait = c.TotalWait
				p.UplinkQueued = c.UplinkQueued
				p.UplinkWait = c.UplinkWait
				p.Top = c.Top
			}
			rep.Collectives = append(rep.Collectives, p)
		}
	}

	// Replay leg: one captured Sweep3D iteration, replayed per topology
	// under block and strided placements, congested vs baseline. One
	// evaluator pool per (topology, policy); the pools run concurrently
	// and each spreads its placements over the worker pool.
	tr, _, err := CaptureSweep3DTrace()
	if err != nil {
		return nil, err
	}
	s := tr.Stats()
	rep.TraceRanks = tr.Meta.Ranks
	rep.TraceSends = s.Sends
	type leg struct {
		topo string
		pol  transport.Policy
	}
	var legs []leg
	for _, topo := range rep.Topologies {
		legs = append(legs,
			leg{topo, transport.InfiniteCapacity()},
			leg{topo, transport.Congested()})
	}
	fabs := make(map[string]*fabric.System, len(rep.Topologies))
	placements := make(map[string][][]transport.Endpoint, len(rep.Topologies))
	for _, topo := range rep.Topologies {
		fab, err := fabric.NewTopology(topo)
		if err != nil {
			return nil, fmt.Errorf("scenario topo-compare: %w", err)
		}
		fabs[topo] = fab
		for _, name := range TopoComparePlacementNames {
			places, err := traceReplayPlaces(name, fab, tr.Meta.Ranks)
			if err != nil {
				return nil, err
			}
			placements[topo] = append(placements[topo], places)
		}
	}
	workers := ParallelWorkers()
	run := func(l leg) ([]*trace.ReplayResult, error) {
		pool, err := trace.NewEvaluatorPool(tr, trace.ReplayConfig{
			Fabric:  fabs[l.topo],
			Profile: ib.OpenMPI(),
			Policy:  l.pol,
			Observe: trace.ObserveCensus,
		}, workers)
		if err != nil {
			return nil, fmt.Errorf("scenario topo-compare: %s: %w", l.topo, err)
		}
		defer pool.Close()
		out, err := pool.EvaluateMany(placements[l.topo], workers)
		if err != nil {
			return nil, fmt.Errorf("scenario topo-compare: %s: %w", l.topo, err)
		}
		return out, nil
	}
	legResults := make([][]*trace.ReplayResult, len(legs))
	legErrs := make([]error, len(legs))
	if workers > 1 {
		var wg sync.WaitGroup
		for i, l := range legs {
			i, l := i, l
			wg.Add(1)
			go func() {
				defer wg.Done()
				legResults[i], legErrs[i] = run(l)
			}()
		}
		wg.Wait()
	} else {
		for i, l := range legs {
			legResults[i], legErrs[i] = run(l)
		}
	}
	for _, err := range legErrs {
		if err != nil {
			return nil, err
		}
	}
	for li, topo := range rep.Topologies {
		base, cong := legResults[2*li], legResults[2*li+1]
		for pi, name := range TopoComparePlacementNames {
			p := TopoCompareReplayPoint{
				Topology:  topo,
				Placement: name,
				MeanHops:  meanSendHops(tr, fabs[topo], placements[topo][pi]),
				Congested: cong[pi].Time,
				Baseline:  base[pi].Time,
				Slowdown:  float64(cong[pi].Time) / float64(base[pi].Time),
				Messages:  cong[pi].Messages,
				WireBytes: cong[pi].WireBytes,
				Events:    cong[pi].EngineStats.Dispatched,
			}
			if c := cong[pi].Congestion; c != nil {
				p.QueuedFlows = c.Queued
				p.TotalWait = c.TotalWait
				p.Top = c.Top
			}
			rep.Replays = append(rep.Replays, p)
		}
	}
	return rep, nil
}
