package scenario

import (
	"fmt"
	"strings"
	"sync/atomic"

	"roadrunner/internal/fabric"
)

// The scenario sweeps build their fabrics through this knob, so the
// rrexp CLI's -topology flag can re-run the whole evaluation on an
// alternative interconnect (a torus, a full-bisection tree). The
// default is the paper's tapered fat-tree; every paper-vs-measured
// check in the experiments assumes it, so non-default runs are
// what-if sweeps, not reproduction runs. The topo-compare experiment
// ignores the knob: it always runs all registered fabrics side by side.
var topoName atomic.Pointer[string]

// SetTopology selects the fabric topology the sweeps run on (a
// fabric.Topologies name; "" restores the default fat-tree).
func SetTopology(name string) error {
	if name == "" {
		name = fabric.DefaultTopology
	}
	if fabric.TopologyDescription(name) == "" {
		return fmt.Errorf("unknown topology %q: have %s", name, strings.Join(fabric.Topologies(), ", "))
	}
	topoName.Store(&name)
	return nil
}

// TopologyName returns the fabric topology the sweeps run on.
func TopologyName() string {
	if p := topoName.Load(); p != nil {
		return *p
	}
	return fabric.DefaultTopology
}

// ApplyTopologyFlag parses the CLIs' shared -topology value (an alias
// of SetTopology with the flag's empty default).
func ApplyTopologyFlag(v string) error { return SetTopology(v) }

// newFabric builds the full-scale fabric on the selected topology.
func newFabric() *fabric.System {
	fab, err := fabric.NewTopology(TopologyName())
	if err != nil {
		panic(err) // SetTopology validated the name
	}
	return fab
}

// newFabricScaled is newFabric at the given CU count.
func newFabricScaled(cus int) *fabric.System {
	fab, err := fabric.NewTopologyScaled(TopologyName(), cus)
	if err != nil {
		panic(err)
	}
	return fab
}
