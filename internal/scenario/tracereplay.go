package scenario

import (
	"fmt"
	"sync"

	"roadrunner/internal/cml"
	"roadrunner/internal/collectives"
	"roadrunner/internal/fabric"
	"roadrunner/internal/ib"
	"roadrunner/internal/sweep3d"
	"roadrunner/internal/trace"
	"roadrunner/internal/transport"
	"roadrunner/internal/units"
)

// The trace-replay sweep is the first scenario that runs a real
// application phase — not a synthetic collective — over the congested
// transport: one Sweep3D source iteration is captured from the DES run
// as a point-to-point trace (the KBA wavefront schedule), then replayed
// under several rank→node placements, each on the wormhole fabric and on
// the infinite-capacity fabric. Placement changes both the hop profile
// and which cables the wavefront's boundary exchanges share, so the
// sweep quantifies mapping sensitivity against the link-contention
// census rather than hop counts alone.

// TraceReplayPx and TraceReplayPy fix the captured decomposition: an
// 8x8 rank grid, big enough that strided placement spreads the wavefront
// over many CUs.
const (
	TraceReplayPx = 8
	TraceReplayPy = 8
)

// TraceReplayGrid is the captured per-rank problem (the rrsim -des
// configuration: a quarter-height paper subgrid, 4 K blocks).
var TraceReplayGrid = sweep3d.Config{I: 5, J: 5, K: 40, MK: 10, Angles: 6}

// TraceReplayPlacementNames are the rank→node mappings the sweep
// replays under, in sweep order.
var TraceReplayPlacementNames = []string{"block", "strided", "packed"}

// TraceReplayStride is the strided placement's step: one full CU, so
// consecutive ranks land in consecutive CUs and every boundary exchange
// crosses the inter-CU tier.
const TraceReplayStride = 180

// TraceReplayPerNode is the packed placement's rank density: all four
// Opteron cores of a node host ranks, so x-neighbors in the wavefront
// often share a node (and its HCA).
const TraceReplayPerNode = 4

// traceReplayPlaces builds one named placement over the fabric.
// TraceReplayPlaces builds one of the standard replay placements —
// "block", "strided" or "packed" — for a ranks-wide trace; the CLIs'
// batch replays reuse the scenario's exact mappings.
func TraceReplayPlaces(name string, fab *fabric.System, ranks int) ([]transport.Endpoint, error) {
	return traceReplayPlaces(name, fab, ranks)
}

func traceReplayPlaces(name string, fab *fabric.System, ranks int) ([]transport.Endpoint, error) {
	var places []collectives.Placement
	switch name {
	case "block":
		places = collectives.BlockPlacement(fab, ranks, 1)
	case "strided":
		places = collectives.StridedPlacement(fab, ranks, TraceReplayStride, 1)
	case "packed":
		places = collectives.PackedPlacement(fab, ranks, TraceReplayPerNode)
	default:
		return nil, fmt.Errorf("scenario trace-replay: unknown placement %q", name)
	}
	out := make([]transport.Endpoint, len(places))
	for i, p := range places {
		out[i] = transport.Endpoint{Node: p.Node, Core: p.Core}
	}
	return out, nil
}

// TraceReplayPoint is one placement's measurement: the captured
// iteration replayed on the congested and the infinite-capacity fabric.
type TraceReplayPoint struct {
	Placement string
	// MeanHops is the average crossbar hop count over the trace's send
	// records under this placement (intra-node sends count zero).
	MeanHops float64
	// Congested and Baseline are the replay makespans on the wormhole
	// and the infinite-capacity fabric; Slowdown their ratio. Sweep3D's
	// pipeline interleaves compute with its exchanges, so these move
	// little with placement.
	Congested units.Time
	Baseline  units.Time
	Slowdown  float64
	// CommCongested and CommBaseline replay the same schedule with
	// compute records stripped (SkipCompute): the bare wavefront
	// message storm, where placement and congestion show undamped.
	CommCongested units.Time
	CommBaseline  units.Time
	CommSlowdown  float64
	// Messages and WireBytes are the congested run's transport counters
	// (wire bytes drop when placement makes exchanges intra-node).
	Messages  int64
	WireBytes units.Size
	// Queueing totals from the congested run's census, uplink tier
	// broken out, plus the hottest links.
	QueuedFlows  int64
	TotalWait    units.Time
	UplinkQueued int64
	UplinkWait   units.Time
	Top          []transport.LinkUsage
	Events       int64
}

// String renders the point on one line.
func (p TraceReplayPoint) String() string {
	return fmt.Sprintf("trace-replay %s: congested %v vs %v (%.3fx, wait %v, %.2f hops/msg)",
		p.Placement, p.Congested, p.Baseline, p.Slowdown, p.TotalWait, p.MeanHops)
}

// TraceReplayReport is the whole sweep: the captured trace's shape plus
// one point per placement.
type TraceReplayReport struct {
	TraceName string
	Ranks     int
	Records   int
	Sends     int
	// TraceBytes is the payload total of the captured sends;
	// CaptureIteration the simulated iteration time of the capture run
	// (over the CML path, for reference against the replays).
	TraceBytes       units.Size
	CaptureIteration units.Time
	Points           []TraceReplayPoint
}

// CaptureSweep3DTrace captures the canonical Sweep3D iteration trace the
// sweep replays: TraceReplayPx x TraceReplayPy ranks on TraceReplayGrid.
func CaptureSweep3DTrace() (*trace.Trace, units.Time, error) {
	res, tr, err := sweep3d.CaptureDES(TraceReplayGrid, TraceReplayPx, TraceReplayPy, cml.CurrentSoftware())
	if err != nil {
		return nil, 0, fmt.Errorf("scenario trace-replay: capture: %w", err)
	}
	return tr, res.IterationTime, nil
}

// TraceReplay captures one Sweep3D iteration and replays it under every
// placement, congested vs infinite capacity.
func TraceReplay() (*TraceReplayReport, error) {
	tr, iter, err := CaptureSweep3DTrace()
	if err != nil {
		return nil, err
	}
	return ReplayUnderPlacements(tr, iter)
}

// ReplayUnderPlacements runs the placement sweep over an already
// captured (or loaded) trace.
func ReplayUnderPlacements(tr *trace.Trace, captureIteration units.Time) (*TraceReplayReport, error) {
	s := tr.Stats()
	rep := &TraceReplayReport{
		TraceName:        tr.Meta.Name,
		Ranks:            tr.Meta.Ranks,
		Records:          s.Records,
		Sends:            s.Sends,
		TraceBytes:       s.Bytes,
		CaptureIteration: captureIteration,
	}
	fab := newFabric()
	placements := make([][]transport.Endpoint, len(TraceReplayPlacementNames))
	for i, name := range TraceReplayPlacementNames {
		places, err := traceReplayPlaces(name, fab, tr.Meta.Ranks)
		if err != nil {
			return nil, err
		}
		placements[i] = places
	}
	// One evaluator pool per (policy, skip-compute) configuration, each
	// replaying every placement: the trace validates once per pool and
	// the engine/transport state is reused across the sweep. The pool's
	// EvaluateMany spreads the placements over ParallelWorkers() warm
	// evaluators — and the four configurations themselves run
	// concurrently — with results byte-identical to the serial walk,
	// which SetParallel(1) (the CLIs' -pdes=off) still takes verbatim.
	workers := ParallelWorkers()
	run := func(pol transport.Policy, skipCompute bool, what string) ([]*trace.ReplayResult, error) {
		pool, err := trace.NewEvaluatorPool(tr, trace.ReplayConfig{
			Fabric:      fab,
			Profile:     ib.OpenMPI(),
			Policy:      pol,
			SkipCompute: skipCompute,
			Observe:     trace.ObserveCensus,
		}, workers)
		if err != nil {
			return nil, fmt.Errorf("scenario trace-replay: %s: %w", what, err)
		}
		defer pool.Close()
		out, err := pool.EvaluateMany(placements, workers)
		if err != nil {
			return nil, fmt.Errorf("scenario trace-replay: %s: %w", what, err)
		}
		return out, nil
	}
	// SkipCompute strips the compute records: the communication
	// schedule alone.
	configs := []struct {
		pol  transport.Policy
		skip bool
		what string
	}{
		{transport.InfiniteCapacity(), false, "baseline"},
		{transport.Congested(), false, "congested"},
		{transport.InfiniteCapacity(), true, "comm baseline"},
		{transport.Congested(), true, "comm congested"},
	}
	results := make([][]*trace.ReplayResult, len(configs))
	errs := make([]error, len(configs))
	if workers > 1 {
		var wg sync.WaitGroup
		for i, c := range configs {
			i, c := i, c
			wg.Add(1)
			go func() {
				defer wg.Done()
				results[i], errs[i] = run(c.pol, c.skip, c.what)
			}()
		}
		wg.Wait()
	} else {
		// Serial escape hatch: the four configurations in order.
		for i, c := range configs {
			results[i], errs[i] = run(c.pol, c.skip, c.what)
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	base, cong, commBase, commCong := results[0], results[1], results[2], results[3]
	for i, name := range TraceReplayPlacementNames {
		p := TraceReplayPoint{
			Placement:     name,
			MeanHops:      meanSendHops(tr, fab, placements[i]),
			Congested:     cong[i].Time,
			Baseline:      base[i].Time,
			Slowdown:      float64(cong[i].Time) / float64(base[i].Time),
			CommCongested: commCong[i].Time,
			CommBaseline:  commBase[i].Time,
			CommSlowdown:  float64(commCong[i].Time) / float64(commBase[i].Time),
			Messages:      cong[i].Messages,
			WireBytes:     cong[i].WireBytes,
			Events:        cong[i].EngineStats.Dispatched,
		}
		if c := cong[i].Congestion; c != nil {
			p.QueuedFlows = c.Queued
			p.TotalWait = c.TotalWait
			p.UplinkQueued = c.UplinkQueued
			p.UplinkWait = c.UplinkWait
			p.Top = c.Top
		}
		rep.Points = append(rep.Points, p)
	}
	return rep, nil
}

// meanSendHops averages the routed hop count over the trace's sends
// under a placement.
func meanSendHops(tr *trace.Trace, fab *fabric.System, places []transport.Endpoint) float64 {
	var hops, sends int
	for _, r := range tr.Records {
		if r.Kind != trace.KindSend {
			continue
		}
		sends++
		hops += fab.Hops(places[r.Rank].Node, places[r.Peer].Node)
	}
	if sends == 0 {
		return 0
	}
	return float64(hops) / float64(sends)
}
