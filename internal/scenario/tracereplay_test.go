package scenario

import (
	"reflect"
	"sync"
	"testing"
)

var traceReplayOnce = sync.OnceValues(func() (*TraceReplayReport, error) {
	return TraceReplay()
})

func TestTraceReplayShape(t *testing.T) {
	rep, err := traceReplayOnce()
	if err != nil {
		t.Fatalf("TraceReplay: %v", err)
	}
	if rep.Ranks != TraceReplayPx*TraceReplayPy {
		t.Errorf("ranks %d", rep.Ranks)
	}
	if rep.Sends == 0 || rep.Records == 0 || rep.TraceBytes == 0 {
		t.Fatalf("empty trace: %+v", rep)
	}
	if len(rep.Points) != len(TraceReplayPlacementNames) {
		t.Fatalf("%d points for %d placements", len(rep.Points), len(TraceReplayPlacementNames))
	}
	for i, p := range rep.Points {
		if p.Placement != TraceReplayPlacementNames[i] {
			t.Errorf("point %d placement %q, want %q", i, p.Placement, TraceReplayPlacementNames[i])
		}
		if int(p.Messages) != rep.Sends {
			t.Errorf("%s: %d messages for %d trace sends", p.Placement, p.Messages, rep.Sends)
		}
		if p.Congested <= 0 || p.Baseline <= 0 || p.CommCongested <= 0 || p.CommBaseline <= 0 {
			t.Errorf("%s: empty timings %+v", p.Placement, p)
		}
		// The full iteration includes all compute; stripping it can only
		// shrink the makespan.
		if p.CommBaseline >= p.Baseline {
			t.Errorf("%s: comm-only %v not below full %v", p.Placement, p.CommBaseline, p.Baseline)
		}
		if p.MeanHops < 0 {
			t.Errorf("%s: mean hops %f", p.Placement, p.MeanHops)
		}
	}
}

func TestTraceReplayDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("second full sweep")
	}
	a, err := traceReplayOnce()
	if err != nil {
		t.Fatalf("TraceReplay: %v", err)
	}
	b, err := TraceReplay()
	if err != nil {
		t.Fatalf("TraceReplay rerun: %v", err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two sweeps differ")
	}
}

func TestReplayUnderPlacementsRejectsWrongRanks(t *testing.T) {
	tr, _, err := CaptureSweep3DTrace()
	if err != nil {
		t.Fatalf("capture: %v", err)
	}
	tr.Meta.Ranks = 0 // corrupt: placements can no longer cover the ranks
	if _, err := ReplayUnderPlacements(tr, 0); err == nil {
		t.Fatal("corrupt trace accepted")
	}
}
