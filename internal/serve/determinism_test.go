package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sync"
	"testing"

	"roadrunner/internal/orchestrator"
	"roadrunner/internal/units"
)

// TestServeResultsDeterministic pins the serving determinism contract
// (docs/determinism.md): the artifact for a request is a pure function
// of its bytes — byte-identical whether the job runs on a single serial
// worker or under 64-way concurrent submission against a wide worker
// pool, and a repeated request is served from the content-addressed
// artifact cache without recomputing.
func TestServeResultsDeterministic(t *testing.T) {
	tr := ringTraceJSONL(t, 8, 256*units.KB)
	bodies := [][]byte{
		[]byte(`{"trace":` + jsonString(tr) + `,"observe":"all"}`),
		[]byte(`{"trace":` + jsonString(tr) + `,"observe":"all","placement":{"kind":"strided","stride":3}}`),
	}

	// Serial reference: one worker, one submission at a time.
	serial := make([][]byte, len(bodies))
	func() {
		s := New(Options{Workers: 1})
		defer s.Close()
		for i, body := range bodies {
			serial[i] = submitWait(t, s, "/v1/replay", body)
		}
	}()
	for i, data := range serial {
		if len(data) == 0 {
			t.Fatalf("serial result %d is empty", i)
		}
	}

	// Concurrent: 64 goroutines per body race identical submissions at a
	// multi-worker server; every result must match the serial bytes.
	s := New(Options{Workers: 8})
	defer s.Close()
	const fanout = 64
	var wg sync.WaitGroup
	results := make([][][]byte, len(bodies))
	for i := range bodies {
		results[i] = make([][]byte, fanout)
		for j := 0; j < fanout; j++ {
			wg.Add(1)
			go func(i, j int) {
				defer wg.Done()
				results[i][j] = submitWait(t, s, "/v1/replay", bodies[i])
			}(i, j)
		}
	}
	wg.Wait()
	for i := range bodies {
		for j, data := range results[i] {
			if !bytes.Equal(data, serial[i]) {
				t.Fatalf("body %d submission %d: concurrent result differs from serial (%d vs %d bytes)",
					i, j, len(data), len(serial[i]))
			}
		}
	}

	// All 64 identical submissions coalesced onto a single job each.
	s.mu.Lock()
	jobs := len(s.jobs)
	s.mu.Unlock()
	if jobs != len(bodies) {
		t.Errorf("%d jobs registered, want %d (identical submissions must coalesce)", jobs, len(bodies))
	}
}

// TestServeArtifactCache pins the cache path: a second server sharing
// the artifact cache directory answers a repeated request born-done and
// byte-identical, without running an engine.
func TestServeArtifactCache(t *testing.T) {
	dir := t.TempDir()
	open := func() *orchestrator.Cache {
		c, err := orchestrator.OpenCache(dir)
		if err != nil {
			t.Fatalf("open cache: %v", err)
		}
		return c
	}
	tr := ringTraceJSONL(t, 4, 64*units.KB)
	body := []byte(`{"trace":` + jsonString(tr) + `,"observe":"census"}`)

	s1 := New(Options{Workers: 2, Cache: open()})
	first := submitWait(t, s1, "/v1/replay", body)
	s1.Close()

	s2 := New(Options{Workers: 2, Cache: open()})
	defer s2.Close()
	rec := do(t, s2, http.MethodPost, "/v1/replay", body)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("cached submit: status %d: %s", rec.Code, rec.Body.String())
	}
	var sub submitResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &sub); err != nil {
		t.Fatalf("submit response: %v", err)
	}
	if !sub.Cached || sub.State != StateDone {
		t.Errorf("cache-hit submission is cached=%v state=%q, want cached=true state=done", sub.Cached, sub.State)
	}
	res := do(t, s2, http.MethodGet, "/v1/jobs/"+sub.JobID+"/result", nil)
	if res.Code != http.StatusOK {
		t.Fatalf("cached result: status %d: %s", res.Code, res.Body.String())
	}
	if !bytes.Equal(res.Body.Bytes(), first) {
		t.Error("cached artifact differs from the computed one")
	}
	if hits, _ := s2.opts.Cache.Stats(); hits == 0 {
		t.Error("cache reports zero hits after a cache-served submission")
	}
}
