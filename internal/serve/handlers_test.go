package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"roadrunner/internal/trace"
	"roadrunner/internal/units"
)

// ringTraceJSONL builds a small valid ring-exchange trace (compute,
// send-to-next, recv-from-prev per rank) and returns its JSONL text.
func ringTraceJSONL(t testing.TB, ranks int, size units.Size) string {
	t.Helper()
	tr := &trace.Trace{Meta: trace.Meta{Name: fmt.Sprintf("ring-%d", ranks), App: "serve-test", Ranks: ranks}}
	for r := 0; r < ranks; r++ {
		tr.Records = append(tr.Records,
			trace.Record{Rank: r, Seq: 0, Kind: trace.KindCompute, Peer: trace.NoPeer,
				Duration: 5 * units.Microsecond, Dep: trace.NoDep},
			trace.Record{Rank: r, Seq: 1, Kind: trace.KindSend, Peer: (r + 1) % ranks,
				Size: size, Dep: trace.NoDep},
			trace.Record{Rank: r, Seq: 2, Kind: trace.KindRecv, Peer: (r + ranks - 1) % ranks,
				Size: size, Dep: 1},
		)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("test trace invalid: %v", err)
	}
	var buf bytes.Buffer
	if err := trace.Encode(&buf, tr); err != nil {
		t.Fatalf("encode: %v", err)
	}
	return buf.String()
}

// wideTraceJSONL builds a tiny valid trace whose header claims ranks
// rank streams (the format allows record-less ranks), so oversized-
// fabric validation can be exercised without a megabyte fixture.
func wideTraceJSONL(t testing.TB, ranks int) string {
	t.Helper()
	tr := &trace.Trace{Meta: trace.Meta{Name: "wide", App: "serve-test", Ranks: ranks}}
	tr.Records = append(tr.Records,
		trace.Record{Rank: 0, Seq: 0, Kind: trace.KindCompute, Peer: trace.NoPeer,
			Duration: units.Microsecond, Dep: trace.NoDep})
	if err := tr.Validate(); err != nil {
		t.Fatalf("wide trace invalid: %v", err)
	}
	var buf bytes.Buffer
	if err := trace.Encode(&buf, tr); err != nil {
		t.Fatalf("encode: %v", err)
	}
	return buf.String()
}

// do drives one request through the server's handler.
func do(t testing.TB, s *Server, method, path string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, bytes.NewReader(body))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

// submitWait submits a body and polls the job to a terminal state,
// returning the result bytes of a done job.
func submitWait(t testing.TB, s *Server, path string, body []byte) []byte {
	t.Helper()
	rec := do(t, s, http.MethodPost, path, body)
	if rec.Code != http.StatusAccepted && rec.Code != http.StatusOK {
		t.Fatalf("POST %s: status %d: %s", path, rec.Code, rec.Body.String())
	}
	var sub submitResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &sub); err != nil {
		t.Fatalf("submit response: %v", err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := do(t, s, http.MethodGet, "/v1/jobs/"+sub.JobID, nil)
		if st.Code != http.StatusOK {
			t.Fatalf("GET job %s: status %d: %s", sub.JobID, st.Code, st.Body.String())
		}
		var js jobStatus
		if err := json.Unmarshal(st.Body.Bytes(), &js); err != nil {
			t.Fatalf("job status: %v", err)
		}
		switch js.State {
		case StateDone:
			res := do(t, s, http.MethodGet, "/v1/jobs/"+sub.JobID+"/result", nil)
			if res.Code != http.StatusOK {
				t.Fatalf("GET result %s: status %d: %s", sub.JobID, res.Code, res.Body.String())
			}
			return res.Body.Bytes()
		case StateFailed:
			t.Fatalf("job %s failed: %s", sub.JobID, js.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after 30s", sub.JobID, js.State)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestServeMalformedSubmissions is the 4xx contract: every malformed
// submission is rejected synchronously with a structured error (code +
// message), the documented status, and no job is ever created for it.
func TestServeMalformedSubmissions(t *testing.T) {
	tr := ringTraceJSONL(t, 4, 64*units.KB)
	s := New(Options{Workers: 1, MaxBodyBytes: 256 * 1024})
	defer s.Close()

	req := func(fields string) []byte {
		return []byte(`{"trace":` + jsonString(tr) + `,` + fields + `}`)
	}
	// Valid trace format-wise, but wider than the 3060-node fabric.
	wide := wideTraceJSONL(t, 4000)
	wideReq := func(fields string) []byte {
		return []byte(`{"trace":` + jsonString(wide) + `,` + fields + `}`)
	}
	cases := []struct {
		name   string
		path   string
		body   []byte
		status int
		code   string
	}{
		{"not json", "/v1/replay", []byte("not json at all"), 400, "invalid_json"},
		{"unknown field", "/v1/replay", req(`"plcaement":{}`), 400, "invalid_json"},
		{"trailing garbage", "/v1/replay", append(req(`"skip_compute":true`), []byte(" {}")...), 400, "invalid_json"},
		{"missing trace", "/v1/replay", []byte(`{"skip_compute":true}`), 400, "invalid_request"},
		{"corrupt trace", "/v1/replay", []byte(`{"trace":"not a trace header"}`), 400, "invalid_trace"},
		{"bad placement length", "/v1/replay",
			req(`"placement":{"kind":"explicit","places":[{"cu":0,"node":0,"core":1}]}`), 400, "invalid_request"},
		{"placement off machine", "/v1/replay",
			req(`"placement":{"kind":"explicit","places":[{"cu":99,"node":0,"core":1},{"cu":0,"node":1,"core":1},{"cu":0,"node":2,"core":1},{"cu":0,"node":3,"core":1}]}`),
			400, "invalid_request"},
		{"bad placement core", "/v1/replay", req(`"placement":{"kind":"block","core":7}`), 400, "invalid_request"},
		{"oversized block", "/v1/replay", wideReq(`"placement":{"kind":"block"}`), 400, "invalid_request"},
		{"oversized strided", "/v1/replay", wideReq(`"placement":{"kind":"strided"}`), 400, "invalid_request"},
		{"oversized packed", "/v1/replay", wideReq(`"placement":{"kind":"packed","per_node":1}`), 400, "invalid_request"},
		{"oversized default placement", "/v1/replay", wideReq(`"skip_compute":true`), 400, "invalid_request"},
		{"explicit cu overflows int", "/v1/replay",
			req(`"placement":{"kind":"explicit","places":[{"cu":60000000000000000,"node":0,"core":1},{"cu":0,"node":1,"core":1},{"cu":0,"node":2,"core":1},{"cu":0,"node":3,"core":1}]}`),
			400, "invalid_request"},
		{"oversized optimize trace", "/v1/optimize", wideReq(`"seed":1`), 400, "invalid_request"},
		{"unknown placement kind", "/v1/replay", req(`"placement":{"kind":"diagonal"}`), 400, "invalid_request"},
		{"NaN compute scale", "/v1/replay", req(`"compute_scale":NaN`), 400, "invalid_json"},
		{"infinite compute scale", "/v1/replay", req(`"compute_scale":1e999`), 400, "invalid_json"},
		{"negative compute scale", "/v1/replay", req(`"compute_scale":-1`), 400, "invalid_request"},
		{"bad observe", "/v1/replay", req(`"observe":"everything"`), 400, "invalid_request"},
		{"bad congestion", "/v1/replay", req(`"congestion":"maybe"`), 400, "invalid_request"},
		{"negative knob", "/v1/optimize", req(`"greedy_rounds":-1`), 400, "invalid_request"},
		{"optimize bad stride", "/v1/optimize", req(`"stride":-5`), 400, "invalid_request"},
		{"optimize per_node", "/v1/optimize", req(`"per_node":9`), 400, "invalid_request"},
		{"unknown op", "/v1/collective", []byte(`{"op":"alltoall-magic","nodes":8,"size_bytes":64}`), 400, "invalid_request"},
		{"zero nodes", "/v1/collective", []byte(`{"op":"allgather-ring","nodes":0,"size_bytes":64}`), 400, "invalid_request"},
		{"machine overflow", "/v1/collective", []byte(`{"op":"allgather-ring","nodes":99999,"size_bytes":64}`), 400, "invalid_request"},
		{"negative payload", "/v1/collective", []byte(`{"op":"allgather-ring","nodes":8,"size_bytes":-1}`), 400, "invalid_request"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := do(t, s, http.MethodPost, tc.path, tc.body)
			if rec.Code != tc.status {
				t.Fatalf("status %d, want %d: %s", rec.Code, tc.status, rec.Body.String())
			}
			var eb errorBody
			if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil {
				t.Fatalf("error body is not structured JSON: %v: %s", err, rec.Body.String())
			}
			if eb.Error.Code != tc.code {
				t.Errorf("error code %q, want %q (message %q)", eb.Error.Code, tc.code, eb.Error.Message)
			}
			if eb.Error.Message == "" {
				t.Error("error message is empty")
			}
		})
	}

	// The registry holds no jobs: nothing malformed was enqueued.
	s.mu.Lock()
	n := len(s.jobs)
	s.mu.Unlock()
	if n != 0 {
		t.Errorf("%d jobs registered after malformed submissions, want 0", n)
	}
}

// TestServeOversizedTrace pins the body bound: a trace beyond
// MaxBodyBytes is a structured 413, not a 500 or a torn read.
func TestServeOversizedTrace(t *testing.T) {
	s := New(Options{Workers: 1, MaxBodyBytes: 16 * 1024})
	defer s.Close()
	tr := ringTraceJSONL(t, 64, 1*units.KB) // ~192 records, well past 16 KB as JSON
	body := []byte(`{"trace":` + jsonString(tr) + `}`)
	if len(body) <= 16*1024 {
		t.Fatalf("fixture too small to exercise the bound: %d bytes", len(body))
	}
	rec := do(t, s, http.MethodPost, "/v1/replay", body)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413: %s", rec.Code, rec.Body.String())
	}
	var eb errorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil {
		t.Fatalf("413 body is not structured: %v", err)
	}
	if eb.Error.Code != "body_too_large" {
		t.Errorf("error code %q, want body_too_large", eb.Error.Code)
	}
}

// TestServeJobLifecycle drives one replay job through the documented
// state machine and pins the result endpoints' error semantics.
func TestServeJobLifecycle(t *testing.T) {
	s := New(Options{Workers: 2})
	defer s.Close()

	if rec := do(t, s, http.MethodGet, "/v1/jobs/nope", nil); rec.Code != http.StatusNotFound {
		t.Errorf("unknown job status: %d, want 404", rec.Code)
	}
	if rec := do(t, s, http.MethodGet, "/v1/jobs/nope/result", nil); rec.Code != http.StatusNotFound {
		t.Errorf("unknown job result: %d, want 404", rec.Code)
	}

	// A job parked in the registry but not finished answers 409 on its
	// result endpoint.
	parked := newJob("rp-parked", "replay", "k", "", nil)
	if _, aerr := s.register(parked); aerr != nil {
		t.Fatalf("register: %v", aerr)
	}
	if rec := do(t, s, http.MethodGet, "/v1/jobs/rp-parked/result", nil); rec.Code != http.StatusConflict {
		t.Errorf("queued job result: %d, want 409", rec.Code)
	}

	tr := ringTraceJSONL(t, 4, 64*units.KB)
	body := []byte(`{"trace":` + jsonString(tr) + `,"observe":"census"}`)
	data := submitWait(t, s, "/v1/replay", body)
	lines := bytes.Split(bytes.TrimSuffix(data, []byte("\n")), []byte("\n"))
	if len(lines) < 3 {
		t.Fatalf("result has %d lines, want >= 3:\n%s", len(lines), data)
	}
	var head headerLine
	if err := json.Unmarshal(lines[0], &head); err != nil {
		t.Fatalf("header line: %v", err)
	}
	if head.Format != ResultFormat || head.Version != ResultVersion || head.Job != "replay" {
		t.Errorf("header %+v", head)
	}
	var rep struct {
		Kind       string `json:"kind"`
		MakespanPs int64  `json:"makespan_ps"`
	}
	found := false
	for _, l := range lines {
		if json.Unmarshal(l, &rep) == nil && rep.Kind == "replay" {
			found = true
			if rep.MakespanPs <= 0 {
				t.Errorf("non-positive makespan %d", rep.MakespanPs)
			}
		}
	}
	if !found {
		t.Fatalf("no replay line in result:\n%s", data)
	}

	// Resubmitting the identical body returns the same finished job.
	rec := do(t, s, http.MethodPost, "/v1/replay", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("resubmit: status %d, want 200", rec.Code)
	}
	var sub submitResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &sub); err != nil {
		t.Fatalf("resubmit response: %v", err)
	}
	if sub.State != StateDone {
		t.Errorf("resubmitted job state %q, want done", sub.State)
	}
}

// TestServeCollectiveAndOptimize smoke-runs the other two job kinds end
// to end through the HTTP surface.
func TestServeCollectiveAndOptimize(t *testing.T) {
	s := New(Options{Workers: 2})
	defer s.Close()

	data := submitWait(t, s, "/v1/collective",
		[]byte(`{"op":"allgather-ring","nodes":8,"size_bytes":4096}`))
	if !bytes.Contains(data, []byte(`"kind":"collective"`)) {
		t.Errorf("collective result missing collective line:\n%s", data)
	}

	tr := ringTraceJSONL(t, 4, 64*units.KB)
	data = submitWait(t, s, "/v1/optimize", []byte(`{"trace":`+jsonString(tr)+
		`,"seed":1,"greedy_rounds":1,"greedy_batch":2,"anneal_rounds":1,"anneal_batch":2}`))
	for _, want := range []string{`"kind":"baseline"`, `"kind":"winner"`, `"kind":"assign"`} {
		if !bytes.Contains(data, []byte(want)) {
			t.Errorf("optimize result missing %s:\n%s", want, data)
		}
	}

	// The health and stats endpoints answer, and healthz carries the
	// load snapshot a balancer polls for alongside liveness.
	rec := do(t, s, http.MethodGet, "/v1/healthz", nil)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"ok"`) {
		t.Errorf("healthz: %d %s", rec.Code, rec.Body.String())
	}
	var h healthz
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	if h.Workers != s.opts.Workers || h.QueueDepth != s.opts.QueueDepth {
		t.Errorf("healthz workers/queue_depth %d/%d, want %d/%d",
			h.Workers, h.QueueDepth, s.opts.Workers, s.opts.QueueDepth)
	}
	if h.Done < 2 || h.Queued+h.Running+h.Done+h.Failed == 0 {
		t.Errorf("healthz job tally %+v, want >= 2 done", h)
	}
	rec = do(t, s, http.MethodGet, "/v1/stats", nil)
	var st serveStats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.Done < 2 {
		t.Errorf("stats report %d done jobs, want >= 2", st.Done)
	}
	if st.Done != h.Done || st.Workers != h.Workers {
		t.Errorf("stats/healthz disagree: %+v vs %+v", st, h)
	}
}

// TestServeWorkerPanicFailsJob pins the worker's panic containment: a
// job whose work function panics fails that job with a structured
// error, and the worker survives to run the next submission.
func TestServeWorkerPanicFailsJob(t *testing.T) {
	s := New(Options{Workers: 1})
	defer s.Close()

	job := newJob("rp-panic", "replay", "k", "", func() ([]byte, error) { panic("engine blew up") })
	if _, aerr := s.register(job); aerr != nil {
		t.Fatalf("register: %v", aerr)
	}
	s.queue <- job
	deadline := time.Now().Add(10 * time.Second)
	for !job.settled() {
		if time.Now().After(deadline) {
			t.Fatal("panicking job never settled")
		}
		time.Sleep(time.Millisecond)
	}
	_, state, errMsg := job.resultBytes()
	if state != StateFailed || !strings.Contains(errMsg, "panicked") {
		t.Fatalf("state %q error %q, want failed with a panic message", state, errMsg)
	}

	// The worker survived: a well-formed replay still completes.
	tr := ringTraceJSONL(t, 4, 64*units.KB)
	submitWait(t, s, "/v1/replay", []byte(`{"trace":`+jsonString(tr)+`}`))
}

// TestServeSubmitDuringClose hammers submit while Close runs: the
// serve.Server API itself (independent of rrserve's shutdown ordering)
// must never send on the closed queue — every racing submission either
// enqueues cleanly or gets a structured shutting_down error.
func TestServeSubmitDuringClose(t *testing.T) {
	parse := func() (func() ([]byte, error), *apiError) {
		return func() ([]byte, error) { return []byte("{}\n"), nil }, nil
	}
	for round := 0; round < 25; round++ {
		s := New(Options{Workers: 1})
		start := make(chan struct{})
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				<-start
				for j := 0; j < 32; j++ {
					body := []byte(fmt.Sprintf(`{"round":%d,"g":%d,"j":%d}`, round, g, j))
					_, _, aerr := s.submit("collective", body, parse)
					if aerr != nil && aerr.Code != "shutting_down" && aerr.Code != "queue_full" {
						t.Errorf("submit: unexpected error %s: %s", aerr.Code, aerr.Message)
					}
				}
			}(g)
		}
		close(start)
		s.Close()
		wg.Wait()
	}
}

// TestServeReplayPoolEviction pins the eviction-race fix: with a
// single-entry pool cache, concurrent replays with distinct pool keys
// evict each other's evaluator pools constantly; a job whose pool is
// closed between cache lookup and checkout must retry on a fresh pool
// instead of failing (and, because jobs are content-addressed, staying
// failed for every identical resubmission).
func TestServeReplayPoolEviction(t *testing.T) {
	s := New(Options{Workers: 4, PoolTraces: 1})
	defer s.Close()
	tr := ringTraceJSONL(t, 4, 16*units.KB)

	var ids []string
	for i := 0; i < 24; i++ {
		// Distinct compute scales give every job its own pool key.
		body := []byte(fmt.Sprintf(`{"trace":%s,"compute_scale":%d.5}`, jsonString(tr), i+1))
		rec := do(t, s, http.MethodPost, "/v1/replay", body)
		if rec.Code != http.StatusAccepted {
			t.Fatalf("submit %d: status %d: %s", i, rec.Code, rec.Body.String())
		}
		var sub submitResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &sub); err != nil {
			t.Fatalf("submit response: %v", err)
		}
		ids = append(ids, sub.JobID)
	}
	deadline := time.Now().Add(60 * time.Second)
	for _, id := range ids {
		for {
			st := do(t, s, http.MethodGet, "/v1/jobs/"+id, nil)
			var js jobStatus
			if err := json.Unmarshal(st.Body.Bytes(), &js); err != nil {
				t.Fatalf("job status: %v", err)
			}
			if js.State == StateDone {
				break
			}
			if js.State == StateFailed {
				t.Fatalf("job %s failed: %s", id, js.Error)
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s still %s", id, js.State)
			}
			time.Sleep(time.Millisecond)
		}
	}
}

// jsonString marshals s as a JSON string literal.
func jsonString(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}
