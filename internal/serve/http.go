package serve

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"time"

	"roadrunner/internal/params"
)

// errorBody is the wire form of every failure: a stable machine-
// readable code plus a human-readable message, under one "error" key.
type errorBody struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeErr writes a structured error response.
func writeErr(w http.ResponseWriter, aerr *apiError) {
	var body errorBody
	body.Error.Code = aerr.Code
	body.Error.Message = aerr.Message
	if aerr.Status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, aerr.Status, body)
}

// readBody reads the request body under the configured bound. An
// oversized body is a structured 413, not a torn read.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, *apiError) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return nil, &apiError{http.StatusRequestEntityTooLarge, "body_too_large",
				"request body exceeds the " + formatBytes(s.opts.MaxBodyBytes) + " bound"}
		}
		return nil, &apiError{http.StatusBadRequest, "invalid_request", "reading body: " + err.Error()}
	}
	return body, nil
}

// formatBytes renders a byte bound for error messages.
func formatBytes(n int64) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return itoa(n>>20) + " MB"
	case n >= 1<<10 && n%(1<<10) == 0:
		return itoa(n>>10) + " KB"
	}
	return itoa(n) + " B"
}

func itoa(n int64) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// submitResponse is the body of a successful submission.
type submitResponse struct {
	JobID string   `json:"job_id"`
	Kind  string   `json:"kind"`
	State JobState `json:"state"`
	// Cached reports the job's artifact was loaded from the persistent
	// artifact cache instead of computed.
	Cached bool `json:"cached"`
	// StatusURL and ResultURL are the job's polling endpoints.
	StatusURL string `json:"status_url"`
	ResultURL string `json:"result_url"`
}

// handleSubmit is the shared submission path: bound the body, dedupe or
// enqueue, answer 202 for a new job and 200 for a known one.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request, kind string) {
	body, aerr := s.readBody(w, r)
	if aerr != nil {
		writeErr(w, aerr)
		return
	}
	job, created, aerr := s.submit(kind, body, func() (func() ([]byte, error), *apiError) {
		switch kind {
		case "replay":
			return s.parseReplay(body)
		case "optimize":
			return s.parseOptimize(body)
		default:
			return s.parseCollective(body)
		}
	})
	if aerr != nil {
		writeErr(w, aerr)
		return
	}
	state, _, cached, _, _, _ := job.snapshot()
	status := http.StatusOK
	if created {
		status = http.StatusAccepted
	}
	writeJSON(w, status, submitResponse{
		JobID: job.ID, Kind: job.Kind, State: state, Cached: cached,
		StatusURL: "/v1/jobs/" + job.ID,
		ResultURL: "/v1/jobs/" + job.ID + "/result",
	})
}

func (s *Server) handleReplay(w http.ResponseWriter, r *http.Request) {
	s.handleSubmit(w, r, "replay")
}

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	s.handleSubmit(w, r, "optimize")
}

func (s *Server) handleCollective(w http.ResponseWriter, r *http.Request) {
	s.handleSubmit(w, r, "collective")
}

// jobStatus is the GET /v1/jobs/{id} body.
type jobStatus struct {
	JobID      string   `json:"job_id"`
	Kind       string   `json:"kind"`
	State      JobState `json:"state"`
	Error      string   `json:"error,omitempty"`
	Cached     bool     `json:"cached"`
	Submitted  string   `json:"submitted_at"`
	Started    string   `json:"started_at,omitempty"`
	Finished   string   `json:"finished_at,omitempty"`
	ResultURL  string   `json:"result_url,omitempty"`
	ResultSize int      `json:"result_bytes,omitempty"`
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeErr(w, &apiError{http.StatusNotFound, "unknown_job", "no job " + r.PathValue("id")})
		return
	}
	state, errMsg, cached, submitted, started, finished := job.snapshot()
	st := jobStatus{
		JobID: job.ID, Kind: job.Kind, State: state, Error: errMsg, Cached: cached,
		Submitted: submitted.UTC().Format(time.RFC3339Nano),
	}
	if !started.IsZero() {
		st.Started = started.UTC().Format(time.RFC3339Nano)
	}
	if !finished.IsZero() {
		st.Finished = finished.UTC().Format(time.RFC3339Nano)
	}
	if state == StateDone {
		st.ResultURL = "/v1/jobs/" + job.ID + "/result"
		data, _, _ := job.resultBytes()
		st.ResultSize = len(data)
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	job, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeErr(w, &apiError{http.StatusNotFound, "unknown_job", "no job " + r.PathValue("id")})
		return
	}
	data, state, errMsg := job.resultBytes()
	switch state {
	case StateDone:
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(data)
	case StateFailed:
		writeErr(w, &apiError{http.StatusConflict, "job_failed", errMsg})
	default:
		writeErr(w, &apiError{http.StatusConflict, "job_not_done",
			"job " + job.ID + " is " + string(state) + "; poll /v1/jobs/" + job.ID})
	}
}

// healthz is the GET /v1/healthz body: liveness plus the load snapshot
// a balancer or operator dashboard polls for — worker count, queue
// occupancy and the job-state tally.
type healthz struct {
	Status           string `json:"status"`
	ModelFingerprint string `json:"model_fingerprint"`
	Workers          int    `json:"workers"`
	QueueDepth       int    `json:"queue_depth"`
	QueueLen         int    `json:"queue_len"`
	Queued           int    `json:"jobs_queued"`
	Running          int    `json:"jobs_running"`
	Done             int    `json:"jobs_done"`
	Failed           int    `json:"jobs_failed"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := healthz{
		Status:           "ok",
		ModelFingerprint: params.Fingerprint(),
		Workers:          s.opts.Workers,
		QueueDepth:       s.opts.QueueDepth,
		QueueLen:         len(s.queue),
	}
	_, h.Queued, h.Running, h.Done, h.Failed = s.tallyJobs()
	writeJSON(w, http.StatusOK, h)
}

// tallyJobs counts jobs by state under the server lock.
func (s *Server) tallyJobs() (total, queued, running, done, failed int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	total = len(s.jobs)
	for _, j := range s.jobs {
		switch state, _, _, _, _, _ := j.snapshot(); state {
		case StateQueued:
			queued++
		case StateRunning:
			running++
		case StateDone:
			done++
		case StateFailed:
			failed++
		}
	}
	return total, queued, running, done, failed
}

// serveStats is the GET /v1/stats body.
type serveStats struct {
	Workers    int   `json:"workers"`
	QueueDepth int   `json:"queue_depth"`
	QueueLen   int   `json:"queue_len"`
	Jobs       int   `json:"jobs"`
	Queued     int   `json:"jobs_queued"`
	Running    int   `json:"jobs_running"`
	Done       int   `json:"jobs_done"`
	Failed     int   `json:"jobs_failed"`
	WarmPools  int   `json:"warm_pools"`
	CacheHits  int64 `json:"cache_hits"`
	CacheMiss  int64 `json:"cache_misses"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := serveStats{
		Workers:    s.opts.Workers,
		QueueDepth: s.opts.QueueDepth,
		QueueLen:   len(s.queue),
		WarmPools:  s.pools.size(),
	}
	st.Jobs, st.Queued, st.Running, st.Done, st.Failed = s.tallyJobs()
	if s.opts.Cache != nil {
		st.CacheHits, st.CacheMiss = s.opts.Cache.Stats()
	}
	writeJSON(w, http.StatusOK, st)
}
