package serve

import (
	"crypto/sha256"
	"fmt"
	"strings"
	"sync"
	"testing"

	"roadrunner/internal/units"
)

// TestServeLoad is the load harness: thousands of concurrent replay,
// optimize and collective submissions — a mix of distinct payloads and
// duplicates — against one server. Every request must succeed, every
// result for a given payload must be byte-identical across its copies,
// identical submissions must coalesce onto one job, and warm evaluator
// reuse must carry most of the replay work.
func TestServeLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("load harness skipped in -short mode")
	}
	tr := ringTraceJSONL(t, 8, 128*units.KB)

	// 64 distinct replay payloads (explicit placements rotating the ranks
	// around one CU), 4 distinct optimize payloads, 2 collectives.
	type payload struct {
		path string
		body []byte
	}
	var distinct []payload
	for p := 0; p < 64; p++ {
		var places []string
		for r := 0; r < 8; r++ {
			slot := (r + p) % 64
			places = append(places, fmt.Sprintf(`{"cu":0,"node":%d,"core":%d}`, slot/4, slot%4))
		}
		distinct = append(distinct, payload{"/v1/replay", []byte(`{"trace":` + jsonString(tr) +
			`,"placement":{"kind":"explicit","places":[` + strings.Join(places, ",") + `]}}`)})
	}
	for p := 0; p < 4; p++ {
		distinct = append(distinct, payload{"/v1/optimize", []byte(fmt.Sprintf(
			`{"trace":%s,"seed":%d,"greedy_rounds":1,"greedy_batch":2,"anneal_rounds":1,"anneal_batch":2}`,
			jsonString(tr), p))})
	}
	distinct = append(distinct,
		payload{"/v1/collective", []byte(`{"op":"allgather-ring","nodes":16,"size_bytes":65536}`)},
		payload{"/v1/collective", []byte(`{"op":"allreduce-ring","nodes":16,"size_bytes":65536}`)},
	)

	// ~2500 requests: every distinct payload submitted copies times, all
	// concurrently.
	const copies = 36
	total := len(distinct) * copies
	if total < 2000 {
		t.Fatalf("harness fires only %d requests, want thousands", total)
	}

	s := New(Options{Workers: 8})
	defer s.Close()
	digests := make([][]string, len(distinct))
	var wg sync.WaitGroup
	for i := range distinct {
		digests[i] = make([]string, copies)
		for c := 0; c < copies; c++ {
			wg.Add(1)
			go func(i, c int) {
				defer wg.Done()
				data := submitWait(t, s, distinct[i].path, distinct[i].body)
				digests[i][c] = fmt.Sprintf("%x", sha256.Sum256(data))
			}(i, c)
		}
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	for i, ds := range digests {
		for c, d := range ds {
			if d != ds[0] {
				t.Errorf("payload %d copy %d: result digest %s != %s (results must be byte-identical per payload)",
					i, c, d[:12], ds[0][:12])
			}
		}
	}

	// Identical submissions coalesced: one job per distinct payload.
	s.mu.Lock()
	jobs := len(s.jobs)
	s.mu.Unlock()
	if jobs != len(distinct) {
		t.Errorf("%d jobs registered for %d distinct payloads under %d submissions", jobs, len(distinct), total)
	}

	// All 64 replay payloads share one trace and config, hence one warm
	// pool; the optimize jobs add their own. The pool bound holds and
	// evaluator reuse dominates builds.
	if got := s.pools.size(); got > s.opts.PoolTraces {
		t.Errorf("%d warm pools exceeds the PoolTraces bound %d", got, s.opts.PoolTraces)
	}
	var built, reused int64
	s.pools.mu.Lock()
	for _, p := range s.pools.pools {
		b, r := p.Stats()
		built += b
		reused += r
	}
	s.pools.mu.Unlock()
	if built+reused == 0 {
		t.Fatal("no evaluator checkouts recorded under load")
	}
	if reused < built {
		t.Errorf("evaluator reuse (%d) below builds (%d); warm pooling is not carrying the load", reused, built)
	}
}
