package serve

import (
	"errors"
	"sync"

	"roadrunner/internal/trace"
)

// checkout resolves a warm evaluator for key: look up (or build) the
// pool, then Get an evaluator from it. The pool cache hands out raw
// pool pointers without refcounting, so a bounded-cache eviction can
// Close a pool between the lookup and the Get; that surfaces as
// trace.ErrPoolClosed and is retried against a freshly built pool
// rather than failing the job — the request was well-formed, and the
// race is the server's own. The attempt bound only guards against a
// pathological eviction storm; one retry suffices in practice.
func (s *Server) checkout(key string, build func() (*trace.EvaluatorPool, error)) (*trace.Evaluator, *trace.EvaluatorPool, error) {
	for attempt := 0; ; attempt++ {
		pool, err := s.pools.get(key, build)
		if err != nil {
			return nil, nil, err
		}
		ev, err := pool.Get()
		if err == nil {
			return ev, pool, nil
		}
		if !errors.Is(err, trace.ErrPoolClosed) || attempt >= 8 {
			return nil, nil, err
		}
	}
}

// poolCache keeps the warm trace.EvaluatorPools, one per
// (trace digest, replay config) pair, so every replay job for a trace
// the service has already seen checks out a warm evaluator instead of
// revalidating the trace and rebuilding an engine. Bounded: beyond max
// entries the oldest pool is closed — serving is an accelerator over a
// pure function, so eviction can change wall clock but never results.
type poolCache struct {
	mu     sync.Mutex
	max    int
	pools  map[string]*trace.EvaluatorPool
	order  []string
	closed bool
}

func newPoolCache(max int) *poolCache {
	return &poolCache{max: max, pools: make(map[string]*trace.EvaluatorPool)}
}

// get returns the pool for key, building it with build on first use and
// evicting the oldest pool beyond the bound. Concurrent callers for one
// key may race to build; the loser's pool is closed and the winner's
// kept, so at most one pool per key is ever retained.
func (c *poolCache) get(key string, build func() (*trace.EvaluatorPool, error)) (*trace.EvaluatorPool, error) {
	c.mu.Lock()
	if p, ok := c.pools[key]; ok && !c.closed {
		c.mu.Unlock()
		return p, nil
	}
	c.mu.Unlock()

	// Build outside the lock: pool construction validates the trace and
	// builds an engine, milliseconds the other shards shouldn't wait on.
	p, err := build()
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		p.Close()
		return nil, errClosed
	}
	if existing, ok := c.pools[key]; ok {
		c.mu.Unlock()
		p.Close()
		return existing, nil
	}
	var evict *trace.EvaluatorPool
	if len(c.pools) >= c.max && len(c.order) > 0 {
		oldest := c.order[0]
		c.order = append([]string(nil), c.order[1:]...)
		evict = c.pools[oldest]
		delete(c.pools, oldest)
	}
	c.pools[key] = p
	c.order = append(c.order, key)
	c.mu.Unlock()
	if evict != nil {
		// Checked-out evaluators drain back through Put, which closes
		// them once the pool is closed.
		evict.Close()
	}
	return p, nil
}

// size reports how many pools are warm.
func (c *poolCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pools)
}

// Close closes every pool.
func (c *poolCache) Close() {
	c.mu.Lock()
	pools := c.pools
	c.pools = make(map[string]*trace.EvaluatorPool)
	c.order = nil
	c.closed = true
	c.mu.Unlock()
	for _, p := range pools {
		p.Close()
	}
}
