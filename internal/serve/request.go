package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"strings"

	"roadrunner/internal/collectives"
	"roadrunner/internal/fabric"
	"roadrunner/internal/ib"
	"roadrunner/internal/params"
	"roadrunner/internal/placement"
	"roadrunner/internal/trace"
	"roadrunner/internal/transport"
	"roadrunner/internal/units"
)

var errClosed = errors.New("serve: server is closed")

// apiError is a structured client-visible failure: the HTTP status, a
// stable machine-readable code and a human-readable message. docs/api.md
// lists every code.
type apiError struct {
	Status  int
	Code    string
	Message string
}

func badRequest(format string, args ...any) *apiError {
	return &apiError{Status: 400, Code: "invalid_request", Message: fmt.Sprintf(format, args...)}
}

// endpointSpec is one rank's location in an explicit placement.
type endpointSpec struct {
	CU   int `json:"cu"`
	Node int `json:"node"`
	Core int `json:"core"`
}

// placementSpec selects a rank→node mapping: one of the named
// generators (block, strided, packed) or an explicit per-rank list.
// The zero value means block on core 1, the facade's default.
type placementSpec struct {
	Kind    string         `json:"kind,omitempty"`
	Stride  int            `json:"stride,omitempty"`
	PerNode int            `json:"per_node,omitempty"`
	Core    *int           `json:"core,omitempty"`
	Places  []endpointSpec `json:"places,omitempty"`
}

// endpoints resolves the spec for a ranks-wide trace on fab.
func (p *placementSpec) endpoints(fab *fabric.System, ranks int) ([]transport.Endpoint, *apiError) {
	core := 1
	if p.Core != nil {
		core = *p.Core
	}
	if core < 0 || core > 3 {
		return nil, badRequest("placement core %d outside 0..3", core)
	}
	kind := p.Kind
	if kind == "" {
		kind = "block"
	}
	switch kind {
	case "block":
		if ranks > fab.Nodes() {
			return nil, badRequest("block placement needs %d nodes, fabric has %d", ranks, fab.Nodes())
		}
		return toEndpoints(collectives.BlockPlacement(fab, ranks, core)), nil
	case "strided":
		stride := p.Stride
		if stride == 0 {
			stride = 180
		}
		if stride < 1 {
			return nil, badRequest("placement stride %d below 1", stride)
		}
		if ranks > fab.Nodes() {
			return nil, badRequest("strided placement needs %d nodes, fabric has %d", ranks, fab.Nodes())
		}
		return toEndpoints(collectives.StridedPlacement(fab, ranks, stride, core)), nil
	case "packed":
		perNode := p.PerNode
		if perNode == 0 {
			perNode = 4
		}
		if perNode < 1 || perNode > 4 {
			return nil, badRequest("placement per_node %d outside 1..4", perNode)
		}
		if nodes := (ranks + perNode - 1) / perNode; nodes > fab.Nodes() {
			return nil, badRequest("packed placement of %d ranks at %d/node needs %d nodes, fabric has %d",
				ranks, perNode, nodes, fab.Nodes())
		}
		return toEndpoints(collectives.PackedPlacement(fab, ranks, perNode)), nil
	case "explicit":
		if len(p.Places) != ranks {
			return nil, badRequest("explicit placement lists %d ranks, trace has %d", len(p.Places), ranks)
		}
		out := make([]transport.Endpoint, ranks)
		for i, e := range p.Places {
			// Bound the CU index directly rather than via GlobalID():
			// CU*NodesPerCU overflows int for absurd CU values and would
			// wrap negative past a fab.Nodes() comparison.
			if e.CU < 0 || e.CU >= fab.Nodes()/params.NodesPerCU ||
				e.Node < 0 || e.Node >= params.NodesPerCU {
				return nil, badRequest("rank %d placed at cu %d node %d outside the %d-node fabric",
					i, e.CU, e.Node, fab.Nodes())
			}
			if e.Core < 0 || e.Core > 3 {
				return nil, badRequest("rank %d on core %d (want 0..3)", i, e.Core)
			}
			out[i] = transport.Endpoint{Node: fabric.NodeID{CU: e.CU, Node: e.Node}, Core: e.Core}
		}
		return out, nil
	}
	return nil, badRequest("unknown placement kind %q (want block, strided, packed or explicit)", kind)
}

// toEndpoints converts collective placements to transport endpoints.
func toEndpoints(places []collectives.Placement) []transport.Endpoint {
	out := make([]transport.Endpoint, len(places))
	for i, p := range places {
		out[i] = transport.Endpoint{Node: p.Node, Core: p.Core}
	}
	return out
}

// policyFor maps the wire congestion field to a transport policy.
func policyFor(congestion string) (transport.Policy, *apiError) {
	switch congestion {
	case "", "on":
		return transport.Congested(), nil
	case "off":
		return transport.InfiniteCapacity(), nil
	}
	return transport.Policy{}, badRequest("congestion must be \"on\" or \"off\", got %q", congestion)
}

// decodeStrict unmarshals JSON rejecting unknown fields, so schema
// typos fail loudly instead of silently taking defaults.
func decodeStrict(data []byte, v any) *apiError {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return &apiError{Status: 400, Code: "invalid_json", Message: err.Error()}
	}
	// Trailing garbage after the object is a malformed request too.
	if dec.More() {
		return &apiError{Status: 400, Code: "invalid_json", Message: "trailing data after request object"}
	}
	return nil
}

// parseTrace decodes and validates an inline JSONL trace, returning it
// with its content digest.
func parseTrace(text string) (*trace.Trace, string, *apiError) {
	if text == "" {
		return nil, "", badRequest("missing required field \"trace\" (inline JSONL)")
	}
	tr, err := trace.Decode(strings.NewReader(text))
	if err != nil {
		return nil, "", &apiError{Status: 400, Code: "invalid_trace", Message: err.Error()}
	}
	sum := sha256.Sum256([]byte(text))
	return tr, hex.EncodeToString(sum[:]), nil
}

// replayRequest is the POST /v1/replay body.
type replayRequest struct {
	Trace        string        `json:"trace"`
	Placement    placementSpec `json:"placement"`
	Congestion   string        `json:"congestion,omitempty"`
	SkipCompute  bool          `json:"skip_compute,omitempty"`
	ComputeScale float64       `json:"compute_scale,omitempty"`
	Observe      string        `json:"observe,omitempty"`
}

// parseReplay validates a replay submission and builds its work
// function: check a warm evaluator out of the (trace, config) pool,
// evaluate the placement, render the JSONL artifact.
func (s *Server) parseReplay(body []byte) (func() ([]byte, error), *apiError) {
	var req replayRequest
	if aerr := decodeStrict(body, &req); aerr != nil {
		return nil, aerr
	}
	tr, digest, aerr := parseTrace(req.Trace)
	if aerr != nil {
		return nil, aerr
	}
	if math.IsNaN(req.ComputeScale) || math.IsInf(req.ComputeScale, 0) || req.ComputeScale < 0 {
		return nil, badRequest("compute_scale %g is not a finite non-negative number", req.ComputeScale)
	}
	var observe trace.Observe
	switch req.Observe {
	case "", "none":
	case "sends":
		observe = trace.ObserveSends
	case "census":
		observe = trace.ObserveCensus
	case "all":
		observe = trace.ObserveAll
	default:
		return nil, badRequest("observe must be \"none\", \"sends\", \"census\" or \"all\", got %q", req.Observe)
	}
	policy, aerr := policyFor(req.Congestion)
	if aerr != nil {
		return nil, aerr
	}
	places, aerr := req.Placement.endpoints(s.fab, tr.Meta.Ranks)
	if aerr != nil {
		return nil, aerr
	}
	cfg := trace.ReplayConfig{
		Fabric:       s.fab,
		Profile:      ib.OpenMPI(),
		Policy:       policy,
		ComputeScale: req.ComputeScale,
		SkipCompute:  req.SkipCompute,
		Observe:      observe,
	}
	// The pool key is everything the evaluator fixes for its lifetime:
	// the trace bytes and the config minus the placement.
	poolKey := fmt.Sprintf("%s|cong=%v,ch=%d|skip=%v|scale=%g|obs=%d",
		digest, policy.Enabled, policy.Channels, cfg.SkipCompute, cfg.ComputeScale, observe)
	return func() ([]byte, error) {
		ev, pool, err := s.checkout(poolKey, func() (*trace.EvaluatorPool, error) {
			return trace.NewEvaluatorPool(tr, cfg, s.opts.PoolIdle)
		})
		if err != nil {
			return nil, err
		}
		defer pool.Put(ev)
		res, err := ev.Evaluate(places)
		if err != nil {
			return nil, err
		}
		return renderReplay(&req, tr, digest, res)
	}, nil
}

// optimizeRequest is the POST /v1/optimize body. Zero search knobs take
// the placement package's defaults; the result is a deterministic
// function of every field (the server's worker count never leaks in).
type optimizeRequest struct {
	Trace          string `json:"trace"`
	Congestion     string `json:"congestion,omitempty"`
	FullSchedule   bool   `json:"full_schedule,omitempty"`
	Seed           int64  `json:"seed,omitempty"`
	Stride         int    `json:"stride,omitempty"`
	PerNode        int    `json:"per_node,omitempty"`
	GreedyRounds   int    `json:"greedy_rounds,omitempty"`
	GreedyBatch    int    `json:"greedy_batch,omitempty"`
	GreedyPatience int    `json:"greedy_patience,omitempty"`
	AnnealRounds   int    `json:"anneal_rounds,omitempty"`
	AnnealBatch    int    `json:"anneal_batch,omitempty"`
}

// parseOptimize validates an optimize submission and builds its work
// function: a full placement search seeded from the block/strided/
// packed baselines.
func (s *Server) parseOptimize(body []byte) (func() ([]byte, error), *apiError) {
	var req optimizeRequest
	if aerr := decodeStrict(body, &req); aerr != nil {
		return nil, aerr
	}
	tr, digest, aerr := parseTrace(req.Trace)
	if aerr != nil {
		return nil, aerr
	}
	if req.GreedyRounds < 0 || req.GreedyBatch < 0 || req.GreedyPatience < 0 ||
		req.AnnealRounds < 0 || req.AnnealBatch < 0 {
		return nil, badRequest("search knobs must be non-negative")
	}
	stride := req.Stride
	if stride == 0 {
		stride = 180
	}
	if stride < 1 {
		return nil, badRequest("stride %d below 1", stride)
	}
	perNode := req.PerNode
	if perNode == 0 {
		perNode = 4
	}
	if perNode < 1 || perNode > 4 {
		return nil, badRequest("per_node %d outside 1..4", perNode)
	}
	policy, aerr := policyFor(req.Congestion)
	if aerr != nil {
		return nil, aerr
	}
	if tr.Meta.Ranks > s.fab.Nodes() {
		return nil, badRequest("trace spans %d ranks, fabric has %d nodes", tr.Meta.Ranks, s.fab.Nodes())
	}
	cfg := placement.Config{
		Trace: tr,
		Replay: trace.ReplayConfig{
			Fabric:      s.fab,
			Profile:     ib.OpenMPI(),
			Policy:      policy,
			SkipCompute: !req.FullSchedule,
		},
		Starts: []placement.Start{
			{Name: "block", Places: toEndpoints(collectives.BlockPlacement(s.fab, tr.Meta.Ranks, 1))},
			{Name: "strided", Places: toEndpoints(collectives.StridedPlacement(s.fab, tr.Meta.Ranks, stride, 1))},
			{Name: "packed", Places: toEndpoints(collectives.PackedPlacement(s.fab, tr.Meta.Ranks, perNode))},
		},
		Seed:           req.Seed,
		Workers:        s.opts.OptimizeWorkers,
		GreedyRounds:   req.GreedyRounds,
		GreedyBatch:    req.GreedyBatch,
		GreedyPatience: req.GreedyPatience,
		AnnealRounds:   req.AnnealRounds,
		AnnealBatch:    req.AnnealBatch,
	}
	return func() ([]byte, error) {
		res, err := placement.Optimize(cfg)
		if err != nil {
			return nil, err
		}
		return renderOptimize(&req, tr, digest, res)
	}, nil
}

// collectiveRequest is the POST /v1/collective body.
type collectiveRequest struct {
	Op         string `json:"op"`
	Nodes      int    `json:"nodes"`
	SizeBytes  int64  `json:"size_bytes"`
	Congestion string `json:"congestion,omitempty"`
}

// parseCollective validates a collective submission and builds its work
// function: one collective run over the smallest fabric that holds it.
func (s *Server) parseCollective(body []byte) (func() ([]byte, error), *apiError) {
	var req collectiveRequest
	if aerr := decodeStrict(body, &req); aerr != nil {
		return nil, aerr
	}
	op := collectives.Op(req.Op)
	known := false
	for _, o := range collectives.Ops() {
		if o == op {
			known = true
			break
		}
	}
	if !known {
		return nil, badRequest("unknown op %q (have %v)", req.Op, collectives.Ops())
	}
	if req.SizeBytes < 0 {
		return nil, badRequest("size_bytes %d is negative", req.SizeBytes)
	}
	congested := true
	switch req.Congestion {
	case "", "on":
	case "off":
		congested = false
	default:
		return nil, badRequest("congestion must be \"on\" or \"off\", got %q", req.Congestion)
	}
	// Validate the communicator now so a bad node count is a 400 at
	// submission, not a failed job.
	mk := collectives.DefaultConfig
	if congested {
		mk = collectives.CongestedConfig
	}
	if _, err := mk(req.Nodes); err != nil {
		return nil, badRequest("%v", err)
	}
	return func() ([]byte, error) {
		cfg, err := mk(req.Nodes)
		if err != nil {
			return nil, err
		}
		res, err := collectives.Run(cfg, op, units.Size(req.SizeBytes))
		if err != nil {
			return nil, err
		}
		return renderCollective(&req, res)
	}, nil
}
