package serve

import (
	"bytes"
	"encoding/json"

	"roadrunner/internal/collectives"
	"roadrunner/internal/params"
	"roadrunner/internal/placement"
	"roadrunner/internal/trace"
	"roadrunner/internal/transport"
	"roadrunner/internal/units"
)

// Result artifacts are JSONL: one self-describing object per line, the
// first line a header naming the artifact format. Every line is
// rendered from structs (never from map iteration) and every simulated
// duration is an integer picosecond count, so an artifact is
// byte-canonical: the same request on the same build always renders
// the same bytes, which is the property the artifact cache and the
// serial-vs-concurrent determinism tests rely on. docs/api.md
// documents each line kind.

// ResultFormat and ResultVersion identify the artifact format (the
// header line's "format" and "version" fields).
const (
	ResultFormat  = "roadrunner-serve-result"
	ResultVersion = 1
)

type headerLine struct {
	Kind    string `json:"kind"`
	Format  string `json:"format"`
	Version int    `json:"version"`
	Job     string `json:"job"`
	// ModelFingerprint is the digest over every calibrated model input
	// (params.Fingerprint): which model produced this artifact.
	ModelFingerprint string `json:"model_fingerprint"`
}

type traceLine struct {
	Kind    string `json:"kind"`
	Name    string `json:"name"`
	App     string `json:"app"`
	Ranks   int    `json:"ranks"`
	Records int    `json:"records"`
	// SHA256 is the digest of the submitted trace text: the content
	// address the trace contributes to the job key.
	SHA256 string `json:"sha256"`
}

type replayLine struct {
	Kind         string     `json:"kind"`
	MakespanPs   units.Time `json:"makespan_ps"`
	Messages     int64      `json:"messages"`
	WireBytes    units.Size `json:"wire_bytes"`
	Events       int64      `json:"events"`
	CalendarPeak int        `json:"calendar_peak"`
}

type censusLine struct {
	Kind         string     `json:"kind"`
	HorizonPs    units.Time `json:"horizon_ps"`
	Links        int        `json:"links"`
	Queued       int64      `json:"queued"`
	TotalWaitPs  units.Time `json:"total_wait_ps"`
	PeakHeld     int        `json:"peak_held"`
	UplinkQueued int64      `json:"uplink_queued"`
	UplinkWaitPs units.Time `json:"uplink_wait_ps"`
}

type linkLine struct {
	Kind        string     `json:"kind"`
	Rank        int        `json:"rank"`
	Link        string     `json:"link"`
	LinkKind    string     `json:"link_kind"`
	Messages    int64      `json:"messages"`
	Bytes       units.Size `json:"bytes"`
	Queued      int64      `json:"queued"`
	WaitPs      units.Time `json:"wait_ps"`
	BusyPs      units.Time `json:"busy_ps"`
	Utilization float64    `json:"utilization"`
}

type sendLine struct {
	Kind        string     `json:"kind"`
	Src         int        `json:"src"`
	Dst         int        `json:"dst"`
	Tag         int        `json:"tag"`
	Bytes       units.Size `json:"bytes"`
	StartPs     units.Time `json:"start_ps"`
	EndPs       units.Time `json:"end_ps"`
	DeliveredPs units.Time `json:"delivered_ps"`
}

type baselineLine struct {
	Kind   string     `json:"kind"`
	Name   string     `json:"name"`
	TimePs units.Time `json:"time_ps"`
}

type roundLine struct {
	Kind        string     `json:"kind"`
	Phase       string     `json:"phase"`
	Round       int        `json:"round"`
	TempPs      units.Time `json:"temp_ps"`
	Accepted    int        `json:"accepted"`
	CurrentPs   units.Time `json:"current_ps"`
	BestPs      units.Time `json:"best_ps"`
	Evaluations int        `json:"evaluations"`
}

type winnerLine struct {
	Kind        string     `json:"kind"`
	Start       string     `json:"start"`
	StartPs     units.Time `json:"start_ps"`
	BestPs      units.Time `json:"best_ps"`
	Improvement float64    `json:"improvement"`
	Evaluations int        `json:"evaluations"`
}

type assignLine struct {
	Kind string `json:"kind"`
	Rank int    `json:"rank"`
	CU   int    `json:"cu"`
	Node int    `json:"node"`
	Core int    `json:"core"`
}

type collectiveLine struct {
	Kind         string     `json:"kind"`
	Op           string     `json:"op"`
	Ranks        int        `json:"ranks"`
	SizeBytes    units.Size `json:"size_bytes"`
	TimePs       units.Time `json:"time_ps"`
	MinTimePs    units.Time `json:"min_time_ps"`
	Messages     int64      `json:"messages"`
	WireBytes    units.Size `json:"wire_bytes"`
	Events       int64      `json:"events"`
	CalendarPeak int        `json:"calendar_peak"`
}

// artifact accumulates JSONL lines.
type artifact struct {
	buf bytes.Buffer
	enc *json.Encoder
	err error
}

func newArtifact(job string) *artifact {
	a := &artifact{}
	a.enc = json.NewEncoder(&a.buf)
	a.line(headerLine{Kind: "header", Format: ResultFormat, Version: ResultVersion,
		Job: job, ModelFingerprint: params.Fingerprint()})
	return a
}

func (a *artifact) line(v any) {
	if a.err == nil {
		a.err = a.enc.Encode(v)
	}
}

func (a *artifact) bytes() ([]byte, error) {
	if a.err != nil {
		return nil, a.err
	}
	return a.buf.Bytes(), nil
}

// censusLines renders the census summary and its ranked top links.
func (a *artifact) censusLines(c *transport.Census) {
	if c == nil {
		return
	}
	a.line(censusLine{Kind: "census", HorizonPs: c.Horizon, Links: c.Links,
		Queued: c.Queued, TotalWaitPs: c.TotalWait, PeakHeld: c.PeakHeld,
		UplinkQueued: c.UplinkQueued, UplinkWaitPs: c.UplinkWait})
	for i, u := range c.Top {
		a.line(linkLine{Kind: "link", Rank: i + 1, Link: u.Link.String(),
			LinkKind: u.Link.Kind.String(), Messages: u.Messages, Bytes: u.Bytes,
			Queued: u.Queued, WaitPs: u.Wait, BusyPs: u.Busy, Utilization: u.Utilization})
	}
}

// normCongestion echoes the congestion field with its default applied.
func normCongestion(c string) string {
	if c == "" {
		return "on"
	}
	return c
}

// renderReplay renders a replay job's artifact.
func renderReplay(req *replayRequest, tr *trace.Trace, digest string, res *trace.ReplayResult) ([]byte, error) {
	a := newArtifact("replay")
	a.line(traceLine{Kind: "trace", Name: tr.Meta.Name, App: tr.Meta.App,
		Ranks: tr.Meta.Ranks, Records: len(tr.Records), SHA256: digest})
	echo := struct {
		Kind         string        `json:"kind"`
		Placement    placementSpec `json:"placement"`
		Congestion   string        `json:"congestion"`
		SkipCompute  bool          `json:"skip_compute"`
		ComputeScale float64       `json:"compute_scale"`
		Observe      string        `json:"observe"`
	}{"request", req.Placement, normCongestion(req.Congestion), req.SkipCompute,
		req.ComputeScale, req.Observe}
	if echo.Observe == "" {
		echo.Observe = "none"
	}
	a.line(echo)
	a.line(replayLine{Kind: "replay", MakespanPs: res.Time, Messages: res.Messages,
		WireBytes: res.WireBytes, Events: res.EngineStats.Dispatched,
		CalendarPeak: res.EngineStats.CalendarPeak})
	a.censusLines(res.Congestion)
	for _, m := range res.Sends {
		a.line(sendLine{Kind: "send", Src: m.SrcRank, Dst: m.DstRank, Tag: m.Tag,
			Bytes: m.Size, StartPs: m.SendStart, EndPs: m.SendEnd, DeliveredPs: m.Delivered})
	}
	return a.bytes()
}

// renderOptimize renders an optimize job's artifact.
func renderOptimize(req *optimizeRequest, tr *trace.Trace, digest string, res *placement.Result) ([]byte, error) {
	a := newArtifact("optimize")
	a.line(traceLine{Kind: "trace", Name: tr.Meta.Name, App: tr.Meta.App,
		Ranks: tr.Meta.Ranks, Records: len(tr.Records), SHA256: digest})
	echo := struct {
		Kind         string `json:"kind"`
		Congestion   string `json:"congestion"`
		FullSchedule bool   `json:"full_schedule"`
		Seed         int64  `json:"seed"`
	}{"request", normCongestion(req.Congestion), req.FullSchedule, req.Seed}
	a.line(echo)
	for _, b := range res.Baselines {
		a.line(baselineLine{Kind: "baseline", Name: b.Name, TimePs: b.Time})
	}
	for _, r := range res.Rounds {
		a.line(roundLine{Kind: "round", Phase: r.Phase, Round: r.Round, TempPs: r.Temp,
			Accepted: r.Accepted, CurrentPs: r.Current, BestPs: r.Best, Evaluations: r.Evaluations})
	}
	a.line(winnerLine{Kind: "winner", Start: res.Start, StartPs: res.StartTime,
		BestPs: res.BestTime, Improvement: res.Improvement, Evaluations: res.Evaluations})
	for rank, ep := range res.Best {
		a.line(assignLine{Kind: "assign", Rank: rank, CU: ep.Node.CU, Node: ep.Node.Node, Core: ep.Core})
	}
	return a.bytes()
}

// renderCollective renders a collective job's artifact.
func renderCollective(req *collectiveRequest, res *collectives.Result) ([]byte, error) {
	a := newArtifact("collective")
	echo := struct {
		Kind       string `json:"kind"`
		Op         string `json:"op"`
		Nodes      int    `json:"nodes"`
		SizeBytes  int64  `json:"size_bytes"`
		Congestion string `json:"congestion"`
	}{"request", req.Op, req.Nodes, req.SizeBytes, normCongestion(req.Congestion)}
	a.line(echo)
	a.line(collectiveLine{Kind: "collective", Op: string(res.Op), Ranks: res.Ranks,
		SizeBytes: res.Size, TimePs: res.Time, MinTimePs: res.MinTime,
		Messages: res.Messages, WireBytes: res.WireBytes,
		Events: res.EngineStats.Dispatched, CalendarPeak: res.EngineStats.CalendarPeak})
	a.censusLines(res.Congestion)
	return a.bytes()
}
