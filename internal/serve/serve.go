// Package serve is the simulation-as-a-service layer: a long-running
// HTTP/JSON server that exposes the facade's replay, placement-search
// and collective engines as asynchronous jobs.
//
// POST /v1/replay, /v1/optimize and /v1/collective submit work and
// return a job id; GET /v1/jobs/{id} polls the job's state machine
// (queued → running → done | failed) and GET /v1/jobs/{id}/result
// streams the finished job's JSONL report. docs/api.md is the
// normative reference for every endpoint, schema and error code.
//
// The execution model is a sharded worker pool: Options.Workers
// request workers (GOMAXPROCS by default) drain one bounded job queue,
// and each replay checks a warm trace.Evaluator out of a per-
// (trace, config) EvaluatorPool, so serving one more placement of a
// trace the service has already seen costs only the replay's events —
// the same pooling win the placement optimizer's inner loop runs on.
// Identical submissions coalesce: a job's id is derived from the
// request bytes, so resubmitting a queued or running job returns the
// existing job rather than enqueueing a duplicate, and a finished
// job's artifact is served from memory or from the content-addressed
// artifact cache (internal/orchestrator, keyed by the request bytes,
// params.Fingerprint and the build digest) without touching an engine.
//
// Results are deterministic: a job's artifact is a pure function of
// the request bytes and the calibrated model inputs — byte-identical
// whether computed serially or under concurrent load, on a cold or a
// warm evaluator, with any worker count. docs/determinism.md states
// the contract; TestServeResultsDeterministic and TestServeLoad pin it.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"time"

	"roadrunner/internal/fabric"
	"roadrunner/internal/orchestrator"
	"roadrunner/internal/params"
)

// Options configures a Server. The zero value serves with GOMAXPROCS
// workers, a 1024-deep queue, a 64 MB body bound, eight warm evaluator
// pools and no persistent artifact cache.
type Options struct {
	// Workers is the number of request workers draining the job queue
	// (<= 0 means GOMAXPROCS). Worker count changes wall clock only,
	// never results.
	Workers int
	// QueueDepth bounds the job queue; submissions that find it full
	// are rejected with 503 queue_full (<= 0 means 1024).
	QueueDepth int
	// MaxBodyBytes bounds one request body; larger submissions are
	// rejected with 413 body_too_large (<= 0 means 64 MB).
	MaxBodyBytes int64
	// MaxJobs bounds the in-memory job registry; once reached, the
	// oldest finished jobs are evicted to make room (<= 0 means 8192).
	MaxJobs int
	// PoolTraces bounds how many (trace, config) evaluator pools stay
	// warm; the least recently created is closed beyond the bound
	// (<= 0 means 8).
	PoolTraces int
	// PoolIdle bounds the idle evaluators each pool retains
	// (<= 0 means Workers).
	PoolIdle int
	// OptimizeWorkers is the evaluator-pool size of each optimize job
	// (<= 0 means 1: one optimize job saturates one request worker,
	// keeping the shards independent). Like Workers, it changes wall
	// clock only — placement.Optimize is worker-count invariant.
	OptimizeWorkers int
	// Cache, when non-nil, persists finished job artifacts
	// content-addressed by the request bytes, params.Fingerprint and
	// the build digest, so identical requests across service restarts
	// (same binary, same model inputs) are free.
	Cache *orchestrator.Cache
}

// withDefaults fills zero option fields.
func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 1024
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 64 << 20
	}
	if o.MaxJobs <= 0 {
		o.MaxJobs = 8192
	}
	if o.PoolTraces <= 0 {
		o.PoolTraces = 8
	}
	if o.PoolIdle <= 0 {
		o.PoolIdle = o.Workers
	}
	if o.OptimizeWorkers <= 0 {
		o.OptimizeWorkers = 1
	}
	return o
}

// Server is one serving instance: the HTTP handler, the job registry,
// the bounded queue, the worker pool and the warm evaluator pools.
// Create with New, serve its Handler, and Close it when done.
type Server struct {
	opts  Options
	mux   *http.ServeMux
	fab   *fabric.System
	pools *poolCache
	queue chan *Job
	wg    sync.WaitGroup

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string // job ids in submission order, for eviction
	closed bool
}

// New builds a Server and starts its workers.
func New(opts Options) *Server {
	o := opts.withDefaults()
	s := &Server{
		opts:  o,
		mux:   http.NewServeMux(),
		fab:   fabric.New(),
		pools: newPoolCache(o.PoolTraces),
		queue: make(chan *Job, o.QueueDepth),
		jobs:  make(map[string]*Job),
	}
	s.mux.HandleFunc("POST /v1/replay", s.handleReplay)
	s.mux.HandleFunc("POST /v1/optimize", s.handleOptimize)
	s.mux.HandleFunc("POST /v1/collective", s.handleCollective)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	for w := 0; w < o.Workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops accepting submissions, drains the queue, waits for
// in-flight jobs and releases every warm evaluator. Close is
// idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.queue)
	s.wg.Wait()
	s.pools.Close()
}

// worker drains the job queue: runs each job's work function and moves
// it through running → done | failed, persisting finished artifacts to
// the cache.
func (s *Server) worker() {
	defer s.wg.Done()
	for job := range s.queue {
		job.setRunning()
		data, err := runJob(job)
		if err != nil {
			job.fail(err)
			continue
		}
		job.finish(data, false)
		if s.opts.Cache != nil {
			// A failed store never fails the job — the artifact is
			// good; the cache is an accelerator, not a dependency.
			_ = s.opts.Cache.PutRaw(job.cacheKey, data)
		}
	}
}

// runJob runs one job's work function, converting a panic into that
// job's failure: workers are shared across requests, so an engine panic
// on one crafted submission must never take down the process.
func runJob(job *Job) (data []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("job panicked: %v", r)
		}
	}()
	return job.run()
}

// jobKey derives a job's content address from the request kind and raw
// body bytes plus the model-input fingerprint: identical submissions
// map to one job, and a model recalibration changes every key.
func jobKey(kind string, body []byte) string {
	h := sha256.New()
	h.Write([]byte("roadrunner-serve-v1\n"))
	h.Write([]byte(kind))
	h.Write([]byte{'\n'})
	h.Write([]byte(params.Fingerprint()))
	h.Write([]byte{'\n'})
	h.Write(body)
	return hex.EncodeToString(h.Sum(nil))
}

// submit registers and enqueues a job for the given request, reusing an
// existing job for identical request bytes and short-circuiting to the
// artifact cache. parse is called only on a genuinely new request; it
// returns the job's work function or a user error (reported as 4xx).
func (s *Server) submit(kind string, body []byte, parse func() (func() ([]byte, error), *apiError)) (*Job, bool, *apiError) {
	key := jobKey(kind, body)
	id := kind[:2] + "-" + key[:24]

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, false, &apiError{http.StatusServiceUnavailable, "shutting_down", "server is shutting down"}
	}
	if job, ok := s.jobs[id]; ok {
		s.mu.Unlock()
		return job, false, nil
	}
	s.mu.Unlock()

	// Cache probe and request parsing both happen outside the registry
	// lock; a concurrent identical submission is resolved in enqueue.
	if s.opts.Cache != nil {
		if data, ok := s.opts.Cache.GetRaw(s.cacheKey(kind, body)); ok {
			job := newJob(id, kind, key, s.cacheKey(kind, body), nil)
			job.finish(data, true)
			return s.enqueue(job)
		}
	}
	run, aerr := parse()
	if aerr != nil {
		return nil, false, aerr
	}
	return s.enqueue(newJob(id, kind, key, s.cacheKey(kind, body), run))
}

// enqueue registers a job and reserves its queue slot in one locked
// step. Holding the lock across both operations is what makes the
// submission path safe: the closed flag is re-checked at the send (a
// submission racing Close can never hit the closed channel, because
// Close sets the flag under this lock before closing the queue), and a
// job id is never visible to any client unless the job is actually
// queued (a full queue rejects the submission before the registry
// insert, so no client is handed an id that later resolves to 404).
// Jobs born finished (cache hits) skip the queue. Returns the
// registered job and whether this call created it.
func (s *Server) enqueue(job *Job) (*Job, bool, *apiError) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false, &apiError{http.StatusServiceUnavailable, "shutting_down", "server is shutting down"}
	}
	if existing, ok := s.jobs[job.ID]; ok {
		// A concurrent identical submission won the race; its job is
		// already queued (or done) and ours is never enqueued.
		return existing, false, nil
	}
	if aerr := s.makeRoomLocked(); aerr != nil {
		return nil, false, aerr
	}
	if job.run != nil {
		select {
		case s.queue <- job:
		default:
			return nil, false, &apiError{http.StatusServiceUnavailable, "queue_full",
				fmt.Sprintf("job queue is full (%d deep); retry later", s.opts.QueueDepth)}
		}
	}
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	return job, true, nil
}

// cacheKey is the persistent artifact address for a request (valid only
// when a cache is configured).
func (s *Server) cacheKey(kind string, body []byte) string {
	if s.opts.Cache == nil {
		return ""
	}
	return s.opts.Cache.RawKey("serve/"+kind, body)
}

// register inserts a job, evicting the oldest finished jobs when the
// registry is full. If a concurrent identical submission won the race,
// the existing job is returned instead of the caller's.
func (s *Server) register(job *Job) (*Job, *apiError) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if existing, ok := s.jobs[job.ID]; ok {
		return existing, nil
	}
	if aerr := s.makeRoomLocked(); aerr != nil {
		return nil, aerr
	}
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	return job, nil
}

// makeRoomLocked evicts the oldest finished jobs when the registry is
// full, answering registry_full when nothing is evictable. Caller holds
// s.mu.
func (s *Server) makeRoomLocked() *apiError {
	if len(s.jobs) < s.opts.MaxJobs {
		return nil
	}
	kept := s.order[:0]
	for _, id := range s.order {
		if len(s.jobs) >= s.opts.MaxJobs && s.jobs[id].settled() {
			delete(s.jobs, id)
			continue
		}
		kept = append(kept, id)
	}
	s.order = append([]string(nil), kept...)
	if len(s.jobs) >= s.opts.MaxJobs {
		return &apiError{http.StatusServiceUnavailable, "registry_full",
			fmt.Sprintf("%d jobs in flight; retry later", len(s.jobs))}
	}
	return nil
}

// lookup finds a job by id.
func (s *Server) lookup(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	return job, ok
}

// JobState is one job's position in the lifecycle state machine:
// queued → running → done | failed (cached submissions are born done).
type JobState string

// The job states.
const (
	StateQueued  JobState = "queued"
	StateRunning JobState = "running"
	StateDone    JobState = "done"
	StateFailed  JobState = "failed"
)

// Job is one submitted unit of work and its lifecycle.
type Job struct {
	ID       string
	Kind     string
	key      string
	cacheKey string
	run      func() ([]byte, error)

	mu        sync.Mutex
	state     JobState
	err       string
	result    []byte
	cached    bool
	submitted time.Time
	started   time.Time
	finished  time.Time
}

// newJob builds a queued job.
func newJob(id, kind, key, cacheKey string, run func() ([]byte, error)) *Job {
	return &Job{ID: id, Kind: kind, key: key, cacheKey: cacheKey, run: run,
		state: StateQueued, submitted: time.Now()}
}

func (j *Job) setRunning() {
	j.mu.Lock()
	j.state = StateRunning
	j.started = time.Now()
	j.mu.Unlock()
}

func (j *Job) finish(data []byte, cached bool) {
	j.mu.Lock()
	j.state = StateDone
	j.result = data
	j.cached = cached
	j.finished = time.Now()
	j.mu.Unlock()
}

func (j *Job) fail(err error) {
	j.mu.Lock()
	j.state = StateFailed
	j.err = err.Error()
	j.finished = time.Now()
	j.mu.Unlock()
}

// settled reports whether the job reached a terminal state.
func (j *Job) settled() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state == StateDone || j.state == StateFailed
}

// snapshot returns the job's externally visible status fields.
func (j *Job) snapshot() (state JobState, errMsg string, cached bool, submitted, started, finished time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.err, j.cached, j.submitted, j.started, j.finished
}

// resultBytes returns the finished artifact.
func (j *Job) resultBytes() ([]byte, JobState, string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.state, j.err
}
