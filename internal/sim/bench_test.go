package sim

import (
	"testing"

	"roadrunner/internal/units"
)

// BenchmarkEventLoop measures the raw calendar hot path: schedule and
// dispatch a batch of events, including events scheduled from inside
// event context (the common model pattern).
//
// Measured on the reference box (Xeon @ 2.10GHz, -benchtime 200x):
//
//	before (container/heap over []*event, map proc sets, eager reasons):
//	  BenchmarkEventLoop         445718 ns/op   95512 B/op   3087 allocs/op
//	  BenchmarkProcParkUnpark   2773420 ns/op  183035 B/op  12768 allocs/op
//	  BenchmarkMailboxPingPong   711675 ns/op   56766 B/op   4117 allocs/op
//
//	after (value-slab binary heap, intrusive lists, reusable wake closures):
//	  BenchmarkEventLoop         265646 ns/op   75864 B/op   1036 allocs/op
//	  BenchmarkProcParkUnpark   1427189 ns/op   30170 B/op    392 allocs/op
//	  BenchmarkMailboxPingPong   516821 ns/op    9520 B/op   1044 allocs/op
//
//	after PR 5 (iter.Pull coroutine procs, lazy parked set, hole-sift
//	heap, shift-down queue pops):
//	  BenchmarkEventLoop         256195 ns/op   75848 B/op   1036 allocs/op
//	  BenchmarkProcParkUnpark    524442 ns/op   36296 B/op    968 allocs/op
//	  BenchmarkMailboxPingPong   143468 ns/op    1544 B/op     43 allocs/op
func BenchmarkEventLoop(b *testing.B) {
	const batch = 1024
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < batch; j++ {
			d := units.Time(j%97) * units.Nanosecond
			e.Schedule(d, func() {
				e.Schedule(units.Nanosecond, func() {})
			})
		}
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProcParkUnpark measures proc churn: a ring of procs that
// repeatedly sleep, exercising park/unpark bookkeeping (the structures
// the orchestrator amplifies when many DES engines run at once).
func BenchmarkProcParkUnpark(b *testing.B) {
	const procs, rounds = 64, 32
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < procs; j++ {
			j := j
			e.Spawn("p", func(p *Proc) {
				for r := 0; r < rounds; r++ {
					p.Sleep(units.Time(1+j%7) * units.Nanosecond)
				}
			})
		}
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
		e.Close()
	}
}

// BenchmarkMailboxPingPong measures two procs bouncing messages through
// mailboxes — the pattern underlying every modelled MPI exchange.
func BenchmarkMailboxPingPong(b *testing.B) {
	const rounds = 256
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		ab := NewMailbox[int](e, "ab")
		ba := NewMailbox[int](e, "ba")
		e.Spawn("a", func(p *Proc) {
			for r := 0; r < rounds; r++ {
				ab.Put(r)
				ba.Get(p)
			}
		})
		e.Spawn("b", func(p *Proc) {
			for r := 0; r < rounds; r++ {
				ab.Get(p)
				p.Sleep(units.Nanosecond)
				ba.Put(r)
			}
		})
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
		e.Close()
	}
}
