package sim

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"roadrunner/internal/units"
)

// Cluster is a conservative, time-windowed parallel harness over several
// Engines ("domains"). Each domain owns its calendar slab, its procs and
// its model state outright; domains advance in lock-step safe windows
// [T, T+lookahead), where T is the earliest pending event across all
// domains and lookahead is the guaranteed minimum latency of any
// cross-domain interaction (for the Roadrunner fabric: the cable + HCA
// floor of transport.CrossDomainLookahead). Inside a window every domain
// runs its own serial event loop — on its own worker goroutine — exactly
// as a lone Engine would; cross-domain events are posted with Send into
// per-(src,dst) bounded queues and exchanged only at window boundaries,
// merged in the deterministic order (timestamp, then source domain id,
// then per-source sequence).
//
// Determinism contract: a cluster run dispatches, per domain, exactly
// the event sequence the same domains produce under any worker count —
// including workers=1 — because domains share no model state (the
// caller's obligation; the race detector enforces it in tests) and the
// boundary merge is a pure function of the events' (time, src, seq)
// keys. The partition-equivalence tests pin this byte-for-byte.
//
// A lookahead of zero declares the domains fully independent: no
// cross-domain events are permitted (Send panics), windows degenerate
// to one, and each domain runs to completion on whichever worker claims
// it. This is the mode the collectives/scenario layers use to run
// independent simulations — separate sweep points, per-CU exchanges,
// replay placements — across cores with results identical to the serial
// loop.
type Cluster struct {
	lookahead units.Time
	doms      []*Engine
	queues    [][]xevent // [src*n+dst] cross-domain events awaiting merge
	sendSeq   []int64    // per-source sequence for the merge order
	bound     int        // per-pair queue capacity

	stats  []DomainStats
	wstats []WorkerStats
	winEnd units.Time // current window's exclusive upper bound

	ran    bool
	failed atomic.Pointer[clusterFailure]
}

// xevent is one cross-domain event awaiting its window boundary.
type xevent struct {
	at  units.Time
	src int32
	seq int64
	fn  func()
}

type clusterFailure struct{ err error }

// DomainStats counts one domain's share of a cluster run. All fields
// are deterministic for a given model and worker count.
type DomainStats struct {
	Events   int64 // events this domain dispatched
	Windows  int64 // safe windows in which it dispatched at least one event
	Sent     int64 // cross-domain events it posted
	Received int64 // cross-domain events merged into its calendar
}

// WorkerStats is one worker goroutine's wall-clock accounting: Busy is
// time spent executing domain windows, Idle is time spent waiting at
// window barriers for slower domains. Wall times vary run to run; they
// are observability output, never simulation input.
type WorkerStats struct {
	Busy time.Duration
	Idle time.Duration
}

// DefaultQueueBound is the per-(src,dst) cross-domain queue capacity: far
// above what any window of a well-formed model posts, so hitting it
// means a runaway send loop rather than a throughput limit.
const DefaultQueueBound = 1 << 20

// NewCluster creates a cluster of n fresh domain engines with the given
// cross-domain lookahead (>= 0; zero means fully independent domains).
func NewCluster(n int, lookahead units.Time) *Cluster {
	if n < 1 {
		panic(fmt.Sprintf("sim: cluster of %d domains", n))
	}
	if lookahead < 0 {
		panic(fmt.Sprintf("sim: negative lookahead %v", lookahead))
	}
	c := &Cluster{
		lookahead: lookahead,
		doms:      make([]*Engine, n),
		queues:    make([][]xevent, n*n),
		sendSeq:   make([]int64, n),
		bound:     DefaultQueueBound,
		stats:     make([]DomainStats, n),
	}
	for i := range c.doms {
		c.doms[i] = NewEngine()
	}
	return c
}

// SetQueueBound overrides the per-pair cross-domain queue capacity.
func (c *Cluster) SetQueueBound(n int) {
	if n < 1 {
		panic(fmt.Sprintf("sim: queue bound %d", n))
	}
	c.bound = n
}

// Domains returns the domain count.
func (c *Cluster) Domains() int { return len(c.doms) }

// Domain returns domain i's engine, on which the caller spawns procs and
// schedules events exactly as on a standalone Engine.
func (c *Cluster) Domain(i int) *Engine { return c.doms[i] }

// Stats returns per-domain counters for the finished run.
func (c *Cluster) Stats() []DomainStats { return c.stats }

// WorkerStats returns per-worker wall-clock accounting for the finished
// run (nil before Run).
func (c *Cluster) WorkerStats() []WorkerStats { return c.wstats }

// LookaheadViolation reports a cross-domain send whose delay undercuts
// the cluster's declared lookahead: the receiving domain may already
// have executed past the event's timestamp, so the conservative
// schedule — and bit-identity — would silently break. Send panics with
// it; Run converts the panic to a loud error.
type LookaheadViolation struct {
	Src, Dst  int
	At        units.Time // instant the event would land
	WindowEnd units.Time // exclusive upper bound of the window being executed
	Delay     units.Time
	Lookahead units.Time
}

// Error implements the error interface.
func (v *LookaheadViolation) Error() string {
	return fmt.Sprintf("sim: lookahead violation: domain %d -> %d at %v (window end %v): delay %v < lookahead %v",
		v.Src, v.Dst, v.At, v.WindowEnd, v.Delay, v.Lookahead)
}

// Send posts fn to run on domain dst at the sending domain's now+delay.
// It must be called from model code executing inside domain src (an
// event or proc of that domain), and delay must be at least the
// cluster's lookahead — the guarantee that the event lands at or after
// the current window's end, where the boundary merge delivers it
// deterministically. A delay below the lookahead is a model bug and
// panics with a *LookaheadViolation.
func (c *Cluster) Send(src, dst int, delay units.Time, fn func()) {
	if c.lookahead <= 0 {
		panic("sim: Send on a cluster of independent domains (zero lookahead)")
	}
	at := c.doms[src].now + delay
	if delay < c.lookahead || at < c.winEnd {
		panic(&LookaheadViolation{
			Src: src, Dst: dst, At: at, WindowEnd: c.winEnd,
			Delay: delay, Lookahead: c.lookahead,
		})
	}
	q := src*len(c.doms) + dst
	if len(c.queues[q]) >= c.bound {
		panic(fmt.Sprintf("sim: cross-domain queue %d->%d exceeds bound %d", src, dst, c.bound))
	}
	c.sendSeq[src]++
	c.queues[q] = append(c.queues[q], xevent{at: at, src: int32(src), seq: c.sendSeq[src], fn: fn})
	c.stats[src].Sent++
}

// Run executes every domain to completion on the given number of worker
// goroutines (workers < 1 means one). It returns nil on a clean finish;
// a deadlock in any domain, a lookahead violation or a model panic
// aborts the run with an error. Run may be called once.
func (c *Cluster) Run(workers int) error {
	if c.ran {
		return fmt.Errorf("sim: cluster already ran")
	}
	c.ran = true
	if workers < 1 {
		workers = 1
	}
	if workers > len(c.doms) {
		workers = len(c.doms)
	}
	c.wstats = make([]WorkerStats, workers)

	// Worker pool: each window, workers claim domains off the shared
	// counter, run their windows, and rendezvous; the coordinator (this
	// goroutine) merges boundary queues and opens the next window.
	var (
		claim   atomic.Int64
		active  []int // domains with work this window
		winEnd  units.Time
		whole   bool // zero-lookahead mode: run claimed domains to completion
		startCh = make([]chan struct{}, workers)
		doneCh  = make(chan struct{}, workers)
		wg      sync.WaitGroup
	)
	for w := range startCh {
		startCh[w] = make(chan struct{}, 1)
	}
	worker := func(w int) {
		defer wg.Done()
		idleFrom := time.Now()
		for range startCh[w] {
			start := time.Now()
			c.wstats[w].Idle += start.Sub(idleFrom)
			for c.failed.Load() == nil {
				i := int(claim.Add(1)) - 1
				if i >= len(active) {
					break
				}
				c.runDomain(active[i], winEnd, whole)
			}
			idleFrom = time.Now()
			c.wstats[w].Busy += idleFrom.Sub(start)
			doneCh <- struct{}{}
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go worker(w)
	}
	defer func() {
		for _, ch := range startCh {
			close(ch)
		}
		wg.Wait()
	}()

	for {
		// Merge boundary queues into their destination calendars in the
		// deterministic (timestamp, source domain, source seq) order.
		if err := c.merge(); err != nil {
			return err
		}
		// Next window: the earliest pending event anywhere.
		active = active[:0]
		first := true
		var horizon units.Time
		for i, d := range c.doms {
			if len(d.events) == 0 {
				continue
			}
			if at := d.events[0].at; first || at < horizon {
				horizon, first = at, false
			}
			active = append(active, i)
		}
		if first {
			break // no events anywhere: done (or deadlocked)
		}
		if c.lookahead > 0 {
			winEnd = horizon + c.lookahead
			c.winEnd = winEnd
			// Only domains with events inside the window participate.
			live := active[:0]
			for _, i := range active {
				if c.doms[i].events[0].at < winEnd {
					live = append(live, i)
				}
			}
			active = live
		} else {
			whole = true
		}
		claim.Store(0)
		for _, ch := range startCh {
			ch <- struct{}{}
		}
		for w := 0; w < workers; w++ {
			<-doneCh
		}
		if f := c.failed.Load(); f != nil {
			return f.err
		}
		if whole {
			break // independent domains ran to completion in one pass
		}
	}
	return c.deadlocks()
}

// runDomain executes one domain's share of the current window (or, in
// zero-lookahead mode, the whole remaining run), converting panics —
// lookahead violations, model bugs — into the cluster's failure state
// so Run reports them instead of crashing the host process.
func (c *Cluster) runDomain(i int, winEnd units.Time, whole bool) {
	defer func() {
		if r := recover(); r != nil {
			var err error
			switch v := r.(type) {
			case *LookaheadViolation:
				err = v
			case error:
				err = fmt.Errorf("sim: domain %d: %w", i, v)
			default:
				err = fmt.Errorf("sim: domain %d: panic: %v", i, v)
			}
			c.failed.CompareAndSwap(nil, &clusterFailure{err: err})
		}
	}()
	d := c.doms[i]
	var n int64
	if whole {
		for len(d.events) > 0 {
			ev := d.pop()
			d.now = ev.at
			d.dispatched++
			ev.fn()
			n++
		}
	} else {
		for len(d.events) > 0 && d.events[0].at < winEnd {
			ev := d.pop()
			d.now = ev.at
			d.dispatched++
			ev.fn()
			n++
		}
	}
	if n > 0 {
		c.stats[i].Events += n
		c.stats[i].Windows++
	}
}

// merge drains every cross-domain queue into the destination calendars.
// Per destination, events from all sources are ordered by (timestamp,
// source domain, source seq) and injected in that order, so the
// destination engine assigns them consecutive calendar sequence numbers
// and replays them identically regardless of worker count or which
// source filled its queue first.
func (c *Cluster) merge() error {
	n := len(c.doms)
	var batch []xevent
	for dst := 0; dst < n; dst++ {
		batch = batch[:0]
		for src := 0; src < n; src++ {
			q := src*n + dst
			batch = append(batch, c.queues[q]...)
			c.queues[q] = c.queues[q][:0]
		}
		if len(batch) == 0 {
			continue
		}
		sort.Slice(batch, func(a, b int) bool {
			x, y := &batch[a], &batch[b]
			if x.at != y.at {
				return x.at < y.at
			}
			if x.src != y.src {
				return x.src < y.src
			}
			return x.seq < y.seq
		})
		d := c.doms[dst]
		for _, ev := range batch {
			if ev.at < d.now {
				return fmt.Errorf("sim: cross-domain event for domain %d at %v behind its clock %v (lookahead violated)",
					dst, ev.at, d.now)
			}
			d.At(ev.at, ev.fn)
			c.stats[dst].Received++
		}
	}
	return nil
}

// deadlocks aggregates per-domain deadlock state after the calendars
// drained: any domain with live non-daemon procs still parked is stuck.
func (c *Cluster) deadlocks() error {
	var all []string
	var t units.Time
	for i, d := range c.doms {
		if d.procs.n <= d.daemons {
			continue
		}
		for p := d.procs.head; p != nil; p = p.next {
			if !p.daemon {
				all = append(all, fmt.Sprintf("domain %d: %s (%s)", i, p.name, p.parkReason))
			}
		}
		if d.now > t {
			t = d.now
		}
	}
	if len(all) == 0 {
		return nil
	}
	sort.Strings(all)
	return &DeadlockError{Time: t, Procs: all}
}

// Close tears down every domain engine.
func (c *Cluster) Close() {
	for _, d := range c.doms {
		d.Close()
	}
}
