package sim

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"roadrunner/internal/units"
)

// ringModel builds a D-domain synthetic workload on the target: each
// domain runs a generator proc that logs local work and hands rounds of
// cross-domain messages to its ring successor, with per-(src,round)
// unique timestamps so the global timeline has no cross-domain ties.
// The log records every dispatched model event as one line per domain,
// which is the byte-identity surface the cluster contract pins.
type ringTarget interface {
	schedule(src, dst int, delay units.Time, fn func())
	domain(i int) *Engine
}

const ringLookahead = units.Time(1000)

func buildRing(t ringTarget, domains, rounds int, logs []*strings.Builder) {
	for d := 0; d < domains; d++ {
		d := d
		eng := t.domain(d)
		eng.Spawn(fmt.Sprintf("gen%d", d), func(p *Proc) {
			for k := 0; k < rounds; k++ {
				p.Sleep(units.Time(7 + (d*13+k*31)%97))
				fmt.Fprintf(logs[d], "work d=%d k=%d t=%v\n", d, k, p.Now())
				dst := (d + 1) % domains
				k := k
				// Unique arrival instants per (src, round): delay is the
				// lookahead plus a src/round-specific offset.
				delay := ringLookahead + units.Time(d*1009+k*127)
				t.schedule(d, dst, delay, func() {
					fmt.Fprintf(logs[dst], "recv d=%d from=%d k=%d t=%v\n",
						dst, d, k, t.domain(dst).Now())
				})
			}
		})
	}
}

// clusterRing adapts a Cluster to ringTarget.
type clusterRing struct{ c *Cluster }

func (r clusterRing) schedule(src, dst int, delay units.Time, fn func()) {
	if src == dst {
		r.c.Domain(src).Schedule(delay, fn)
		return
	}
	r.c.Send(src, dst, delay, fn)
}
func (r clusterRing) domain(i int) *Engine { return r.c.Domain(i) }

// serialRing realizes the same model on one plain Engine: every domain's
// events run on a single calendar, with domain clocks all equal to the
// engine's. Per-domain logs must come out byte-identical to the
// cluster's at any worker count.
type serialRing struct {
	eng *Engine
}

func (r serialRing) schedule(src, dst int, delay units.Time, fn func()) {
	r.eng.Schedule(delay, fn)
}
func (r serialRing) domain(i int) *Engine { return r.eng }

func runClusterRing(t *testing.T, domains, rounds, workers int) ([]string, []DomainStats) {
	t.Helper()
	c := NewCluster(domains, ringLookahead)
	defer c.Close()
	logs := make([]*strings.Builder, domains)
	for i := range logs {
		logs[i] = &strings.Builder{}
	}
	buildRing(clusterRing{c}, domains, rounds, logs)
	if err := c.Run(workers); err != nil {
		t.Fatalf("cluster run (domains=%d workers=%d): %v", domains, workers, err)
	}
	out := make([]string, domains)
	for i, b := range logs {
		out[i] = b.String()
	}
	return out, c.Stats()
}

// TestClusterPartitionEquivalence is the exhaustive small-machine
// partition-equivalence pin: for every domain count from 1 to 17 (the
// machine's CU count), the per-domain event sequence of the windowed
// parallel run is byte-identical to the serial single-engine realization
// of the same model, at every worker count.
func TestClusterPartitionEquivalence(t *testing.T) {
	const rounds = 16
	for domains := 1; domains <= 17; domains++ {
		// Serial reference: one plain engine, same model.
		eng := NewEngine()
		logs := make([]*strings.Builder, domains)
		for i := range logs {
			logs[i] = &strings.Builder{}
		}
		buildRing(serialRing{eng}, domains, rounds, logs)
		if err := eng.Run(); err != nil {
			t.Fatalf("serial run (domains=%d): %v", domains, err)
		}
		want := make([]string, domains)
		for i, b := range logs {
			want[i] = b.String()
			if want[i] == "" {
				t.Fatalf("domains=%d: empty serial log %d", domains, i)
			}
		}
		for _, workers := range []int{1, 2, 3, 4, 8} {
			got, stats := runClusterRing(t, domains, rounds, workers)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("domains=%d workers=%d: domain %d event sequence diverged from serial\nserial:\n%s\nparallel:\n%s",
						domains, workers, i, want[i], got[i])
				}
			}
			var sent, recv int64
			for _, s := range stats {
				sent += s.Sent
				recv += s.Received
			}
			if domains > 1 {
				if wantMsgs := int64(domains * rounds); sent != wantMsgs || recv != wantMsgs {
					t.Fatalf("domains=%d workers=%d: sent %d recv %d, want %d",
						domains, workers, sent, recv, wantMsgs)
				}
			}
		}
	}
}

// TestClusterDeterministicAcrossWorkers pins that the parallel run's
// per-domain statistics — not just the event logs — are identical for
// every worker count.
func TestClusterDeterministicAcrossWorkers(t *testing.T) {
	ref, refStats := runClusterRing(t, 9, 24, 1)
	for _, workers := range []int{2, 4, 8} {
		got, stats := runClusterRing(t, 9, 24, workers)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: domain %d log differs from workers=1", workers, i)
			}
		}
		for i := range refStats {
			if stats[i] != refStats[i] {
				t.Fatalf("workers=%d: domain %d stats %+v, want %+v", workers, i, stats[i], refStats[i])
			}
		}
	}
}

// TestClusterLookaheadViolation pins that a cross-domain event posted
// with a delay under the declared lookahead — one that could land
// inside a window the receiver already executed — fails the run loudly
// with a typed error instead of silently corrupting the schedule.
func TestClusterLookaheadViolation(t *testing.T) {
	c := NewCluster(2, ringLookahead)
	defer c.Close()
	c.Domain(0).Spawn("bad", func(p *Proc) {
		p.Sleep(5)
		c.Send(0, 1, ringLookahead-1, func() {})
	})
	c.Domain(1).Spawn("peer", func(p *Proc) { p.Sleep(1000000) })
	err := c.Run(2)
	var v *LookaheadViolation
	if !errors.As(err, &v) {
		t.Fatalf("run returned %v, want *LookaheadViolation", err)
	}
	if v.Src != 0 || v.Dst != 1 || v.Delay != ringLookahead-1 {
		t.Fatalf("violation %+v", v)
	}
}

// TestClusterIndependentDomains covers the zero-lookahead mode: domains
// run to completion with no cross-domain traffic permitted, and each
// domain's engine finishes exactly as a standalone run.
func TestClusterIndependentDomains(t *testing.T) {
	const domains = 5
	c := NewCluster(domains, 0)
	defer c.Close()
	done := make([]units.Time, domains)
	for i := 0; i < domains; i++ {
		i := i
		c.Domain(i).Spawn("w", func(p *Proc) {
			for k := 0; k < 100; k++ {
				p.Sleep(units.Time(1 + i))
			}
			done[i] = p.Now()
		})
	}
	if err := c.Run(4); err != nil {
		t.Fatal(err)
	}
	for i, d := range done {
		if want := units.Time(100 * (1 + i)); d != want {
			t.Fatalf("domain %d finished at %v, want %v", i, d, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Send on zero-lookahead cluster did not panic")
		}
	}()
	c.Send(0, 1, 10, func() {})
}

// TestClusterDeadlock pins that a parked proc with nothing to wake it
// surfaces as a DeadlockError naming its domain.
func TestClusterDeadlock(t *testing.T) {
	c := NewCluster(3, ringLookahead)
	defer c.Close()
	c.Domain(1).Spawn("stuck", func(p *Proc) { p.Park("never woken") })
	err := c.Run(2)
	var d *DeadlockError
	if !errors.As(err, &d) {
		t.Fatalf("run returned %v, want *DeadlockError", err)
	}
	if len(d.Procs) != 1 || !strings.Contains(d.Procs[0], "domain 1") {
		t.Fatalf("deadlock procs %v", d.Procs)
	}
}

// BenchmarkParallelDES measures the windowed cluster at 1/2/4/8 workers
// over a coupled 17-domain ring exchange — the speedup-vs-serial family
// the CI bench trajectory records.
func BenchmarkParallelDES(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				c := NewCluster(17, ringLookahead)
				logs := make([]*strings.Builder, 17)
				for i := range logs {
					logs[i] = &strings.Builder{}
				}
				buildRing(clusterRing{c}, 17, 64, logs)
				if err := c.Run(workers); err != nil {
					b.Fatal(err)
				}
				c.Close()
			}
		})
	}
}
