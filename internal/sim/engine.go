// Package sim implements a deterministic discrete-event simulation engine
// with cooperative coroutine processes.
//
// The engine maintains a calendar of timestamped events. Ties are broken by
// insertion sequence, so a given program always replays identically. On top
// of raw events the package offers Procs — coroutines that execute
// simulation logic written in a natural blocking style (Sleep, Park,
// mailbox Get) — while the engine guarantees that at most one of them
// (the engine loop or exactly one Proc) runs at any instant. This keeps the
// simulation deterministic and free of data races without any locking in
// model code.
//
// The calendar is a binary min-heap of event values held in one slab
// slice: scheduling an event costs no allocation beyond amortised slice
// growth, and dispatching never touches the garbage collector. Procs ride
// iter.Pull coroutines (direct runtime switches, no channel round trips),
// the live set is an intrusive list threaded through the Procs themselves,
// and a finished engine can be Reset — calendar slab, list headers and
// daemon procs retained — so pooled callers (the trace replay evaluator)
// pay construction once per search, not per evaluation. All of it matters
// because the experiment orchestrator runs one engine per experiment
// across all CPUs at once, and the placement optimizer replays tens of
// thousands of evaluations per run.
package sim

import (
	"fmt"
	"sort"
	"strings"

	"roadrunner/internal/units"
)

// event is a single calendar entry. Events are stored by value in the
// engine's heap slab.
type event struct {
	at  units.Time
	seq int64
	fn  func()
}

// Engine is a discrete-event simulation engine. The zero value is not
// usable; construct with NewEngine.
type Engine struct {
	now    units.Time
	seq    int64
	events []event // binary min-heap ordered by (at, seq)

	procs   procList // all live (not yet finished) procs
	daemons int      // live procs spawned with SpawnDaemon
	closed  bool

	dispatched int64 // events executed over the engine's lifetime
	peakEvents int   // calendar high-water mark
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() units.Time { return e.now }

// Schedule arranges for fn to run at Now()+delay. A negative delay panics:
// the calendar cannot move backwards.
func (e *Engine) Schedule(delay units.Time, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	e.At(e.now+delay, fn)
}

// At arranges for fn to run at absolute time t, which must not precede Now().
func (e *Engine) At(t units.Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	e.seq++
	e.push(event{at: t, seq: e.seq, fn: fn})
}

// lessEv orders events by (time, sequence).
func lessEv(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push appends an event value to the slab and restores the heap property.
// The sift moves a hole up and places the new event once, instead of
// swapping three words at every level.
//
// The calendar is a 4-ary min-heap: half the depth of a binary heap, so
// pop — the engine's single hottest function on full-machine sweeps —
// sifts through half as many levels, and the four children it compares
// per level share cache lines. The heap pops the strict (time, seq)
// total order's exact minimum either way, so the dispatch sequence (and
// every simulated result) is identical to the binary-heap calendar's.
func (e *Engine) push(ev event) {
	e.events = append(e.events, ev)
	if len(e.events) > e.peakEvents {
		e.peakEvents = len(e.events)
	}
	i := len(e.events) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !lessEv(&ev, &e.events[parent]) {
			break
		}
		e.events[i] = e.events[parent]
		i = parent
	}
	e.events[i] = ev
}

// pop removes and returns the earliest event, sifting the hole down and
// placing the displaced last element once. The vacated slab slot is
// zeroed so the event closure can be collected.
func (e *Engine) pop() event {
	top := e.events[0]
	n := len(e.events) - 1
	last := e.events[n]
	e.events[n] = event{}
	e.events = e.events[:n]
	if n == 0 {
		return top
	}
	i := 0
	for {
		least := 4*i + 1
		if least >= n {
			break
		}
		end := least + 4
		if end > n {
			end = n
		}
		for c := least + 1; c < end; c++ {
			if lessEv(&e.events[c], &e.events[least]) {
				least = c
			}
		}
		if !lessEv(&e.events[least], &last) {
			break
		}
		e.events[i] = e.events[least]
		i = least
	}
	e.events[i] = last
	return top
}

// Pending reports the number of events on the calendar.
func (e *Engine) Pending() int { return len(e.events) }

// Stats is a snapshot of engine counters, cheap enough to read anywhere.
type Stats struct {
	Dispatched   int64 // events executed so far
	CalendarPeak int   // calendar high-water mark (slab length)
	LiveProcs    int   // procs spawned and not yet finished
	ParkedProcs  int   // procs currently blocked
}

// Stats returns the engine's lifetime counters. Daemon procs are
// infrastructure, not simulation state, and are not counted.
func (e *Engine) Stats() Stats {
	parked := 0
	for p := e.procs.head; p != nil; p = p.next {
		if p.state == procParked && !p.daemon {
			parked++
		}
	}
	return Stats{
		Dispatched:   e.dispatched,
		CalendarPeak: e.peakEvents,
		LiveProcs:    e.procs.n - e.daemons,
		ParkedProcs:  parked,
	}
}

// Reset returns a finished engine to its initial state — time zero,
// empty calendar, zeroed counters — while keeping the calendar slab and
// the proc-list headers allocated, so a pooled engine replays a fresh
// workload without rebuilding its structures. A run that completed
// cleanly (Run returned nil and every proc finished) resets to a state
// byte-identical to NewEngine's apart from retained capacity; resetting
// a closed engine, or one with live procs or queued events, panics —
// those runs must be torn down with Close instead.
func (e *Engine) Reset() {
	if e.closed {
		panic("sim: reset of a closed engine")
	}
	if e.procs.n > e.daemons {
		panic(fmt.Sprintf("sim: reset with %d live proc(s)", e.procs.n-e.daemons))
	}
	if len(e.events) > 0 {
		panic(fmt.Sprintf("sim: reset with %d queued event(s)", len(e.events)))
	}
	e.now = 0
	e.seq = 0
	e.dispatched = 0
	e.peakEvents = 0
}

// DeadlockError is returned by Run when the calendar empties while
// processes remain blocked with nothing left to wake them.
type DeadlockError struct {
	Time  units.Time
	Procs []string // names and park reasons of the blocked processes
}

// Error implements the error interface.
func (d *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at %v: %d blocked process(es): %s",
		d.Time, len(d.Procs), strings.Join(d.Procs, "; "))
}

// Run processes events until the calendar is empty. It returns nil on a
// clean finish, or a *DeadlockError if blocked processes remain.
func (e *Engine) Run() error {
	return e.run(-1)
}

// RunUntil processes events with timestamps <= t, then advances the clock
// to t. Events beyond t remain queued. Blocked processes are not an error
// here: the caller may still intend to run further.
func (e *Engine) RunUntil(t units.Time) error {
	if t < e.now {
		return fmt.Errorf("sim: RunUntil(%v) before now %v", t, e.now)
	}
	err := e.run(t)
	if err == nil && e.now < t {
		e.now = t
	}
	return err
}

func (e *Engine) run(until units.Time) error {
	if e.closed {
		return fmt.Errorf("sim: engine is closed")
	}
	if until < 0 {
		// The unbounded loop, free of the horizon compare: the shape
		// every full run dispatches millions of events through.
		for len(e.events) > 0 {
			ev := e.pop()
			e.now = ev.at
			e.dispatched++
			ev.fn()
		}
	}
	for until >= 0 && len(e.events) > 0 {
		if e.events[0].at > until {
			return nil
		}
		ev := e.pop()
		e.now = ev.at
		e.dispatched++
		ev.fn()
	}
	if until < 0 && e.procs.n > e.daemons {
		// Control only returns to the loop when every live proc is
		// blocked, so an empty calendar with live non-daemon procs is a
		// deadlock.
		d := &DeadlockError{Time: e.now}
		for p := e.procs.head; p != nil; p = p.next {
			if !p.daemon {
				d.Procs = append(d.Procs, p.name+" ("+p.parkReason+")")
			}
		}
		sort.Strings(d.Procs)
		return d
	}
	return nil
}

// Close terminates any still-parked processes so their goroutines exit.
// The engine is unusable afterwards. It is safe to call Close after Run
// returned a DeadlockError, and in tests via defer.
func (e *Engine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	for p := e.procs.head; p != nil; {
		next := p.next
		p.kill()
		p = next
	}
	e.procs = procList{}
	e.daemons = 0
	e.events = nil
}
