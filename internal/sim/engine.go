// Package sim implements a deterministic discrete-event simulation engine
// with cooperative goroutine processes.
//
// The engine maintains a calendar of timestamped events. Ties are broken by
// insertion sequence, so a given program always replays identically. On top
// of raw events the package offers Procs — goroutines that execute
// simulation logic written in a natural blocking style (Sleep, Park,
// mailbox Get) — while the engine guarantees that at most one goroutine
// (the engine loop or exactly one Proc) runs at any instant. This keeps the
// simulation deterministic and free of data races without any locking in
// model code.
package sim

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"

	"roadrunner/internal/units"
)

// event is a single calendar entry.
type event struct {
	at  units.Time
	seq int64
	fn  func()
}

// eventHeap is a min-heap ordered by (time, sequence).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulation engine. The zero value is not
// usable; construct with NewEngine.
type Engine struct {
	now    units.Time
	seq    int64
	events eventHeap

	procs  map[*Proc]struct{} // all live (not yet finished) procs
	parked map[*Proc]struct{} // procs currently blocked
	closed bool
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	return &Engine{
		procs:  make(map[*Proc]struct{}),
		parked: make(map[*Proc]struct{}),
	}
}

// Now returns the current simulated time.
func (e *Engine) Now() units.Time { return e.now }

// Schedule arranges for fn to run at Now()+delay. A negative delay panics:
// the calendar cannot move backwards.
func (e *Engine) Schedule(delay units.Time, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	e.At(e.now+delay, fn)
}

// At arranges for fn to run at absolute time t, which must not precede Now().
func (e *Engine) At(t units.Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, &event{at: t, seq: e.seq, fn: fn})
}

// Pending reports the number of events on the calendar.
func (e *Engine) Pending() int { return len(e.events) }

// DeadlockError is returned by Run when the calendar empties while
// processes remain blocked with nothing left to wake them.
type DeadlockError struct {
	Time  units.Time
	Procs []string // names and park reasons of the blocked processes
}

// Error implements the error interface.
func (d *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at %v: %d blocked process(es): %s",
		d.Time, len(d.Procs), strings.Join(d.Procs, "; "))
}

// Run processes events until the calendar is empty. It returns nil on a
// clean finish, or a *DeadlockError if blocked processes remain.
func (e *Engine) Run() error {
	return e.run(-1)
}

// RunUntil processes events with timestamps <= t, then advances the clock
// to t. Events beyond t remain queued. Blocked processes are not an error
// here: the caller may still intend to run further.
func (e *Engine) RunUntil(t units.Time) error {
	if t < e.now {
		return fmt.Errorf("sim: RunUntil(%v) before now %v", t, e.now)
	}
	err := e.run(t)
	if err == nil && e.now < t {
		e.now = t
	}
	return err
}

func (e *Engine) run(until units.Time) error {
	if e.closed {
		return fmt.Errorf("sim: engine is closed")
	}
	for len(e.events) > 0 {
		next := e.events[0]
		if until >= 0 && next.at > until {
			return nil
		}
		heap.Pop(&e.events)
		e.now = next.at
		next.fn()
	}
	if until < 0 && len(e.parked) > 0 {
		d := &DeadlockError{Time: e.now}
		for p := range e.parked {
			d.Procs = append(d.Procs, p.name+" ("+p.parkReason+")")
		}
		sort.Strings(d.Procs)
		return d
	}
	return nil
}

// Close terminates any still-parked processes so their goroutines exit.
// The engine is unusable afterwards. It is safe to call Close after Run
// returned a DeadlockError, and in tests via defer.
func (e *Engine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	for p := range e.parked {
		p.kill()
	}
	e.parked = map[*Proc]struct{}{}
	e.procs = map[*Proc]struct{}{}
	e.events = nil
}
