// Package sim implements a deterministic discrete-event simulation engine
// with cooperative goroutine processes.
//
// The engine maintains a calendar of timestamped events. Ties are broken by
// insertion sequence, so a given program always replays identically. On top
// of raw events the package offers Procs — goroutines that execute
// simulation logic written in a natural blocking style (Sleep, Park,
// mailbox Get) — while the engine guarantees that at most one goroutine
// (the engine loop or exactly one Proc) runs at any instant. This keeps the
// simulation deterministic and free of data races without any locking in
// model code.
//
// The calendar is a binary min-heap of event values held in one slab
// slice: scheduling an event costs no allocation beyond amortised slice
// growth, and dispatching never touches the garbage collector. Process
// bookkeeping (the live set and the parked set) uses intrusive doubly
// linked lists threaded through the Procs themselves, so park/unpark is
// pointer surgery rather than map churn. Both choices matter because the
// experiment orchestrator runs one engine per experiment across all CPUs
// at once.
package sim

import (
	"fmt"
	"sort"
	"strings"

	"roadrunner/internal/units"
)

// event is a single calendar entry. Events are stored by value in the
// engine's heap slab.
type event struct {
	at  units.Time
	seq int64
	fn  func()
}

// Engine is a discrete-event simulation engine. The zero value is not
// usable; construct with NewEngine.
type Engine struct {
	now    units.Time
	seq    int64
	events []event // binary min-heap ordered by (at, seq)

	procs  procList // all live (not yet finished) procs
	parked procList // procs currently blocked
	closed bool

	dispatched int64 // events executed over the engine's lifetime
	peakEvents int   // calendar high-water mark
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	return &Engine{
		procs:  procList{kind: listAll},
		parked: procList{kind: listParked},
	}
}

// Now returns the current simulated time.
func (e *Engine) Now() units.Time { return e.now }

// Schedule arranges for fn to run at Now()+delay. A negative delay panics:
// the calendar cannot move backwards.
func (e *Engine) Schedule(delay units.Time, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	e.At(e.now+delay, fn)
}

// At arranges for fn to run at absolute time t, which must not precede Now().
func (e *Engine) At(t units.Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	e.seq++
	e.push(event{at: t, seq: e.seq, fn: fn})
}

// less orders heap slots by (time, sequence).
func (e *Engine) less(i, j int) bool {
	a, b := &e.events[i], &e.events[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push appends an event value to the slab and restores the heap property.
func (e *Engine) push(ev event) {
	e.events = append(e.events, ev)
	if len(e.events) > e.peakEvents {
		e.peakEvents = len(e.events)
	}
	i := len(e.events) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(i, parent) {
			break
		}
		e.events[i], e.events[parent] = e.events[parent], e.events[i]
		i = parent
	}
}

// pop removes and returns the earliest event. The vacated slab slot is
// zeroed so the event closure can be collected.
func (e *Engine) pop() event {
	top := e.events[0]
	n := len(e.events) - 1
	e.events[0] = e.events[n]
	e.events[n] = event{}
	e.events = e.events[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && e.less(l, least) {
			least = l
		}
		if r < n && e.less(r, least) {
			least = r
		}
		if least == i {
			return top
		}
		e.events[i], e.events[least] = e.events[least], e.events[i]
		i = least
	}
}

// Pending reports the number of events on the calendar.
func (e *Engine) Pending() int { return len(e.events) }

// Stats is a snapshot of engine counters, cheap enough to read anywhere.
type Stats struct {
	Dispatched   int64 // events executed so far
	CalendarPeak int   // calendar high-water mark (slab length)
	LiveProcs    int   // procs spawned and not yet finished
	ParkedProcs  int   // procs currently blocked
}

// Stats returns the engine's lifetime counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Dispatched:   e.dispatched,
		CalendarPeak: e.peakEvents,
		LiveProcs:    e.procs.n,
		ParkedProcs:  e.parked.n,
	}
}

// DeadlockError is returned by Run when the calendar empties while
// processes remain blocked with nothing left to wake them.
type DeadlockError struct {
	Time  units.Time
	Procs []string // names and park reasons of the blocked processes
}

// Error implements the error interface.
func (d *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at %v: %d blocked process(es): %s",
		d.Time, len(d.Procs), strings.Join(d.Procs, "; "))
}

// Run processes events until the calendar is empty. It returns nil on a
// clean finish, or a *DeadlockError if blocked processes remain.
func (e *Engine) Run() error {
	return e.run(-1)
}

// RunUntil processes events with timestamps <= t, then advances the clock
// to t. Events beyond t remain queued. Blocked processes are not an error
// here: the caller may still intend to run further.
func (e *Engine) RunUntil(t units.Time) error {
	if t < e.now {
		return fmt.Errorf("sim: RunUntil(%v) before now %v", t, e.now)
	}
	err := e.run(t)
	if err == nil && e.now < t {
		e.now = t
	}
	return err
}

func (e *Engine) run(until units.Time) error {
	if e.closed {
		return fmt.Errorf("sim: engine is closed")
	}
	for len(e.events) > 0 {
		if until >= 0 && e.events[0].at > until {
			return nil
		}
		ev := e.pop()
		e.now = ev.at
		e.dispatched++
		ev.fn()
	}
	if until < 0 && e.parked.n > 0 {
		d := &DeadlockError{Time: e.now}
		for p := e.parked.head; p != nil; p = p.links[listParked].next {
			d.Procs = append(d.Procs, p.name+" ("+p.parkReason+")")
		}
		sort.Strings(d.Procs)
		return d
	}
	return nil
}

// Close terminates any still-parked processes so their goroutines exit.
// The engine is unusable afterwards. It is safe to call Close after Run
// returned a DeadlockError, and in tests via defer.
func (e *Engine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	for p := e.parked.head; p != nil; {
		next := p.links[listParked].next
		p.kill()
		p = next
	}
	e.parked = procList{kind: listParked}
	e.procs = procList{kind: listAll}
	e.events = nil
}
