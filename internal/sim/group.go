package sim

// Group is a reusable rendezvous barrier for a fixed-size set of procs:
// each participant calls Arrive and blocks until all n have arrived, at
// which point every member is released and the group resets for the next
// generation. The collective-communication layer uses a Group to align
// rank processes between measured operations so each operation starts
// from a common simulated instant; any model that phases a set of procs
// can use it the same way.
//
// Releases preserve arrival order (the wakes are scheduled FIFO at the
// instant the last member arrives), so a Group is deterministic like
// every other structure in this package.
type Group struct {
	eng     *Engine
	name    string
	n       int
	arrived []*Proc // members blocked in the current generation

	// Park reason built once so the blocking hot path never allocates.
	reason string
}

// NewGroup creates a rendezvous group of size n on the engine. The name
// appears in deadlock reports of procs blocked in Arrive.
func NewGroup(eng *Engine, name string, n int) *Group {
	if n < 1 {
		panic("sim: group size < 1")
	}
	return &Group{
		eng:    eng,
		name:   name,
		n:      n,
		reason: "group " + name,
	}
}

// Size returns the number of participants the group waits for.
func (g *Group) Size() int { return g.n }

// Waiting returns how many procs are currently blocked in Arrive.
func (g *Group) Waiting() int { return len(g.arrived) }

// Arrive blocks the calling proc until all n members of the group have
// arrived. The last arrival does not block: it wakes the others and
// returns immediately, and the group resets for reuse.
func (g *Group) Arrive(p *Proc) {
	if len(g.arrived)+1 == g.n {
		// Last one in: release the generation in arrival order.
		waiters := g.arrived
		g.arrived = nil
		for _, w := range waiters {
			w.Wake()
		}
		return
	}
	g.arrived = append(g.arrived, p)
	p.Park(g.reason)
}
