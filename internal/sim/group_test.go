package sim

import (
	"testing"

	"roadrunner/internal/units"
)

func TestGroupReleasesTogether(t *testing.T) {
	eng := NewEngine()
	defer eng.Close()
	g := NewGroup(eng, "phase", 3)
	var release []units.Time
	for i := 0; i < 3; i++ {
		d := units.Time(i*10) * units.Nanosecond
		eng.SpawnAt(d, "member", func(p *Proc) {
			g.Arrive(p)
			release = append(release, p.Now())
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(release) != 3 {
		t.Fatalf("released %d of 3", len(release))
	}
	// Everyone leaves at the last arrival's time.
	for _, at := range release {
		if at != 20*units.Nanosecond {
			t.Errorf("release at %v, want 20ns", at)
		}
	}
}

func TestGroupReusableAcrossGenerations(t *testing.T) {
	eng := NewEngine()
	defer eng.Close()
	const n, gens = 4, 5
	g := NewGroup(eng, "gen", n)
	counts := make([]int, gens)
	for i := 0; i < n; i++ {
		i := i
		eng.Spawn("member", func(p *Proc) {
			for gen := 0; gen < gens; gen++ {
				// Skewed per-member work before each rendezvous.
				p.Sleep(units.Time((i+1)*(gen+1)) * units.Nanosecond)
				g.Arrive(p)
				counts[gen]++
			}
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for gen, c := range counts {
		if c != n {
			t.Errorf("generation %d released %d of %d", gen, c, n)
		}
	}
	if g.Waiting() != 0 {
		t.Errorf("%d procs still waiting", g.Waiting())
	}
}

func TestGroupSizeOneNeverBlocks(t *testing.T) {
	eng := NewEngine()
	defer eng.Close()
	g := NewGroup(eng, "solo", 1)
	ran := false
	eng.Spawn("solo", func(p *Proc) {
		g.Arrive(p)
		g.Arrive(p)
		ran = true
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("solo proc blocked")
	}
}

func TestGroupDeadlockReportsName(t *testing.T) {
	eng := NewEngine()
	defer eng.Close()
	g := NewGroup(eng, "missing-member", 2)
	eng.Spawn("alone", func(p *Proc) { g.Arrive(p) })
	err := eng.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("want deadlock, got %v", err)
	}
	if len(de.Procs) != 1 {
		t.Fatalf("blocked procs: %v", de.Procs)
	}
}
