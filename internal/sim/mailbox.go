package sim

// Mailbox is an unbounded FIFO queue connecting simulation processes.
// Put never blocks; Get blocks the calling proc until an item is available.
// Delivery order is insertion order, and wakes are processed in FIFO order,
// so a mailbox with multiple readers is deterministic.
type Mailbox[T any] struct {
	eng     *Engine
	name    string
	items   []T
	waiters []*Proc

	// Park reasons are built once at construction so the blocking hot
	// path never concatenates strings.
	reason      string
	reasonMatch string
}

// NewMailbox creates a mailbox on the given engine. The name appears in
// deadlock reports of procs blocked on Get.
func NewMailbox[T any](eng *Engine, name string) *Mailbox[T] {
	return &Mailbox[T]{
		eng:         eng,
		name:        name,
		reason:      "mailbox " + name,
		reasonMatch: "mailbox " + name + " (match)",
	}
}

// Len returns the number of queued items.
func (m *Mailbox[T]) Len() int { return len(m.items) }

// Put appends an item and wakes the longest-waiting reader, if any.
// It may be called from any simulation context (event or proc).
func (m *Mailbox[T]) Put(v T) {
	m.items = append(m.items, v)
	m.wakeOne()
}

// wakeOne pops the first waiter without a pending wake and wakes it.
// Pops shift the slice down instead of advancing the window (waiters =
// waiters[1:]): a sliding window exhausts the backing array's tail and
// makes the next append reallocate, one fresh array per blocked reader
// — the queues here stay short, so the copy is cheaper than the churn.
func (m *Mailbox[T]) wakeOne() {
	for len(m.waiters) > 0 {
		w := m.waiters[0]
		copy(m.waiters, m.waiters[1:])
		m.waiters[len(m.waiters)-1] = nil
		m.waiters = m.waiters[:len(m.waiters)-1]
		if !w.WakePending() && w.Parked() {
			w.Wake()
			return
		}
	}
}

// Get removes and returns the oldest item, blocking the calling proc while
// the mailbox is empty.
func (m *Mailbox[T]) Get(p *Proc) T {
	for len(m.items) == 0 {
		m.waiters = append(m.waiters, p)
		p.Park(m.reason)
	}
	return m.popFront()
}

// popFront removes and returns the oldest item, shifting the slice down
// so the backing array keeps being reused (see wakeOne).
func (m *Mailbox[T]) popFront() T {
	v := m.items[0]
	copy(m.items, m.items[1:])
	var zero T
	m.items[len(m.items)-1] = zero
	m.items = m.items[:len(m.items)-1]
	return v
}

// TryGet removes and returns the oldest item without blocking.
func (m *Mailbox[T]) TryGet() (T, bool) {
	if len(m.items) == 0 {
		var zero T
		return zero, false
	}
	return m.popFront(), true
}

// GetMatch removes and returns the oldest item satisfying pred, blocking
// until one arrives. Items not matching stay queued in order. This is the
// primitive used for tag/source matching in the MPI layers.
func (m *Mailbox[T]) GetMatch(p *Proc, pred func(T) bool) T {
	for {
		for i, v := range m.items {
			if pred(v) {
				copy(m.items[i:], m.items[i+1:])
				var zero T
				m.items[len(m.items)-1] = zero
				m.items = m.items[:len(m.items)-1]
				return v
			}
		}
		m.waiters = append(m.waiters, p)
		p.Park(m.reasonMatch)
	}
}
