package sim

import (
	"strings"
	"testing"

	"roadrunner/internal/units"
)

// TestEngineResetReproducesFreshRun: a pooled engine replays a workload
// with the same timestamps, sequence ordering and stats as a fresh
// engine.
func TestEngineResetReproducesFreshRun(t *testing.T) {
	workload := func(e *Engine) (finish units.Time, st Stats) {
		for i := 0; i < 4; i++ {
			i := i
			e.Spawn("w", func(p *Proc) {
				for r := 0; r < 8; r++ {
					p.Sleep(units.Time(1+i) * units.Microsecond)
				}
				if p.Now() > finish {
					finish = p.Now()
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return finish, e.Stats()
	}
	fresh := NewEngine()
	defer fresh.Close()
	wantFinish, wantStats := workload(fresh)

	pooled := NewEngine()
	defer pooled.Close()
	workload(pooled) // warm
	pooled.Reset()
	if pooled.Now() != 0 || pooled.Stats() != (Stats{}) {
		t.Fatalf("reset engine not pristine: now %v stats %+v", pooled.Now(), pooled.Stats())
	}
	gotFinish, gotStats := workload(pooled)
	if gotFinish != wantFinish || gotStats != wantStats {
		t.Errorf("pooled run diverged: %v/%+v vs fresh %v/%+v", gotFinish, gotStats, wantFinish, wantStats)
	}
}

// TestEngineResetRefusesDirtyState: live procs or queued events must be
// torn down with Close, not recycled.
func TestEngineResetRefusesDirtyState(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	e := NewEngine()
	defer e.Close()
	e.Schedule(units.Microsecond, func() {})
	expectPanic("queued events", e.Reset)

	e2 := NewEngine()
	defer e2.Close()
	box := NewMailbox[int](e2, "box")
	e2.Spawn("stuck", func(p *Proc) { box.Get(p) })
	if err := e2.Run(); err == nil {
		t.Fatal("expected deadlock")
	}
	expectPanic("live procs", e2.Reset)

	e3 := NewEngine()
	e3.Close()
	expectPanic("closed engine", e3.Reset)
}

// TestDaemonProcs: daemons park between runs without tripping deadlock
// detection, are invisible in Stats, allow Reset while parked, and a
// wake resumes them on the recycled calendar.
func TestDaemonProcs(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	var runs int
	var last units.Time
	d := e.SpawnDaemon("walker", func(p *Proc) {
		for {
			p.Sleep(3 * units.Microsecond)
			runs++
			last = p.Now()
			p.Park("idle")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatalf("daemon counted as deadlock: %v", err)
	}
	if runs != 1 || last != 3*units.Microsecond {
		t.Fatalf("first pass: runs %d at %v", runs, last)
	}
	if st := e.Stats(); st.LiveProcs != 0 || st.ParkedProcs != 0 {
		t.Errorf("daemon leaked into stats: %+v", st)
	}
	e.Reset()
	d.Wake()
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if runs != 2 || last != 3*units.Microsecond {
		t.Errorf("second pass: runs %d at %v (want recycled clock)", runs, last)
	}
	// A non-daemon blocking alongside an idle daemon still deadlocks,
	// and the report names only the non-daemon.
	e.Reset()
	d.Wake()
	box := NewMailbox[int](e, "never")
	e.Spawn("blocked", func(p *Proc) { box.Get(p) })
	err := e.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("deadlock not detected: %v", err)
	}
	if len(de.Procs) != 1 || !strings.Contains(de.Procs[0], "blocked") {
		t.Errorf("deadlock report %v, want only the non-daemon", de.Procs)
	}
}

// TestWakeAfter: the timed wake lands exactly at now+delay and respects
// the double-wake guard.
func TestWakeAfter(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	var woke units.Time
	p := e.Spawn("sleeper", func(p *Proc) {
		p.Park("waiting for a timed wake")
		woke = p.Now()
	})
	e.Schedule(2*units.Microsecond, func() {
		p.WakeAfter(5 * units.Microsecond)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 7*units.Microsecond {
		t.Errorf("woke at %v, want 7us", woke)
	}
}

// TestResourceAcquireFn: the event-chain acquisition grants inline when
// free, queues FIFO behind proc waiters when contended, and keeps the
// same occupancy accounting.
func TestResourceAcquireFn(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	r := NewResource(e, "link", 1)
	var order []string
	e.Spawn("holder", func(p *Proc) {
		r.Acquire(p, 1)
		p.Sleep(10 * units.Microsecond)
		order = append(order, "holder-release")
		r.Release(1)
	})
	// A proc waiter queues first, then the fn waiter: grants must come
	// in FIFO order.
	e.SpawnAt(units.Microsecond, "second", func(p *Proc) {
		r.Acquire(p, 1)
		order = append(order, "second")
		p.Sleep(5 * units.Microsecond)
		r.Release(1)
	})
	e.Schedule(2*units.Microsecond, func() {
		if r.AcquireFn(1, func() {
			order = append(order, "fn")
			r.Release(1)
		}) {
			t.Error("contended AcquireFn granted inline")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"holder-release", "second", "fn"}
	if len(order) != 3 || order[0] != want[0] || order[1] != want[1] || order[2] != want[2] {
		t.Errorf("grant order %v, want %v", order, want)
	}
	st := r.Stats()
	if st.Acquires != 3 || st.Contended != 2 || st.WaitTime == 0 {
		t.Errorf("stats %+v", st)
	}
	// Inline grant on a free resource.
	granted := false
	e.Schedule(0, func() {
		granted = r.AcquireFn(1, func() { t.Error("inline grant must not call fn") })
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !granted {
		t.Error("free AcquireFn not granted inline")
	}
	r.Release(1)
	// ResetStats zeroes the accounting and refuses a busy resource.
	r.ResetStats()
	if st := r.Stats(); st.Acquires != 0 || st.Contended != 0 || st.WaitTime != 0 || st.BusyTime != 0 {
		t.Errorf("stats after reset: %+v", st)
	}
	e.Spawn("busy", func(p *Proc) {
		r.Acquire(p, 1)
		defer func() {
			if recover() == nil {
				t.Error("ResetStats of a held resource did not panic")
			}
			r.Release(1)
		}()
		r.ResetStats()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}
