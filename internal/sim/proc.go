package sim

import (
	"fmt"

	"roadrunner/internal/units"
)

// procState tracks where a Proc is in its lifecycle.
type procState int

const (
	procRunning procState = iota // currently executing (or scheduled to start)
	procParked                   // blocked, waiting for a wake
	procDone                     // body returned or proc was killed
)

// The engine threads every Proc through up to two intrusive lists; each
// list uses its own pair of link fields so membership is independent.
const (
	listAll    = iota // all live procs
	listParked        // procs currently blocked
	numLists
)

// procLinks is one list's worth of intrusive pointers.
type procLinks struct {
	next, prev *Proc
}

// procList is an intrusive doubly linked list of Procs. Insertion and
// removal are O(1) pointer updates on the Proc itself — no allocation, no
// map churn on the park/unpark hot path.
type procList struct {
	kind int
	head *Proc
	n    int
}

// push prepends p. Order is irrelevant to engine semantics (the lists are
// only iterated for deadlock reports, which sort, and for Close).
func (l *procList) push(p *Proc) {
	if p.inList[l.kind] {
		return
	}
	lk := &p.links[l.kind]
	lk.prev = nil
	lk.next = l.head
	if l.head != nil {
		l.head.links[l.kind].prev = p
	}
	l.head = p
	l.n++
	p.inList[l.kind] = true
}

// remove unlinks p; removing a proc not on the list is a no-op.
func (l *procList) remove(p *Proc) {
	if !p.inList[l.kind] {
		return
	}
	lk := &p.links[l.kind]
	if lk.prev != nil {
		lk.prev.links[l.kind].next = lk.next
	} else {
		l.head = lk.next
	}
	if lk.next != nil {
		lk.next.links[l.kind].prev = lk.prev
	}
	lk.next, lk.prev = nil, nil
	p.inList[l.kind] = false
	l.n--
}

// killSentinel is panicked inside a killed proc to unwind its stack.
type killSentinel struct{}

// Proc is a simulation process: a goroutine whose execution is interleaved
// with the event calendar such that exactly one proc (or the engine loop)
// runs at a time. All blocking Proc methods must be called from inside the
// proc's own body.
type Proc struct {
	eng  *Engine
	name string

	resume chan struct{} // engine -> proc: continue
	yield  chan struct{} // proc -> engine: I blocked or finished

	// resumeFn is the proc's reusable wake event, allocated once at spawn
	// so Sleep and Wake schedule it without a fresh closure each time.
	resumeFn func()

	links  [numLists]procLinks
	inList [numLists]bool

	state       procState
	wakePending bool
	killed      bool
	parkReason  string
}

// Spawn creates a process named name executing body, starting at Now().
// The body runs in simulation context: it may Sleep, Park and use the
// blocking structures in this package.
func (e *Engine) Spawn(name string, body func(p *Proc)) *Proc {
	return e.SpawnAt(0, name, body)
}

// SpawnAt creates a process that starts after the given delay.
func (e *Engine) SpawnAt(delay units.Time, name string, body func(p *Proc)) *Proc {
	p := &Proc{
		eng:    e,
		name:   name,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
	}
	p.resumeFn = func() { e.resumeProc(p) }
	e.procs.push(p)
	go p.top(body)
	// The first resume starts the body.
	p.wakePending = true
	p.state = procParked
	e.parked.push(p)
	e.Schedule(delay, p.resumeFn)
	return p
}

// top is the goroutine entry point wrapping the proc body.
func (p *Proc) top(body func(p *Proc)) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(killSentinel); ok {
				// Killed by Engine.Close: state already cleaned up by
				// kill(); just exit the goroutine without signalling.
				return
			}
			panic(r) // real bug in model code: re-raise
		}
	}()
	<-p.resume // wait for the start event
	if p.killed {
		return // engine closed before the proc ever ran
	}
	body(p)
	p.state = procDone
	p.eng.procs.remove(p)
	p.yield <- struct{}{}
}

// Name returns the proc's name.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this proc runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current simulated time.
func (p *Proc) Now() units.Time { return p.eng.now }

// resumeProc hands control to a parked proc and waits until it parks again
// or finishes. Must be called from engine context (an event function).
func (e *Engine) resumeProc(p *Proc) {
	if p.state != procParked {
		panic(fmt.Sprintf("sim: resume of proc %q in state %d", p.name, p.state))
	}
	e.parked.remove(p)
	p.state = procRunning
	p.wakePending = false
	p.resume <- struct{}{}
	<-p.yield
}

// park blocks the calling proc until the engine resumes it.
func (p *Proc) park(reason string) {
	p.state = procParked
	p.parkReason = reason
	p.eng.parked.push(p)
	p.yield <- struct{}{}
	<-p.resume
	if p.killed {
		panic(killSentinel{})
	}
	p.parkReason = ""
}

// Sleep advances the proc's local time by d; other events and procs run in
// the interim.
func (p *Proc) Sleep(d units.Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: proc %q sleep %v", p.name, d))
	}
	p.wakePending = true
	p.eng.Schedule(d, p.resumeFn)
	p.park("sleeping")
}

// Park blocks the proc until some other party calls Wake. The reason string
// appears in deadlock reports.
func (p *Proc) Park(reason string) {
	p.park(reason)
}

// Wake schedules a parked proc to resume at the current time. It must be
// called from simulation context (another proc or an event callback), and
// panics if the target already has a wake pending or is not parked —
// double wakes are model bugs.
func (p *Proc) Wake() {
	if p.state == procDone {
		panic(fmt.Sprintf("sim: wake of finished proc %q", p.name))
	}
	if p.wakePending {
		panic(fmt.Sprintf("sim: double wake of proc %q", p.name))
	}
	p.wakePending = true
	p.eng.Schedule(0, p.resumeFn)
}

// WakePending reports whether the proc already has a wake scheduled.
func (p *Proc) WakePending() bool { return p.wakePending }

// Parked reports whether the proc is currently blocked.
func (p *Proc) Parked() bool { return p.state == procParked }

// kill unwinds a parked proc's goroutine. Called only from Engine.Close,
// which resets the lists wholesale afterwards.
func (p *Proc) kill() {
	if p.state != procParked {
		return
	}
	p.killed = true
	p.state = procDone
	p.resume <- struct{}{}
	// The goroutine panics with killSentinel, recovers and exits without
	// touching the yield channel, so there is nothing to wait for.
}
