package sim

import (
	"fmt"
	"iter"

	"roadrunner/internal/units"
)

// procState tracks where a Proc is in its lifecycle.
type procState int

const (
	procRunning procState = iota // currently executing (or scheduled to start)
	procParked                   // blocked, waiting for a wake
	procDone                     // body returned or proc was killed
)

// procList is an intrusive doubly linked list of the live Procs.
// Insertion and removal are O(1) pointer updates on the Proc itself — no
// allocation, no map churn. Only spawn and finish touch it: the parked
// set is not a separate list but derived lazily (a live proc is parked
// whenever the engine loop looks — see Engine.run), so the park/unpark
// hot path does no list surgery at all.
type procList struct {
	head *Proc
	n    int
}

// push prepends p. Order is irrelevant to engine semantics (the list is
// only iterated for deadlock reports, which sort, and for Close).
func (l *procList) push(p *Proc) {
	if p.inList {
		return
	}
	p.prev = nil
	p.next = l.head
	if l.head != nil {
		l.head.prev = p
	}
	l.head = p
	l.n++
	p.inList = true
}

// remove unlinks p; removing a proc not on the list is a no-op.
func (l *procList) remove(p *Proc) {
	if !p.inList {
		return
	}
	if p.prev != nil {
		p.prev.next = p.next
	} else {
		l.head = p.next
	}
	if p.next != nil {
		p.next.prev = p.prev
	}
	p.next, p.prev = nil, nil
	p.inList = false
	l.n--
}

// killSentinel is panicked inside a killed proc to unwind its stack; the
// coroutine wrapper recovers it so the coroutine finishes cleanly.
type killSentinel struct{}

// Proc is a simulation process: a coroutine whose execution is interleaved
// with the event calendar such that exactly one proc (or the engine loop)
// runs at a time. All blocking Proc methods must be called from inside the
// proc's own body.
//
// Procs ride iter.Pull coroutines rather than goroutine+channel pairs: a
// park/resume cycle is one direct coroutine switch in each direction (no
// scheduler round trip, no channel locks), which cuts the per-blocking-op
// cost of the engine by several hundred nanoseconds — the dominant term
// of replay- and collective-heavy runs. Semantics are unchanged: the
// engine still guarantees at most one proc (or the dispatch loop) runs at
// any instant, and the event order is identical to the channel-based
// implementation.
type Proc struct {
	eng  *Engine
	name string

	// resume re-enters the coroutine; halt tears it down. yieldFn is
	// assigned by the coroutine body on first entry and switches control
	// back to the engine, returning false once halt has been called.
	resume  func() (struct{}, bool)
	halt    func()
	yieldFn func(struct{}) bool

	// resumeFn is the proc's reusable wake event, allocated once at spawn
	// so Sleep and Wake schedule it without a fresh closure each time.
	resumeFn func()

	next, prev *Proc // intrusive live-proc list
	inList     bool

	state       procState
	wakePending bool
	killed      bool
	daemon      bool
	parkReason  string
}

// Spawn creates a process named name executing body, starting at Now().
// The body runs in simulation context: it may Sleep, Park and use the
// blocking structures in this package.
func (e *Engine) Spawn(name string, body func(p *Proc)) *Proc {
	return e.SpawnAt(0, name, body)
}

// SpawnDaemon creates a process excluded from deadlock detection and
// engine statistics: pooled infrastructure (the replay evaluator's
// per-rank walkers) that parks between runs by design. A calendar that
// empties with only daemons parked is a clean finish, so a daemon's
// owner must check its own progress invariants — the engine cannot
// distinguish an idle daemon from a stuck one. Daemons are torn down by
// Close like any other proc.
func (e *Engine) SpawnDaemon(name string, body func(p *Proc)) *Proc {
	p := e.SpawnAt(0, name, body)
	p.daemon = true
	e.daemons++
	return p
}

// SpawnAt creates a process that starts after the given delay.
func (e *Engine) SpawnAt(delay units.Time, name string, body func(p *Proc)) *Proc {
	p := &Proc{eng: e, name: name}
	p.resumeFn = func() { e.resumeProc(p) }
	p.resume, p.halt = iter.Pull(func(yield func(struct{}) bool) {
		p.yieldFn = yield
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(killSentinel); ok {
					// Killed by Engine.Close: unwind the coroutine
					// without propagating.
					return
				}
				panic(r) // real bug in model code: re-raise to the engine
			}
		}()
		body(p)
	})
	e.procs.push(p)
	// The first resume event starts the body.
	p.wakePending = true
	p.state = procParked
	e.Schedule(delay, p.resumeFn)
	return p
}

// Name returns the proc's name.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this proc runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current simulated time.
func (p *Proc) Now() units.Time { return p.eng.now }

// resumeProc hands control to a parked proc and regains it when the proc
// parks again or finishes. Must be called from engine context (an event
// function).
func (e *Engine) resumeProc(p *Proc) {
	if p.state != procParked {
		panic(fmt.Sprintf("sim: resume of proc %q in state %d", p.name, p.state))
	}
	p.state = procRunning
	p.wakePending = false
	if _, ok := p.resume(); !ok {
		// The body returned: the proc is finished.
		p.state = procDone
		e.procs.remove(p)
		if p.daemon {
			e.daemons--
		}
	}
}

// park blocks the calling proc until the engine resumes it.
func (p *Proc) park(reason string) {
	p.state = procParked
	p.parkReason = reason
	if !p.yieldFn(struct{}{}) {
		// halt() was called (Engine.Close): unwind the body.
		p.killed = true
		panic(killSentinel{})
	}
	// The stale reason is left in place: it is only read while parked,
	// and clearing it would cost a write on every resume.
}

// Sleep advances the proc's local time by d; other events and procs run in
// the interim.
func (p *Proc) Sleep(d units.Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: proc %q sleep %v", p.name, d))
	}
	p.wakePending = true
	p.eng.Schedule(d, p.resumeFn)
	p.park("sleeping")
}

// Park blocks the proc until some other party calls Wake. The reason string
// appears in deadlock reports.
func (p *Proc) Park(reason string) {
	p.park(reason)
}

// Wake schedules a parked proc to resume at the current time. It must be
// called from simulation context (another proc or an event callback), and
// panics if the target already has a wake pending or is not parked —
// double wakes are model bugs.
func (p *Proc) Wake() {
	if p.state == procDone {
		panic(fmt.Sprintf("sim: wake of finished proc %q", p.name))
	}
	if p.wakePending {
		panic(fmt.Sprintf("sim: double wake of proc %q", p.name))
	}
	p.wakePending = true
	p.eng.Schedule(0, p.resumeFn)
}

// WakeAfter schedules a parked proc to resume after delay d: Wake with a
// timed fuse. Event chains that end by handing control back to a blocked
// proc (the transport's chained transfers) use it so the proc's timed
// resume occupies exactly the calendar slot a Sleep from event context
// would have.
func (p *Proc) WakeAfter(d units.Time) {
	if p.state == procDone {
		panic(fmt.Sprintf("sim: wake of finished proc %q", p.name))
	}
	if p.wakePending {
		panic(fmt.Sprintf("sim: double wake of proc %q", p.name))
	}
	p.wakePending = true
	p.eng.Schedule(d, p.resumeFn)
}

// WakePending reports whether the proc already has a wake scheduled.
func (p *Proc) WakePending() bool { return p.wakePending }

// Parked reports whether the proc is currently blocked.
func (p *Proc) Parked() bool { return p.state == procParked }

// kill unwinds a parked proc's coroutine. Called only from Engine.Close,
// which resets the lists wholesale afterwards.
func (p *Proc) kill() {
	if p.state != procParked {
		return
	}
	p.killed = true
	p.state = procDone
	// halt re-enters the coroutine with yield returning false; park
	// panics killSentinel, the spawn wrapper recovers it, and the
	// coroutine finishes. A proc whose start event never fired has no
	// coroutine frame yet; halt is then a pure teardown.
	p.halt()
}
