package sim

import (
	"fmt"

	"roadrunner/internal/units"
)

// procState tracks where a Proc is in its lifecycle.
type procState int

const (
	procRunning procState = iota // currently executing (or scheduled to start)
	procParked                   // blocked, waiting for a wake
	procDone                     // body returned or proc was killed
)

// killSentinel is panicked inside a killed proc to unwind its stack.
type killSentinel struct{}

// Proc is a simulation process: a goroutine whose execution is interleaved
// with the event calendar such that exactly one proc (or the engine loop)
// runs at a time. All blocking Proc methods must be called from inside the
// proc's own body.
type Proc struct {
	eng  *Engine
	name string

	resume chan struct{} // engine -> proc: continue
	yield  chan struct{} // proc -> engine: I blocked or finished

	state       procState
	wakePending bool
	killed      bool
	parkReason  string
}

// Spawn creates a process named name executing body, starting at Now().
// The body runs in simulation context: it may Sleep, Park and use the
// blocking structures in this package.
func (e *Engine) Spawn(name string, body func(p *Proc)) *Proc {
	return e.SpawnAt(0, name, body)
}

// SpawnAt creates a process that starts after the given delay.
func (e *Engine) SpawnAt(delay units.Time, name string, body func(p *Proc)) *Proc {
	p := &Proc{
		eng:    e,
		name:   name,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
	}
	e.procs[p] = struct{}{}
	go p.top(body)
	// The first resume starts the body.
	p.wakePending = true
	p.state = procParked
	e.parked[p] = struct{}{}
	e.Schedule(delay, func() { e.resumeProc(p) })
	return p
}

// top is the goroutine entry point wrapping the proc body.
func (p *Proc) top(body func(p *Proc)) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(killSentinel); ok {
				// Killed by Engine.Close: state already cleaned up by
				// kill(); just exit the goroutine without signalling.
				return
			}
			panic(r) // real bug in model code: re-raise
		}
	}()
	<-p.resume // wait for the start event
	if p.killed {
		return // engine closed before the proc ever ran
	}
	body(p)
	p.state = procDone
	delete(p.eng.procs, p)
	p.yield <- struct{}{}
}

// Name returns the proc's name.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this proc runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current simulated time.
func (p *Proc) Now() units.Time { return p.eng.now }

// resumeProc hands control to a parked proc and waits until it parks again
// or finishes. Must be called from engine context (an event function).
func (e *Engine) resumeProc(p *Proc) {
	if p.state != procParked {
		panic(fmt.Sprintf("sim: resume of proc %q in state %d", p.name, p.state))
	}
	delete(e.parked, p)
	p.state = procRunning
	p.wakePending = false
	p.resume <- struct{}{}
	<-p.yield
}

// park blocks the calling proc until the engine resumes it.
func (p *Proc) park(reason string) {
	p.state = procParked
	p.parkReason = reason
	p.eng.parked[p] = struct{}{}
	p.yield <- struct{}{}
	<-p.resume
	if p.killed {
		panic(killSentinel{})
	}
	p.parkReason = ""
}

// Sleep advances the proc's local time by d; other events and procs run in
// the interim.
func (p *Proc) Sleep(d units.Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: proc %q sleep %v", p.name, d))
	}
	p.wakePending = true
	p.eng.Schedule(d, func() { p.eng.resumeProc(p) })
	p.park(fmt.Sprintf("sleeping %v", d))
}

// Park blocks the proc until some other party calls Wake. The reason string
// appears in deadlock reports.
func (p *Proc) Park(reason string) {
	p.park(reason)
}

// Wake schedules a parked proc to resume at the current time. It must be
// called from simulation context (another proc or an event callback), and
// panics if the target already has a wake pending or is not parked —
// double wakes are model bugs.
func (p *Proc) Wake() {
	if p.state == procDone {
		panic(fmt.Sprintf("sim: wake of finished proc %q", p.name))
	}
	if p.wakePending {
		panic(fmt.Sprintf("sim: double wake of proc %q", p.name))
	}
	p.wakePending = true
	p.eng.Schedule(0, func() { p.eng.resumeProc(p) })
}

// WakePending reports whether the proc already has a wake scheduled.
func (p *Proc) WakePending() bool { return p.wakePending }

// Parked reports whether the proc is currently blocked.
func (p *Proc) Parked() bool { return p.state == procParked }

// kill unwinds a parked proc's goroutine. Called only from Engine.Close.
func (p *Proc) kill() {
	if p.state != procParked {
		return
	}
	p.killed = true
	p.state = procDone
	p.resume <- struct{}{}
	// The goroutine panics with killSentinel, recovers and exits without
	// touching the yield channel, so there is nothing to wait for.
}
