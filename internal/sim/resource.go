package sim

import (
	"fmt"

	"roadrunner/internal/units"
)

// Resource models a server with integer capacity and a FIFO wait queue:
// links, DMA engines, switch ports. Acquire blocks the calling proc until
// the requested units are available; Release returns them and wakes
// waiters in order.
//
// Beyond admission control the resource keeps occupancy statistics —
// peak units in use, total time acquirers spent queued, and the
// time-integral of the queue length — so saturation is observable, not
// just enforced. The congestion-aware transport layer reads these to
// report which fabric links throttle a run.
type Resource struct {
	eng      *Engine
	name     string
	reason   string // precomputed park reason for the blocking path
	capacity int
	inUse    int
	waiters  []resourceWaiter
	fnWake   func() // reusable wake event for queued fn waiters

	// Occupancy accounting.
	busySince units.Time
	busyTime  units.Time
	peakInUse int
	acquires  int64
	contended int64      // acquisitions that had to queue
	waitTime  units.Time // total time acquirers spent queued
	queueArea units.Time // integral of queue length over time (waiter-time)
	queueMark units.Time // instant the queue length last changed
}

// resourceWaiter is one queued acquisition: a blocked proc, or — for
// event-chain callers that cannot park — a continuation called once the
// units are taken on its behalf. Exactly one of p and fn is set.
type resourceWaiter struct {
	p  *Proc
	fn func()
	n  int
	// queuedAt and wakePending replicate, for fn waiters, the state a
	// proc waiter keeps on its own stack (wait-start instant) and in its
	// Proc (pending-wake flag).
	queuedAt    units.Time
	wakePending bool
}

// NewResource creates a resource with the given capacity (must be >= 1).
func NewResource(eng *Engine, name string, capacity int) *Resource {
	if capacity < 1 {
		panic(fmt.Sprintf("sim: resource %q capacity %d", name, capacity))
	}
	return &Resource{eng: eng, name: name, reason: "resource " + name, capacity: capacity}
}

// Capacity returns the configured capacity.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the units currently held.
func (r *Resource) InUse() int { return r.inUse }

// noteQueue accrues the queue-length integral up to now. Call before any
// change to len(r.waiters).
func (r *Resource) noteQueue() {
	now := r.eng.Now()
	r.queueArea += units.Time(len(r.waiters)) * (now - r.queueMark)
	r.queueMark = now
}

// Acquire obtains n units, blocking in FIFO order behind earlier waiters.
func (r *Resource) Acquire(p *Proc, n int) {
	if n < 1 || n > r.capacity {
		panic(fmt.Sprintf("sim: resource %q acquire %d of %d", r.name, n, r.capacity))
	}
	r.acquires++
	// FIFO fairness: even if units are free, queue behind existing waiters.
	if len(r.waiters) == 0 && r.inUse+n <= r.capacity {
		r.take(n)
		return
	}
	r.contended++
	queuedAt := r.eng.Now()
	r.noteQueue()
	r.waiters = append(r.waiters, resourceWaiter{p: p, n: n})
	for {
		p.Park(r.reason)
		// The waiter stays queued until it can actually proceed; a wake
		// that raced with another grab simply parks again and will be
		// re-woken by the next Release.
		if len(r.waiters) > 0 && r.waiters[0].p == p && r.inUse+n <= r.capacity {
			r.noteQueue()
			// Shift-down pop: a waiters[1:] window would exhaust the
			// backing array and force an allocation on nearly every
			// contended admission (see Mailbox.wakeOne).
			copy(r.waiters, r.waiters[1:])
			r.waiters[len(r.waiters)-1] = resourceWaiter{}
			r.waiters = r.waiters[:len(r.waiters)-1]
			r.waitTime += r.eng.Now() - queuedAt
			r.take(n)
			r.grantNext() // capacity may allow the next waiter too
			return
		}
	}
}

// AcquireFn is Acquire for event-chain callers: it either takes the n
// units inline and returns true, or queues the continuation in the same
// FIFO as blocked procs and returns false — fn will be invoked (from an
// event, after the units have been taken on its behalf) once the grant
// reaches it. Occupancy statistics and the wake/re-check event pattern
// are identical to a proc waiter's, so a run that swaps one for the
// other schedules the exact same calendar.
func (r *Resource) AcquireFn(n int, fn func()) bool {
	if n < 1 || n > r.capacity {
		panic(fmt.Sprintf("sim: resource %q acquire %d of %d", r.name, n, r.capacity))
	}
	r.acquires++
	if len(r.waiters) == 0 && r.inUse+n <= r.capacity {
		r.take(n)
		return true
	}
	r.contended++
	r.noteQueue()
	r.waiters = append(r.waiters, resourceWaiter{fn: fn, n: n, queuedAt: r.eng.Now()})
	return false
}

// wakeHeadFn is the scheduled wake of a queued fn waiter: the analogue
// of a woken proc re-running its Acquire loop body. If the head can now
// proceed it is dequeued, charged and granted, and its continuation
// runs; a wake that raced with another grab just clears the pending
// flag and waits for the next Release.
func (r *Resource) wakeHeadFn() {
	if len(r.waiters) == 0 || r.waiters[0].fn == nil {
		return
	}
	head := &r.waiters[0]
	head.wakePending = false
	if r.inUse+head.n <= r.capacity {
		fn, n, queuedAt := head.fn, head.n, head.queuedAt
		r.noteQueue()
		copy(r.waiters, r.waiters[1:])
		r.waiters[len(r.waiters)-1] = resourceWaiter{}
		r.waiters = r.waiters[:len(r.waiters)-1]
		r.waitTime += r.eng.Now() - queuedAt
		r.take(n)
		r.grantNext()
		fn()
	}
}
func (r *Resource) take(n int) {
	if r.inUse == 0 {
		r.busySince = r.eng.Now()
	}
	r.inUse += n
	if r.inUse > r.peakInUse {
		r.peakInUse = r.inUse
	}
}

// Release returns n units and wakes eligible waiters.
func (r *Resource) Release(n int) {
	if n < 1 || n > r.inUse {
		panic(fmt.Sprintf("sim: resource %q release %d of %d in use", r.name, n, r.inUse))
	}
	r.inUse -= n
	if r.inUse == 0 {
		r.busyTime += r.eng.Now() - r.busySince
	}
	r.grantNext()
}

// grantNext wakes the queue head if it can now be satisfied.
func (r *Resource) grantNext() {
	if len(r.waiters) == 0 {
		return
	}
	head := &r.waiters[0]
	if r.inUse+head.n > r.capacity {
		return
	}
	if head.p != nil {
		if !head.p.WakePending() && head.p.Parked() {
			head.p.Wake()
		}
		return
	}
	if !head.wakePending {
		head.wakePending = true
		if r.fnWake == nil {
			r.fnWake = r.wakeHeadFn
		}
		r.eng.Schedule(0, r.fnWake)
	}
}

// Use acquires one unit, holds it for d, then releases it: the common
// pattern for occupying a link while a message is on the wire.
func (r *Resource) Use(p *Proc, d units.Time) {
	r.Acquire(p, 1)
	p.Sleep(d)
	r.Release(1)
}

// BusyTime returns the total time the resource spent with at least one
// unit in use. If currently busy, time up to Now() is included.
func (r *Resource) BusyTime() units.Time {
	t := r.busyTime
	if r.inUse > 0 {
		t += r.eng.Now() - r.busySince
	}
	return t
}

// ResetStats zeroes the occupancy accounting — peak, contention, wait and
// queue integrals — so a pooled resource starts the next run with fresh
// counters. The admission state must be idle (nothing held, nobody
// queued); resetting a busy resource would corrupt the busy-time and
// queue-area integrals, so it panics instead.
func (r *Resource) ResetStats() {
	if r.inUse > 0 || len(r.waiters) > 0 {
		panic(fmt.Sprintf("sim: resource %q stats reset with %d in use, %d waiting",
			r.name, r.inUse, len(r.waiters)))
	}
	r.busySince = 0
	r.busyTime = 0
	r.peakInUse = 0
	r.acquires = 0
	r.contended = 0
	r.waitTime = 0
	r.queueArea = 0
	r.queueMark = 0
}

// ResourceStats is a snapshot of a resource's occupancy counters.
type ResourceStats struct {
	Name      string
	Capacity  int
	InUse     int
	PeakInUse int        // high-water mark of units held at once
	Acquires  int64      // total successful or pending acquisitions started
	Contended int64      // acquisitions that queued before being granted
	WaitTime  units.Time // total time acquirers spent queued
	BusyTime  units.Time // time with at least one unit in use (up to Now)
	QueueArea units.Time // integral of queue length over time (waiter-time)
}

// Stats snapshots the occupancy counters, accruing the queue integral and
// busy time up to Now().
func (r *Resource) Stats() ResourceStats {
	area := r.queueArea + units.Time(len(r.waiters))*(r.eng.Now()-r.queueMark)
	return ResourceStats{
		Name:      r.name,
		Capacity:  r.capacity,
		InUse:     r.inUse,
		PeakInUse: r.peakInUse,
		Acquires:  r.acquires,
		Contended: r.contended,
		WaitTime:  r.waitTime,
		BusyTime:  r.BusyTime(),
		QueueArea: area,
	}
}

// MeanQueue returns the time-averaged queue length over the given horizon
// (typically the engine's final time).
func (s ResourceStats) MeanQueue(horizon units.Time) float64 {
	if horizon <= 0 {
		return 0
	}
	return float64(s.QueueArea) / float64(horizon)
}

// Utilization returns the fraction of the given horizon the resource was
// busy.
func (s ResourceStats) Utilization(horizon units.Time) float64 {
	if horizon <= 0 {
		return 0
	}
	return float64(s.BusyTime) / float64(horizon)
}
