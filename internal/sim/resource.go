package sim

import (
	"fmt"

	"roadrunner/internal/units"
)

// Resource models a server with integer capacity and a FIFO wait queue:
// links, DMA engines, switch ports. Acquire blocks the calling proc until
// the requested units are available; Release returns them and wakes
// waiters in order.
//
// Beyond admission control the resource keeps occupancy statistics —
// peak units in use, total time acquirers spent queued, and the
// time-integral of the queue length — so saturation is observable, not
// just enforced. The congestion-aware transport layer reads these to
// report which fabric links throttle a run.
type Resource struct {
	eng      *Engine
	name     string
	reason   string // precomputed park reason for the blocking path
	capacity int
	inUse    int
	waiters  []resourceWaiter

	// Occupancy accounting.
	busySince units.Time
	busyTime  units.Time
	peakInUse int
	acquires  int64
	contended int64      // acquisitions that had to queue
	waitTime  units.Time // total time acquirers spent queued
	queueArea units.Time // integral of queue length over time (waiter-time)
	queueMark units.Time // instant the queue length last changed
}

type resourceWaiter struct {
	p *Proc
	n int
}

// NewResource creates a resource with the given capacity (must be >= 1).
func NewResource(eng *Engine, name string, capacity int) *Resource {
	if capacity < 1 {
		panic(fmt.Sprintf("sim: resource %q capacity %d", name, capacity))
	}
	return &Resource{eng: eng, name: name, reason: "resource " + name, capacity: capacity}
}

// Capacity returns the configured capacity.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the units currently held.
func (r *Resource) InUse() int { return r.inUse }

// noteQueue accrues the queue-length integral up to now. Call before any
// change to len(r.waiters).
func (r *Resource) noteQueue() {
	now := r.eng.Now()
	r.queueArea += units.Time(len(r.waiters)) * (now - r.queueMark)
	r.queueMark = now
}

// Acquire obtains n units, blocking in FIFO order behind earlier waiters.
func (r *Resource) Acquire(p *Proc, n int) {
	if n < 1 || n > r.capacity {
		panic(fmt.Sprintf("sim: resource %q acquire %d of %d", r.name, n, r.capacity))
	}
	r.acquires++
	// FIFO fairness: even if units are free, queue behind existing waiters.
	if len(r.waiters) == 0 && r.inUse+n <= r.capacity {
		r.take(n)
		return
	}
	r.contended++
	queuedAt := r.eng.Now()
	r.noteQueue()
	r.waiters = append(r.waiters, resourceWaiter{p, n})
	for {
		p.Park(r.reason)
		// The waiter stays queued until it can actually proceed; a wake
		// that raced with another grab simply parks again and will be
		// re-woken by the next Release.
		if len(r.waiters) > 0 && r.waiters[0].p == p && r.inUse+n <= r.capacity {
			r.noteQueue()
			r.waiters = r.waiters[1:]
			r.waitTime += r.eng.Now() - queuedAt
			r.take(n)
			r.grantNext() // capacity may allow the next waiter too
			return
		}
	}
}

// take records n units as held.
func (r *Resource) take(n int) {
	if r.inUse == 0 {
		r.busySince = r.eng.Now()
	}
	r.inUse += n
	if r.inUse > r.peakInUse {
		r.peakInUse = r.inUse
	}
}

// Release returns n units and wakes eligible waiters.
func (r *Resource) Release(n int) {
	if n < 1 || n > r.inUse {
		panic(fmt.Sprintf("sim: resource %q release %d of %d in use", r.name, n, r.inUse))
	}
	r.inUse -= n
	if r.inUse == 0 {
		r.busyTime += r.eng.Now() - r.busySince
	}
	r.grantNext()
}

// grantNext wakes the queue head if it can now be satisfied.
func (r *Resource) grantNext() {
	if len(r.waiters) == 0 {
		return
	}
	head := r.waiters[0]
	if r.inUse+head.n <= r.capacity && !head.p.WakePending() && head.p.Parked() {
		head.p.Wake()
	}
}

// Use acquires one unit, holds it for d, then releases it: the common
// pattern for occupying a link while a message is on the wire.
func (r *Resource) Use(p *Proc, d units.Time) {
	r.Acquire(p, 1)
	p.Sleep(d)
	r.Release(1)
}

// BusyTime returns the total time the resource spent with at least one
// unit in use. If currently busy, time up to Now() is included.
func (r *Resource) BusyTime() units.Time {
	t := r.busyTime
	if r.inUse > 0 {
		t += r.eng.Now() - r.busySince
	}
	return t
}

// ResourceStats is a snapshot of a resource's occupancy counters.
type ResourceStats struct {
	Name      string
	Capacity  int
	InUse     int
	PeakInUse int        // high-water mark of units held at once
	Acquires  int64      // total successful or pending acquisitions started
	Contended int64      // acquisitions that queued before being granted
	WaitTime  units.Time // total time acquirers spent queued
	BusyTime  units.Time // time with at least one unit in use (up to Now)
	QueueArea units.Time // integral of queue length over time (waiter-time)
}

// Stats snapshots the occupancy counters, accruing the queue integral and
// busy time up to Now().
func (r *Resource) Stats() ResourceStats {
	area := r.queueArea + units.Time(len(r.waiters))*(r.eng.Now()-r.queueMark)
	return ResourceStats{
		Name:      r.name,
		Capacity:  r.capacity,
		InUse:     r.inUse,
		PeakInUse: r.peakInUse,
		Acquires:  r.acquires,
		Contended: r.contended,
		WaitTime:  r.waitTime,
		BusyTime:  r.BusyTime(),
		QueueArea: area,
	}
}

// MeanQueue returns the time-averaged queue length over the given horizon
// (typically the engine's final time).
func (s ResourceStats) MeanQueue(horizon units.Time) float64 {
	if horizon <= 0 {
		return 0
	}
	return float64(s.QueueArea) / float64(horizon)
}

// Utilization returns the fraction of the given horizon the resource was
// busy.
func (s ResourceStats) Utilization(horizon units.Time) float64 {
	if horizon <= 0 {
		return 0
	}
	return float64(s.BusyTime) / float64(horizon)
}
