package sim

import (
	"testing"

	"roadrunner/internal/units"
)

// TestResourceOccupancyStats pins the occupancy accounting under crafted
// contention: three procs contend for a capacity-1 resource, each holding
// it for 10 ns. A acquires at t=0 uncontended; B and C queue at t=0 and
// are granted at t=10ns and t=20ns.
func TestResourceOccupancyStats(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	r := NewResource(e, "link", 1)
	const hold = 10 * units.Nanosecond
	for _, name := range []string{"A", "B", "C"} {
		e.Spawn(name, func(p *Proc) {
			r.Use(p, hold)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	s := r.Stats()
	if s.Capacity != 1 || s.InUse != 0 {
		t.Errorf("capacity/inUse = %d/%d", s.Capacity, s.InUse)
	}
	if s.PeakInUse != 1 {
		t.Errorf("peak = %d, want 1", s.PeakInUse)
	}
	if s.Acquires != 3 || s.Contended != 2 {
		t.Errorf("acquires/contended = %d/%d, want 3/2", s.Acquires, s.Contended)
	}
	// B waits 10 ns, C waits 20 ns.
	if want := 30 * units.Nanosecond; s.WaitTime != want {
		t.Errorf("wait time = %v, want %v", s.WaitTime, want)
	}
	// Queue length: 2 waiters over [0,10ns), 1 over [10ns,20ns).
	if want := 30 * units.Nanosecond; s.QueueArea != want {
		t.Errorf("queue area = %v, want %v", s.QueueArea, want)
	}
	// Busy back to back from 0 to 30 ns.
	if want := 30 * units.Nanosecond; s.BusyTime != want {
		t.Errorf("busy = %v, want %v", s.BusyTime, want)
	}
	if got := s.MeanQueue(30 * units.Nanosecond); got != 1.0 {
		t.Errorf("mean queue = %v, want 1.0", got)
	}
	if got := s.Utilization(30 * units.Nanosecond); got != 1.0 {
		t.Errorf("utilization = %v, want 1.0", got)
	}
}

// TestResourceStatsCapacityTwo checks peak tracking and that uncontended
// admissions accrue no wait.
func TestResourceStatsCapacityTwo(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	r := NewResource(e, "dual", 2)
	const hold = 10 * units.Nanosecond
	for i := 0; i < 2; i++ {
		e.Spawn("p", func(p *Proc) {
			r.Use(p, hold)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	s := r.Stats()
	if s.PeakInUse != 2 {
		t.Errorf("peak = %d, want 2", s.PeakInUse)
	}
	if s.Contended != 0 || s.WaitTime != 0 || s.QueueArea != 0 {
		t.Errorf("uncontended run accrued contention: %+v", s)
	}
	if s.BusyTime != hold {
		t.Errorf("busy = %v, want %v", s.BusyTime, hold)
	}
}

// TestResourceStatsStaggered checks the queue integral with a gap between
// holds and a late-arriving waiter.
func TestResourceStatsStaggered(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	r := NewResource(e, "link", 1)
	e.Spawn("first", func(p *Proc) {
		r.Use(p, 20*units.Nanosecond)
	})
	// Arrives at t=5ns, queues 15 ns, holds 20 ns (to t=40ns).
	e.SpawnAt(5*units.Nanosecond, "second", func(p *Proc) {
		r.Use(p, 20*units.Nanosecond)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	s := r.Stats()
	if want := 15 * units.Nanosecond; s.WaitTime != want {
		t.Errorf("wait = %v, want %v", s.WaitTime, want)
	}
	// One waiter over [5ns, 20ns).
	if want := 15 * units.Nanosecond; s.QueueArea != want {
		t.Errorf("queue area = %v, want %v", s.QueueArea, want)
	}
	if want := 40 * units.Nanosecond; s.BusyTime != want {
		t.Errorf("busy = %v, want %v", s.BusyTime, want)
	}
	if s.PeakInUse != 1 || s.Acquires != 2 || s.Contended != 1 {
		t.Errorf("peak/acquires/contended = %d/%d/%d", s.PeakInUse, s.Acquires, s.Contended)
	}
}
