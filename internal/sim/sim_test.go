package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"roadrunner/internal/units"
)

func TestEventOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(30*units.Nanosecond, func() { got = append(got, 3) })
	e.Schedule(10*units.Nanosecond, func() { got = append(got, 1) })
	e.Schedule(20*units.Nanosecond, func() { got = append(got, 2) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("order = %v", got)
	}
	if e.Now() != 30*units.Nanosecond {
		t.Errorf("final time = %v", e.Now())
	}
}

func TestTieBreakBySequence(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(units.Microsecond, func() { got = append(got, i) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("tie order = %v", got)
		}
	}
}

func TestEventOrderProperty(t *testing.T) {
	// Random delays always fire in nondecreasing time order.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		var times []units.Time
		n := 50
		var schedule func(depth int)
		schedule = func(depth int) {
			d := units.Time(rng.Intn(1000)) * units.Nanosecond
			e.Schedule(d, func() {
				times = append(times, e.Now())
				if depth > 0 && rng.Intn(2) == 0 {
					schedule(depth - 1)
				}
			})
		}
		for i := 0; i < n; i++ {
			schedule(3)
		}
		if err := e.Run(); err != nil {
			return false
		}
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on negative delay")
		}
	}()
	e := NewEngine()
	e.Schedule(-1, func() {})
}

func TestProcSleep(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	var wake units.Time
	e.Spawn("sleeper", func(p *Proc) {
		p.Sleep(5 * units.Microsecond)
		p.Sleep(3 * units.Microsecond)
		wake = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if wake != 8*units.Microsecond {
		t.Errorf("woke at %v, want 8us", wake)
	}
}

func TestProcInterleaving(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	var trace []string
	e.Spawn("a", func(p *Proc) {
		trace = append(trace, "a0")
		p.Sleep(2 * units.Nanosecond)
		trace = append(trace, "a2")
	})
	e.Spawn("b", func(p *Proc) {
		trace = append(trace, "b0")
		p.Sleep(1 * units.Nanosecond)
		trace = append(trace, "b1")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a0", "b0", "b1", "a2"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v", trace)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	e.Spawn("stuck", func(p *Proc) {
		p.Park("waiting for nothing")
	})
	err := e.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(de.Procs) != 1 {
		t.Errorf("blocked procs = %v", de.Procs)
	}
}

func TestParkWake(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	var p1 *Proc
	var order []string
	p1 = e.Spawn("waiter", func(p *Proc) {
		p.Park("test")
		order = append(order, "woken")
	})
	e.Spawn("waker", func(p *Proc) {
		p.Sleep(10 * units.Nanosecond)
		order = append(order, "waking")
		p1.Wake()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "waking" || order[1] != "woken" {
		t.Errorf("order = %v", order)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Schedule(10*units.Nanosecond, func() { fired++ })
	e.Schedule(30*units.Nanosecond, func() { fired++ })
	if err := e.RunUntil(20 * units.Nanosecond); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Errorf("fired = %d, want 1", fired)
	}
	if e.Now() != 20*units.Nanosecond {
		t.Errorf("now = %v, want 20ns", e.Now())
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 2 {
		t.Errorf("fired = %d, want 2", fired)
	}
}

func TestMailboxFIFO(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	mb := NewMailbox[int](e, "test")
	var got []int
	e.Spawn("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(units.Nanosecond)
			mb.Put(i)
		}
	})
	e.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			got = append(got, mb.Get(p))
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got = %v", got)
		}
	}
}

func TestMailboxBlocksUntilPut(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	mb := NewMailbox[string](e, "test")
	var when units.Time
	e.Spawn("consumer", func(p *Proc) {
		mb.Get(p)
		when = p.Now()
	})
	e.Spawn("producer", func(p *Proc) {
		p.Sleep(42 * units.Nanosecond)
		mb.Put("x")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if when != 42*units.Nanosecond {
		t.Errorf("received at %v, want 42ns", when)
	}
}

func TestMailboxGetMatch(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	mb := NewMailbox[int](e, "test")
	var got []int
	e.Spawn("c", func(p *Proc) {
		// Want only even numbers, in arrival order.
		for i := 0; i < 3; i++ {
			got = append(got, mb.GetMatch(p, func(v int) bool { return v%2 == 0 }))
		}
	})
	e.Spawn("p", func(p *Proc) {
		for _, v := range []int{1, 2, 3, 4, 5, 6} {
			p.Sleep(units.Nanosecond)
			mb.Put(v)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 2 || got[1] != 4 || got[2] != 6 {
		t.Errorf("got = %v", got)
	}
	// The odd ones remain queued in order.
	if mb.Len() != 3 {
		t.Errorf("remaining = %d", mb.Len())
	}
	v, ok := mb.TryGet()
	if !ok || v != 1 {
		t.Errorf("TryGet = %v, %v", v, ok)
	}
}

func TestResourceSerialises(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	res := NewResource(e, "link", 1)
	var done []units.Time
	for i := 0; i < 3; i++ {
		e.Spawn("user", func(p *Proc) {
			res.Use(p, 10*units.Nanosecond)
			done = append(done, p.Now())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []units.Time{10 * units.Nanosecond, 20 * units.Nanosecond, 30 * units.Nanosecond}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("done = %v, want %v", done, want)
		}
	}
	if res.BusyTime() != 30*units.Nanosecond {
		t.Errorf("busy = %v", res.BusyTime())
	}
}

func TestResourceCapacityTwo(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	res := NewResource(e, "dual", 2)
	var done []units.Time
	for i := 0; i < 4; i++ {
		e.Spawn("user", func(p *Proc) {
			res.Use(p, 10*units.Nanosecond)
			done = append(done, p.Now())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Two at a time: finish at 10,10,20,20.
	want := []units.Time{10 * units.Nanosecond, 10 * units.Nanosecond, 20 * units.Nanosecond, 20 * units.Nanosecond}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("done = %v, want %v", done, want)
		}
	}
}

func TestResourceFIFOOrder(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	res := NewResource(e, "link", 1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.SpawnAt(units.Time(i)*units.Nanosecond, "user", func(p *Proc) {
			res.Acquire(p, 1)
			order = append(order, i)
			p.Sleep(100 * units.Nanosecond)
			res.Release(1)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []units.Time {
		e := NewEngine()
		defer e.Close()
		res := NewResource(e, "r", 1)
		mb := NewMailbox[int](e, "m")
		var times []units.Time
		for i := 0; i < 8; i++ {
			i := i
			e.Spawn("p", func(p *Proc) {
				p.Sleep(units.Time(i%3) * units.Nanosecond)
				res.Use(p, 5*units.Nanosecond)
				mb.Put(i)
				times = append(times, p.Now())
			})
		}
		e.Spawn("drain", func(p *Proc) {
			for i := 0; i < 8; i++ {
				mb.Get(p)
				times = append(times, p.Now())
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return times
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run differs at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestCloseUnblocksParked(t *testing.T) {
	e := NewEngine()
	e.Spawn("stuck", func(p *Proc) {
		p.Park("forever")
		t.Error("should never resume normally")
	})
	if err := e.Run(); err == nil {
		t.Fatal("expected deadlock")
	}
	e.Close() // must not hang and must not run the post-Park code
}

func TestSpawnAtDelay(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	var start units.Time
	e.SpawnAt(7*units.Microsecond, "late", func(p *Proc) {
		start = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if start != 7*units.Microsecond {
		t.Errorf("started at %v", start)
	}
}
