package spu

import (
	"testing"
	"testing/quick"

	"roadrunner/internal/isa"
)

func TestIssueWidthNeverExceedsTwo(t *testing.T) {
	// No cycle may issue more than two instructions, and a dual issue
	// always pairs one even-pipe with one odd-pipe instruction.
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%120) + 2
		b := isa.NewBuilder()
		s := seed
		next := func(mod int) int {
			s = s*6364136223846793005 + 1442695040888963407
			v := int((s >> 33) % int64(mod))
			if v < 0 {
				v += mod
			}
			return v
		}
		prog := func() isa.Program {
			for i := 0; i < n; i++ {
				b.I(isa.Group(next(isa.NumGroups)), isa.Reg(next(128)), isa.Reg(next(128)))
			}
			return b.Program()
		}()
		for _, m := range []*Model{CellBE(), PowerXCell8i()} {
			r := m.Run(prog)
			perCycle := map[int64][]isa.Pipe{}
			for i, c := range r.IssueCycles {
				perCycle[c] = append(perCycle[c], prog[i].Op.Pipe())
			}
			for _, pipes := range perCycle {
				if len(pipes) > 2 {
					return false
				}
				if len(pipes) == 2 && pipes[0] == pipes[1] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestGlobalStallEnforcedProperty(t *testing.T) {
	// On the Cell BE, nothing issues within 6 cycles after any FPD.
	f := func(seed int64) bool {
		b := isa.NewBuilder()
		s := seed
		next := func(mod int) int {
			s = s*2862933555777941757 + 3037000493
			v := int((s >> 33) % int64(mod))
			if v < 0 {
				v += mod
			}
			return v
		}
		for i := 0; i < 60; i++ {
			g := isa.Group(next(isa.NumGroups))
			b.I(g, isa.Reg(next(128)), isa.Reg(next(128)))
		}
		prog := b.Program()
		r := CellBE().Run(prog)
		for i, in := range prog {
			if in.Op != isa.FPD {
				continue
			}
			fpdAt := r.IssueCycles[i]
			for j := i + 1; j < len(prog); j++ {
				c := r.IssueCycles[j]
				if c > fpdAt && c < fpdAt+7 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRegisterDependenciesRespected(t *testing.T) {
	// A consumer never issues before its producer's result is ready.
	f := func(seed int64) bool {
		b := isa.NewBuilder()
		s := seed
		next := func(mod int) int {
			s = s*6364136223846793005 + 1442695040888963407
			v := int((s >> 33) % int64(mod))
			if v < 0 {
				v += mod
			}
			return v
		}
		for i := 0; i < 80; i++ {
			b.I(isa.Group(next(isa.NumGroups)), isa.Reg(next(32)), isa.Reg(next(32)))
		}
		prog := b.Program()
		for _, m := range []*Model{CellBE(), PowerXCell8i()} {
			r := m.Run(prog)
			ready := map[isa.Reg]int64{}
			for i, in := range prog {
				for _, src := range in.Srcs {
					if src == isa.NoReg {
						continue
					}
					if t, ok := ready[src]; ok && r.IssueCycles[i] < t {
						return false
					}
				}
				if in.Dst != isa.NoReg {
					ready[in.Dst] = r.IssueCycles[i] + int64(m.Timing[in.Op].Latency)
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
