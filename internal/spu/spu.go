// Package spu implements a cycle-approximate simulator of the SPU
// (Synergistic Processor Unit) issue pipeline, parameterised for the two
// chips the paper compares: the original Cell BE and the PowerXCell 8i.
//
// The model captures what the paper's assembly microbenchmarks measure:
// per-group instruction latency, local stall (unit busy), global stall
// (no issue at all), the dual-issue rule (one even-pipe + one odd-pipe
// instruction per cycle, in order), and register dependences through a
// scoreboard. The single architectural difference between the chips — the
// Cell BE's unpipelined double-precision unit (13-cycle latency, 6-cycle
// global stall) versus the PowerXCell 8i's fully pipelined one (9-cycle
// latency, no stall) — reproduces Figs. 4 and 5 and, composed with the
// rest of the system, the paper's application-level DP speedups.
package spu

import (
	"fmt"

	"roadrunner/internal/isa"
	"roadrunner/internal/params"
	"roadrunner/internal/units"
)

// Timing holds the pipeline constants for one execution group.
type Timing struct {
	Latency     int // cycles from issue to result available
	LocalStall  int // extra cycles before the same unit can issue again
	GlobalStall int // cycles after issue during which nothing can issue
}

// Repetition returns the issue-to-issue distance for back-to-back
// instructions on the same unit: 1 means fully pipelined.
func (t Timing) Repetition() int { return 1 + t.LocalStall + t.GlobalStall }

// Model is a parameterised SPU pipeline.
type Model struct {
	Name   string
	Clock  units.Frequency
	Timing [isa.NumGroups]Timing
}

// baseTimings are the execution-group constants shared by both chips
// (from the SPU ISA's execution classes; the class names in the paper's
// figures encode the latencies: FP6 = 6 cycles, FP7 = 7, FX2 = 2, ...).
func baseTimings() [isa.NumGroups]Timing {
	var t [isa.NumGroups]Timing
	t[isa.BR] = Timing{Latency: 4}
	t[isa.FP6] = Timing{Latency: 6}
	t[isa.FP7] = Timing{Latency: 7}
	t[isa.FX2] = Timing{Latency: 2}
	t[isa.FX3] = Timing{Latency: 3}
	t[isa.FXB] = Timing{Latency: 4}
	t[isa.LS] = Timing{Latency: 6}
	t[isa.SHUF] = Timing{Latency: 4}
	return t
}

// CellBE returns the original Cell Broadband Engine SPU model: the DP unit
// is not pipelined — 13-cycle latency and a 6-cycle global issue stall
// after every FPD instruction (repetition distance 7).
func CellBE() *Model {
	t := baseTimings()
	t[isa.FPD] = Timing{Latency: 13, GlobalStall: 6}
	return &Model{Name: "Cell BE", Clock: params.CellClock, Timing: t}
}

// PowerXCell8i returns the PowerXCell 8i SPU model: the redesigned DP unit
// is fully pipelined with 9-cycle latency.
func PowerXCell8i() *Model {
	t := baseTimings()
	t[isa.FPD] = Timing{Latency: 9}
	return &Model{Name: "PowerXCell 8i", Clock: params.CellClock, Timing: t}
}

// Result summarises a pipeline run.
type Result struct {
	Cycles      int64   // total cycles until the last result is available
	Issued      int     // instructions issued
	DualIssues  int64   // cycles in which two instructions issued
	IssueCycles []int64 // per-instruction issue cycle
	FlopsDP     int64   // double-precision flops retired
	FlopsSP     int64   // single-precision flops retired
}

// IPC returns instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Issued) / float64(r.Cycles)
}

// Time converts the cycle count to simulated time at the model's clock.
func (m *Model) Time(cycles int64) units.Time { return m.Clock.Cycles(cycles) }

// Run executes a program through the issue pipeline and returns the
// resulting schedule. The pipeline is in-order and dual-issue: at most one
// even-pipe and one odd-pipe instruction issue per cycle, and instruction
// i+1 never issues before instruction i.
func (m *Model) Run(prog isa.Program) Result {
	var (
		regReady    [isa.NumRegs]int64 // cycle at which each register's value is available
		unitReady   [isa.NumGroups]int64
		noIssueTill int64 // global stall horizon
		lastIssue   int64 = -1
		pipeUsed    [2]bool
		res         Result
		finish      int64
	)
	res.IssueCycles = make([]int64, len(prog))
	for idx, in := range prog {
		t := m.Timing[in.Op]
		c := noIssueTill
		if u := unitReady[in.Op]; u > c {
			c = u
		}
		for _, s := range in.Srcs {
			if s == isa.NoReg {
				continue
			}
			if r := regReady[s]; r > c {
				c = r
			}
		}
		if c < lastIssue {
			c = lastIssue
		}
		pipe := in.Op.Pipe()
		if c == lastIssue {
			// Same cycle as the previous issue: allowed only as the second
			// half of a dual issue on the other pipe.
			if pipeUsed[pipe] {
				c = lastIssue + 1
			}
		}
		if c > lastIssue {
			pipeUsed[0], pipeUsed[1] = false, false
		} else if lastIssue >= 0 {
			res.DualIssues++
		}
		pipeUsed[pipe] = true
		lastIssue = c
		res.IssueCycles[idx] = c
		res.Issued++
		if in.Dst != isa.NoReg {
			regReady[in.Dst] = c + int64(t.Latency)
		}
		unitReady[in.Op] = c + int64(t.Repetition())
		if t.GlobalStall > 0 {
			noIssueTill = c + 1 + int64(t.GlobalStall)
		}
		if done := c + int64(t.Latency); done > finish {
			finish = done
		}
		res.FlopsDP += int64(in.Op.FlopsDP())
		res.FlopsSP += int64(in.Op.FlopsSP())
	}
	res.Cycles = finish
	return res
}

// MeasureLatency reproduces the paper's latency microbenchmark for one
// group: a long chain of dependent instructions; the issue-to-issue
// distance between dependent neighbours is the pipeline latency.
func (m *Model) MeasureLatency(g isa.Group) int {
	const n = 64
	r := m.Run(isa.DependentChain(g, n))
	// Steady-state distance between consecutive issues.
	return int(r.IssueCycles[n-1] - r.IssueCycles[n-2])
}

// MeasureRepetition reproduces the repetition-distance microbenchmark:
// independent same-group instructions back to back; their issue spacing is
// the repetition distance (local + global stalls + 1).
func (m *Model) MeasureRepetition(g isa.Group) int {
	const n = 64
	r := m.Run(isa.IndependentStream(g, n))
	return int(r.IssueCycles[n-1] - r.IssueCycles[n-2])
}

// PeakDPFlops returns the model-derived peak double-precision rate of one
// SPE: a stream of independent FPD FMAs pushed through the pipeline.
func (m *Model) PeakDPFlops() units.Flops {
	const n = 4096
	r := m.Run(isa.IndependentStream(isa.FPD, n))
	secs := m.Time(r.Cycles).Seconds()
	return units.Flops(float64(r.FlopsDP) / secs)
}

// PeakSPFlops returns the model-derived peak single-precision rate of one
// SPE (independent FP6 FMAs).
func (m *Model) PeakSPFlops() units.Flops {
	const n = 4096
	r := m.Run(isa.IndependentStream(isa.FP6, n))
	secs := m.Time(r.Cycles).Seconds()
	return units.Flops(float64(r.FlopsSP) / secs)
}

// String identifies the model.
func (m *Model) String() string {
	return fmt.Sprintf("%s @ %v", m.Name, m.Clock)
}
