package spu

import (
	"math"
	"testing"
	"testing/quick"

	"roadrunner/internal/isa"
	"roadrunner/internal/params"
)

func TestLatencyTablesMatchPaperFig4(t *testing.T) {
	cbe, pxc := CellBE(), PowerXCell8i()
	wantCommon := map[isa.Group]int{
		isa.BR: 4, isa.FP6: 6, isa.FP7: 7, isa.FX2: 2,
		isa.FX3: 3, isa.FXB: 4, isa.LS: 6, isa.SHUF: 4,
	}
	for g, want := range wantCommon {
		if got := cbe.MeasureLatency(g); got != want {
			t.Errorf("CellBE latency %s = %d, want %d", g, got, want)
		}
		if got := pxc.MeasureLatency(g); got != want {
			t.Errorf("PXC8i latency %s = %d, want %d", g, got, want)
		}
	}
	// The single difference: FPD 13 -> 9 cycles.
	if got := cbe.MeasureLatency(isa.FPD); got != 13 {
		t.Errorf("CellBE FPD latency = %d, want 13", got)
	}
	if got := pxc.MeasureLatency(isa.FPD); got != 9 {
		t.Errorf("PXC8i FPD latency = %d, want 9", got)
	}
}

func TestRepetitionMatchesPaperFig5(t *testing.T) {
	cbe, pxc := CellBE(), PowerXCell8i()
	for _, g := range isa.Groups() {
		wantCBE, wantPXC := 1, 1
		if g == isa.FPD {
			wantCBE = 7 // unpipelined DP: 6-cycle global stall
		}
		if got := cbe.MeasureRepetition(g); got != wantCBE {
			t.Errorf("CellBE repetition %s = %d, want %d", g, got, wantCBE)
		}
		if got := pxc.MeasureRepetition(g); got != wantPXC {
			t.Errorf("PXC8i repetition %s = %d, want %d", g, got, wantPXC)
		}
	}
}

func TestPeakDPRatesMatchPaper(t *testing.T) {
	// Aggregate 8-SPE peaks must reproduce the paper's §II/§IV.A numbers:
	// Cell BE 14.6 Gflop/s DP, PowerXCell 8i 102.4 Gflop/s DP,
	// both 204.8 Gflop/s SP.
	cbe := CellBE().PeakDPFlops().GF() * 8
	if math.Abs(cbe-14.6) > 0.05*14.6 {
		t.Errorf("CellBE aggregate DP = %.2f GF/s, want ~14.6", cbe)
	}
	pxc := PowerXCell8i().PeakDPFlops().GF() * 8
	if math.Abs(pxc-102.4) > 0.02*102.4 {
		t.Errorf("PXC8i aggregate DP = %.2f GF/s, want ~102.4", pxc)
	}
	sp := PowerXCell8i().PeakSPFlops().GF() * 8
	if math.Abs(sp-204.8) > 0.02*204.8 {
		t.Errorf("PXC8i aggregate SP = %.2f GF/s, want ~204.8", sp)
	}
	// The paper's 7x claim: "seven times the peak DP floating-point
	// performance of the Cell BE".
	if r := pxc / cbe; math.Abs(r-7.0) > 0.1*7.0 {
		t.Errorf("DP improvement = %.2fx, want ~7x", r)
	}
}

func TestDualIssuePairsEvenOdd(t *testing.T) {
	m := PowerXCell8i()
	// Alternating independent even/odd instructions should dual-issue
	// nearly every cycle.
	b := isa.NewBuilder()
	for i := 0; i < 100; i++ {
		b.I(isa.FX2, isa.Reg(1+i%50), isa.Reg(110))
		b.I(isa.SHUF, isa.Reg(51+i%50), isa.Reg(111))
	}
	r := m.Run(b.Program())
	if r.IPC() < 1.8 {
		t.Errorf("IPC = %.2f, want ~2 for even/odd pairs", r.IPC())
	}
	// All-even instructions can never dual-issue.
	r = m.Run(isa.IndependentStream(isa.FX2, 100))
	if r.DualIssues != 0 {
		t.Errorf("dual issues on single-pipe stream = %d", r.DualIssues)
	}
	if r.IPC() > 1.01 {
		t.Errorf("IPC = %.2f for single-pipe stream", r.IPC())
	}
}

func TestGlobalStallBlocksOtherUnits(t *testing.T) {
	// On the Cell BE, an FPD instruction stalls the whole issue logic for
	// 6 cycles: an independent FX2 right after it must wait.
	m := CellBE()
	p := isa.NewBuilder().
		I(isa.FPD, 1, 0, 0).
		I(isa.FX2, 2, 0).
		Program()
	r := m.Run(p)
	if gap := r.IssueCycles[1] - r.IssueCycles[0]; gap != 7 {
		t.Errorf("FX2 issued %d cycles after FPD, want 7", gap)
	}
	// On the PowerXCell 8i there is no stall; FX2 (even pipe) issues the
	// next cycle (same-cycle dual issue is impossible: both even pipe).
	m = PowerXCell8i()
	r = m.Run(p)
	if gap := r.IssueCycles[1] - r.IssueCycles[0]; gap != 1 {
		t.Errorf("PXC8i FX2 gap = %d, want 1", gap)
	}
}

func TestDependencyStalls(t *testing.T) {
	m := PowerXCell8i()
	// LS (6-cycle) result feeding an FPD: the FPD must wait 6 cycles.
	p := isa.NewBuilder().
		I(isa.LS, 1, 0).
		I(isa.FPD, 2, 1, 1).
		Program()
	r := m.Run(p)
	if r.IssueCycles[1] != r.IssueCycles[0]+6 {
		t.Errorf("FPD issued at %d, LS at %d", r.IssueCycles[1], r.IssueCycles[0])
	}
}

func TestInOrderIssueProperty(t *testing.T) {
	// Issue cycles are nondecreasing in program order for arbitrary
	// programs on both models.
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%100) + 2
		b := isa.NewBuilder()
		s := seed
		next := func(mod int) int {
			s = s*6364136223846793005 + 1442695040888963407
			v := int((s >> 33) % int64(mod))
			if v < 0 {
				v += mod
			}
			return v
		}
		for i := 0; i < n; i++ {
			g := isa.Group(next(isa.NumGroups))
			dst := isa.Reg(next(isa.NumRegs))
			src := isa.Reg(next(isa.NumRegs))
			b.I(g, dst, src)
		}
		for _, m := range []*Model{CellBE(), PowerXCell8i()} {
			r := m.Run(b.Program())
			for i := 1; i < len(r.IssueCycles); i++ {
				if r.IssueCycles[i] < r.IssueCycles[i-1] {
					return false
				}
			}
			if r.Cycles < r.IssueCycles[len(r.IssueCycles)-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPXC8iNeverSlowerProperty(t *testing.T) {
	// For any program, the PowerXCell 8i finishes no later than the
	// Cell BE: its only timing change is strictly better.
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%80) + 2
		b := isa.NewBuilder()
		s := seed
		next := func(mod int) int {
			s = s*2862933555777941757 + 3037000493
			v := int((s >> 33) % int64(mod))
			if v < 0 {
				v += mod
			}
			return v
		}
		for i := 0; i < n; i++ {
			b.I(isa.Group(next(isa.NumGroups)), isa.Reg(next(128)), isa.Reg(next(128)))
		}
		p := b.Program()
		return PowerXCell8i().Run(p).Cycles <= CellBE().Run(p).Cycles
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTimeConversion(t *testing.T) {
	m := PowerXCell8i()
	if m.Clock != params.CellClock {
		t.Errorf("clock = %v", m.Clock)
	}
	// 3200 cycles at 3.2 GHz = 1 us.
	if got := m.Time(3200); got.Microseconds() != 1 {
		t.Errorf("3200 cycles = %v", got)
	}
}

func TestResultCounters(t *testing.T) {
	m := PowerXCell8i()
	p := isa.IndependentStream(isa.FPD, 10)
	r := m.Run(p)
	if r.Issued != 10 {
		t.Errorf("issued = %d", r.Issued)
	}
	if r.FlopsDP != 40 {
		t.Errorf("flops = %d", r.FlopsDP)
	}
	if r.FlopsSP != 0 {
		t.Errorf("sp flops = %d", r.FlopsSP)
	}
}
