package surrogate_test

import (
	"testing"

	"roadrunner/internal/fabric"
	"roadrunner/internal/ib"
	"roadrunner/internal/surrogate"
	"roadrunner/internal/transport"
)

// The Surrogate* benches track the analytic fast path against the
// pooled evaluator it screens for (BenchmarkEvaluatorReplayMakespanOnly
// in internal/trace): SurrogatePrice is the two-tier search's inner
// loop and must stay microseconds, not milliseconds.

func benchModel(b *testing.B) (*surrogate.Model, []transport.Endpoint) {
	b.Helper()
	tr := testTrace(b)
	fab := fabric.New()
	m, err := surrogate.New(tr, fab, ib.OpenMPI(), transport.Congested())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(m.Close)
	// The congested candidate: everything strided across the fabric.
	return m, basePlacements(fab, tr.Meta.Ranks)[1]
}

// BenchmarkSurrogatePrice is one warm-cache pricing of a 64-rank
// congested placement — the number the ≥40x screening claim rests on.
func BenchmarkSurrogatePrice(b *testing.B) {
	m, places := benchModel(b)
	m.Price(places) // warm the route cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Price(places)
	}
}

// BenchmarkSurrogatePriceColdRoutes re-prices through a cold per-clone
// route cache each iteration: what the first candidate on a fresh
// search worker costs.
func BenchmarkSurrogatePriceColdRoutes(b *testing.B) {
	m, places := benchModel(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := m.Clone()
		c.Price(places)
		c.Close()
	}
}

// BenchmarkSurrogateNew is the per-trace setup: traffic matrix,
// dependency compile and buffer allocation. Paid once per search, not
// per candidate.
func BenchmarkSurrogateNew(b *testing.B) {
	tr := testTrace(b)
	fab := fabric.New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := surrogate.New(tr, fab, ib.OpenMPI(), transport.Congested())
		if err != nil {
			b.Fatal(err)
		}
		m.Close()
	}
}
