package surrogate

import (
	"fmt"
	"math"
	"sort"

	"roadrunner/internal/transport"
	"roadrunner/internal/units"
)

// calibrateShrink is the ridge strength toward the physical prior,
// relative to the (feature-normalized) per-anchor signal. The walk's
// schedule term is a near-complete model on its own — it already plays
// out HCA sharing and link admission — so the correction terms are
// allowed to bend the fit only where the anchors carry evidence as
// strong as the prior, not to chase residual noise from a dozen
// near-tie measurements.
const calibrateShrink = 1.0

// Calibrate fits the model's term weights by ridge least squares
// against DES-evaluated anchor placements: anchors[i] was replayed to
// times[i] by the trace evaluator. At least NumFeatures anchors are
// required; a dozen diverse ones (the baseline mappings plus seeded
// perturbations of them) are plenty — the model has four physical
// terms and a constant, not a network to train. The fit is
// deterministic: fixed accumulation order, fixed elimination order.
//
// The regression is solved in feature-normalized space (each column
// scaled by its root-mean-square over the anchors) with the ridge
// shrinking toward the physical prior "price = schedule walk", so
// weakly-identified correction terms stay near zero instead of fitting
// anchor noise, and features a policy zeroes out (the wait terms with
// congestion off) get weight zero instead of making the system
// singular.
func (m *Model) Calibrate(anchors [][]transport.Endpoint, times []units.Time) error {
	if len(anchors) != len(times) {
		return fmt.Errorf("surrogate: %d anchors but %d times", len(anchors), len(times))
	}
	if len(anchors) < NumFeatures {
		return fmt.Errorf("surrogate: %d anchors, need at least %d", len(anchors), NumFeatures)
	}
	n := len(anchors)
	x := make([][NumFeatures]float64, n)
	var rms [NumFeatures]float64
	for i, pl := range anchors {
		f := m.features(pl)
		x[i] = *f
		for j := 0; j < NumFeatures; j++ {
			rms[j] += f[j] * f[j]
		}
	}
	for j := 0; j < NumFeatures; j++ {
		rms[j] = math.Sqrt(rms[j] / float64(n))
		if rms[j] == 0 {
			rms[j] = 1 // dead feature: shrinks to its prior weight (0)
		}
	}
	// Normal equations in normalized space; ridge toward the prior.
	// Normalized columns have unit RMS, so the Gram diagonal is ~n and
	// lam = shrink*n is a scale-free strength.
	prior := [NumFeatures]float64{0, rms[1], 0, 0, 0} // w=1 on sched, normalized
	var a [NumFeatures][NumFeatures]float64
	var b [NumFeatures]float64
	for i := range x {
		y := float64(times[i])
		for r := 0; r < NumFeatures; r++ {
			fr := x[i][r] / rms[r]
			for c := 0; c < NumFeatures; c++ {
				a[r][c] += fr * x[i][c] / rms[c]
			}
			b[r] += fr * y
		}
	}
	lam := calibrateShrink * float64(n)
	for r := 0; r < NumFeatures; r++ {
		a[r][r] += lam
		b[r] += lam * prior[r]
	}
	w, err := solve(&a, &b)
	if err != nil {
		return err
	}
	out := make([]float64, NumFeatures)
	for j := 0; j < NumFeatures; j++ {
		out[j] = w[j] / rms[j]
	}
	m.weights = out
	return nil
}

// solve runs Gaussian elimination with partial pivoting on the ridge
// normal equations.
func solve(a *[NumFeatures][NumFeatures]float64, b *[NumFeatures]float64) (*[NumFeatures]float64, error) {
	n := NumFeatures
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) == 0 {
			return nil, fmt.Errorf("surrogate: singular normal equations at column %d", col)
		}
		a[col], a[piv] = a[piv], a[col]
		b[col], b[piv] = b[piv], b[col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	var w [NumFeatures]float64
	for r := n - 1; r >= 0; r-- {
		v := b[r]
		for c := r + 1; c < n; c++ {
			v -= a[r][c] * w[c]
		}
		w[r] = v / a[r][r]
	}
	return &w, nil
}

// Spearman returns the Spearman rank-correlation coefficient between
// the two cost lists (ties get average ranks). It is the surrogate's
// figure of merit: a screening tier only needs the ordering right, not
// the absolute times. len(a) == len(b) >= 2 is required; a constant
// list has no ordering and returns NaN.
func Spearman(a, b []units.Time) float64 {
	if len(a) != len(b) || len(a) < 2 {
		return math.NaN()
	}
	ra, rb := ranks(a), ranks(b)
	var ma, mb float64
	for i := range ra {
		ma += ra[i]
		mb += rb[i]
	}
	ma /= float64(len(ra))
	mb /= float64(len(rb))
	var cov, va, vb float64
	for i := range ra {
		da, db := ra[i]-ma, rb[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	return cov / math.Sqrt(va*vb)
}

// ranks assigns 1-based ranks with ties averaged.
func ranks(xs []units.Time) []float64 {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return xs[idx[i]] < xs[idx[j]] })
	out := make([]float64, len(xs))
	for i := 0; i < len(idx); {
		j := i
		for j+1 < len(idx) && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		r := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[idx[k]] = r
		}
		i = j + 1
	}
	return out
}
