// Package surrogate prices a rank→node placement analytically, in
// microseconds of host time instead of the milliseconds a discrete-event
// replay costs — the grey-box queueing fast path the placement search
// uses to screen large candidate batches before spending DES
// evaluations on a shortlist.
//
// The model is built once per trace: the placement-independent traffic
// matrix (trace.Traffic) plus a compiled form of the trace's dependency
// DAG (per-rank programs and the send→recv matching). Pricing a
// candidate mapping then combines analytic terms:
//
//   - a schedule walk of the compiled DAG — a deterministic list
//     scheduler replaying the transport arithmetic in closed form:
//     software overheads, rendezvous round trips, per-hop latency, and
//     payload flows whose rate is sampled per chunk from the HCA
//     sharing laws (multi-flow and duplex caps at both endpoint
//     adapters, exactly ib's flowRate), with each admission-controlled
//     link a busy-until server when the congestion policy queues
//     (PR 4's headline: HCA sharing, not hop count, dominates
//     placement cost);
//   - the HCA-sharing bound: the hottest adapter's total streaming time
//     under the multi-flow and duplex caps — the load-balance term the
//     walk's completion-time view underweights;
//   - an M/M/1-style waiting-time term per contended link — the traffic
//     matrix folded through the topology's routes, resolved from the
//     same transport route cache the DES uses in transport.PairPath
//     admission order — split into the 2:1-tapered uplink tier and
//     everything else, with utilization measured against the walk
//     horizon.
//
// The terms are combined linearly with weights fitted by ridge least
// squares against a small set of DES-evaluated anchor placements
// (Calibrate) — the grey-box step: physics decides the features,
// calibration absorbs the constants the closed forms cannot know.
// Everything is deterministic: the walk's event heap breaks ties by
// (time, kind, rank) and float accumulation follows the canonical pair
// order, so equal inputs price equally on every run and every clone,
// which the placement search's serial ≡ parallel contract relies on.
package surrogate

import (
	"fmt"
	"math"

	"roadrunner/internal/fabric"
	"roadrunner/internal/ib"
	"roadrunner/internal/sim"
	"roadrunner/internal/trace"
	"roadrunner/internal/transport"
	"roadrunner/internal/units"
)

// NumFeatures is the length of a feature vector.
const NumFeatures = 5

// FeatureNames labels the feature vector entries, in order.
var FeatureNames = [NumFeatures]string{"const", "sched", "hca", "wait-uplink", "wait-other"}

// maxRho clamps per-link utilization below saturation so the M/M/1
// waiting term stays finite on overloaded candidates (the ranking still
// orders them last: service time keeps growing with load).
const maxRho = 0.97

// walkChunk is the rate re-sampling granularity of the schedule walk's
// flows, mirroring the DES HCA's contention re-evaluation chunk.
const walkChunk = 64 * 1024

// Op kinds in the compiled DAG (compute records are folded into the
// next communication op's pre-duration, so only these two remain).
const (
	opSend = iota
	opRecv
)

// Walk event kinds, packed into the event key's low bit: flow chunk
// completions order before flow starts at the same instant, as the DES
// releases an adapter before the next admission at one timestamp.
const (
	evEnd = iota
	evStart
)

// routeEntry is one compiled directed node-pair route: the latency
// decomposition plus the admission-controlled links as dense indices
// into the model's link table, in transport acquisition order.
type routeEntry struct {
	fabLat   units.Time
	rdvExtra units.Time
	links    []int32
	derived  bool
}

// compiled is the trace's dependency DAG flattened for the walk, built
// once and shared read-only across clones. Only communication records
// survive as ops (canonical rank-major order, so off slices each
// rank's program); each op carries the compute time preceding it in
// its rank's program as pre, and compute trailing a rank's last comm
// op lands in tail. The rendezvous flag is fixed at the profile's
// eager threshold, and sendOf wires each recv to its matching send.
type compiled struct {
	off  []int32  // rank r's ops are [off[r], off[r+1])
	ops  []walkOp // the comm ops, rank-major
	tail []int64  // per rank, compute after its last comm op
}

// walkOp is one compiled communication op, packed so the walk streams
// a single array.
type walkOp struct {
	pre    int64 // compute folded in front of this op
	size   int64
	pair   int32 // dense index into the traffic matrix's Pairs
	sendOf int32 // per recv, the matching send's op index
	kind   uint8
	rdv    bool
}

// Model is the analytic pricer for one trace on one fabric. It is not
// safe for concurrent use; parallel searches give each worker a Clone
// (caches and buffers are per-instance, the compiled trace and
// calibrated weights are shared read-only).
type Model struct {
	mat      *trace.TrafficMatrix
	dag      *compiled
	fab      *fabric.System
	prof     ib.Profile
	pol      transport.Policy
	queueing bool // link admission can actually queue under the policy

	mfPs  float64 // ps/byte at the multi-flow shared rate
	dupPs float64 // ps/byte at the duplex-aggregate rate

	eng *sim.Engine    // never run; owns the route-resolving net's state
	net *transport.Net // route resolution only

	linkIdx map[uint64]int32  // link Key → dense index
	lkind   []fabric.LinkKind // by dense index
	routes  [][]routeEntry    // by fabric cache row, rows lazily sized
	lbuf    []fabric.Link     // AdmissionLinks scratch

	// Per-candidate pair table (traffic-matrix Pairs order).
	pairs []pairInfo

	// Per-candidate walk and load buffers.
	clk         []int64   // per rank
	pc          []int32   // per rank: next record index
	fRem        []int64   // per rank: in-flight payload remaining
	deliv       []int64   // per record: send's delivery time (0 = not yet)
	waiter      []int32   // per record: rank blocked on this send, -1 none
	nOutC, nInC []int32   // per global node: active flow counts by direction
	linkBusy    []int64   // per dense link: busy-until (queueing policies)
	heap        []walkEv  // pending flow events, packed keys
	work        []int32   // runnable-rank stack
	lbytes      []float64 // per dense link
	lmsgs       []float64 // per dense link
	ltouch      []int32
	nin, nout   []float64 // per global node
	ntouch      []int32

	feat    [NumFeatures]float64
	weights []float64 // shared across clones after Calibrate
}

// New builds the model for a validated trace on the given fabric,
// profile and congestion policy. The traffic matrix and the compiled
// DAG are computed here (once per trace); an invalid trace is an error.
func New(tr *trace.Trace, fab *fabric.System, prof ib.Profile, pol transport.Policy) (*Model, error) {
	return NewReplay(tr, trace.ReplayConfig{Fabric: fab, Profile: prof, Policy: pol})
}

// NewReplay builds the model matching a replay configuration: fabric,
// profile, policy, ComputeScale and SkipCompute are honored, so the
// surrogate prices exactly the objective the DES replays under that
// configuration (Places and Observe have no meaning here). The
// placement search uses this constructor — its objective may be the
// comm-only schedule — and scaled what-if replays get a matching
// surrogate for free.
func NewReplay(tr *trace.Trace, cfg trace.ReplayConfig) (*Model, error) {
	if cfg.Fabric == nil {
		return nil, fmt.Errorf("surrogate: nil fabric")
	}
	scale := cfg.ComputeScale
	if scale == 0 {
		scale = 1
	}
	if math.IsNaN(scale) || math.IsInf(scale, 0) || scale < 0 {
		return nil, fmt.Errorf("surrogate: bad compute scale %g", scale)
	}
	if cfg.SkipCompute {
		scale = 0
	}
	mat, err := tr.Traffic(cfg.Profile.EagerThreshold)
	if err != nil {
		return nil, err
	}
	dag := compile(tr, mat, cfg.Profile.EagerThreshold, scale)
	m := newModel(mat, dag, cfg.Fabric, cfg.Profile, cfg.Policy)
	// The physically-motivated prior: the walk's schedule IS the
	// uncalibrated price — it already plays out HCA sharing and link
	// admission, so the aggregate correction terms start at zero and
	// only enter where Calibrate finds anchor evidence for them.
	m.weights = []float64{0, 1, 0, 0, 0}
	return m, nil
}

// compile flattens the validated trace into the walk's arrays,
// folding each compute record into the pre-duration of its rank's next
// communication op (or the rank's tail) so the walk touches comm ops
// only. Compute durations are scaled exactly as the evaluator scales
// them (scale 0 strips them: the comm-only schedule).
func compile(tr *trace.Trace, mat *trace.TrafficMatrix, eager units.Size, scale float64) *compiled {
	c := &compiled{
		off:  make([]int32, mat.Ranks+1),
		tail: make([]int64, mat.Ranks),
	}
	pairIdx := make(map[int64]int32, len(mat.Pairs))
	for i, p := range mat.Pairs {
		pairIdx[int64(p.Src)*int64(mat.Ranks)+int64(p.Dst)] = int32(i)
	}
	// One pass in canonical (rank-major) order: comm records append
	// ops, compute accumulates into the pending pre-duration. The op
	// index of each record's send is kept for the matching pass.
	opOf := make([]int32, len(tr.Records))
	var pre int64
	for i, r := range tr.Records {
		switch r.Kind {
		case trace.KindCompute:
			pre += int64(units.Time(float64(r.Duration) * scale))
		case trace.KindSend:
			opOf[i] = int32(len(c.ops))
			c.ops = append(c.ops, walkOp{
				pre:    pre,
				size:   int64(r.Size),
				pair:   pairIdx[int64(r.Rank)*int64(mat.Ranks)+int64(r.Peer)],
				sendOf: -1,
				kind:   opSend,
				rdv:    r.Size > eager,
			})
			c.off[r.Rank+1]++
			pre = 0
		case trace.KindRecv:
			opOf[i] = int32(len(c.ops))
			c.ops = append(c.ops, walkOp{pre: pre, pair: -1, sendOf: -1, kind: opRecv})
			c.off[r.Rank+1]++
			pre = 0
		}
		if i+1 == len(tr.Records) || tr.Records[i+1].Rank != r.Rank {
			c.tail[r.Rank] = pre
			pre = 0
		}
	}
	// FIFO send/recv matching per channel, as the trace validator pairs
	// them (the trace is already validated; matching cannot fail).
	type chanKey struct{ src, dst, tag int }
	sends := make(map[chanKey][]int32)
	for i, r := range tr.Records {
		if r.Kind == trace.KindSend {
			k := chanKey{src: r.Rank, dst: r.Peer, tag: r.Tag}
			sends[k] = append(sends[k], opOf[i])
		}
	}
	for i, r := range tr.Records {
		if r.Kind != trace.KindRecv {
			continue
		}
		k := chanKey{src: r.Peer, dst: r.Rank, tag: r.Tag}
		c.ops[opOf[i]].sendOf = sends[k][0]
		sends[k] = sends[k][1:]
	}
	for r := 0; r < mat.Ranks; r++ {
		c.off[r+1] += c.off[r]
	}
	return c
}

// newModel builds one pricing instance over the shared compiled trace.
func newModel(mat *trace.TrafficMatrix, dag *compiled, fab *fabric.System, prof ib.Profile, pol transport.Policy) *Model {
	eng := sim.NewEngine()
	waiter := make([]int32, len(dag.ops))
	for i := range waiter {
		waiter[i] = -1
	}
	return &Model{
		mat:      mat,
		dag:      dag,
		fab:      fab,
		prof:     prof,
		pol:      pol,
		queueing: pol.Enabled && pol.Channels > 0,
		mfPs:     psPerByte(prof.MultiFlowBandwidth),
		dupPs:    psPerByte(prof.DuplexAggregate),
		eng:      eng,
		net:      transport.New(eng, fab, prof, pol),
		linkIdx:  make(map[uint64]int32),
		routes:   make([][]routeEntry, fab.CacheRows()),
		lbuf:     make([]fabric.Link, 0, fab.MaxRouteLen()),
		pairs:    make([]pairInfo, len(mat.Pairs)),
		clk:      make([]int64, mat.Ranks),
		pc:       make([]int32, mat.Ranks),
		fRem:     make([]int64, mat.Ranks),
		deliv:    make([]int64, len(dag.ops)),
		waiter:   waiter,
		nOutC:    make([]int32, fab.Nodes()),
		nInC:     make([]int32, fab.Nodes()),
		heap:     make([]walkEv, 0, 2*mat.Ranks),
		work:     make([]int32, 0, mat.Ranks),
		nin:      make([]float64, fab.Nodes()),
		nout:     make([]float64, fab.Nodes()),
	}
}

// Clone returns an instance sharing the compiled trace, the traffic
// matrix and the calibrated weights but owning its route-resolving
// net, route cache and buffers (all mutated during pricing), for one
// worker of a parallel search. Calibrate before cloning; clones price
// identically to the original — the walk's event order and float
// summation follow canonical orders, never cache history.
func (m *Model) Clone() *Model {
	c := newModel(m.mat, m.dag, m.fab, m.prof, m.pol)
	c.weights = m.weights
	return c
}

// Close releases the engine backing the route-resolving net.
func (m *Model) Close() { m.eng.Close() }

// Matrix returns the trace's traffic matrix the model prices.
func (m *Model) Matrix() *trace.TrafficMatrix { return m.mat }

// Weights returns the current term weights (FeatureNames order).
func (m *Model) Weights() []float64 { return append([]float64(nil), m.weights...) }

// max64 is the two-operand int64 maximum the walk leans on.
func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// pairInfo is one directed rank pair's placement-dependent transport
// arithmetic under the current candidate, sized to a cache line so a
// flow's whole cost model is one load.
type pairInfo struct {
	fix    int64   // sender fixed cost: per-side overhead
	rdvT   int64   // rendezvous round trip (0 intra-node)
	deliv  int64   // stream end → recv completion: fabric + overhead
	stream float64 // picoseconds per payload byte at the pair rate
	srcN   int32   // sender's global node, -1 intra-node
	dstN   int32   // receiver's global node, -1 intra-node
	links  []int32 // admission links, transport acquisition order
}

// walkEv is one pending flow event, its ordering key packed into two
// int64 words so heap moves are two stores: k1 = time<<1 | kind (chunk
// ends sort before starts at the same instant) and k2 = arrival<<20 |
// rank. The arrival key is a start event's first admission attempt:
// flows re-queued behind a busy link compete again when it frees, and
// the earliest original arrival wins, as the DES's FIFO channel queues
// grant. Packing is lossless for any walk the model prices: times stay
// far below 2^62 ps (weeks of simulated time) and ranks below 2^20.
// The order is strict — a rank has at most one pending event — so the
// pop sequence is fully determined by the event multiset and never by
// insertion history.
type walkEv struct{ k1, k2 int64 }

// evPush adds a walk event, sifting a hole up instead of swapping.
func (m *Model) evPush(t, arr int64, kind uint8, r int32) {
	k1 := t<<1 | int64(kind)
	k2 := arr<<20 | int64(r)
	h := append(m.heap, walkEv{})
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p].k1 < k1 || (h[p].k1 == k1 && h[p].k2 < k2) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = walkEv{k1, k2}
	m.heap = h
}

// evPop removes and returns the earliest walk event's packed keys.
func (m *Model) evPop() (int64, int64) {
	h := m.heap
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h = h[:n]
	m.heap = h
	i := 0
	for {
		s := 2*i + 1
		if s >= n {
			break
		}
		if r := s + 1; r < n && (h[r].k1 < h[s].k1 || (h[r].k1 == h[s].k1 && h[r].k2 < h[s].k2)) {
			s = r
		}
		if last.k1 < h[s].k1 || (last.k1 == h[s].k1 && last.k2 < h[s].k2) {
			break
		}
		h[i] = h[s]
		i = s
	}
	if n > 0 {
		h[i] = last
	}
	return top.k1, top.k2
}

// psPerByte converts a bandwidth to picoseconds per byte.
func psPerByte(bw units.Bandwidth) float64 {
	if bw <= 0 {
		return 0
	}
	return float64(units.Second) / float64(bw)
}

// ratePs returns the effective picoseconds per byte of the pair's flow
// given the current sharing state at both endpoint adapters — the
// walk's closed form of ib's flowRate at each end, min'd across the
// endpoints (max in ps/byte terms). Counts include the flow itself.
func ratePs(stream, mfPs, dupPs float64, sOut, sIn, dOut, dIn int32) float64 {
	ps := stream
	if sOut > 1 {
		if v := mfPs * float64(sOut); v > ps {
			ps = v
		}
	}
	if sOut > 0 && sIn > 0 {
		if v := dupPs * float64(sOut+sIn); v > ps {
			ps = v
		}
	}
	if dIn > 1 {
		if v := mfPs * float64(dIn); v > ps {
			ps = v
		}
	}
	if dOut > 0 && dIn > 0 {
		if v := dupPs * float64(dOut+dIn); v > ps {
			ps = v
		}
	}
	return ps
}

// route returns (compiling on first use) the directed node-pair route.
func (m *Model) route(src, dst fabric.NodeID) *routeEntry {
	row := m.routes[m.fab.CacheKey(src)]
	if row == nil {
		row = make([]routeEntry, m.fab.Nodes())
		m.routes[m.fab.CacheKey(src)] = row
	}
	re := &row[dst.GlobalID()]
	if !re.derived {
		pp := m.net.PairPath(src, dst)
		re.fabLat = pp.FabricLatency()
		re.rdvExtra = pp.RendezvousExtra()
		m.lbuf = pp.AdmissionLinks(m.lbuf[:0])
		if len(m.lbuf) > 0 {
			re.links = make([]int32, len(m.lbuf))
			for i, l := range m.lbuf {
				re.links[i] = m.linkDense(l)
			}
		}
		re.derived = true
	}
	return re
}

// linkDense returns the link's dense index, growing the table on first
// sight. Indices depend on derivation history, but they are identity
// keys only: accumulation and summation order follow the canonical
// pair order, so prices do not.
func (m *Model) linkDense(l fabric.Link) int32 {
	k := l.Key()
	if li, ok := m.linkIdx[k]; ok {
		return li
	}
	li := int32(len(m.lkind))
	m.linkIdx[k] = li
	m.lkind = append(m.lkind, l.Kind)
	m.lbytes = append(m.lbytes, 0)
	m.lmsgs = append(m.lmsgs, 0)
	m.linkBusy = append(m.linkBusy, 0)
	return li
}

// Features computes the candidate's feature vector (FeatureNames
// order, all terms in picoseconds except the leading constant).
// places must be a valid placement for the trace's ranks on the
// model's fabric, one endpoint per rank.
func (m *Model) Features(places []transport.Endpoint) []float64 {
	f := m.features(places)
	return append([]float64(nil), f[:]...)
}

// features fills and returns the model's reusable feature array.
func (m *Model) features(places []transport.Endpoint) *[NumFeatures]float64 {
	if len(places) != m.mat.Ranks {
		panic(fmt.Sprintf("surrogate: %d placements for %d ranks", len(places), m.mat.Ranks))
	}
	// Reset only what the previous candidate touched.
	for _, li := range m.ltouch {
		m.lbytes[li], m.lmsgs[li], m.linkBusy[li] = 0, 0, 0
	}
	m.ltouch = m.ltouch[:0]
	for _, g := range m.ntouch {
		m.nin[g], m.nout[g] = 0, 0
		m.nOutC[g], m.nInC[g] = 0, 0
	}
	m.ntouch = m.ntouch[:0]
	clear(m.clk)

	// Pass 1 — per-pair tables under this mapping, plus per-link and
	// per-node offered load, in canonical pair order.
	o1 := int64(m.prof.PerSideOverhead)
	for pi := range m.mat.Pairs {
		p := &m.mat.Pairs[pi]
		src, dst := places[p.Src], places[p.Dst]
		pe := &m.pairs[pi]
		pe.fix = o1
		if src.Node == dst.Node {
			// Shared memory: software overhead on each side, nothing
			// offered to the fabric or the adapters.
			pe.rdvT = 0
			pe.deliv = o1
			pe.stream = 0
			pe.srcN, pe.dstN = -1, -1
			pe.links = nil
			continue
		}
		re := m.route(src.Node, dst.Node)
		pe.rdvT = int64(re.rdvExtra)
		pe.deliv = int64(re.fabLat) + o1
		pe.stream = psPerByte(m.prof.PairBandwidth(src.Core, dst.Core))
		pe.links = re.links
		b, msgs := float64(p.Bytes), float64(p.Msgs)
		for _, li := range re.links {
			if m.lmsgs[li] == 0 {
				m.ltouch = append(m.ltouch, li)
			}
			m.lmsgs[li] += msgs
			m.lbytes[li] += b
		}
		sg, dg := src.Node.GlobalID(), dst.Node.GlobalID()
		pe.srcN, pe.dstN = int32(sg), int32(dg)
		if m.nin[sg] == 0 && m.nout[sg] == 0 {
			m.ntouch = append(m.ntouch, int32(sg))
		}
		m.nout[sg] += b
		if m.nin[dg] == 0 && m.nout[dg] == 0 {
			m.ntouch = append(m.ntouch, int32(dg))
		}
		m.nin[dg] += b
	}

	// Pass 2 — the schedule walk: a deterministic event-driven list
	// scheduler over the trace's DAG. Every rank runs its program until
	// it blocks on a recv or starts an inter-node payload flow;
	// shared-memory and zero-size sends cost only their overheads and
	// resolve inline. A flow samples its rate from the adapters' current
	// sharing state (ib's flowRate at both ends) one walkChunk at a
	// time, re-sampling at chunk boundaries, so overlapping flows slow
	// one another exactly as the DES HCAs do; when the congestion policy
	// queues, the route's admission links are busy-until servers a flow
	// must wait out before starting, held until its stream completes
	// (the DES's channel admission, minus hold-and-wait coupling).
	// Events pop in (time, kind, arrival, rank) order — fully
	// deterministic. The hot arrays live in locals so the loop stays in
	// registers.
	d := m.dag
	ops, pairs := d.ops, m.pairs
	deliv, waiter := m.deliv, m.waiter
	nOutC, nInC, linkBusy, fRem := m.nOutC, m.nInC, m.linkBusy, m.fRem
	mfPs, dupPs, queueing := m.mfPs, m.dupPs, m.queueing
	pc, clk := m.pc, m.clk
	clear(deliv)
	m.heap = m.heap[:0]
	work := m.work[:0]
	for r := m.mat.Ranks - 1; r >= 0; r-- {
		pc[r] = d.off[r]
		work = append(work, int32(r))
	}
	for {
		// Drain runnable ranks: each runs to its next flow-bearing
		// send, its next unsatisfied recv, or the end of its program.
		// An op's pre-compute is committed only with the op itself, so
		// re-draining a rank blocked at a recv re-derives the same
		// completion time — resumption is stateless.
		for len(work) > 0 {
			r := work[len(work)-1]
			work = work[:len(work)-1]
			i, c := pc[r], clk[r]
			end := d.off[r+1]
		run:
			for i < end {
				op := &ops[i]
				cp := c + op.pre
				if op.kind == opRecv {
					dv := deliv[op.sendOf]
					if dv == 0 {
						waiter[op.sendOf] = r
						break run
					}
					if dv > cp {
						cp = dv
					}
					c = cp
					i++
					continue
				}
				pe := &pairs[op.pair]
				if pe.srcN < 0 || op.size <= 0 {
					// Shared memory or zero-size: overheads only,
					// no shared resources; resolve inline.
					c = cp + pe.fix
					deliv[i] = c + pe.deliv
					if w := waiter[i]; w >= 0 {
						waiter[i] = -1
						work = append(work, w)
					}
					i++
					continue
				}
				start := cp + pe.fix
				if op.rdv {
					start += pe.rdvT
				}
				m.evPush(start, start, evStart, r)
				break run
			}
			if i == end {
				c += d.tail[r]
			}
			pc[r], clk[r] = i, c
		}
		if len(m.heap) == 0 {
			break
		}
		k1, k2 := m.evPop()
		t, r := k1>>1, int32(k2&(1<<20-1))
		i := pc[r]
		op := &ops[i]
		pe := &pairs[op.pair]
		sg, dg := pe.srcN, pe.dstN
		if k1&1 == evStart {
			if queueing {
				// Channel admission: wait out the route's busy links.
				ready := t
				for _, li := range pe.links {
					if linkBusy[li] > ready {
						ready = linkBusy[li]
					}
				}
				if ready > t {
					m.evPush(ready, k2>>20, evStart, r)
					continue
				}
			}
			nOutC[sg]++
			nInC[dg]++
			rem := op.size
			fRem[r] = rem
			ps := ratePs(pe.stream, mfPs, dupPs, nOutC[sg], nInC[sg], nOutC[dg], nInC[dg])
			chunk := min64(rem, walkChunk)
			m.evPush(t+int64(float64(chunk)*ps+0.5), 0, evEnd, r)
			if queueing {
				proj := t + int64(float64(rem)*ps+0.5)
				for _, li := range pe.links {
					linkBusy[li] = proj
				}
			}
			continue
		}
		// evEnd: one chunk done.
		rem := fRem[r] - min64(fRem[r], walkChunk)
		if rem > 0 {
			fRem[r] = rem
			ps := ratePs(pe.stream, mfPs, dupPs, nOutC[sg], nInC[sg], nOutC[dg], nInC[dg])
			chunk := min64(rem, walkChunk)
			m.evPush(t+int64(float64(chunk)*ps+0.5), 0, evEnd, r)
			if queueing {
				proj := t + int64(float64(rem)*ps+0.5)
				for _, li := range pe.links {
					linkBusy[li] = proj
				}
			}
			continue
		}
		// Flow complete: release the adapters, deliver, resume the
		// sender and any blocked receiver. The held links need no
		// release write — capacity-1 admission means no other flow
		// could touch them while held, and the final chunk's projection
		// already wrote exactly this completion time.
		nOutC[sg]--
		nInC[dg]--
		clk[r] = t
		deliv[i] = t + pe.deliv
		pc[r] = i + 1
		work = append(work, r)
		if w := waiter[i]; w >= 0 {
			waiter[i] = -1
			work = append(work, w)
		}
	}
	m.work = work[:0]
	sched := int64(0)
	for _, c := range m.clk {
		if c > sched {
			sched = c
		}
	}

	// The hottest adapter's streaming time under the HCA sharing caps.
	hca := 0.0
	for _, g := range m.ntouch {
		in, out := m.nin[g], m.nout[g]
		t := math.Max(in, out) * m.mfPs
		if d := (in + out) * m.dupPs; d > t {
			t = d
		}
		if t > hca {
			hca = t
		}
	}

	// M/M/1 waiting per contended link against the schedule horizon.
	waitUp, waitOther := 0.0, 0.0
	if m.queueing {
		t0 := float64(sched)
		if t0 < 1 {
			t0 = 1
		}
		for _, li := range m.ltouch {
			busy := m.lbytes[li] * m.mfPs // total streaming time offered to the cable
			if busy == 0 {
				continue
			}
			rho := busy / t0
			if rho > maxRho {
				rho = maxRho
			}
			w := busy * rho / (1 - rho) // n * S * rho/(1-rho), S = busy/n
			if m.lkind[li] == fabric.LinkUplink {
				waitUp += w
			} else {
				waitOther += w
			}
		}
	}

	m.feat = [NumFeatures]float64{1, float64(sched), hca, waitUp, waitOther}
	return &m.feat
}

// min64 is the two-operand int64 minimum.
func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Price returns the model's cost estimate for the candidate placement,
// in simulated time units — comparable across candidates of one trace,
// approximating (after Calibrate) the DES replay makespan. Same input,
// same output, on every clone and run.
func (m *Model) Price(places []transport.Endpoint) units.Time {
	f := m.features(places)
	v := 0.0
	for i, w := range m.weights {
		v += w * f[i]
	}
	if v < 0 {
		v = 0
	}
	return units.Time(math.Round(v))
}
