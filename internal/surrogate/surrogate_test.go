package surrogate_test

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"roadrunner/internal/cml"
	"roadrunner/internal/collectives"
	"roadrunner/internal/fabric"
	"roadrunner/internal/ib"
	"roadrunner/internal/surrogate"
	"roadrunner/internal/sweep3d"
	"roadrunner/internal/trace"
	"roadrunner/internal/transport"
	"roadrunner/internal/units"
)

// The captured 8x8 Sweep3D iteration every test prices — the same
// schedule the trace-replay and placement experiments run.
var captureOnce = sync.OnceValues(func() (*trace.Trace, error) {
	cfg := sweep3d.Config{I: 5, J: 5, K: 40, MK: 10, Angles: 6}
	_, tr, err := sweep3d.CaptureDES(cfg, 8, 8, cml.CurrentSoftware())
	return tr, err
})

func testTrace(t testing.TB) *trace.Trace {
	t.Helper()
	tr, err := captureOnce()
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// endpoints converts a collectives placement to transport endpoints.
func endpoints(pl []collectives.Placement) []transport.Endpoint {
	out := make([]transport.Endpoint, len(pl))
	for i, p := range pl {
		out[i] = transport.Endpoint{Node: p.Node, Core: p.Core}
	}
	return out
}

// basePlacements returns the three named baselines of the trace-replay
// sweep: block, one-rank-per-CU strided, and packed four-per-node.
func basePlacements(fab *fabric.System, ranks int) [][]transport.Endpoint {
	return [][]transport.Endpoint{
		endpoints(collectives.BlockPlacement(fab, ranks, 1)),
		endpoints(collectives.StridedPlacement(fab, ranks, 180, 1)),
		endpoints(collectives.PackedPlacement(fab, ranks, 4)),
	}
}

// perturb returns base with `swaps` seeded rank swaps applied — the
// capacity-preserving move the optimizer uses.
func perturb(base []transport.Endpoint, seed int64, swaps int) []transport.Endpoint {
	rng := rand.New(rand.NewSource(seed))
	out := append([]transport.Endpoint(nil), base...)
	for i := 0; i < swaps; i++ {
		a, b := rng.Intn(len(out)), rng.Intn(len(out))
		out[a], out[b] = out[b], out[a]
	}
	return out
}

// TestPriceDeterministicAcrossClonesAndCalls pins the contract the
// parallel search rides on: the same candidate prices identically on
// repeated calls, on clones, and regardless of what was priced before
// (route-cache history must not leak into float summation order).
func TestPriceDeterministicAcrossClonesAndCalls(t *testing.T) {
	tr := testTrace(t)
	fab := fabric.NewScaled(4)
	m, err := surrogate.New(tr, fab, ib.OpenMPI(), transport.Congested())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	bases := basePlacements(fab, tr.Meta.Ranks)
	var cands [][]transport.Endpoint
	for _, b := range bases {
		cands = append(cands, b)
		for s := int64(1); s <= 3; s++ {
			cands = append(cands, perturb(b, s, 5))
		}
	}
	first := make([]units.Time, len(cands))
	for i, c := range cands {
		first[i] = m.Price(c)
	}
	// Same model, reversed order: cache state differs per call now.
	for i := len(cands) - 1; i >= 0; i-- {
		if got := m.Price(cands[i]); got != first[i] {
			t.Fatalf("candidate %d re-priced %v, first saw %v", i, got, first[i])
		}
	}
	// A fresh clone with its own cold caches.
	c := m.Clone()
	defer c.Close()
	for i, cand := range cands {
		if got := c.Price(cand); got != first[i] {
			t.Fatalf("candidate %d priced %v on clone, %v on original", i, got, first[i])
		}
	}
}

// TestPriceSpreadsCandidates: an uncalibrated model already orders
// the baselines the way the DES does (packed keeps the wavefront's
// neighbor exchanges on-node; strided pays the fabric for everything),
// so the screening signal exists before any DES anchor is spent.
func TestPriceSpreadsCandidates(t *testing.T) {
	tr := testTrace(t)
	fab := fabric.NewScaled(4)
	m, err := surrogate.New(tr, fab, ib.OpenMPI(), transport.Congested())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	bases := basePlacements(fab, tr.Meta.Ranks)
	block, strided, packed := m.Price(bases[0]), m.Price(bases[1]), m.Price(bases[2])
	if !(packed < block) || !(block < strided) {
		t.Errorf("uncalibrated ordering: packed %v, block %v, strided %v — want packed < block < strided",
			packed, block, strided)
	}
}

// TestCalibratedSpearmanVsDES is the tentpole's unit-level contract on
// the default fabric: calibrate on a dozen anchors, then the surrogate
// must rank a held-out candidate set the way the DES does, Spearman
// >= 0.9. (The surrogate-xval experiment asserts the same over every
// registered topology.)
func TestCalibratedSpearmanVsDES(t *testing.T) {
	tr := testTrace(t)
	fab := fabric.New()
	prof := ib.OpenMPI()
	pol := transport.Congested()

	ev, err := trace.NewEvaluator(tr, trace.ReplayConfig{Fabric: fab, Profile: prof, Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	defer ev.Close()
	des := func(pl []transport.Endpoint) units.Time {
		res, err := ev.Evaluate(pl)
		if err != nil {
			t.Fatal(err)
		}
		return res.Time
	}

	m, err := surrogate.New(tr, fab, prof, pol)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	bases := basePlacements(fab, tr.Meta.Ranks)
	var anchors [][]transport.Endpoint
	anchors = append(anchors, bases...)
	for s := int64(1); s <= 9; s++ {
		anchors = append(anchors, perturb(bases[s%3], s, 4))
	}
	times := make([]units.Time, len(anchors))
	for i, a := range anchors {
		times[i] = des(a)
	}
	if err := m.Calibrate(anchors, times); err != nil {
		t.Fatal(err)
	}

	var holdout [][]transport.Endpoint
	holdout = append(holdout, bases...)
	for s := int64(100); s < 118; s++ {
		holdout = append(holdout, perturb(bases[s%3], s, 2+int(s%7)))
	}
	dt := make([]units.Time, len(holdout))
	st := make([]units.Time, len(holdout))
	for i, h := range holdout {
		dt[i] = des(h)
		st[i] = m.Price(h)
	}
	rho := surrogate.Spearman(dt, st)
	if math.IsNaN(rho) || rho < 0.9 {
		t.Fatalf("holdout Spearman %.3f < 0.9 (des %v, surrogate %v)", rho, dt, st)
	}
}

// TestCalibrateRejectsBadInput: shape errors are errors, not fits.
func TestCalibrateRejectsBadInput(t *testing.T) {
	tr := testTrace(t)
	fab := fabric.NewScaled(2)
	m, err := surrogate.New(tr, fab, ib.OpenMPI(), transport.Congested())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	b := basePlacements(fab, tr.Meta.Ranks)[0]
	if err := m.Calibrate([][]transport.Endpoint{b, b}, []units.Time{1, 2}); err == nil {
		t.Error("calibrated on fewer anchors than features")
	}
	if err := m.Calibrate([][]transport.Endpoint{b}, []units.Time{1, 2}); err == nil {
		t.Error("calibrated on mismatched anchor/time lengths")
	}
}

// TestSpearmanKnownValues pins the correlation helper.
func TestSpearmanKnownValues(t *testing.T) {
	a := []units.Time{10, 20, 30, 40, 50}
	up := []units.Time{1, 2, 3, 4, 5}
	down := []units.Time{5, 4, 3, 2, 1}
	if r := surrogate.Spearman(a, up); math.Abs(r-1) > 1e-12 {
		t.Errorf("monotone up: %v, want 1", r)
	}
	if r := surrogate.Spearman(a, down); math.Abs(r+1) > 1e-12 {
		t.Errorf("monotone down: %v, want -1", r)
	}
	// Nonlinear but monotone is still a perfect rank correlation.
	if r := surrogate.Spearman(a, []units.Time{1, 100, 101, 5000, 1 << 40}); math.Abs(r-1) > 1e-12 {
		t.Errorf("monotone nonlinear: %v, want 1", r)
	}
	if r := surrogate.Spearman(a, []units.Time{7, 7, 7, 7, 7}); !math.IsNaN(r) {
		t.Errorf("constant list: %v, want NaN", r)
	}
	if r := surrogate.Spearman(a[:2], a[:1]); !math.IsNaN(r) {
		t.Errorf("length mismatch: %v, want NaN", r)
	}
}
