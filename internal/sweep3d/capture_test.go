package sweep3d

import (
	"bytes"
	"testing"

	"roadrunner/internal/cml"
	"roadrunner/internal/trace"
)

// captureCfg is the small configuration the capture tests share.
var captureCfg = Config{I: 2, J: 2, K: 4, MK: 2, Angles: 2}

func TestCaptureDESMatchesUncaptured(t *testing.T) {
	px, py := 3, 2
	plain, err := RunOnDES(captureCfg, px, py, cml.CurrentSoftware())
	if err != nil {
		t.Fatalf("RunOnDES: %v", err)
	}
	captured, tr, err := CaptureDES(captureCfg, px, py, cml.CurrentSoftware())
	if err != nil {
		t.Fatalf("CaptureDES: %v", err)
	}
	// Recording is pure observation: numerics and timing are untouched.
	if captured.IterationTime != plain.IterationTime {
		t.Errorf("iteration time %v with capture, %v without", captured.IterationTime, plain.IterationTime)
	}
	if captured.Absorbed != plain.Absorbed || captured.Outflow != plain.Outflow {
		t.Errorf("balance (%v, %v) with capture, (%v, %v) without",
			captured.Absorbed, captured.Outflow, plain.Absorbed, plain.Outflow)
	}
	for i, phi := range plain.Phi {
		if captured.Phi[i] != phi {
			t.Fatalf("flux diverges at cell %d", i)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("captured trace invalid: %v", err)
	}
	if tr.Meta.Ranks != px*py || tr.Meta.App != "sweep3d" {
		t.Errorf("meta %+v", tr.Meta)
	}
}

func TestCaptureDESRecordCounts(t *testing.T) {
	px, py := 3, 2
	_, tr, err := CaptureDES(captureCfg, px, py, cml.CurrentSoftware())
	if err != nil {
		t.Fatalf("CaptureDES: %v", err)
	}
	s := tr.Stats()
	// Per octant and K block: each px row passes px-1 x-boundaries and
	// each py column py-1 y-boundaries.
	steps := Octants * captureCfg.KBlocks()
	wantSends := steps * (py*(px-1) + px*(py-1))
	if s.Sends != wantSends || s.Recvs != wantSends {
		t.Errorf("sends/recvs %d/%d, want %d (KBA wavefront schedule)", s.Sends, s.Recvs, wantSends)
	}
	if want := px * py * steps; s.Computes != want {
		t.Errorf("computes %d, want %d", s.Computes, want)
	}
	// Boundary payloads: J*MK*Angles east/west values and I*MK*Angles
	// north/south values, 8 bytes each.
	wantBytes := steps * (py*(px-1)*captureCfg.EWSurfaceBytes() + px*(py-1)*captureCfg.NSSurfaceBytes())
	if int(s.Bytes) != wantBytes {
		t.Errorf("trace bytes %d, want %d", int(s.Bytes), wantBytes)
	}
	if s.Span == 0 || s.ComputeTime == 0 {
		t.Errorf("empty timestamps: %+v", s)
	}
}

func TestCaptureDESDeterministic(t *testing.T) {
	enc := func() []byte {
		_, tr, err := CaptureDES(captureCfg, 2, 2, cml.CurrentSoftware())
		if err != nil {
			t.Fatalf("CaptureDES: %v", err)
		}
		var buf bytes.Buffer
		if err := trace.Encode(&buf, tr); err != nil {
			t.Fatalf("encode: %v", err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(enc(), enc()) {
		t.Fatal("two captures of the same run serialize differently")
	}
}

func TestCaptureDESRejectsBadConfig(t *testing.T) {
	bad := captureCfg
	bad.MK = 3 // does not divide K
	if _, _, err := CaptureDES(bad, 2, 2, cml.CurrentSoftware()); err == nil {
		t.Fatal("invalid config accepted")
	}
	// Non-positive grid dimensions must error, not panic (and not
	// silently record an empty trace when the product is positive).
	for _, grid := range [][2]int{{0, 2}, {2, 0}, {-2, -2}} {
		if _, _, err := CaptureDES(captureCfg, grid[0], grid[1], cml.CurrentSoftware()); err == nil {
			t.Errorf("%dx%d rank grid accepted", grid[0], grid[1])
		}
		if _, err := RunOnDES(captureCfg, grid[0], grid[1], cml.CurrentSoftware()); err == nil {
			t.Errorf("RunOnDES accepted %dx%d rank grid", grid[0], grid[1])
		}
	}
}
