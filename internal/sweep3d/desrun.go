package sweep3d

import (
	"fmt"

	"roadrunner/internal/cml"
	"roadrunner/internal/fabric"
	"roadrunner/internal/sim"
	"roadrunner/internal/trace"
	"roadrunner/internal/units"
)

// DESResult is the outcome of executing the sweep on the discrete-event
// machine: the real numerical result plus the simulated iteration time.
type DESResult struct {
	*Result
	IterationTime units.Time
	// EngineStats snapshots the DES engine counters at completion:
	// events dispatched and the calendar high-water mark.
	EngineStats sim.Stats
}

// RunOnDES executes the real block solver rank-by-rank on the simulated
// machine through the Cell Messaging Layer: px x py SPE ranks placed in
// canonical order (filling sockets, then cells, then nodes), exchanging
// actual boundary payloads whose transfer costs come from the CML
// transport model. It returns the numerical result (bitwise identical to
// the host solvers) and the simulated wall time of one source iteration.
//
// This is the cross-validation tier of DESIGN.md: feasible up to a few
// thousand ranks; the analytic model in scale.go covers the full
// machine.
func RunOnDES(cfg Config, px, py int, cmlCfg cml.Config) (*DESResult, error) {
	return runOnDES(cfg, px, py, cmlCfg, nil)
}

// CaptureDES is RunOnDES with the wavefront schedule recorded: every KBA
// pipeline exchange of the run becomes a trace record (boundary receive,
// block compute, boundary send), so one captured source iteration can be
// replayed over the congested transport under arbitrary rank→node
// placements without re-running the solver. The numerical result and
// simulated iteration time are identical to an uncaptured run; the trace
// carries the problem configuration in its Attrs.
func CaptureDES(cfg Config, px, py int, cmlCfg cml.Config) (*DESResult, *trace.Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	if px < 1 || py < 1 {
		return nil, nil, fmt.Errorf("sweep3d: %dx%d rank grid", px, py)
	}
	rec := trace.NewRecorder(fmt.Sprintf("sweep3d-%dx%d", px, py), "sweep3d", px*py)
	rec.SetAttr("grid", fmt.Sprintf("%dx%dx%d", cfg.I, cfg.J, cfg.K))
	rec.SetAttr("mk", fmt.Sprintf("%d", cfg.MK))
	rec.SetAttr("angles", fmt.Sprintf("%d", cfg.Angles))
	rec.SetAttr("px", fmt.Sprintf("%d", px))
	rec.SetAttr("py", fmt.Sprintf("%d", py))
	res, err := runOnDES(cfg, px, py, cmlCfg, rec)
	if err != nil {
		return nil, nil, err
	}
	t, err := rec.Trace()
	if err != nil {
		return nil, nil, err
	}
	return res, t, nil
}

func runOnDES(cfg Config, px, py int, cmlCfg cml.Config, rec *trace.Recorder) (*DESResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if px < 1 || py < 1 {
		return nil, fmt.Errorf("sweep3d: %dx%d rank grid", px, py)
	}
	nRanks := px * py
	eng := sim.NewEngine()
	defer eng.Close()
	fab := fabric.New()
	world := cml.NewWorld(eng, fab, cmlCfg)
	nodes := (nRanks + cml.RanksPerNode - 1) / cml.RanksPerNode
	if nodes > fab.Nodes() {
		return nil, fmt.Errorf("sweep3d: %d ranks exceed the machine", nRanks)
	}
	for n := 0; n < nodes; n++ {
		world.AddNodeRanks(fabric.FromGlobal(n))
	}

	prob := Problem{NX: cfg.I * px, NY: cfg.J * py, NZ: cfg.K,
		Angles: cfg.Angles, SigT: 0.75, Q: 1.0}
	states := make([]*LocalState, nRanks)
	octs := OctantOrder()

	// Tags encode (octant, block, dimension).
	tag := func(oi, kb int, dim string) int {
		d := 0
		if dim == "y" {
			d = 1
		}
		return (oi*4096+kb)*2 + d
	}

	var finish units.Time
	// perUpdate carries the calibrated SPE compute cost so the DES time
	// is comparable with the analytic model.
	perUpdate := speScalePerUpdate(cfg)
	for pyi := 0; pyi < py; pyi++ {
		for pxi := 0; pxi < px; pxi++ {
			s := NewLocalState(cfg, prob, px, py, pxi, pyi)
			states[pyi*px+pxi] = s
			rankID := pyi*px + pxi
			rank := world.Rank(rankID)
			eng.Spawn(fmt.Sprintf("sweep-rank%d", rankID), func(p *sim.Proc) {
				for oi, oct := range octs {
					s.StartOctant()
					for kb := 0; kb < cfg.KBlocks(); kb++ {
						var xin, yin []float64
						if up := upstreamRank(s.PXi, oct.SI); up >= 0 && up < px {
							src := s.PYi*px + up
							xin = rank.Recv(p, src, tag(oi, kb, "x")).Data
							if rec != nil {
								rec.Recv(rankID, src, tag(oi, kb, "x"), units.Size(8*len(xin)), p.Now())
							}
						}
						if up := upstreamRank(s.PYi, oct.SJ); up >= 0 && up < py {
							src := up*px + s.PXi
							yin = rank.Recv(p, src, tag(oi, kb, "y")).Data
							if rec != nil {
								rec.Recv(rankID, src, tag(oi, kb, "y"), units.Size(8*len(yin)), p.Now())
							}
						}
						xout, yout := s.BlockSweep(oct, kb, xin, yin)
						p.Sleep(units.Time(cfg.BlockUpdates()) * perUpdate)
						if rec != nil {
							rec.Compute(rankID, units.Time(cfg.BlockUpdates())*perUpdate, p.Now())
						}
						if dn := downstreamRank(s.PXi, oct.SI); dn >= 0 && dn < px {
							dst := s.PYi*px + dn
							rank.Send(p, dst, tag(oi, kb, "x"), xout)
							if rec != nil {
								rec.Send(rankID, dst, tag(oi, kb, "x"), units.Size(8*len(xout)), p.Now())
							}
						} else {
							s.AccumulateEdgeLeakage("x", xout)
						}
						if dn := downstreamRank(s.PYi, oct.SJ); dn >= 0 && dn < py {
							dst := dn*px + s.PXi
							rank.Send(p, dst, tag(oi, kb, "y"), yout)
							if rec != nil {
								rec.Send(rankID, dst, tag(oi, kb, "y"), units.Size(8*len(yout)), p.Now())
							}
						} else {
							s.AccumulateEdgeLeakage("y", yout)
						}
					}
					s.FinishOctant()
				}
				if p.Now() > finish {
					finish = p.Now()
				}
			})
		}
	}
	if err := eng.Run(); err != nil {
		return nil, fmt.Errorf("sweep3d: DES run: %w", err)
	}
	return &DESResult{
		Result:        MergeResults(cfg, prob, px, py, states),
		IterationTime: finish,
		EngineStats:   eng.Stats(),
	}, nil
}
