package sweep3d

import (
	"roadrunner/internal/isa"
	"roadrunner/internal/params"
	"roadrunner/internal/spu"
	"roadrunner/internal/units"
)

// The SPE inner loop of §V.B processes two angles at a time in 2-wide DP
// SIMD, with the six angles of an octant fully unrolled (three SIMD
// pairs per cell). Per angle pair the kernel issues the upwind recursion
// and flux-fixup arithmetic (7 FPD FMAs), index/address arithmetic on
// the even pipe, and face loads/stores plus alignment shuffles and loop
// control on the odd pipe. The schedule below is software-pipelined the
// way the paper describes (unrolled, interleaved for the two pipes) so
// in steady state the kernel is issue-bound, not latency-bound — on the
// PowerXCell 8i. On the Cell BE every FPD stalls issue for six cycles,
// which is exactly the application-level DP penalty the paper measures.
const (
	kernelFPDPerPair  = 8  // DP SIMD FMAs per 2-angle update
	kernelFX2PerPair  = 31 // index/pointer arithmetic
	kernelFX3PerPair  = 7  // multiplies for array indexing
	kernelLSPerPair   = 18 // face loads/stores
	kernelSHUFPerPair = 11 // SIMD lane alignment
	kernelBRPerPair   = 1  // loop control share
)

// KernelProgram builds a steady-state stream of `pairs` angle-pair
// updates with dependence distances long enough that only issue
// resources (and the Cell BE's FPD stall) limit throughput.
func KernelProgram(pairs int) isa.Program {
	b := isa.NewBuilder()
	// Register banks rotate over 8 pair slots; consumers read the bank
	// written two slots earlier, keeping every chain longer than any
	// pipeline latency.
	bank := func(p, r int) isa.Reg { return isa.Reg((p%8)*14 + r) }
	for p := 0; p < pairs; p++ {
		cur, prev := p, p+6 // read registers written 2 slots back (mod 8)
		for i := 0; i < kernelLSPerPair; i++ {
			b.I(isa.LS, bank(cur, i%6), 112)
			if i < kernelFX2PerPair {
				b.I(isa.FX2, bank(cur, 6+i%4), 113)
			}
		}
		for i := kernelLSPerPair; i < kernelFX2PerPair; i++ {
			b.I(isa.FX2, bank(cur, 6+i%4), 113)
		}
		for i := 0; i < kernelSHUFPerPair; i++ {
			b.I(isa.SHUF, bank(cur, 10+i%2), bank(prev, i%6))
		}
		for i := 0; i < kernelFX3PerPair; i++ {
			b.I(isa.FX3, bank(cur, 12), 114)
		}
		for i := 0; i < kernelFPDPerPair; i++ {
			b.I(isa.FPD, bank(cur, 13), bank(prev, 10+i%2), bank(prev, 12))
		}
		b.I(isa.BR, isa.NoReg, 115)
	}
	return b.Program()
}

// KernelCyclesPerCellAngle runs the kernel through the pipeline model
// and returns steady-state issue cycles per cell-angle update (half a
// pair iteration, since each pair covers two angles).
func KernelCyclesPerCellAngle(m *spu.Model) float64 {
	const pairs = 96
	prog := KernelProgram(pairs)
	res := m.Run(prog)
	perPair := len(prog) / pairs
	// Steady-state window between pair 16 and pair 80.
	lo, hi := 16*perPair, 80*perPair
	cycles := float64(res.IssueCycles[hi] - res.IssueCycles[lo])
	return cycles / float64(80-16) / 2
}

// SPEUpdateTime returns the wall time one lone SPE spends per cell-angle
// update: pipeline cycles scaled by the memory/control factor
// (see params.SweepSPEMemFactor).
func SPEUpdateTime(m *spu.Model) units.Time {
	cycles := KernelCyclesPerCellAngle(m) * params.SweepSPEMemFactor
	return units.FromSeconds(cycles / float64(m.Clock))
}
