package sweep3d

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFluxLinearInSource(t *testing.T) {
	// The transport operator is linear: scaling the source scales the
	// flux exactly.
	base := Problem{NX: 5, NY: 4, NZ: 6, Angles: 3, SigT: 0.8, Q: 1}
	scaled := base
	scaled.Q = 3.5
	a := SolveSerial(base)
	b := SolveSerial(scaled)
	for i := range a.Phi {
		if math.Abs(b.Phi[i]-3.5*a.Phi[i]) > 1e-12*b.Phi[i] {
			t.Fatalf("phi[%d]: %v vs 3.5*%v", i, b.Phi[i], a.Phi[i])
		}
	}
}

func TestFluxDecreasesWithAbsorption(t *testing.T) {
	// Higher cross section means lower flux everywhere.
	thin := SolveSerial(Problem{NX: 4, NY: 4, NZ: 4, Angles: 2, SigT: 0.2, Q: 1})
	thick := SolveSerial(Problem{NX: 4, NY: 4, NZ: 4, Angles: 2, SigT: 2.0, Q: 1})
	for i := range thin.Phi {
		if thick.Phi[i] >= thin.Phi[i] {
			t.Fatalf("phi[%d]: thick %v >= thin %v", i, thick.Phi[i], thin.Phi[i])
		}
	}
}

func TestInfiniteMediumLimit(t *testing.T) {
	// Deep inside a large, optically thick box the flux approaches the
	// infinite-medium solution phi = Q/SigT (with our weights summing
	// to 1 over all angles).
	pr := Problem{NX: 24, NY: 24, NZ: 24, Angles: 4, SigT: 4.0, Q: 2.0}
	res := SolveSerial(pr)
	center := res.PhiAt(12, 12, 12)
	want := pr.Q / pr.SigT
	if math.Abs(center-want)/want > 0.01 {
		t.Errorf("center flux = %v, infinite-medium %v", center, want)
	}
}

func TestBalancePropertyRandomDecompositions(t *testing.T) {
	f := func(pxRaw, pyRaw, mkIdx uint8) bool {
		px := int(pxRaw%3) + 1
		py := int(pyRaw%3) + 1
		mks := []int{1, 2, 4}
		cfg := Config{I: 3, J: 2, K: 8, MK: mks[mkIdx%3], Angles: 2}
		res := SolveParallelHost(cfg, px, py)
		return res.BalanceError() < 1e-11
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestMergePreservesEveryCell(t *testing.T) {
	// Each global cell is owned by exactly one rank and lands in the
	// merged flux: no cell may be zero (flux is strictly positive).
	res := SolveParallelHost(Config{I: 2, J: 3, K: 4, MK: 2, Angles: 2}, 3, 2)
	for i, v := range res.Phi {
		if v <= 0 {
			t.Fatalf("phi[%d] = %v", i, v)
		}
	}
}

func TestSpillFactorMonotoneInBlockSize(t *testing.T) {
	// Growing the block can only increase the staging penalty.
	small := SpillFactor(Config{I: 5, J: 5, K: 400, MK: 20, Angles: 6})
	big := SpillFactor(Config{I: 50, J: 50, K: 50, MK: 10, Angles: 6})
	if small > big {
		t.Errorf("spill %v > %v", small, big)
	}
}

func TestScaleModelMonotoneInNodes(t *testing.T) {
	// Iteration time rises monotonically along the paper's node series.
	// (Arbitrary node counts need not be monotone: a prime count forces
	// a 1xN decomposition whose pipeline fill dwarfs its neighbours' —
	// a real property of wavefront sweeps, not a model bug.)
	cfg := PaperWeakScaling()
	counts := PaperNodeCounts()
	for _, kind := range []RunKind{OpteronOnly, CellMeasured, CellBest} {
		for i := 1; i < len(counts); i++ {
			a := CellIterationTime(cfg, counts[i-1], kind)
			b := CellIterationTime(cfg, counts[i], kind)
			if a > b {
				t.Errorf("%v: time(%d)=%v > time(%d)=%v",
					kind, counts[i-1], a, counts[i], b)
			}
		}
	}
	// And the prime-count effect is real and visible:
	prime := CellIterationTime(cfg, 149, CellMeasured)
	composite := CellIterationTime(cfg, 150, CellMeasured)
	if prime <= composite {
		t.Errorf("1x149 decomposition (%v) should cost more than 10x15 (%v)", prime, composite)
	}
}
