package sweep3d

import (
	"roadrunner/internal/dacs"
	"roadrunner/internal/ib"
	"roadrunner/internal/params"
	"roadrunner/internal/spu"
	"roadrunner/internal/units"
	"roadrunner/internal/wavefront"
)

// The at-scale model behind Figs. 13 and 14. Three run types:
//
//   - Opteron only: plain MPI, four ranks per triblade (one per core),
//     each rank a 5x5x400 subgrid; the 2-D wavefront pipelines over the
//     core grid.
//   - Cell (measured): the SPE-centric CML code. Each triblade carries
//     32 SPE subgrids arranged 8x4; the node-level wavefront pipelines
//     over the node grid, and every step moves the node's aggregated
//     east-west and north-south block surfaces over the early-software
//     DaCS + Open MPI path, store-and-forward (the immature stack does
//     not overlap the segments — the paper's "flow control and multiple
//     buffering" remark).
//   - Cell (best): the same structure with the peak-PCIe DaCS profile
//     and pipelined segments (only the slowest leg's transfer time is
//     exposed), the paper's validated-model projection.

// nodeTileX and nodeTileY arrange a triblade's 32 SPE subgrids.
const (
	nodeTileX = 8
	nodeTileY = 4
)

// RunKind selects a Fig. 13 series.
type RunKind int

// The three Fig. 13 series.
const (
	OpteronOnly RunKind = iota
	CellMeasured
	CellBest
)

// String names the series as the figure legend does.
func (k RunKind) String() string {
	switch k {
	case OpteronOnly:
		return "Opteron only"
	case CellMeasured:
		return "Cell (Measured)"
	default:
		return "Cell (best)"
	}
}

// interNodeHops is the typical crossbar count between wavefront
// neighbours at scale (different crossbars within the first switch side).
const interNodeHops = 5

// OpteronIterationTime models the non-accelerated run at a node count.
func OpteronIterationTime(cfg Config, nodes int) units.Time {
	ranks := 4 * nodes
	nx, ny := wavefront.SquarishGrid(ranks)
	tBlock := units.Time(float64(cfg.BlockUpdates()) *
		float64(params.SweepOpteronDCUpdate) / params.HostSocketEfficiencyDual)
	comm := opteronCommPerStep(cfg, nodes)
	p := wavefront.Params{
		Nx: nx, Ny: ny, Octants: Octants, KBlocks: cfg.KBlocks(),
		TBlock: tBlock, TComm: comm,
	}
	return p.IterationTime()
}

// opteronCommPerStep: two per-rank surface exchanges over MPI (intranode
// shared memory at one node; InfiniBand beyond).
func opteronCommPerStep(cfg Config, nodes int) units.Time {
	pr := ib.OpenMPI()
	ew := units.Size(cfg.EWSurfaceBytes())
	ns := units.Size(cfg.NSSurfaceBytes())
	if nodes == 1 {
		return 2 * 2 * pr.PerSideOverhead // shared-memory exchanges
	}
	return pr.OneWay(ew, interNodeHops, 1, 1) + pr.OneWay(ns, interNodeHops, 1, 1)
}

// CellIterationTime models the SPE-centric run at a node count, with
// either the measured early-software transports or the projected
// peak-PCIe ones.
func CellIterationTime(cfg Config, nodes int, kind RunKind) units.Time {
	if kind == OpteronOnly {
		return OpteronIterationTime(cfg, nodes)
	}
	nx, ny := wavefront.SquarishGrid(nodes)
	tBlock := units.Time(cfg.BlockUpdates()) * speScalePerUpdate(cfg)
	comm := exposedComm(cellCommPerStep(cfg, nodes, kind), kind)
	p := wavefront.Params{
		Nx: nx, Ny: ny, Octants: Octants, KBlocks: cfg.KBlocks(),
		TBlock: tBlock, TComm: comm,
	}
	// The node-level pipeline hides the 8x4 intra-node SPE pipeline in
	// steady state, but its fill/drain is paid once per sweep corner:
	// 4*(8+4-2) extra steps at intra-node exchange cost. Dominant at one
	// node, negligible at full scale.
	intraFill := units.Time(4*(nodeTileX+nodeTileY-2)) *
		(tBlock + exposedComm(cellCommPerStep(cfg, 1, kind), kind))
	return p.IterationTime() + intraFill
}

// exposedComm applies the measured implementation's partial
// compute/communication overlap (see params.SweepCMLOverlap). The best
// model's path is already pipelined; no further hiding applies.
func exposedComm(comm units.Time, kind RunKind) units.Time {
	if kind == CellMeasured {
		return units.Time(float64(comm) * (1 - params.SweepCMLOverlap))
	}
	return comm
}

// speScalePerUpdate returns the per-cell-angle cost of an SPE in the
// at-scale runs (all SPEs active, MK blocking overlapping DMA).
func speScalePerUpdate(cfg Config) units.Time {
	m := spu.PowerXCell8i()
	return units.Time(float64(SPEUpdateTime(m)) * SpillFactor(cfg) / params.SweepSPEScaleEff)
}

// nodeSurfaces returns the aggregated east-west and north-south block
// surface sizes a triblade exchanges per step.
func nodeSurfaces(cfg Config) (ew, ns units.Size) {
	ew = units.Size(nodeTileY * cfg.EWSurfaceBytes())
	ns = units.Size(nodeTileX * cfg.NSSurfaceBytes())
	return ew, ns
}

// cellCommPerStep composes the Cell-to-Cell surface-exchange cost from
// the transport profiles.
func cellCommPerStep(cfg Config, nodes int, kind RunKind) units.Time {
	var dpr dacs.Profile
	pipelined := false
	if kind == CellBest {
		dpr = dacs.PeakPCIe()
		pipelined = true
	} else {
		dpr = dacs.Current()
	}
	ipr := ib.OpenMPI()
	ew, ns := nodeSurfaces(cfg)

	if nodes == 1 {
		// Intra-node: east-west neighbours share a socket (EIB); the
		// north-south surface crosses sockets via DaCS twice.
		ewT := params.CMLIntraSocketLatency + params.CMLIntraSocketBandwidth.TransferTime(ew)
		var nsT units.Time
		if pipelined {
			nsT = 2*dpr.OneWay(0) + dpr.StreamBandwidth.TransferTime(ns)
		} else {
			nsT = 2 * dpr.OneWay(ns)
		}
		return ewT + nsT + 2*params.LocalSegment
	}

	oneSurface := func(size units.Size) units.Time {
		ibLat := 2*ipr.PerSideOverhead + units.Time(interNodeHops)*ipr.HopLatency
		ibRendez := units.Time(0)
		if size > ipr.EagerThreshold {
			ibRendez = 2 * ibLat
		}
		ibXfer := ipr.MultiFlowBandwidth.TransferTime(size)
		if pipelined {
			// Segments overlap; only the slowest leg's transfer shows.
			dacsXfer := dpr.StreamBandwidth.TransferTime(size)
			maxXfer := ibXfer
			if dacsXfer > maxXfer {
				maxXfer = dacsXfer
			}
			return 2*dpr.OneWay(0) + ibLat + ibRendez + maxXfer + 2*params.LocalSegment
		}
		// Store-and-forward: each leg completes before the next starts.
		return 2*dpr.OneWay(size) + ibLat + ibRendez + ibXfer + 2*params.LocalSegment
	}
	return oneSurface(ew) + oneSurface(ns)
}

// ScaleSeries evaluates a Fig. 13 series over the paper's node counts.
func ScaleSeries(cfg Config, kind RunKind, nodeCounts []int) []wavefrontPoint {
	out := make([]wavefrontPoint, 0, len(nodeCounts))
	for _, n := range nodeCounts {
		out = append(out, wavefrontPoint{n, CellIterationTime(cfg, n, kind)})
	}
	return out
}

// wavefrontPoint is one (nodes, time) sample.
type wavefrontPoint struct {
	Nodes int
	Time  units.Time
}

// PaperNodeCounts returns Fig. 13's x axis.
func PaperNodeCounts() []int {
	return []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 3060}
}

// Improvement returns Fig. 14's factor at a node count: the
// non-accelerated time over the accelerated one.
func Improvement(cfg Config, nodes int, kind RunKind) float64 {
	opt := OpteronIterationTime(cfg, nodes)
	cell := CellIterationTime(cfg, nodes, kind)
	return float64(opt) / float64(cell)
}
