package sweep3d

import (
	"testing"

	"roadrunner/internal/cml"
	"roadrunner/internal/report"
)

func TestFig13Shapes(t *testing.T) {
	cfg := PaperWeakScaling()
	counts := PaperNodeCounts()
	var opteron, measured, best []float64
	for _, n := range counts {
		opteron = append(opteron, OpteronIterationTime(cfg, n).Seconds())
		measured = append(measured, CellIterationTime(cfg, n, CellMeasured).Seconds())
		best = append(best, CellIterationTime(cfg, n, CellBest).Seconds())
	}
	// Who wins: Cell below Opteron at every scale, best below measured.
	for i := range counts {
		if measured[i] >= opteron[i] {
			t.Errorf("n=%d: measured %.3f >= opteron %.3f", counts[i], measured[i], opteron[i])
		}
		if best[i] > measured[i] {
			t.Errorf("n=%d: best %.3f > measured %.3f", counts[i], best[i], measured[i])
		}
	}
	// Weak scaling: all three rise with node count (pipeline fill).
	for _, ys := range [][]float64{opteron, measured, best} {
		if !report.NonDecreasing(ys, 0.01) {
			t.Errorf("series not weakly increasing: %v", ys)
		}
	}
	// Magnitudes at full scale: Opteron-only around 0.55-0.65 s,
	// measured around 0.3 s (Fig. 13's right edge).
	last := len(counts) - 1
	if opteron[last] < 0.45 || opteron[last] > 0.75 {
		t.Errorf("Opteron @3060 = %.3f s", opteron[last])
	}
	if measured[last] < 0.2 || measured[last] > 0.42 {
		t.Errorf("measured @3060 = %.3f s", measured[last])
	}
}

func TestFig14ImprovementBands(t *testing.T) {
	cfg := PaperWeakScaling()
	// "currently almost a factor of two higher performance is achieved
	// when using the accelerators" at full scale.
	m3060 := Improvement(cfg, 3060, CellMeasured)
	if m3060 < 1.6 || m3060 > 2.4 {
		t.Errorf("measured improvement @3060 = %.2f, want ~2", m3060)
	}
	// "The performance improvement may be as high as 4x at large-scale
	// if the peak PCIe performance were to be realized."
	b3060 := Improvement(cfg, 3060, CellBest)
	if b3060 < 2.4 || b3060 > 4.5 {
		t.Errorf("best improvement @3060 = %.2f, want 2.5-4.5", b3060)
	}
	if b3060 <= m3060 {
		t.Error("best must exceed measured")
	}
	// "the performance of the current implementation is close to the
	// best achievable at small scale".
	m1 := CellIterationTime(cfg, 1, CellMeasured)
	b1 := CellIterationTime(cfg, 1, CellBest)
	if r := float64(m1) / float64(b1); r > 1.4 {
		t.Errorf("measured/best at 1 node = %.2f, want close to 1", r)
	}
	// "could be improved by almost a factor of two at large scale".
	m := CellIterationTime(cfg, 3060, CellMeasured)
	b := CellIterationTime(cfg, 3060, CellBest)
	if r := float64(m) / float64(b); r < 1.3 || r > 2.2 {
		t.Errorf("measured/best at 3060 = %.2f, want 1.4-2", r)
	}
	// The best-curve advantage grows with scale.
	if Improvement(cfg, 3060, CellBest) <= Improvement(cfg, 1, CellBest) {
		t.Error("best improvement should grow with scale")
	}
}

func TestScaleSeriesAPI(t *testing.T) {
	cfg := PaperWeakScaling()
	pts := ScaleSeries(cfg, CellMeasured, []int{1, 4, 16})
	if len(pts) != 3 || pts[0].Nodes != 1 || pts[2].Nodes != 16 {
		t.Fatalf("series = %+v", pts)
	}
	if pts[2].Time <= pts[0].Time {
		t.Error("time should grow with scale")
	}
	if OpteronOnly.String() == "" || CellMeasured.String() == "" || CellBest.String() == "" {
		t.Error("run kind names")
	}
}

func TestDESMatchesHostSolverExactly(t *testing.T) {
	// The DES execution produces bitwise-identical flux to the host
	// parallel solver (and hence the serial reference).
	cfg := Config{I: 3, J: 3, K: 8, MK: 4, Angles: 3}
	px, py := 4, 2
	des, err := RunOnDES(cfg, px, py, cml.CurrentSoftware())
	if err != nil {
		t.Fatal(err)
	}
	host := SolveParallelHost(cfg, px, py)
	for i := range des.Phi {
		if des.Phi[i] != host.Phi[i] {
			t.Fatalf("phi[%d]: DES %v vs host %v", i, des.Phi[i], host.Phi[i])
		}
	}
	if des.BalanceError() > 1e-11 {
		t.Errorf("DES balance = %e", des.BalanceError())
	}
	if des.IterationTime <= 0 {
		t.Error("no simulated time elapsed")
	}
}

func TestDESAgreesWithAnalyticModel(t *testing.T) {
	// Cross-validation (DESIGN.md decision 3): the DES execution of one
	// full node (32 SPE ranks, 8x4) must agree with the analytic Cell
	// model at 1 node within 35% — the analytic model idealises the
	// intra-node transport mix, the DES routes every message.
	cfg := Config{I: 5, J: 5, K: 40, MK: 20, Angles: 6} // short-K variant
	des, err := RunOnDES(cfg, 8, 4, cml.CurrentSoftware())
	if err != nil {
		t.Fatal(err)
	}
	model := CellIterationTime(cfg, 1, CellMeasured)
	ratio := float64(des.IterationTime) / float64(model)
	if ratio < 0.65 || ratio > 1.55 {
		t.Errorf("DES/model = %.2f (DES %v, model %v)", ratio, des.IterationTime, model)
	}
}

func TestDESPeakPCIeFasterAtScale(t *testing.T) {
	cfg := Config{I: 3, J: 3, K: 8, MK: 4, Angles: 2}
	cur, err := RunOnDES(cfg, 8, 8, cml.CurrentSoftware()) // 2 nodes
	if err != nil {
		t.Fatal(err)
	}
	best, err := RunOnDES(cfg, 8, 8, cml.PeakPCIe())
	if err != nil {
		t.Fatal(err)
	}
	if best.IterationTime >= cur.IterationTime {
		t.Errorf("peak PCIe %v >= current %v", best.IterationTime, cur.IterationTime)
	}
	// Identical numerics regardless of transport.
	for i := range cur.Phi {
		if cur.Phi[i] != best.Phi[i] {
			t.Fatal("transport changed numerics")
		}
	}
}
