package sweep3d

import (
	"fmt"
	"math"
	"sync"
)

// Problem is a global transport problem: a NX x NY x NZ grid of unit
// cells with a uniform total cross section and uniform isotropic source,
// vacuum boundaries, swept by Angles directions per octant.
type Problem struct {
	NX, NY, NZ int
	Angles     int
	SigT       float64 // total cross section
	Q          float64 // uniform source density
}

// Angle is one discrete ordinate: positive direction cosines (the octant
// supplies signs) and a quadrature weight.
type Angle struct {
	Mu, Eta, Xi float64
	W           float64
}

// Quadrature returns the problem's deterministic angle set. The set is
// not a physical Sn quadrature (the paper's kernel fixes six angles per
// octant and so do we); it provides distinct positive cosines and
// weights that sum to one over all octants.
func (pr Problem) Quadrature() []Angle {
	n := pr.Angles
	qs := make([]Angle, n)
	for a := 0; a < n; a++ {
		t := (float64(a) + 0.5) / float64(n)
		mu := 0.30 + 0.55*t
		eta := 0.70 - 0.45*t
		xi := 0.25 + 0.35*(1-t)
		qs[a] = Angle{Mu: mu, Eta: eta, Xi: xi, W: 1 / float64(8*n)}
	}
	return qs
}

// Dir is an octant's direction signs.
type Dir struct{ SI, SJ, SK int }

// OctantOrder returns the eight sweep directions in the fixed order all
// solvers use (so floating-point accumulation orders agree exactly).
func OctantOrder() [Octants]Dir {
	var out [Octants]Dir
	i := 0
	for _, sk := range []int{1, -1} {
		for _, sj := range []int{1, -1} {
			for _, si := range []int{1, -1} {
				out[i] = Dir{si, sj, sk}
				i++
			}
		}
	}
	return out
}

// Result holds a solve's outputs: the scalar flux and the discrete
// balance tallies.
type Result struct {
	NX, NY, NZ int
	Phi        []float64 // scalar flux, x-major: idx = (k*NY+j)*NX+i
	Absorbed   float64   // sum over angles/cells of sigt * psi (unweighted)
	Outflow    float64   // sum over angles of boundary-exiting cosine-weighted psi
	Source     float64   // total emitted: q * cells * angles * octants
}

// BalanceError returns the relative particle-balance defect: for a pure
// absorber with vacuum boundaries, absorption plus leakage must equal
// the source, angle by angle; we check the aggregate.
func (r *Result) BalanceError() float64 {
	if r.Source == 0 {
		return 0
	}
	return math.Abs(r.Absorbed+r.Outflow-r.Source) / r.Source
}

// idx flattens (i, j, k).
func (r *Result) idx(i, j, k int) int { return (k*r.NY+j)*r.NX + i }

// PhiAt returns the scalar flux at a cell.
func (r *Result) PhiAt(i, j, k int) float64 { return r.Phi[r.idx(i, j, k)] }

// SolveSerial runs the reference solver: straightforward full-grid
// sweeps, no blocking, no decomposition. It is deliberately an
// independent implementation from the block solver so the two
// cross-validate.
func SolveSerial(pr Problem) *Result {
	res := &Result{
		NX: pr.NX, NY: pr.NY, NZ: pr.NZ,
		Phi:    make([]float64, pr.NX*pr.NY*pr.NZ),
		Source: pr.Q * float64(pr.NX*pr.NY*pr.NZ) * float64(pr.Angles*Octants),
	}
	quad := pr.Quadrature()
	fz := make([]float64, pr.NX*pr.NY)
	fy := make([]float64, pr.NX)
	for _, oct := range OctantOrder() {
		for _, an := range quad {
			denom := pr.SigT + an.Mu + an.Eta + an.Xi
			for i := range fz {
				fz[i] = 0
			}
			for kk := 0; kk < pr.NZ; kk++ {
				k := upwind(kk, pr.NZ, oct.SK)
				for i := range fy {
					fy[i] = 0
				}
				for jj := 0; jj < pr.NY; jj++ {
					j := upwind(jj, pr.NY, oct.SJ)
					fx := 0.0
					for ii := 0; ii < pr.NX; ii++ {
						i := upwind(ii, pr.NX, oct.SI)
						zin := fz[j*pr.NX+i]
						psi := (pr.Q + an.Mu*fx + an.Eta*fy[i] + an.Xi*zin) / denom
						res.Phi[res.idx(i, j, k)] += an.W * psi
						res.Absorbed += pr.SigT * psi
						fx = psi
						fy[i] = psi
						fz[j*pr.NX+i] = psi
					}
					res.Outflow += an.Mu * fx // x leakage for this (j,k) pencil
				}
				for i := 0; i < pr.NX; i++ {
					res.Outflow += an.Eta * fy[i] // y leakage at this k
				}
			}
			for _, v := range fz {
				res.Outflow += an.Xi * v // z leakage
			}
		}
	}
	return res
}

// upwind maps a sweep-order index to a grid index for a direction sign.
func upwind(pos, n, sign int) int {
	if sign > 0 {
		return pos
	}
	return n - 1 - pos
}

// ---------------------------------------------------------------------------
// Block solver: the decomposed, K-blocked formulation all parallel
// drivers share.
// ---------------------------------------------------------------------------

// LocalState is one rank's share of a decomposed problem.
type LocalState struct {
	Cfg        Config
	Prob       Problem
	PX, PY     int       // processor array
	PXi, PYi   int       // this rank's coordinates
	Phi        []float64 // local I x J x K flux, x-major
	psiZ       []float64 // per-angle z faces: (a*J + j)*I + i
	absorbed   float64
	outflow    float64
	quadrature []Angle
}

// NewLocalState builds rank (pxi, pyi) of a PX x PY decomposition where
// every rank owns an identical cfg subgrid.
func NewLocalState(cfg Config, prob Problem, px, py, pxi, pyi int) *LocalState {
	if prob.NX != cfg.I*px || prob.NY != cfg.J*py || prob.NZ != cfg.K {
		panic(fmt.Sprintf("sweep3d: problem %dx%dx%d does not tile %dx%d ranks of %dx%dx%d",
			prob.NX, prob.NY, prob.NZ, px, py, cfg.I, cfg.J, cfg.K))
	}
	return &LocalState{
		Cfg: cfg, Prob: prob, PX: px, PY: py, PXi: pxi, PYi: pyi,
		Phi:        make([]float64, cfg.I*cfg.J*cfg.K),
		psiZ:       make([]float64, prob.Angles*cfg.I*cfg.J),
		quadrature: prob.Quadrature(),
	}
}

// XFaceLen is the element count of an east/west block boundary.
func (s *LocalState) XFaceLen() int { return s.Prob.Angles * s.Cfg.J * s.Cfg.MK }

// YFaceLen is the element count of a north/south block boundary.
func (s *LocalState) YFaceLen() int { return s.Prob.Angles * s.Cfg.I * s.Cfg.MK }

// StartOctant resets the per-octant z-face state.
func (s *LocalState) StartOctant() {
	for i := range s.psiZ {
		s.psiZ[i] = 0
	}
}

// FinishOctant accumulates the z leakage after an octant's last block.
func (s *LocalState) FinishOctant() {
	for a, an := range s.quadrature {
		base := a * s.Cfg.I * s.Cfg.J
		for _, v := range s.psiZ[base : base+s.Cfg.I*s.Cfg.J] {
			s.outflow += an.Xi * v
		}
	}
}

// BlockSweep processes K block kb (0-based in sweep order) of an octant:
// consumes the upstream x and y faces (nil means global vacuum boundary)
// and returns the downstream faces. Face layout: x faces are
// (a*J + j)*MK + kk; y faces are (a*I + i)*MK + kk, with kk the position
// within the block in sweep order.
func (s *LocalState) BlockSweep(oct Dir, kb int, xin, yin []float64) (xout, yout []float64) {
	cfg, pr := s.Cfg, s.Prob
	if xin == nil {
		xin = make([]float64, s.XFaceLen())
	}
	if yin == nil {
		yin = make([]float64, s.YFaceLen())
	}
	xout = make([]float64, s.XFaceLen())
	yout = make([]float64, s.YFaceLen())
	// fy carries y faces across j rows for each (i, kk) of this block.
	for a, an := range s.quadrature {
		denom := pr.SigT + an.Mu + an.Eta + an.Xi
		zbase := a * cfg.I * cfg.J
		for kk := 0; kk < cfg.MK; kk++ {
			kSweep := kb*cfg.MK + kk
			k := upwind(kSweep, cfg.K, oct.SK)
			for jj := 0; jj < cfg.J; jj++ {
				j := upwind(jj, cfg.J, oct.SJ)
				fx := xin[(a*cfg.J+j)*cfg.MK+kk]
				for ii := 0; ii < cfg.I; ii++ {
					i := upwind(ii, cfg.I, oct.SI)
					zi := zbase + j*cfg.I + i
					yi := (a*cfg.I+i)*cfg.MK + kk
					var fyv float64
					if jj == 0 {
						fyv = yin[yi]
					} else {
						fyv = yout[yi]
					}
					psi := (pr.Q + an.Mu*fx + an.Eta*fyv + an.Xi*s.psiZ[zi]) / denom
					s.Phi[(k*cfg.J+j)*cfg.I+i] += an.W * psi
					s.absorbed += pr.SigT * psi
					fx = psi
					yout[yi] = psi
					s.psiZ[zi] = psi
				}
				xout[(a*cfg.J+j)*cfg.MK+kk] = fx
			}
		}
	}
	return xout, yout
}

// AccumulateEdgeLeakage adds the cosine-weighted leakage of a departing
// face when this rank is on the global downstream boundary. which is
// "x" or "y".
func (s *LocalState) AccumulateEdgeLeakage(which string, face []float64) {
	var per int
	switch which {
	case "x":
		per = s.Cfg.J * s.Cfg.MK
	case "y":
		per = s.Cfg.I * s.Cfg.MK
	default:
		panic("sweep3d: leakage face " + which)
	}
	for a, an := range s.quadrature {
		c := an.Mu
		if which == "y" {
			c = an.Eta
		}
		for _, v := range face[a*per : (a+1)*per] {
			s.outflow += c * v
		}
	}
}

// upstreamRank returns this rank's upwind neighbour coordinate in a
// dimension (or -1 at the global boundary).
func upstreamRank(pi, sign int) int {
	if sign > 0 {
		return pi - 1
	}
	return pi + 1
}

// downstreamRank returns the downwind neighbour (or the array size /
// -1 when leaving the grid; caller checks bounds).
func downstreamRank(pi, sign int) int {
	if sign > 0 {
		return pi + 1
	}
	return pi - 1
}

// ---------------------------------------------------------------------------
// Host-parallel driver: one goroutine per rank, channels as links.
// ---------------------------------------------------------------------------

// faceMsg carries a block boundary between ranks.
type faceMsg struct {
	data []float64
}

// SolveParallelHost runs the block solver on PX x PY concurrent
// goroutines exchanging real boundary data through channels, and merges
// the per-rank results. The merged result is bitwise identical to
// SolveSerial for the composed problem.
func SolveParallelHost(cfg Config, px, py int) *Result {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	prob := Problem{NX: cfg.I * px, NY: cfg.J * py, NZ: cfg.K,
		Angles: cfg.Angles, SigT: 0.75, Q: 1.0}
	return solveParallel(cfg, prob, px, py)
}

func solveParallel(cfg Config, prob Problem, px, py int) *Result {
	type linkKey struct {
		toX, toY int
		oct      int
		block    int
		dim      string
	}
	var mu sync.Mutex
	links := map[linkKey]chan faceMsg{}
	getLink := func(k linkKey) chan faceMsg {
		mu.Lock()
		defer mu.Unlock()
		if ch, ok := links[k]; ok {
			return ch
		}
		ch := make(chan faceMsg, 1)
		links[k] = ch
		return ch
	}

	states := make([]*LocalState, px*py)
	var wg sync.WaitGroup
	octs := OctantOrder()
	for pyi := 0; pyi < py; pyi++ {
		for pxi := 0; pxi < px; pxi++ {
			s := NewLocalState(cfg, prob, px, py, pxi, pyi)
			states[pyi*px+pxi] = s
			wg.Add(1)
			go func(s *LocalState) {
				defer wg.Done()
				for oi, oct := range octs {
					s.StartOctant()
					for kb := 0; kb < cfg.KBlocks(); kb++ {
						var xin, yin []float64
						if up := upstreamRank(s.PXi, oct.SI); up >= 0 && up < px {
							xin = (<-getLink(linkKey{s.PXi, s.PYi, oi, kb, "x"})).data
						}
						if up := upstreamRank(s.PYi, oct.SJ); up >= 0 && up < py {
							yin = (<-getLink(linkKey{s.PXi, s.PYi, oi, kb, "y"})).data
						}
						xout, yout := s.BlockSweep(oct, kb, xin, yin)
						if dn := downstreamRank(s.PXi, oct.SI); dn >= 0 && dn < px {
							getLink(linkKey{dn, s.PYi, oi, kb, "x"}) <- faceMsg{xout}
						} else {
							s.AccumulateEdgeLeakage("x", xout)
						}
						if dn := downstreamRank(s.PYi, oct.SJ); dn >= 0 && dn < py {
							getLink(linkKey{s.PXi, dn, oi, kb, "y"}) <- faceMsg{yout}
						} else {
							s.AccumulateEdgeLeakage("y", yout)
						}
					}
					s.FinishOctant()
				}
			}(s)
		}
	}
	wg.Wait()
	return MergeResults(cfg, prob, px, py, states)
}

// MergeResults combines per-rank states into a global Result.
func MergeResults(cfg Config, prob Problem, px, py int, states []*LocalState) *Result {
	res := &Result{
		NX: prob.NX, NY: prob.NY, NZ: prob.NZ,
		Phi:    make([]float64, prob.NX*prob.NY*prob.NZ),
		Source: prob.Q * float64(prob.NX*prob.NY*prob.NZ) * float64(prob.Angles*Octants),
	}
	for pyi := 0; pyi < py; pyi++ {
		for pxi := 0; pxi < px; pxi++ {
			s := states[pyi*px+pxi]
			res.Absorbed += s.absorbed
			res.Outflow += s.outflow
			for k := 0; k < cfg.K; k++ {
				for j := 0; j < cfg.J; j++ {
					for i := 0; i < cfg.I; i++ {
						gi := pxi*cfg.I + i
						gj := pyi*cfg.J + j
						res.Phi[res.idx(gi, gj, k)] = s.Phi[(k*cfg.J+j)*cfg.I+i]
					}
				}
			}
		}
	}
	return res
}
