package sweep3d

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConfigValidate(t *testing.T) {
	good := Config{I: 5, J: 5, K: 400, MK: 20, Angles: 6}
	if err := good.Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
	bad := Config{I: 5, J: 5, K: 400, MK: 30, Angles: 6} // 30 does not divide 400
	if err := bad.Validate(); err == nil {
		t.Error("MK not dividing K accepted")
	}
	if err := (Config{}).Validate(); err == nil {
		t.Error("zero config accepted")
	}
}

func TestConfigDerived(t *testing.T) {
	cfg := PaperWeakScaling()
	if cfg.KBlocks() != 20 {
		t.Errorf("KBlocks = %d", cfg.KBlocks())
	}
	if cfg.Cells() != 10000 {
		t.Errorf("cells = %d", cfg.Cells())
	}
	if cfg.UpdatesPerIteration() != 10000*6*8 {
		t.Errorf("updates = %d", cfg.UpdatesPerIteration())
	}
	if cfg.BlockCells() != 500 {
		t.Errorf("block cells = %d", cfg.BlockCells())
	}
	// 5x20x6 angles x 8B = 4800 B east-west surface.
	if cfg.EWSurfaceBytes() != 4800 {
		t.Errorf("EW surface = %d", cfg.EWSurfaceBytes())
	}
}

func TestQuadraturePositiveAndNormalised(t *testing.T) {
	pr := Problem{NX: 2, NY: 2, NZ: 2, Angles: 6, SigT: 1, Q: 1}
	var wsum float64
	for _, a := range pr.Quadrature() {
		if a.Mu <= 0 || a.Eta <= 0 || a.Xi <= 0 || a.W <= 0 {
			t.Fatalf("non-positive quadrature: %+v", a)
		}
		wsum += a.W
	}
	if math.Abs(wsum*8-1) > 1e-12 {
		t.Errorf("weights sum to %v over octants", wsum*8)
	}
}

func TestSerialBalance(t *testing.T) {
	pr := Problem{NX: 8, NY: 6, NZ: 10, Angles: 6, SigT: 0.75, Q: 1}
	res := SolveSerial(pr)
	if be := res.BalanceError(); be > 1e-12 {
		t.Errorf("balance error = %e", be)
	}
	// Every flux positive, and interior cells see more flux than the
	// inflow corners (flux builds along sweep paths).
	for _, v := range res.Phi {
		if v <= 0 {
			t.Fatal("non-positive flux")
		}
	}
	center := res.PhiAt(4, 3, 5)
	corner := res.PhiAt(0, 0, 0)
	if center <= corner {
		t.Errorf("center flux %v <= corner %v", center, corner)
	}
}

func TestBalanceProperty(t *testing.T) {
	// Balance holds for arbitrary small problems.
	f := func(nx, ny, nz, na uint8, sigt10 uint8) bool {
		pr := Problem{
			NX: int(nx%5) + 1, NY: int(ny%5) + 1, NZ: int(nz%5) + 1,
			Angles: int(na%4) + 1, SigT: float64(sigt10%30)/10 + 0.1, Q: 1,
		}
		return SolveSerial(pr).BalanceError() < 1e-11
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSymmetryOfSymmetricProblem(t *testing.T) {
	// A cubic uniform problem swept over all 8 octants has mirror
	// symmetry: phi(i,j,k) == phi(NX-1-i, j, k) etc.
	pr := Problem{NX: 6, NY: 6, NZ: 6, Angles: 4, SigT: 0.9, Q: 1}
	res := SolveSerial(pr)
	for k := 0; k < 6; k++ {
		for j := 0; j < 6; j++ {
			for i := 0; i < 6; i++ {
				a := res.PhiAt(i, j, k)
				for _, b := range []float64{
					res.PhiAt(5-i, j, k), res.PhiAt(i, 5-j, k), res.PhiAt(i, j, 5-k),
				} {
					if math.Abs(a-b)/a > 1e-12 {
						t.Fatalf("symmetry broken at %d,%d,%d: %v vs %v", i, j, k, a, b)
					}
				}
			}
		}
	}
}

func TestParallelMatchesSerialExactly(t *testing.T) {
	cases := []struct {
		cfg    Config
		px, py int
	}{
		{Config{I: 4, J: 4, K: 8, MK: 2, Angles: 3}, 1, 1},
		{Config{I: 4, J: 4, K: 8, MK: 2, Angles: 3}, 2, 2},
		{Config{I: 3, J: 5, K: 12, MK: 4, Angles: 6}, 4, 2},
		{Config{I: 2, J: 2, K: 6, MK: 3, Angles: 2}, 3, 5},
		{Config{I: 5, J: 5, K: 20, MK: 5, Angles: 6}, 2, 3},
	}
	for _, c := range cases {
		par := SolveParallelHost(c.cfg, c.px, c.py)
		pr := Problem{NX: c.cfg.I * c.px, NY: c.cfg.J * c.py, NZ: c.cfg.K,
			Angles: c.cfg.Angles, SigT: 0.75, Q: 1.0}
		ser := SolveSerial(pr)
		if len(par.Phi) != len(ser.Phi) {
			t.Fatalf("%dx%d: size mismatch", c.px, c.py)
		}
		for i := range par.Phi {
			if par.Phi[i] != ser.Phi[i] {
				t.Fatalf("%dx%d: phi[%d] = %v (parallel) vs %v (serial)",
					c.px, c.py, i, par.Phi[i], ser.Phi[i])
			}
		}
		// Tallies are summed in different orders: tolerance comparison.
		if math.Abs(par.Absorbed-ser.Absorbed)/ser.Absorbed > 1e-12 {
			t.Errorf("%dx%d: absorbed %v vs %v", c.px, c.py, par.Absorbed, ser.Absorbed)
		}
		if par.BalanceError() > 1e-11 {
			t.Errorf("%dx%d: balance %e", c.px, c.py, par.BalanceError())
		}
	}
}

func TestParallelDecompositionInvariance(t *testing.T) {
	// The same global problem decomposed differently yields identical
	// flux: 4x2 ranks of 3x10 vs 2x4 ranks of 6x5.
	a := SolveParallelHost(Config{I: 3, J: 5, K: 8, MK: 4, Angles: 4}, 4, 2)
	b := SolveParallelHost(Config{I: 6, J: 10, K: 8, MK: 2, Angles: 4}, 2, 1)
	if len(a.Phi) != len(b.Phi) {
		t.Fatalf("global sizes differ: %d vs %d", len(a.Phi), len(b.Phi))
	}
	for i := range a.Phi {
		if a.Phi[i] != b.Phi[i] {
			t.Fatalf("phi[%d] differs across decompositions: %v vs %v", i, a.Phi[i], b.Phi[i])
		}
	}
}

func TestOctantOrderCoversAll(t *testing.T) {
	seen := map[Dir]bool{}
	for _, d := range OctantOrder() {
		if d.SI*d.SI != 1 || d.SJ*d.SJ != 1 || d.SK*d.SK != 1 {
			t.Fatalf("bad dir %+v", d)
		}
		seen[d] = true
	}
	if len(seen) != 8 {
		t.Errorf("octants = %d", len(seen))
	}
}

func TestFig11WavefrontOrdering(t *testing.T) {
	// The Fig. 11 property: for the (+,+) octant, rank (px,py) can only
	// compute block b after upstream ranks computed it — the earliest
	// step is px+py+b, and the block solver's data dependencies enforce
	// exactly that partial order. We verify with a sequential scheduler
	// that respects dependencies and check the step stamps.
	cfg := Config{I: 2, J: 2, K: 4, MK: 2, Angles: 2}
	px, py := 3, 3
	type key struct{ x, y, b int }
	step := map[key]int{}
	// Simulate the schedule: a block runs at step = max(upstream steps)+1.
	for b := 0; b < cfg.KBlocks(); b++ {
		for y := 0; y < py; y++ {
			for x := 0; x < px; x++ {
				s := 0
				if x > 0 && step[key{x - 1, y, b}]+1 > s {
					s = step[key{x - 1, y, b}] + 1
				}
				if y > 0 && step[key{x, y - 1, b}]+1 > s {
					s = step[key{x, y - 1, b}] + 1
				}
				if b > 0 && step[key{x, y, b - 1}]+1 > s {
					s = step[key{x, y, b - 1}] + 1
				}
				step[key{x, y, b}] = s
			}
		}
	}
	for k, s := range step {
		if want := k.x + k.y + k.b; s != want {
			t.Errorf("block %+v at step %d, want %d (wavefront distance)", k, s, want)
		}
	}
}
