// Package sweep3d implements the paper's case-study application: a
// single-group, time-independent discrete-ordinates (Sn) neutron
// transport sweep over a 3-D Cartesian grid, decomposed in two dimensions
// with K-dimension blocking — the structure of LANL's Sweep3D kernel
// (§V.A).
//
// The package contains three layers:
//
//   - a real solver (solver.go): first-order upwind sweeps over actual
//     grids with actual angular quadrature, run serially, in parallel on
//     host goroutines, or rank-by-rank on the DES — all bitwise
//     identical, and satisfying a discrete particle-balance identity;
//   - an SPU kernel model (kernel.go): the SIMD-ized inner loop of §V.B
//     pushed through the spu pipeline simulator, giving cycles per
//     cell-angle for the Cell BE and PowerXCell 8i;
//   - timing models (timing.go, scale.go): per-chip iteration times for
//     Fig. 12 and Table IV, and the at-scale model behind Figs. 13-14.
package sweep3d

import (
	"fmt"
)

// Config is a Sweep3D problem configuration (per-rank subgrid).
type Config struct {
	I, J, K int // per-rank subgrid dimensions
	MK      int // K-blocking factor (block = I x J x MK)
	Angles  int // angles per octant (the paper fixes 6)
}

// Octants is the number of sweep directions in 3-D.
const Octants = 8

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.I < 1 || c.J < 1 || c.K < 1 {
		return fmt.Errorf("sweep3d: grid %dx%dx%d", c.I, c.J, c.K)
	}
	if c.MK < 1 || c.K%c.MK != 0 {
		return fmt.Errorf("sweep3d: MK=%d must divide K=%d", c.MK, c.K)
	}
	if c.Angles < 1 {
		return fmt.Errorf("sweep3d: angles %d", c.Angles)
	}
	return nil
}

// KBlocks returns the number of K blocks per octant.
func (c Config) KBlocks() int { return c.K / c.MK }

// Cells returns the per-rank cell count.
func (c Config) Cells() int { return c.I * c.J * c.K }

// UpdatesPerIteration returns cell-angle-octant updates one rank performs
// per source iteration.
func (c Config) UpdatesPerIteration() int {
	return c.Cells() * c.Angles * Octants
}

// BlockCells returns cells per K block.
func (c Config) BlockCells() int { return c.I * c.J * c.MK }

// BlockUpdates returns cell-angle updates per block step (one octant's
// angle set over one block).
func (c Config) BlockUpdates() int { return c.BlockCells() * c.Angles }

// EWSurfaceBytes returns the east/west boundary payload exchanged per
// block step: one J x MK plane per angle, 8 bytes per value.
func (c Config) EWSurfaceBytes() int { return c.J * c.MK * c.Angles * 8 }

// NSSurfaceBytes returns the north/south boundary payload per block step.
func (c Config) NSSurfaceBytes() int { return c.I * c.MK * c.Angles * 8 }

// PaperWeakScaling returns the at-scale configuration of §VI: a
// 5x5x400 subgrid per SPE, MK=20, 6 angles.
func PaperWeakScaling() Config {
	return Config{I: 5, J: 5, K: 400, MK: 20, Angles: 6}
}

// PaperTableIV returns the Table IV comparison configuration: 50x50x50
// per socket, MK=10, 6 angles.
func PaperTableIV() Config {
	return Config{I: 50, J: 50, K: 50, MK: 10, Angles: 6}
}
