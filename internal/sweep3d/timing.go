package sweep3d

import (
	"roadrunner/internal/params"
	"roadrunner/internal/spu"
	"roadrunner/internal/units"
)

// HostChip identifies one of the Fig. 12 comparison processors.
type HostChip int

// The host processors of Fig. 12.
const (
	OpteronDC18   HostChip = iota // dual-core 1.8 GHz (the triblade's)
	OpteronQC20                   // quad-core 2.0 GHz
	TigertonQC293                 // quad-core 2.93 GHz Intel
)

// String names the chip as the figure does.
func (h HostChip) String() string {
	switch h {
	case OpteronDC18:
		return "Opteron (Dual-core 1.8GHz)"
	case OpteronQC20:
		return "Opteron (Quad-core 2.0GHz)"
	default:
		return "Tigerton (Quad-core 2.93GHz)"
	}
}

// hostUpdate returns the chip's per-cell-angle update time.
func (h HostChip) hostUpdate() units.Time {
	switch h {
	case OpteronDC18:
		return params.SweepOpteronDCUpdate
	case OpteronQC20:
		return params.SweepOpteronQCUpdate
	default:
		return params.SweepTigertonUpdate
	}
}

// cores and socket efficiency for the socket benchmark.
func (h HostChip) cores() (int, float64) {
	if h == OpteronDC18 {
		return 2, params.HostSocketEfficiencyDual
	}
	return 4, params.HostSocketEfficiencyQuad
}

// SpillFactor returns the local-store pressure multiplier for a
// configuration: 1 when a K block's working set is resident, the
// calibrated streaming penalty when it spills to main memory.
func SpillFactor(cfg Config) float64 {
	blockBytes := units.Size(cfg.BlockCells() * params.SweepResidentBytesPerCell)
	if blockBytes <= params.SweepLocalStoreBudget {
		return 1
	}
	return params.SweepSpillFactor
}

// HostSingleCoreTime returns one iteration's time for the Fig. 12
// "single core" bars: the full per-rank update count at the host chip's
// update rate.
func HostSingleCoreTime(h HostChip, cfg Config) units.Time {
	return units.Time(cfg.UpdatesPerIteration()) * h.hostUpdate()
}

// SPESingleTime returns the Fig. 12 "single SPE" bar: one lone SPE
// sweeping the same subgrid.
func SPESingleTime(m *spu.Model, cfg Config) units.Time {
	per := float64(SPEUpdateTime(m)) * SpillFactor(cfg)
	return units.Time(float64(cfg.UpdatesPerIteration()) * per)
}

// socketUpdates is the Fig. 12 socket benchmark's total work: the
// 10 x 20 x 400 grid, eight per-SPE subgrids.
func socketUpdates(cfg Config) int { return 8 * cfg.UpdatesPerIteration() }

// HostSocketTime returns the Fig. 12 "single socket" bar for a host
// chip: the socket grid spread over its cores with the measured memory
// contention.
func HostSocketTime(h HostChip, cfg Config) units.Time {
	n, eff := h.cores()
	per := float64(h.hostUpdate())
	return units.Time(float64(socketUpdates(cfg)) * per / (float64(n) * eff))
}

// SPESocketTime returns the Fig. 12 PowerXCell 8i socket bar: eight SPEs
// with MIC/EIB contention.
func SPESocketTime(m *spu.Model, cfg Config) units.Time {
	per := float64(SPEUpdateTime(m)) * SpillFactor(cfg)
	return units.Time(float64(socketUpdates(cfg)) * per / (8 * params.SweepSPESocketEff))
}

// TableIVOurs returns our implementation's Table IV iteration time on a
// full socket for the 50x50x50 problem: per-SPE share of the updates at
// the contended, spilled rate.
func TableIVOurs(m *spu.Model) units.Time {
	cfg := PaperTableIV()
	perSPE := cfg.UpdatesPerIteration() / 8
	per := float64(SPEUpdateTime(m)) * SpillFactor(cfg) / params.SweepSPESocketEff
	return units.Time(float64(perSPE) * per)
}

// TableIVPrevious models the previous master/worker implementation of
// [20] on the Cell BE: per-pencil PPE dispatch dominates (the paper:
// "the approach required a significant number of DMAs ... performance
// was bounded by the available memory bandwidth"), on top of the same
// compute.
func TableIVPrevious(m *spu.Model) units.Time {
	cfg := PaperTableIV()
	// One dispatch per (j, k, octant, SIMD angle group) pencil.
	groups := (cfg.Angles + 1) / 2
	pencils := cfg.J * cfg.K * Octants * groups
	dispatch := units.FromMicroseconds(params.PencilDispatchOverhead) * units.Time(pencils)
	return dispatch + TableIVOurs(m)
}
