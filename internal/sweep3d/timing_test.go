package sweep3d

import (
	"math"
	"testing"

	"roadrunner/internal/spu"
)

func TestKernelRatioMatchesTableIV(t *testing.T) {
	// The CBE/PXC8i per-update ratio comes from the pipeline model and
	// must land near Table IV's 0.37/0.19 = 1.95.
	cp := KernelCyclesPerCellAngle(spu.PowerXCell8i())
	cc := KernelCyclesPerCellAngle(spu.CellBE())
	ratio := cc / cp
	if ratio < 1.6 || ratio > 2.2 {
		t.Errorf("kernel ratio = %.2f, want ~1.9", ratio)
	}
	// PXC8i issue cost: a few tens of cycles per update.
	if cp < 15 || cp > 45 {
		t.Errorf("PXC8i cycles/update = %.1f", cp)
	}
}

func TestSPEUpdateCalibration(t *testing.T) {
	// One lone PXC8i SPE: ~67 ns per cell-angle update.
	got := SPEUpdateTime(spu.PowerXCell8i()).Nanoseconds()
	if math.Abs(got-66.7)/66.7 > 0.05 {
		t.Errorf("SPE update = %.1f ns, want ~66.7", got)
	}
}

func TestSpillFactor(t *testing.T) {
	if f := SpillFactor(PaperWeakScaling()); f != 1 {
		t.Errorf("weak config spill = %v, want 1 (resident)", f)
	}
	if f := SpillFactor(PaperTableIV()); f <= 1 {
		t.Errorf("Table IV config spill = %v, want > 1 (streams)", f)
	}
}

func TestTableIVValues(t *testing.T) {
	pxc, cbe := spu.PowerXCell8i(), spu.CellBE()
	ours := TableIVOurs(pxc).Seconds()
	oursCBE := TableIVOurs(cbe).Seconds()
	prev := TableIVPrevious(cbe).Seconds()
	// Paper: previous 1.3 s, ours 0.37 s (CBE), 0.19 s (PXC8i).
	if math.Abs(ours-0.19)/0.19 > 0.05 {
		t.Errorf("ours PXC8i = %.3f s, want 0.19", ours)
	}
	if math.Abs(oursCBE-0.37)/0.37 > 0.10 {
		t.Errorf("ours CBE = %.3f s, want 0.37", oursCBE)
	}
	if math.Abs(prev-1.3)/1.3 > 0.10 {
		t.Errorf("previous = %.3f s, want 1.3", prev)
	}
	// The headline ratios: ours beats previous ~3.5x on the CBE; the
	// PXC8i beats the CBE by ~1.9x.
	if r := prev / oursCBE; r < 3 || r > 4.2 {
		t.Errorf("previous/ours = %.2f, want ~3.5", r)
	}
	if r := oursCBE / ours; r < 1.6 || r > 2.2 {
		t.Errorf("CBE/PXC8i = %.2f, want ~1.9", r)
	}
}

func TestFig12SingleCoreComparable(t *testing.T) {
	cfg := PaperWeakScaling()
	spe := SPESingleTime(spu.PowerXCell8i(), cfg)
	fastest := HostSingleCoreTime(TigertonQC293, cfg)
	r := float64(spe) / float64(fastest)
	// "the implementation ... on a single SPE ... achieves a runtime
	// comparable to a single core of the Intel and AMD processors".
	if r < 0.3 || r > 1.3 {
		t.Errorf("single SPE / fastest host core = %.2f, want comparable", r)
	}
}

func TestFig12SocketRatios(t *testing.T) {
	cfg := PaperWeakScaling()
	pxc := spu.PowerXCell8i()
	spe := float64(SPESocketTime(pxc, cfg))
	dual := float64(HostSocketTime(OpteronDC18, cfg))
	quad := float64(HostSocketTime(OpteronQC20, cfg))
	tig := float64(HostSocketTime(TigertonQC293, cfg))
	// "performance of the full socket (8 SPEs) is twice that of the
	// quad-core processors and almost 5 times that of a dual-core
	// Opteron".
	if r := dual / spe; r < 4.3 || r > 5.5 {
		t.Errorf("dual-core/SPE socket ratio = %.2f, want ~4.9", r)
	}
	if r := quad / spe; r < 1.7 || r > 2.5 {
		t.Errorf("quad-core/SPE socket ratio = %.2f, want ~2", r)
	}
	if r := tig / spe; r < 1.7 || r > 2.5 {
		t.Errorf("Tigerton/SPE socket ratio = %.2f, want ~2", r)
	}
}

func TestFig12CellBESocketSlower(t *testing.T) {
	cfg := PaperWeakScaling()
	cbe := SPESocketTime(spu.CellBE(), cfg)
	pxc := SPESocketTime(spu.PowerXCell8i(), cfg)
	r := float64(cbe) / float64(pxc)
	if r < 1.6 || r > 2.2 {
		t.Errorf("CBE/PXC8i socket = %.2f, want ~1.9", r)
	}
}

func TestHostChipNames(t *testing.T) {
	if OpteronDC18.String() == "" || OpteronQC20.String() == "" || TigertonQC293.String() == "" {
		t.Error("empty chip names")
	}
}
