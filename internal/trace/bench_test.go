package trace_test

import (
	"bytes"
	"sync"
	"testing"

	"roadrunner/internal/cml"
	"roadrunner/internal/fabric"
	"roadrunner/internal/ib"
	"roadrunner/internal/sweep3d"
	"roadrunner/internal/trace"
	"roadrunner/internal/transport"
)

// The TraceReplay* benches track the replay engine's hot path — record
// walking, mailbox matching and the congested transport underneath —
// plus the capture and codec costs, as part of the bench-artifact record
// CI uploads per commit.

var benchOnce = sync.OnceValues(func() (*trace.Trace, error) {
	cfg := sweep3d.Config{I: 5, J: 5, K: 40, MK: 10, Angles: 6}
	_, tr, err := sweep3d.CaptureDES(cfg, 8, 8, cml.CurrentSoftware())
	return tr, err
})

func benchTrace(b *testing.B) *trace.Trace {
	b.Helper()
	tr, err := benchOnce()
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

func benchPlaces(tr *trace.Trace) []transport.Endpoint {
	places := make([]transport.Endpoint, tr.Meta.Ranks)
	for i := range places {
		places[i] = transport.Endpoint{Node: fabric.FromGlobal(i), Core: 1}
	}
	return places
}

func benchReplay(b *testing.B, pol transport.Policy) {
	tr := benchTrace(b)
	cfg := trace.ReplayConfig{Fabric: fabric.New(), Profile: ib.OpenMPI(),
		Places: benchPlaces(tr), Policy: pol, Observe: trace.ObserveAll}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.Replay(tr, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// The one-shot replays (validate + build + run + observers per call),
// against which the Evaluator benches below measure the pooling win.
func BenchmarkTraceReplayCongested(b *testing.B) { benchReplay(b, transport.Congested()) }

func BenchmarkTraceReplayBaseline(b *testing.B) { benchReplay(b, transport.Policy{}) }

func benchEvaluator(b *testing.B, obs trace.Observe) {
	tr := benchTrace(b)
	ev, err := trace.NewEvaluator(tr, trace.ReplayConfig{
		Fabric: fabric.New(), Profile: ib.OpenMPI(),
		Policy: transport.Congested(), Observe: obs,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer ev.Close()
	places := benchPlaces(tr)
	if _, err := ev.Evaluate(places); err != nil { // warm the pooled state
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.Evaluate(places); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluatorReplayCongested is the pooled path with full
// observers: what a reporting sweep pays per placement.
func BenchmarkEvaluatorReplayCongested(b *testing.B) { benchEvaluator(b, trace.ObserveAll) }

// BenchmarkEvaluatorReplayMakespanOnly is the optimizer's inner loop:
// pooled, congested, no observers — compare side by side with
// BenchmarkTraceReplayCongested for the per-evaluation amortization.
func BenchmarkEvaluatorReplayMakespanOnly(b *testing.B) { benchEvaluator(b, 0) }

func BenchmarkTraceReplayCapture(b *testing.B) {
	cfg := sweep3d.Config{I: 5, J: 5, K: 40, MK: 10, Angles: 6}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := sweep3d.CaptureDES(cfg, 8, 8, cml.CurrentSoftware()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraceReplayCodec(b *testing.B) {
	tr := benchTrace(b)
	var buf bytes.Buffer
	if err := trace.Encode(&buf, tr); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.Decode(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
