package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"roadrunner/internal/units"
)

// The JSONL trace format: line 1 is a header object naming the trace and
// pinning the rank and record counts; every following line is one record
// in canonical order. All record fields are always present (NoPeer/NoDep
// where inapplicable), so the encoding is byte-canonical:
// Encode(Decode(x)) == x for every x Encode produced, which the
// round-trip property test pins.

// FormatName and FormatVersion identify the file format.
const (
	FormatName    = "roadrunner-trace"
	FormatVersion = 1
)

// maxLineBytes bounds one JSONL line; a record line is ~120 bytes, so
// this is generous headroom for header Attrs.
const maxLineBytes = 1 << 20

// headerLine is the wire form of Meta.
type headerLine struct {
	Format  string            `json:"format"`
	Version int               `json:"version"`
	Name    string            `json:"name"`
	App     string            `json:"app"`
	Ranks   int               `json:"ranks"`
	Records int               `json:"records"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// recordLine is the wire form of one Record. Field order here is the
// field order in the file.
type recordLine struct {
	Rank int    `json:"rank"`
	Seq  int    `json:"seq"`
	Kind string `json:"kind"`
	Peer int    `json:"peer"`
	Tag  int    `json:"tag"`
	Size int64  `json:"size"`
	Dur  int64  `json:"dur"`
	At   int64  `json:"at"`
	Dep  int    `json:"dep"`
}

// Encode writes the trace as JSONL. The output is canonical: encoding
// the same trace always produces identical bytes (map attrs serialize
// with sorted keys, records in stored order).
func Encode(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	h := headerLine{
		Format:  FormatName,
		Version: FormatVersion,
		Name:    t.Meta.Name,
		App:     t.Meta.App,
		Ranks:   t.Meta.Ranks,
		Records: len(t.Records),
		Attrs:   t.Meta.Attrs,
	}
	if err := encodeLine(bw, h); err != nil {
		return err
	}
	for _, r := range t.Records {
		l := recordLine{
			Rank: r.Rank,
			Seq:  r.Seq,
			Kind: string(r.Kind),
			Peer: r.Peer,
			Tag:  r.Tag,
			Size: int64(r.Size),
			Dur:  int64(r.Duration),
			At:   int64(r.At),
			Dep:  r.Dep,
		}
		if err := encodeLine(bw, l); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// encodeLine marshals v and appends a newline.
func encodeLine(w *bufio.Writer, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("trace: encode: %w", err)
	}
	if _, err := w.Write(b); err != nil {
		return err
	}
	return w.WriteByte('\n')
}

// Decode parses a JSONL trace and validates it. Malformed input —
// syntax errors, a bad header, record-count mismatches, or any invariant
// violation Validate catches — returns an error; a trace Decode accepts
// is safe to replay.
func Decode(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxLineBytes)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("trace: decode: %w", err)
		}
		return nil, fmt.Errorf("trace: decode: empty input")
	}
	var h headerLine
	if err := unmarshalStrict(sc.Bytes(), &h); err != nil {
		return nil, fmt.Errorf("trace: decode header: %w", err)
	}
	if h.Format != FormatName {
		return nil, fmt.Errorf("trace: decode header: format %q, want %q", h.Format, FormatName)
	}
	if h.Version != FormatVersion {
		return nil, fmt.Errorf("trace: decode header: version %d, want %d", h.Version, FormatVersion)
	}
	if h.Records < 0 {
		return nil, fmt.Errorf("trace: decode header: negative record count %d", h.Records)
	}
	t := &Trace{
		Meta: Meta{Name: h.Name, App: h.App, Ranks: h.Ranks, Attrs: h.Attrs},
	}
	if h.Records > 0 {
		t.Records = make([]Record, 0, min(h.Records, 1<<20))
	}
	line := 1
	for sc.Scan() {
		line++
		var l recordLine
		if err := unmarshalStrict(sc.Bytes(), &l); err != nil {
			return nil, fmt.Errorf("trace: decode line %d: %w", line, err)
		}
		t.Records = append(t.Records, Record{
			Rank:     l.Rank,
			Seq:      l.Seq,
			Kind:     Kind(l.Kind),
			Peer:     l.Peer,
			Tag:      l.Tag,
			Size:     units.Size(l.Size),
			Duration: units.Time(l.Dur),
			At:       units.Time(l.At),
			Dep:      l.Dep,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	if len(t.Records) != h.Records {
		return nil, fmt.Errorf("trace: decode: header promises %d records, file carries %d (truncated?)",
			h.Records, len(t.Records))
	}
	t.Normalize()
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// unmarshalStrict rejects unknown fields and trailing garbage, keeping
// the format tight enough that the canonical-encoding guarantee holds.
func unmarshalStrict(b []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	// A second value on the line is garbage.
	if dec.More() {
		return fmt.Errorf("trailing data after JSON object")
	}
	return nil
}

// Save writes the trace to a file.
func Save(path string, t *Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: save: %w", err)
	}
	if err := Encode(f, t); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("trace: save: %w", err)
	}
	return nil
}

// Load reads and validates a trace file.
func Load(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: load: %w", err)
	}
	defer f.Close()
	t, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("trace: load %s: %w", path, err)
	}
	return t, nil
}
