package trace

import (
	"bytes"
	"strings"
	"testing"
)

// encodeBytes serializes the trace and fails the test on error.
func encodeBytes(t *testing.T, tr *Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err != nil {
		t.Fatalf("encode: %v", err)
	}
	return buf.Bytes()
}

func TestRoundTripIdentity(t *testing.T) {
	tr := pingPong(t)
	tr.Meta.Attrs = map[string]string{"grid": "5x5x40", "px": "2"}
	first := encodeBytes(t, tr)
	parsed, err := Decode(bytes.NewReader(first))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	second := encodeBytes(t, parsed)
	if !bytes.Equal(first, second) {
		t.Fatalf("serialize→parse→serialize is not the identity:\n%s\nvs\n%s", first, second)
	}
}

func TestDecodeAcceptsAnyRecordOrder(t *testing.T) {
	// A hand-edited file with record lines shuffled still loads: Decode
	// normalizes to canonical order before validating.
	tr := pingPong(t)
	lines := strings.Split(strings.TrimRight(string(encodeBytes(t, tr)), "\n"), "\n")
	header, recs := lines[0], lines[1:]
	for i, j := 0, len(recs)-1; i < j; i, j = i+1, j-1 {
		recs[i], recs[j] = recs[j], recs[i]
	}
	shuffled := header + "\n" + strings.Join(recs, "\n") + "\n"
	parsed, err := Decode(strings.NewReader(shuffled))
	if err != nil {
		t.Fatalf("decode shuffled: %v", err)
	}
	if !bytes.Equal(encodeBytes(t, parsed), encodeBytes(t, tr)) {
		t.Fatal("shuffled file decoded to a different trace")
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	valid := string(encodeBytes(t, pingPong(t)))
	lines := strings.SplitAfter(valid, "\n")
	cases := []struct {
		name  string
		input string
	}{
		{"empty", ""},
		{"garbage", "not json\n"},
		{"wrong format", `{"format":"something-else","version":1,"name":"x","app":"y","ranks":1,"records":0}` + "\n"},
		{"wrong version", `{"format":"roadrunner-trace","version":99,"name":"x","app":"y","ranks":1,"records":0}` + "\n"},
		{"negative record count", `{"format":"roadrunner-trace","version":1,"name":"x","app":"y","ranks":1,"records":-1}` + "\n"},
		{"truncated", strings.Join(lines[:len(lines)-2], "")},
		{"extra record", valid + lines[len(lines)-2]},
		{"record syntax error", lines[0] + "{\"rank\":0,\n"},
		{"unknown field", lines[0] + `{"rank":0,"seq":0,"kind":"compute","peer":-1,"tag":0,"size":0,"dur":1,"at":0,"dep":-1,"bogus":1}` + "\n"},
		{"trailing garbage on line", lines[0] + `{"rank":0,"seq":0,"kind":"compute","peer":-1,"tag":0,"size":0,"dur":1,"at":0,"dep":-1} {}` + "\n"},
		{"header only, missing records", `{"format":"roadrunner-trace","version":1,"name":"x","app":"y","ranks":1,"records":3}` + "\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Decode(strings.NewReader(tc.input)); err == nil {
				t.Fatal("malformed input accepted")
			}
		})
	}
}

func TestSaveLoad(t *testing.T) {
	tr := pingPong(t)
	path := t.TempDir() + "/ping.jsonl"
	if err := Save(path, tr); err != nil {
		t.Fatalf("save: %v", err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if !bytes.Equal(encodeBytes(t, back), encodeBytes(t, tr)) {
		t.Fatal("loaded trace differs")
	}
	if _, err := Load(path + ".missing"); err == nil {
		t.Fatal("loading a missing file succeeded")
	}
}
